# Tier-1 verification plus the fast developer loop.
#
#   make check   # the pre-commit gate: vet + short tests + race on the fast
#                # packages + a 10s fuzz smoke of each fuzz target
#   make test    # plain tier-1 tests (what the seed ran; includes the
#                # quick-budget simulations and the golden-figure pin)
#   make short   # go test -short ./... — structural tests only, < 60 s
#   make race    # full test suite under the race detector
#   make fuzz    # 10s per fuzz target (go test -fuzz takes one at a time)
#   make bench   # scheduler + packet-alloc micro-benchmarks (alloc counts)
#   make golden  # regenerate testdata/golden after an intentional change
#
# `make short` skips the long simulations (testing.Short()); run `make test`
# before shipping anything that could move simulated numbers — the golden
# test in internal/exp pins quick-mode figure output byte-for-byte.

GO ?= go

# Packages with concurrency of their own: the experiment harness fan-out
# and the public facade. Everything else is single-threaded simulation.
RACE_FAST = ./internal/sim ./internal/stats ./noc

.PHONY: check vet build test short race race-fast fuzz bench golden

check: vet build short race-fast fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

# The race detector slows the experiment suite ~10x; the default 10m
# per-package test timeout is not enough on small machines.
race:
	$(GO) test -race -timeout 60m ./...

# Race coverage for `make check`: short mode over the packages where
# goroutines actually meet (the parallel harness runs tinyBudget sims).
race-fast:
	$(GO) test -race -short $(RACE_FAST) ./internal/exp

fuzz:
	$(GO) test ./internal/routing -run xxx -fuzz FuzzRoute -fuzztime 10s
	$(GO) test ./internal/topology -run xxx -fuzz FuzzTopologyCoords -fuzztime 10s

bench:
	$(GO) test ./internal/sim -run xxx -bench BenchmarkSchedulerPushPop -benchmem
	$(GO) test ./internal/flow -run xxx -bench BenchmarkPacketAlloc -benchmem

golden:
	$(GO) test ./internal/exp -run TestGoldenFigures -update
