# Tier-1 verification plus the race detector and the hot-path benchmarks.
#
#   make check   # everything below: vet, build, race-enabled tests, benches
#   make test    # plain tier-1 tests (what the seed ran)
#   make race    # full test suite under the race detector
#   make bench   # scheduler + packet-alloc micro-benchmarks (alloc counts)

GO ?= go

.PHONY: check vet build test race bench

check: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector slows the experiment suite ~10x; the default 10m
# per-package test timeout is not enough on small machines.
race:
	$(GO) test -race -timeout 60m ./...

bench:
	$(GO) test ./internal/sim -run xxx -bench BenchmarkSchedulerPushPop -benchmem
	$(GO) test ./internal/flow -run xxx -bench BenchmarkPacketAlloc -benchmem
