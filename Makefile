# Tier-1 verification plus the fast developer loop.
#
#   make check   # the pre-commit gate: vet + short tests + race on the fast
#                # packages + a 10s fuzz smoke of each fuzz target
#   make test    # plain tier-1 tests (what the seed ran; includes the
#                # quick-budget simulations and the golden-figure pin)
#   make short   # go test -short ./... — structural tests only, < 60 s
#   make race    # full test suite under the race detector
#   make fuzz    # 10s per fuzz target (go test -fuzz takes one at a time)
#   make bench   # end-to-end Step + tiled-core + run-cache +
#                # checkpoint-sweep + trace-store + scheduler + packet-alloc
#                # benchmarks; set BENCH_COUNT=10 for benchstat samples
#   make bench-json # regenerate the committed BENCH_pr10.json trajectory
#   make bench-diff # bench-json + per-benchmark deltas vs BENCH_pr9.json
#                # (the previous PR's committed baseline); fails on a >10%
#                # ns/op or allocs/op regression
#   make golden  # regenerate testdata/golden after an intentional change
#
# `make short` skips the long simulations (testing.Short()); run `make test`
# before shipping anything that could move simulated numbers — the golden
# test in internal/exp pins quick-mode figure output byte-for-byte.

GO ?= go

# Packages with concurrency of their own: the experiment harness fan-out,
# the persistent run cache (shared-directory stores under concurrent
# readers/writers) and the public facade. internal/network rides along so
# the parallel harness exercises the activity-driven core (active list +
# fast-forward) under the race detector; internal/checkpoint so the
# fork-equivalence conformance suite (parallel subtests sharing traces)
# runs raced too. Everything else is single-threaded simulation.
RACE_FAST = ./internal/sim ./internal/stats ./internal/runcache ./noc ./internal/network ./internal/checkpoint

# Repetitions for `make bench`; benchstat wants >= 10 samples.
BENCH_COUNT ?= 1

.PHONY: check vet build test short race race-fast fuzz bench bench-json bench-diff golden

check: vet build short race-fast fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

# The race detector slows the experiment suite ~10x; the default 10m
# per-package test timeout is not enough on small machines.
race:
	$(GO) test -race -timeout 60m ./...

# Race coverage for `make check`: short mode over the packages where
# goroutines actually meet (the parallel harness runs tinyBudget sims).
race-fast:
	$(GO) test -race -short $(RACE_FAST) ./internal/exp

# -fuzzminimizetime: short smoke runs must spend their budget fuzzing, not
# minimizing the first interesting inputs (the default is 60s per find,
# which starves a 10s run down to a handful of execs).
fuzz:
	$(GO) test ./internal/routing -run xxx -fuzz FuzzRoute -fuzztime 10s
	$(GO) test ./internal/topology -run xxx -fuzz FuzzTopologyCoords -fuzztime 10s
	$(GO) test ./internal/checkpoint -run xxx -fuzz FuzzCheckpointDecode -fuzztime 10s -fuzzminimizetime=10x
	$(GO) test ./internal/checkpoint -run xxx -fuzz FuzzSnapshotRoundTrip -fuzztime 10s -fuzzminimizetime=10x
	$(GO) test ./internal/traffic/tracestore -run xxx -fuzz FuzzTraceDecode -fuzztime 10s -fuzzminimizetime=10x

# benchstat-friendly: `make bench BENCH_COUNT=10 > old.txt`, change code,
# `make bench BENCH_COUNT=10 > new.txt`, `benchstat old.txt new.txt`.
bench:
	$(GO) test . -run xxx -bench 'BenchmarkStep(LowLoad|Saturation)' -benchmem -count=$(BENCH_COUNT)
	$(GO) test . -run xxx -bench 'BenchmarkStepTiled' -benchmem -count=$(BENCH_COUNT)
	$(GO) test . -run xxx -bench 'BenchmarkRunAll(Cold|Warm)Cache' -benchmem -count=$(BENCH_COUNT)
	$(GO) test . -run xxx -bench 'BenchmarkSweep(Straight|Checkpointed)' -benchmem -count=$(BENCH_COUNT)
	$(GO) test . -run xxx -bench 'BenchmarkTrace(CaptureCold|DecodeWarm)|BenchmarkStoreOpenIndexed' -benchmem -count=$(BENCH_COUNT)
	$(GO) test ./internal/sim -run xxx -bench BenchmarkSchedulerPushPop -benchmem -count=$(BENCH_COUNT)
	$(GO) test ./internal/flow -run xxx -bench BenchmarkPacketAlloc -benchmem -count=$(BENCH_COUNT)

bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_pr10.json

bench-diff:
	$(GO) run ./cmd/benchjson -out BENCH_pr10.json -baseline BENCH_pr9.json

golden:
	$(GO) test ./internal/exp -run TestGoldenFigures -update
