package runcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Index sidecar: Open used to pay one ReadDir plus one stat per entry to
// learn the directory's resident size, which grows linearly with cache
// population (tens of thousands of entries after a few -full sweeps). The
// sidecar persists that answer — entry names, sizes and mtimes plus the
// total — so a valid index makes Open O(1) with zero per-entry stats. It
// is advisory only: every mutation path that learns exact directory state
// (the eviction rescan, the fallback scan) rewrites it, any validation
// failure falls back to the full scan, and LRU decisions still come from
// real file mtimes at eviction time. A concurrently mutating sibling
// process can leave the sidecar stale; that only skews the approximate
// size counter, which the next eviction pass corrects exactly — the same
// tolerance the counter always had.
//
// Layout: magic "RCINDEX1", SHA-256 of the JSON body, body. The checksum
// makes truncation or bit flips a detected mismatch, not a wrong size.

const (
	indexName    = "index.rci"
	indexVersion = 1
)

var indexMagic = []byte("RCINDEX1")

const indexHeaderLen = 8 + sha256.Size

type indexEntry struct {
	Name  string `json:"name"`
	Size  int64  `json:"size"`
	Mtime int64  `json:"mtime"` // unix nanoseconds; advisory (see package comment)
}

type indexBody struct {
	Version int          `json:"version"`
	Count   int          `json:"count"`
	Total   int64        `json:"total"`
	Entries []indexEntry `json:"entries"`
}

// IndexLoaded reports whether Open trusted a valid index sidecar (true) or
// fell back to the full directory scan (false).
func (s *Store) IndexLoaded() bool { return s.idxLoaded }

// Contains reports whether key's entry is resident, without reading,
// verifying or LRU-touching it. One stat, no counter updates: prefetch
// dry-runs peek at hundreds of keys and must not skew hit-rate stats or
// eviction order.
func (s *Store) Contains(key string) bool {
	_, err := os.Stat(s.path(key))
	return err == nil
}

// loadIndex reads and validates the sidecar. ok is false — caller must
// fall back to the scan — on any defect: missing file, bad magic, checksum
// mismatch, unparseable body, version skew, or an entry count that
// contradicts the body's own list.
func (s *Store) loadIndex() (total int64, ok bool) {
	data, err := os.ReadFile(filepath.Join(s.dir, indexName))
	if err != nil || len(data) < indexHeaderLen || !bytes.Equal(data[:len(indexMagic)], indexMagic) {
		return 0, false
	}
	body := data[indexHeaderLen:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], data[len(indexMagic):indexHeaderLen]) {
		return 0, false
	}
	var b indexBody
	if json.Unmarshal(body, &b) != nil || b.Version != indexVersion || b.Count != len(b.Entries) {
		return 0, false
	}
	idx := make(map[string]indexEntry, len(b.Entries))
	for _, e := range b.Entries {
		if filepath.Ext(e.Name) != entrySuffix || e.Name != filepath.Base(e.Name) {
			return 0, false
		}
		idx[e.Name] = e
	}
	s.idx = idx
	return b.Total, true
}

// writeIndexLocked persists the in-memory index, atomically (same tmp +
// rename discipline as entries; the tmp name matches isTmpName so a
// crashed write is swept like any abandoned put). Callers hold idxMu.
// Write errors are ignored: a missing or stale sidecar only costs the next
// Open a directory scan.
func (s *Store) writeIndexLocked() {
	b := indexBody{Version: indexVersion, Count: len(s.idx), Entries: make([]indexEntry, 0, len(s.idx))}
	for _, e := range s.idx {
		b.Total += e.Size
		b.Entries = append(b.Entries, e)
	}
	sort.Slice(b.Entries, func(i, j int) bool { return b.Entries[i].Name < b.Entries[j].Name })
	body, err := json.Marshal(b)
	if err != nil {
		return
	}
	data := make([]byte, 0, indexHeaderLen+len(body))
	data = append(data, indexMagic...)
	sum := sha256.Sum256(body)
	data = append(data, sum[:]...)
	data = append(data, body...)

	tmp, err := os.CreateTemp(s.dir, tmpPattern)
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), filepath.Join(s.dir, indexName)) != nil {
		os.Remove(tmp.Name())
	}
}

// indexRecord notes a written entry (Put's rename just succeeded).
func (s *Store) indexRecord(name string, size int64) {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if s.idx == nil {
		s.idx = make(map[string]indexEntry)
	}
	s.idx[name] = indexEntry{Name: name, Size: size, Mtime: time.Now().UnixNano()}
	s.writeIndexLocked()
}

// indexForget notes a removed entry (quarantine or caller-reported decode
// failure).
func (s *Store) indexForget(name string) {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if _, ok := s.idx[name]; !ok {
		return
	}
	delete(s.idx, name)
	s.writeIndexLocked()
}

// indexReplace installs the exact directory state a rescan just observed
// (fallback scan at Open, or the eviction pass's survivors).
func (s *Store) indexReplace(entries []indexEntry) {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	s.idx = make(map[string]indexEntry, len(entries))
	for _, e := range entries {
		s.idx[e.Name] = e
	}
	s.writeIndexLocked()
}
