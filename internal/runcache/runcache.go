// Package runcache is a persistent, content-addressed result cache: a
// directory of checksummed entries keyed by SHA-256 over (fingerprint,
// key), written atomically (tmp + rename) so concurrent processes sharing
// one directory never observe partial entries.
//
// The store is deliberately dumb about payloads — callers serialize their
// own values (the experiment harness uses canonical JSON) — and strict
// about integrity: every entry carries a SHA-256 of its payload, and a
// truncated, bit-flipped or otherwise unverifiable entry is quarantined
// (deleted) and reported as a miss, never trusted. Eviction is size-capped
// LRU on file modification time: hits re-touch entries, and writes beyond
// the cap delete the stalest entries first.
//
// The fingerprint mixed into every key is the cross-process invalidation
// lever: callers derive it from a schema version plus the binary's VCS
// revision (see Fingerprint), so results invalidate automatically on
// commit or schema bump without any explicit flush.
package runcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// entry layout: magic, SHA-256 of the payload, payload.
var magic = []byte("RUNCACH1")

const (
	entrySuffix    = ".rc"
	tmpPattern     = "put-*.tmp"
	headerLen      = 8 + sha256.Size
	defaultMaxSize = 256 << 20 // 256 MiB
)

// Options configure a Store.
type Options struct {
	// MaxBytes caps the total size of resident entries; 0 means 256 MiB.
	// Exceeding the cap evicts least-recently-used entries after the write.
	MaxBytes int64
	// Fingerprint is mixed into every key hash. Two stores on one directory
	// with different fingerprints never see each other's entries; deriving
	// it from code identity (see Fingerprint) makes staleness impossible
	// across commits and schema versions.
	Fingerprint string
}

// Stats are cumulative operation counters for one Store instance.
type Stats struct {
	Hits, Misses   int64
	Puts           int64
	CorruptDropped int64 // entries quarantined: bad magic, bad checksum, or caller-reported decode failure
	Evictions      int64
	BytesRead      int64 // payload bytes returned by hits
	BytesWritten   int64 // entry bytes written by puts
}

// HitRate reports hits / (hits + misses), or 0 with no lookups.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Store is one handle on a cache directory. Handles are safe for
// concurrent use by multiple goroutines, and multiple handles (including
// handles in different processes) may share one directory: writes are
// atomic renames, reads tolerate entries vanishing underneath them, and
// identical keys hold identical payloads by construction (deterministic
// computations), so last-write-wins races are byte-level no-ops.
type Store struct {
	dir      string
	maxBytes int64
	prefix   []byte // length-prefixed fingerprint, prepended to every key preimage

	size    atomic.Int64 // approximate resident bytes; eviction recomputes exactly
	evictMu sync.Mutex

	idxMu     sync.Mutex
	idx       map[string]indexEntry // entry basename -> recorded size/mtime (see index.go)
	idxLoaded bool                  // Open trusted a valid sidecar (no directory scan)

	hits, misses, puts      atomic.Int64
	corrupt, evictions      atomic.Int64
	bytesRead, bytesWritten atomic.Int64
}

// Open creates (if needed) and opens a cache directory.
func Open(dir string, o Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: %w", err)
	}
	max := o.MaxBytes
	if max <= 0 {
		max = defaultMaxSize
	}
	var prefix []byte
	prefix = binary.AppendUvarint(prefix, uint64(len(o.Fingerprint)))
	prefix = append(prefix, o.Fingerprint...)
	s := &Store{dir: dir, maxBytes: max, prefix: prefix}
	if total, ok := s.loadIndex(); ok {
		// Valid sidecar: trust its total and skip the directory walk
		// entirely — no ReadDir, no per-entry stats (see index.go).
		s.idxLoaded = true
		s.size.Store(total)
	} else {
		s.size.Store(s.scanSize())
	}
	return s, nil
}

// Dir reports the store's directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its entry file: content addressing over the
// fingerprint-prefixed key.
func (s *Store) path(key string) string {
	h := sha256.New()
	h.Write(s.prefix)
	h.Write([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(h.Sum(nil))+entrySuffix)
}

// Get returns the cached payload for key. A missing entry is a miss; an
// entry that fails verification (wrong magic, wrong length, checksum
// mismatch) is quarantined — deleted and counted — and reported as a miss.
// Hits re-touch the entry's mtime, maintaining LRU order for eviction.
func (s *Store) Get(key string) ([]byte, bool) {
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, ok := decodeEntry(data)
	if !ok {
		s.quarantine(p, int64(len(data)))
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.bytesRead.Add(int64(len(payload)))
	now := time.Now()
	_ = os.Chtimes(p, now, now) // LRU touch; best effort
	return payload, true
}

// Put stores payload under key, atomically: the entry is written to a
// temporary file in the cache directory and renamed into place, so a
// concurrent Get in any process sees either the old entry, the new entry,
// or nothing — never a partial write. Errors are returned but a failed Put
// only loses caching, never correctness.
func (s *Store) Put(key string, payload []byte) error {
	entry := make([]byte, 0, headerLen+len(payload))
	entry = append(entry, magic...)
	sum := sha256.Sum256(payload)
	entry = append(entry, sum[:]...)
	entry = append(entry, payload...)

	tmp, err := os.CreateTemp(s.dir, tmpPattern)
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	_, werr := tmp.Write(entry)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("runcache: %w", werr)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	s.puts.Add(1)
	s.bytesWritten.Add(int64(len(entry)))
	s.indexRecord(filepath.Base(s.path(key)), int64(len(entry)))
	if s.size.Add(int64(len(entry))) > s.maxBytes {
		s.evict()
	}
	return nil
}

// Drop quarantines key's entry: callers use it when a payload passed the
// checksum but failed their own decode (schema drift within one
// fingerprint). The entry is deleted and recomputed, never trusted.
func (s *Store) Drop(key string) {
	p := s.path(key)
	if fi, err := os.Stat(p); err == nil {
		s.quarantine(p, fi.Size())
	}
}

func (s *Store) quarantine(path string, size int64) {
	if os.Remove(path) == nil {
		s.corrupt.Add(1)
		s.size.Add(-size)
		s.indexForget(filepath.Base(path))
	}
}

// Stats snapshots the cumulative counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Puts:           s.puts.Load(),
		CorruptDropped: s.corrupt.Load(),
		Evictions:      s.evictions.Load(),
		BytesRead:      s.bytesRead.Load(),
		BytesWritten:   s.bytesWritten.Load(),
	}
}

// decodeEntry verifies and strips the entry header.
func decodeEntry(data []byte) ([]byte, bool) {
	if len(data) < headerLen || !bytes.Equal(data[:len(magic)], magic) {
		return nil, false
	}
	payload := data[headerLen:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[len(magic):headerLen]) {
		return nil, false
	}
	return payload, true
}

// isTmpName reports whether name matches Put's CreateTemp pattern. The
// startup sweep removes only these: a caller may point the store at a
// pre-existing, non-dedicated directory, so anything the store did not
// write itself is never touched.
func isTmpName(name string) bool {
	return strings.HasPrefix(name, "put-") && strings.HasSuffix(name, ".tmp")
}

// scanSize sums resident entry sizes (and sweeps stale temp files left by
// crashed writers). The walk learns the exact directory state, so it also
// rewrites the index sidecar that future Opens will trust instead.
func (s *Store) scanSize() int64 {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	var total int64
	var seen []indexEntry
	cutoff := time.Now().Add(-time.Hour)
	for _, e := range ents {
		fi, err := e.Info()
		if err != nil {
			continue
		}
		switch {
		case filepath.Ext(e.Name()) == entrySuffix:
			total += fi.Size()
			seen = append(seen, indexEntry{Name: e.Name(), Size: fi.Size(), Mtime: fi.ModTime().UnixNano()})
		case isTmpName(e.Name()) && fi.ModTime().Before(cutoff):
			os.Remove(filepath.Join(s.dir, e.Name())) // abandoned tmp file
		}
	}
	s.indexReplace(seen)
	return total
}

// evict deletes least-recently-used entries until the directory fits the
// cap again. It rescans the directory for exact sizes, so the approximate
// running counter self-corrects on every eviction pass. Entries touched by
// recent hits have fresh mtimes and are evicted last.
func (s *Store) evict() {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()

	type ent struct {
		path string
		size int64
		mod  time.Time
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	var files []ent
	var total int64
	cutoff := time.Now().Add(-time.Hour)
	for _, e := range ents {
		if filepath.Ext(e.Name()) != entrySuffix {
			// Indexed opens skip the scan that used to sweep abandoned
			// temp files, so the eviction walk sweeps them instead.
			if isTmpName(e.Name()) {
				if fi, err := e.Info(); err == nil && fi.ModTime().Before(cutoff) {
					os.Remove(filepath.Join(s.dir, e.Name()))
				}
			}
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, ent{filepath.Join(s.dir, e.Name()), fi.Size(), fi.ModTime()})
		total += fi.Size()
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mod.Equal(files[j].mod) {
			return files[i].mod.Before(files[j].mod)
		}
		return files[i].path < files[j].path // deterministic tie-break
	})
	removed := make(map[string]bool)
	for _, f := range files {
		if total <= s.maxBytes {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			s.evictions.Add(1)
			removed[filepath.Base(f.path)] = true
		}
	}
	s.size.Store(total)
	survivors := make([]indexEntry, 0, len(files)-len(removed))
	for _, f := range files {
		if name := filepath.Base(f.path); !removed[name] {
			survivors = append(survivors, indexEntry{Name: name, Size: f.size, Mtime: f.mod.UnixNano()})
		}
	}
	s.indexReplace(survivors)
}
