package runcache

import (
	"runtime/debug"
)

// Fingerprint composes a caller-chosen schema tag with the running
// binary's VCS identity into a cache-invalidation fingerprint: any commit
// changes vcs.revision and any schema bump changes the tag, so entries
// written by older code or older encodings become unreachable (and age out
// via LRU) instead of being served stale.
//
// Binaries built outside version control (and `go test` binaries, which Go
// does not VCS-stamp) fall back to the schema tag alone; tests therefore
// inject explicit fingerprints, and a dirty working tree — same revision,
// edited files — is marked "+dirty" but cannot distinguish successive
// edits. Pass a no-cache flag (or flush the directory) while iterating on
// simulation code uncommitted.
func Fingerprint(schema string) string {
	rev, modified, ok := vcsInfo()
	if !ok {
		return schema + "|no-vcs"
	}
	fp := schema + "|" + rev
	if modified {
		fp += "+dirty"
	}
	return fp
}

// vcsInfo extracts the VCS revision and dirty flag from the binary's
// embedded build info.
func vcsInfo() (rev string, modified, ok bool) {
	bi, haveInfo := debug.ReadBuildInfo()
	if !haveInfo {
		return "", false, false
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	return rev, modified, rev != ""
}
