package runcache

import (
	"runtime/debug"
)

// Fingerprint composes a caller-chosen schema tag with the running
// binary's VCS identity into a cache-invalidation fingerprint: any commit
// changes vcs.revision and any schema bump changes the tag, so entries
// written by older code or older encodings become unreachable (and age out
// via LRU) instead of being served stale.
//
// Binaries built outside version control (including `go run` and `go
// test` binaries, which Go does not VCS-stamp) fall back to the schema tag
// alone — a STABLE fingerprint that never invalidates on code change.
// Callers persisting results across processes must therefore check
// VCSInfo first and refuse to cache when no revision is embedded (the
// experiment harness does); the fallback exists only for callers that
// knowingly accept it. A dirty working tree — same revision, edited
// files — is marked "+dirty" but cannot distinguish successive edits;
// tests inject explicit fingerprints instead.
func Fingerprint(schema string) string {
	rev, modified, ok := VCSInfo()
	if !ok {
		return schema + "|no-vcs"
	}
	fp := schema + "|" + rev
	if modified {
		fp += "+dirty"
	}
	return fp
}

// VCSInfo extracts the VCS revision and dirty flag from the running
// binary's embedded build info. ok is false when no revision is embedded:
// `go run`, `go test` and out-of-repo builds are not stamped, so such a
// binary cannot produce a fingerprint that invalidates on code change.
func VCSInfo() (rev string, modified, ok bool) {
	bi, haveInfo := debug.ReadBuildInfo()
	if !haveInfo {
		return "", false, false
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	return rev, modified, rev != ""
}
