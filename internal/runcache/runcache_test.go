package runcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, dir string, o Options) *Store {
	t.Helper()
	s, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{Fingerprint: "fp"})
	if _, ok := s.Get("k"); ok {
		t.Fatal("empty store reported a hit")
	}
	payload := []byte("the payload")
	if err := s.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	// Overwrite is allowed and atomic.
	if err := s.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("k"); string(got) != "v2" {
		t.Fatalf("after overwrite Get = %q", got)
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 2 {
		t.Errorf("stats = %+v; want 2 hits, 1 miss, 2 puts", st)
	}
}

// TestFingerprintInvalidates: same directory, same key, different
// fingerprint — a different world. Entries written under one fingerprint
// are unreachable from the other, which is exactly how a commit or schema
// bump invalidates the whole cache without a flush.
func TestFingerprintInvalidates(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, Options{Fingerprint: "schema-v1|rev-aaa"})
	b := open(t, dir, Options{Fingerprint: "schema-v1|rev-bbb"})
	if err := a.Put("k", []byte("old world")); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get("k"); ok {
		t.Error("entry leaked across fingerprints")
	}
	if got, ok := a.Get("k"); !ok || string(got) != "old world" {
		t.Errorf("original fingerprint lost its entry: %q, %v", got, ok)
	}
}

// entryFiles lists the store's resident entry files.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), entrySuffix) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// corruptAndGet writes one entry, mangles its file with mutate, and
// verifies the store quarantines it: miss, file deleted, counted, and the
// key is recomputable (a fresh Put works).
func corruptAndGet(t *testing.T, mutate func(path string)) {
	t.Helper()
	dir := t.TempDir()
	s := open(t, dir, Options{Fingerprint: "fp"})
	if err := s.Put("k", []byte("precious bytes")); err != nil {
		t.Fatal(err)
	}
	files := entryFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("expected 1 entry file, found %d", len(files))
	}
	mutate(files[0])

	if _, ok := s.Get("k"); ok {
		t.Fatal("corrupted entry served as a hit")
	}
	if st := s.Stats(); st.CorruptDropped != 1 {
		t.Errorf("CorruptDropped = %d, want 1", st.CorruptDropped)
	}
	if remaining := entryFiles(t, dir); len(remaining) != 0 {
		t.Errorf("corrupted entry not quarantined: %v", remaining)
	}
	// The slot is clean: recompute-and-store works again.
	if err := s.Put("k", []byte("recomputed")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); !ok || string(got) != "recomputed" {
		t.Errorf("recomputed entry not served: %q, %v", got, ok)
	}
}

func TestCorruptTruncated(t *testing.T) {
	corruptAndGet(t, func(path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCorruptBitFlip(t *testing.T) {
	corruptAndGet(t, func(path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x40 // flip a payload bit
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCorruptEmptyFile(t *testing.T) {
	corruptAndGet(t, func(path string) {
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDropQuarantines: a caller-reported decode failure (checksum fine,
// schema drifted) deletes the entry.
func TestDropQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Fingerprint: "fp"})
	if err := s.Put("k", []byte("old schema")); err != nil {
		t.Fatal(err)
	}
	s.Drop("k")
	if _, ok := s.Get("k"); ok {
		t.Error("dropped entry still served")
	}
	if st := s.Stats(); st.CorruptDropped != 1 {
		t.Errorf("CorruptDropped = %d, want 1", st.CorruptDropped)
	}
}

// TestEvictionOrder: with a tight byte cap, the store evicts strictly by
// recency — stalest mtime first — and hits refresh recency. Mtimes are
// planted explicitly so filesystem timestamp granularity cannot blur the
// order.
func TestEvictionOrder(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 100)
	entrySize := int64(headerLen + len(payload))
	// Room for three entries; the fourth Put must evict exactly one.
	s := open(t, dir, Options{Fingerprint: "fp", MaxBytes: 3 * entrySize})

	base := time.Now().Add(-10 * time.Hour)
	for i, key := range []string{"a", "b", "c"} {
		if err := s.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		mt := base.Add(time.Duration(i) * time.Hour) // a stalest, c freshest
		if err := os.Chtimes(s.path(key), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a": the hit refreshes its mtime, so "b" becomes the LRU victim.
	if _, ok := s.Get("a"); !ok {
		t.Fatal("lost entry a")
	}
	if err := s.Put("d", payload); err != nil {
		t.Fatal(err)
	}

	for key, want := range map[string]bool{"a": true, "b": false, "c": true, "d": true} {
		if _, ok := s.Get(key); ok != want {
			t.Errorf("after eviction, Get(%q) = %v, want %v", key, ok, want)
		}
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
}

// TestEvictionConverges: hammering far past the cap leaves the directory
// at or under the cap.
func TestEvictionConverges(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("y"), 50)
	entrySize := int64(headerLen + len(payload))
	cap := 5 * entrySize
	s := open(t, dir, Options{Fingerprint: "fp", MaxBytes: cap})
	for i := 0; i < 40; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for _, f := range entryFiles(t, dir) {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	if total > cap {
		t.Errorf("resident %d bytes exceeds cap %d after eviction", total, cap)
	}
}

// TestConcurrentSharedDir models the acceptance scenario: two store
// handles — as two goroutines, standing in for two processes — share one
// directory under concurrent mixed Get/Put load. Values are keyed
// deterministically (as deterministic simulations are), so every hit must
// return exactly the bytes any writer stored for that key.
func TestConcurrentSharedDir(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, Options{Fingerprint: "fp"})
	b := open(t, dir, Options{Fingerprint: "fp"})

	value := func(k int) []byte { return []byte(fmt.Sprintf("value-for-%d", k)) }
	const keys = 16
	var wg sync.WaitGroup
	for _, s := range []*Store{a, b} {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(s *Store, g int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					k := (i*7 + g) % keys
					key := fmt.Sprintf("key-%d", k)
					if got, ok := s.Get(key); ok {
						if !bytes.Equal(got, value(k)) {
							t.Errorf("key %q: got %q, want %q", key, got, value(k))
							return
						}
					} else if err := s.Put(key, value(k)); err != nil {
						t.Errorf("Put(%q): %v", key, err)
						return
					}
				}
			}(s, g)
		}
	}
	wg.Wait()
	// Every key converged to its value in both handles.
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		for i, s := range []*Store{a, b} {
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, value(k)) {
				t.Errorf("handle %d key %q: got %q, %v", i, key, got, ok)
			}
		}
	}
}

// TestOpenRecoversSize: reopening a populated directory accounts existing
// entries toward the cap.
func TestOpenRecoversSize(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("z"), 100)
	entrySize := int64(headerLen + len(payload))
	s1 := open(t, dir, Options{Fingerprint: "fp", MaxBytes: 10 * entrySize})
	for i := 0; i < 3; i++ {
		if err := s1.Put(fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	s2 := open(t, dir, Options{Fingerprint: "fp", MaxBytes: 10 * entrySize})
	if got := s2.size.Load(); got != 3*entrySize {
		t.Errorf("reopened size = %d, want %d", got, 3*entrySize)
	}
	for i := 0; i < 3; i++ {
		if _, ok := s2.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("reopened store lost k%d", i)
		}
	}
}

func TestFingerprintSchemaOnlyFallback(t *testing.T) {
	// Test binaries carry no VCS stamp, so the fallback path is what runs
	// here; the schema tag must always survive into the fingerprint.
	fp := Fingerprint("repro-exp/v1")
	if !strings.HasPrefix(fp, "repro-exp/v1") {
		t.Errorf("Fingerprint dropped the schema tag: %q", fp)
	}
	if _, _, ok := VCSInfo(); ok {
		t.Error("VCSInfo reported a stamp inside a test binary; the fallback test is not exercising the fallback")
	}
}

// TestOpenSweepsOnlyAbandonedTmpFiles: the startup sweep exists to reap
// put-*.tmp files left by crashed writers — and must remove nothing else.
// A user may point -cache-dir at a pre-existing directory (".", a results
// folder); Open must never delete their files, however old.
func TestOpenSweepsOnlyAbandonedTmpFiles(t *testing.T) {
	dir := t.TempDir()
	old := time.Now().Add(-2 * time.Hour)
	write := func(name string, aged bool) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if aged {
			if err := os.Chtimes(p, old, old); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	kept := []string{
		write("results.csv", true),       // old foreign file: untouchable
		write("notes.tmp", true),         // .tmp suffix but not ours: untouchable
		write("put-notes.txt", true),     // put- prefix but not ours: untouchable
		write("put-fresh123.tmp", false), // ours, but an in-flight writer's
	}
	abandoned := write("put-stale456.tmp", true) // ours and stale: swept

	open(t, dir, Options{Fingerprint: "fp"})

	for _, p := range kept {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("startup sweep removed %s: %v", filepath.Base(p), err)
		}
	}
	if _, err := os.Stat(abandoned); !os.IsNotExist(err) {
		t.Errorf("abandoned tmp file survived the sweep (err=%v)", err)
	}
}
