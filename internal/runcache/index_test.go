package runcache

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func fillStore(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
}

// A directory written by one handle must open through the index sidecar —
// no directory scan — with the same resident size the scan would compute.
func TestIndexLoadedOnReopen(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, Options{Fingerprint: "fp"})
	if a.IndexLoaded() {
		t.Fatal("first open of an empty directory claims a loaded index")
	}
	fillStore(t, a, 20)
	scanned := a.scanSize() // ground truth (also rewrites the sidecar)

	b := open(t, dir, Options{Fingerprint: "fp"})
	if !b.IndexLoaded() {
		t.Fatal("reopen did not trust the index sidecar")
	}
	if got := b.size.Load(); got != scanned {
		t.Fatalf("indexed open sized the store at %d, scan says %d", got, scanned)
	}
	for i := 0; i < 20; i++ {
		if _, ok := b.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("entry k%d unreadable through indexed handle", i)
		}
	}
}

// Proof that a valid index eliminates the per-entry scan: delete every
// entry file behind the sidecar's back and reopen. A scanning open would
// size the store at zero; an indexed open must report the sidecar's total,
// because it never looked.
func TestIndexSkipsDirectoryScan(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, Options{Fingerprint: "fp"})
	fillStore(t, a, 10)
	want := a.size.Load()
	if want <= 0 {
		t.Fatal("fixture stored nothing")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == entrySuffix {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	b := open(t, dir, Options{Fingerprint: "fp"})
	if !b.IndexLoaded() {
		t.Fatal("valid index not trusted")
	}
	if got := b.size.Load(); got != want {
		t.Fatalf("indexed open reports %d resident bytes; %d proves it scanned", got, want)
	}
	// The stale size is the documented multi-process tolerance: lookups
	// still answer honestly, and the next eviction rescan self-corrects.
	if _, ok := b.Get("k3"); ok {
		t.Fatal("deleted entry served")
	}
}

// Every way the sidecar can be defective must fall back to the full
// rescan, and the fallen-back handle must be indistinguishable from one
// that never had an index: same resident size, same lookup results, same
// Stats after identical operations.
func TestIndexCorruptionFallsBackToRescan(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)/2] },
		"bit-flip":     func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b },
		"bad-magic":    func(b []byte) []byte { b[0] ^= 0xff; return b },
		"empty":        func(b []byte) []byte { return nil },
		"not-an-index": func([]byte) []byte { return []byte("garbage") },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			a := open(t, dir, Options{Fingerprint: "fp"})
			fillStore(t, a, 12)

			// Reference: a handle that opened through the (valid) index.
			ref := open(t, dir, Options{Fingerprint: "fp"})
			if !ref.IndexLoaded() {
				t.Fatal("reference open did not load the index")
			}
			refSize := ref.size.Load()

			idxPath := filepath.Join(dir, indexName)
			data, err := os.ReadFile(idxPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(idxPath, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}

			b := open(t, dir, Options{Fingerprint: "fp"})
			if b.IndexLoaded() {
				t.Fatal("corrupt index trusted")
			}
			if got := b.size.Load(); got != refSize {
				t.Fatalf("rescan sized the store at %d, indexed open at %d", got, refSize)
			}
			for i := 0; i < 12; i++ {
				if _, ok := b.Get(fmt.Sprintf("k%d", i)); !ok {
					t.Fatalf("entry k%d lost in fallback", i)
				}
			}
			if got, want := b.Stats(), ref.stats12Hits(t); got != want {
				t.Fatalf("stats after identical ops differ: %+v vs %+v", got, want)
			}
			// The fallback rescan rewrites the sidecar; the next open must
			// trust it again.
			c := open(t, dir, Options{Fingerprint: "fp"})
			if !c.IndexLoaded() {
				t.Fatal("rescan did not repair the index")
			}
		})
	}
}

// stats12Hits performs the same 12 lookups the fallback handle did and
// returns the resulting counters, giving the corruption test an
// operation-for-operation reference.
func (s *Store) stats12Hits(t *testing.T) Stats {
	t.Helper()
	for i := 0; i < 12; i++ {
		if _, ok := s.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("reference entry k%d unreadable", i)
		}
	}
	return s.Stats()
}

// Put, Drop and corruption-quarantine must all keep the sidecar current,
// so the next open reflects them without scanning.
func TestIndexTracksMutations(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, Options{Fingerprint: "fp"})
	fillStore(t, a, 6)
	a.Drop("k0")
	// Corrupt k1 on disk; Get quarantines it.
	p := a.path("k1")
	if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Get("k1"); ok {
		t.Fatal("corrupt entry served")
	}

	b := open(t, dir, Options{Fingerprint: "fp"})
	if !b.IndexLoaded() {
		t.Fatal("index not loaded after mutations")
	}
	if got := b.size.Load(); got != b.scanSize() {
		t.Fatalf("indexed size %d != scanned size after mutations", got)
	}
	for i, want := range []bool{false, false, true, true, true, true} {
		_, ok := b.Get(fmt.Sprintf("k%d", i))
		if ok != want {
			t.Fatalf("entry k%d present=%t, want %t", i, ok, want)
		}
	}
}

// Eviction rewrites the sidecar with the survivors.
func TestIndexTracksEviction(t *testing.T) {
	dir := t.TempDir()
	payload := make([]byte, 1000)
	a := open(t, dir, Options{Fingerprint: "fp", MaxBytes: 4500})
	for i := 0; i < 8; i++ {
		if err := a.Put(fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	if a.Stats().Evictions == 0 {
		t.Fatal("cap never triggered")
	}
	b := open(t, dir, Options{Fingerprint: "fp", MaxBytes: 4500})
	if !b.IndexLoaded() {
		t.Fatal("index not loaded after eviction")
	}
	if got, want := b.size.Load(), b.scanSize(); got != want {
		t.Fatalf("indexed size %d != scanned size %d after eviction", got, want)
	}
}

// Contains must answer presence without perturbing stats or LRU state.
func TestContains(t *testing.T) {
	s := open(t, t.TempDir(), Options{Fingerprint: "fp"})
	if s.Contains("k") {
		t.Fatal("empty store claims containment")
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !s.Contains("k") {
		t.Fatal("stored key not contained")
	}
	st := s.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Contains moved lookup counters: %+v", st)
	}
}
