package topology

import (
	"testing"
	"testing/quick"
)

func TestMeshBasics(t *testing.T) {
	m := NewMesh2D(8)
	if m.Nodes() != 64 {
		t.Fatalf("Nodes = %d, want 64", m.Nodes())
	}
	if m.Ports() != 5 {
		t.Fatalf("Ports = %d, want 5", m.Ports())
	}
	if m.MaxDistance() != 14 {
		t.Errorf("MaxDistance = %d, want 14", m.MaxDistance())
	}
}

func TestCoordRoundTrip(t *testing.T) {
	m := New(5, 3, false)
	f := func(raw uint16) bool {
		node := int(raw) % m.Nodes()
		return m.NodeAt(m.Coords(node)...) == node
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeshNeighbors(t *testing.T) {
	m := NewMesh2D(4)
	// Corner node 0 = (0,0): only +x and +y neighbors.
	if _, ok := m.Neighbor(0, 0, Minus); ok {
		t.Error("corner should lack -x neighbor")
	}
	if _, ok := m.Neighbor(0, 1, Minus); ok {
		t.Error("corner should lack -y neighbor")
	}
	if n, ok := m.Neighbor(0, 0, Plus); !ok || n != 1 {
		t.Errorf("(0,0)+x = %d,%v, want 1,true", n, ok)
	}
	if n, ok := m.Neighbor(0, 1, Plus); !ok || n != 4 {
		t.Errorf("(0,0)+y = %d,%v, want 4,true", n, ok)
	}
}

func TestTorusWraparound(t *testing.T) {
	tr := New(4, 2, true)
	// Node 3 = (3,0): +x wraps to node 0.
	if n, ok := tr.Neighbor(3, 0, Plus); !ok || n != 0 {
		t.Errorf("(3,0)+x = %d,%v, want 0,true", n, ok)
	}
	if n, ok := tr.Neighbor(0, 0, Minus); !ok || n != 3 {
		t.Errorf("(0,0)-x = %d,%v, want 3,true", n, ok)
	}
}

func TestHopDistance(t *testing.T) {
	m := NewMesh2D(8)
	if d := m.HopDistance(0, 63); d != 14 {
		t.Errorf("mesh corner distance = %d, want 14", d)
	}
	tr := New(8, 2, true)
	if d := tr.HopDistance(0, 63); d != 2 {
		t.Errorf("torus (0,0)->(7,7) distance = %d, want 2", d)
	}
	if d := tr.HopDistance(0, 7); d != 1 {
		t.Errorf("torus wrap distance = %d, want 1", d)
	}
}

func TestHopDistanceSymmetric(t *testing.T) {
	for _, topo := range []*Cube{NewMesh2D(6), New(6, 2, true), New(3, 3, false)} {
		f := func(a, b uint16) bool {
			x, y := int(a)%topo.Nodes(), int(b)%topo.Nodes()
			return topo.HopDistance(x, y) == topo.HopDistance(y, x)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	}
}

func TestHopDistanceTriangleInequality(t *testing.T) {
	topo := NewMesh2D(5)
	f := func(a, b, c uint16) bool {
		x, y, z := int(a)%topo.Nodes(), int(b)%topo.Nodes(), int(c)%topo.Nodes()
		return topo.HopDistance(x, z) <= topo.HopDistance(x, y)+topo.HopDistance(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelCount(t *testing.T) {
	// 8x8 mesh: 2*7*8 bidirectional pairs per dimension orientation =
	// 2 * (2 * 7 * 8) = 224 directed channels.
	m := NewMesh2D(8)
	if got := len(m.Channels()); got != 224 {
		t.Errorf("mesh channels = %d, want 224", got)
	}
	// 4x4 torus: every node has 4 outgoing channels.
	tr := New(4, 2, true)
	if got := len(tr.Channels()); got != 64 {
		t.Errorf("torus channels = %d, want 64", got)
	}
}

func TestChannelsConnectNeighbors(t *testing.T) {
	for _, topo := range []*Cube{NewMesh2D(4), New(4, 2, true)} {
		for _, ch := range topo.Channels() {
			if topo.HopDistance(ch.Src, ch.Dst) != 1 {
				t.Errorf("channel %v does not connect neighbors", ch)
			}
			n, ok := topo.Neighbor(ch.Src, ch.Dim, ch.Dir)
			if !ok || n != ch.Dst {
				t.Errorf("channel %v inconsistent with Neighbor", ch)
			}
		}
	}
}

func TestWrapFlag(t *testing.T) {
	tr := New(4, 2, true)
	wraps := 0
	for _, ch := range tr.Channels() {
		if ch.Wrap {
			wraps++
			xs, xd := tr.Coord(ch.Src, ch.Dim), tr.Coord(ch.Dst, ch.Dim)
			if !(xs == 3 && xd == 0) && !(xs == 0 && xd == 3) {
				t.Errorf("channel %v marked wrap but coords %d->%d", ch, xs, xd)
			}
		}
	}
	// Each dimension: 4 rows x 2 directions = 8 wrap channels; 2 dims = 16.
	if wraps != 16 {
		t.Errorf("wrap channels = %d, want 16", wraps)
	}
}

func TestNodesAtDistance(t *testing.T) {
	m := NewMesh2D(8)
	center := m.NodeAt(3, 3)
	// Distance 1 from an interior node: 4 nodes.
	if got := len(m.NodesAtDistance(center, 1)); got != 4 {
		t.Errorf("nodes at distance 1 = %d, want 4", got)
	}
	// All distances partition the other 63 nodes.
	total := 0
	for h := 1; h <= m.MaxDistance(); h++ {
		total += len(m.NodesAtDistance(center, h))
	}
	if total != 63 {
		t.Errorf("distance shells sum to %d nodes, want 63", total)
	}
}

func TestPortMapping(t *testing.T) {
	m := New(4, 3, false)
	seen := map[int]bool{LocalPort: true}
	for d := 0; d < 3; d++ {
		for _, dir := range []Direction{Plus, Minus} {
			p := m.PortFor(d, dir)
			if seen[p] {
				t.Fatalf("port %d assigned twice", p)
			}
			seen[p] = true
			gd, gdir := m.DimDir(p)
			if gd != d || gdir != dir {
				t.Errorf("DimDir(PortFor(%d,%v)) = (%d,%v)", d, dir, gd, gdir)
			}
		}
	}
	if len(seen) != m.Ports() {
		t.Errorf("distinct ports = %d, want %d", len(seen), m.Ports())
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{1, 2}, {0, 1}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", tc.k, tc.n)
				}
			}()
			New(tc.k, tc.n, false)
		}()
	}
}
