// Package topology models k-ary n-cube interconnection networks — the
// topology family the paper's simulator supports — as meshes (no wraparound)
// or tori (with wraparound). The paper's experimental platform is the 8x8
// mesh (k=8, n=2).
package topology

import "fmt"

// Direction is the sign of travel along one dimension.
type Direction int

const (
	// Plus travels toward higher coordinates.
	Plus Direction = iota
	// Minus travels toward lower coordinates.
	Minus
)

func (d Direction) String() string {
	if d == Plus {
		return "+"
	}
	return "-"
}

// LocalPort is the router port index used for injection and ejection.
const LocalPort = 0

// Cube is a k-ary n-cube: k nodes per dimension, n dimensions. The zero
// value is not usable; construct with New.
type Cube struct {
	k, n  int
	torus bool
	nodes int
	// strides[d] is the node-index stride of dimension d.
	strides []int
}

// New returns a k-ary n-cube. torus selects wraparound channels.
// It panics for k < 2 or n < 1: such shapes are not networks.
func New(k, n int, torus bool) *Cube {
	if k < 2 || n < 1 {
		panic(fmt.Sprintf("topology: invalid k-ary n-cube (k=%d, n=%d)", k, n))
	}
	c := &Cube{k: k, n: n, torus: torus, nodes: 1, strides: make([]int, n)}
	for d := 0; d < n; d++ {
		c.strides[d] = c.nodes
		c.nodes *= k
	}
	return c
}

// NewMesh2D returns a width x height 2D mesh (k-ary 2-cube when square;
// non-square meshes are not k-ary n-cubes, so both sides must equal k).
func NewMesh2D(k int) *Cube { return New(k, 2, false) }

// K reports nodes per dimension.
func (c *Cube) K() int { return c.k }

// N reports the number of dimensions.
func (c *Cube) N() int { return c.n }

// Torus reports whether wraparound channels exist.
func (c *Cube) Torus() bool { return c.torus }

// Nodes reports the total node count k^n.
func (c *Cube) Nodes() int { return c.nodes }

// Ports reports the router port count: one local port plus two per
// dimension. Ports that have no neighbor in a mesh exist but are
// unconnected.
func (c *Cube) Ports() int { return 1 + 2*c.n }

// PortFor maps (dimension, direction) to a router port index.
func (c *Cube) PortFor(dim int, dir Direction) int {
	return 1 + 2*dim + int(dir)
}

// DimDir maps a non-local port index back to (dimension, direction).
func (c *Cube) DimDir(port int) (dim int, dir Direction) {
	if port == LocalPort {
		panic("topology: DimDir of local port")
	}
	p := port - 1
	return p / 2, Direction(p % 2)
}

// Coord reports the coordinate of node along dimension d.
func (c *Cube) Coord(node, d int) int {
	return (node / c.strides[d]) % c.k
}

// Coords reports all coordinates of node.
func (c *Cube) Coords(node int) []int {
	out := make([]int, c.n)
	for d := 0; d < c.n; d++ {
		out[d] = c.Coord(node, d)
	}
	return out
}

// NodeAt reports the node index with the given coordinates.
func (c *Cube) NodeAt(coords ...int) int {
	if len(coords) != c.n {
		panic(fmt.Sprintf("topology: NodeAt got %d coords, want %d", len(coords), c.n))
	}
	node := 0
	for d, x := range coords {
		if x < 0 || x >= c.k {
			panic(fmt.Sprintf("topology: coordinate %d out of range [0,%d)", x, c.k))
		}
		node += x * c.strides[d]
	}
	return node
}

// Neighbor reports the node adjacent to node in (dim, dir) and whether that
// channel exists (always true on a torus; false at mesh edges).
func (c *Cube) Neighbor(node, dim int, dir Direction) (int, bool) {
	x := c.Coord(node, dim)
	var nx int
	switch dir {
	case Plus:
		nx = x + 1
		if nx == c.k {
			if !c.torus {
				return 0, false
			}
			nx = 0
		}
	case Minus:
		nx = x - 1
		if nx < 0 {
			if !c.torus {
				return 0, false
			}
			nx = c.k - 1
		}
	}
	return node + (nx-x)*c.strides[dim], true
}

// HopDistance reports the minimal hop count between two nodes.
func (c *Cube) HopDistance(a, b int) int {
	dist := 0
	for d := 0; d < c.n; d++ {
		diff := c.Coord(b, d) - c.Coord(a, d)
		if diff < 0 {
			diff = -diff
		}
		if c.torus && c.k-diff < diff {
			diff = c.k - diff
		}
		dist += diff
	}
	return dist
}

// Channel is one directed inter-router channel (the paper's "channel of
// eight serial links" controlled by one DVS regulator).
type Channel struct {
	Src, Dst int       // router node indices
	Dim      int       // dimension of travel
	Dir      Direction // direction of travel
	Wrap     bool      // true for torus wraparound channels
}

// Channels enumerates every directed channel in deterministic order
// (by source node, then dimension, then direction).
func (c *Cube) Channels() []Channel {
	var out []Channel
	for node := 0; node < c.nodes; node++ {
		for d := 0; d < c.n; d++ {
			for _, dir := range []Direction{Plus, Minus} {
				dst, ok := c.Neighbor(node, d, dir)
				if !ok {
					continue
				}
				wrap := false
				if c.torus {
					x := c.Coord(node, d)
					wrap = (dir == Plus && x == c.k-1) || (dir == Minus && x == 0)
				}
				out = append(out, Channel{Src: node, Dst: dst, Dim: d, Dir: dir, Wrap: wrap})
			}
		}
	}
	return out
}

// NodesAtDistance reports all nodes exactly h hops from src. Used by the
// sphere-of-locality traffic model.
func (c *Cube) NodesAtDistance(src, h int) []int {
	var out []int
	for node := 0; node < c.nodes; node++ {
		if node != src && c.HopDistance(src, node) == h {
			out = append(out, node)
		}
	}
	return out
}

// MaxDistance reports the network diameter.
func (c *Cube) MaxDistance() int {
	per := c.k - 1
	if c.torus {
		per = c.k / 2
	}
	return per * c.n
}
