package topology

import "testing"

// FuzzTopologyCoords checks the coordinate system of arbitrary k-ary
// n-cubes: node index <-> coordinate round trips, port <-> (dim, dir)
// round trips, and neighbor symmetry (going out and back lands home, and
// a neighbor is always exactly one hop away).
func FuzzTopologyCoords(f *testing.F) {
	f.Add(8, 2, false, 13) // the paper's mesh
	f.Add(4, 2, true, 15)  // torus wraparound
	f.Add(2, 4, false, 9)  // hypercube-shaped corner case
	f.Add(10, 1, true, 0)  // ring
	f.Fuzz(func(t *testing.T, k, n int, torus bool, node int) {
		k = 2 + abs(k)%9 // 2..10
		n = 1 + abs(n)%4 // 1..4
		c := New(k, n, torus)
		node = abs(node) % c.Nodes()

		coords := c.Coords(node)
		if len(coords) != n {
			t.Fatalf("Coords(%d) has %d dims, want %d", node, len(coords), n)
		}
		for d, x := range coords {
			if x < 0 || x >= k {
				t.Fatalf("coordinate %d of node %d is %d, outside [0,%d)", d, node, x, k)
			}
			if got := c.Coord(node, d); got != x {
				t.Fatalf("Coord(%d,%d) = %d but Coords gives %d", node, d, got, x)
			}
		}
		if got := c.NodeAt(coords...); got != node {
			t.Fatalf("NodeAt(Coords(%d)) = %d: round trip broken", node, got)
		}

		for port := LocalPort + 1; port < c.Ports(); port++ {
			dim, dir := c.DimDir(port)
			if got := c.PortFor(dim, dir); got != port {
				t.Fatalf("PortFor(DimDir(%d)) = %d: port round trip broken", port, got)
			}
			nb, ok := c.Neighbor(node, dim, dir)
			if !ok {
				if torus {
					t.Fatalf("torus node %d has no neighbor via port %d", node, port)
				}
				continue
			}
			if nb < 0 || nb >= c.Nodes() {
				t.Fatalf("neighbor %d of node %d out of range", nb, node)
			}
			if d := c.HopDistance(node, nb); d != 1 {
				t.Fatalf("neighbor %d of node %d is %d hops away", nb, node, d)
			}
			opp := Plus
			if dir == Plus {
				opp = Minus
			}
			back, ok := c.Neighbor(nb, dim, opp)
			if !ok || back != node {
				t.Fatalf("neighbor relation not symmetric: %d -(d%d,%v)-> %d -(d%d,%v)-> %d,%v",
					node, dim, dir, nb, dim, opp, back, ok)
			}
		}

		if d := c.HopDistance(node, node); d != 0 {
			t.Fatalf("HopDistance(%d,%d) = %d, want 0", node, node, d)
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == -x { // math.MinInt
			return 0
		}
		return -x
	}
	return x
}
