package router

import (
	"repro/internal/flow"
	"repro/internal/link"
	"repro/internal/routing"
	"repro/internal/sim"
)

// bufEntry is one buffered flit with its arrival instant, kept for the
// paper's input-buffer age measure (Eq. 4).
type bufEntry struct {
	flit      *flow.Flit
	arrivedAt sim.Time
}

// vcStage is the pipeline stage an input VC's front packet occupies.
type vcStage uint8

const (
	vcIdle      vcStage = iota // no packet being routed
	vcWaitingVC                // route computed, waiting for VC allocation
	vcActive                   // output VC held; flits stream through SA
)

// inputVC is one virtual channel of an input port.
type inputVC struct {
	buf   []bufEntry
	stage vcStage

	// Route computation result (valid in vcWaitingVC).
	candidates []routing.Candidate

	// Allocation result (valid in vcActive).
	outPort, outVC int
}

func (v *inputVC) empty() bool { return len(v.buf) == 0 }

func (v *inputVC) front() *bufEntry {
	if len(v.buf) == 0 {
		return nil
	}
	return &v.buf[0]
}

func (v *inputVC) pop() bufEntry {
	e := v.buf[0]
	v.buf[0] = bufEntry{}
	v.buf = v.buf[1:]
	return e
}

// InputPort holds the per-VC buffers of one router input and the
// instrumentation behind the paper's buffer-age measure.
type InputPort struct {
	vcs      []*inputVC
	bufPerVC int

	// occupied points at the router's per-port buffered-flit counter
	// (Router.inOcc): the allocator stages scan that dense array to skip
	// idle ports without touching each InputPort's cache line. total
	// points at the router's whole-router counter behind the O(1) Busy
	// predicate.
	occupied *int
	total    *int

	// creditFn returns one credit to the upstream output port for vc; the
	// network installs it with the reverse channel's latency baked in. Nil
	// for injection ports (the source queue needs no credits).
	creditFn func(vc int, now sim.Time)

	// Buffer-age window accounting (Eq. 4).
	windowResidency sim.Duration
	windowDeparted  int

	// Writes counts buffered flits over the port's lifetime (for the
	// router energy model).
	Writes int64
}

func newInputPort(vcs, bufPerVC int, occupied, total *int) *InputPort {
	p := &InputPort{vcs: make([]*inputVC, vcs), bufPerVC: bufPerVC, occupied: occupied, total: total}
	for i := range p.vcs {
		p.vcs[i] = &inputVC{}
	}
	return p
}

// Free reports the free buffer slots of one VC.
func (p *InputPort) Free(vc int) int { return p.bufPerVC - len(p.vcs[vc].buf) }

// Occupied reports the total buffered flits across VCs.
func (p *InputPort) Occupied() int { return *p.occupied }

// Arrive buffers a flit on its virtual channel at time now. The upstream
// router's credit accounting guarantees space; overflow is a protocol bug
// and panics.
func (p *InputPort) Arrive(f *flow.Flit, now sim.Time) {
	v := p.vcs[f.VC]
	if len(v.buf) >= p.bufPerVC {
		panic("router: input VC overflow — credit protocol violated")
	}
	v.buf = append(v.buf, bufEntry{flit: f, arrivedAt: now})
	*p.occupied++
	*p.total++
	p.Writes++
}

// TakeAgeWindow returns (sum of residencies, departures) accumulated since
// the last call and resets the window.
func (p *InputPort) TakeAgeWindow() (sim.Duration, int) {
	r, n := p.windowResidency, p.windowDeparted
	p.windowResidency, p.windowDeparted = 0, 0
	return r, n
}

// outVCState tracks wormhole ownership of one output virtual channel.
type outVCState struct {
	held         bool
	inPort, inVC int
	credits      int
}

// TxEntry is a flit that has traversed the crossbar and is progressing
// through the router's output pipeline toward the link.
type TxEntry struct {
	flit    *flow.Flit
	readyAt sim.Time
}

// Flit reports the entry's flit.
func (e TxEntry) Flit() *flow.Flit { return e.flit }

// ReadyAt reports when the flit clears the output pipeline and may enter
// the link.
func (e TxEntry) ReadyAt() sim.Time { return e.readyAt }

// OutputPort holds one router output: per-VC credit counters for the
// downstream input buffers, the post-crossbar pipeline queue, the DVS link
// (nil for the ejection port), and the occupancy integral behind the
// paper's buffer-utilization measure.
type OutputPort struct {
	vcs  []*outVCState
	Link *link.DVSLink // nil for ejection or unconnected ports

	infiniteCredits bool // ejection port: the sink always accepts

	tx []TxEntry
	// txTotal points at the owning router's queued-tx counter for this
	// port class (link ports vs the local ejection port), so the network
	// can skip the whole transmit or eject phase in one compare. txMask is
	// the router's bitmask of ports with queued tx (bit = 1<<port): the
	// transmit phase iterates its set bits instead of scanning every
	// OutputPort for emptiness.
	txTotal *int
	txMask  *uint32
	portBit uint32

	// Downstream buffer occupancy (capacity - credits) integrated over
	// time; BU = integral / (slots * window).
	totalSlots  int
	occupied    int
	occIntegral sim.Duration
	lastOccAt   sim.Time
}

func newOutputPort(vcs, bufPerVC, port int, infinite bool, txTotal *int, txMask *uint32) *OutputPort {
	p := &OutputPort{
		vcs:             make([]*outVCState, vcs),
		infiniteCredits: infinite,
		totalSlots:      vcs * bufPerVC,
		txTotal:         txTotal,
		txMask:          txMask,
		portBit:         1 << uint(port),
	}
	for i := range p.vcs {
		p.vcs[i] = &outVCState{credits: bufPerVC}
	}
	return p
}

// hasCredit reports whether one downstream slot is available on vc.
func (p *OutputPort) hasCredit(vc int) bool {
	return p.infiniteCredits || p.vcs[vc].credits > 0
}

// takeCredit consumes one downstream slot on vc at time now.
func (p *OutputPort) takeCredit(vc int, now sim.Time) {
	if p.infiniteCredits {
		return
	}
	p.vcs[vc].credits--
	p.noteOccupancy(now, +1)
}

// ReturnCredit restores one downstream slot on vc at time now. It is
// exported because credits arrive via network-scheduled events.
func (p *OutputPort) ReturnCredit(vc int, now sim.Time) {
	if p.infiniteCredits {
		return
	}
	p.vcs[vc].credits++
	p.noteOccupancy(now, -1)
}

func (p *OutputPort) noteOccupancy(now sim.Time, delta int) {
	if now > p.lastOccAt {
		p.occIntegral += sim.Duration(p.occupied) * (now - p.lastOccAt)
		p.lastOccAt = now
	}
	p.occupied += delta
}

// TakeOccupancyIntegral returns the occupancy integral (slot-picoseconds)
// accumulated since the last call, accrued through now, and resets it.
func (p *OutputPort) TakeOccupancyIntegral(now sim.Time) sim.Duration {
	p.noteOccupancy(now, 0)
	v := p.occIntegral
	p.occIntegral = 0
	return v
}

// TotalSlots reports the downstream buffer capacity this port tracks.
func (p *OutputPort) TotalSlots() int { return p.totalSlots }

// Occupied reports the instantaneous downstream occupancy estimate.
func (p *OutputPort) OccupiedSlots() int { return p.occupied }

// QueuedTx reports the flits waiting in the output pipeline.
func (p *OutputPort) QueuedTx() int { return len(p.tx) }

// Tx exposes the output pipeline queue (front first). Callers must not
// modify it; use PopTx to consume.
func (p *OutputPort) Tx() []TxEntry { return p.tx }

// PopTx removes and returns the front entry.
func (p *OutputPort) PopTx() TxEntry {
	e := p.tx[0]
	p.tx[0] = TxEntry{}
	p.tx = p.tx[1:]
	*p.txTotal--
	if len(p.tx) == 0 {
		*p.txMask &^= p.portBit
	}
	return e
}

// VCStage is the externally visible pipeline stage of an input VC's front
// packet, exposed for the runtime invariant audit (internal/audit).
type VCStage uint8

const (
	VCIdle      = VCStage(vcIdle)      // no packet being routed
	VCWaitingVC = VCStage(vcWaitingVC) // route computed, awaiting VC allocation
	VCActive    = VCStage(vcActive)    // output VC held; flits stream through SA
)

func (s VCStage) String() string {
	switch s {
	case VCIdle:
		return "idle"
	case VCWaitingVC:
		return "waiting-vc"
	case VCActive:
		return "active"
	}
	return "invalid"
}

// The accessors below are read-only views for the invariant audit's
// structural scans; simulation code must not depend on them.

// VCs reports the number of virtual channels on the port.
func (p *InputPort) VCs() int { return len(p.vcs) }

// BufPerVC reports the per-VC buffer capacity.
func (p *InputPort) BufPerVC() int { return p.bufPerVC }

// OccupiedVC reports the buffered flit count of one VC.
func (p *InputPort) OccupiedVC(vc int) int { return len(p.vcs[vc].buf) }

// VCState reports the allocation state of one input VC: its pipeline
// stage, the output (port, VC) it holds when active, and how many route
// candidates it carries.
func (p *InputPort) VCState(vc int) (stage VCStage, outPort, outVC, candidates int) {
	v := p.vcs[vc]
	return VCStage(v.stage), v.outPort, v.outVC, len(v.candidates)
}

// ForEachFlit walks the buffered flits of one VC front to back.
func (p *InputPort) ForEachFlit(vc int, fn func(f *flow.Flit)) {
	for i := range p.vcs[vc].buf {
		fn(p.vcs[vc].buf[i].flit)
	}
}

// VCs reports the number of virtual channels on the port.
func (p *OutputPort) VCs() int { return len(p.vcs) }

// Credits reports the downstream credit count of one VC.
func (p *OutputPort) Credits(vc int) int { return p.vcs[vc].credits }

// Held reports whether one output VC is owned by a packet and, if so, the
// input (port, VC) streaming through it.
func (p *OutputPort) Held(vc int) (held bool, inPort, inVC int) {
	s := p.vcs[vc]
	return s.held, s.inPort, s.inVC
}

// InfiniteCredits reports whether the port models an always-accepting sink
// (the ejection port).
func (p *OutputPort) InfiniteCredits() bool { return p.infiniteCredits }

// DropCreditForTest silently discards one downstream credit on vc — a
// deliberate flow-control fault used to prove the audit's credit
// conservation scan catches real protocol corruption. Never called by
// simulation code.
func (p *OutputPort) DropCreditForTest(vc int) { p.vcs[vc].credits-- }
