package router

import (
	"repro/internal/flow"
	"repro/internal/link"
	"repro/internal/sim"
)

// bufEntry is one buffered flit with its arrival instant, kept for the
// paper's input-buffer age measure (Eq. 4).
type bufEntry struct {
	flit      *flow.Flit
	arrivedAt sim.Time
}

// vcStage is the pipeline stage an input VC's front packet occupies.
type vcStage uint8

const (
	vcIdle      vcStage = iota // no packet being routed
	vcWaitingVC                // route computed, waiting for VC allocation
	vcActive                   // output VC held; flits stream through SA
)

// InputPort is the externally visible handle of one router input. The hot
// per-VC state — buffer rings, pipeline stages, allocation results — lives
// in the owning Router's dense struct-of-arrays (see Router), indexed by
// the global VC id port*VCs+vc; the handle carries only the per-port
// plumbing: the upstream credit path and the buffer-age instrumentation.
type InputPort struct {
	r    *Router
	port int

	// creditFn returns one credit to the upstream output port for vc; the
	// network installs it with the reverse channel's latency baked in. Nil
	// for injection ports (the source queue needs no credits).
	creditFn func(vc int, now sim.Time)

	// Buffer-age window accounting (Eq. 4).
	windowResidency sim.Duration
	windowDeparted  int

	// Writes counts buffered flits over the port's lifetime (for the
	// router energy model).
	Writes int64
}

// Free reports the free buffer slots of one VC.
func (p *InputPort) Free(vc int) int {
	return p.r.bufPerVC - int(p.r.inCount[p.port*p.r.vcs+vc])
}

// Occupied reports the total buffered flits across VCs.
func (p *InputPort) Occupied() int { return p.r.inOcc[p.port] }

// Arrive buffers a flit on its virtual channel at time now. The upstream
// router's credit accounting guarantees space; overflow is a protocol bug
// and panics. A flit landing on an empty VC is a state transition the
// incremental allocators track: it arms the RC work-list (idle VC, new
// head at the front) or the SA candidate mask (active VC, stream resumes).
func (p *InputPort) Arrive(f *flow.Flit, now sim.Time) {
	r := p.r
	g := p.port*r.vcs + f.VC
	cnt := int(r.inCount[g])
	if cnt >= r.bufPerVC {
		panic("router: input VC overflow — credit protocol violated")
	}
	slot := cnt + int(r.inHead[g])
	if slot >= r.bufPerVC {
		slot -= r.bufPerVC
	}
	r.inBuf[g*r.bufPerVC+slot] = bufEntry{flit: f, arrivedAt: now}
	r.inCount[g] = int32(cnt + 1)
	r.inOcc[p.port]++
	r.bufFlits++
	p.Writes++
	if cnt == 0 {
		switch r.inStage[g] {
		case vcIdle:
			r.rcPush(g)
		case vcActive:
			r.saOn(g)
		}
	}
}

// TakeAgeWindow returns (sum of residencies, departures) accumulated since
// the last call and resets the window.
func (p *InputPort) TakeAgeWindow() (sim.Duration, int) {
	r, n := p.windowResidency, p.windowDeparted
	p.windowResidency, p.windowDeparted = 0, 0
	return r, n
}

// TxEntry is a flit that has traversed the crossbar and is progressing
// through the router's output pipeline toward the link.
type TxEntry struct {
	flit    *flow.Flit
	readyAt sim.Time
}

// Flit reports the entry's flit.
func (e TxEntry) Flit() *flow.Flit { return e.flit }

// ReadyAt reports when the flit clears the output pipeline and may enter
// the link.
func (e TxEntry) ReadyAt() sim.Time { return e.readyAt }

// OutputPort is the externally visible handle of one router output. The
// per-VC credit counters and wormhole ownership live in the owning
// Router's dense arrays; the handle keeps the per-port machinery: the DVS
// link (nil for the ejection port), the post-crossbar pipeline queue as a
// fixed ring, and the occupancy integral behind the paper's
// buffer-utilization measure.
type OutputPort struct {
	r    *Router
	port int

	Link *link.DVSLink // nil for ejection or unconnected ports

	infiniteCredits bool // ejection port: the sink always accepts

	// tx is the output pipeline as a power-of-two ring (head/count over a
	// reused backing array), grown only when the queue reaches a new
	// high-water mark — steady-state traversal does no slice appends.
	tx      []TxEntry
	txHead  int
	txCount int
	// txTotal points at the owning router's queued-tx counter for this
	// port class (link ports vs the local ejection port), so the network
	// can skip the whole transmit or eject phase in one compare. portBit
	// is this port's bit in the router's queued-tx port mask.
	txTotal *int
	portBit uint32

	// Downstream buffer occupancy (capacity - credits) integrated over
	// time; BU = integral / (slots * window).
	totalSlots  int
	occupied    int
	occIntegral sim.Duration
	lastOccAt   sim.Time
}

// hasCredit reports whether one downstream slot is available on vc.
func (p *OutputPort) hasCredit(vc int) bool {
	return p.infiniteCredits || p.r.outCredits[p.port*p.r.vcs+vc] > 0
}

// takeCredit consumes one downstream slot on vc at time now.
func (p *OutputPort) takeCredit(vc int, now sim.Time) {
	if p.infiniteCredits {
		return
	}
	p.r.outCredits[p.port*p.r.vcs+vc]--
	p.noteOccupancy(now, +1)
}

// ReturnCredit restores one downstream slot on vc at time now. It is
// exported because credits arrive via network-scheduled events. Credit
// arrival needs no allocator work-list update: eligibility for switch
// allocation is re-checked against the credit counters at pick time, so a
// returned credit is visible to the very next SA stage.
func (p *OutputPort) ReturnCredit(vc int, now sim.Time) {
	if p.infiniteCredits {
		return
	}
	p.r.outCredits[p.port*p.r.vcs+vc]++
	p.noteOccupancy(now, -1)
}

func (p *OutputPort) noteOccupancy(now sim.Time, delta int) {
	if now > p.lastOccAt {
		p.occIntegral += sim.Duration(p.occupied) * (now - p.lastOccAt)
		p.lastOccAt = now
	}
	p.occupied += delta
}

// TakeOccupancyIntegral returns the occupancy integral (slot-picoseconds)
// accumulated since the last call, accrued through now, and resets it.
func (p *OutputPort) TakeOccupancyIntegral(now sim.Time) sim.Duration {
	p.noteOccupancy(now, 0)
	v := p.occIntegral
	p.occIntegral = 0
	return v
}

// TotalSlots reports the downstream buffer capacity this port tracks.
func (p *OutputPort) TotalSlots() int { return p.totalSlots }

// Occupied reports the instantaneous downstream occupancy estimate.
func (p *OutputPort) OccupiedSlots() int { return p.occupied }

// pushTx appends one entry to the output pipeline ring.
func (p *OutputPort) pushTx(e TxEntry) {
	if p.txCount == len(p.tx) {
		p.growTx()
	}
	p.tx[(p.txHead+p.txCount)&(len(p.tx)-1)] = e
	p.txCount++
	*p.txTotal++
	p.r.txMask |= p.portBit
}

// growTx doubles the ring, re-linearizing the queue at index 0.
func (p *OutputPort) growTx() {
	grown := make([]TxEntry, 2*len(p.tx))
	for i := 0; i < p.txCount; i++ {
		grown[i] = p.tx[(p.txHead+i)&(len(p.tx)-1)]
	}
	p.tx = grown
	p.txHead = 0
}

// QueuedTx reports the flits waiting in the output pipeline.
func (p *OutputPort) QueuedTx() int { return p.txCount }

// TxFront reports the front entry; the queue must be non-empty.
func (p *OutputPort) TxFront() TxEntry { return p.tx[p.txHead] }

// TxAt reports the i-th queued entry, front first.
func (p *OutputPort) TxAt(i int) TxEntry {
	return p.tx[(p.txHead+i)&(len(p.tx)-1)]
}

// ForEachTx walks the queued entries front to back.
func (p *OutputPort) ForEachTx(fn func(e TxEntry)) {
	for i := 0; i < p.txCount; i++ {
		fn(p.tx[(p.txHead+i)&(len(p.tx)-1)])
	}
}

// PopTx removes and returns the front entry.
func (p *OutputPort) PopTx() TxEntry {
	e := p.tx[p.txHead]
	p.tx[p.txHead] = TxEntry{}
	p.txHead = (p.txHead + 1) & (len(p.tx) - 1)
	p.txCount--
	*p.txTotal--
	if p.txCount == 0 {
		p.r.txMask &^= p.portBit
	}
	return e
}

// VCStage is the externally visible pipeline stage of an input VC's front
// packet, exposed for the runtime invariant audit (internal/audit).
type VCStage uint8

const (
	VCIdle      = VCStage(vcIdle)      // no packet being routed
	VCWaitingVC = VCStage(vcWaitingVC) // route computed, awaiting VC allocation
	VCActive    = VCStage(vcActive)    // output VC held; flits stream through SA
)

func (s VCStage) String() string {
	switch s {
	case VCIdle:
		return "idle"
	case VCWaitingVC:
		return "waiting-vc"
	case VCActive:
		return "active"
	}
	return "invalid"
}

// The accessors below are read-only views for the invariant audit's
// structural scans; simulation code must not depend on them.

// VCs reports the number of virtual channels on the port.
func (p *InputPort) VCs() int { return p.r.vcs }

// BufPerVC reports the per-VC buffer capacity.
func (p *InputPort) BufPerVC() int { return p.r.bufPerVC }

// OccupiedVC reports the buffered flit count of one VC.
func (p *InputPort) OccupiedVC(vc int) int {
	return int(p.r.inCount[p.port*p.r.vcs+vc])
}

// VCState reports the allocation state of one input VC: its pipeline
// stage, the output (port, VC) it holds when active, and how many route
// candidates it carries.
func (p *InputPort) VCState(vc int) (stage VCStage, outPort, outVC, candidates int) {
	r := p.r
	g := p.port*r.vcs + vc
	return VCStage(r.inStage[g]), int(r.inOutPort[g]), int(r.inOutVC[g]), int(r.candN[g])
}

// ForEachFlit walks the buffered flits of one VC front to back.
func (p *InputPort) ForEachFlit(vc int, fn func(f *flow.Flit)) {
	r := p.r
	g := p.port*r.vcs + vc
	base, head, cnt := g*r.bufPerVC, int(r.inHead[g]), int(r.inCount[g])
	for i := 0; i < cnt; i++ {
		slot := head + i
		if slot >= r.bufPerVC {
			slot -= r.bufPerVC
		}
		fn(r.inBuf[base+slot].flit)
	}
}

// VCs reports the number of virtual channels on the port.
func (p *OutputPort) VCs() int { return p.r.vcs }

// Credits reports the downstream credit count of one VC.
func (p *OutputPort) Credits(vc int) int {
	return int(p.r.outCredits[p.port*p.r.vcs+vc])
}

// Held reports whether one output VC is owned by a packet and, if so, the
// input (port, VC) streaming through it.
func (p *OutputPort) Held(vc int) (held bool, inPort, inVC int) {
	g := p.r.outHeldBy[p.port*p.r.vcs+vc]
	if g < 0 {
		return false, 0, 0
	}
	return true, int(g) / p.r.vcs, int(g) % p.r.vcs
}

// InfiniteCredits reports whether the port models an always-accepting sink
// (the ejection port).
func (p *OutputPort) InfiniteCredits() bool { return p.infiniteCredits }

// DropCreditForTest silently discards one downstream credit on vc — a
// deliberate flow-control fault used to prove the audit's credit
// conservation scan catches real protocol corruption. Never called by
// simulation code.
func (p *OutputPort) DropCreditForTest(vc int) {
	p.r.outCredits[p.port*p.r.vcs+vc]--
}
