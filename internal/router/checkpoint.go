package router

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/routing"
	"repro/internal/sim"
)

// Checkpointing captures a router's complete logical state between network
// steps. The capture is *normalized*: circular buffers are recorded
// front-to-back and restored at head 0, route-candidate segments keep only
// their live prefix, and the allocator work-lists (rcList, vaSet, saMask)
// are not recorded at all — they are pure functions of the per-VC stages
// and buffer counts at a step boundary and are rebuilt on restore. Ring
// positions and stale slots carry no behavioral information, so a forked
// router is behaviorally identical to the original even though its memory
// layout differs; the conformance walker compares normalized captures, so
// the normalization is invisible to it too.
//
// Flits are referenced by int32 handles: the checkpoint layer owns the
// packet table and passes encode/decode callbacks, keeping this package
// free of serialization concerns.

// BufSlot is one buffered flit in a normalized capture.
type BufSlot struct {
	Flit      int32
	ArrivedAt sim.Time
}

// TxSlot is one output-pipeline entry in a normalized capture.
type TxSlot struct {
	Flit    int32
	ReadyAt sim.Time
}

// InputPortState is the per-port input state: the buffer-age window and the
// lifetime write counter.
type InputPortState struct {
	WindowResidency sim.Duration
	WindowDeparted  int64
	Writes          int64
}

// OutputPortState is the per-port output state: the post-crossbar pipeline
// (front-to-back) and the downstream-occupancy integral.
type OutputPortState struct {
	Tx          []TxSlot
	Occupied    int32
	OccIntegral sim.Duration
	LastOccAt   sim.Time
}

// CheckpointState is the normalized logical state of one router. Per-VC
// slices are indexed by the global VC id g = port*VCs + vc.
type CheckpointState struct {
	Stage   []uint8
	OutPort []int32
	OutVC   []int32
	Cand    [][]routing.MaskCandidate
	Buf     [][]BufSlot

	OutCredits []int32
	OutHeldBy  []int32

	InArbLast []int32
	SAArbLast []int32
	VAArbLast []int32

	FlitsSwitched int64
	Activity      Activity

	Inputs  []InputPortState
	Outputs []OutputPortState
}

// CaptureCheckpoint records the router's normalized state. encode maps a
// live flit to its table handle. It fails if the router is mid-cycle (the
// RC work-list is non-empty, or a VC sits idle over a non-empty buffer —
// states that exist only inside a Step).
func (r *Router) CaptureCheckpoint(encode func(*flow.Flit) int32) (*CheckpointState, error) {
	if len(r.rcList) != 0 {
		return nil, fmt.Errorf("router %d: capture mid-cycle: RC work-list has %d entries", r.ID, len(r.rcList))
	}
	n := r.nvc
	st := &CheckpointState{
		Stage:   make([]uint8, n),
		OutPort: make([]int32, n),
		OutVC:   make([]int32, n),
		Cand:    make([][]routing.MaskCandidate, n),
		Buf:     make([][]BufSlot, n),

		OutCredits: append([]int32(nil), r.outCredits...),
		OutHeldBy:  append([]int32(nil), r.outHeldBy...),

		InArbLast: append([]int32(nil), r.inArbLast...),
		SAArbLast: append([]int32(nil), r.saArbLast...),
		VAArbLast: append([]int32(nil), r.vaArbLast...),

		FlitsSwitched: r.FlitsSwitched,
		Activity:      r.Activity,

		Inputs:  make([]InputPortState, r.ports),
		Outputs: make([]OutputPortState, r.ports),
	}
	for g := 0; g < n; g++ {
		if r.inStage[g] == vcIdle && r.inCount[g] > 0 {
			return nil, fmt.Errorf("router %d: capture mid-cycle: VC %d idle over %d buffered flits", r.ID, g, r.inCount[g])
		}
		st.Stage[g] = uint8(r.inStage[g])
		st.OutPort[g] = r.inOutPort[g]
		st.OutVC[g] = r.inOutVC[g]
		if cn := int(r.candN[g]); cn > 0 {
			st.Cand[g] = append([]routing.MaskCandidate(nil), r.cand[g*r.ports:g*r.ports+cn]...)
		}
		if cnt := int(r.inCount[g]); cnt > 0 {
			buf := make([]BufSlot, cnt)
			base, head := g*r.bufPerVC, int(r.inHead[g])
			for i := 0; i < cnt; i++ {
				slot := head + i
				if slot >= r.bufPerVC {
					slot -= r.bufPerVC
				}
				e := r.inBuf[base+slot]
				buf[i] = BufSlot{Flit: encode(e.flit), ArrivedAt: e.arrivedAt}
			}
			st.Buf[g] = buf
		}
	}
	for p := 0; p < r.ports; p++ {
		in := r.Inputs[p]
		st.Inputs[p] = InputPortState{
			WindowResidency: in.windowResidency,
			WindowDeparted:  int64(in.windowDeparted),
			Writes:          in.Writes,
		}
		out := r.Outputs[p]
		ops := OutputPortState{
			Occupied:    int32(out.occupied),
			OccIntegral: out.occIntegral,
			LastOccAt:   out.lastOccAt,
		}
		if out.txCount > 0 {
			ops.Tx = make([]TxSlot, out.txCount)
			for i := 0; i < out.txCount; i++ {
				e := out.tx[(out.txHead+i)&(len(out.tx)-1)]
				ops.Tx[i] = TxSlot{Flit: encode(e.flit), ReadyAt: e.readyAt}
			}
		}
		st.Outputs[p] = ops
	}
	return st, nil
}

// RestoreCheckpoint overwrites a freshly constructed router with a
// normalized capture, rebuilding every derived structure (work-lists,
// occupancy counters, tx masks). decode maps a flit handle back to a live
// flit; it must fail rather than return nil for a handle it cannot
// resolve. The router must have the same configuration the capture was
// taken under.
func (r *Router) RestoreCheckpoint(st *CheckpointState, decode func(int32) (*flow.Flit, error)) error {
	n := r.nvc
	if len(st.Stage) != n || len(st.OutPort) != n || len(st.OutVC) != n ||
		len(st.Cand) != n || len(st.Buf) != n ||
		len(st.OutCredits) != n || len(st.OutHeldBy) != n || len(st.VAArbLast) != n {
		return fmt.Errorf("router %d: restore with per-VC arrays sized for a different router", r.ID)
	}
	if len(st.InArbLast) != r.ports || len(st.SAArbLast) != r.ports ||
		len(st.Inputs) != r.ports || len(st.Outputs) != r.ports {
		return fmt.Errorf("router %d: restore with per-port arrays sized for a different router", r.ID)
	}
	for g := 0; g < n; g++ {
		if st.Stage[g] > uint8(vcActive) {
			return fmt.Errorf("router %d: restore VC %d with unknown stage %d", r.ID, g, st.Stage[g])
		}
		if op := st.OutPort[g]; op < 0 || int(op) >= r.ports {
			return fmt.Errorf("router %d: restore VC %d output port %d outside [0,%d)", r.ID, g, op, r.ports)
		}
		if ov := st.OutVC[g]; ov < 0 || int(ov) >= r.vcs {
			return fmt.Errorf("router %d: restore VC %d output VC %d outside [0,%d)", r.ID, g, ov, r.vcs)
		}
		if len(st.Cand[g]) > r.ports {
			return fmt.Errorf("router %d: restore VC %d with %d route candidates > %d ports", r.ID, g, len(st.Cand[g]), r.ports)
		}
		if len(st.Buf[g]) > r.bufPerVC {
			return fmt.Errorf("router %d: restore VC %d with %d flits > capacity %d", r.ID, g, len(st.Buf[g]), r.bufPerVC)
		}
		if vcStage(st.Stage[g]) == vcIdle && len(st.Buf[g]) > 0 {
			return fmt.Errorf("router %d: restore VC %d idle over %d buffered flits", r.ID, g, len(st.Buf[g]))
		}
		if c := st.OutCredits[g]; c < 0 || int(c) > r.bufPerVC {
			return fmt.Errorf("router %d: restore output VC %d with %d credits outside [0,%d]", r.ID, g, c, r.bufPerVC)
		}
		if h := st.OutHeldBy[g]; h < -1 || int(h) >= n {
			return fmt.Errorf("router %d: restore output VC %d held by %d outside [-1,%d)", r.ID, g, h, n)
		}
		if a := st.VAArbLast[g]; a < 0 || int(a) >= n {
			return fmt.Errorf("router %d: restore VA arbiter cursor %d outside [0,%d)", r.ID, a, n)
		}
	}
	for p := 0; p < r.ports; p++ {
		if a := st.InArbLast[p]; a < 0 || int(a) >= r.vcs {
			return fmt.Errorf("router %d: restore input arbiter cursor %d outside [0,%d)", r.ID, a, r.vcs)
		}
		if a := st.SAArbLast[p]; a < 0 || int(a) >= r.ports {
			return fmt.Errorf("router %d: restore SA arbiter cursor %d outside [0,%d)", r.ID, a, r.ports)
		}
	}

	// Per-VC state, normalized: buffers land at head 0.
	r.bufFlits = 0
	for g := 0; g < n; g++ {
		r.inStage[g] = vcStage(st.Stage[g])
		r.inOutPort[g] = st.OutPort[g]
		r.inOutVC[g] = st.OutVC[g]
		r.inHead[g] = 0
		r.inCount[g] = int32(len(st.Buf[g]))
		base := g * r.bufPerVC
		for i, s := range st.Buf[g] {
			f, err := decode(s.Flit)
			if err != nil {
				return fmt.Errorf("router %d: restore VC %d flit %d: %w", r.ID, g, i, err)
			}
			r.inBuf[base+i] = bufEntry{flit: f, arrivedAt: s.ArrivedAt}
		}
		cbase := g * r.ports
		copy(r.cand[cbase:cbase+len(st.Cand[g])], st.Cand[g])
		r.candN[g] = int32(len(st.Cand[g]))
	}
	copy(r.outCredits, st.OutCredits)
	copy(r.outHeldBy, st.OutHeldBy)
	copy(r.inArbLast, st.InArbLast)
	copy(r.saArbLast, st.SAArbLast)
	copy(r.vaArbLast, st.VAArbLast)
	r.FlitsSwitched = st.FlitsSwitched
	r.Activity = st.Activity

	// Derived structures: work-lists, occupancy counters, port rings.
	r.rcList = r.rcList[:0]
	r.vaSet = r.vaSet[:0]
	r.vaWaiting = 0
	for g := 0; g < n; g++ {
		r.vaPos[g] = -1
	}
	for p := range r.saMask {
		r.saMask[p] = 0
	}
	r.saPorts = 0
	for p := 0; p < r.ports; p++ {
		r.inOcc[p] = 0
	}
	for g := 0; g < n; g++ {
		cnt := int(r.inCount[g])
		r.inOcc[g/r.vcs] += cnt
		r.bufFlits += cnt
		switch vcStage(st.Stage[g]) {
		case vcWaitingVC:
			r.vaWaiting++
			r.vaAdd(g)
		case vcActive:
			if cnt > 0 {
				r.saOn(g)
			}
		}
	}

	r.txLink, r.txLocal, r.txMask = 0, 0, 0
	for p := 0; p < r.ports; p++ {
		in := r.Inputs[p]
		in.windowResidency = st.Inputs[p].WindowResidency
		in.windowDeparted = int(st.Inputs[p].WindowDeparted)
		in.Writes = st.Inputs[p].Writes

		out := r.Outputs[p]
		want := len(st.Outputs[p].Tx)
		size := len(out.tx)
		for size < want {
			size *= 2
		}
		if size != len(out.tx) {
			out.tx = make([]TxEntry, size)
		} else {
			for i := range out.tx {
				out.tx[i] = TxEntry{}
			}
		}
		out.txHead = 0
		out.txCount = want
		for i, s := range st.Outputs[p].Tx {
			f, err := decode(s.Flit)
			if err != nil {
				return fmt.Errorf("router %d: restore port %d tx %d: %w", r.ID, p, i, err)
			}
			out.tx[i] = TxEntry{flit: f, readyAt: s.ReadyAt}
		}
		*out.txTotal += want
		if want > 0 {
			r.txMask |= out.portBit
		}
		out.occupied = int(st.Outputs[p].Occupied)
		out.occIntegral = st.Outputs[p].OccIntegral
		out.lastOccAt = st.Outputs[p].LastOccAt
	}
	return nil
}
