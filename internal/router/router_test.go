package router

import (
	"fmt"
	"testing"

	"repro/internal/flow"
	"repro/internal/routing"
	"repro/internal/sim"
)

const period = sim.Nanosecond

// bothPaths runs a subtest against the work-list allocators and the
// retained reference scan path; the two must behave identically.
func bothPaths(t *testing.T, fn func(t *testing.T, ref bool)) {
	t.Helper()
	for _, ref := range []bool{false, true} {
		name := "worklist"
		if ref {
			name = "ref"
		}
		t.Run(name, func(t *testing.T) { fn(t, ref) })
	}
}

// testRouter builds a small router whose RouteFn always sends packets to
// output port `out` on any VC.
func testRouter(t *testing.T, cfg Config, out int) *Router {
	t.Helper()
	r, err := New(7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.RouteFn = func(_ *flow.Packet, buf []routing.MaskCandidate) []routing.MaskCandidate {
		return append(buf, routing.MaskCandidate{Port: out, VCMask: 0b11})
	}
	return r
}

// stageOf reads the pipeline stage of input VC (port, vc).
func stageOf(r *Router, port, vc int) vcStage { return r.inStage[port*r.vcs+vc] }

// makePacket builds a packet's flit train assigned to input VC vc.
func makePacket(id int64, vc int) []*flow.Flit {
	p := &flow.Packet{ID: id, Src: 0, Dst: 1}
	flits := flow.NewPacketFlits(p)
	for _, f := range flits {
		f.VC = vc
	}
	return flits
}

// tickN advances the router n cycles starting at cycle c0.
func tickN(r *Router, c0, n int) {
	for c := c0; c < c0+n; c++ {
		r.Tick(sim.Time(c)*period, period)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := NewConfig(5).Validate(); err != nil {
		t.Errorf("paper config invalid: %v", err)
	}
	bad := []Config{
		{Ports: 1, VCs: 2, BufPerPort: 8, PipelineDepth: 13},
		{Ports: 5, VCs: 0, BufPerPort: 8, PipelineDepth: 13},
		{Ports: 5, VCs: 4, BufPerPort: 2, PipelineDepth: 13},
		{Ports: 5, VCs: 2, BufPerPort: 8, PipelineDepth: 3},
		{Ports: 33, VCs: 1, BufPerPort: 64, PipelineDepth: 13},  // > 32 ports
		{Ports: 5, VCs: 16, BufPerPort: 80, PipelineDepth: 13},  // 80 global VCs > 64
		{Ports: 32, VCs: 4, BufPerPort: 128, PipelineDepth: 13}, // 128 global VCs > 64
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if got := NewConfig(5).BufPerVC(); got != 64 {
		t.Errorf("BufPerVC = %d, want 64", got)
	}
}

func TestHeadFlitThreeStagePipeline(t *testing.T) {
	bothPaths(t, func(t *testing.T, ref bool) {
		cfg := Config{Ports: 3, VCs: 2, BufPerPort: 8, PipelineDepth: 13}
		r := testRouter(t, cfg, 2)
		r.Ref = ref
		flits := makePacket(1, 0)
		r.Inputs[1].Arrive(flits[0], 0)

		// Cycle 0: RC only. Cycle 1: VA. Cycle 2: SA + traversal.
		r.Tick(0, period)
		if got := stageOf(r, 1, 0); got != vcWaitingVC {
			t.Fatalf("after cycle 0: stage = %v, want waiting-VC", got)
		}
		r.Tick(period, period)
		if got := stageOf(r, 1, 0); got != vcActive {
			t.Fatalf("after cycle 1: stage = %v, want active", got)
		}
		if r.Outputs[2].QueuedTx() != 0 {
			t.Fatal("flit traversed before SA cycle")
		}
		r.Tick(2*period, period)
		if r.Outputs[2].QueuedTx() != 1 {
			t.Fatal("flit did not traverse at SA cycle")
		}
		// Ready after the deep pipeline: SA at t=2ns + (13-3) ns = 12ns.
		if got := r.Outputs[2].TxFront().ReadyAt(); got != 12*period {
			t.Errorf("readyAt = %v, want 12ns", got)
		}
	})
}

func TestWholePacketStreamsAndReleasesVC(t *testing.T) {
	bothPaths(t, func(t *testing.T, ref bool) {
		cfg := Config{Ports: 3, VCs: 2, BufPerPort: 10, PipelineDepth: 13}
		r := testRouter(t, cfg, 2)
		r.Ref = ref
		for _, f := range makePacket(1, 0) {
			r.Inputs[1].Arrive(f, 0)
		}
		tickN(r, 0, 7) // RC+VA+5 SA cycles
		out := r.Outputs[2]
		if got := out.QueuedTx(); got != flow.FlitsPerPacket {
			t.Fatalf("transmitted %d flits, want %d", got, flow.FlitsPerPacket)
		}
		// Tail must release the output VC and return the input VC to idle.
		ov := out.TxFront().Flit().VC
		if held, _, _ := out.Held(ov); held {
			t.Error("output VC still held after tail")
		}
		if got := stageOf(r, 1, 0); got != vcIdle {
			t.Errorf("input VC stage = %v, want idle", got)
		}
		// Flits stay in order and on one VC.
		for i := 0; i < out.QueuedTx(); i++ {
			f := out.TxAt(i).Flit()
			if f.Seq != i {
				t.Errorf("tx[%d] is seq %d", i, f.Seq)
			}
			if f.VC != ov {
				t.Errorf("flit %d switched VC mid-packet", i)
			}
		}
	})
}

func TestOnePacketPerCyclePerOutput(t *testing.T) {
	cfg := Config{Ports: 3, VCs: 2, BufPerPort: 10, PipelineDepth: 13}
	r := testRouter(t, cfg, 2)
	// Two packets on different input ports, both heading to output 2.
	for _, f := range makePacket(1, 0) {
		r.Inputs[0].Arrive(f, 0)
	}
	for _, f := range makePacket(2, 0) {
		r.Inputs[1].Arrive(f, 0)
	}
	prev := 0
	for c := 0; c < 16; c++ {
		r.Tick(sim.Time(c)*period, period)
		got := r.Outputs[2].QueuedTx()
		if got-prev > 1 {
			t.Fatalf("cycle %d: output port accepted %d flits in one cycle", c, got-prev)
		}
		prev = got
	}
	if prev != 2*flow.FlitsPerPacket {
		t.Errorf("total flits = %d, want %d", prev, 2*flow.FlitsPerPacket)
	}
}

func TestSwitchAllocationRoundRobinFair(t *testing.T) {
	cfg := Config{Ports: 3, VCs: 2, BufPerPort: 20, PipelineDepth: 13}
	r := testRouter(t, cfg, 2)
	// Saturate both input ports with packets on both VCs.
	id := int64(0)
	for in := 0; in < 2; in++ {
		for vc := 0; vc < 2; vc++ {
			id++
			for _, f := range makePacket(id, vc) {
				r.Inputs[in].Arrive(f, 0)
			}
		}
	}
	tickN(r, 0, 30)
	// Both packets' flits interleave: count per input port of the first 10
	// transmitted flits (after both are active).
	counts := map[int64]int{}
	r.Outputs[2].ForEachTx(func(e TxEntry) {
		counts[e.Flit().Packet.ID]++
	})
	if len(counts) < 2 {
		t.Fatalf("only %d packets made progress", len(counts))
	}
}

func TestCreditExhaustionBlocksSA(t *testing.T) {
	bothPaths(t, func(t *testing.T, ref bool) {
		cfg := Config{Ports: 3, VCs: 2, BufPerPort: 20, PipelineDepth: 13}
		r := testRouter(t, cfg, 2)
		r.Ref = ref
		// Pre-consume downstream credits so each output VC has only 2 left.
		for vc := 0; vc < 2; vc++ {
			for i := 0; i < cfg.BufPerVC()-2; i++ {
				r.Outputs[2].takeCredit(vc, 0)
			}
		}
		for _, f := range makePacket(1, 0) {
			r.Inputs[1].Arrive(f, 0)
		}
		tickN(r, 0, 10)
		// Only 2 flits can go: credits for the chosen output VC run out.
		if got := r.Outputs[2].QueuedTx(); got != 2 {
			t.Fatalf("transmitted %d flits with 2 credits, want 2", got)
		}
		// Returning one credit releases exactly one more flit.
		ov := r.Outputs[2].TxFront().Flit().VC
		r.Outputs[2].ReturnCredit(ov, 10*period)
		tickN(r, 10, 3)
		if got := r.Outputs[2].QueuedTx(); got != 3 {
			t.Errorf("after credit return: %d flits, want 3", got)
		}
	})
}

func TestUpstreamCreditReturnedOnTraversal(t *testing.T) {
	cfg := Config{Ports: 3, VCs: 2, BufPerPort: 12, PipelineDepth: 13}
	r := testRouter(t, cfg, 2)
	var credits []int
	r.SetCreditReturn(1, func(vc int, _ sim.Time) { credits = append(credits, vc) })
	for _, f := range makePacket(1, 1) {
		r.Inputs[1].Arrive(f, 0)
	}
	tickN(r, 0, 8)
	if len(credits) != flow.FlitsPerPacket {
		t.Fatalf("returned %d credits, want %d", len(credits), flow.FlitsPerPacket)
	}
	for _, vc := range credits {
		if vc != 1 {
			t.Errorf("credit for VC %d, want 1 (arrival VC)", vc)
		}
	}
}

func TestEjectionPortHasInfiniteCredits(t *testing.T) {
	cfg := Config{Ports: 3, VCs: 2, BufPerPort: 40, PipelineDepth: 13}
	r := testRouter(t, cfg, 0) // route to ejection
	for i := int64(0); i < 4; i++ {
		for _, f := range makePacket(i, int(i)%2) {
			r.Inputs[1].Arrive(f, 0)
		}
	}
	tickN(r, 0, 40)
	if got := r.Outputs[0].QueuedTx(); got != 4*flow.FlitsPerPacket {
		t.Errorf("ejected %d flits, want %d (no credit limit)", got, 4*flow.FlitsPerPacket)
	}
}

func TestBufferAgeWindow(t *testing.T) {
	cfg := Config{Ports: 3, VCs: 2, BufPerPort: 8, PipelineDepth: 13}
	r := testRouter(t, cfg, 2)
	r.Inputs[1].Arrive(makePacket(1, 0)[0], 0)
	tickN(r, 0, 3) // head departs at SA in cycle 2 (t = 2ns)
	res, n := r.Inputs[1].TakeAgeWindow()
	if n != 1 {
		t.Fatalf("departures = %d, want 1", n)
	}
	if res != 2*period {
		t.Errorf("residency = %v, want 2ns", res)
	}
	// Window resets.
	if res2, n2 := r.Inputs[1].TakeAgeWindow(); res2 != 0 || n2 != 0 {
		t.Error("age window did not reset")
	}
}

func TestOccupancyIntegral(t *testing.T) {
	cfg := Config{Ports: 3, VCs: 2, BufPerPort: 8, PipelineDepth: 13}
	r := testRouter(t, cfg, 2)
	out := r.Outputs[2]
	// Simulate: one downstream slot occupied from t=0 to t=100ns.
	out.takeCredit(0, 0)
	out.ReturnCredit(0, 100*period)
	got := out.TakeOccupancyIntegral(100 * period)
	if got != 100*period {
		t.Errorf("occupancy integral = %v, want 100ns", got)
	}
	if out.OccupiedSlots() != 0 {
		t.Errorf("occupied = %d, want 0", out.OccupiedSlots())
	}
}

func TestArriveOverflowPanics(t *testing.T) {
	cfg := Config{Ports: 3, VCs: 2, BufPerPort: 2, PipelineDepth: 13} // 1/VC
	r := testRouter(t, cfg, 2)
	r.Inputs[1].Arrive(makePacket(1, 0)[0], 0)
	defer func() {
		if recover() == nil {
			t.Error("expected overflow panic")
		}
	}()
	r.Inputs[1].Arrive(makePacket(2, 0)[0], 0)
}

func TestNominatePrefersCreditRichPort(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 2, BufPerPort: 12, PipelineDepth: 13}
	r, err := New(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Adaptive-style route: two candidate ports; port 3 has fewer credits.
	r.RouteFn = func(_ *flow.Packet, buf []routing.MaskCandidate) []routing.MaskCandidate {
		return append(buf,
			routing.MaskCandidate{Port: 3, VCMask: 0b11},
			routing.MaskCandidate{Port: 4, VCMask: 0b11})
	}
	r.Outputs[3].takeCredit(0, 0)
	r.Outputs[3].takeCredit(0, 0)
	r.Outputs[3].takeCredit(1, 0)
	for _, f := range makePacket(1, 0) {
		r.Inputs[1].Arrive(f, 0)
	}
	tickN(r, 0, 3)
	stage, outPort, _, _ := r.Inputs[1].VCState(0)
	if stage != VCActive || outPort != 4 {
		t.Errorf("allocated port %d (stage %v), want credit-rich port 4", outPort, stage)
	}
}

func TestVCAllocationDistinctVCsForCompetingPackets(t *testing.T) {
	cfg := Config{Ports: 3, VCs: 2, BufPerPort: 12, PipelineDepth: 13}
	r := testRouter(t, cfg, 2)
	for _, f := range makePacket(1, 0) {
		r.Inputs[0].Arrive(f, 0)
	}
	for _, f := range makePacket(2, 0) {
		r.Inputs[1].Arrive(f, 0)
	}
	tickN(r, 0, 3)
	aStage, _, aVC, _ := r.Inputs[0].VCState(0)
	bStage, _, bVC, _ := r.Inputs[1].VCState(0)
	if aStage != VCActive || bStage != VCActive {
		t.Fatalf("stages = %v, %v; want both active (2 output VCs available)", aStage, bStage)
	}
	if aVC == bVC {
		t.Error("two packets allocated the same output VC")
	}
}

func TestStrayBodyFlitPanics(t *testing.T) {
	cfg := Config{Ports: 3, VCs: 2, BufPerPort: 8, PipelineDepth: 13}
	r := testRouter(t, cfg, 2)
	body := makePacket(1, 0)[1]
	r.Inputs[1].Arrive(body, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for body flit at idle VC front")
		}
	}()
	r.Tick(0, period)
}

// TestRouterConservationProperty: random packets fed through a router with
// random credit returns neither lose nor duplicate flits.
func TestRouterConservationProperty(t *testing.T) {
	bothPaths(t, func(t *testing.T, ref bool) {
		cfg := Config{Ports: 5, VCs: 2, BufPerPort: 16, PipelineDepth: 13}
		rng := sim.NewRNG(7)
		r, err := New(0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.Ref = ref
		r.RouteFn = func(p *flow.Packet, buf []routing.MaskCandidate) []routing.MaskCandidate {
			// Derive a stable pseudo-random output from the packet id.
			out := 1 + int(p.ID)%4
			return append(buf, routing.MaskCandidate{Port: out, VCMask: 0b11})
		}
		injected, forwarded := 0, 0
		inflight := map[int]int{} // per input port per VC pending flits
		var id int64
		for cycle := 0; cycle < 5000; cycle++ {
			now := sim.Time(cycle) * sim.Nanosecond
			// Random injection into a random input port/VC with space for a
			// whole packet.
			if rng.Intn(4) == 0 {
				in := rng.Intn(4) + 1
				vc := rng.Intn(2)
				key := in*2 + vc
				if r.Inputs[in].Free(vc) >= flow.FlitsPerPacket && inflight[key] == 0 {
					id++
					p := flow.NewPacket(id, 0, 1, now, -1)
					for _, f := range flow.NewPacketFlits(p) {
						f.VC = vc
						r.Inputs[in].Arrive(f, now)
					}
					injected += flow.FlitsPerPacket
				}
			}
			r.Tick(now, sim.Nanosecond)
			// Drain output pipelines and randomly return credits.
			for p := 1; p < cfg.Ports; p++ {
				out := r.Outputs[p]
				for out.QueuedTx() > 0 {
					e := out.PopTx()
					forwarded++
					if rng.Intn(2) == 0 {
						out.ReturnCredit(e.Flit().VC, now)
					} else {
						later := e.Flit().VC
						defer out.ReturnCredit(later, now) // return rest at the end
					}
				}
			}
		}
		// Let the router drain whatever credits remain.
		buffered := 0
		for p := 0; p < cfg.Ports; p++ {
			buffered += r.Inputs[p].Occupied()
		}
		if forwarded+buffered != injected {
			t.Errorf("conservation violated: injected %d, forwarded %d, buffered %d",
				injected, forwarded, buffered)
		}
	})
}

// TestVCAllocationFairness: two packets contending for the same output
// port's VCs both eventually get one (no starvation under round-robin VA).
func TestVCAllocationFairness(t *testing.T) {
	cfg := Config{Ports: 3, VCs: 2, BufPerPort: 40, PipelineDepth: 13}
	r := testRouter(t, cfg, 2)
	// Stream many packets from both inputs to output 2; track per-input
	// forwarded flits over a long window.
	id := int64(0)
	feed := func(in int, now sim.Time) {
		for vc := 0; vc < 2; vc++ {
			if r.Inputs[in].Free(vc) >= flow.FlitsPerPacket {
				id++
				for _, f := range makePacket(id, vc) {
					f.Packet.Src = in
					r.Inputs[in].Arrive(f, now)
				}
				return
			}
		}
	}
	counts := map[int]int{}
	for c := 0; c < 2000; c++ {
		now := sim.Time(c) * period
		feed(0, now)
		feed(1, now)
		r.Tick(now, period)
		out := r.Outputs[2]
		for out.QueuedTx() > 0 {
			e := out.PopTx()
			counts[e.Flit().Packet.Src]++
			out.ReturnCredit(e.Flit().VC, now)
		}
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("starvation: counts = %v", counts)
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("unfair split %v (ratio %.2f)", counts, ratio)
	}
}

// TestBodyFlitsCannotOvertake: with two active VCs on one input port,
// each VC's flits keep their internal order at the output.
func TestBodyFlitsCannotOvertake(t *testing.T) {
	cfg := Config{Ports: 3, VCs: 2, BufPerPort: 20, PipelineDepth: 13}
	r := testRouter(t, cfg, 2)
	for vc := 0; vc < 2; vc++ {
		for _, f := range makePacket(int64(vc+1), vc) {
			r.Inputs[1].Arrive(f, 0)
		}
	}
	tickN(r, 0, 20)
	lastSeq := map[int64]int{1: -1, 2: -1}
	r.Outputs[2].ForEachTx(func(e TxEntry) {
		f := e.Flit()
		if f.Seq <= lastSeq[f.Packet.ID] {
			t.Fatalf("packet %d flit %d after flit %d", f.Packet.ID, f.Seq, lastSeq[f.Packet.ID])
		}
		lastSeq[f.Packet.ID] = f.Seq
	})
	if lastSeq[1] != 4 || lastSeq[2] != 4 {
		t.Errorf("not all flits forwarded: %v", lastSeq)
	}
}

// TestActivityCounters: the energy-model event counters tally the expected
// micro-events for one packet through one router.
func TestActivityCounters(t *testing.T) {
	bothPaths(t, func(t *testing.T, ref bool) {
		cfg := Config{Ports: 3, VCs: 2, BufPerPort: 12, PipelineDepth: 13}
		r := testRouter(t, cfg, 2)
		r.Ref = ref
		for _, f := range makePacket(1, 0) {
			r.Inputs[1].Arrive(f, 0)
		}
		tickN(r, 0, 10)
		a := r.ActivitySnapshot()
		if a.BufWrites != flow.FlitsPerPacket {
			t.Errorf("buffer writes = %d, want %d", a.BufWrites, flow.FlitsPerPacket)
		}
		if a.BufReads != flow.FlitsPerPacket || a.Crossbar != flow.FlitsPerPacket {
			t.Errorf("reads/crossbar = %d/%d, want %d each", a.BufReads, a.Crossbar, flow.FlitsPerPacket)
		}
		// Grants: 1 VA + (input-stage + output-stage) per flit = 1 + 2*5 = 11.
		if a.ArbGrants != 11 {
			t.Errorf("arbiter grants = %d, want 11", a.ArbGrants)
		}
	})
}

// TestWorklistMatchesReferenceRandomized drives two identically seeded
// routers — one on the work-list allocators, one on the reference full
// scans — through thousands of randomized cycles and demands equal state
// at every step: same tx streams, same stages, same arbiter outcomes
// (via the activity counters), same credits.
func TestWorklistMatchesReferenceRandomized(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 2, BufPerPort: 16, PipelineDepth: 13}
	mk := func(ref bool) *Router {
		r, err := New(0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.Ref = ref
		r.Asserts = true
		r.RouteFn = func(p *flow.Packet, buf []routing.MaskCandidate) []routing.MaskCandidate {
			out := 1 + int(p.ID)%4
			alt := 1 + int(p.ID/7)%4
			buf = append(buf, routing.MaskCandidate{Port: out, VCMask: 0b11})
			if alt != out {
				buf = append(buf, routing.MaskCandidate{Port: alt, VCMask: 0b10})
			}
			return buf
		}
		return r
	}
	a, b := mk(false), mk(true)
	rngA, rngB := sim.NewRNG(99), sim.NewRNG(99)

	drive := func(r *Router, rng *sim.RNG, now sim.Time, id int64) {
		if rng.Intn(3) == 0 {
			in := rng.Intn(4) + 1
			vc := rng.Intn(2)
			if r.Inputs[in].Free(vc) >= flow.FlitsPerPacket {
				p := flow.NewPacket(id, 0, 1, now, -1)
				for _, f := range flow.NewPacketFlits(p) {
					f.VC = vc
					r.Inputs[in].Arrive(f, now)
				}
			}
		}
		r.Tick(now, sim.Nanosecond)
		for pt := 1; pt < cfg.Ports; pt++ {
			out := r.Outputs[pt]
			for out.QueuedTx() > 0 && rng.Intn(4) != 0 {
				e := out.PopTx()
				out.ReturnCredit(e.Flit().VC, now)
			}
		}
	}

	for cycle := 0; cycle < 8000; cycle++ {
		now := sim.Time(cycle) * sim.Nanosecond
		id := int64(cycle + 1)
		drive(a, rngA, now, id)
		drive(b, rngB, now, id)

		if a.Activity != b.Activity {
			t.Fatalf("cycle %d: activity diverged: worklist %+v, ref %+v", cycle, a.Activity, b.Activity)
		}
		for p := 0; p < cfg.Ports; p++ {
			for v := 0; v < cfg.VCs; v++ {
				g := p*cfg.VCs + v
				if a.inStage[g] != b.inStage[g] || a.inCount[g] != b.inCount[g] ||
					a.outCredits[g] != b.outCredits[g] || a.outHeldBy[g] != b.outHeldBy[g] {
					t.Fatalf("cycle %d: VC (%d,%d) diverged: stage %v/%v count %d/%d credits %d/%d heldBy %d/%d",
						cycle, p, v, a.inStage[g], b.inStage[g], a.inCount[g], b.inCount[g],
						a.outCredits[g], b.outCredits[g], a.outHeldBy[g], b.outHeldBy[g])
				}
			}
			ao, bo := a.Outputs[p], b.Outputs[p]
			if ao.QueuedTx() != bo.QueuedTx() {
				t.Fatalf("cycle %d: port %d tx depth %d vs %d", cycle, p, ao.QueuedTx(), bo.QueuedTx())
			}
			for i := 0; i < ao.QueuedTx(); i++ {
				ea, eb := ao.TxAt(i), bo.TxAt(i)
				if ea.ReadyAt() != eb.ReadyAt() || ea.Flit().Packet.ID != eb.Flit().Packet.ID ||
					ea.Flit().Seq != eb.Flit().Seq || ea.Flit().VC != eb.Flit().VC {
					t.Fatalf("cycle %d: port %d tx[%d] diverged", cycle, p, i)
				}
			}
		}
	}
}

// TestWorklistInvariants drives a router through randomized traffic with
// Asserts on and checks the incremental allocator bookkeeping against the
// ground-truth predicates after every cycle.
func TestWorklistInvariants(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 2, BufPerPort: 16, PipelineDepth: 13}
	r, err := New(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Asserts = true
	r.RouteFn = func(p *flow.Packet, buf []routing.MaskCandidate) []routing.MaskCandidate {
		return append(buf, routing.MaskCandidate{Port: 1 + int(p.ID)%4, VCMask: 0b11})
	}
	rng := sim.NewRNG(5)
	var id int64
	for cycle := 0; cycle < 6000; cycle++ {
		now := sim.Time(cycle) * sim.Nanosecond
		if rng.Intn(3) == 0 {
			in := rng.Intn(4) + 1
			vc := rng.Intn(2)
			if r.Inputs[in].Free(vc) >= flow.FlitsPerPacket {
				id++
				p := flow.NewPacket(id, 0, 1, now, -1)
				for _, f := range flow.NewPacketFlits(p) {
					f.VC = vc
					r.Inputs[in].Arrive(f, now)
				}
			}
		}
		r.Tick(now, sim.Nanosecond)
		for pt := 1; pt < cfg.Ports; pt++ {
			out := r.Outputs[pt]
			for out.QueuedTx() > 0 && rng.Intn(3) != 0 {
				e := out.PopTx()
				out.ReturnCredit(e.Flit().VC, now)
			}
		}
		if err := checkWorklistInvariants(r); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
}

// checkWorklistInvariants verifies the documented work-list invariants
// against a full scan of the SoA state.
func checkWorklistInvariants(r *Router) error {
	inSet := make(map[int32]bool, len(r.vaSet))
	for i, g := range r.vaSet {
		if inSet[g] {
			return fmt.Errorf("vaSet holds VC %d twice", g)
		}
		inSet[g] = true
		if r.vaPos[g] != int32(i) {
			return fmt.Errorf("vaPos[%d] = %d, want %d", g, r.vaPos[g], i)
		}
	}
	waiting := 0
	for g := 0; g < r.nvc; g++ {
		isWaiting := r.inStage[g] == vcWaitingVC
		if isWaiting {
			waiting++
		}
		if isWaiting != inSet[int32(g)] {
			return fmt.Errorf("VC %d: waiting=%v but vaSet membership=%v", g, isWaiting, inSet[int32(g)])
		}
		if !inSet[int32(g)] && r.vaPos[g] != -1 {
			return fmt.Errorf("VC %d: stale vaPos %d", g, r.vaPos[g])
		}
		p, v := g/r.vcs, g%r.vcs
		saBit := r.saMask[p]>>uint(v)&1 != 0
		saWant := r.inStage[g] == vcActive && r.inCount[g] > 0
		if saBit != saWant {
			return fmt.Errorf("VC (%d,%d): saMask bit %v, predicate %v", p, v, saBit, saWant)
		}
	}
	if waiting != r.vaWaiting {
		return fmt.Errorf("vaWaiting = %d, scan found %d", r.vaWaiting, waiting)
	}
	for p := 0; p < r.ports; p++ {
		portBit := r.saPorts>>uint(p)&1 != 0
		if portBit != (r.saMask[p] != 0) {
			return fmt.Errorf("port %d: saPorts bit %v, saMask %b", p, portBit, r.saMask[p])
		}
	}
	for _, g := range r.vaReq {
		if g != 0 {
			return fmt.Errorf("vaReq not cleared between cycles")
		}
	}
	return nil
}
