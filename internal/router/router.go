package router

import (
	"fmt"
	"math/bits"

	"repro/internal/flow"
	"repro/internal/routing"
	"repro/internal/sim"
)

// Config sizes a router. NewConfig returns the paper's setup.
type Config struct {
	// Ports is the number of router ports including the local
	// injection/ejection port 0.
	Ports int
	// VCs is the number of virtual channels per port (paper: 2).
	VCs int
	// BufPerPort is the flit buffer capacity of one input port, divided
	// evenly among its VCs (paper: 128).
	BufPerPort int
	// PipelineDepth is the head-flit latency through router plus link at
	// full link speed, in router cycles (paper: 13, like the Alpha 21364's
	// integrated router). Three cycles are the RC/VA/SA allocation stages;
	// the remainder models switch traversal and the deep physical pipeline.
	PipelineDepth int
}

// NewConfig returns the paper's router configuration for a given port
// count.
func NewConfig(ports int) Config {
	return Config{Ports: ports, VCs: 2, BufPerPort: 128, PipelineDepth: 13}
}

// Validate reports whether the configuration is usable. The allocators
// arbitrate over bitmasks — input ports and per-port VCs in 32-bit words,
// global input VCs in a 64-bit word — so port and VC counts are bounded
// accordingly (the paper's largest router is 7-ported with 2 VCs).
func (c Config) Validate() error {
	switch {
	case c.Ports < 2:
		return fmt.Errorf("router: need >= 2 ports, got %d", c.Ports)
	case c.Ports > 32:
		return fmt.Errorf("router: mask allocators support <= 32 ports, got %d", c.Ports)
	case c.VCs < 1:
		return fmt.Errorf("router: need >= 1 VC, got %d", c.VCs)
	case c.Ports*c.VCs > 64:
		return fmt.Errorf("router: mask allocators support <= 64 total VCs, got %d*%d", c.Ports, c.VCs)
	case c.BufPerPort < c.VCs:
		return fmt.Errorf("router: %d buffers cannot cover %d VCs", c.BufPerPort, c.VCs)
	case c.PipelineDepth < 4:
		return fmt.Errorf("router: pipeline depth %d < 4 (RC+VA+SA+ST)", c.PipelineDepth)
	}
	return nil
}

// BufPerVC reports the per-VC share of the input buffer.
func (c Config) BufPerVC() int { return c.BufPerPort / c.VCs }

// Router is one pipelined virtual-channel router. The network layer owns
// flit transport: it calls Arrive on input ports, Tick once per router
// cycle, and drains output-port tx queues onto links.
//
// All hot per-VC state lives in dense struct-of-arrays indexed by the
// global VC id g = port*VCs + vc, so a busy router's allocation cycle
// walks a handful of contiguous arrays instead of chasing per-VC heap
// objects. The allocator stages are incremental: candidates are enqueued
// on the state transitions that create them (flit arrival, VC grant, tail
// release), so per-cycle arbitration cost scales with actual requests —
// see rcList, vaSet and saMask below. A full-scan reference
// implementation of all three stages is retained behind Ref; the
// equivalence suite proves both paths byte-identical.
type Router struct {
	ID  int
	Cfg Config

	Inputs  []*InputPort
	Outputs []*OutputPort

	// RouteFn computes admissible outputs for a head flit's packet at this
	// router, appending to buf (which has capacity for the worst case);
	// the network installs it with topology and algorithm bound.
	RouteFn func(p *flow.Packet, buf []routing.MaskCandidate) []routing.MaskCandidate

	// Geometry, denormalized from Cfg for the hot loops.
	ports    int
	vcs      int
	nvc      int // ports * vcs
	bufPerVC int

	// Input VC state, indexed by g. inBuf is one slab of per-VC ring
	// segments: VC g owns inBuf[g*bufPerVC : (g+1)*bufPerVC], a circular
	// buffer over inHead/inCount. cand is a slab of route-candidate
	// segments: VC g owns cand[g*ports : (g+1)*ports], of which the first
	// candN[g] entries are live. inOutPort/inOutVC are the allocated
	// output while the VC is active.
	inStage   []vcStage
	inHead    []int32
	inCount   []int32
	inOutPort []int32
	inOutVC   []int32
	inBuf     []bufEntry
	cand      []routing.MaskCandidate
	candN     []int32

	// Output VC state, indexed by g = port*VCs + vc: downstream credit
	// counts and wormhole ownership (the global input VC id holding the
	// output VC, or -1). infMask has bit p set when output port p models
	// an infinite sink (the ejection port).
	outCredits []int32
	outHeldBy  []int32
	infMask    uint32

	// Round-robin rotation pointers (see pick32/pick64): per input port
	// over its VCs (SA input stage), per output port over input ports (SA
	// output stage), per output VC over global input VCs (VA).
	inArbLast []int32
	saArbLast []int32
	vaArbLast []int32

	// Incremental allocator work-lists.
	//
	// rcList holds VCs that newly satisfy the RC predicate (idle with a
	// head flit at the front): pushed by Arrive on an empty idle VC and by
	// tail release exposing a queued next packet; drained every RC stage.
	//
	// vaSet is the persistent set of VCs in vcWaitingVC (swap-remove via
	// vaPos, -1 when absent). Membership changes only on RC promotion and
	// VA grant, so the VA stage iterates exactly the waiting VCs.
	//
	// saMask[p] has bit v set iff input VC p*VCs+v is vcActive with a
	// buffered flit — the SA eligibility predicate minus the credit check,
	// which is evaluated at pick time so credit returns need no re-arm.
	// saPorts aggregates the per-port masks (bit p set iff saMask[p] != 0)
	// so the SA stage visits only ports with candidates. Maintained by
	// saOn/saOff from Arrive, VA grant, and crossbar traversal.
	rcList  []int32
	vaSet   []int32
	vaPos   []int32
	saMask  []uint32
	saPorts uint32

	// Per-tick scratch, reused to keep the hot loop allocation-free:
	// vaReq[key] accumulates the VA request bitmap per output VC (always
	// zeroed again within the stage), scNominee the SA input-stage winner
	// per input port.
	vaReq     []uint64
	scNominee []int32

	// vaWaiting counts input VCs in the vcWaitingVC stage, so the VA stage
	// can bail out in one compare when nothing is waiting (the common case).
	vaWaiting int

	// Aggregate work counters, maintained by the ports through back
	// pointers: bufFlits totals buffered input flits across all ports,
	// txLink totals queued tx entries on link output ports, txLocal on the
	// local ejection port. They make Busy and the network's per-phase
	// early-outs O(1) instead of per-port sweeps. inOcc holds the per-port
	// buffered-flit counts in one dense array so the reference allocator
	// stages can skip idle ports without touching each InputPort; txMask
	// has bit 1<<port set while that output port has queued tx, so the
	// network's transmit phase visits only ports with work.
	bufFlits int
	txLink   int
	txLocal  int
	inOcc    []int
	txMask   uint32

	// Ref selects the retained full-scan reference allocators instead of
	// the work-list path. Both paths share the traversal, grant and RC
	// promotion bodies (which maintain the work-list structures either
	// way), and produce byte-identical simulations; the reference path
	// exists to prove that.
	Ref bool

	// Asserts enables in-pipeline legality checks (no grant without
	// request, no traversal without a downstream credit). Set by the
	// runtime invariant audit; off in normal runs so the hot loop stays
	// branch-cheap.
	Asserts bool

	// Counters for instrumentation and the router energy model.
	FlitsSwitched int64
	// Activity tallies every energy-bearing micro-event: buffer writes
	// (flit arrivals), buffer reads (flits leaving through the crossbar),
	// crossbar traversals and arbiter grants.
	Activity Activity
}

// Activity counts a router's energy-bearing events (see
// internal/power.RouterEnergyModel).
type Activity struct {
	BufWrites int64
	BufReads  int64
	Crossbar  int64
	ArbGrants int64
}

// Add accumulates another activity tally.
func (a *Activity) Add(b Activity) {
	a.BufWrites += b.BufWrites
	a.BufReads += b.BufReads
	a.Crossbar += b.Crossbar
	a.ArbGrants += b.ArbGrants
}

// New constructs a router. The ejection port (port 0) gets infinite
// credits: the paper assumes immediate ejection at the destination.
func New(id int, cfg Config) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Router{
		ID: id, Cfg: cfg,
		ports: cfg.Ports, vcs: cfg.VCs, nvc: cfg.Ports * cfg.VCs,
		bufPerVC: cfg.BufPerVC(),
	}
	n := r.nvc
	r.inStage = make([]vcStage, n)
	r.inHead = make([]int32, n)
	r.inCount = make([]int32, n)
	r.inOutPort = make([]int32, n)
	r.inOutVC = make([]int32, n)
	r.inBuf = make([]bufEntry, n*r.bufPerVC)
	r.cand = make([]routing.MaskCandidate, n*r.ports)
	r.candN = make([]int32, n)
	r.outCredits = make([]int32, n)
	r.outHeldBy = make([]int32, n)
	r.inArbLast = make([]int32, r.ports)
	r.saArbLast = make([]int32, r.ports)
	r.vaArbLast = make([]int32, n)
	r.rcList = make([]int32, 0, n)
	r.vaSet = make([]int32, 0, n)
	r.vaPos = make([]int32, n)
	r.saMask = make([]uint32, r.ports)
	r.vaReq = make([]uint64, n)
	r.scNominee = make([]int32, r.ports)
	r.inOcc = make([]int, r.ports)
	for g := 0; g < n; g++ {
		r.outCredits[g] = int32(r.bufPerVC)
		r.outHeldBy[g] = -1
		r.vaPos[g] = -1
		// Rotation pointers start at the top index so the first grant
		// wraps to requester 0.
		r.vaArbLast[g] = int32(n - 1)
	}
	r.infMask = 1 // ejection port 0
	for p := 0; p < r.ports; p++ {
		r.inArbLast[p] = int32(r.vcs - 1)
		r.saArbLast[p] = int32(r.ports - 1)
		txTotal := &r.txLink
		if p == 0 {
			txTotal = &r.txLocal
		}
		r.Inputs = append(r.Inputs, &InputPort{r: r, port: p})
		r.Outputs = append(r.Outputs, &OutputPort{
			r: r, port: p,
			infiniteCredits: p == 0,
			tx:              make([]TxEntry, 16),
			txTotal:         txTotal,
			portBit:         1 << uint(p),
			totalSlots:      cfg.VCs * r.bufPerVC,
		})
	}
	return r, nil
}

// SetCreditReturn installs the upstream credit path for one input port.
func (r *Router) SetCreditReturn(port int, fn func(vc int, now sim.Time)) {
	r.Inputs[port].creditFn = fn
}

// hasCredit reports whether output (port, vc) has a downstream slot.
func (r *Router) hasCredit(port, vc int) bool {
	return r.infMask>>uint(port)&1 != 0 || r.outCredits[port*r.vcs+vc] > 0
}

// Tick advances the router's allocation pipeline one cycle. Stages execute
// in reverse order (SA, then VA, then RC) so a flit needs one cycle per
// stage, as in a real pipeline. period is the router clock period.
func (r *Router) Tick(now sim.Time, period sim.Duration) {
	if r.Ref {
		r.refSwitchAllocation(now, period)
		r.refVCAllocation()
		r.refRouteComputation()
		return
	}
	r.switchAllocation(now, period)
	r.vcAllocation()
	r.routeComputation()
}

// Busy reports whether ticking the router could change any state: some
// input VC holds a flit or some output pipeline is draining. A router for
// which Busy is false ticks as a provable no-op — every allocator stage
// sees zero requests and touches nothing, including the round-robin
// arbiter pointers — so the network may skip it entirely. (An input VC in
// vcActive with an empty buffer, mid-packet, also ticks as a no-op; the
// arrival of its next body flit re-marks the router.)
func (r *Router) Busy() bool {
	return r.bufFlits > 0 || r.txLink > 0 || r.txLocal > 0
}

// LinkTxQueued reports the queued tx entries across link output ports, so
// the network's transmit phase can skip the whole router in one compare.
func (r *Router) LinkTxQueued() int { return r.txLink }

// BufferedFlits reports the flits currently held in input buffers across
// all ports — the occupancy the tile-parallel engine's lookahead extraction
// reads to find routers whose buffered traffic could reach a tile boundary.
func (r *Router) BufferedFlits() int { return r.bufFlits }

// TxPortMask reports the bitmask of output ports (bit 1<<port) with queued
// tx entries; the network's transmit phase iterates its set bits.
func (r *Router) TxPortMask() uint32 { return r.txMask }

// LocalTxQueued reports the queued tx entries on the local ejection port,
// so the network's eject phase can skip the router in one compare.
func (r *Router) LocalTxQueued() int { return r.txLocal }

// Work-list maintenance. The invariants:
//   - rcList holds every VC that became (vcIdle, non-empty) since the last
//     RC stage, exactly once;
//   - g ∈ vaSet  ⟺  inStage[g] == vcWaitingVC;
//   - saMask[g/vcs] bit g%vcs set  ⟺  inStage[g] == vcActive && inCount[g] > 0,
//     and saPorts bit p set ⟺ saMask[p] != 0.

func (r *Router) rcPush(g int) { r.rcList = append(r.rcList, int32(g)) }

func (r *Router) vaAdd(g int) {
	r.vaPos[g] = int32(len(r.vaSet))
	r.vaSet = append(r.vaSet, int32(g))
}

func (r *Router) vaRemove(g int) {
	i := r.vaPos[g]
	last := r.vaSet[len(r.vaSet)-1]
	r.vaSet[i] = last
	r.vaPos[last] = i
	r.vaSet = r.vaSet[:len(r.vaSet)-1]
	r.vaPos[g] = -1
}

func (r *Router) saOn(g int) {
	p := g / r.vcs
	r.saMask[p] |= 1 << uint(g-p*r.vcs)
	r.saPorts |= 1 << uint(p)
}

func (r *Router) saOff(g int) {
	p := g / r.vcs
	m := r.saMask[p] &^ (1 << uint(g-p*r.vcs))
	r.saMask[p] = m
	if m == 0 {
		r.saPorts &^= 1 << uint(p)
	}
}

// switchAllocation is the separable SA stage plus switch traversal:
// input-first round-robin among each port's eligible VCs, then output-side
// round-robin among competing input ports. Winners leave their input
// buffer, consume a downstream credit, return an upstream credit, and enter
// the output pipeline. Only ports flagged in saPorts are visited, and only
// their flagged VCs are credit-checked — the stage never scans idle state.
func (r *Router) switchAllocation(now sim.Time, period sim.Duration) {
	// snapshot: traversal below flips saMask/saPorts bits (tail release,
	// stream running dry); the output stage must see the input stage's view.
	snapshot := r.saPorts
	if snapshot == 0 {
		return
	}
	nominee := r.scNominee // VC index per input port, -1 none
	var outWant uint32     // output ports targeted by at least one nominee
	anyNominee := false
	for pm := snapshot; pm != 0; pm &= pm - 1 {
		i := bits.TrailingZeros32(pm)
		base := i * r.vcs
		var req uint32
		for vm := r.saMask[i]; vm != 0; vm &= vm - 1 {
			v := bits.TrailingZeros32(vm)
			g := base + v
			if r.hasCredit(int(r.inOutPort[g]), int(r.inOutVC[g])) {
				req |= 1 << uint(v)
			}
		}
		if req == 0 {
			nominee[i] = -1
			continue
		}
		v := pick32(req, &r.inArbLast[i])
		if r.Asserts && req>>uint(v)&1 == 0 {
			panic(fmt.Sprintf("router %d: SA input arbiter granted port %d vc %d without a request", r.ID, i, v))
		}
		r.Activity.ArbGrants++
		nominee[i] = v
		outWant |= 1 << uint(r.inOutPort[base+int(v)])
		anyNominee = true
	}
	if !anyNominee {
		return
	}
	// Output stage: each output port with contenders grants one input port.
	for outWant != 0 {
		p := bits.TrailingZeros32(outWant)
		outWant &= outWant - 1
		var outReq uint32
		for pm := snapshot; pm != 0; pm &= pm - 1 {
			i := bits.TrailingZeros32(pm)
			if nominee[i] >= 0 && int(r.inOutPort[i*r.vcs+int(nominee[i])]) == p {
				outReq |= 1 << uint(i)
			}
		}
		winner := pick32(outReq, &r.saArbLast[p])
		if r.Asserts && outReq>>uint(winner)&1 == 0 {
			panic(fmt.Sprintf("router %d: SA output arbiter granted port %d to input %d without a request", r.ID, p, winner))
		}
		r.Activity.ArbGrants++
		r.traverse(int(winner)*r.vcs+int(nominee[winner]), now, period)
	}
}

// refSwitchAllocation is the reference SA stage: a full scan over every
// port and VC, mirroring the work-list path's arbitration exactly.
func (r *Router) refSwitchAllocation(now sim.Time, period sim.Duration) {
	nominee := r.scNominee
	var outWant uint32
	anyNominee := false
	for i := 0; i < r.ports; i++ {
		nominee[i] = -1
		if r.inOcc[i] == 0 {
			continue
		}
		var req uint32
		for v := 0; v < r.vcs; v++ {
			g := i*r.vcs + v
			if r.inStage[g] == vcActive && r.inCount[g] > 0 &&
				r.hasCredit(int(r.inOutPort[g]), int(r.inOutVC[g])) {
				req |= 1 << uint(v)
			}
		}
		if req == 0 {
			continue
		}
		v := pick32(req, &r.inArbLast[i])
		if r.Asserts && req>>uint(v)&1 == 0 {
			panic(fmt.Sprintf("router %d: SA input arbiter granted port %d vc %d without a request", r.ID, i, v))
		}
		r.Activity.ArbGrants++
		nominee[i] = v
		outWant |= 1 << uint(r.inOutPort[i*r.vcs+int(v)])
		anyNominee = true
	}
	if !anyNominee {
		return
	}
	for outWant != 0 {
		p := bits.TrailingZeros32(outWant)
		outWant &= outWant - 1
		var outReq uint32
		for i := 0; i < r.ports; i++ {
			if nominee[i] >= 0 && int(r.inOutPort[i*r.vcs+int(nominee[i])]) == p {
				outReq |= 1 << uint(i)
			}
		}
		winner := pick32(outReq, &r.saArbLast[p])
		if r.Asserts && outReq>>uint(winner)&1 == 0 {
			panic(fmt.Sprintf("router %d: SA output arbiter granted port %d to input %d without a request", r.ID, p, winner))
		}
		r.Activity.ArbGrants++
		r.traverse(int(winner)*r.vcs+int(nominee[winner]), now, period)
	}
}

// traverse moves the front flit of global input VC g through the crossbar.
func (r *Router) traverse(g int, now sim.Time, period sim.Duration) {
	i := g / r.vcs
	in := r.Inputs[i]
	outPort, outVC := int(r.inOutPort[g]), int(r.inOutVC[g])
	out := r.Outputs[outPort]

	if r.Asserts && !out.hasCredit(outVC) {
		panic(fmt.Sprintf("router %d: traversal to port %d vc %d without a downstream credit", r.ID, outPort, outVC))
	}

	head := int(r.inHead[g])
	slot := g*r.bufPerVC + head
	e := r.inBuf[slot]
	r.inBuf[slot] = bufEntry{}
	if head++; head == r.bufPerVC {
		head = 0
	}
	r.inHead[g] = int32(head)
	cnt := int(r.inCount[g]) - 1
	r.inCount[g] = int32(cnt)
	r.inOcc[i]--
	r.bufFlits--
	f := e.flit
	inVC := f.VC // the VC the flit occupied here, for the upstream credit

	// Buffer-age instrumentation (Eq. 4).
	in.windowResidency += now - e.arrivedAt
	in.windowDeparted++

	// Downstream slot reservation and upstream slot release.
	out.takeCredit(outVC, now)
	if in.creditFn != nil {
		in.creditFn(inVC, now)
	}

	f.VC = outVC
	extra := sim.Duration(r.Cfg.PipelineDepth-3) * period
	out.pushTx(TxEntry{flit: f, readyAt: now + extra})
	r.FlitsSwitched++
	r.Activity.BufReads++
	r.Activity.Crossbar++

	if f.Kind == flow.Tail {
		r.outHeldBy[outPort*r.vcs+outVC] = -1
		r.inStage[g] = vcIdle
		r.candN[g] = 0
		r.saOff(g)
		if cnt > 0 {
			// The next packet's head flit is already queued behind the
			// departed tail: the VC re-enters the RC stage.
			r.rcPush(g)
		}
	} else if cnt == 0 {
		r.saOff(g) // stream ran dry mid-packet; Arrive re-arms it
	}
}

// vcAllocation is the separable VA stage: each waiting input VC nominates
// its best free (output port, output VC) pair, then a per-output-VC
// round-robin arbiter grants among contenders. Only the VCs in vaSet — by
// invariant exactly those in vcWaitingVC — are examined.
func (r *Router) vcAllocation() {
	if r.vaWaiting == 0 {
		return
	}
	// Phase 1: nominations, against pre-grant state. vaSet order does not
	// matter — nominations are pure reads accumulated into request bitmaps.
	var keys uint64
	for _, g32 := range r.vaSet {
		g := int(g32)
		key, ok := r.nominate(g)
		if !ok {
			continue
		}
		r.vaReq[key] |= 1 << uint(g)
		keys |= 1 << uint(key)
	}
	// Phase 2: one grant per contended output VC, ascending key order.
	r.vaGrant(keys)
}

// refVCAllocation is the reference VA stage: a full scan for waiting VCs
// in (port, vc) order, sharing the grant phase with the work-list path.
func (r *Router) refVCAllocation() {
	if r.vaWaiting == 0 {
		return
	}
	var keys uint64
	for i := 0; i < r.ports; i++ {
		if r.inOcc[i] == 0 {
			// A waiting VC always holds at least its head flit, so an empty
			// port has nothing in the VA stage.
			continue
		}
		for v := 0; v < r.vcs; v++ {
			g := i*r.vcs + v
			if r.inStage[g] != vcWaitingVC {
				continue
			}
			key, ok := r.nominate(g)
			if !ok {
				continue
			}
			r.vaReq[key] |= 1 << uint(g)
			keys |= 1 << uint(key)
		}
	}
	r.vaGrant(keys)
}

// vaGrant resolves the VA request bitmaps for the output VCs flagged in
// keys, granting one waiting input VC each and clearing vaReq behind
// itself.
func (r *Router) vaGrant(keys uint64) {
	for keys != 0 {
		key := bits.TrailingZeros64(keys)
		keys &= keys - 1
		req := r.vaReq[key]
		r.vaReq[key] = 0
		g := int(pick64(req, &r.vaArbLast[key]))
		if r.Asserts && req>>uint(g)&1 == 0 {
			panic(fmt.Sprintf("router %d: VA arbiter granted output vc %d to input vc %d without a request", r.ID, key, g))
		}
		r.Activity.ArbGrants++
		r.inStage[g] = vcActive
		r.vaWaiting--
		r.vaRemove(g)
		r.inOutPort[g] = int32(key / r.vcs)
		r.inOutVC[g] = int32(key % r.vcs)
		r.outHeldBy[key] = int32(g)
		// A waiting VC holds at least its head flit, so it is SA-eligible
		// the moment it becomes active.
		r.saOn(g)
	}
}

// nominate picks the preferred free (output port, output VC) among a
// waiting VC's route candidates: the candidate output with the most
// downstream credits (adaptive congestion avoidance; ties and
// deterministic routes fall back to candidate order), and within it the
// first free admissible VC. The returned key is outPort*VCs + outVC.
func (r *Router) nominate(g int) (key int, ok bool) {
	bestScore := int32(-1)
	base := g * r.ports
	for c := 0; c < int(r.candN[g]); c++ {
		cand := r.cand[base+c]
		cbase := cand.Port * r.vcs
		inf := r.infMask>>uint(cand.Port)&1 != 0
		for m := cand.VCMask; m != 0; m &= m - 1 {
			ov := bits.TrailingZeros32(m)
			if r.outHeldBy[cbase+ov] >= 0 {
				continue
			}
			score := r.outCredits[cbase+ov]
			if inf {
				score = 1 << 30
			}
			if score > bestScore {
				bestScore = score
				key = cbase + ov
				ok = true
			}
			break // first free VC in admissible order is the port's offer
		}
	}
	return key, ok
}

// routeComputation is the RC stage: VCs that newly acquired a head flit at
// the front of an idle buffer — queued on rcList by Arrive and by tail
// release — compute their admissible outputs. List order does not matter:
// each promotion touches only its own VC's state.
func (r *Router) routeComputation() {
	for _, g32 := range r.rcList {
		g := int(g32)
		// A queued VC is promoted unless the transition was consumed
		// already (defensive; the enqueue rules fire exactly once per
		// transition into the idle+non-empty state).
		if r.inStage[g] != vcIdle || r.inCount[g] == 0 {
			continue
		}
		r.rcPromote(g)
	}
	r.rcList = r.rcList[:0]
}

// refRouteComputation is the reference RC stage: a full scan for idle
// non-empty VCs in (port, vc) order. It supersedes — and clears — rcList,
// which Arrive and traversal keep feeding either way.
func (r *Router) refRouteComputation() {
	for i := 0; i < r.ports; i++ {
		if r.inOcc[i] == 0 {
			continue
		}
		for v := 0; v < r.vcs; v++ {
			g := i*r.vcs + v
			if r.inStage[g] != vcIdle || r.inCount[g] == 0 {
				continue
			}
			r.rcPromote(g)
		}
	}
	r.rcList = r.rcList[:0]
}

// rcPromote runs route computation for one idle VC with a head flit at the
// front, moving it to the VA stage.
func (r *Router) rcPromote(g int) {
	f := r.inBuf[g*r.bufPerVC+int(r.inHead[g])].flit
	if f.Kind != flow.Head {
		panic(fmt.Sprintf("router %d: %v at front of idle VC", r.ID, f))
	}
	base := g * r.ports
	out := r.RouteFn(f.Packet, r.cand[base:base:base+r.ports])
	if len(out) == 0 {
		panic(fmt.Sprintf("router %d: no route for %v", r.ID, f))
	}
	if len(out) > r.ports {
		panic(fmt.Sprintf("router %d: %d route candidates overflow the per-VC segment", r.ID, len(out)))
	}
	r.candN[g] = int32(len(out))
	r.inStage[g] = vcWaitingVC
	r.vaWaiting++
	r.vaAdd(g)
}

// ActivitySnapshot reports the router's cumulative energy-bearing activity,
// folding per-port buffer writes into the tally.
func (r *Router) ActivitySnapshot() Activity {
	a := r.Activity
	for _, in := range r.Inputs {
		a.BufWrites += in.Writes
	}
	return a
}
