package router

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/routing"
	"repro/internal/sim"
)

// Config sizes a router. NewConfig returns the paper's setup.
type Config struct {
	// Ports is the number of router ports including the local
	// injection/ejection port 0.
	Ports int
	// VCs is the number of virtual channels per port (paper: 2).
	VCs int
	// BufPerPort is the flit buffer capacity of one input port, divided
	// evenly among its VCs (paper: 128).
	BufPerPort int
	// PipelineDepth is the head-flit latency through router plus link at
	// full link speed, in router cycles (paper: 13, like the Alpha 21364's
	// integrated router). Three cycles are the RC/VA/SA allocation stages;
	// the remainder models switch traversal and the deep physical pipeline.
	PipelineDepth int
}

// NewConfig returns the paper's router configuration for a given port
// count.
func NewConfig(ports int) Config {
	return Config{Ports: ports, VCs: 2, BufPerPort: 128, PipelineDepth: 13}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Ports < 2:
		return fmt.Errorf("router: need >= 2 ports, got %d", c.Ports)
	case c.VCs < 1:
		return fmt.Errorf("router: need >= 1 VC, got %d", c.VCs)
	case c.BufPerPort < c.VCs:
		return fmt.Errorf("router: %d buffers cannot cover %d VCs", c.BufPerPort, c.VCs)
	case c.PipelineDepth < 4:
		return fmt.Errorf("router: pipeline depth %d < 4 (RC+VA+SA+ST)", c.PipelineDepth)
	}
	return nil
}

// BufPerVC reports the per-VC share of the input buffer.
func (c Config) BufPerVC() int { return c.BufPerPort / c.VCs }

// Router is one pipelined virtual-channel router. The network layer owns
// flit transport: it calls Arrive on input ports, Tick once per router
// cycle, and drains output-port tx queues onto links.
type Router struct {
	ID  int
	Cfg Config

	Inputs  []*InputPort
	Outputs []*OutputPort

	// RouteFn computes admissible outputs for a head flit's packet at this
	// router; the network installs it with topology and algorithm bound.
	RouteFn func(p *flow.Packet) []routing.Candidate

	inputArb []*arbiter // per input port, over its VCs (SA input stage)
	saArb    []*arbiter // per output port, over input ports (SA output stage)
	vaArb    []*arbiter // per output port*VC, over global input VCs

	// Per-tick scratch buffers, reused to keep the hot loop allocation-free.
	scNominee []int
	scVCReq   []bool
	scOutReq  []bool
	scOutWant []bool
	scWants   [][]int
	scVAReq   []bool

	// vaWaiting counts input VCs in the vcWaitingVC stage, so the VA stage
	// can bail out in one compare when nothing is waiting (the common case).
	vaWaiting int

	// Aggregate work counters, maintained by the ports through back
	// pointers: bufFlits totals buffered input flits across all ports,
	// txLink totals queued tx entries on link output ports, txLocal on the
	// local ejection port. They make Busy and the network's per-phase
	// early-outs O(1) instead of per-port sweeps. inOcc holds the per-port
	// buffered-flit counts in one dense array so the allocator stages can
	// skip idle ports without touching each InputPort; txMask has bit
	// 1<<port set while that output port has queued tx, so the network's
	// transmit phase visits only ports with work.
	bufFlits int
	txLink   int
	txLocal  int
	inOcc    []int
	txMask   uint32

	// Asserts enables in-pipeline legality checks (no grant without
	// request, no traversal without a downstream credit). Set by the
	// runtime invariant audit; off in normal runs so the hot loop stays
	// branch-cheap.
	Asserts bool

	// Counters for instrumentation and the router energy model.
	FlitsSwitched int64
	// Activity tallies every energy-bearing micro-event: buffer writes
	// (flit arrivals), buffer reads (flits leaving through the crossbar),
	// crossbar traversals and arbiter grants.
	Activity Activity
}

// Activity counts a router's energy-bearing events (see
// internal/power.RouterEnergyModel).
type Activity struct {
	BufWrites int64
	BufReads  int64
	Crossbar  int64
	ArbGrants int64
}

// Add accumulates another activity tally.
func (a *Activity) Add(b Activity) {
	a.BufWrites += b.BufWrites
	a.BufReads += b.BufReads
	a.Crossbar += b.Crossbar
	a.ArbGrants += b.ArbGrants
}

// New constructs a router. The ejection port (port 0) gets infinite
// credits: the paper assumes immediate ejection at the destination.
func New(id int, cfg Config) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Router{ID: id, Cfg: cfg}
	r.inOcc = make([]int, cfg.Ports)
	for p := 0; p < cfg.Ports; p++ {
		txTotal := &r.txLink
		if p == 0 {
			txTotal = &r.txLocal
		}
		r.Inputs = append(r.Inputs, newInputPort(cfg.VCs, cfg.BufPerVC(), &r.inOcc[p], &r.bufFlits))
		r.Outputs = append(r.Outputs, newOutputPort(cfg.VCs, cfg.BufPerVC(), p, p == 0, txTotal, &r.txMask))
		r.inputArb = append(r.inputArb, newArbiter(cfg.VCs))
		r.saArb = append(r.saArb, newArbiter(cfg.Ports))
	}
	for i := 0; i < cfg.Ports*cfg.VCs; i++ {
		r.vaArb = append(r.vaArb, newArbiter(cfg.Ports*cfg.VCs))
	}
	r.scNominee = make([]int, cfg.Ports)
	r.scVCReq = make([]bool, cfg.VCs)
	r.scOutReq = make([]bool, cfg.Ports)
	r.scOutWant = make([]bool, cfg.Ports)
	r.scWants = make([][]int, cfg.Ports*cfg.VCs)
	r.scVAReq = make([]bool, cfg.Ports*cfg.VCs)
	return r, nil
}

// SetCreditReturn installs the upstream credit path for one input port.
func (r *Router) SetCreditReturn(port int, fn func(vc int, now sim.Time)) {
	r.Inputs[port].creditFn = fn
}

// Tick advances the router's allocation pipeline one cycle. Stages execute
// in reverse order (SA, then VA, then RC) so a flit needs one cycle per
// stage, as in a real pipeline. period is the router clock period.
func (r *Router) Tick(now sim.Time, period sim.Duration) {
	r.switchAllocation(now, period)
	r.vcAllocation()
	r.routeComputation()
}

// Busy reports whether ticking the router could change any state: some
// input VC holds a flit or some output pipeline is draining. A router for
// which Busy is false ticks as a provable no-op — every allocator stage
// sees zero requests and touches nothing, including the round-robin
// arbiter pointers — so the network may skip it entirely. (An input VC in
// vcActive with an empty buffer, mid-packet, also ticks as a no-op; the
// arrival of its next body flit re-marks the router.)
func (r *Router) Busy() bool {
	return r.bufFlits > 0 || r.txLink > 0 || r.txLocal > 0
}

// LinkTxQueued reports the queued tx entries across link output ports, so
// the network's transmit phase can skip the whole router in one compare.
func (r *Router) LinkTxQueued() int { return r.txLink }

// TxPortMask reports the bitmask of output ports (bit 1<<port) with queued
// tx entries; the network's transmit phase iterates its set bits.
func (r *Router) TxPortMask() uint32 { return r.txMask }

// LocalTxQueued reports the queued tx entries on the local ejection port,
// so the network's eject phase can skip the router in one compare.
func (r *Router) LocalTxQueued() int { return r.txLocal }

// switchAllocation is the separable SA stage plus switch traversal:
// input-first round-robin among each port's eligible VCs, then output-side
// round-robin among competing input ports. Winners leave their input
// buffer, consume a downstream credit, return an upstream credit, and enter
// the output pipeline.
func (r *Router) switchAllocation(now sim.Time, period sim.Duration) {
	// Input stage: each input port nominates one VC. Idle ports (the
	// common case network-wide) skip arbitration entirely — empty ports in
	// one integer compare, ports whose VCs are all blocked after the sweep.
	nominee := r.scNominee // VC index per input port, -1 none
	requests := r.scVCReq
	outWant := r.scOutWant // output ports targeted by at least one nominee
	anyNominee := false
	for i, occ := range r.inOcc {
		if occ == 0 {
			nominee[i] = -1
			continue
		}
		in := r.Inputs[i]
		anyReq := false
		for v, vc := range in.vcs {
			req := vc.stage == vcActive && !vc.empty() &&
				r.Outputs[vc.outPort].hasCredit(vc.outVC)
			requests[v] = req
			anyReq = anyReq || req
		}
		if !anyReq {
			nominee[i] = -1
			continue
		}
		if !anyNominee {
			for p := range outWant {
				outWant[p] = false
			}
		}
		nominee[i] = r.inputArb[i].pick(requests)
		if r.Asserts && nominee[i] >= 0 && !requests[nominee[i]] {
			panic(fmt.Sprintf("router %d: SA input arbiter granted port %d vc %d without a request", r.ID, i, nominee[i]))
		}
		r.Activity.ArbGrants++
		outWant[in.vcs[nominee[i]].outPort] = true
		anyNominee = true
	}
	if !anyNominee {
		return
	}
	// Output stage: each output port with contenders grants one input port.
	outReq := r.scOutReq
	for p := range r.Outputs {
		if !outWant[p] {
			continue
		}
		for i := range r.Inputs {
			outReq[i] = nominee[i] >= 0 && r.Inputs[i].vcs[nominee[i]].outPort == p
		}
		winner := r.saArb[p].pick(outReq)
		if winner < 0 {
			continue
		}
		if r.Asserts && !outReq[winner] {
			panic(fmt.Sprintf("router %d: SA output arbiter granted port %d to input %d without a request", r.ID, p, winner))
		}
		r.Activity.ArbGrants++
		r.traverse(winner, nominee[winner], now, period)
	}
}

// traverse moves the front flit of input (i, v) through the crossbar.
func (r *Router) traverse(i, v int, now sim.Time, period sim.Duration) {
	in := r.Inputs[i]
	vc := in.vcs[v]
	out := r.Outputs[vc.outPort]

	if r.Asserts && !out.hasCredit(vc.outVC) {
		panic(fmt.Sprintf("router %d: traversal to port %d vc %d without a downstream credit", r.ID, vc.outPort, vc.outVC))
	}

	e := vc.pop()
	r.inOcc[i]--
	r.bufFlits--
	f := e.flit
	inVC := f.VC // the VC the flit occupied here, for the upstream credit

	// Buffer-age instrumentation (Eq. 4).
	in.windowResidency += now - e.arrivedAt
	in.windowDeparted++

	// Downstream slot reservation and upstream slot release.
	out.takeCredit(vc.outVC, now)
	if in.creditFn != nil {
		in.creditFn(inVC, now)
	}

	f.VC = vc.outVC
	extra := sim.Duration(r.Cfg.PipelineDepth-3) * period
	out.tx = append(out.tx, TxEntry{flit: f, readyAt: now + extra})
	*out.txTotal++
	*out.txMask |= out.portBit
	r.FlitsSwitched++
	r.Activity.BufReads++
	r.Activity.Crossbar++

	if f.Kind == flow.Tail {
		out.vcs[vc.outVC].held = false
		vc.stage = vcIdle
		vc.candidates = nil
	}
}

// vcAllocation is the separable VA stage: each waiting input VC nominates
// its best free (output port, output VC) pair, then a per-output-VC
// round-robin arbiter grants among contenders.
func (r *Router) vcAllocation() {
	if r.vaWaiting == 0 {
		return
	}
	cfg := r.Cfg
	// wants[key] lists global input-VC ids nominating output VC key;
	// iterated by key index to keep allocation deterministic.
	wants := r.scWants
	for i := range wants {
		wants[i] = wants[i][:0]
	}
	any := false
	for i, occ := range r.inOcc {
		if occ == 0 {
			// A waiting VC always holds at least its head flit, so an empty
			// port has nothing in the VA stage.
			continue
		}
		for v, vc := range r.Inputs[i].vcs {
			if vc.stage != vcWaitingVC {
				continue
			}
			p, ov, ok := r.nominate(vc)
			if !ok {
				continue
			}
			g := i*cfg.VCs + v
			wants[p*cfg.VCs+ov] = append(wants[p*cfg.VCs+ov], g)
			any = true
		}
	}
	if !any {
		return
	}
	reqs := r.scVAReq
	for key, contenders := range wants {
		if len(contenders) == 0 {
			continue
		}
		for i := range reqs {
			reqs[i] = false
		}
		for _, g := range contenders {
			reqs[g] = true
		}
		g := r.vaArb[key].pick(reqs)
		if g < 0 {
			continue
		}
		if r.Asserts && !reqs[g] {
			panic(fmt.Sprintf("router %d: VA arbiter granted output vc %d to input vc %d without a request", r.ID, key, g))
		}
		r.Activity.ArbGrants++
		i, v := g/cfg.VCs, g%cfg.VCs
		vc := r.Inputs[i].vcs[v]
		vc.stage = vcActive
		r.vaWaiting--
		vc.outPort, vc.outVC = key/cfg.VCs, key%cfg.VCs
		st := r.Outputs[vc.outPort].vcs[vc.outVC]
		st.held = true
		st.inPort, st.inVC = i, v
	}
}

// nominate picks the preferred free (port, VC) among a waiting VC's route
// candidates: the candidate output with the most downstream credits
// (adaptive congestion avoidance; ties and deterministic routes fall back
// to candidate order), and within it the first free admissible VC.
func (r *Router) nominate(vc *inputVC) (port, outVC int, ok bool) {
	bestScore := -1
	for _, cand := range vc.candidates {
		out := r.Outputs[cand.Port]
		for _, ov := range cand.VCs {
			if out.vcs[ov].held {
				continue
			}
			score := out.vcs[ov].credits
			if out.infiniteCredits {
				score = 1 << 30
			}
			if score > bestScore {
				bestScore = score
				port, outVC, ok = cand.Port, ov, true
			}
			break // first free VC in admissible order is the port's offer
		}
	}
	return port, outVC, ok
}

// routeComputation is the RC stage: idle VCs with a head flit at the front
// compute their admissible outputs.
func (r *Router) routeComputation() {
	for i, occ := range r.inOcc {
		if occ == 0 {
			continue
		}
		for _, vc := range r.Inputs[i].vcs {
			if vc.stage != vcIdle || vc.empty() {
				continue
			}
			f := vc.front().flit
			if f.Kind != flow.Head {
				panic(fmt.Sprintf("router %d: %v at front of idle VC", r.ID, f))
			}
			vc.candidates = r.RouteFn(f.Packet)
			if len(vc.candidates) == 0 {
				panic(fmt.Sprintf("router %d: no route for %v", r.ID, f))
			}
			vc.stage = vcWaitingVC
			r.vaWaiting++
		}
	}
}

// ActivitySnapshot reports the router's cumulative energy-bearing activity,
// folding per-port buffer writes into the tally.
func (r *Router) ActivitySnapshot() Activity {
	a := r.Activity
	for _, in := range r.Inputs {
		a.BufWrites += in.Writes
	}
	return a
}
