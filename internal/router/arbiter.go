// Package router implements the paper's pipelined virtual-channel router
// (Section 4.2): per-VC input buffering, route computation, separable
// round-robin virtual-channel and switch allocation, crossbar traversal
// with a configurable pipeline depth (13 stages to match the Alpha
// 21364-style router), and credit-based flow control.
package router

import "math/bits"

// The round-robin arbiters the separable allocators are built from operate
// directly on request bitmasks: a grant is the lowest set bit strictly
// above the previous grant, wrapping to the lowest set bit overall. This
// is exactly the classic rotating scan (previous+1, previous+2, ..,
// wrapping through previous) in two TrailingZeros instructions, and like
// the scan it must only be invoked — and only updates the rotation
// pointer — when at least one request bit is set.

// pick32 grants one requester from a non-empty 32-wide request mask,
// rotating priority from just past *last, and advances *last to the grant.
func pick32(requests uint32, last *int32) int32 {
	// Bits strictly above *last; the subtraction underflows to all-ones
	// when *last is the top bit, correctly selecting the wrap path.
	above := requests &^ (uint32(2)<<uint32(*last) - 1)
	var c int32
	if above != 0 {
		c = int32(bits.TrailingZeros32(above))
	} else {
		c = int32(bits.TrailingZeros32(requests))
	}
	*last = c
	return c
}

// pick64 is pick32 over 64-wide request masks (the VA stage arbitrates
// among all Ports*VCs input VCs).
func pick64(requests uint64, last *int32) int32 {
	above := requests &^ (uint64(2)<<uint32(*last) - 1)
	var c int32
	if above != 0 {
		c = int32(bits.TrailingZeros64(above))
	} else {
		c = int32(bits.TrailingZeros64(requests))
	}
	*last = c
	return c
}
