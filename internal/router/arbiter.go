// Package router implements the paper's pipelined virtual-channel router
// (Section 4.2): per-VC input buffering, route computation, separable
// round-robin virtual-channel and switch allocation, crossbar traversal
// with a configurable pipeline depth (13 stages to match the Alpha
// 21364-style router), and credit-based flow control.
package router

// arbiter is a round-robin arbiter over n requesters, the arbitration
// primitive the paper's separable allocators are built from.
type arbiter struct {
	n    int
	last int
}

func newArbiter(n int) *arbiter { return &arbiter{n: n, last: n - 1} }

// pick grants one of the requesting indices, rotating priority from just
// past the previous grant. It returns -1 when nothing requests.
func (a *arbiter) pick(requests []bool) int {
	for i := 1; i <= a.n; i++ {
		c := (a.last + i) % a.n
		if requests[c] {
			a.last = c
			return c
		}
	}
	return -1
}
