package exp

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/power"
	"repro/internal/router"
	"repro/internal/sim"
)

// Ablations beyond the paper's figures, probing the design choices the
// paper argues for in prose: the buffer-utilization congestion litmus
// (Section 3.1), the history window H and EWMA weight W (Table 1), the
// dynamically-adjusted thresholds Section 4.4.2 points to, and the routing
// protocol under DVS.

const ablationRate = 3.0 // a loaded but clearly pre-saturation operating point

func init() {
	register("abl-litmus", "ablation: policy without the BU congestion litmus", runAblLitmus)
	register("abl-window", "ablation: history window H in {50, 200, 800}", runAblWindow)
	register("abl-weight", "ablation: EWMA weight W in {1, 3, 7}", runAblWeight)
	register("abl-adaptive", "extension: dynamically adjusted thresholds (Sec 4.4.2)", runAblAdaptive)
	register("abl-routing", "ablation: deterministic vs adaptive routing under DVS", runAblRouting)
}

func resultRow(t *Table, label string, r network.Results) {
	t.AddRow(label, f(r.MeanLatency, 0), f(r.ThroughputPkts, 3),
		f(r.NormalizedPwr, 3), f(r.SavingsX, 2)+"X")
}

func perfHeader() []string {
	return []string{"variant", "latency", "throughput", "norm power", "savings"}
}

// variantTable simulates labeled spec variants concurrently and renders one
// result row per variant, in input order.
func variantTable(o Options, title string, labels []string, specs []spec, notes []string) Table {
	t := Table{Title: title, Header: perfHeader(), Notes: notes}
	res := sweepSpecs(o, specs)
	for i, label := range labels {
		resultRow(&t, label, res[i])
	}
	return t
}

func runAblLitmus(o Options) []Table {
	// Compare at a congesting rate, where the litmus matters.
	rate := 6.0
	return []Table{variantTable(o, "Ablation: buffer-utilization congestion litmus",
		[]string{"history-DVS (with litmus)", "link-util only (no litmus)"},
		[]spec{
			defaultSpec(rate, network.PolicyHistory),
			defaultSpec(rate, network.PolicyLinkUtilOnly),
		},
		[]string{
			"under congestion the litmus harvests power from stalled links whose delay is hidden;",
			"without it the policy keeps pushing stalled links fast, wasting power (Sec 3.1)",
		})}
}

func runAblWindow(o Options) []Table {
	var labels []string
	var specs []spec
	for _, h := range []int{50, 200, 800} {
		s := defaultSpec(ablationRate, network.PolicyHistory)
		s.dvsH = h
		labels = append(labels, fmt.Sprintf("H=%d", h))
		specs = append(specs, s)
	}
	return []Table{variantTable(o, "Ablation: history window size H", labels, specs, []string{
		"short windows chase noise (more transitions); long windows lag traffic shifts",
	})}
}

func runAblWeight(o Options) []Table {
	var labels []string
	var specs []spec
	for _, w := range []int{1, 3, 7} {
		s := defaultSpec(ablationRate, network.PolicyHistory)
		s.dvsW = w
		labels = append(labels, fmt.Sprintf("W=%d", w))
		specs = append(specs, s)
	}
	return []Table{variantTable(o, "Ablation: EWMA weight W", labels, specs, []string{
		"low W weights history (smooth, slow); high W weights the current window (fast, noisy);",
		"the paper picks W=3 so the hardware divide reduces to a shift",
	})}
}

func runAblAdaptive(o Options) []Table {
	var labels []string
	var specs []spec
	for _, rate := range []float64{0.5, 1.5} {
		labels = append(labels,
			fmt.Sprintf("static III @%.1f", rate),
			fmt.Sprintf("adaptive I-VI @%.1f", rate))
		specs = append(specs,
			defaultSpec(rate, network.PolicyHistory),
			defaultSpec(rate, network.PolicyAdaptiveThresholds))
	}
	return []Table{variantTable(o, "Extension: dynamically adjusted thresholds (Sec 4.4.2)",
		labels, specs, []string{
			"the adaptive controller walks Table 2 settings online: aggressive when buffers",
			"stay empty, conservative when pressure builds",
		})}
}

func runAblRouting(o Options) []Table {
	var labels []string
	var specs []spec
	for _, alg := range []string{"dor", "adaptive"} {
		s := defaultSpec(ablationRate, network.PolicyHistory)
		s.routing = alg
		labels = append(labels, alg)
		specs = append(specs, s)
	}
	return []Table{variantTable(o, "Ablation: routing protocol under history-based DVS",
		labels, specs, []string{
			"adaptive routing spreads load across productive ports, smoothing per-link",
			"utilization seen by the DVS policy",
		})}
}

func init() {
	register("abl-routerpower", "check: router-core power barely varies with DVS (Sec 4.2)", runAblRouterPower)
}

// routerPowerPayload is the persistent form of one router-power variant.
type routerPowerPayload struct {
	CoreW, LinkW float64
}

// measureRouterPower simulates one policy variant and reports mean
// router-core and link power over the measurement window.
func measureRouterPower(s spec, o Options, warm, meas int64) (coreW, linkW float64) {
	withSimSlot(func() {
		n, m, horizon := s.build(o, warm+meas+1)
		model := power.NewRouterEnergyModel(n.Table, 4, n.Cfg.RouterPeriod)
		n.Launch(m, horizon)
		n.Run(warm)
		base := make([]router.Activity, len(n.Routers))
		for i, r := range n.Routers {
			base[i] = r.ActivitySnapshot()
		}
		n.BeginMeasurement()
		n.Run(meas)
		elapsed := sim.Duration(meas) * n.Cfg.RouterPeriod
		coreJ := 0.0
		for i, r := range n.Routers {
			a := r.ActivitySnapshot()
			d := router.Activity{
				BufWrites: a.BufWrites - base[i].BufWrites,
				BufReads:  a.BufReads - base[i].BufReads,
				Crossbar:  a.Crossbar - base[i].Crossbar,
				ArbGrants: a.ArbGrants - base[i].ArbGrants,
			}
			coreJ += model.EnergyJ(d, elapsed)
		}
		r := n.Snapshot()
		coreW, linkW = coreJ/elapsed.Seconds(), r.AvgPowerW
	})
	return coreW, linkW
}

// runAblRouterPower quantifies the claim the paper uses to justify ignoring
// router power: DVS slows links, which can only add arbitration retries —
// the cheapest router event — while buffer and crossbar energy track the
// flits moved, which DVS does not change.
func runAblRouterPower(o Options) []Table {
	t := Table{
		Title:  "Check: router-core power with and without DVS links (Sec 4.2)",
		Header: []string{"variant", "router core (W)", "links (W)", "core delta", "link delta"},
	}
	warm, meas := o.budget()
	measureOne := func(policy network.PolicyKind) (float64, float64) {
		s := defaultSpec(2.0, policy)
		prefetchRecordTrace(s, o)
		p := cached("ablrouterpower|"+s.cacheKey(o), func() (p routerPowerPayload) {
			p.CoreW, p.LinkW = measureRouterPower(s, o, warm, meas)
			return p
		})
		return p.CoreW, p.LinkW
	}
	// The two variants are independent simulations; run them concurrently.
	var coreBase, linkBase, coreDVS, linkDVS float64
	Sweep(2, func(i int) {
		if i == 0 {
			coreBase, linkBase = measureOne(network.PolicyNone)
		} else {
			coreDVS, linkDVS = measureOne(network.PolicyHistory)
		}
	})
	t.AddRow("no DVS", f(coreBase, 1), f(linkBase, 1), "--", "--")
	t.AddRow("history DVS", f(coreDVS, 1), f(linkDVS, 1),
		fmt.Sprintf("%+.1f%%", 100*(coreDVS/coreBase-1)),
		fmt.Sprintf("%+.1f%%", 100*(linkDVS/linkBase-1)))
	t.Notes = []string{
		"paper: \"router power consumption does not vary much with and without DVS links\",",
		"so the evaluation ignores it; this table verifies the claim on this platform",
	}
	return []Table{t}
}

func init() {
	register("abl-levels", "ablation: DVS level granularity (transition-step characteristic)", runAblLevels)
	register("abl-topology", "ablation: history-based DVS across topologies", runAblTopology)
}

// runAblLevels varies the number of discrete (f, V) levels — the paper's
// fourth DVS-link characteristic, "whether the link supports a continuous
// range of voltages, or only a fixed number of levels". More levels
// approximate a continuous regulator: smaller steps track demand tighter
// but each adjustment still pays a voltage ramp.
func runAblLevels(o Options) []Table {
	var labels []string
	var specs []spec
	for _, lv := range []int{4, 10, 20, 40} {
		s := defaultSpec(ablationRate, network.PolicyHistory)
		s.levels = lv
		labels = append(labels, fmt.Sprintf("%d levels", lv))
		specs = append(specs, s)
	}
	return []Table{variantTable(o, "Ablation: DVS level granularity", labels, specs, []string{
		"the paper's links quantize to 10 levels; a continuous-voltage regulator",
		"(many levels) changes the step size, not the 10 us ramp that dominates",
	})}
}

// runAblTopology runs the policy on different k-ary n-cubes at the same
// aggregate load.
func runAblTopology(o Options) []Table {
	shapes := []struct {
		label string
		k, n  int
		torus bool
	}{
		{"8x8 mesh (paper)", 8, 2, false},
		{"8x8 torus", 8, 2, true},
		{"4x4x4 mesh", 4, 3, false},
	}
	var labels []string
	var specs []spec
	for _, sh := range shapes {
		s := defaultSpec(1.5, network.PolicyHistory)
		s.k, s.n, s.torus = sh.k, sh.n, sh.torus
		labels = append(labels, sh.label)
		specs = append(specs, s)
	}
	return []Table{variantTable(o, "Ablation: history-based DVS across topologies",
		labels, specs, []string{
			"tori and higher dimensions shorten paths, lowering per-link utilization",
			"and shifting the policy's operating levels",
		})}
}
