package exp

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/power"
	"repro/internal/router"
	"repro/internal/sim"
)

// Ablations beyond the paper's figures, probing the design choices the
// paper argues for in prose: the buffer-utilization congestion litmus
// (Section 3.1), the history window H and EWMA weight W (Table 1), the
// dynamically-adjusted thresholds Section 4.4.2 points to, and the routing
// protocol under DVS.

const ablationRate = 3.0 // a loaded but clearly pre-saturation operating point

func init() {
	register("abl-litmus", "ablation: policy without the BU congestion litmus", runAblLitmus)
	register("abl-window", "ablation: history window H in {50, 200, 800}", runAblWindow)
	register("abl-weight", "ablation: EWMA weight W in {1, 3, 7}", runAblWeight)
	register("abl-adaptive", "extension: dynamically adjusted thresholds (Sec 4.4.2)", runAblAdaptive)
	register("abl-routing", "ablation: deterministic vs adaptive routing under DVS", runAblRouting)
}

func resultRow(t *Table, label string, r network.Results) {
	t.AddRow(label, f(r.MeanLatency, 0), f(r.ThroughputPkts, 3),
		f(r.NormalizedPwr, 3), f(r.SavingsX, 2)+"X")
}

func perfHeader() []string {
	return []string{"variant", "latency", "throughput", "norm power", "savings"}
}

func runAblLitmus(o Options) []Table {
	t := Table{Title: "Ablation: buffer-utilization congestion litmus", Header: perfHeader()}
	// Compare at a congesting rate, where the litmus matters.
	rate := 6.0
	full := defaultSpec(rate, network.PolicyHistory)
	noLitmus := defaultSpec(rate, network.PolicyLinkUtilOnly)
	resultRow(&t, "history-DVS (with litmus)", run(full, o))
	resultRow(&t, "link-util only (no litmus)", run(noLitmus, o))
	t.Notes = []string{
		"under congestion the litmus harvests power from stalled links whose delay is hidden;",
		"without it the policy keeps pushing stalled links fast, wasting power (Sec 3.1)",
	}
	return []Table{t}
}

func runAblWindow(o Options) []Table {
	t := Table{Title: "Ablation: history window size H", Header: perfHeader()}
	for _, h := range []int{50, 200, 800} {
		s := defaultSpec(ablationRate, network.PolicyHistory)
		s.dvsH = h
		resultRow(&t, fmt.Sprintf("H=%d", h), run(s, o))
	}
	t.Notes = []string{
		"short windows chase noise (more transitions); long windows lag traffic shifts",
	}
	return []Table{t}
}

func runAblWeight(o Options) []Table {
	t := Table{Title: "Ablation: EWMA weight W", Header: perfHeader()}
	for _, w := range []int{1, 3, 7} {
		s := defaultSpec(ablationRate, network.PolicyHistory)
		s.dvsW = w
		resultRow(&t, fmt.Sprintf("W=%d", w), run(s, o))
	}
	t.Notes = []string{
		"low W weights history (smooth, slow); high W weights the current window (fast, noisy);",
		"the paper picks W=3 so the hardware divide reduces to a shift",
	}
	return []Table{t}
}

func runAblAdaptive(o Options) []Table {
	t := Table{Title: "Extension: dynamically adjusted thresholds (Sec 4.4.2)", Header: perfHeader()}
	for _, rate := range []float64{0.5, 1.5} {
		static := defaultSpec(rate, network.PolicyHistory)
		adaptive := defaultSpec(rate, network.PolicyAdaptiveThresholds)
		resultRow(&t, fmt.Sprintf("static III @%.1f", rate), run(static, o))
		resultRow(&t, fmt.Sprintf("adaptive I-VI @%.1f", rate), run(adaptive, o))
	}
	t.Notes = []string{
		"the adaptive controller walks Table 2 settings online: aggressive when buffers",
		"stay empty, conservative when pressure builds",
	}
	return []Table{t}
}

func runAblRouting(o Options) []Table {
	t := Table{Title: "Ablation: routing protocol under history-based DVS", Header: perfHeader()}
	for _, alg := range []string{"dor", "adaptive"} {
		s := defaultSpec(ablationRate, network.PolicyHistory)
		s.routing = alg
		resultRow(&t, alg, run(s, o))
	}
	t.Notes = []string{
		"adaptive routing spreads load across productive ports, smoothing per-link",
		"utilization seen by the DVS policy",
	}
	return []Table{t}
}

func init() {
	register("abl-routerpower", "check: router-core power barely varies with DVS (Sec 4.2)", runAblRouterPower)
}

// runAblRouterPower quantifies the claim the paper uses to justify ignoring
// router power: DVS slows links, which can only add arbitration retries —
// the cheapest router event — while buffer and crossbar energy track the
// flits moved, which DVS does not change.
func runAblRouterPower(o Options) []Table {
	t := Table{
		Title:  "Check: router-core power with and without DVS links (Sec 4.2)",
		Header: []string{"variant", "router core (W)", "links (W)", "core delta", "link delta"},
	}
	warm, meas := o.budget()
	measureOne := func(policy network.PolicyKind) (coreW, linkW float64) {
		s := defaultSpec(2.0, policy)
		n, m := s.build(o)
		model := power.NewRouterEnergyModel(n.Table, 4, n.Cfg.RouterPeriod)
		horizon := sim.Time(warm+meas+1) * n.Cfg.RouterPeriod
		n.Launch(m, horizon)
		n.Run(warm)
		base := make([]router.Activity, len(n.Routers))
		for i, r := range n.Routers {
			base[i] = r.ActivitySnapshot()
		}
		n.BeginMeasurement()
		n.Run(meas)
		elapsed := sim.Duration(meas) * n.Cfg.RouterPeriod
		coreJ := 0.0
		for i, r := range n.Routers {
			a := r.ActivitySnapshot()
			d := router.Activity{
				BufWrites: a.BufWrites - base[i].BufWrites,
				BufReads:  a.BufReads - base[i].BufReads,
				Crossbar:  a.Crossbar - base[i].Crossbar,
				ArbGrants: a.ArbGrants - base[i].ArbGrants,
			}
			coreJ += model.EnergyJ(d, elapsed)
		}
		r := n.Snapshot()
		return coreJ / elapsed.Seconds(), r.AvgPowerW
	}
	coreBase, linkBase := measureOne(network.PolicyNone)
	coreDVS, linkDVS := measureOne(network.PolicyHistory)
	t.AddRow("no DVS", f(coreBase, 1), f(linkBase, 1), "--", "--")
	t.AddRow("history DVS", f(coreDVS, 1), f(linkDVS, 1),
		fmt.Sprintf("%+.1f%%", 100*(coreDVS/coreBase-1)),
		fmt.Sprintf("%+.1f%%", 100*(linkDVS/linkBase-1)))
	t.Notes = []string{
		"paper: \"router power consumption does not vary much with and without DVS links\",",
		"so the evaluation ignores it; this table verifies the claim on this platform",
	}
	return []Table{t}
}

func init() {
	register("abl-levels", "ablation: DVS level granularity (transition-step characteristic)", runAblLevels)
	register("abl-topology", "ablation: history-based DVS across topologies", runAblTopology)
}

// runAblLevels varies the number of discrete (f, V) levels — the paper's
// fourth DVS-link characteristic, "whether the link supports a continuous
// range of voltages, or only a fixed number of levels". More levels
// approximate a continuous regulator: smaller steps track demand tighter
// but each adjustment still pays a voltage ramp.
func runAblLevels(o Options) []Table {
	t := Table{Title: "Ablation: DVS level granularity", Header: perfHeader()}
	for _, lv := range []int{4, 10, 20, 40} {
		s := defaultSpec(ablationRate, network.PolicyHistory)
		s.levels = lv
		resultRow(&t, fmt.Sprintf("%d levels", lv), run(s, o))
	}
	t.Notes = []string{
		"the paper's links quantize to 10 levels; a continuous-voltage regulator",
		"(many levels) changes the step size, not the 10 us ramp that dominates",
	}
	return []Table{t}
}

// runAblTopology runs the policy on different k-ary n-cubes at the same
// aggregate load.
func runAblTopology(o Options) []Table {
	t := Table{Title: "Ablation: history-based DVS across topologies", Header: perfHeader()}
	shapes := []struct {
		label string
		k, n  int
		torus bool
	}{
		{"8x8 mesh (paper)", 8, 2, false},
		{"8x8 torus", 8, 2, true},
		{"4x4x4 mesh", 4, 3, false},
	}
	for _, sh := range shapes {
		s := defaultSpec(1.5, network.PolicyHistory)
		s.k, s.n, s.torus = sh.k, sh.n, sh.torus
		resultRow(&t, sh.label, run(s, o))
	}
	t.Notes = []string{
		"tori and higher dimensions shorten paths, lowering per-link utilization",
		"and shifting the policy's operating levels",
	}
	return []Table{t}
}
