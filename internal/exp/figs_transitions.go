package exp

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/sim"
)

// Figures 16 and 17 explore DVS links with varying transition rates
// (Section 4.4.3): voltage transition delay in [1 us, 10 us], frequency
// transition delay in [10, 100] link cycles, against workloads of 1 ms and
// 10 us average task duration. Faster transitions track bursty traffic
// better, trading less latency and throughput for the same policy.

var transitionRates = []float64{1.0, 2.0, 3.0, 4.0}

func init() {
	register("fig16", "network performance with varying voltage transition delay", runFig16)
	register("fig17", "network performance with varying frequency transition delay", runFig17)
}

// transitionTable sweeps one transition parameter at fixed workload: the
// whole (rate x column) grid simulates concurrently, rows assemble in
// fixed order.
func transitionTable(o Options, title string, cols []string, mk func(col int, rate float64) spec) Table {
	t := Table{Title: title}
	t.Header = append([]string{"rate"}, cols...)
	specs := make([]spec, 0, len(transitionRates)*len(cols))
	for _, rate := range transitionRates {
		for c := range cols {
			specs = append(specs, mk(c, rate))
		}
	}
	res := sweepSpecs(o, specs)
	for i, rate := range transitionRates {
		row := []string{f(rate, 2)}
		for c := range cols {
			r := res[i*len(cols)+c]
			row = append(row, fmt.Sprintf("%s/%s", f(r.MeanLatency, 0), f(r.ThroughputPkts, 2)))
		}
		t.AddRow(row...)
	}
	t.Notes = []string{"cells are latency(cycles)/throughput(pkts/cycle)"}
	return t
}

func runFig16(o Options) []Table {
	voltDelays := []sim.Duration{10 * sim.Microsecond, 5 * sim.Microsecond, 1 * sim.Microsecond}
	cols := []string{"Vtran=10us", "Vtran=5us", "Vtran=1us"}
	sub := func(label string, taskDur sim.Duration, freqTran int) Table {
		return transitionTable(o,
			fmt.Sprintf("Figure 16%s: task duration %v, frequency transition %d cycles",
				label, taskDur, freqTran),
			cols,
			func(c int, rate float64) spec {
				s := defaultSpec(rate, network.PolicyHistory)
				s.taskDur = taskDur
				s.voltTran = voltDelays[c]
				s.freqTran = freqTran
				return s
			})
	}
	// The four subfigures are independent grids; build them concurrently.
	var tabs [4]Table
	parts := []struct {
		label    string
		taskDur  sim.Duration
		freqTran int
	}{
		{"(a)", sim.Millisecond, 100},
		{"(b)", 10 * sim.Microsecond, 100},
		{"(c)", sim.Millisecond, 10},
		{"(d)", 10 * sim.Microsecond, 10},
	}
	Sweep(len(parts), func(i int) {
		tabs[i] = sub(parts[i].label, parts[i].taskDur, parts[i].freqTran)
	})
	tabs[1].Notes = append(tabs[1].Notes,
		"paper shape: short tasks + slow voltage transitions hurt throughput most")
	tabs[0].Notes = append(tabs[0].Notes,
		"paper: with slow 100-cycle locks, faster voltage transitions can RAISE latency",
		"(more frequent transitions mean more dead re-lock windows)")
	return tabs[:]
}

func runFig17(o Options) []Table {
	freqDelays := []int{100, 50, 10}
	cols := []string{"Ftran=100cyc", "Ftran=50cyc", "Ftran=10cyc"}
	sub := func(label string, taskDur sim.Duration, voltTran sim.Duration) Table {
		return transitionTable(o,
			fmt.Sprintf("Figure 17%s: task duration %v, voltage transition %v",
				label, taskDur, voltTran),
			cols,
			func(c int, rate float64) spec {
				s := defaultSpec(rate, network.PolicyHistory)
				s.taskDur = taskDur
				s.voltTran = voltTran
				s.freqTran = freqDelays[c]
				return s
			})
	}
	var tabs [4]Table
	parts := []struct {
		label    string
		taskDur  sim.Duration
		voltTran sim.Duration
	}{
		{"(a)", sim.Millisecond, 10 * sim.Microsecond},
		{"(b)", 10 * sim.Microsecond, 10 * sim.Microsecond},
		{"(c)", sim.Millisecond, 1 * sim.Microsecond},
		{"(d)", 10 * sim.Microsecond, 1 * sim.Microsecond},
	}
	Sweep(len(parts), func(i int) {
		tabs[i] = sub(parts[i].label, parts[i].taskDur, parts[i].voltTran)
	})
	tabs[1].Notes = append(tabs[1].Notes,
		"paper shape: short tasks respond slowly to transitions, degrading throughput")
	return tabs[:]
}
