package exp

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/sim"
)

// Figures 16 and 17 explore DVS links with varying transition rates
// (Section 4.4.3): voltage transition delay in [1 us, 10 us], frequency
// transition delay in [10, 100] link cycles, against workloads of 1 ms and
// 10 us average task duration. Faster transitions track bursty traffic
// better, trading less latency and throughput for the same policy.

var transitionRates = []float64{1.0, 2.0, 3.0, 4.0}

func init() {
	register("fig16", "network performance with varying voltage transition delay", runFig16)
	register("fig17", "network performance with varying frequency transition delay", runFig17)
}

// transitionTable sweeps one transition parameter at fixed workload.
func transitionTable(o Options, title string, cols []string, mk func(col int, rate float64) spec) Table {
	t := Table{Title: title}
	t.Header = append([]string{"rate"}, cols...)
	for _, rate := range transitionRates {
		row := []string{f(rate, 2)}
		for c := range cols {
			r := run(mk(c, rate), o)
			row = append(row, fmt.Sprintf("%s/%s", f(r.MeanLatency, 0), f(r.ThroughputPkts, 2)))
		}
		t.AddRow(row...)
	}
	t.Notes = []string{"cells are latency(cycles)/throughput(pkts/cycle)"}
	return t
}

func runFig16(o Options) []Table {
	voltDelays := []sim.Duration{10 * sim.Microsecond, 5 * sim.Microsecond, 1 * sim.Microsecond}
	cols := []string{"Vtran=10us", "Vtran=5us", "Vtran=1us"}
	sub := func(label string, taskDur sim.Duration, freqTran int) Table {
		return transitionTable(o,
			fmt.Sprintf("Figure 16%s: task duration %v, frequency transition %d cycles",
				label, taskDur, freqTran),
			cols,
			func(c int, rate float64) spec {
				s := defaultSpec(rate, network.PolicyHistory)
				s.taskDur = taskDur
				s.voltTran = voltDelays[c]
				s.freqTran = freqTran
				return s
			})
	}
	a := sub("(a)", sim.Millisecond, 100)
	b := sub("(b)", 10*sim.Microsecond, 100)
	c := sub("(c)", sim.Millisecond, 10)
	d := sub("(d)", 10*sim.Microsecond, 10)
	b.Notes = append(b.Notes,
		"paper shape: short tasks + slow voltage transitions hurt throughput most")
	a.Notes = append(a.Notes,
		"paper: with slow 100-cycle locks, faster voltage transitions can RAISE latency",
		"(more frequent transitions mean more dead re-lock windows)")
	return []Table{a, b, c, d}
}

func runFig17(o Options) []Table {
	freqDelays := []int{100, 50, 10}
	cols := []string{"Ftran=100cyc", "Ftran=50cyc", "Ftran=10cyc"}
	sub := func(label string, taskDur sim.Duration, voltTran sim.Duration) Table {
		return transitionTable(o,
			fmt.Sprintf("Figure 17%s: task duration %v, voltage transition %v",
				label, taskDur, voltTran),
			cols,
			func(c int, rate float64) spec {
				s := defaultSpec(rate, network.PolicyHistory)
				s.taskDur = taskDur
				s.voltTran = voltTran
				s.freqTran = freqDelays[c]
				return s
			})
	}
	a := sub("(a)", sim.Millisecond, 10*sim.Microsecond)
	b := sub("(b)", 10*sim.Microsecond, 10*sim.Microsecond)
	c := sub("(c)", sim.Millisecond, 1*sim.Microsecond)
	d := sub("(d)", 10*sim.Microsecond, 1*sim.Microsecond)
	b.Notes = append(b.Notes,
		"paper shape: short tasks respond slowly to transitions, degrading throughput")
	return []Table{a, b, c, d}
}
