package exp

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/stats"
)

// Figures 10 and 11 are the paper's headline experiment: network latency,
// throughput and normalized power versus packet injection rate, with and
// without history-based DVS, under the two-level workload with 100 (Fig.
// 10) or 50 (Fig. 11) average concurrent tasks of 1 ms mean duration.

// sweepRates spans the pre-saturation region into early congestion. The
// paper sweeps 0.1-2.1 packets/cycle and saturates near 2.1; our workload
// (per-packet sphere-of-locality destinations) spreads load more evenly, so
// the same platform saturates near 5 packets/cycle — the sweep covers the
// same relative positions.
var sweepRates = []float64{0.5, 1.0, 2.0, 3.0, 4.0, 5.0}

// congestionRates push well past saturation for Figure 12.
var congestionRates = []float64{2.0, 4.0, 6.0, 8.0, 10.0, 12.0}

func init() {
	register("fig10", "latency & power vs injection rate, 100 tasks, DVS vs no-DVS",
		func(o Options) []Table { return dvsSweep(o, 100) })
	register("fig11", "latency & power vs injection rate, 50 tasks, DVS vs no-DVS",
		func(o Options) []Table { return dvsSweep(o, 50) })
	register("fig12", "power and throughput beyond saturation (100 tasks)", runFig12)
	register("headline", "abstract numbers: power savings, latency and throughput deltas",
		func(o Options) []Table { return headline(o) })
}

// dvsSweep regenerates Figure 10/11: one row per injection rate comparing
// the no-DVS baseline with history-based DVS.
func dvsSweep(o Options, tasks int) []Table {
	perf := Table{
		Title:  fmt.Sprintf("Figure %d(a): latency/throughput, %d tasks", 10+(100-tasks)/50, tasks),
		Header: []string{"rate", "lat(noDVS)", "lat(DVS)", "thr(noDVS)", "thr(DVS)", "lat ratio"},
	}
	pow := Table{
		Title:  fmt.Sprintf("Figure %d(b): normalized network power, %d tasks", 10+(100-tasks)/50, tasks),
		Header: []string{"rate", "power(noDVS)", "power(DVS)", "savings"},
	}
	// Fan the whole (rate x policy) cross-product across the worker pool,
	// then assemble rows sequentially in sweep order — the output is
	// byte-identical to the old per-point loop.
	specs := make([]spec, 0, 2*len(sweepRates))
	for _, rate := range sweepRates {
		sb := defaultSpec(rate, network.PolicyNone)
		sb.tasks = tasks
		sd := defaultSpec(rate, network.PolicyHistory)
		sd.tasks = tasks
		specs = append(specs, sb, sd)
	}
	res := sweepSpecs(o, specs)
	var baseLat, dvsLat, rates, savAt []float64
	maxSav, sumSav := 0.0, 0.0
	for i, rate := range sweepRates {
		b, d := res[2*i], res[2*i+1]
		perf.AddRow(f(rate, 2), f(b.MeanLatency, 0), f(d.MeanLatency, 0),
			f(b.ThroughputPkts, 3), f(d.ThroughputPkts, 3),
			f(d.MeanLatency/b.MeanLatency, 2))
		pow.AddRow(f(rate, 2), "1.000", f(d.NormalizedPwr, 3), f(d.SavingsX, 2)+"X")
		rates = append(rates, rate)
		baseLat = append(baseLat, b.MeanLatency)
		dvsLat = append(dvsLat, d.MeanLatency)
		if d.SavingsX > maxSav {
			maxSav = d.SavingsX
		}
		sumSav += d.SavingsX
		savAt = append(savAt, d.SavingsX)
	}
	// Each curve is judged against its own zero-load latency, as the paper
	// defines saturation.
	satBase, okBase := stats.SaturationPoint(rates, baseLat, baseLat[0])
	satDVS, okDVS := stats.SaturationPoint(rates, dvsLat, dvsLat[0])
	satNote := "neither curve saturates in the swept range"
	switch {
	case okBase && okDVS:
		satNote = fmt.Sprintf("saturation (2x own zero-load): no-DVS near %.2f, DVS near %.2f", satBase, satDVS)
	case okDVS:
		satNote = fmt.Sprintf("DVS saturates near rate %.2f; no-DVS does not in range", satDVS)
	case okBase:
		satNote = fmt.Sprintf("no-DVS saturates near rate %.2f; DVS does not in range", satBase)
	}
	// Average savings over the pre-saturation region (the paper's sweep
	// stops just past its saturation point).
	preSav, nPre := 0.0, 0
	for i, r := range rates {
		if !okDVS || r < satDVS {
			preSav += savAt[i]
			nPre++
		}
	}
	if nPre == 0 {
		preSav, nPre = sumSav, len(sweepRates)
	}
	pow.Notes = []string{
		fmt.Sprintf("max savings %.1fX; average %.1fX pre-saturation (%.1fX across the full sweep)",
			maxSav, preSav/float64(nPre), sumSav/float64(len(sweepRates))),
		fmt.Sprintf("paper (%d tasks): up to %s power savings", tasks,
			map[int]string{100: "6.3X (4.6X average)", 50: "6.4X (4.9X average)"}[tasks]),
	}
	perf.Notes = []string{
		satNote,
		"paper: latency +15.2% (100 tasks) / +14.7% (50 tasks) before congestion; throughput -2.5%",
		"our conservative link model pays a larger latency premium at light load (links idle down to 125 MHz, 8x flit serialization); the qualitative shape matches",
	}
	return []Table{perf, pow}
}

// runFig12 tracks DVS power and throughput as injection pushes far beyond
// saturation: power first rises with throughput, then dips as congestion
// idles more links than it loads.
func runFig12(o Options) []Table {
	t := Table{
		Title:  "Figure 12: power and throughput under network congestion (100 tasks, DVS)",
		Header: []string{"rate", "throughput", "power(W)", "normalized"},
	}
	specs := make([]spec, len(congestionRates))
	for i, rate := range congestionRates {
		specs[i] = defaultSpec(rate, network.PolicyHistory)
	}
	res := sweepSpecs(o, specs)
	var thr, pw []float64
	for i, rate := range congestionRates {
		r := res[i]
		t.AddRow(f(rate, 2), f(r.ThroughputPkts, 3), f(r.AvgPowerW, 1), f(r.NormalizedPwr, 3))
		thr = append(thr, r.ThroughputPkts)
		pw = append(pw, r.AvgPowerW)
	}
	// Identify the power peak: the paper's observation is that power tracks
	// throughput, rising into saturation and dipping only when the whole
	// network congests and throughput falls.
	peak := 0
	for i := range pw {
		if pw[i] > pw[peak] {
			peak = i
		}
	}
	t.Notes = []string{
		fmt.Sprintf("power peaks at rate %.2f (%.1f W) and declines beyond it", congestionRates[peak], pw[peak]),
		"paper shape: network power rises with throughput, then dips past full congestion",
	}
	return []Table{t}
}

// headline condenses the Figure 10 sweep into the abstract's comparison
// numbers.
func headline(o Options) []Table {
	t := Table{
		Title:  "Headline comparison vs the paper's abstract",
		Header: []string{"metric", "paper", "measured"},
	}
	// All points of both curves run concurrently; the zero-load reference
	// is the first DVS point, deduplicated by the cache.
	specs := make([]spec, 0, 2*len(sweepRates))
	for _, rate := range sweepRates {
		specs = append(specs,
			defaultSpec(rate, network.PolicyNone),
			defaultSpec(rate, network.PolicyHistory))
	}
	res := sweepSpecs(o, specs)
	var latRatioSum float64
	var n int
	maxSav, sumSav := 0.0, 0.0
	var thrBase, thrDVS float64
	zeroLoad := run(defaultSpec(sweepRates[0], network.PolicyHistory), o).MeanLatency
	for i := range sweepRates {
		b, d := res[2*i], res[2*i+1]
		// Pre-saturation points only (the paper's 2x zero-load rule on the
		// DVS curve).
		if d.MeanLatency <= 2*zeroLoad {
			latRatioSum += d.MeanLatency / b.MeanLatency
			n++
		}
		if d.SavingsX > maxSav {
			maxSav = d.SavingsX
		}
		sumSav += d.SavingsX
		thrBase += b.ThroughputPkts
		thrDVS += d.ThroughputPkts
	}
	if n == 0 {
		n = 1
		latRatioSum = 1
	}
	t.AddRow("max power savings", "6.3X", f(maxSav, 1)+"X")
	t.AddRow("avg power savings", "4.6X", f(sumSav/float64(len(sweepRates)), 1)+"X")
	t.AddRow("latency increase (pre-saturation)", "+15.2%",
		fmt.Sprintf("%+.1f%%", 100*(latRatioSum/float64(n)-1)))
	t.AddRow("throughput change", "-2.5%",
		fmt.Sprintf("%+.1f%%", 100*(thrDVS/thrBase-1)))
	t.Notes = []string{
		"shape agreement: DVS wins multi-X power at a modest throughput cost;",
		"latency premium is larger here because the conservative link model keeps",
		"idle links at 125 MHz (8x serialization) and dead during re-locks",
	}
	return []Table{t}
}

func init() {
	register("saturation", "saturation throughput, DVS vs no-DVS (the -2.5% claim)", runSaturation)
}

// runSaturation locates each policy's saturation rate by bisection on the
// paper's 2x-zero-load rule and compares the throughput achieved there.
func runSaturation(o Options) []Table {
	t := Table{
		Title:  "Saturation throughput: history-based DVS vs no-DVS",
		Header: []string{"policy", "saturation rate", "throughput there", "zero-load lat"},
	}
	measure := func(policy network.PolicyKind) (rate, thr, zero float64) {
		zero = run(defaultSpec(0.25, policy), o).MeanLatency
		lo, hi := 0.5, 12.0
		// The network must saturate by `hi`; verify, then bisect.
		if run(defaultSpec(hi, policy), o).MeanLatency <= 2*zero {
			return hi, run(defaultSpec(hi, policy), o).ThroughputPkts, zero
		}
		for i := 0; i < 5; i++ {
			mid := (lo + hi) / 2
			if run(defaultSpec(mid, policy), o).MeanLatency > 2*zero {
				hi = mid
			} else {
				lo = mid
			}
		}
		r := run(defaultSpec(hi, policy), o)
		return hi, r.ThroughputPkts, zero
	}
	// Each policy's bisection is inherently sequential, but the two
	// policies explore independent points — run them concurrently.
	var sat [2][3]float64
	policies := []network.PolicyKind{network.PolicyNone, network.PolicyHistory}
	Sweep(len(policies), func(i int) {
		sat[i][0], sat[i][1], sat[i][2] = measure(policies[i])
	})
	rb, tb, zb := sat[0][0], sat[0][1], sat[0][2]
	rd, td, zd := sat[1][0], sat[1][1], sat[1][2]
	t.AddRow("no DVS", f(rb, 2), f(tb, 3), f(zb, 0))
	t.AddRow("history DVS", f(rd, 2), f(td, 3), f(zd, 0))
	t.Notes = []string{
		fmt.Sprintf("throughput delta at saturation: %+.1f%% (paper: -2.5%%)", 100*(td/tb-1)),
		fmt.Sprintf("zero-load latency delta: %+.1f%% (paper: +10.8%%)", 100*(zd/zb-1)),
	}
	return []Table{t}
}
