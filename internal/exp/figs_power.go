package exp

import (
	"fmt"

	"repro/internal/link"
	"repro/internal/orion"
	"repro/internal/power"
	"repro/internal/sim"
)

func init() {
	register("fig7", "router power consumption distribution", runFig7)
}

// runFig7 regenerates the router power breakdown (a static
// characterization: the paper synthesized its router to a TSMC 0.25 um
// netlist; we encode the published distribution against the link model).
func runFig7(Options) []Table {
	table := link.MustTable(link.NewParams())
	b := power.RouterBreakdown(table, 4)
	t := Table{
		Title:  "Figure 7: router power consumption distribution (4 ports at full speed)",
		Header: []string{"component", "watts", "share"},
	}
	for _, e := range b {
		t.AddRow(e.Component, f(e.Watts, 3), fmt.Sprintf("%.1f%%", 100*power.Fraction(b, e.Component)))
	}
	t.AddRow("total", f(power.Total(b), 3), "100.0%")
	t.Notes = []string{
		"paper: 82.4% of router power in link circuitry; allocators 81 mW",
		"full-bandwidth 8x8 mesh network: 64 routers * 4 ports * 8 links * 0.2 W = 409.6 W",
	}
	return []Table{t}
}

func init() {
	register("orion", "Orion-style bottom-up router energies vs Fig. 7 calibration", runOrion)
	register("noise", "Section 2 noise margin: BER vs level, jitter budget", runNoise)
}

// runOrion compares the two independent router-core energy estimates: the
// bottom-up Orion-style capacitance model and the top-down calibration of
// the paper's Figure 7 breakdown.
func runOrion(Options) []Table {
	tech := orion.TSMC250()
	r := orion.Router{Ports: 5, VCs: 2, BufPerPort: 128, FlitBits: 32}
	buf, xbar, arb := r.Components()
	table := link.MustTable(link.NewParams())
	calib := power.NewRouterEnergyModel(table, 4, sim.Nanosecond)

	t := Table{
		Title:  "Router-core per-event energy: Orion-style bottom-up vs Figure 7 top-down",
		Header: []string{"event", "orion (pJ)", "calibrated (pJ)", "ratio"},
	}
	row := func(name string, a, b float64) {
		t.AddRow(name, f(a*1e12, 1), f(b*1e12, 1), f(a/b, 2))
	}
	row("buffer write", buf.WriteEnergyJ(tech), calib.BufWriteJ)
	row("buffer read", buf.ReadEnergyJ(tech), calib.BufReadJ)
	row("crossbar traversal", xbar.TraversalEnergyJ(tech), calib.CrossbarJ)
	row("arbiter grant", arb.GrantEnergyJ(tech), calib.ArbGrantJ)
	t.Notes = []string{
		"independent estimates agree within small factors — the accuracy Orion",
		"(the paper's power-modeling substrate, ref [28]) claims vs circuit simulation",
	}
	return []Table{t}
}

// runNoise evaluates the Section 2 noise-margin assumption: BER per level
// under a Gaussian-jitter model, and the jitter budget that keeps the
// whole range at the paper's 1e-15.
func runNoise(Options) []Table {
	table := link.MustTable(link.NewParams())
	t := Table{
		Title:  "Section 2 noise margin: estimated BER per level (40 ps RMS jitter)",
		Header: []string{"level", "freq (MHz)", "volt (V)", "BER"},
	}
	n := link.NoiseModel{JitterRMSPs: 40}
	for lvl := 0; lvl < table.Params.Levels; lvl++ {
		t.AddRow(fmt.Sprint(lvl), f(table.FreqHz[lvl]/1e6, 0), f(table.Volt[lvl], 2),
			fmt.Sprintf("%.1e", n.BERAt(table, lvl)))
	}
	t.Notes = []string{
		fmt.Sprintf("jitter budget for 1e-15 across the range: %.0f ps RMS", link.MaxJitterPsFor(table, 1e-15)),
		"paper: current links hold 1e-15 BER over 0.9-2.5 V / the full frequency range,",
		"and frequency reduction improves reliability — the model reproduces both",
	}
	return []Table{t}
}
