// Persistent result cache: a content-addressed disk store layered under
// the in-memory singleflight caches. Lookups go memory -> disk -> compute:
// the singleflight memo still deduplicates concurrent callers inside one
// process, and its compute function consults the disk store before paying
// for a simulation, so a warm directory turns a full figure regeneration
// into a handful of file reads.
//
// Keys are canonical, versioned serializations of the full run spec (see
// spec.cacheKey); the store mixes in a code fingerprint — SchemaVersion
// plus the binary's VCS revision — so entries invalidate automatically on
// commit or schema bump. Payloads are canonical JSON: Go encodes float64
// with the shortest round-tripping decimal, so a decoded result renders
// byte-identically to the freshly simulated one (the golden tests pin
// this).
package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"

	"repro/internal/runcache"
)

// SchemaVersion versions the cache-key canonicalization and payload
// encodings of this package. Bump it whenever a spec field, an Options
// field, a cached payload shape, or the meaning of any serialized value
// changes — stale entries from older schemas then become unreachable.
//
// v2: warmups run policy-frozen (network.SetDVSHold) and a new "ckpt|"
// payload kind persists warmed-up snapshots; both change what every
// cached result means, so v1 entries are unreachable.
const SchemaVersion = 2

// diskStore is the process-wide persistent cache; nil (the default) means
// results live only in the in-memory caches, exactly the pre-cache
// behavior.
var diskStore atomic.Pointer[runcache.Store]

// SetDiskCache installs (or, with nil, removes) the persistent result
// store under the in-memory caches. Safe to call concurrently with runs;
// in-flight computations finish against the store they started with.
func SetDiskCache(s *runcache.Store) { diskStore.Store(s) }

// DiskCache reports the installed persistent store, or nil.
func DiskCache() *runcache.Store { return diskStore.Load() }

// OpenDiskCache opens (creating if necessary) a persistent result cache at
// dir with the canonical code fingerprint and installs it. maxBytes <= 0
// selects the store's default size cap.
//
// It refuses — returning an error and installing nothing — when the
// running binary carries no VCS revision: `go run` and `go test` binaries
// are not stamped, so their fingerprint would be stable across commits and
// code edits and stale results would replay silently. Use a built binary
// (`go build ./cmd/figures`) to cache persistently. A stamped-but-dirty
// tree is cached under a single "+dirty" fingerprint, which cannot
// distinguish successive uncommitted edits; that case gets a one-line
// stderr notice instead of a refusal.
func OpenDiskCache(dir string, maxBytes int64) error {
	rev, dirty, stamped := runcache.VCSInfo()
	if !stamped {
		return fmt.Errorf("binary carries no VCS revision (go run and go test binaries are not stamped), so cached results would not invalidate on code changes; build the binary (go build ./cmd/...) to enable persistent caching")
	}
	if dirty {
		fmt.Fprintf(os.Stderr, "exp: run cache: working tree was dirty at build (%.12s+dirty); successive uncommitted edits share one cache fingerprint — pass -no-cache while iterating on simulation code\n", rev)
	}
	s, err := runcache.Open(dir, runcache.Options{
		MaxBytes:    maxBytes,
		Fingerprint: runcache.Fingerprint(fmt.Sprintf("repro-exp/v%d", SchemaVersion)),
	})
	if err != nil {
		return err
	}
	SetDiskCache(s)
	return nil
}

// DiskCacheStats snapshots the persistent store's counters (zero when no
// store is installed).
func DiskCacheStats() runcache.Stats {
	if s := diskStore.Load(); s != nil {
		return s.Stats()
	}
	return runcache.Stats{}
}

// cached wraps a computation with the persistent layer: disk hit if the
// payload verifies and decodes, else compute and store. A checksum-valid
// entry that fails to decode (schema drift within one fingerprint) is
// quarantined and recomputed, never trusted. With no store installed it is
// exactly compute().
func cached[T any](key string, compute func() T) T {
	if prefetchIntercept(key) {
		var zero T
		return zero
	}
	s := diskStore.Load()
	if s == nil {
		return compute()
	}
	if b, ok := s.Get(key); ok {
		var v T
		if err := json.Unmarshal(b, &v); err == nil {
			return v
		}
		s.Drop(key)
	}
	v := compute()
	if b, err := json.Marshal(v); err == nil {
		s.Put(key, b) // a failed put costs a future recompute, nothing else
	}
	return v
}

// CacheLookupJSON and CacheStoreJSON expose the persistent layer to
// downstream tooling (cmd/netsim caches its one-shot summaries through
// them) with the same decode-failure quarantine as the harness's own
// lookups. Both are no-ops without an installed store.
func CacheLookupJSON(key string, v any) bool {
	s := diskStore.Load()
	if s == nil {
		return false
	}
	b, ok := s.Get(key)
	if !ok {
		return false
	}
	if err := json.Unmarshal(b, v); err != nil {
		s.Drop(key)
		return false
	}
	return true
}

func CacheStoreJSON(key string, v any) {
	s := diskStore.Load()
	if s == nil {
		return
	}
	if b, err := json.Marshal(v); err == nil {
		s.Put(key, b)
	}
}

// CacheLookupRaw, CacheStoreRaw and CacheDropRaw are the binary-payload
// variants for artifacts that are not JSON (noc's warmed-up checkpoint
// snapshots). The store still checksums payloads; semantic validation —
// does it decode, does it fit this platform — is the caller's, and a
// payload that fails it should be dropped so the slot recomputes.
func CacheLookupRaw(key string) ([]byte, bool) {
	s := diskStore.Load()
	if s == nil {
		return nil, false
	}
	return s.Get(key)
}

func CacheStoreRaw(key string, b []byte) {
	if s := diskStore.Load(); s != nil {
		s.Put(key, b)
	}
}

func CacheDropRaw(key string) {
	if s := diskStore.Load(); s != nil {
		s.Drop(key)
	}
}
