package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/network"
)

// Figures 13-15 study the power/performance trade-off of the threshold
// settings in Table 2: sweeping the light-load band (TLLow, TLHigh) from
// conservative (I) to aggressive (VI) trades latency for power savings,
// tracing out a Pareto curve.

// thresholdRates are the pre-congestion load points of Figures 13/14.
var thresholdRates = []float64{1.0, 2.5, 4.0}

// fig15Rate is the fixed operating point of the Pareto curve: the paper
// uses 1.7 packets/cycle, ~80% of its saturation throughput; 4.0 sits at
// the same relative position on this platform.
const fig15Rate = 4.0

func init() {
	register("tab1", "policy parameters (Table 1)", runTab1)
	register("tab2", "threshold settings used in the trade-off study (Table 2)", runTab2)
	register("fig13", "latency under threshold settings I-VI", runFig13)
	register("fig14", "normalized power under threshold settings I-VI", runFig14)
	register("fig15", "Pareto curve: latency vs power savings at rate 1.7", runFig15)
}

func runTab1(Options) []Table {
	p := core.DefaultParams()
	t := Table{
		Title:  "Table 1: parameters of the history-based DVS policy",
		Header: []string{"W", "H", "B_congested", "TL_low", "TL_high", "TH_low", "TH_high"},
	}
	t.AddRow(fmt.Sprint(p.W), fmt.Sprint(p.H), f(p.BCongested, 1),
		f(p.TLLow, 1), f(p.TLHigh, 1), f(p.THLow, 1), f(p.THHigh, 1))
	return []Table{t}
}

func runTab2(Options) []Table {
	t := Table{
		Title:  "Table 2: thresholds used in trade-off analysis",
		Header: []string{"setting", "TL_low", "TL_high"},
	}
	for _, s := range core.Table2Settings() {
		t.AddRow(s.Name, f(s.TLLow, 2), f(s.TLHigh, 2))
	}
	return []Table{t}
}

// thresholdSpec builds a spec for one Table 2 setting at one rate.
func thresholdSpec(set core.ThresholdSetting, rate float64) spec {
	s := defaultSpec(rate, network.PolicyHistory)
	s.tlLow, s.tlHigh = set.TLLow, set.TLHigh
	return s
}

func runFig13(o Options) []Table {
	t := Table{Title: "Figure 13: latency profile under DVS threshold settings (cycles)"}
	t.Header = []string{"rate"}
	for _, s := range core.Table2Settings() {
		t.Header = append(t.Header, s.Name)
	}
	for _, rate := range thresholdRates {
		row := []string{f(rate, 2)}
		for _, set := range core.Table2Settings() {
			r := run(thresholdSpec(set, rate), o)
			row = append(row, f(r.MeanLatency, 0))
		}
		t.AddRow(row...)
	}
	t.Notes = []string{
		"paper shape: more aggressive settings (I -> VI) raise latency",
	}
	return []Table{t}
}

func runFig14(o Options) []Table {
	t := Table{Title: "Figure 14: normalized power under DVS threshold settings"}
	t.Header = []string{"rate"}
	for _, s := range core.Table2Settings() {
		t.Header = append(t.Header, s.Name)
	}
	for _, rate := range thresholdRates {
		row := []string{f(rate, 2)}
		for _, set := range core.Table2Settings() {
			r := run(thresholdSpec(set, rate), o)
			row = append(row, f(r.NormalizedPwr, 3))
		}
		t.AddRow(row...)
	}
	t.Notes = []string{
		"paper shape: more aggressive settings (I -> VI) lower power",
	}
	return []Table{t}
}

func runFig15(o Options) []Table {
	t := Table{
		Title:  fmt.Sprintf("Figure 15: latency vs dynamic power savings at rate %.1f", fig15Rate),
		Header: []string{"setting", "latency(cycles)", "savings"},
	}
	type pt struct{ lat, sav float64 }
	var pts []pt
	for _, set := range core.Table2Settings() {
		r := run(thresholdSpec(set, fig15Rate), o)
		t.AddRow(set.Name, f(r.MeanLatency, 0), f(r.SavingsX, 2)+"X")
		pts = append(pts, pt{r.MeanLatency, r.SavingsX})
	}
	// Check the Pareto property: savings rise monotonically I -> VI.
	mono := true
	for i := 1; i < len(pts); i++ {
		if pts[i].sav < pts[i-1].sav {
			mono = false
		}
	}
	note := "savings increase monotonically with threshold aggressiveness"
	if !mono {
		note = "savings are not strictly monotone at this budget (noise); rerun without -quick"
	}
	t.Notes = []string{
		note,
		"paper: an improvement in one metric can only be obtained by degrading the other",
	}
	return []Table{t}
}
