package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/network"
)

// Figures 13-15 study the power/performance trade-off of the threshold
// settings in Table 2: sweeping the light-load band (TLLow, TLHigh) from
// conservative (I) to aggressive (VI) trades latency for power savings,
// tracing out a Pareto curve.

// thresholdRates are the pre-congestion load points of Figures 13/14.
var thresholdRates = []float64{1.0, 2.5, 4.0}

// fig15Rate is the fixed operating point of the Pareto curve: the paper
// uses 1.7 packets/cycle, ~80% of its saturation throughput; 4.0 sits at
// the same relative position on this platform.
const fig15Rate = 4.0

func init() {
	register("tab1", "policy parameters (Table 1)", runTab1)
	register("tab2", "threshold settings used in the trade-off study (Table 2)", runTab2)
	register("fig13", "latency under threshold settings I-VI", runFig13)
	register("fig14", "normalized power under threshold settings I-VI", runFig14)
	register("fig15", "Pareto curve: latency vs power savings at rate 1.7", runFig15)
}

func runTab1(Options) []Table {
	p := core.DefaultParams()
	t := Table{
		Title:  "Table 1: parameters of the history-based DVS policy",
		Header: []string{"W", "H", "B_congested", "TL_low", "TL_high", "TH_low", "TH_high"},
	}
	t.AddRow(fmt.Sprint(p.W), fmt.Sprint(p.H), f(p.BCongested, 1),
		f(p.TLLow, 1), f(p.TLHigh, 1), f(p.THLow, 1), f(p.THHigh, 1))
	return []Table{t}
}

func runTab2(Options) []Table {
	t := Table{
		Title:  "Table 2: thresholds used in trade-off analysis",
		Header: []string{"setting", "TL_low", "TL_high"},
	}
	for _, s := range core.Table2Settings() {
		t.AddRow(s.Name, f(s.TLLow, 2), f(s.TLHigh, 2))
	}
	return []Table{t}
}

// thresholdSpec builds a spec for one Table 2 setting at one rate.
func thresholdSpec(set core.ThresholdSetting, rate float64) spec {
	s := defaultSpec(rate, network.PolicyHistory)
	s.tlLow, s.tlHigh = set.TLLow, set.TLHigh
	return s
}

// thresholdGrid simulates the full (rate x Table 2 setting) cross-product
// across the worker pool and renders one cell per point. Rows assemble in
// fixed (rate, setting) order, so the table matches the sequential path
// byte for byte.
func thresholdGrid(o Options, title string, cell func(r network.Results) string, notes []string) Table {
	t := Table{Title: title}
	t.Header = []string{"rate"}
	settings := core.Table2Settings()
	for _, s := range settings {
		t.Header = append(t.Header, s.Name)
	}
	specs := make([]spec, 0, len(thresholdRates)*len(settings))
	for _, rate := range thresholdRates {
		for _, set := range settings {
			specs = append(specs, thresholdSpec(set, rate))
		}
	}
	res := sweepSpecs(o, specs)
	for i, rate := range thresholdRates {
		row := []string{f(rate, 2)}
		for j := range settings {
			row = append(row, cell(res[i*len(settings)+j]))
		}
		t.AddRow(row...)
	}
	t.Notes = notes
	return t
}

func runFig13(o Options) []Table {
	return []Table{thresholdGrid(o,
		"Figure 13: latency profile under DVS threshold settings (cycles)",
		func(r network.Results) string { return f(r.MeanLatency, 0) },
		[]string{"paper shape: more aggressive settings (I -> VI) raise latency"})}
}

func runFig14(o Options) []Table {
	return []Table{thresholdGrid(o,
		"Figure 14: normalized power under DVS threshold settings",
		func(r network.Results) string { return f(r.NormalizedPwr, 3) },
		[]string{"paper shape: more aggressive settings (I -> VI) lower power"})}
}

func runFig15(o Options) []Table {
	t := Table{
		Title:  fmt.Sprintf("Figure 15: latency vs dynamic power savings at rate %.1f", fig15Rate),
		Header: []string{"setting", "latency(cycles)", "savings"},
	}
	type pt struct{ lat, sav float64 }
	settings := core.Table2Settings()
	specs := make([]spec, len(settings))
	for i, set := range settings {
		specs[i] = thresholdSpec(set, fig15Rate)
	}
	res := sweepSpecs(o, specs)
	var pts []pt
	for i, set := range settings {
		r := res[i]
		t.AddRow(set.Name, f(r.MeanLatency, 0), f(r.SavingsX, 2)+"X")
		pts = append(pts, pt{r.MeanLatency, r.SavingsX})
	}
	// Check the Pareto property: savings rise monotonically I -> VI.
	mono := true
	for i := 1; i < len(pts); i++ {
		if pts[i].sav < pts[i-1].sav {
			mono = false
		}
	}
	note := "savings increase monotonically with threshold aggressiveness"
	if !mono {
		note = "savings are not strictly monotone at this budget (noise); rerun without -quick"
	}
	t.Notes = []string{
		note,
		"paper: an improvement in one metric can only be obtained by degrading the other",
	}
	return []Table{t}
}
