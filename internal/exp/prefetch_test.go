package exp

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/runcache"
	"repro/internal/traffic"
	"repro/internal/traffic/tracestore"
)

// TestPrefetchReportsMissesThenHits: a walk over empty stores reports
// every key — result and trace alike — as a miss without running a
// simulation or writing anything; the same walk after a real run reports
// every key as a hit. The real run after a walk must still render the same
// bytes as one with no walk before it — the zero-valued placeholders a
// walk memoizes must not leak.
func TestPrefetchReportsMissesThenHits(t *testing.T) {
	tinyBudget = true
	ResetCaches()
	defer func() {
		tinyBudget = false
		ResetCaches()
	}()
	s, _ := withTestDiskCache(t)
	rc, err := runcache.Open(t.TempDir(), runcache.Options{Fingerprint: "exp-prefetch-trace-test"})
	if err != nil {
		t.Fatal(err)
	}
	traffic.SetTraceStore(tracestore.NewStore(rc))
	defer traffic.SetTraceStore(nil)

	ids := []string{"fig10", "tab1"}
	o := Options{Quick: true}

	cold, err := Prefetch(ids, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) == 0 {
		t.Fatal("cold walk consulted no keys")
	}
	kinds := map[string]int{}
	for _, e := range cold {
		kinds[e.Kind]++
	}
	if kinds["result"] == 0 || kinds["trace"] == 0 {
		t.Fatalf("cold walk kinds = %v; want both result and trace keys", kinds)
	}
	if !sort.SliceIsSorted(cold, func(i, j int) bool { return cold[i].Key < cold[j].Key }) {
		t.Error("entries are not in sorted key order")
	}
	for _, e := range cold {
		if e.Hit {
			t.Errorf("cold walk reported a hit on an empty store: %s", e.Key)
		}
	}
	if st := s.Stats(); st.Puts != 0 {
		t.Fatalf("walk wrote %d entries; a dry run must write nothing", st.Puts)
	}
	if st := rc.Stats(); st.Puts != 0 {
		t.Fatalf("walk wrote %d traces; a dry run must write nothing", st.Puts)
	}

	// The real run is undisturbed by the walk that preceded it.
	got := render(t, ids, o)
	ResetCaches()
	want := render(t, ids, o)
	if got != want {
		t.Errorf("render after a walk drifted from a plain render\n--- after walk ---\n%s--- plain ---\n%s", got, want)
	}

	warm, err := Prefetch(ids, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != len(cold) {
		t.Fatalf("warm walk consulted %d keys, cold walk %d; the key set must not depend on store contents", len(warm), len(cold))
	}
	for _, e := range warm {
		if !e.Hit {
			t.Errorf("warm walk missed after a real run: %s", e.Key)
		}
	}
}

// TestPrefetchKeySetIgnoresTiles: tile parallelism never changes output
// bytes, so Options.Tiles is deliberately absent from every cache key — a
// walk at Tiles=4 must consult exactly the keys of a single-scheduler walk.
func TestPrefetchKeySetIgnoresTiles(t *testing.T) {
	tinyBudget = true
	ResetCaches()
	defer func() {
		tinyBudget = false
		ResetCaches()
	}()

	ids := []string{"fig10", "fig3"}
	flat, err := Prefetch(ids, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := Prefetch(ids, Options{Quick: true, Tiles: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flat, tiled) {
		t.Errorf("Tiles=4 walk consulted a different key set than Tiles=0\n--- flat ---\n%v\n--- tiled ---\n%v", flat, tiled)
	}
}

// TestPrefetchUnknownID: an unknown experiment fails up front, before any
// walk state is installed, so a subsequent walk still runs.
func TestPrefetchUnknownID(t *testing.T) {
	if _, err := Prefetch([]string{"fig10", "nope"}, Options{Quick: true}); err == nil {
		t.Fatal("unknown id accepted")
	}
	tinyBudget = true
	ResetCaches()
	defer func() {
		tinyBudget = false
		ResetCaches()
	}()
	if _, err := Prefetch([]string{"fig10"}, Options{Quick: true}); err != nil {
		t.Fatalf("walk after a rejected id list failed: %v", err)
	}
}
