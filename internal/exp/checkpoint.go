// Warmup checkpointing: experiment sweeps ablate the DVS policy across
// many variants at each (seed, rate) operating point, and every variant
// used to pay for its own warmup from cycle 0. Warmups now run
// policy-frozen (network.SetDVSHold) — the policy is a measurement-time
// concern, and freezing it makes the warmed-up state provably
// policy-independent — so the harness captures the warmed state once per
// warm key (internal/checkpoint) and forks it per variant. The fork is
// byte-identical to an uninterrupted run (the conformance suite pins
// this), so results are the same with the path disabled
// (Options.NoCheckpoint); only warmup work is saved.
package exp

import (
	"fmt"
	"sync/atomic"

	"repro/internal/checkpoint"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// warmupCycles counts simulated warmup cycles process-wide. The
// checkpoint-reduction test asserts a checkpointed sweep executes
// measurably fewer of them than a straight one; re-executed warmups
// (capture refusals, straight fallbacks) count every time — it meters
// work actually done, not work intended.
var warmupCycles atomic.Int64

// WarmupCyclesExecuted reports the total warmup cycles simulated by this
// process. Tests diff it around sweeps.
func WarmupCyclesExecuted() int64 { return warmupCycles.Load() }

// Tile-parallel barrier accounting, accumulated process-wide across every
// tiled point simulate runs. Cache hits contribute nothing (no simulation
// happened), so figures can report how much merge traffic the extracted
// lookahead actually avoided on recomputes.
var tileWindows, tileBarriers, tileBarriersElided atomic.Int64

// TileBarrierCounters summarizes the tiled runs this process executed:
// planned windows, actual cross-tile merges, and merges elided because no
// cross-tile traffic was pending. All zero when no tiled point simulated.
type TileBarrierCounters struct {
	Windows, Barriers, Elided int64
}

// TileBarrierStats reports the process-wide tiled barrier counters.
func TileBarrierStats() TileBarrierCounters {
	return TileBarrierCounters{
		Windows:  tileWindows.Load(),
		Barriers: tileBarriers.Load(),
		Elided:   tileBarriersElided.Load(),
	}
}

// warmSnap is one warm-key cache slot: the captured warmed-up state and
// the trace it ran under (forks re-attach the same trace; the snapshot
// itself carries only the replay's progress). Both nil when the point
// cannot be checkpointed — its workload exceeds the trace budget — in
// which case every variant runs straight.
type warmSnap struct {
	snap *checkpoint.Snapshot
	tr   *traffic.Trace
}

// warmSnapCache deduplicates warmup simulations inside the process, one
// slot per warm key.
var warmSnapCache = newSFCache[string, *warmSnap](64)

// warmKey identifies everything a frozen warmup depends on: budgets (the
// traffic horizon spans warmup and measurement, so both matter), workload,
// platform shape and the simulation-core toggles. The policy selection,
// its thresholds and window parameters, and the link transition latencies
// are deliberately absent — a held warmup never consults them, which is
// exactly what lets policy ablations share one snapshot.
func (s spec) warmKey(o Options) string {
	warm, meas := o.budget()
	return fmt.Sprintf("ckpt|v%d|warm=%d|meas=%d|audit=%t|noskip=%t|seed=%d|"+
		"rate=%g|tasks=%d|taskdur=%d|routing=%s|specseed=%d|levels=%d|k=%d|n=%d|torus=%t",
		SchemaVersion, warm, meas, o.Audit, o.NoSkip, o.seed(),
		s.rate, s.tasks, int64(s.taskDur), s.routing, s.seed, s.levels, s.k, s.n, s.torus)
}

// simulate executes warmup + measurement for one point. The warmup always
// runs policy-frozen, on both paths, so the two are step-for-step
// identical until measurement begins: straight runs hold, warm up and
// release; checkpointed runs fork a snapshot captured at the same held
// instant and release. Fallbacks (untraceable workload, capture refusal,
// restore failure) land on the straight path.
func simulate(s spec, o Options) network.Results {
	warm, meas := o.budget()
	// Tiled points always run straight: a tiled network refuses checkpoint
	// capture and restore (see network.CaptureCheckpoint), and the straight
	// path is byte-identical to the forked one anyway.
	if !o.NoCheckpoint && o.Tiles <= 1 {
		if ws := warmSnapshot(s, o); ws.snap != nil {
			if r, ok := forkAndMeasure(s, o, ws, meas); ok {
				return r
			}
		}
	}
	n, m, horizon := s.build(o, warm+meas+1)
	n.Launch(m, horizon)
	n.SetDVSHold(true)
	n.Run(warm)
	warmupCycles.Add(warm)
	n.SetDVSHold(false)
	n.BeginMeasurement()
	n.Run(meas)
	if n.Tiled() {
		st := n.SkipStats()
		tileWindows.Add(st.TileWindows)
		tileBarriers.Add(st.TileBarriers)
		tileBarriersElided.Add(st.TileBarriersElided)
	}
	return n.Snapshot()
}

// forkAndMeasure builds this variant's network from the shared warmed-up
// snapshot and runs its measurement interval. ok is false when the
// snapshot does not restore (a stale or foreign disk payload whose bytes
// decode but whose shape does not fit this platform); the caller falls
// back to a straight run.
func forkAndMeasure(s spec, o Options, ws *warmSnap, meas int64) (network.Results, bool) {
	n, err := checkpoint.Fork(ws.snap, s.config(o), ws.tr)
	if err != nil {
		return network.Results{}, false
	}
	n.SetDVSHold(false)
	n.BeginMeasurement()
	n.Run(meas)
	return n.Snapshot(), true
}

// warmSnapshot returns the warmed-up snapshot for a point's warm key,
// computing it on first use: memory -> disk -> simulate, with the
// in-memory singleflight covering both lower layers. The caller already
// holds a simulation slot, so the warmup runs inside it.
func warmSnapshot(s spec, o Options) *warmSnap {
	wkey := s.warmKey(o)
	return warmSnapCache.do(wkey, func() *warmSnap {
		if noTraceMemo {
			return &warmSnap{} // forks need a shared trace to re-attach
		}
		warm, meas := o.budget()
		cfg := s.config(o)
		// Warmups are captured untiled regardless of o.Tiles: the warm key
		// excludes the tile count, and a tiled network refuses capture.
		// (simulate never reaches here for tiled points; this guards any
		// future caller.)
		cfg.Tiles = 0
		horizon := sim.Time(warm+meas+1) * cfg.RouterPeriod
		topo := topology.New(cfg.K, cfg.N, cfg.Torus)
		tr, _ := traffic.SharedTwoLevelTrace(s.twoLevelParams(o), topo, horizon)
		if tr == nil {
			// Workload exceeds the trace budget: run live, straight.
			// build already emitted the fallback note for this point.
			return &warmSnap{}
		}
		if ds := diskStore.Load(); ds != nil {
			if b, ok := ds.Get(wkey); ok {
				if snap, err := checkpoint.Decode(b); err == nil {
					return &warmSnap{snap: snap, tr: tr}
				}
				ds.Drop(wkey)
			}
		}
		n, err := network.New(cfg)
		if err != nil {
			panic(err)
		}
		n.Launch(tr, horizon)
		n.SetDVSHold(true)
		n.Run(warm)
		warmupCycles.Add(warm)
		snap, err := checkpoint.Capture(n)
		if err != nil {
			// Refusals are a correctness escape hatch, not an error: the
			// point simply runs straight (and pays its own warmups).
			return &warmSnap{}
		}
		if ds := diskStore.Load(); ds != nil {
			if b, err := checkpoint.Encode(snap); err == nil {
				ds.Put(wkey, b)
			}
		}
		return &warmSnap{snap: snap, tr: tr}
	})
}
