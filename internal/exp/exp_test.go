package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/network"
)

// quick is the smoke budget shared by every experiment test here.
var quick = Options{Quick: true}

// skipSims gates the tests that run real quick-budget simulations (tens of
// seconds each on one core); `go test -short` keeps only the structural
// checks and the tinyBudget-based parallelism tests.
func skipSims(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("quick-budget simulation: skipped in -short")
	}
}

func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tab.Rows[row][col], "X")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestListAndDescriptions(t *testing.T) {
	list := List()
	if len(list) < 18 {
		t.Fatalf("only %d experiments registered", len(list))
	}
	for _, line := range list {
		if len(strings.Fields(line)) < 2 {
			t.Errorf("experiment line %q lacks a description", line)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", quick); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "T", Header: []string{"a", "bb"}, Notes: []string{"note"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "a", "bb", "# note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestStaticTables(t *testing.T) {
	for _, id := range []string{"tab1", "tab2", "fig7", "orion", "noise"} {
		tabs, err := Run(id, quick)
		if err != nil || len(tabs) == 0 {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tabs[0].Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}

// TestFig3To5Shapes checks the Section 3.1 characterization: mean LU rises
// steadily with load while BU and BA stay near zero until congestion and
// then jump — the property that makes BU a congestion litmus.
func TestFig3To5Shapes(t *testing.T) {
	skipSims(t)
	ms := measures(quick)
	last := len(measureRates) - 1

	// LU means increase with load and move substantially overall.
	for i := 1; i <= last; i++ {
		if ms.lu[i].Mean() <= ms.lu[i-1].Mean() {
			t.Errorf("mean LU not increasing at rate point %d", i)
		}
	}
	if ms.lu[last].Mean()-ms.lu[0].Mean() < 0.3 {
		t.Errorf("LU range %.2f..%.2f too narrow", ms.lu[0].Mean(), ms.lu[last].Mean())
	}

	// BU is an indicator: flat and tiny pre-congestion, sharp rise at the
	// congested point.
	if ms.bu[1].Mean()-ms.bu[0].Mean() > 0.1 {
		t.Errorf("BU moved %.2f across light loads; should be insensitive",
			ms.bu[1].Mean()-ms.bu[0].Mean())
	}
	if ms.bu[last].Mean() < 2*ms.bu[1].Mean() {
		t.Errorf("BU did not spike under congestion: %.3f vs %.3f",
			ms.bu[last].Mean(), ms.bu[1].Mean())
	}

	// BA behaves like BU (which is why the paper picks BU: same signal,
	// easier to measure).
	if ms.ba[last].Mean() < 3*ms.ba[0].Mean() {
		t.Errorf("BA did not spike under congestion: %.1f vs %.1f",
			ms.ba[last].Mean(), ms.ba[0].Mean())
	}
}

// TestFig10Shape checks the headline figure: multi-X savings, bounded
// throughput loss, latency ordering.
func TestFig10Shape(t *testing.T) {
	skipSims(t)
	tabs, err := Run("fig10", quick)
	if err != nil || len(tabs) != 2 {
		t.Fatalf("fig10: %v (%d tables)", err, len(tabs))
	}
	perf, pow := tabs[0], tabs[1]
	for i := range perf.Rows {
		latBase, latDVS := cell(t, perf, i, 1), cell(t, perf, i, 2)
		if latDVS < latBase {
			t.Errorf("row %d: DVS latency %v below baseline %v", i, latDVS, latBase)
		}
		thrBase, thrDVS := cell(t, perf, i, 3), cell(t, perf, i, 4)
		// Pre-saturation rows track closely; past DVS saturation (the last
		// sweep point) the gap widens — that IS the throughput penalty.
		bound := 0.9
		if cell(t, perf, i, 0) > 4 {
			bound = 0.75
		}
		if thrDVS < bound*thrBase {
			t.Errorf("row %d: DVS throughput %.3f far below baseline %.3f", i, thrDVS, thrBase)
		}
	}
	// Savings at the lightest load are real. (The policy-frozen warmup —
	// what lets checkpointed sweeps share one warmup across policy
	// variants — leaves the 9-step descent from the power-on level
	// entirely inside the measurement window, and each downward step
	// costs a 10 us voltage ramp, so the quick budget's window is mostly
	// descent and steady-state savings are heavily underestimated; -full
	// removes the bias. See EXPERIMENTS.md note 3.)
	if sav := cell(t, pow, 0, 3); sav < 1.25 {
		t.Errorf("light-load savings = %.2f, want > 1.25X even at quick budget", sav)
	}
	first := cell(t, pow, 0, 2)
	lastRow := len(pow.Rows) - 1
	if lastVal := cell(t, pow, lastRow, 2); lastVal <= first {
		t.Errorf("normalized power not rising with load: %.3f .. %.3f", first, lastVal)
	}
}

// TestFig12Shape: power rises with throughput into congestion.
func TestFig12Shape(t *testing.T) {
	skipSims(t)
	tabs, err := Run("fig12", quick)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	firstPwr := cell(t, tab, 0, 2)
	maxPwr := firstPwr
	for i := range tab.Rows {
		if p := cell(t, tab, i, 2); p > maxPwr {
			maxPwr = p
		}
	}
	if maxPwr <= firstPwr {
		t.Errorf("power never rose above the light-load point (%.1f)", firstPwr)
	}
	// Throughput saturates: the last point's throughput gain is far below
	// the injected-rate gain.
	thrFirst, thrLast := cell(t, tab, 0, 1), cell(t, tab, len(tab.Rows)-1, 1)
	rateFirst, rateLast := cell(t, tab, 0, 0), cell(t, tab, len(tab.Rows)-1, 0)
	if (thrLast-thrFirst)/(rateLast-rateFirst) > 0.8 {
		t.Error("network never saturated across the congestion sweep")
	}
}

// TestFig15Pareto: threshold aggressiveness buys power with latency.
func TestFig15Pareto(t *testing.T) {
	skipSims(t)
	tabs, err := Run("fig15", quick)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("fig15 rows = %d, want 6 settings", len(tab.Rows))
	}
	savI := cell(t, tab, 0, 2)
	savVI := cell(t, tab, 5, 2)
	if savVI <= savI {
		t.Errorf("setting VI savings (%.2f) not above setting I (%.2f)", savVI, savI)
	}
}

// TestHeadlineTable: the abstract-comparison table carries all four rows.
func TestHeadlineTable(t *testing.T) {
	skipSims(t)
	tabs, err := Run("headline", quick)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("headline rows = %d, want 4", len(tab.Rows))
	}
	// Quick-budget savings sit low because the DVS descent happens inside
	// the measurement window (EXPERIMENTS.md note 3); assert they are
	// still unmistakably present.
	if got := cell(t, tab, 0, 2); got < 1.25 {
		t.Errorf("max savings = %.1fX, want > 1.25X at quick budget", got)
	}
}

// TestPointAPI: the programmatic access point matches the cache.
func TestPointAPI(t *testing.T) {
	skipSims(t)
	a := Point(1.0, network.PolicyHistory, quick)
	b := Point(1.0, network.PolicyHistory, quick)
	if a != b {
		t.Error("Point not deterministic/cached")
	}
	if a.SavingsX <= 1 {
		t.Errorf("savings = %.2f, want > 1", a.SavingsX)
	}
}

// TestAblationLitmus: without the BU litmus, congested-network power is
// higher (the policy keeps pushing stalled links fast).
func TestAblationLitmus(t *testing.T) {
	skipSims(t)
	tabs, err := Run("abl-litmus", quick)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	withSav := cell(t, tab, 0, 4)
	withoutSav := cell(t, tab, 1, 4)
	if withSav < withoutSav {
		t.Errorf("litmus savings %.2fX below ablation %.2fX — litmus should help under congestion",
			withSav, withoutSav)
	}
}

func TestFprintCSV(t *testing.T) {
	tab := Table{Title: "T", Header: []string{"a", "b"}, Notes: []string{"n"}}
	tab.AddRow("1", "x,y")
	var buf bytes.Buffer
	tab.FprintCSV(&buf)
	out := buf.String()
	for _, want := range []string{"# T", "a,b", `1,"x,y"`, "# n"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryCoversDesignIndex: every experiment id promised in DESIGN.md
// and the README exists in the registry.
func TestRegistryCoversDesignIndex(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig5", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "tab1", "tab2", "headline", "saturation",
		"abl-litmus", "abl-window", "abl-weight", "abl-adaptive",
		"abl-routing", "abl-levels", "abl-topology", "abl-routerpower",
		"orion", "noise",
	}
	for _, id := range want {
		if _, ok := registry[id]; !ok {
			t.Errorf("experiment %q promised but not registered", id)
		}
	}
	if len(registry) < len(want) {
		t.Errorf("registry has %d entries, want >= %d", len(registry), len(want))
	}
}
