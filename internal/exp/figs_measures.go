package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Figures 3-5 characterize the candidate DVS measures — link utilization,
// input-buffer utilization and input-buffer age — on one mesh link as
// network load rises (Section 3.1). The paper samples a link of the 8x8
// mesh every 50 cycles under the two-level workload, without DVS (links at
// full speed): the profiles motivate the policy design.

// measureRates are the load points, rising from light (a) to congested
// (d), placed relative to this platform's ~5 packets/cycle saturation as
// the paper's 4 points are to its ~2.1.
var measureRates = []float64{0.5, 2.0, 4.0, 8.0}

const measureWindow = 50 // cycles, the paper's H=50 sampling

// measureSet holds the per-rate histograms of one characterization run.
type measureSet struct {
	lu, bu, ba []*stats.Histogram // indexed by rate point
}

// measurePayload is the persistent form of a measureSet (exported fields
// for JSON; histograms carry their own wire encoding).
type measurePayload struct {
	LU, BU, BA []*stats.Histogram
}

// measuresKey canonicalizes the whole characterization: the sampling
// window plus the full spec of every rate point, so editing either the
// rate list or any platform default re-simulates the set.
func measuresKey(o Options) string {
	key := fmt.Sprintf("measures|window=%d", measureWindow)
	for _, rate := range measureRates {
		key += "|" + defaultSpec(rate, network.PolicyNone).cacheKey(o)
	}
	return key
}

// measures runs the per-rate characterizations, one independent simulation
// per rate point fanned across the worker pool; measureCache (parallel.go)
// deduplicates concurrent callers so fig3, fig4 and fig5 in one process
// share a single simulation set, and the persistent layer shares it across
// processes.
func measures(o Options) *measureSet {
	return measureCache.do(o, func() *measureSet {
		for _, rate := range measureRates {
			prefetchRecordTrace(defaultSpec(rate, network.PolicyNone), o)
		}
		p := cached(measuresKey(o), func() measurePayload {
			p := measurePayload{
				LU: make([]*stats.Histogram, len(measureRates)),
				BU: make([]*stats.Histogram, len(measureRates)),
				BA: make([]*stats.Histogram, len(measureRates)),
			}
			Sweep(len(measureRates), func(i int) {
				p.LU[i], p.BU[i], p.BA[i] = measureOneRate(measureRates[i], o)
			})
			return p
		})
		return &measureSet{lu: p.LU, bu: p.BU, ba: p.BA}
	})
}

// measureOneRate characterizes one load point: it simulates the platform
// without DVS and samples the tracked link every measureWindow cycles.
func measureOneRate(rate float64, o Options) (lu, bu, ba *stats.Histogram) {
	withSimSlot(func() {
		lu = stats.NewHistogram(0, 1, 10)
		bu = stats.NewHistogram(0, 1, 10)
		ba = stats.NewHistogram(0, 100, 10) // cycles in buffer

		s := defaultSpec(rate, network.PolicyNone)
		warm, meas := o.budget()
		n, m, horizon := s.build(o, warm+meas+1)
		// The tracked link: the +x channel out of central node (3,3), and
		// the input buffers downstream of it at node (4,3).
		src := n.Topo.NodeAt(3, 3)
		dst := n.Topo.NodeAt(4, 3)
		l := n.LinkAt(src, 0, topology.Plus)
		outPort := n.Routers[src].Outputs[n.Topo.PortFor(0, topology.Plus)]
		inPort := n.Routers[dst].Inputs[n.Topo.PortFor(0, topology.Minus)]

		n.Launch(m, horizon)
		window := sim.Duration(measureWindow) * n.Cfg.RouterPeriod
		measuring := false
		n.ProbeEvery = measureWindow
		n.Probe = func(now sim.Time) {
			busy, dead := l.TakeUtilization(now)
			luv := core.LinkUtilization(busy, window-dead)
			buv := core.BufferUtilization(outPort.TakeOccupancyIntegral(now), outPort.TotalSlots(), window)
			res, dep := inPort.TakeAgeWindow()
			if !measuring {
				return
			}
			lu.Add(luv)
			bu.Add(buv)
			if dep > 0 {
				ba.Add(core.BufferAge(res, dep) / float64(n.Cfg.RouterPeriod))
			}
		}
		n.Run(warm)
		measuring = true
		n.Run(meas)
	})
	return lu, bu, ba
}

// histTable renders per-rate histograms side by side, one row per bin.
func histTable(title, measure string, hists []*stats.Histogram, notes []string) Table {
	t := Table{Title: title, Notes: notes}
	t.Header = []string{measure}
	for _, r := range measureRates {
		t.Header = append(t.Header, fmt.Sprintf("rate=%.1f", r))
	}
	for b := 0; b < hists[0].Bins(); b++ {
		row := []string{fmt.Sprintf("%.2f", hists[0].BinCenter(b))}
		for _, h := range hists {
			row = append(row, f(h.Fraction(b), 3))
		}
		t.AddRow(row...)
	}
	row := []string{"mean"}
	for _, h := range hists {
		row = append(row, f(h.Mean(), 3))
	}
	t.AddRow(row...)
	return t
}

func init() {
	register("fig3", "link utilization profile vs load (H=50 sampling)", func(o Options) []Table {
		ms := measures(o)
		return []Table{histTable(
			"Figure 3: link utilization profile (fraction of samples per LU bin)",
			"LU bin", ms.lu, []string{
				"paper shape: LU low at light load, rises with load, dips when congested",
			})}
	})
	register("fig4", "input buffer utilization profile vs load", func(o Options) []Table {
		ms := measures(o)
		return []Table{histTable(
			"Figure 4: input buffer utilization profile (fraction of samples per BU bin)",
			"BU bin", ms.bu, []string{
				"paper shape: BU near zero until congestion, then rises sharply",
				"paper: light->high load moves mean BU by ~0.1 while mean LU moves >0.8",
			})}
	})
	register("fig5", "input buffer age profile vs load", func(o Options) []Table {
		ms := measures(o)
		return []Table{histTable(
			"Figure 5: input buffer age profile (fraction of samples per age bin, cycles)",
			"age bin", ms.ba, []string{
				"paper shape: ages small until congestion, then flits stall for a long time",
			})}
	})
	register("fig8", "spatial variance of the injected workload", runFig8)
	register("fig9", "temporal variance of injections at one router", runFig9)
}

// fig8Payload is the persistent form of the spatial-variance measurement:
// injection counts laid out as Grid[y][x], so rendering needs no topology.
type fig8Payload struct {
	Grid [][]int64
}

// runFig8 snapshots per-node injection rates under the two-level workload.
func runFig8(o Options) []Table {
	// fig8 wraps the model's injector to count injections, which requires
	// the single-scheduler engine (a tiled network injects per tile from
	// filtered trace projections). Tiles is not in the cache key, so the
	// override cannot split cached results.
	o.Tiles = 0
	s := defaultSpec(1.0, network.PolicyNone)
	warm, meas := o.budget()
	prefetchRecordTrace(s, o)
	p := cached("fig8|"+s.cacheKey(o), func() (p fig8Payload) {
		withSimSlot(func() {
			n, m, horizon := s.build(o, warm+meas+1)
			counts := make([]int64, n.Topo.Nodes())
			counting := false
			m.Launch(n.Sched, horizon, func(src, dst int, at sim.Time, task int64) {
				if counting {
					counts[src]++
				}
				n.Inject(src, dst, at, task)
			})
			n.Run(warm)
			counting = true
			n.Run(meas)
			p.Grid = make([][]int64, n.Cfg.K)
			for y := range p.Grid {
				p.Grid[y] = make([]int64, n.Cfg.K)
				for x := range p.Grid[y] {
					p.Grid[y][x] = counts[n.Topo.NodeAt(x, y)]
				}
			}
		})
		return p
	})

	t := Table{Title: "Figure 8: spatial variance of injected load (packets/cycle per node)"}
	t.Header = []string{"y\\x"}
	for x := range p.Grid {
		t.Header = append(t.Header, fmt.Sprintf("x=%d", x))
	}
	var st stats.Stream
	for y, row := range p.Grid {
		cells := []string{fmt.Sprintf("y=%d", y)}
		for _, count := range row {
			r := float64(count) / float64(meas)
			st.Add(r)
			cells = append(cells, f(r, 4))
		}
		t.AddRow(cells...)
	}
	cv := 0.0
	if st.Mean() > 0 {
		cv = st.Std() / st.Mean()
	}
	t.Notes = []string{
		fmt.Sprintf("coefficient of variation across nodes: %.2f (uniform traffic would be ~0)", cv),
		"paper shape: task placement makes injected load strongly non-uniform in space",
	}
	return []Table{t}
}

// runFig9 profiles the injection process of one router over time and
// verifies its long-range dependence. It profiles whichever router
// injected the most during the measurement window, so the profile always
// carries signal (a fixed node may host no task session under some seeds).
// fig9Payload is the persistent form of the temporal-variance measurement:
// the busiest node's binned injection series plus the network aggregate.
type fig9Payload struct {
	Busiest int
	Bins    []float64
	Agg     []float64
}

func runFig9(o Options) []Table {
	// Same injector-wrapping constraint as fig8: run untiled.
	o.Tiles = 0
	s := defaultSpec(1.0, network.PolicyNone)
	warm, meas := o.budget()
	const binCycles = 100
	nbins := int(meas/binCycles) + 1
	prefetchRecordTrace(s, o)
	p := cached("fig9|"+s.cacheKey(o), func() (p fig9Payload) {
		var perNode [][]float64
		withSimSlot(func() {
			n, m, horizon := s.build(o, warm+meas+1)
			perNode = make([][]float64, n.Topo.Nodes())
			for i := range perNode {
				perNode[i] = make([]float64, nbins)
			}
			counting := false
			m.Launch(n.Sched, horizon, func(src, dst int, at sim.Time, task int64) {
				if counting {
					b := int((at - sim.Time(warm)*n.Cfg.RouterPeriod) / (binCycles * n.Cfg.RouterPeriod))
					if b >= 0 && b < nbins {
						perNode[src][b]++
					}
				}
				n.Inject(src, dst, at, task)
			})
			n.Run(warm)
			counting = true
			n.Run(meas)
		})

		busiest, best := 0, -1.0
		for node, bs := range perNode {
			sum := 0.0
			for _, c := range bs {
				sum += c
			}
			if sum > best {
				best, busiest = sum, node
			}
		}
		p.Busiest = busiest
		p.Bins = perNode[busiest]
		// Network-wide aggregate: the statistically meaningful LRD check at
		// scaled budgets (one node's window holds too few ON/OFF cycles for
		// a stable Hurst estimate).
		p.Agg = make([]float64, nbins)
		for _, bs := range perNode {
			for i, c := range bs {
				p.Agg[i] += c
			}
		}
		return p
	})
	busiest, bins := p.Busiest, p.Bins

	t := Table{Title: fmt.Sprintf(
		"Figure 9: temporal variance of injected load at the busiest router (node %d)", busiest)}
	t.Header = []string{"interval", "packets/cycle"}
	// Coarse 24-segment profile of the injection rate over time.
	const segments = 24
	seg := len(bins) / segments
	if seg < 1 {
		seg = 1
	}
	for i := 0; i < segments && i*seg < len(bins); i++ {
		sum := 0.0
		cnt := 0
		for j := i * seg; j < (i+1)*seg && j < len(bins); j++ {
			sum += bins[j]
			cnt++
		}
		t.AddRow(fmt.Sprintf("t%02d", i), f(sum/float64(cnt*binCycles), 4))
	}
	var st stats.Stream
	for _, b := range bins {
		st.Add(b)
	}
	cv := 0.0
	if st.Mean() > 0 {
		cv = st.Std() / st.Mean()
	}
	t.Notes = []string{
		fmt.Sprintf("per-%d-cycle bins at node %d: mean=%.2f pkts, CV=%.2f", binCycles, busiest, st.Mean(), cv),
		fmt.Sprintf("Hurst: node %.2f, network aggregate %.2f (LRD when > 0.5; single-node",
			stats.HurstAggVar(bins), stats.HurstAggVar(p.Agg)),
		"estimates are noisy at scaled budgets — internal/traffic tests verify H > 0.6",
		"over longer horizons); paper shape: bursty across time scales",
	}
	return []Table{t}
}
