// Cache prefetch walk: a dry-run mode that visits every persistent-cache
// key the selected experiments would consult and reports which are present
// on disk — without running a single simulation. CI uses it as a cheap
// cache-health check (is the shared cache still warm for HEAD?), and it
// answers "what would -exp all recompute?" before committing to the hours.
//
// Mechanism: every simulation result in this package funnels through
// cached() (diskcache.go) on its way to being computed — point results,
// figure payloads and the Section 3.1 characterization set alike. While a
// walk is active, cached() records its key, probes the store for presence,
// and returns the zero value instead of computing, so the registered
// runners drive the exact key set of a real run at rendering cost only.
// The "ckpt|" warm-snapshot keys are deliberately out of scope: they are
// consulted only inside a point's compute function, which a hit never
// reaches, so their presence does not affect what a warm rerun recomputes.
package exp

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// PrefetchEntry reports one persistent-cache key a dry run consulted. Hit
// is false when no store is installed. Kind separates the stores a key
// lives in: "result" entries come from the run cache, "trace" entries from
// the arrival-trace store. Trace entries appear only while a trace store
// is installed (a store-less run captures workloads straight into memory
// and consults no key), and are reported even when a warm result cache
// would never reach them — they are exactly what a -no-cache or
// cold-result-cache run replays instead of re-capturing workloads.
type PrefetchEntry struct {
	Key  string
	Hit  bool
	Kind string
}

// prefetchState collects the keys one walk touches. sims counts
// simulations that slipped past the interception — always zero; the
// counter exists so a future gap fails loudly instead of silently running
// hours of work.
type prefetchState struct {
	mu      sync.Mutex
	seen    map[string]bool
	entries []PrefetchEntry
	sims    atomic.Int64
}

// prefetchRec is the active walk, nil outside Prefetch.
var prefetchRec atomic.Pointer[prefetchState]

func (ps *prefetchState) record(key string, hit bool, kind string) {
	ps.mu.Lock()
	if !ps.seen[key] {
		ps.seen[key] = true
		ps.entries = append(ps.entries, PrefetchEntry{Key: key, Hit: hit, Kind: kind})
	}
	ps.mu.Unlock()
}

// prefetchIntercept is cached()'s hook: when a walk is active it records
// the key (with a disk-presence probe) and reports that the caller must
// return the zero value instead of computing.
func prefetchIntercept(key string) bool {
	ps := prefetchRec.Load()
	if ps == nil {
		return false
	}
	hit := false
	if s := diskStore.Load(); s != nil {
		_, hit = s.Get(key)
	}
	ps.record(key, hit, "result")
	return true
}

// prefetchRecordTrace records, while a walk is active, the trace-store key
// a spec's workload would consult — a presence probe only (Contains), so
// the walk neither decodes multi-MB traces nor perturbs their LRU order.
// Points over the trace budget run live and consult no key; they are
// simply absent. cached() cannot do this itself: trace keys derive from
// the workload parameters, not from any result key it sees, and a real
// run consults them inside compute functions the walk never reaches.
func prefetchRecordTrace(s spec, o Options) {
	ps := prefetchRec.Load()
	if ps == nil || noTraceMemo {
		return
	}
	// With no trace store installed a run consults no trace keys at all —
	// workloads are captured straight into the memory layer — so the walk
	// records none (mirroring what that run would actually do, not what a
	// store-equipped one would).
	ts := traffic.InstalledTraceStore()
	if ts == nil {
		return
	}
	cfg := s.config(o)
	warm, meas := o.budget()
	horizon := sim.Time(warm+meas+1) * cfg.RouterPeriod
	p := s.twoLevelParams(o)
	if ok, _ := traffic.TwoLevelTraceEligible(p, horizon); !ok {
		return
	}
	key := traffic.TwoLevelTraceKey(p, topology.New(cfg.K, cfg.N, cfg.Torus), horizon)
	ps.record(key, ts.Contains(key), "trace")
}

// Prefetch dry-runs the given experiments and reports, in sorted key
// order, every persistent-cache key they would consult and whether it is
// present in the installed store (all misses when none is installed). No
// simulation runs; the in-memory memo caches are reset afterwards, since
// the walk populates them with zero-valued placeholders.
//
// Walks are process-exclusive (the interception is a package-wide mode);
// concurrent real runs would be starved of results, so don't.
func Prefetch(ids []string, o Options) ([]PrefetchEntry, error) {
	runners := make([]Runner, len(ids))
	for i, id := range ids {
		r, ok := registry[id]
		if !ok {
			return nil, unknownExperiment(id)
		}
		runners[i] = r
	}
	ps := &prefetchState{seen: make(map[string]bool)}
	if !prefetchRec.CompareAndSwap(nil, ps) {
		return nil, fmt.Errorf("exp: a prefetch walk is already running")
	}
	defer func() {
		prefetchRec.Store(nil)
		ResetCaches() // drop the zero-valued placeholders the walk memoized
	}()
	// A warm memory layer would satisfy lookups before they reach the
	// persistent layer and silently shrink the reported key set; the walk
	// must start cold to enumerate what a fresh process would consult.
	ResetCaches()
	for _, r := range runners {
		func() {
			// Runners render from the payloads cached() hands back; zero
			// payloads can break rendering (nil histograms, empty grids).
			// Every key is recorded before its payload is used, so a
			// rendering panic costs nothing.
			defer func() { _ = recover() }()
			r(o)
		}()
	}
	if n := ps.sims.Load(); n != 0 {
		return nil, fmt.Errorf("exp: prefetch walk executed %d simulations; the dry-run interception has a gap", n)
	}
	sort.Slice(ps.entries, func(i, j int) bool {
		if ps.entries[i].Kind != ps.entries[j].Kind {
			return ps.entries[i].Kind < ps.entries[j].Kind
		}
		return ps.entries[i].Key < ps.entries[j].Key
	})
	return ps.entries, nil
}
