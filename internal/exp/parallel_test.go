package exp

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/network"
)

// renderIDs regenerates the given experiments from an empty cache and
// returns the concatenated rendered tables.
func renderIDs(t *testing.T, ids []string, o Options) string {
	t.Helper()
	ResetCaches()
	var buf bytes.Buffer
	tabs, err := RunAll(ids, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, exp := range tabs {
		for _, tab := range exp {
			tab.Fprint(&buf)
		}
	}
	return buf.String()
}

// TestParallelDeterminism is the core guarantee of the parallel executor:
// regenerating fig10 and fig13 at three distinct parallelism levels, each
// from a cold cache, produces byte-identical tables. Every simulation
// point seeds its own RNG streams and builds its own network, so execution
// order cannot leak into results. Since the shared-trace path is on by
// default, this also proves concurrent sweeps racing on the trace cache
// (singleflight capture, shared read-only replay) stay deterministic.
func TestParallelDeterminism(t *testing.T) {
	tinyBudget = true
	defer func() { tinyBudget = false; ResetCaches() }()
	defer SetParallelism(0)

	ids := []string{"fig10", "fig13"}
	o := Options{Quick: true}

	SetParallelism(1)
	sequential := renderIDs(t, ids, o)
	if !strings.Contains(sequential, "Figure 10(a)") || !strings.Contains(sequential, "Figure 13") {
		t.Fatalf("reference output incomplete:\n%s", sequential)
	}
	for _, j := range []int{2, 8} {
		SetParallelism(j)
		if got := renderIDs(t, ids, o); got != sequential {
			t.Errorf("-j %d output differs from sequential output\n--- j=%d ---\n%s\n--- j=1 ---\n%s",
				j, j, got, sequential)
		}
	}
}

// TestTraceMemoEquivalence proves the memoized-trace fast path changes
// nothing observable: regenerating the same experiments with trace sharing
// disabled (every point regenerates its workload live) produces
// byte-identical tables. fig10/fig13 sweep several policies over shared
// operating points, so the memoized run exercises real trace reuse.
func TestTraceMemoEquivalence(t *testing.T) {
	tinyBudget = true
	defer func() { tinyBudget = false; noTraceMemo = false; ResetCaches() }()

	ids := []string{"fig10", "fig13"}
	o := Options{Quick: true}

	noTraceMemo = false
	memoized := renderIDs(t, ids, o)
	noTraceMemo = true
	live := renderIDs(t, ids, o)
	if memoized != live {
		t.Errorf("memoized traces change results\n--- memoized ---\n%s\n--- live ---\n%s",
			memoized, live)
	}
}

// TestRunAllMatchesRun: RunAll returns exactly what id-by-id Run returns,
// in input order.
func TestRunAllMatchesRun(t *testing.T) {
	ids := []string{"tab2", "tab1", "fig7"}
	all, err := RunAll(ids, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(ids) {
		t.Fatalf("RunAll returned %d results for %d ids", len(all), len(ids))
	}
	for i, id := range ids {
		want, err := Run(id, quick)
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		for _, tab := range all[i] {
			tab.Fprint(&a)
		}
		for _, tab := range want {
			tab.Fprint(&b)
		}
		if a.String() != b.String() {
			t.Errorf("RunAll[%d] (%s) differs from Run(%s)", i, id, id)
		}
	}
}

func TestRunAllUnknownID(t *testing.T) {
	if _, err := RunAll([]string{"tab1", "nope"}, quick); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestPointConcurrent hammers the public Point entry from many goroutines:
// the old plain-map caches raced here; the singleflight cache must both
// survive the race detector and return identical results everywhere.
func TestPointConcurrent(t *testing.T) {
	tinyBudget = true
	defer func() { tinyBudget = false; ResetCaches() }()
	ResetCaches()

	reference := Point(1.0, network.PolicyHistory, quick)
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([]network.Results, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = Point(1.0, network.PolicyHistory, quick)
		}(g)
	}
	wg.Wait()
	for g, r := range results {
		if r != reference {
			t.Errorf("goroutine %d saw different results: %+v vs %+v", g, r, reference)
		}
	}
}

// TestSweepRunsAllIndices: every index runs exactly once even when n far
// exceeds the worker bound.
func TestSweepRunsAllIndices(t *testing.T) {
	SetParallelism(3)
	defer SetParallelism(0)
	const n = 100
	hits := make([]int, n)
	var mu sync.Mutex
	Sweep(n, func(i int) {
		withSimSlot(func() {
			mu.Lock()
			hits[i]++
			mu.Unlock()
		})
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

// TestSFCacheSingleflight: concurrent requests for one key compute once.
func TestSFCacheSingleflight(t *testing.T) {
	c := newSFCache[string, int](8)
	var computes int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := c.do("k", func() int {
				mu.Lock()
				computes++
				mu.Unlock()
				return 42
			})
			if v != 42 {
				t.Errorf("got %d, want 42", v)
			}
		}()
	}
	wg.Wait()
	if computes != 1 {
		t.Errorf("computed %d times, want 1 (singleflight)", computes)
	}
}

// TestSFCacheEviction: the cache never exceeds its cap with completed
// entries, evicts oldest-first, and recomputes evicted keys.
func TestSFCacheEviction(t *testing.T) {
	c := newSFCache[int, int](4)
	computes := make(map[int]int)
	get := func(k int) int {
		return c.do(k, func() int {
			computes[k]++
			return k * 10
		})
	}
	for k := 0; k < 10; k++ {
		if got := get(k); got != k*10 {
			t.Fatalf("get(%d) = %d", k, got)
		}
	}
	if n := len(c.entries); n > 4 {
		t.Errorf("cache holds %d entries, cap 4", n)
	}
	// Key 0 was evicted long ago: fetching it recomputes.
	get(0)
	if computes[0] != 2 {
		t.Errorf("evicted key recomputed %d times, want 2", computes[0])
	}
	// A recent key is still cached.
	get(9)
	if computes[9] != 1 {
		t.Errorf("recent key computed %d times, want 1", computes[9])
	}
}

func TestParallelismBounds(t *testing.T) {
	SetParallelism(2)
	defer SetParallelism(0)
	if got := Parallelism(); got != 2 {
		t.Errorf("Parallelism() = %d, want 2", got)
	}
	var mu sync.Mutex
	active, peak := 0, 0
	Sweep(16, func(i int) {
		withSimSlot(func() {
			mu.Lock()
			active++
			if active > peak {
				peak = active
			}
			mu.Unlock()
			mu.Lock()
			active--
			mu.Unlock()
		})
	})
	if peak > 2 {
		t.Errorf("observed %d concurrent slots, bound 2", peak)
	}
}
