package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runcache"
)

// withTestDiskCache installs a persistent store on a fresh directory with a
// fixed test fingerprint (test binaries carry no VCS stamp, so the real
// fingerprint would not isolate tests) and returns it; cleanup removes the
// store and drops the in-memory caches the test populated.
func withTestDiskCache(t *testing.T) (*runcache.Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := runcache.Open(dir, runcache.Options{Fingerprint: "exp-test"})
	if err != nil {
		t.Fatal(err)
	}
	SetDiskCache(s)
	t.Cleanup(func() {
		SetDiskCache(nil)
		ResetCaches()
	})
	return s, dir
}

// corruptAllEntries flips one payload byte in every cache entry under dir.
func corruptAllEntries(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		p := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)-1] ^= 0xff
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no cache entries to corrupt")
	}
}

// render produces the exact experiment bytes cmd/figures prints.
func render(t *testing.T, ids []string, o Options) string {
	t.Helper()
	var sb strings.Builder
	for _, id := range ids {
		tabs, err := Run(id, o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, tab := range tabs {
			tab.Fprint(&sb)
		}
	}
	return sb.String()
}

// TestDiskCacheWarmRerunIdentity: a rerun served entirely from the
// persistent store must render byte-identically to the cold run that
// populated it, across every payload shape the harness stores — sweep
// points (fig10), characterization histograms (fig3), the spatial and
// temporal workload grids (fig8, fig9) and the router-power check.
func TestDiskCacheWarmRerunIdentity(t *testing.T) {
	tinyBudget = true
	ResetCaches()
	defer func() {
		tinyBudget = false
		ResetCaches()
	}()
	s, _ := withTestDiskCache(t)

	ids := []string{"fig3", "fig8", "fig9", "fig10", "abl-routerpower"}
	o := Options{Quick: true}
	cold := render(t, ids, o)
	afterCold := s.Stats()
	if afterCold.Puts == 0 {
		t.Fatalf("cold run stored nothing: %+v", afterCold)
	}

	ResetCaches() // drop the memory layer so the rerun must go to disk
	warm := render(t, ids, o)
	afterWarm := s.Stats()

	if warm != cold {
		t.Errorf("warm rerun drifted from cold run\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	if d := afterWarm.Misses - afterCold.Misses; d != 0 {
		t.Errorf("warm rerun missed %d times; want 0", d)
	}
	if afterWarm.Hits == afterCold.Hits {
		t.Errorf("warm rerun never hit the disk store: %+v", afterWarm)
	}
	if d := afterWarm.Puts - afterCold.Puts; d != 0 {
		t.Errorf("warm rerun wrote %d new entries; want 0", d)
	}
}

// TestDiskCacheIncremental: changing one experiment's parameters must
// recompute exactly that experiment's points — everything untouched is
// served from the store. The parameter edit is modeled by a seed change,
// which reaches every cache key of the edited run.
func TestDiskCacheIncremental(t *testing.T) {
	tinyBudget = true
	ResetCaches()
	defer func() {
		tinyBudget = false
		ResetCaches()
	}()
	s, _ := withTestDiskCache(t)

	o := Options{Quick: true}
	render(t, []string{"fig10"}, o)
	base := s.Stats()

	// Unchanged rerun: all hits, no new work.
	ResetCaches()
	render(t, []string{"fig10"}, o)
	after := s.Stats()
	if d := after.Misses - base.Misses; d != 0 {
		t.Fatalf("unchanged rerun missed %d times; want 0", d)
	}

	// An "edited" run (new seed family): its points miss and store.
	ResetCaches()
	render(t, []string{"fig10"}, Options{Quick: true, Seed: 2})
	edited := s.Stats()
	if edited.Misses == after.Misses {
		t.Fatalf("edited run recomputed nothing: %+v", edited)
	}
	if edited.Puts == after.Puts {
		t.Fatalf("edited run stored nothing: %+v", edited)
	}

	// The original, untouched run still replays without recomputation.
	ResetCaches()
	render(t, []string{"fig10"}, o)
	final := s.Stats()
	if d := final.Misses - edited.Misses; d != 0 {
		t.Errorf("untouched run recomputed %d points after an unrelated edit; want 0", d)
	}
}

// TestOpenDiskCacheRequiresVCSStamp: test binaries carry no VCS revision,
// exactly like `go run` binaries — the automatic fingerprint would be
// stable across code changes, so OpenDiskCache must refuse and install
// nothing rather than let stale results replay silently.
func TestOpenDiskCacheRequiresVCSStamp(t *testing.T) {
	prev := DiskCache()
	defer SetDiskCache(prev)
	SetDiskCache(nil)

	if err := OpenDiskCache(t.TempDir(), 0); err == nil {
		t.Fatal("OpenDiskCache succeeded in an unstamped binary; want a refusal")
	}
	if DiskCache() != nil {
		t.Error("a store was installed despite the refusal")
	}
}

// TestDiskCacheQuarantineRecovers: a corrupted store entry must be dropped
// and recomputed, and the recomputed render must match the original.
func TestDiskCacheQuarantineRecovers(t *testing.T) {
	tinyBudget = true
	ResetCaches()
	defer func() {
		tinyBudget = false
		ResetCaches()
	}()
	s, dir := withTestDiskCache(t)

	o := Options{Quick: true}
	cold := render(t, []string{"fig10"}, o)
	corruptAllEntries(t, dir)

	ResetCaches()
	warm := render(t, []string{"fig10"}, o)
	if warm != cold {
		t.Errorf("post-corruption recompute drifted\n--- cold ---\n%s--- recomputed ---\n%s", cold, warm)
	}
	if s.Stats().CorruptDropped == 0 {
		t.Errorf("corrupted entries were not quarantined: %+v", s.Stats())
	}
}
