package exp

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runcache"
	"repro/internal/traffic"
	"repro/internal/traffic/tracestore"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/exp -run TestGoldenFigures -update
var update = flag.Bool("update", false, "rewrite testdata/golden from current output")

// goldenIDs are the pinned artifacts: the two static tables plus the two
// headline simulation figures (DVS latency and threshold profiles).
var goldenIDs = []string{"tab1", "tab2", "fig10", "fig13"}

// staticGolden need no simulation; they are compared even under -short.
var staticGolden = map[string]bool{"tab1": true, "tab2": true}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+"_quick.txt")
}

// renderQuick produces the exact bytes cmd/figures prints for one
// experiment in quick mode.
func renderQuick(t *testing.T, id string) string {
	t.Helper()
	tabs, err := Run(id, Options{Quick: true})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var sb strings.Builder
	for _, tab := range tabs {
		tab.Fprint(&sb)
	}
	return sb.String()
}

func compareGolden(t *testing.T, id string) {
	t.Helper()
	want, err := os.ReadFile(goldenPath(id))
	if err != nil {
		t.Fatalf("%s: %v (regenerate with: go test ./internal/exp -run TestGoldenFigures -update)", id, err)
	}
	got := renderQuick(t, id)
	if got != string(want) {
		t.Errorf("%s: quick-mode output drifted from %s\n--- got ---\n%s--- want ---\n%s"+
			"If the change is intentional, regenerate with -update.",
			id, goldenPath(id), got, want)
	}
}

// TestGoldenFigures pins quick-mode figure output byte-for-byte against
// testdata/golden. Any behavioral drift — numeric, formatting, ordering —
// fails loudly with a diff; deliberate changes are recorded by rerunning
// with -update. The simulation-backed figures are additionally reproduced
// from cold caches at parallelism 1, 2 and 8, so the pin also proves
// determinism across worker counts.
func TestGoldenFigures(t *testing.T) {
	if *update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
		for _, id := range goldenIDs {
			out := renderQuick(t, id)
			if err := os.WriteFile(goldenPath(id), []byte(out), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", goldenPath(id), len(out))
		}
		return
	}

	for _, id := range goldenIDs {
		if staticGolden[id] {
			compareGolden(t, id)
		}
	}
	if testing.Short() {
		t.Skip("simulation-backed golden comparison skipped in -short")
	}
	for _, id := range goldenIDs {
		if !staticGolden[id] {
			compareGolden(t, id)
		}
	}

	// Cross-parallelism reproduction: the same bytes must come out of cold
	// caches at several worker counts. fig10 is the cheapest simulation
	// figure (12 points); TestParallelDeterminism covers the wider sweep at
	// tiny budgets.
	for _, j := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("j%d", j), func(t *testing.T) {
			SetParallelism(j)
			ResetCaches()
			compareGolden(t, "fig10")
		})
	}
	SetParallelism(0)
}

// TestGoldenTiled: the golden pins must hold at every tile count — the
// tile-parallel core may change speed, never a byte. fig10 and fig13 are
// rendered from cold caches at tile counts 1, 2 and 4 and compared against
// the same pins the single-scheduler runs satisfy. ResetCaches between
// counts matters: Tiles is deliberately absent from cache keys, so without
// it later counts would replay the first count's results and prove nothing.
func TestGoldenTiled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed golden comparison skipped in -short")
	}
	defer ResetCaches()
	for _, tiles := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("tiles%d", tiles), func(t *testing.T) {
			ResetCaches()
			for _, id := range []string{"fig10", "fig13"} {
				want, err := os.ReadFile(goldenPath(id))
				if err != nil {
					t.Fatalf("%s: %v (regenerate with: go test ./internal/exp -run TestGoldenFigures -update)", id, err)
				}
				tabs, err := Run(id, Options{Quick: true, Tiles: tiles})
				if err != nil {
					t.Fatal(err)
				}
				var sb strings.Builder
				for _, tab := range tabs {
					tab.Fprint(&sb)
				}
				if sb.String() != string(want) {
					t.Errorf("%s: Tiles=%d output drifted from the golden pin\n--- got ---\n%s--- want ---\n%s",
						id, tiles, sb.String(), want)
				}
			}
		})
	}
}

// TestGoldenWithDiskCache: the golden pins must hold with the persistent
// run cache active, both when it populates (cold) and when it replays
// (warm) — the cache may change speed, never a byte of output. Quick
// budget (the pinned one), so it stays out of -short like the other
// simulation-backed comparisons.
func TestGoldenWithDiskCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed golden comparison skipped in -short")
	}
	s, err := runcache.Open(t.TempDir(), runcache.Options{Fingerprint: "exp-golden-test"})
	if err != nil {
		t.Fatal(err)
	}
	SetDiskCache(s)
	defer func() {
		SetDiskCache(nil)
		ResetCaches()
	}()

	ResetCaches()
	compareGolden(t, "fig10") // cold: simulate and store
	afterCold := s.Stats()
	if afterCold.Puts == 0 {
		t.Fatalf("cold golden run stored nothing: %+v", afterCold)
	}

	ResetCaches()
	compareGolden(t, "fig10") // warm: replay from disk
	afterWarm := s.Stats()
	if d := afterWarm.Misses - afterCold.Misses; d != 0 {
		t.Errorf("warm golden rerun missed %d times; want 0", d)
	}
	if afterWarm.Hits == afterCold.Hits {
		t.Errorf("warm golden rerun never hit the disk store: %+v", afterWarm)
	}
}

// TestGoldenWithTraceStore: the golden pins must hold with the persistent
// trace store active — traces captured and saved cold, reloaded and
// replayed from their compressed encoding warm. The store may change where
// arrivals come from, never a byte of output; the warm rerun must reload
// every trace (zero trace misses, zero re-captures) and still match the
// pin, which is the on-disk half of the capture-vs-decode identity
// contract.
func TestGoldenWithTraceStore(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed golden comparison skipped in -short")
	}
	rc, err := runcache.Open(t.TempDir(), runcache.Options{Fingerprint: "exp-golden-trace-test"})
	if err != nil {
		t.Fatal(err)
	}
	traffic.SetTraceStore(tracestore.NewStore(rc))
	defer func() {
		traffic.SetTraceStore(nil)
		ResetCaches()
	}()

	ResetCaches()
	compareGolden(t, "fig10") // cold: capture traces, persist them
	afterCold := rc.Stats()
	if afterCold.Puts == 0 {
		t.Fatalf("cold run persisted no traces: %+v", afterCold)
	}

	ResetCaches()
	compareGolden(t, "fig10") // warm: reload every trace from disk
	afterWarm := rc.Stats()
	if d := afterWarm.Misses - afterCold.Misses; d != 0 {
		t.Errorf("warm rerun missed the trace store %d times; want 0", d)
	}
	if d := afterWarm.Puts - afterCold.Puts; d != 0 {
		t.Errorf("warm rerun re-captured and re-saved %d traces; want 0", d)
	}
	if afterWarm.Hits == afterCold.Hits {
		t.Errorf("warm rerun never hit the trace store: %+v", afterWarm)
	}
}

// TestGoldenWithCheckpoint: the golden pins must hold with warmup
// checkpointing active end to end — warmed snapshots captured, persisted
// under "ckpt|" keys and forked per variant — cold and warm, at worker
// counts 1, 2 and 8. The warm rerun must be a pure replay (zero disk
// misses): checkpointing may change how much work a sweep does, never a
// byte of its output or a property of its cache.
func TestGoldenWithCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed golden comparison skipped in -short")
	}
	defer func() {
		SetDiskCache(nil)
		SetParallelism(0)
		ResetCaches()
	}()

	for _, j := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("j%d", j), func(t *testing.T) {
			s, err := runcache.Open(t.TempDir(), runcache.Options{Fingerprint: "exp-golden-checkpoint-test"})
			if err != nil {
				t.Fatal(err)
			}
			SetDiskCache(s)
			SetParallelism(j)

			ResetCaches()
			compareGolden(t, "fig10") // cold: warm up once per rate, fork, store
			compareGolden(t, "tab1")
			afterCold := s.Stats()
			if afterCold.Puts == 0 {
				t.Fatalf("cold checkpointed run stored nothing: %+v", afterCold)
			}

			ResetCaches()
			compareGolden(t, "fig10") // warm: replay from disk
			compareGolden(t, "tab1")
			afterWarm := s.Stats()
			if d := afterWarm.Misses - afterCold.Misses; d != 0 {
				t.Errorf("warm checkpointed rerun missed %d times; want 0", d)
			}
			if afterWarm.Hits == afterCold.Hits {
				t.Errorf("warm checkpointed rerun never hit the disk store: %+v", afterWarm)
			}
		})
	}
}

// TestGoldenNoCheckpoint: disabling the checkpoint path must not change a
// byte either — the same pin holds when every point pays for its own
// warmup. Together with the default-path pins this is the on/off
// equivalence guarantee at golden granularity.
func TestGoldenNoCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed golden comparison skipped in -short")
	}
	ResetCaches() // NoCheckpoint shares cache keys; force real straight runs
	defer ResetCaches()
	want, err := os.ReadFile(goldenPath("fig10"))
	if err != nil {
		t.Fatalf("fig10: %v (regenerate with: go test ./internal/exp -run TestGoldenFigures -update)", err)
	}
	tabs, err := Run("fig10", Options{Quick: true, NoCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tab := range tabs {
		tab.Fprint(&sb)
	}
	if sb.String() != string(want) {
		t.Errorf("fig10: -no-checkpoint output drifted from the golden pin\n--- got ---\n%s--- want ---\n%s",
			sb.String(), want)
	}
}

// TestAuditDoesNotPerturbResults: enabling the runtime invariant audit
// must not change a single simulated number — it reads, never steers.
func TestAuditDoesNotPerturbResults(t *testing.T) {
	tinyBudget = true
	ResetCaches()
	defer func() {
		tinyBudget = false
		ResetCaches()
	}()
	plain, err := Run("fig10", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	audited, err := Run("fig10", Options{Quick: true, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	for _, tab := range plain {
		tab.Fprint(&a)
	}
	for _, tab := range audited {
		tab.Fprint(&b)
	}
	if a.String() != b.String() {
		t.Errorf("audit changed results:\n--- plain ---\n%s--- audited ---\n%s", a.String(), b.String())
	}
}
