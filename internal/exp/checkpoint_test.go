package exp

import (
	"strings"
	"testing"
)

// renderTables flattens an experiment's tables to the exact bytes
// cmd/figures would print.
func renderTables(t *testing.T, id string, o Options) string {
	t.Helper()
	tabs, err := Run(id, o)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var sb strings.Builder
	for _, tab := range tabs {
		tab.Fprint(&sb)
	}
	return sb.String()
}

// TestCheckpointReducesWarmupWork is the acceptance meter for the
// checkpoint path: a threshold sweep (fig13: 3 rates x 6 Table 2
// settings) shares one warm key per rate, so the checkpointed sweep must
// warm up exactly once per (seed, rate) — 3 warmups instead of 18, a 6x
// reduction in warmup cycles, far past the required 25% — while
// producing byte-identical tables.
func TestCheckpointReducesWarmupWork(t *testing.T) {
	tinyBudget = true
	defer func() {
		tinyBudget = false
		ResetCaches()
	}()

	sweep := func(o Options) (string, int64) {
		ResetCaches()
		before := WarmupCyclesExecuted()
		out := renderTables(t, "fig13", o)
		return out, WarmupCyclesExecuted() - before
	}
	straightOut, straight := sweep(Options{Quick: true, NoCheckpoint: true})
	forkedOut, forked := sweep(Options{Quick: true})

	if straightOut != forkedOut {
		t.Errorf("checkpointing changed fig13 output:\n--- straight ---\n%s--- forked ---\n%s",
			straightOut, forkedOut)
	}
	if straight == 0 {
		t.Fatal("straight sweep executed no warmup cycles")
	}
	if forked > straight*3/4 {
		t.Errorf("checkpointed sweep warmed up %d cycles vs %d straight; want at least a 25%% reduction",
			forked, straight)
	}
	// Exactly once per (seed, rate): the 6 settings at each rate must share
	// one warmup, so a capture refusal or key drift that silently re-warms
	// fails here, not just the looser threshold above.
	if want := straight / 6; forked != want {
		t.Errorf("checkpointed sweep warmed up %d cycles; want exactly %d (one warmup per rate)",
			forked, want)
	}
}
