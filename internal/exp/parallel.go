// Parallel experiment execution: a worker-pool gate bounding concurrent
// simulations, a goroutine fan-out helper (Sweep), concurrent experiment
// execution (RunAll), and singleflight-backed result caches.
//
// Every simulation point is independent — each run builds its own network
// and its own seeded traffic model, so results do not depend on execution
// order. Parallel output is therefore bit-for-bit identical to sequential
// output: the runners fan the points out, wait for all of them, and
// assemble tables in the same fixed order as before. The cache layer
// deduplicates identical points across concurrent callers (singleflight):
// the first caller simulates, everyone else blocks on its completion.
package exp

import (
	"runtime"
	"sync"

	"repro/internal/network"
	"repro/internal/traffic"
)

// pool gates the number of simulations actually executing at once. Fan-out
// layers (Sweep, RunAll) spawn goroutines freely; only the simulation
// bodies hold a slot, so nested fan-outs cannot deadlock and real
// concurrency is bounded by Parallelism() everywhere.
var pool = struct {
	mu    sync.Mutex
	cond  *sync.Cond
	limit int // 0 means GOMAXPROCS
	busy  int
}{}

func init() { pool.cond = sync.NewCond(&pool.mu) }

// SetParallelism bounds the number of concurrently executing simulations.
// j <= 0 restores the default, GOMAXPROCS. It is safe to call while runs
// are in flight; the new bound applies as slots free up.
func SetParallelism(j int) {
	pool.mu.Lock()
	if j < 0 {
		j = 0
	}
	pool.limit = j
	pool.mu.Unlock()
	pool.cond.Broadcast()
}

// Parallelism reports the current simulation concurrency bound.
func Parallelism() int {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	if pool.limit == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return pool.limit
}

// withSimSlot runs fn while holding one worker slot. Every simulation body
// in this package — cached or direct — funnels through it.
func withSimSlot(fn func()) {
	if ps := prefetchRec.Load(); ps != nil {
		// A prefetch walk must never simulate; count the leak so the walk
		// can fail loudly (and still run fn — a wrong result is worse than
		// a slow one if a caller ignores the error).
		ps.sims.Add(1)
	}
	pool.mu.Lock()
	for {
		limit := pool.limit
		if limit == 0 {
			limit = runtime.GOMAXPROCS(0)
		}
		if pool.busy < limit {
			break
		}
		pool.cond.Wait()
	}
	pool.busy++
	pool.mu.Unlock()
	defer func() {
		pool.mu.Lock()
		pool.busy--
		pool.mu.Unlock()
		pool.cond.Broadcast()
	}()
	fn()
}

// Sweep fans fn over n independent indices, one goroutine each, and blocks
// until all complete. Concurrency of the underlying simulations is bounded
// by the worker pool, not by n, so callers may sweep whole cross-products.
// fn must treat distinct indices as independent (no shared mutable state
// without synchronization); results keyed by index keep output order — and
// therefore rendered tables — identical to a sequential loop.
func Sweep(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// RunAll executes several experiments concurrently and returns each one's
// tables in input order. Unknown ids fail up front, before any simulation
// starts. Experiments share the process-wide run cache, so points common
// to several artifacts (fig10 and headline, say) still simulate once.
func RunAll(ids []string, o Options) ([][]Table, error) {
	runners := make([]Runner, len(ids))
	for i, id := range ids {
		r, ok := registry[id]
		if !ok {
			return nil, unknownExperiment(id)
		}
		runners[i] = r
	}
	out := make([][]Table, len(ids))
	Sweep(len(ids), func(i int) { out[i] = runners[i](o) })
	return out, nil
}

// flight is one singleflight cache slot: done closes when val is ready.
type flight[V any] struct {
	done chan struct{}
	val  V
}

// sfCache is a concurrency-safe, singleflight, size-capped memo table.
// Concurrent requests for one key run the compute function once; the
// others block until it finishes. Completed entries beyond the cap are
// evicted oldest-first (in-flight entries are never evicted).
type sfCache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*flight[V]
	order   []K // insertion order, for eviction
	cap     int
}

func newSFCache[K comparable, V any](capacity int) *sfCache[K, V] {
	return &sfCache[K, V]{entries: make(map[K]*flight[V]), cap: capacity}
}

// do returns the cached value for key, computing it via fn if absent. fn
// runs outside the cache lock; duplicate concurrent keys wait on the first.
func (c *sfCache[K, V]) do(key K, fn func() V) V {
	c.mu.Lock()
	if f, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.val
	}
	f := &flight[V]{done: make(chan struct{})}
	c.entries[key] = f
	c.order = append(c.order, key)
	c.evictLocked()
	c.mu.Unlock()

	f.val = fn()
	close(f.done)
	return f.val
}

// evictLocked drops the oldest completed entries until the cap holds.
func (c *sfCache[K, V]) evictLocked() {
	if c.cap <= 0 || len(c.entries) <= c.cap {
		return
	}
	kept := c.order[:0]
	for i, key := range c.order {
		f, ok := c.entries[key]
		if !ok {
			continue // already evicted
		}
		evictable := len(c.entries) > c.cap
		if evictable {
			select {
			case <-f.done: // completed: safe to drop
			default:
				evictable = false // in flight: keep
			}
		}
		if evictable {
			delete(c.entries, key)
		} else {
			kept = append(kept, key)
		}
		if len(c.entries) <= c.cap {
			kept = append(kept, c.order[i+1:]...)
			break
		}
	}
	c.order = kept
}

// reset drops every cached entry. Only for tests and benchmarks that need
// to re-simulate points deliberately; racing it against in-flight runs is
// safe (waiters keep their flight pointers) but wastes work.
func (c *sfCache[K, V]) reset() {
	c.mu.Lock()
	c.entries = make(map[K]*flight[V])
	c.order = nil
	c.mu.Unlock()
}

// runCacheCap bounds the memoized simulation results. A full `-exp all`
// regeneration touches ~120 distinct points; the cap leaves generous
// headroom while bounding long-lived processes that sweep many seeds.
const runCacheCap = 1024

// runCache memoizes simulation runs so experiments that share operating
// points — fig10 and headline, for example — simulate once per process.
var runCache = newSFCache[string, network.Results](runCacheCap)

// measureCache memoizes the Section 3.1 characterization runs so fig3,
// fig4 and fig5 share one simulation set per options value.
var measureCache = newSFCache[Options, *measureSet](16)

// ResetCaches drops all memoized simulation results, forcing subsequent
// runs to re-simulate. Benchmarks use it to measure real work per
// iteration; the determinism tests use it to exercise the parallel path.
func ResetCaches() {
	runCache.reset()
	measureCache.reset()
	warmSnapCache.reset()
	traffic.ResetTraceCache()
}

// sweepSpecs simulates every spec across the worker pool and returns
// results in spec order.
func sweepSpecs(o Options, specs []spec) []network.Results {
	out := make([]network.Results, len(specs))
	Sweep(len(specs), func(i int) { out[i] = run(specs[i], o) })
	return out
}
