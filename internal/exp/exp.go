// Package exp is the experiment harness: one runner per table and figure of
// the paper's evaluation (Section 4), each regenerating the same rows or
// series the paper reports, on scaled cycle budgets.
//
// Experiments are selected by id ("fig10", "tab1", ...); List enumerates
// them. Each returns text tables that cmd/figures prints and that the
// benchmark harness consumes.
package exp

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Options scale an experiment run.
type Options struct {
	// Quick shrinks cycle budgets for laptop-speed smoke runs; Full raises
	// them to the paper's 10M-cycle setting. Default is a minutes-scale
	// middle ground.
	Quick, Full bool
	// Seed selects the deterministic random stream family.
	Seed uint64
	// Audit runs every simulation under the runtime invariant checker
	// (internal/audit), which panics on the first violation. Results are
	// identical with or without it; only speed differs.
	Audit bool
	// NoSkip disables the activity-driven simulation core (idle-router
	// skipping and quiescent fast-forward). Results are identical with or
	// without it; only speed differs.
	NoSkip bool
	// NoCheckpoint disables the warmup checkpoint/fork fast path: every
	// simulation point then executes its own warmup from cycle 0 instead of
	// forking a shared warmed-up snapshot. Results are identical either way
	// (the fork-equivalence conformance suite in internal/checkpoint pins
	// byte-identity); only speed differs. It is deliberately absent from
	// cache keys so both modes share cached results.
	NoCheckpoint bool
	// Tiles partitions each simulation into that many tile-parallel blocks
	// (network.Config.Tiles). Results are byte-identical at every tile
	// count (the tile-equivalence suite pins this); only speed differs, so
	// like NoCheckpoint it is deliberately absent from cache keys. Points
	// whose workload exceeds the trace budget fall back to untiled (the
	// tiled engine replays recorded traces only), and tiled points run the
	// straight warmup path (a tiled network refuses checkpoint capture).
	Tiles int
}

// tinyBudget, when set, shrinks cycle budgets far below -quick. It exists
// only for harness tests and benchmarks (determinism across parallelism
// levels, cache cold/warm timing) that need many full sweeps without
// caring about statistical quality. The resolved budget is folded into
// every cache key, so tiny runs can never collide with real ones; callers
// still ResetCaches around toggling to drop the memory the tiny sweep
// occupied.
var tinyBudget bool

// SetTinyBudget toggles the tiny test/benchmark budget from outside the
// package (internal/bench uses it for the cold-vs-warm cache benchmarks);
// tests inside this package set tinyBudget directly.
func SetTinyBudget(v bool) { tinyBudget = v }

// budget reports (warmup, measure) cycles for the options.
func (o Options) budget() (warm, meas int64) {
	if tinyBudget {
		return 3_000, 3_000
	}
	switch {
	case o.Full:
		return 1_000_000, 10_000_000
	case o.Quick:
		return 40_000, 40_000
	default:
		return 80_000, 150_000
	}
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Table is one printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry the paper-vs-measured commentary printed under the table.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner regenerates one experiment.
type Runner func(o Options) []Table

// registry maps experiment ids to runners; populated by init functions in
// the per-figure files.
var registry = map[string]Runner{}

// describe maps ids to one-line descriptions.
var describe = map[string]string{}

func register(id, desc string, r Runner) {
	registry[id] = r
	describe[id] = desc
}

// List reports registered experiment ids in sorted order with descriptions.
func List() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = fmt.Sprintf("%-10s %s", id, describe[id])
	}
	return out
}

// Run executes the experiment with the given id.
func Run(id string, o Options) ([]Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, unknownExperiment(id)
	}
	return r(o), nil
}

func unknownExperiment(id string) error {
	return fmt.Errorf("exp: unknown experiment %q (use one of: %s)",
		id, strings.Join(ids(), ", "))
}

func ids() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// spec describes one simulation run of the paper's platform. All fields
// participate in the run cache key, so experiments sharing an operating
// point simulate once per process.
type spec struct {
	policy   network.PolicyKind
	rate     float64
	tasks    int
	taskDur  sim.Duration
	voltTran sim.Duration
	freqTran int // link cycles
	routing  string
	seed     uint64

	// Optional policy-parameter overrides (zero means Table 1 defaults).
	tlLow, tlHigh float64
	dvsH, dvsW    int

	// Optional platform overrides (zero means the paper's 8x8 mesh with
	// ten-level links).
	levels int
	k, n   int
	torus  bool
}

func defaultSpec(rate float64, policy network.PolicyKind) spec {
	return spec{
		policy:   policy,
		rate:     rate,
		tasks:    100,
		taskDur:  sim.Millisecond,
		voltTran: 10 * sim.Microsecond,
		freqTran: 100,
		routing:  "dor",
	}
}

// noTraceMemo, when set, disables the shared-trace path so every run
// regenerates its workload live. It exists only for the equivalence test
// proving memoized and live runs are byte-identical; callers must
// ResetCaches around toggling it, since cache keys do not include it.
var noTraceMemo bool

// build constructs the network and traffic model for a spec, plus the
// scheduler horizon for the caller's Launch. horizonCycles is the number
// of router cycles the caller will run (plus slack); the model's event
// chains are armed against exactly this horizon, so it participates in
// trace identity. When the two-level workload at this operating point fits
// the trace budget, the returned model is a memoized arrival trace shared
// read-only across every sweep at the same (seed, rate, horizon) — policy
// ablations then pay for workload generation once instead of per variant.
// Oversized points fall back to the live model.
func (s spec) build(o Options, horizonCycles int64) (*network.Network, traffic.Model, sim.Time) {
	cfg := s.config(o)
	p := s.twoLevelParams(o)
	horizon := sim.Time(horizonCycles) * cfg.RouterPeriod
	// The workload decision comes before network construction: a tiled
	// network replays recorded traces only, so a point that must run its
	// model live (memoization disabled, or trace over budget) degrades to
	// the untiled engine — same bytes, one scheduler.
	var tr *traffic.Trace
	if !noTraceMemo {
		var reason string
		tr, reason = traffic.SharedTwoLevelTrace(p, topology.New(cfg.K, cfg.N, cfg.Torus), horizon)
		if tr == nil {
			noteTraceFallback(s, reason)
		}
	}
	if tr == nil {
		cfg.Tiles = 0
	}
	n, err := network.New(cfg)
	if err != nil {
		panic(err)
	}
	if tr != nil {
		return n, tr, horizon
	}
	m, err := traffic.NewTwoLevel(p, n.Topo)
	if err != nil {
		panic(err)
	}
	return n, m, horizon
}

// traceFallbackNotes dedupes the live-model fallback notes: a sweep asks
// for the same oversized workload once per policy variant, and the user
// needs the fact once per point, not per variant.
var traceFallbackNotes sync.Map

// noteTraceFallback emits one stderr note when a point must run its
// traffic model live — losing trace replay and, with it, tile eligibility
// (tiled networks replay recorded traces only) — naming the point and the
// reason, mirroring the tiled-degrade notes in the cmds. Silent fallback
// hid exactly the -full points users most expect to parallelize.
func noteTraceFallback(s spec, reason string) {
	key := fmt.Sprintf("%v|%g|%d|%s", s.policy, s.rate, s.seed, reason)
	if _, dup := traceFallbackNotes.LoadOrStore(key, true); dup {
		return
	}
	fmt.Fprintf(os.Stderr, "exp: point policy=%v rate=%g: live workload (trace and tile eligibility lost): %s\n",
		s.policy, s.rate, reason)
}
func (s spec) config(o Options) network.Config {
	cfg := network.NewConfig()
	cfg.Policy = s.policy
	cfg.Routing = s.routing
	cfg.Link.VoltTransition = s.voltTran
	cfg.Link.FreqTransitionCycles = s.freqTran
	if s.tlLow != 0 || s.tlHigh != 0 {
		cfg.DVS.TLLow, cfg.DVS.TLHigh = s.tlLow, s.tlHigh
	}
	if s.dvsH != 0 {
		cfg.DVS.H = s.dvsH
	}
	if s.dvsW != 0 {
		cfg.DVS.W = s.dvsW
	}
	if s.levels != 0 {
		cfg.Link.Levels = s.levels
	}
	if s.k != 0 {
		cfg.K = s.k
	}
	if s.n != 0 {
		cfg.N = s.n
		cfg.Router.Ports = 1 + 2*s.n
	}
	cfg.Torus = s.torus
	cfg.Audit.Enabled = o.Audit
	cfg.NoSkip = o.NoSkip
	if o.Tiles > 1 {
		cfg.Tiles = o.Tiles
	}
	return cfg
}

// twoLevelParams assembles the workload parameters for a spec.
func (s spec) twoLevelParams(o Options) traffic.TwoLevelParams {
	p := traffic.NewTwoLevelParams(s.rate)
	p.AvgTasks = s.tasks
	p.AvgTaskDuration = s.taskDur
	p.Seed = s.seed
	if p.Seed == 0 {
		p.Seed = o.seed()
	}
	return p
}

// cacheKey is the canonical, versioned serialization of one simulation
// point: every spec field plus every Options field that reaches the
// simulation, with the resolved cycle budget folded in (so Quick, Full and
// the test-only tiny budget cannot collide) and seeds normalized. It is
// both the in-memory singleflight key and — fingerprint-prefixed by the
// store — the persistent cache key, so any parameter edit re-simulates
// exactly the points it touches and nothing else. Audit and NoSkip are
// proven not to change results, but they stay in the key to keep it a
// plain serialization of the run spec rather than an equivalence claim.
// Tiles is deliberately absent (like NoCheckpoint): tile counts are an
// execution strategy, not part of the run spec, and keying them would
// split the cache across identical results.
func (s spec) cacheKey(o Options) string {
	warm, meas := o.budget()
	return fmt.Sprintf("v%d|warm=%d|meas=%d|audit=%t|noskip=%t|seed=%d|"+
		"policy=%d|rate=%g|tasks=%d|taskdur=%d|volttran=%d|freqtran=%d|routing=%s|specseed=%d|"+
		"tllow=%g|tlhigh=%g|dvsh=%d|dvsw=%d|levels=%d|k=%d|n=%d|torus=%t",
		SchemaVersion, warm, meas, o.Audit, o.NoSkip, o.seed(),
		s.policy, s.rate, s.tasks, int64(s.taskDur), int64(s.voltTran), s.freqTran, s.routing, s.seed,
		s.tlLow, s.tlHigh, s.dvsH, s.dvsW, s.levels, s.k, s.n, s.torus)
}

// run executes warmup + measurement and returns the results. Lookups go
// memory -> disk -> compute: runCache (see parallel.go) deduplicates
// concurrent callers inside the process, and its compute function consults
// the persistent store (see diskcache.go) before simulating, so the
// singleflight guarantee covers both layers — one disk read or one
// simulation per point, no matter how many goroutines ask.
func run(s spec, o Options) network.Results {
	prefetchRecordTrace(s, o) // no-op outside a prefetch walk
	key := "point|" + s.cacheKey(o)
	return runCache.do(key, func() network.Results {
		return cached(key, func() (r network.Results) {
			withSimSlot(func() {
				r = simulate(s, o)
			})
			return r
		})
	})
}

// Point runs the paper's platform at one two-level-workload operating
// point: programmatic access for benchmarks and downstream tooling.
func Point(rate float64, policy network.PolicyKind, o Options) network.Results {
	return run(defaultSpec(rate, policy), o)
}

// f formats a float compactly.
func f(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// FprintCSV renders the table as RFC-4180-ish CSV (title and notes as
// comment lines), for piping into plotting tools.
func (t *Table) FprintCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	write := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	write(t.Header)
	for _, row := range t.Rows {
		write(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}
