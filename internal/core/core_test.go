package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.W != 3 || p.H != 200 || p.BCongested != 0.5 {
		t.Errorf("W/H/Bc = %d/%d/%g, want 3/200/0.5", p.W, p.H, p.BCongested)
	}
	if p.TLLow != 0.3 || p.TLHigh != 0.4 || p.THLow != 0.6 || p.THHigh != 0.7 {
		t.Errorf("bands = %g/%g %g/%g, want 0.3/0.4 0.6/0.7",
			p.TLLow, p.TLHigh, p.THLow, p.THHigh)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Table 1 params invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.W = 0 },
		func(p *Params) { p.H = 0 },
		func(p *Params) { p.BCongested = 1.5 },
		func(p *Params) { p.TLLow = p.TLHigh },
		func(p *Params) { p.THHigh = p.THLow - 0.1 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEWMAConvergence(t *testing.T) {
	h, err := NewHistoryDVS(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Feeding a constant utilization converges the prediction to it.
	for i := 0; i < 50; i++ {
		h.Decide(Measures{LinkUtil: 0.35, BufUtil: 0.2})
	}
	lu, bu := h.Predicted()
	if math.Abs(lu-0.35) > 1e-6 || math.Abs(bu-0.2) > 1e-6 {
		t.Errorf("predictions = %g, %g; want 0.35, 0.2", lu, bu)
	}
}

func TestEWMAFiltersTransients(t *testing.T) {
	h, _ := NewHistoryDVS(DefaultParams())
	// Settle in the hold band.
	for i := 0; i < 50; i++ {
		h.Decide(Measures{LinkUtil: 0.35, BufUtil: 0.1})
	}
	// One single idle window must not immediately prescribe Lower:
	// prediction only falls to (3*0 + 0.35)/4 = 0.0875 < 0.3 — with W=3 a
	// single zero sample does cross the band. The filtering property the
	// paper wants is over *small* fluctuations:
	if d := h.Decide(Measures{LinkUtil: 0.32, BufUtil: 0.1}); d != Hold {
		t.Errorf("small dip prescribed %v, want hold", d)
	}
	if d := h.Decide(Measures{LinkUtil: 0.38, BufUtil: 0.1}); d != Hold {
		t.Errorf("small rise prescribed %v, want hold", d)
	}
}

func TestDecisionBands(t *testing.T) {
	tests := []struct {
		lu, bu float64
		want   Decision
	}{
		// Light load band (BU < 0.5): thresholds 0.3 / 0.4.
		{0.05, 0.1, Lower},
		{0.35, 0.1, Hold},
		{0.90, 0.1, Raise},
		// Congested band (BU >= 0.5): thresholds 0.6 / 0.7.
		{0.45, 0.9, Lower}, // would Raise.. would Hold in light band
		{0.65, 0.9, Hold},
		{0.95, 0.9, Raise},
	}
	for _, tt := range tests {
		h, _ := NewHistoryDVS(DefaultParams())
		// Saturate history at the test point so the prediction equals it.
		var got Decision
		for i := 0; i < 60; i++ {
			got = h.Decide(Measures{LinkUtil: tt.lu, BufUtil: tt.bu})
		}
		if got != tt.want {
			t.Errorf("Decide(LU=%g, BU=%g) = %v, want %v", tt.lu, tt.bu, got, tt.want)
		}
	}
}

func TestCongestionLitmusSwitchesBands(t *testing.T) {
	// LU = 0.45 sits above the light band (raise... no: 0.45 > TLHigh=0.4
	// -> Raise) but below the congested band low threshold (0.45 < 0.6 ->
	// Lower). The litmus must flip the prescription.
	light, _ := NewHistoryDVS(DefaultParams())
	congested, _ := NewHistoryDVS(DefaultParams())
	var dLight, dCong Decision
	for i := 0; i < 60; i++ {
		dLight = light.Decide(Measures{LinkUtil: 0.45, BufUtil: 0.1})
		dCong = congested.Decide(Measures{LinkUtil: 0.45, BufUtil: 0.9})
	}
	if dLight != Raise {
		t.Errorf("light-load decision = %v, want raise", dLight)
	}
	if dCong != Lower {
		t.Errorf("congested decision = %v, want lower (delay is hidden)", dCong)
	}
}

func TestNoDVSAlwaysHolds(t *testing.T) {
	f := func(lu, bu float64) bool {
		return NoDVS{}.Decide(Measures{LinkUtil: lu, BufUtil: bu}) == Hold
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkUtilOnlyIgnoresCongestion(t *testing.T) {
	p := DefaultParams()
	ablation := &LinkUtilOnly{P: p}
	var got Decision
	for i := 0; i < 60; i++ {
		got = ablation.Decide(Measures{LinkUtil: 0.45, BufUtil: 0.95})
	}
	// Without the litmus it keeps pushing the stalled link faster.
	if got != Raise {
		t.Errorf("ablation decision = %v, want raise", got)
	}
}

func TestTable2Settings(t *testing.T) {
	s := Table2Settings()
	if len(s) != 6 {
		t.Fatalf("got %d settings, want 6", len(s))
	}
	wantLow := []float64{0.2, 0.25, 0.3, 0.35, 0.4, 0.5}
	wantHigh := []float64{0.3, 0.35, 0.4, 0.45, 0.5, 0.6}
	for i := range s {
		if s[i].TLLow != wantLow[i] || s[i].TLHigh != wantHigh[i] {
			t.Errorf("setting %s = (%g,%g), want (%g,%g)",
				s[i].Name, s[i].TLLow, s[i].TLHigh, wantLow[i], wantHigh[i])
		}
		if p := s[i].Apply(DefaultParams()); p.Validate() != nil {
			t.Errorf("setting %s yields invalid params", s[i].Name)
		}
	}
}

func TestMoreAggressiveSettingsLowerMore(t *testing.T) {
	// Property: for any utilization trace, a more aggressive setting never
	// prescribes fewer Lower decisions than a less aggressive one.
	f := func(seed uint32) bool {
		rng := sim.NewRNG(uint64(seed))
		trace := make([]Measures, 50)
		for i := range trace {
			trace[i] = Measures{LinkUtil: rng.Float64(), BufUtil: rng.Float64() * 0.4}
		}
		prev := -1
		for _, s := range Table2Settings() {
			h, _ := NewHistoryDVS(s.Apply(DefaultParams()))
			lowers := 0
			for _, m := range trace {
				if h.Decide(m) == Lower {
					lowers++
				}
			}
			if prev >= 0 && lowers < prev {
				return false
			}
			prev = lowers
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMeasureHelpers(t *testing.T) {
	if u := LinkUtilization(50*sim.Nanosecond, 200*sim.Nanosecond); u != 0.25 {
		t.Errorf("LinkUtilization = %g, want 0.25", u)
	}
	if u := LinkUtilization(300*sim.Nanosecond, 200*sim.Nanosecond); u != 1 {
		t.Errorf("LinkUtilization should clamp to 1, got %g", u)
	}
	if u := LinkUtilization(10, 0); u != 0 {
		t.Errorf("zero window should give 0, got %g", u)
	}
	// 128 slots, window 100ns, integral 6400 slot-ns -> BU = 0.5.
	integral := sim.Duration(6400 * sim.Nanosecond)
	if u := BufferUtilization(integral, 128, 100*sim.Nanosecond); u != 0.5 {
		t.Errorf("BufferUtilization = %g, want 0.5", u)
	}
	if a := BufferAge(90*sim.Nanosecond, 3); a != float64(30*sim.Nanosecond) {
		t.Errorf("BufferAge = %g, want 30ns in ps", a)
	}
	if a := BufferAge(90, 0); a != 0 {
		t.Errorf("BufferAge with no departures = %g, want 0", a)
	}
}

func TestHWArithMatchesFloat(t *testing.T) {
	// Property: the shift-add fixed-point policy and the float policy agree
	// on every decision for random traces (quantization can only matter
	// within half an LSB of a threshold, which random traces make
	// overwhelmingly unlikely to straddle).
	f := func(seed uint32) bool {
		rng := sim.NewRNG(uint64(seed))
		sw, _ := NewHistoryDVS(DefaultParams())
		hw := &HWHistoryDVS{P: DefaultParams()}
		for i := 0; i < 200; i++ {
			m := Measures{LinkUtil: rng.Float64(), BufUtil: rng.Float64()}
			if sw.Decide(m) != hw.Decide(m) {
				// Tolerate disagreement only when a prediction sits within
				// quantization distance of a band edge (including the
				// congestion litmus, which flips the whole band).
				lu, bu := sw.Predicted()
				p := DefaultParams()
				const tol = 4.0 / (1 << FixedBits)
				if math.Abs(bu-p.BCongested) < tol {
					return true
				}
				for _, edge := range []float64{p.TLLow, p.TLHigh, p.THLow, p.THHigh} {
					if math.Abs(lu-edge) < tol {
						return true
					}
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEWMAShiftAddExact(t *testing.T) {
	// (3*cur + past) / 4 with cur=1.0, past=0: 0.75 exactly.
	got := EWMAShiftAdd(FixedOne, 0, 3)
	if got.Float() != 0.75 {
		t.Errorf("shift-add EWMA = %g, want 0.75", got.Float())
	}
	defer func() {
		if recover() == nil {
			t.Error("EWMAShiftAdd should panic for W != 3")
		}
	}()
	EWMAShiftAdd(0, 0, 2)
}

func TestAdaptiveThresholdsWalksTable2(t *testing.T) {
	a, err := NewAdaptiveThresholds(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.Setting().Name != "III" {
		t.Fatalf("initial setting = %s, want III", a.Setting().Name)
	}
	// Sustained calm traffic (no raises, empty buffers) promotes toward VI.
	for i := 0; i < 200; i++ {
		a.Decide(Measures{LinkUtil: 0.1, BufUtil: 0.01})
	}
	if a.Setting().Name != "VI" {
		t.Errorf("after calm traffic: setting = %s, want VI", a.Setting().Name)
	}
	// Consecutive raises (demand outrunning the band) back it off.
	for i := 0; i < 20; i++ {
		a.Decide(Measures{LinkUtil: 0.95, BufUtil: 0.05})
	}
	if a.Setting().Name != "I" {
		t.Errorf("after raise pressure: setting = %s, want I", a.Setting().Name)
	}
	// Buffer pressure alone also backs it off.
	b, _ := NewAdaptiveThresholds(DefaultParams())
	for i := 0; i < 10; i++ {
		b.Decide(Measures{LinkUtil: 0.35, BufUtil: 0.45})
	}
	if b.Setting().Name != "I" {
		t.Errorf("after buffer pressure: setting = %s, want I", b.Setting().Name)
	}
}

func TestDecisionString(t *testing.T) {
	if Lower.String() != "lower" || Hold.String() != "hold" || Raise.String() != "raise" {
		t.Error("Decision.String mismatch")
	}
}
