package core

// AdaptiveThresholds is the extension Section 4.4.2 points to: "the
// possibility of dynamically adjusting threshold settings to trade off
// power savings and latency/throughput performance". It runs Algorithm 1
// but walks the light-load band through the paper's Table 2 settings
// (I..VI) online, using only locally observable state:
//
//   - when the link neither raises nor sees buffer pressure for Patience
//     consecutive windows, latency slack exists, so it moves one setting
//     more aggressive (more power savings);
//   - when the inner policy prescribes Raise in consecutive windows —
//     demand is outrunning the band, the precursor of queueing delay — or
//     predicted buffer utilization climbs into the upper half of the
//     pre-congestion range, it immediately backs off one setting to
//     protect latency. (Buffer utilization alone is not enough: the
//     paper's own Figure 4 shows BU stays near zero until the network is
//     already congested.)
//
// This keeps the controller as cheap as the paper's 500-gate port circuit:
// two saturating counters and an index into a small table.
type AdaptiveThresholds struct {
	P Params
	// Patience is how many consecutive low-pressure windows promote the
	// band one step (default 8 when zero).
	Patience int

	inner    HistoryDVS
	settings []ThresholdSetting
	idx      int // current Table 2 setting
	calm     int // consecutive low-pressure windows
	raises   int // consecutive Raise prescriptions
}

// NewAdaptiveThresholds starts at Table 2 setting III (the paper's Table 1
// default band).
func NewAdaptiveThresholds(p Params) (*AdaptiveThresholds, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := &AdaptiveThresholds{
		P:        p,
		Patience: 8,
		settings: Table2Settings(),
		idx:      2, // setting III == Table 1's (0.3, 0.4)
	}
	a.inner = HistoryDVS{P: a.settings[a.idx].Apply(p)}
	return a, nil
}

// Name implements Policy.
func (a *AdaptiveThresholds) Name() string { return "adaptive-thresholds" }

// Setting reports the Table 2 setting currently in force.
func (a *AdaptiveThresholds) Setting() ThresholdSetting { return a.settings[a.idx] }

// Decide implements Policy.
func (a *AdaptiveThresholds) Decide(m Measures) Decision {
	d := a.inner.Decide(m)
	_, buPred := a.inner.Predicted()
	if d == Raise {
		a.raises++
	} else {
		a.raises = 0
	}
	switch {
	case a.raises >= 2 || buPred >= a.P.BCongested/2:
		// Demand outrunning the band, or buffer pressure building:
		// protect latency.
		a.calm = 0
		a.step(-1)
	case d != Raise && buPred < a.P.BCongested/4:
		// Hold or Lower with empty buffers: latency slack.
		a.calm++
		if a.calm >= a.patience() {
			a.calm = 0
			a.step(+1)
		}
	default:
		a.calm = 0
	}
	return d
}

func (a *AdaptiveThresholds) patience() int {
	if a.Patience <= 0 {
		return 8
	}
	return a.Patience
}

// step moves the active setting by delta within Table 2, re-arming the
// inner policy's thresholds while preserving its utilization history.
func (a *AdaptiveThresholds) step(delta int) {
	next := a.idx + delta
	if next < 0 || next >= len(a.settings) {
		return
	}
	a.idx = next
	a.inner.P = a.settings[a.idx].Apply(a.P)
}
