package core

// This file models the bit-exact arithmetic of the paper's hardware
// implementation (Section 3.3, Figure 6): per-port counters feed a
// shift-and-add exponential weighted average (W = 3 turns the division by
// W+1 into a right shift by 2), and plain comparators implement the
// threshold checks. It exists to demonstrate that the policy's floating-
// point form and its 500-gate fixed-point form make the same decisions.

// FixedBits is the fraction width of the hardware's utilization registers.
// Twelve bits comfortably covers H = 200 samples per window.
const FixedBits = 12

// Fixed is an unsigned fixed-point utilization in [0, 1] with FixedBits
// fraction bits.
type Fixed uint32

// FixedOne is 1.0 in fixed point.
const FixedOne Fixed = 1 << FixedBits

// ToFixed quantizes a utilization to hardware precision, saturating at 1.
func ToFixed(u float64) Fixed {
	if u <= 0 {
		return 0
	}
	if u >= 1 {
		return FixedOne
	}
	return Fixed(u*float64(FixedOne) + 0.5)
}

// Float reports the fixed-point value as a float64.
func (f Fixed) Float() float64 { return float64(f) / float64(FixedOne) }

// EWMAShiftAdd computes (W*cur + past) / (W+1) the way the synthesized
// circuit does for W = 3: (cur<<1 + cur + past) >> 2. It panics for other
// weights, mirroring the hardware's fixed wiring.
func EWMAShiftAdd(cur, past Fixed, w int) Fixed {
	if w != 3 {
		panic("core: the paper's shift-add EWMA is wired for W = 3")
	}
	return (cur<<1 + cur + past) >> 2
}

// HWHistoryDVS is HistoryDVS re-expressed in the hardware's fixed-point
// arithmetic. It exists for validation; simulations use HistoryDVS.
type HWHistoryDVS struct {
	P Params

	luPast, buPast Fixed
}

// Name implements Policy.
func (h *HWHistoryDVS) Name() string { return "history-dvs-hw" }

// Decide implements Policy with shift-add arithmetic and comparator
// thresholds quantized to register precision.
func (h *HWHistoryDVS) Decide(m Measures) Decision {
	luPred := EWMAShiftAdd(ToFixed(m.LinkUtil), h.luPast, h.P.W)
	h.luPast = luPred
	buPred := EWMAShiftAdd(ToFixed(m.BufUtil), h.buPast, h.P.W)
	h.buPast = buPred

	tLow, tHigh := ToFixed(h.P.TLLow), ToFixed(h.P.TLHigh)
	if buPred >= ToFixed(h.P.BCongested) {
		tLow, tHigh = ToFixed(h.P.THLow), ToFixed(h.P.THHigh)
	}
	switch {
	case luPred < tLow:
		return Lower
	case luPred > tHigh:
		return Raise
	default:
		return Hold
	}
}
