// Package core implements the paper's primary contribution: the
// distributed history-based DVS policy (Section 3) that each router output
// port runs to control the frequency and voltage of its channel's links.
//
// The policy samples two traffic measures over a history window of H router
// cycles — link utilization LU (Eq. 2) as the primary load indicator and
// downstream input-buffer utilization BU (Eq. 3) as a congestion litmus —
// smooths both with an exponential weighted average (Eq. 5), and then steps
// the link one frequency/voltage level down, up, or neither against a
// threshold band. Below the congestion point the conservative band
// (TLLow, TLHigh) protects latency; past it the aggressive band
// (THLow, THHigh) harvests power from links whose delay is hidden by
// downstream stalls.
package core

import (
	"fmt"

	"repro/internal/sim"
)

// Decision is a DVS policy's prescription for one history window.
type Decision int8

const (
	// Lower steps the link one level slower (and its voltage down).
	Lower Decision = -1
	// Hold leaves the link at its current level.
	Hold Decision = 0
	// Raise steps the link one level faster (and its voltage up).
	Raise Decision = 1
)

func (d Decision) String() string {
	switch d {
	case Lower:
		return "lower"
	case Hold:
		return "hold"
	case Raise:
		return "raise"
	default:
		return fmt.Sprintf("Decision(%d)", int8(d))
	}
}

// Params are the history-based DVS policy parameters (paper Table 1).
type Params struct {
	// W is the exponential weighted average weight: predicted =
	// (W*current + past) / (W+1). The paper sets W=3 so the hardware
	// reduces to a shift-and-add.
	W int
	// H is the history window length in router clock cycles.
	H int
	// BCongested is the buffer-utilization litmus: predicted BU at or above
	// it switches the policy to the congested threshold band.
	BCongested float64
	// TLLow and TLHigh bound the link-utilization band when the network is
	// lightly loaded.
	TLLow, TLHigh float64
	// THLow and THHigh bound the band when the network is congested; they
	// are higher, prescribing more aggressive power savings because link
	// delay is hidden behind downstream stalls.
	THLow, THHigh float64
}

// DefaultParams returns the paper's Table 1 settings.
func DefaultParams() Params {
	return Params{
		W:          3,
		H:          200,
		BCongested: 0.5,
		TLLow:      0.3,
		TLHigh:     0.4,
		THLow:      0.6,
		THHigh:     0.7,
	}
}

// Validate reports whether the parameters are self-consistent.
func (p Params) Validate() error {
	switch {
	case p.W < 1:
		return fmt.Errorf("core: W = %d, need >= 1", p.W)
	case p.H < 1:
		return fmt.Errorf("core: H = %d, need >= 1", p.H)
	case p.BCongested < 0 || p.BCongested > 1:
		return fmt.Errorf("core: BCongested = %g outside [0,1]", p.BCongested)
	case !(0 <= p.TLLow && p.TLLow < p.TLHigh && p.TLHigh <= 1):
		return fmt.Errorf("core: light band [%g,%g] invalid", p.TLLow, p.TLHigh)
	case !(0 <= p.THLow && p.THLow < p.THHigh && p.THHigh <= 1):
		return fmt.Errorf("core: congested band [%g,%g] invalid", p.THLow, p.THHigh)
	}
	return nil
}

// ThresholdSetting is one column of the paper's Table 2: a (TLLow, TLHigh)
// band used in the power/performance trade-off study.
type ThresholdSetting struct {
	Name          string
	TLLow, TLHigh float64
}

// Table2Settings returns the six threshold settings I–VI of paper Table 2,
// ordered from least (I) to most (VI) aggressive.
func Table2Settings() []ThresholdSetting {
	return []ThresholdSetting{
		{"I", 0.2, 0.3},
		{"II", 0.25, 0.35},
		{"III", 0.3, 0.4},
		{"IV", 0.35, 0.45},
		{"V", 0.4, 0.5},
		{"VI", 0.5, 0.6},
	}
}

// Apply returns params with the setting's light-load band substituted.
func (s ThresholdSetting) Apply(p Params) Params {
	p.TLLow, p.TLHigh = s.TLLow, s.TLHigh
	return p
}

// Measures carries one history window's observations into a policy.
type Measures struct {
	// LinkUtil is LU over the window: the fraction of link time spent
	// relaying flits (Eq. 2).
	LinkUtil float64
	// BufUtil is BU over the window: mean occupied fraction of the
	// downstream input buffers the link feeds (Eq. 3), available locally
	// from credit-based flow-control state.
	BufUtil float64
}

// Policy prescribes a per-window decision for one output port's links.
// Implementations carry per-port state and must not be shared across ports.
type Policy interface {
	Decide(m Measures) Decision
	Name() string
}

// HistoryDVS is the paper's Algorithm 1. The zero value uses zeroed
// history; construct with NewHistoryDVS to validate parameters.
type HistoryDVS struct {
	P Params

	luPast, buPast float64
}

// NewHistoryDVS returns a fresh per-port policy instance.
func NewHistoryDVS(p Params) (*HistoryDVS, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &HistoryDVS{P: p}, nil
}

// Name implements Policy.
func (h *HistoryDVS) Name() string { return "history-dvs" }

// Predicted reports the current exponentially weighted predictions (for
// tests and instrumentation).
func (h *HistoryDVS) Predicted() (lu, bu float64) { return h.luPast, h.buPast }

// Decide implements Algorithm 1 for one history window.
func (h *HistoryDVS) Decide(m Measures) Decision {
	w := float64(h.P.W)
	luPred := (w*m.LinkUtil + h.luPast) / (w + 1)
	h.luPast = luPred
	buPred := (w*m.BufUtil + h.buPast) / (w + 1)
	h.buPast = buPred

	tLow, tHigh := h.P.TLLow, h.P.TLHigh
	if buPred >= h.P.BCongested {
		tLow, tHigh = h.P.THLow, h.P.THHigh
	}
	switch {
	case luPred < tLow:
		return Lower
	case luPred > tHigh:
		return Raise
	default:
		return Hold
	}
}

// NoDVS never changes link levels — the paper's baseline, with every link
// pinned at full frequency and voltage.
type NoDVS struct{}

// Name implements Policy.
func (NoDVS) Name() string { return "no-dvs" }

// Decide implements Policy.
func (NoDVS) Decide(Measures) Decision { return Hold }

// LinkUtilOnly is the ablation the paper argues against in Section 3.1: the
// history-based policy with the buffer-utilization litmus removed, so the
// light-load band applies at every load. Under congestion it keeps trying
// to speed up stalled links instead of harvesting their hidden delay.
type LinkUtilOnly struct {
	P      Params
	luPast float64
}

// Name implements Policy.
func (l *LinkUtilOnly) Name() string { return "link-util-only" }

// Decide implements Policy.
func (l *LinkUtilOnly) Decide(m Measures) Decision {
	w := float64(l.P.W)
	luPred := (w*m.LinkUtil + l.luPast) / (w + 1)
	l.luPast = luPred
	switch {
	case luPred < l.P.TLLow:
		return Lower
	case luPred > l.P.TLHigh:
		return Raise
	default:
		return Hold
	}
}

// Eq. 2: link utilization over a window, as measured in time rather than
// link cycles — identical when the frequency is constant within the window
// and well-defined across transitions.
func LinkUtilization(busy, window sim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	u := float64(busy) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}

// Eq. 3: buffer utilization from the time integral of occupancy
// (slot-picoseconds) over a window for a buffer of size slots.
func BufferUtilization(occupancyIntegral sim.Duration, slots int, window sim.Duration) float64 {
	if window <= 0 || slots <= 0 {
		return 0
	}
	u := float64(occupancyIntegral) / (float64(slots) * float64(window))
	if u > 1 {
		u = 1
	}
	return u
}

// Eq. 4: mean input-buffer age of the flits that departed in a window.
func BufferAge(sumResidency sim.Duration, departed int) float64 {
	if departed == 0 {
		return 0
	}
	return float64(sumResidency) / float64(departed)
}
