package core

import "testing"

// The tests in this file pin Algorithm 1's threshold-band behavior with
// exactly representable binary fractions, so "equal to the threshold" is a
// real float64 equality, not an accident of rounding. With W = 1 the
// predictor is pred = (measure + past) / 2 and past starts at 0, so a
// measure sequence like [1.0, 1.0] walks the prediction through 0.5 then
// 0.75 — both exact.
func edgeParams() Params {
	return Params{
		W:          1,
		H:          200,
		BCongested: 0.5,
		TLLow:      0.25,
		TLHigh:     0.5,
		THLow:      0.5,
		THHigh:     0.75,
	}
}

// TestThresholdBandTable drives a fresh policy through a measure sequence
// per row and checks the decision at every window: band membership, band
// selection by the congestion litmus, and behavior exactly on each edge.
func TestThresholdBandTable(t *testing.T) {
	cases := []struct {
		name string
		lu   []float64 // link utilization per window
		bu   []float64 // buffer utilization per window
		want []Decision
	}{
		// --- light band [0.25, 0.5): bu stays 0 ---
		{
			name: "idle link lowers",
			lu:   []float64{0}, bu: []float64{0},
			want: []Decision{Lower},
		},
		{
			name: "mid-band holds",
			lu:   []float64{0.75}, bu: []float64{0}, // pred 0.375
			want: []Decision{Hold},
		},
		{
			name: "sustained saturation raises",
			lu:   []float64{1, 1}, bu: []float64{0, 0}, // pred 0.5, then 0.75
			want: []Decision{Hold, Raise},
		},
		// --- exact edges: equality means Hold, the hysteresis guard ---
		{
			name: "prediction exactly at TLLow holds, not lowers",
			lu:   []float64{0.5}, bu: []float64{0}, // pred 0.25 == TLLow
			want: []Decision{Hold},
		},
		{
			name: "prediction exactly at TLHigh holds, not raises",
			lu:   []float64{1}, bu: []float64{0}, // pred 0.5 == TLHigh
			want: []Decision{Hold},
		},
		{
			name: "prediction exactly at THHigh holds in congested band",
			lu:   []float64{1, 1}, bu: []float64{1, 1}, // pred 0.5 then 0.75 == THHigh
			want: []Decision{Hold, Hold},
		},
		{
			name: "sitting on an edge never oscillates",
			lu:   []float64{0.5, 0.25, 0.25, 0.25}, bu: []float64{0, 0, 0, 0}, // pred pinned at 0.25
			want: []Decision{Hold, Hold, Hold, Hold},
		},
		// --- band selection by the congestion litmus ---
		{
			name: "light load picks the light band",
			lu:   []float64{0.8}, bu: []float64{0}, // luPred 0.4 in [0.25,0.5)
			want: []Decision{Hold},
		},
		{
			name: "same link utilization under congestion lowers instead",
			lu:   []float64{0.8}, bu: []float64{1}, // buPred 0.5 >= BCongested; 0.4 < THLow
			want: []Decision{Lower},
		},
		{
			name: "buPred exactly at BCongested selects the congested band",
			lu:   []float64{0.8}, bu: []float64{1}, // buPred (1+0)/2 == 0.5 exactly
			want: []Decision{Lower},
		},
		{
			name: "buPred just below BCongested keeps the light band",
			lu:   []float64{0.8}, bu: []float64{0.5}, // buPred 0.25 < 0.5
			want: []Decision{Hold},
		},
		{
			name: "congested band still raises past THHigh",
			lu:   []float64{1, 1, 1}, bu: []float64{1, 1, 1}, // luPred 0.5, 0.75, 0.875
			want: []Decision{Hold, Hold, Raise},
		},
		{
			name: "congestion clearing falls back to the light band",
			// Window 1 congests (buPred 0.5); windows 2-3 drain the litmus
			// (buPred 0.25, 0.125) so luPred 0.4-ish reads as in-band again.
			lu: []float64{0.8, 0.4, 0.4}, bu: []float64{1, 0, 0},
			want: []Decision{Lower, Hold, Hold},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if len(tc.lu) != len(tc.bu) || len(tc.lu) != len(tc.want) {
				t.Fatalf("malformed row: %d lu, %d bu, %d want", len(tc.lu), len(tc.bu), len(tc.want))
			}
			h, err := NewHistoryDVS(edgeParams())
			if err != nil {
				t.Fatal(err)
			}
			for i := range tc.lu {
				got := h.Decide(Measures{LinkUtil: tc.lu[i], BufUtil: tc.bu[i]})
				if got != tc.want[i] {
					lu, bu := h.Predicted()
					t.Fatalf("window %d: Decide(lu=%g, bu=%g) = %v, want %v (luPred=%g, buPred=%g)",
						i, tc.lu[i], tc.bu[i], got, tc.want[i], lu, bu)
				}
			}
		})
	}
}

// TestBandEdgeEquality nails the comparison directions themselves: the
// utilization band is closed ([tLow, tHigh] holds) while the congestion
// litmus is half-open (buPred >= BCongested congests). A nudge one ulp past
// an edge flips the decision; landing exactly on it does not. Every edge
// value here is a sum of powers of two, so the arithmetic is exact.
func TestBandEdgeEquality(t *testing.T) {
	const ulp = 1.0 / (1 << 30) // far above float64 noise, far below any band width
	cases := []struct {
		name string
		lu   []float64
		bu   []float64
		want Decision // decision at the final window
	}{
		{"at TLLow", []float64{0.5}, []float64{0}, Hold},
		{"one ulp below TLLow", []float64{0.5 - ulp}, []float64{0}, Lower},
		{"at TLHigh", []float64{1}, []float64{0}, Hold},
		// A single window cannot push the prediction past TLHigh (lu <= 1
		// gives pred <= 0.5), so approach from a warmed-up history.
		{"at TLHigh from history", []float64{1, 0.5}, []float64{0, 0}, Hold},
		{"one ulp above TLHigh", []float64{1, 0.5 + ulp}, []float64{0, 0}, Raise},
		{"at BCongested", []float64{0.8}, []float64{1}, Lower}, // congested: luPred 0.4 < THLow
		{"one ulp below BCongested", []float64{0.8}, []float64{1 - ulp}, Hold},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := NewHistoryDVS(edgeParams())
			if err != nil {
				t.Fatal(err)
			}
			var got Decision
			for i := range tc.lu {
				got = h.Decide(Measures{LinkUtil: tc.lu[i], BufUtil: tc.bu[i]})
			}
			if got != tc.want {
				lu, bu := h.Predicted()
				t.Fatalf("final Decide = %v, want %v (luPred=%v, buPred=%v)", got, tc.want, lu, bu)
			}
		})
	}
}
