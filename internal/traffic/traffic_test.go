package traffic

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

type injection struct {
	src, dst int
	at       sim.Time
	task     int64
}

// collect runs a model to the horizon and gathers every injection.
func collect(m Model, horizon sim.Time) []injection {
	var sched sim.Scheduler
	var got []injection
	m.Launch(&sched, horizon, func(src, dst int, at sim.Time, task int64) {
		got = append(got, injection{src, dst, at, task})
	})
	sched.RunUntil(horizon)
	return got
}

func TestUniformRate(t *testing.T) {
	topo := topology.NewMesh2D(8)
	u := &Uniform{Topo: topo, RatePerNode: 0.01, CyclePeriod: sim.Nanosecond, Seed: 3}
	horizon := 100 * sim.Microsecond // 100k cycles
	got := collect(u, horizon)
	// Expect 64 nodes * 0.01 pkt/cycle * 100k cycles = 64000 packets.
	want := 64000.0
	if f := float64(len(got)); math.Abs(f-want) > 0.05*want {
		t.Errorf("injections = %d, want ~%g", len(got), want)
	}
}

func TestUniformDestinations(t *testing.T) {
	topo := topology.NewMesh2D(4)
	u := &Uniform{Topo: topo, RatePerNode: 0.05, CyclePeriod: sim.Nanosecond, Seed: 5}
	got := collect(u, 50*sim.Microsecond)
	seen := map[int]int{}
	for _, in := range got {
		if in.src == in.dst {
			t.Fatal("self-addressed packet")
		}
		if in.task != -1 {
			t.Fatal("uniform traffic should be sessionless")
		}
		seen[in.dst]++
	}
	// All 16 nodes receive a roughly fair share.
	for n := 0; n < topo.Nodes(); n++ {
		share := float64(seen[n]) / float64(len(got))
		if share < 0.02 || share > 0.11 {
			t.Errorf("node %d receives share %g, want ~1/16", n, share)
		}
	}
}

func TestTransposePattern(t *testing.T) {
	topo := topology.NewMesh2D(4)
	tr := Transpose(topo)
	if got := tr(topo.NodeAt(1, 3)); got != topo.NodeAt(3, 1) {
		t.Errorf("transpose(1,3) = %d, want (3,1)=%d", got, topo.NodeAt(3, 1))
	}
	bc := BitComplement(topo)
	if got := bc(0); got != 15 {
		t.Errorf("bit-complement(0) = %d, want 15", got)
	}
}

func TestPermutationOnlyFixedPairs(t *testing.T) {
	topo := topology.NewMesh2D(4)
	p := &Permutation{
		Topo: topo, RatePerNode: 0.02, CyclePeriod: sim.Nanosecond,
		Seed: 7, Pattern: Transpose(topo),
	}
	got := collect(p, 20*sim.Microsecond)
	if len(got) == 0 {
		t.Fatal("no injections")
	}
	tr := Transpose(topo)
	for _, in := range got {
		if in.dst != tr(in.src) {
			t.Fatalf("packet %d->%d violates the permutation", in.src, in.dst)
		}
	}
}

func TestTwoLevelParamsValidate(t *testing.T) {
	if err := NewTwoLevelParams(1.0).Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := []func(*TwoLevelParams){
		func(p *TwoLevelParams) { p.AvgTasks = 0 },
		func(p *TwoLevelParams) { p.TotalRate = 0 },
		func(p *TwoLevelParams) { p.OnShape = 1.0 },
		func(p *TwoLevelParams) { p.SphereProb = 2 },
		func(p *TwoLevelParams) { p.RateJitter = -0.1 },
		func(p *TwoLevelParams) { p.SourcesPerTask = 0 },
	}
	for i, mutate := range bad {
		p := NewTwoLevelParams(1.0)
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDutyCycle(t *testing.T) {
	p := NewTwoLevelParams(1.0)
	// E[on] = 1us*3.5, E[off] = 1us*6 -> duty = 3.5/9.5.
	want := 3.5 / 9.5
	if got := p.DutyCycle(); math.Abs(got-want) > 1e-12 {
		t.Errorf("duty = %g, want %g", got, want)
	}
}

func newTwoLevel(t *testing.T, rate float64, seed uint64) *TwoLevel {
	t.Helper()
	p := NewTwoLevelParams(rate)
	p.Seed = seed
	// Short tasks keep test horizons small while still exercising session
	// churn.
	p.AvgTaskDuration = 50 * sim.Microsecond
	m, err := NewTwoLevel(p, topology.NewMesh2D(8))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTwoLevelAggregateRate(t *testing.T) {
	m := newTwoLevel(t, 1.0, 11)
	horizon := 300 * sim.Microsecond
	got := collect(m, horizon)
	want := 1.0 * 300000 // rate * cycles
	f := float64(len(got))
	// Heavy-tailed sources converge slowly; accept a 25% band.
	if f < 0.75*want || f > 1.25*want {
		t.Errorf("injections = %d, want ~%g", len(got), want)
	}
}

func TestTwoLevelSessionsHaveFixedSource(t *testing.T) {
	m := newTwoLevel(t, 0.5, 13)
	got := collect(m, 100*sim.Microsecond)
	srcOf := map[int64]int{}
	dsts := map[int64]map[int]bool{}
	for _, in := range got {
		if in.task < 0 {
			t.Fatal("two-level injection without session tag")
		}
		if s, ok := srcOf[in.task]; ok {
			if s != in.src {
				t.Fatalf("task %d changed source", in.task)
			}
		} else {
			srcOf[in.task] = in.src
			dsts[in.task] = map[int]bool{}
		}
		dsts[in.task][in.dst] = true
	}
	if len(srcOf) < 50 {
		t.Errorf("only %d sessions injected; expected steady-state ~100+", len(srcOf))
	}
	// Sessions spray their neighborhood: busy sessions reach several
	// distinct destinations.
	multi := 0
	for _, d := range dsts {
		if len(d) > 1 {
			multi++
		}
	}
	if multi < len(dsts)/4 {
		t.Errorf("only %d/%d sessions used multiple destinations", multi, len(dsts))
	}
}

func TestTwoLevelSphereOfLocality(t *testing.T) {
	m := newTwoLevel(t, 1.0, 17)
	got := collect(m, 200*sim.Microsecond)
	topo := m.Topo
	within := 0
	for _, in := range got {
		if topo.HopDistance(in.src, in.dst) <= m.P.SphereRadius {
			within++
		}
	}
	frac := float64(within) / float64(len(got))
	// SphereProb = 0.75; session rate jitter makes the packet-weighted
	// fraction noisier than the session-weighted one.
	if frac < 0.6 || frac > 0.9 {
		t.Errorf("in-sphere fraction = %g, want ~0.75", frac)
	}
}

// TestTwoLevelSelfSimilar validates the headline property: binned injection
// counts show a Hurst exponent well above 0.5, unlike Poisson traffic.
func TestTwoLevelSelfSimilar(t *testing.T) {
	m := newTwoLevel(t, 1.0, 19)
	horizon := 400 * sim.Microsecond
	got := collect(m, horizon)
	const binW = 100 * sim.Nanosecond
	bins := int(horizon / binW)
	counts := make([]float64, bins)
	for _, in := range got {
		b := int(in.at / binW)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	h := stats.HurstAggVar(counts)
	if math.IsNaN(h) || h < 0.6 {
		t.Errorf("two-level Hurst = %g, want > 0.6 (self-similar)", h)
	}

	// Contrast: uniform Poisson traffic at the same rate is short-range
	// dependent (H ~ 0.5).
	u := &Uniform{Topo: m.Topo, RatePerNode: 1.0 / 64, CyclePeriod: sim.Nanosecond, Seed: 23}
	pois := collect(u, horizon)
	pc := make([]float64, bins)
	for _, in := range pois {
		b := int(in.at / binW)
		if b >= bins {
			b = bins - 1
		}
		pc[b]++
	}
	hp := stats.HurstAggVar(pc)
	if math.IsNaN(hp) || hp > 0.65 {
		t.Errorf("Poisson Hurst = %g, want ~0.5", hp)
	}
	if h <= hp {
		t.Errorf("two-level H (%g) not above Poisson H (%g)", h, hp)
	}
}

func TestTwoLevelDeterministic(t *testing.T) {
	a := collect(newTwoLevel(t, 0.8, 29), 50*sim.Microsecond)
	b := collect(newTwoLevel(t, 0.8, 29), 50*sim.Microsecond)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at injection %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTwoLevelSeedsDiffer(t *testing.T) {
	a := collect(newTwoLevel(t, 0.8, 1), 20*sim.Microsecond)
	b := collect(newTwoLevel(t, 0.8, 2), 20*sim.Microsecond)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

// TestTwoLevelSpatialVariance: unlike uniform traffic, per-node injection
// counts vary widely across the mesh (Figure 8's property).
func TestTwoLevelSpatialVariance(t *testing.T) {
	m := newTwoLevel(t, 1.0, 31)
	got := collect(m, 200*sim.Microsecond)
	perNode := make([]float64, m.Topo.Nodes())
	for _, in := range got {
		perNode[in.src]++
	}
	var s stats.Stream
	for _, c := range perNode {
		s.Add(c)
	}
	// Coefficient of variation across nodes should be substantial.
	cv := s.Std() / s.Mean()
	if cv < 0.3 {
		t.Errorf("spatial CV = %g, want > 0.3 (bursty placement)", cv)
	}
}
