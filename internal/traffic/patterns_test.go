package traffic

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestBitReverse(t *testing.T) {
	topo := topology.NewMesh2D(8) // 64 nodes, 6 bits
	br := BitReverse(topo)
	tests := []struct{ src, dst int }{
		{0, 0},
		{1, 32}, // 000001 -> 100000
		{0b000011, 0b110000},
		{0b101010, 0b010101},
		{63, 63},
	}
	for _, tt := range tests {
		if got := br(tt.src); got != tt.dst {
			t.Errorf("bitreverse(%06b) = %06b, want %06b", tt.src, got, tt.dst)
		}
	}
	// Involution: reversing twice is identity.
	for i := 0; i < topo.Nodes(); i++ {
		if br(br(i)) != i {
			t.Fatalf("bit-reverse not an involution at %d", i)
		}
	}
}

func TestShufflePermutation(t *testing.T) {
	topo := topology.NewMesh2D(8)
	sh := Shuffle(topo)
	if got := sh(0b000001); got != 0b000010 {
		t.Errorf("shuffle(1) = %d, want 2", got)
	}
	if got := sh(0b100000); got != 0b000001 {
		t.Errorf("shuffle(32) = %d, want 1 (rotate)", got)
	}
	// Bijection check.
	seen := map[int]bool{}
	for i := 0; i < topo.Nodes(); i++ {
		d := sh(i)
		if seen[d] {
			t.Fatalf("shuffle not a bijection: %d repeated", d)
		}
		seen[d] = true
	}
}

func TestTornado(t *testing.T) {
	topo := topology.New(8, 2, true)
	tor := Tornado(topo)
	for src := 0; src < topo.Nodes(); src++ {
		dst := tor(src)
		// Same row (dimension 1 unchanged), dimension 0 shifted by k/2-1.
		if topo.Coord(dst, 1) != topo.Coord(src, 1) {
			t.Fatalf("tornado moved node %d off its row", src)
		}
		want := (topo.Coord(src, 0) + 3) % 8
		if topo.Coord(dst, 0) != want {
			t.Errorf("tornado(%d): x = %d, want %d", src, topo.Coord(dst, 0), want)
		}
	}
}

func TestPatternsRejectNonPowerOfTwo(t *testing.T) {
	topo := topology.New(3, 2, false) // 9 nodes
	for name, fn := range map[string]func(*topology.Cube) func(int) int{
		"bitreverse": BitReverse,
		"shuffle":    Shuffle,
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted 9 nodes", name)
				}
			}()
			fn(topo)
		}()
	}
}

func TestHotspotConcentration(t *testing.T) {
	topo := topology.NewMesh2D(4)
	h := &Hotspot{
		Topo: topo, RatePerNode: 0.05, CyclePeriod: sim.Nanosecond,
		Seed: 3, Hot: 5, Fraction: 0.3,
	}
	got := collect(h, 50*sim.Microsecond)
	if len(got) == 0 {
		t.Fatal("no injections")
	}
	hot := 0
	for _, in := range got {
		if in.src == h.Hot {
			t.Fatal("hot node should not inject")
		}
		if in.dst == h.Hot {
			hot++
		}
	}
	frac := float64(hot) / float64(len(got))
	// 30% directed plus uniform spillover ~ (1-0.3)/15.
	want := 0.3 + 0.7/15
	if frac < want-0.05 || frac > want+0.05 {
		t.Errorf("hot fraction = %.3f, want ~%.3f", frac, want)
	}
}
