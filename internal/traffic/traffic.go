// Package traffic implements the paper's communication workload models
// (Section 4.3). The centerpiece is the two-level model: Poisson-arriving
// communication task sessions placed by a sphere-of-locality rule (level
// one), each injecting packets with self-similar inter-arrivals produced by
// multiplexed Pareto ON/OFF sources (level two). Uniform-random and
// permutation generators are provided as the conventional baselines the
// paper contrasts against.
package traffic

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Injector receives one packet injection request: a packet from src to dst
// created at time now, tagged with the level-1 task session that produced
// it (-1 for sessionless models).
type Injector func(src, dst int, now sim.Time, task int64)

// Model schedules packet injections on a scheduler until a horizon.
type Model interface {
	// Launch arms the model's event chains. Events beyond horizon are not
	// scheduled. inject may be called many times per event.
	//
	// Every model must pre-schedule its next injection as a scheduler
	// event chain (each event arms the next) rather than drawing lazily
	// inside the network's cycle loop. The network's quiescent
	// fast-forward depends on this: the scheduler's earliest pending event
	// time bounds the jump, so the next injection is visible via PeekTime
	// without consuming any RNG state.
	Launch(sched *sim.Scheduler, horizon sim.Time, inject Injector)
	// Name identifies the model in experiment output.
	Name() string
}

// Uniform injects packets at each node as an independent Poisson process
// with uniformly random destinations — the spatially and temporally flat
// baseline the paper notes "does not exhibit any spatial or temporal
// variance".
type Uniform struct {
	Topo *topology.Cube
	// RatePerNode is packets per router cycle injected by each node.
	RatePerNode float64
	// CyclePeriod is the router clock period defining "cycle".
	CyclePeriod sim.Duration
	// Seed selects the deterministic random stream.
	Seed uint64
}

// Name implements Model.
func (u *Uniform) Name() string { return "uniform" }

// Launch implements Model.
func (u *Uniform) Launch(sched *sim.Scheduler, horizon sim.Time, inject Injector) {
	root := sim.NewRNG(u.Seed)
	meanGap := float64(u.CyclePeriod) / u.RatePerNode
	for n := 0; n < u.Topo.Nodes(); n++ {
		n := n
		rng := root.Split()
		var emit func()
		emit = func() {
			dst := rng.Intn(u.Topo.Nodes() - 1)
			if dst >= n {
				dst++
			}
			inject(n, dst, sched.Now(), -1)
			next := sched.Now() + sim.Time(rng.Exp(meanGap))
			if next <= horizon {
				sched.At(next, emit)
			}
		}
		first := sim.Time(rng.Exp(meanGap))
		if first <= horizon {
			sched.At(first, emit)
		}
	}
}

// Permutation injects Poisson traffic where every node sends to a fixed
// partner given by a permutation pattern — spatial variance without
// temporal variance.
type Permutation struct {
	Topo        *topology.Cube
	RatePerNode float64
	CyclePeriod sim.Duration
	Seed        uint64
	// Pattern maps a source node to its destination. NewTranspose and
	// NewBitComplement build the classic patterns.
	Pattern func(src int) int
}

// Name implements Model.
func (p *Permutation) Name() string { return "permutation" }

// Launch implements Model.
func (p *Permutation) Launch(sched *sim.Scheduler, horizon sim.Time, inject Injector) {
	root := sim.NewRNG(p.Seed)
	meanGap := float64(p.CyclePeriod) / p.RatePerNode
	for n := 0; n < p.Topo.Nodes(); n++ {
		n := n
		dst := p.Pattern(n)
		if dst == n {
			continue // fixed points send nothing
		}
		rng := root.Split()
		var emit func()
		emit = func() {
			inject(n, dst, sched.Now(), -1)
			next := sched.Now() + sim.Time(rng.Exp(meanGap))
			if next <= horizon {
				sched.At(next, emit)
			}
		}
		first := sim.Time(rng.Exp(meanGap))
		if first <= horizon {
			sched.At(first, emit)
		}
	}
}

// Transpose returns the matrix-transpose permutation for a 2D cube:
// (x, y) sends to (y, x).
func Transpose(t *topology.Cube) func(int) int {
	return func(src int) int {
		x, y := t.Coord(src, 0), t.Coord(src, 1)
		return t.NodeAt(y, x)
	}
}

// BitComplement returns the bit-complement permutation: node i sends to
// Nodes-1-i.
func BitComplement(t *topology.Cube) func(int) int {
	n := t.Nodes()
	return func(src int) int { return n - 1 - src }
}
