package tracestore

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runcache"
	"repro/internal/sim"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	rc, err := runcache.Open(t.TempDir(), runcache.Options{Fingerprint: "trace-test"})
	if err != nil {
		t.Fatal(err)
	}
	return NewStore(rc)
}

func TestStoreRoundTrip(t *testing.T) {
	s := testStore(t)
	enc := EncodeRecords("twolevel", 4242, synthRecords(DefaultBlockLen+33, 9))
	const key = "trace|v1|test"

	if _, ok := s.Load(key); ok {
		t.Fatal("empty store served a trace")
	}
	if s.Contains(key) {
		t.Fatal("empty store claims containment")
	}
	if err := s.Save(key, enc); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(key) {
		t.Fatal("saved trace not contained")
	}
	got, ok := s.Load(key)
	if !ok {
		t.Fatal("saved trace not loadable")
	}
	if got.Name() != enc.Name() || got.Horizon() != enc.Horizon() || got.Len() != enc.Len() {
		t.Fatalf("loaded header (name=%q horizon=%d len=%d) differs from saved (%q %d %d)",
			got.Name(), got.Horizon(), got.Len(), enc.Name(), enc.Horizon(), enc.Len())
	}
	want, _ := enc.DecodeAll()
	have, err := got.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if have[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, have[i], want[i])
		}
	}
}

// An entry that passes runcache's checksum but is not a decodable trace
// must be dropped on load, not served or retried forever.
func TestStoreDropsUndecodableEntry(t *testing.T) {
	rc, err := runcache.Open(t.TempDir(), runcache.Options{Fingerprint: "trace-test"})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(rc)
	const key = "trace|v1|bogus"
	if err := rc.Put(key, []byte("not a trace")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(key); ok {
		t.Fatal("undecodable entry served")
	}
	if s.Contains(key) {
		t.Fatal("undecodable entry still resident after Load dropped it")
	}
	if st := s.Stats(); st.CorruptDropped == 0 {
		t.Fatal("drop not counted")
	}
}

// A trace whose payload was rewritten to pass runcache's checksum but fail
// Validate (cross-block time regression) must also be dropped.
func TestStoreDropsInvalidTrace(t *testing.T) {
	rc, err := runcache.Open(t.TempDir(), runcache.Options{Fingerprint: "trace-test"})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(rc)
	bad := spliceRegression(t)
	const key = "trace|v1|invalid"
	if err := rc.Put(key, bad); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(key); ok {
		t.Fatal("time-regressing trace served")
	}
	if s.Contains(key) {
		t.Fatal("invalid trace still resident")
	}
}

// spliceRegression builds a CRC-valid two-block encoding whose second
// block opens earlier than the first block closes.
func spliceRegression(t *testing.T) []byte {
	t.Helper()
	recs := make([]Record, DefaultBlockLen+1)
	for i := range recs {
		recs[i] = Record{At: sim.Time(i), Src: 1, Dst: 2}
	}
	// Last record (block 1's leading, absolute) rewound before block 0's
	// end. Block-leading records encode absolute timestamps, so bypassing
	// Append's ordering panic by resetting prevAt yields a structurally
	// valid encoding that only Validate can reject.
	recs[DefaultBlockLen].At = 0
	e := &Encoder{name: "m", horizon: 1 << 20}
	for _, r := range recs {
		if r.At < e.prevAt {
			e.prevAt = r.At
		}
		e.Append(r)
	}
	enc := e.Finish()
	if err := enc.Validate(); err == nil {
		t.Fatal("fixture did not produce a cross-block regression")
	}
	return enc.Bytes()
}

// Open requires a VCS-stamped binary; test binaries are not stamped, so
// Open must refuse (NewStore is the injection path).
func TestOpenRefusesUnstampedBinary(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, 0); err == nil {
		t.Fatal("Open succeeded from an unstamped test binary")
	}
	// Refusal must not create droppings.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		t.Fatalf("refused Open left %s behind", filepath.Join(dir, e.Name()))
	}
}

func TestDefaultDir(t *testing.T) {
	if got := DefaultDir("/x/y"); got != filepath.Join("/x/y", SubdirName) {
		t.Fatalf("DefaultDir = %q", got)
	}
}
