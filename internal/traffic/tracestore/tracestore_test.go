package tracestore

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// synthRecords builds a deterministic, time-ordered record sequence with
// bursty same-timestamp groups (the shape real captures have: many
// arrivals share an instant).
func synthRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, 0, n)
	at := sim.Time(0)
	task := int64(0)
	for len(recs) < n {
		at += sim.Time(rng.Intn(5000))
		task += int64(rng.Intn(7)) - 3
		burst := 1 + rng.Intn(4)
		for b := 0; b < burst && len(recs) < n; b++ {
			recs = append(recs, Record{
				At:   at,
				Task: task,
				Src:  int32(rng.Intn(64)),
				Dst:  int32(rng.Intn(64)),
			})
		}
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, DefaultBlockLen - 1, DefaultBlockLen, DefaultBlockLen + 1, 3*DefaultBlockLen + 17} {
		recs := synthRecords(n, int64(n))
		enc := EncodeRecords("twolevel", 123456789, recs)
		if enc.Len() != n || enc.Name() != "twolevel" || enc.Horizon() != 123456789 {
			t.Fatalf("n=%d: encoded header (len=%d name=%q horizon=%d) does not match input", n, enc.Len(), enc.Name(), enc.Horizon())
		}
		dec, err := Decode(append([]byte(nil), enc.Bytes()...))
		if err != nil {
			t.Fatalf("n=%d: decode of own encoding failed: %v", n, err)
		}
		got, err := dec.DecodeAll()
		if err != nil {
			t.Fatalf("n=%d: DecodeAll failed: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d records", n, len(got))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("n=%d: record %d = %+v, want %+v", n, i, got[i], recs[i])
			}
		}
	}
}

func TestRoundTripExtremes(t *testing.T) {
	recs := []Record{
		{At: 0, Task: math.MinInt64, Src: 0, Dst: math.MaxInt32},
		{At: 0, Task: math.MaxInt64, Src: math.MaxInt32, Dst: 0},
		{At: math.MaxInt64, Task: 0, Src: 1, Dst: 2},
	}
	enc := EncodeRecords("x", math.MaxInt64, recs)
	dec, err := Decode(enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// Encoded and re-decoded forms must expose identical block structure, and
// DecodeBlock must serve any block independently (random access).
func TestDecodeBlockRandomAccess(t *testing.T) {
	recs := synthRecords(2*DefaultBlockLen+100, 42)
	enc := EncodeRecords("m", 1<<40, recs)
	dec, err := Decode(enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Blocks() != 3 || dec.BlockLen() != DefaultBlockLen {
		t.Fatalf("blocks=%d blockLen=%d, want 3 x %d", dec.Blocks(), dec.BlockLen(), DefaultBlockLen)
	}
	// Last block first: blocks decode without their predecessors.
	for _, b := range []int{2, 0, 1, 1, 2} {
		got, err := dec.DecodeBlock(b, nil)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		base := b * DefaultBlockLen
		if len(got) != dec.blockRecords(b) {
			t.Fatalf("block %d: %d records", b, len(got))
		}
		for i, r := range got {
			if r != recs[base+i] {
				t.Fatalf("block %d record %d = %+v, want %+v", b, i, r, recs[base+i])
			}
		}
	}
	if _, err := dec.DecodeBlock(3, nil); err == nil {
		t.Fatal("out-of-range block decoded")
	}
	if _, err := dec.DecodeBlock(-1, nil); err == nil {
		t.Fatal("negative block decoded")
	}
}

// The encoding must actually compress: the motivating arithmetic is ~5
// bytes per arrival against the 24-byte in-memory struct.
func TestEncodingIsCompact(t *testing.T) {
	recs := synthRecords(50_000, 7)
	enc := EncodeRecords("twolevel", 1<<40, recs)
	perRecord := float64(enc.SizeBytes()) / float64(len(recs))
	if perRecord > 8 {
		t.Fatalf("%.1f bytes per record; the delta encoding has regressed", perRecord)
	}
}

func TestEncoderPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("time regression", func() {
		e := NewEncoder("m", 100)
		e.Append(Record{At: 50})
		e.Append(Record{At: 49})
	})
	expectPanic("negative endpoint", func() {
		e := NewEncoder("m", 100)
		e.Append(Record{At: 1, Src: -1})
	})
	expectPanic("append after finish", func() {
		e := NewEncoder("m", 100)
		e.Finish()
		e.Append(Record{At: 1})
	})
	expectPanic("double finish", func() {
		e := NewEncoder("m", 100)
		e.Finish()
		e.Finish()
	})
	expectPanic("negative horizon", func() { NewEncoder("m", -1) })
}

// Every structural mutation must be rejected — most by the checksum, and
// checksum-repaired mutations by the per-field validation.
func TestDecodeRejectsCorruption(t *testing.T) {
	enc := EncodeRecords("twolevel", 99999, synthRecords(DefaultBlockLen+100, 3))
	valid := enc.Bytes()
	if _, err := Decode(valid); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	// Truncation at every boundary region.
	for _, cut := range []int{0, 4, len(magic), len(magic) + 3, len(valid) / 2, len(valid) - 1} {
		if _, err := Decode(valid[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", cut)
		}
	}
	// A bit flip anywhere must fail the checksum (or, for flips inside the
	// trailing CRC itself, the comparison).
	for _, pos := range []int{0, 7, 9, len(valid) / 3, len(valid) - 2} {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x10
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at %d decoded", pos)
		}
	}
}

// FuzzTraceDecode pins the bounds-checking contract: Decode plus a full
// DecodeAll on arbitrary bytes must never panic or allocate absurdly — any
// input is either rejected with an error or decodes to records that
// re-encode to a valid trace.
func FuzzTraceDecode(f *testing.F) {
	small := EncodeRecords("twolevel", 12345, synthRecords(300, 1)).Bytes()
	empty := EncodeRecords("", 0, nil).Bytes()
	multi := EncodeRecords("m", 1<<30, synthRecords(DefaultBlockLen+5, 2)).Bytes()
	f.Add(small)
	f.Add(empty)
	f.Add(multi)
	f.Add([]byte("NOCTRCE1"))
	f.Add([]byte{})
	// Truncations and bit flips of a valid trace seed the interesting
	// neighborhood: inputs that pass the magic check and exercise the
	// header and block-table validation.
	for _, cut := range []int{8, 12, 20, len(small) / 2, len(small) - 4} {
		f.Add(append([]byte(nil), small[:cut]...))
	}
	for _, pos := range []int{8, 9, 10, 15, len(small) / 2, len(small) - 3} {
		mut := append([]byte(nil), small...)
		mut[pos] ^= 0xff
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		enc, err := Decode(b)
		if err != nil {
			return
		}
		if enc.Validate() != nil {
			// Reachable only by inputs whose CRC was recomputed to match a
			// corrupt payload; the store rejects these on load.
			return
		}
		recs, err := enc.DecodeAll()
		if err != nil {
			t.Fatalf("validated trace failed DecodeAll: %v", err)
		}
		if len(recs) != enc.Len() {
			t.Fatalf("decoded %d records, header claims %d", len(recs), enc.Len())
		}
		// Accepted traces must re-encode cleanly (monotone time, in-range
		// fields) and round-trip to the same records.
		re := EncodeRecords(enc.Name(), enc.Horizon(), recs)
		dec, err := Decode(re.Bytes())
		if err != nil {
			t.Fatalf("re-encoding of accepted trace rejected: %v", err)
		}
		recs2, err := dec.DecodeAll()
		if err != nil {
			t.Fatalf("re-encoded trace failed block decode: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip changed record count %d -> %d", len(recs), len(recs2))
		}
		for i := range recs {
			if recs[i] != recs2[i] {
				t.Fatalf("round trip changed record %d: %+v -> %+v", i, recs[i], recs2[i])
			}
		}
	})
}

func TestDecodeDoesNotAliasMutations(t *testing.T) {
	enc := EncodeRecords("m", 100, synthRecords(10, 5))
	buf := append([]byte(nil), enc.Bytes()...)
	dec, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Bytes(), buf) {
		t.Fatal("Bytes() does not expose the decoded buffer")
	}
}
