// Package tracestore is the compact binary codec and persistent store for
// captured arrival traces. A two-level workload's arrival sequence is pure
// data — (time, task, source, destination) tuples in non-decreasing time
// order — and regenerating it is the dominant cold-process cost of a figure
// sweep, so traces are encoded once and persisted content-addressed next to
// results (internal/runcache), then replayed from the encoded form.
//
// The encoding is block-structured so replay can stream: records are
// grouped into fixed-size blocks (DefaultBlockLen records), each block
// delta-encoded from its own leading record, so any block decodes
// independently of the rest. A replaying simulation holds one decoded block
// per cursor — kilobytes — instead of the materialized arrival slice that
// bounded trace budgets before; seeking (checkpoint resume) costs one block
// decode.
//
// Wire layout (all integers varint unless noted):
//
//	magic "NOCTRCE1" (8 bytes raw)
//	schema version
//	name length, name bytes
//	horizon (picoseconds)
//	record count
//	block length (records per full block)
//	block count, then one encoded byte length per block
//	block payloads, concatenated
//	CRC-32C over everything above (4 bytes little-endian, raw)
//
// Block payload, per record: the leading record carries its absolute
// timestamp (uvarint) and task id (zigzag varint); followers carry the
// non-negative timestamp delta and the zigzag task delta. Source and
// destination nodes are raw uvarints. Decode verifies the checksum and
// every structural invariant up front and bounds-checks every read, so a
// truncated or bit-flipped payload is an error, never a panic or a
// plausible-but-wrong trace (FuzzTraceDecode pins this).
package tracestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// SchemaVersion versions the wire layout. Bump it whenever the encoding
// changes; it participates in both the header and the store fingerprint, so
// old entries become unreachable instead of misdecoding.
const SchemaVersion = 1

// DefaultBlockLen is the number of records per full block: 4096 records
// decode to ~96 KiB, small enough that per-cursor memory is negligible and
// large enough that per-block overhead (absolute leading record, length
// table entry) is noise.
const DefaultBlockLen = 4096

// Decode guards: a hostile header must not drive allocation. Blocks beyond
// maxBlockLen or names beyond maxNameLen are structurally invalid.
const (
	maxBlockLen = 1 << 20
	maxNameLen  = 1 << 12
)

var magic = []byte("NOCTRCE1")

// crcTable is CRC-32C (Castagnoli), hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one recorded packet injection. internal/traffic aliases its
// Arrival type to this, so traces encode without conversion.
type Record struct {
	At   sim.Time
	Task int64
	// Src and Dst are int32 to keep decoded blocks compact; node counts
	// are far below 2^31.
	Src, Dst int32
}

// Encoder builds an encoded trace incrementally, in arrival order, so a
// capture never materializes the raw record slice: Append delta-encodes
// into the current block and Finish seals the header and checksum.
type Encoder struct {
	name    string
	horizon sim.Time

	count    int
	prevAt   sim.Time
	prevTask int64

	cur        []byte // current block payload under construction
	curN       int    // records in cur
	payload    []byte // sealed block payloads
	blockSizes []int
	done       bool
}

// NewEncoder starts a trace for the named model and capture horizon.
func NewEncoder(name string, horizon sim.Time) *Encoder {
	if horizon < 0 {
		panic(fmt.Sprintf("tracestore: negative horizon %d", horizon))
	}
	if len(name) > maxNameLen {
		panic(fmt.Sprintf("tracestore: model name of %d bytes exceeds the %d-byte bound", len(name), maxNameLen))
	}
	return &Encoder{name: name, horizon: horizon}
}

// Append encodes one record. Records must arrive in non-decreasing time
// order with non-negative endpoints — the capture scheduler guarantees
// both, so violations are programmer errors and panic.
func (e *Encoder) Append(r Record) {
	switch {
	case e.done:
		panic("tracestore: Append after Finish")
	case r.At < 0 || r.At < e.prevAt && e.count > 0:
		panic(fmt.Sprintf("tracestore: record at %d out of time order (previous %d)", r.At, e.prevAt))
	case r.Src < 0 || r.Dst < 0:
		panic(fmt.Sprintf("tracestore: record with negative endpoint %d->%d", r.Src, r.Dst))
	}
	if e.curN == 0 {
		// Block-leading record: absolute values, so the block decodes
		// without its predecessors.
		e.cur = binary.AppendUvarint(e.cur, uint64(r.At))
		e.cur = appendZigzag(e.cur, r.Task)
	} else {
		e.cur = binary.AppendUvarint(e.cur, uint64(r.At-e.prevAt))
		e.cur = appendZigzag(e.cur, r.Task-e.prevTask)
	}
	e.cur = binary.AppendUvarint(e.cur, uint64(r.Src))
	e.cur = binary.AppendUvarint(e.cur, uint64(r.Dst))
	e.prevAt, e.prevTask = r.At, r.Task
	e.curN++
	e.count++
	if e.curN == DefaultBlockLen {
		e.flushBlock()
	}
}

func (e *Encoder) flushBlock() {
	e.payload = append(e.payload, e.cur...)
	e.blockSizes = append(e.blockSizes, len(e.cur))
	e.cur = e.cur[:0]
	e.curN = 0
}

// Len reports the number of records appended so far.
func (e *Encoder) Len() int { return e.count }

// Finish seals the trace: header, block table, payloads, checksum. The
// encoder must not be appended to afterwards.
func (e *Encoder) Finish() *Encoded {
	if e.done {
		panic("tracestore: Finish called twice")
	}
	if e.curN > 0 {
		e.flushBlock()
	}
	e.done = true

	hdr := append([]byte(nil), magic...)
	hdr = binary.AppendUvarint(hdr, SchemaVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(e.name)))
	hdr = append(hdr, e.name...)
	hdr = binary.AppendUvarint(hdr, uint64(e.horizon))
	hdr = binary.AppendUvarint(hdr, uint64(e.count))
	hdr = binary.AppendUvarint(hdr, uint64(DefaultBlockLen))
	hdr = binary.AppendUvarint(hdr, uint64(len(e.blockSizes)))
	for _, n := range e.blockSizes {
		hdr = binary.AppendUvarint(hdr, uint64(n))
	}

	buf := make([]byte, 0, len(hdr)+len(e.payload)+4)
	buf = append(buf, hdr...)
	buf = append(buf, e.payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))

	enc := &Encoded{
		name:     e.name,
		horizon:  e.horizon,
		count:    e.count,
		blockLen: DefaultBlockLen,
		buf:      buf,
	}
	enc.blockOff = make([]int, len(e.blockSizes)+1)
	off := len(hdr)
	for i, n := range e.blockSizes {
		enc.blockOff[i] = off
		off += n
	}
	enc.blockOff[len(e.blockSizes)] = off
	return enc
}

// EncodeRecords encodes a complete record slice in one call (tests and
// tooling; captures use the incremental Encoder).
func EncodeRecords(name string, horizon sim.Time, recs []Record) *Encoded {
	e := NewEncoder(name, horizon)
	for _, r := range recs {
		e.Append(r)
	}
	return e.Finish()
}

// Encoded is an encoded trace: the wire bytes plus the block offset table
// derived from the header. The wire form is immutable and safe to share
// across goroutines; mutable decode state lives either in per-caller
// cursors (DecodeBlock) or behind the internal lock of the shared decoded-
// block cache (SharedBlock).
type Encoded struct {
	name     string
	horizon  sim.Time
	count    int
	blockLen int
	buf      []byte
	blockOff []int // len Blocks()+1, byte offsets into buf

	// Shared decoded-block cache: a small move-to-front LRU serving
	// concurrent replays of the same trace, so N cursors walking the
	// blocks near-lockstep decode each block once instead of N times.
	// decodes counts actual block decodes (DecodeCount pins this).
	mu      sync.Mutex
	shared  []cachedBlock
	decodes int64
}

// cachedBlock is one shared decoded block; recs is read-only once cached.
type cachedBlock struct {
	idx  int
	recs []Record
}

// sharedCacheBlocks bounds the shared decoded-block LRU. Concurrent
// replays of one trace advance near-lockstep (they walk the same recorded
// schedule), so a handful of blocks absorbs their skew; 8 blocks of 4096
// records is ~768 KiB at the default block length.
const sharedCacheBlocks = 8

// Bytes returns the wire form, suitable for Decode; callers must not
// mutate it.
func (e *Encoded) Bytes() []byte { return e.buf }

// Name reports the captured model's name.
func (e *Encoded) Name() string { return e.name }

// Horizon reports the capture horizon.
func (e *Encoded) Horizon() sim.Time { return e.horizon }

// Len reports the total record count.
func (e *Encoded) Len() int { return e.count }

// BlockLen reports the records-per-full-block grouping.
func (e *Encoded) BlockLen() int { return e.blockLen }

// Blocks reports the block count.
func (e *Encoded) Blocks() int { return len(e.blockOff) - 1 }

// SizeBytes reports the encoded size, the unit the trace cache budgets.
func (e *Encoded) SizeBytes() int { return len(e.buf) }

// reader is a bounds-checked varint cursor over one byte slice.
type reader struct {
	b    []byte
	off  int
	fail bool
}

func (r *reader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail = true
		return 0
	}
	r.off += n
	return v
}

func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v)<<1^uint64(v>>63))
}

func (r *reader) zigzag() int64 {
	u := r.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Decode parses and verifies an encoded trace: magic, schema version,
// checksum, and every structural invariant (name and block-length bounds,
// block count consistent with the record count, block sizes summing exactly
// to the payload). Record payloads are verified lazily by DecodeBlock; the
// checksum already covers their bytes, so a Decode-accepted trace never
// fails a block decode short of memory corruption.
func Decode(b []byte) (*Encoded, error) {
	if len(b) < len(magic)+4 {
		return nil, fmt.Errorf("tracestore: %d bytes is shorter than any trace", len(b))
	}
	for i, m := range magic {
		if b[i] != m {
			return nil, fmt.Errorf("tracestore: bad magic")
		}
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("tracestore: checksum mismatch (%08x != %08x)", got, want)
	}
	r := reader{b: body, off: len(magic)}
	version := r.uvarint()
	nameLen := r.uvarint()
	if r.fail || version != SchemaVersion {
		return nil, fmt.Errorf("tracestore: unsupported schema version")
	}
	if nameLen > maxNameLen || int(nameLen) > len(body)-r.off {
		return nil, fmt.Errorf("tracestore: name length %d out of bounds", nameLen)
	}
	name := string(body[r.off : r.off+int(nameLen)])
	r.off += int(nameLen)
	horizon := r.uvarint()
	count := r.uvarint()
	blockLen := r.uvarint()
	nblocks := r.uvarint()
	if r.fail {
		return nil, fmt.Errorf("tracestore: truncated header")
	}
	if horizon > math.MaxInt64 {
		return nil, fmt.Errorf("tracestore: horizon %d out of range", horizon)
	}
	if blockLen < 1 || blockLen > maxBlockLen {
		return nil, fmt.Errorf("tracestore: block length %d out of range", blockLen)
	}
	if count > uint64(len(body)) {
		// Every record costs at least one payload byte; a larger claim is
		// structurally impossible and must not drive allocation.
		return nil, fmt.Errorf("tracestore: record count %d exceeds payload bound", count)
	}
	wantBlocks := (count + blockLen - 1) / blockLen
	if nblocks != wantBlocks {
		return nil, fmt.Errorf("tracestore: %d blocks for %d records at block length %d (want %d)", nblocks, count, blockLen, wantBlocks)
	}
	blockOff := make([]int, nblocks+1)
	off := 0
	for i := uint64(0); i < nblocks; i++ {
		n := r.uvarint()
		if r.fail || n < 1 || n > uint64(len(body)) {
			return nil, fmt.Errorf("tracestore: block %d length out of bounds", i)
		}
		blockOff[i] = off
		off += int(n)
		if off > len(body) {
			return nil, fmt.Errorf("tracestore: block lengths exceed payload")
		}
	}
	blockOff[nblocks] = off
	if r.fail {
		return nil, fmt.Errorf("tracestore: truncated block table")
	}
	if len(body)-r.off != off {
		return nil, fmt.Errorf("tracestore: %d payload bytes, block table claims %d", len(body)-r.off, off)
	}
	for i := range blockOff {
		blockOff[i] += r.off
	}
	return &Encoded{
		name:     name,
		horizon:  sim.Time(horizon),
		count:    int(count),
		blockLen: int(blockLen),
		buf:      b,
		blockOff: blockOff,
	}, nil
}

// blockRecords reports how many records block i holds (full blocks, except
// possibly the last).
func (e *Encoded) blockRecords(i int) int {
	if n := e.count - i*e.blockLen; n < e.blockLen {
		return n
	}
	return e.blockLen
}

// DecodeBlock decodes block i into dst (reusing its capacity) and returns
// the record slice. Every read is bounds-checked and every decoded field
// range-checked, so a corrupt payload — unreachable behind Decode's
// checksum, but possible when callers hand-construct an Encoded — returns
// an error rather than panicking or fabricating records.
func (e *Encoded) DecodeBlock(i int, dst []Record) ([]Record, error) {
	if i < 0 || i >= e.Blocks() {
		return nil, fmt.Errorf("tracestore: block %d outside [0,%d)", i, e.Blocks())
	}
	atomic.AddInt64(&e.decodes, 1)
	n := e.blockRecords(i)
	r := reader{b: e.buf[:e.blockOff[i+1]], off: e.blockOff[i]}
	dst = dst[:0]
	var at sim.Time
	var task int64
	for k := 0; k < n; k++ {
		du := r.uvarint()
		dt := r.zigzag()
		src := r.uvarint()
		dstNode := r.uvarint()
		if r.fail {
			return nil, fmt.Errorf("tracestore: block %d truncated at record %d", i, k)
		}
		if k == 0 {
			if du > math.MaxInt64 {
				return nil, fmt.Errorf("tracestore: block %d leading timestamp out of range", i)
			}
			at, task = sim.Time(du), dt
		} else {
			if du > uint64(math.MaxInt64-at) {
				return nil, fmt.Errorf("tracestore: block %d timestamp overflow at record %d", i, k)
			}
			at += sim.Time(du)
			task += dt
		}
		if src > math.MaxInt32 || dstNode > math.MaxInt32 {
			return nil, fmt.Errorf("tracestore: block %d record %d endpoint out of range", i, k)
		}
		dst = append(dst, Record{At: at, Task: task, Src: int32(src), Dst: int32(dstNode)})
	}
	if r.off != e.blockOff[i+1] {
		return nil, fmt.Errorf("tracestore: block %d has %d trailing bytes", i, e.blockOff[i+1]-r.off)
	}
	return dst, nil
}

// SharedBlock returns block i decoded, serving it from the trace's shared
// decoded-block cache when present. The returned slice is shared between
// callers and MUST be treated as read-only; it stays valid after eviction
// (eviction only stops sharing it). Decoding happens under the cache lock,
// so concurrent callers asking for the same block perform one decode
// between them — the property the decode-count test pins.
func (e *Encoded) SharedBlock(i int) ([]Record, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for k := range e.shared {
		if e.shared[k].idx == i {
			cb := e.shared[k]
			copy(e.shared[1:k+1], e.shared[:k])
			e.shared[0] = cb
			return cb.recs, nil
		}
	}
	recs, err := e.DecodeBlock(i, nil)
	if err != nil {
		return nil, err
	}
	if len(e.shared) < sharedCacheBlocks {
		e.shared = append(e.shared, cachedBlock{})
	}
	copy(e.shared[1:], e.shared[:len(e.shared)-1])
	e.shared[0] = cachedBlock{idx: i, recs: recs}
	return recs, nil
}

// DecodeCount reports the number of block decodes performed through this
// Encoded (shared-cache hits do not decode and do not count).
func (e *Encoded) DecodeCount() int64 { return atomic.LoadInt64(&e.decodes) }

// Validate streams every block through a reused buffer and verifies the
// one invariant the structural checks cannot see: global time order.
// Within a block, order is guaranteed by construction (deltas are
// unsigned varints), but each block leads with an absolute timestamp, so
// a hand-assembled payload with a recomputed checksum could make a block
// open earlier than its predecessor closed. Encoder output always
// validates; the trace store validates on load so replays never see a
// schedule no capture could have produced. Cost is one sequential decode
// pass — small next to the capture it replaces, and O(block) memory.
func (e *Encoded) Validate() error {
	var buf []Record
	last := sim.Time(math.MinInt64)
	for i := 0; i < e.Blocks(); i++ {
		recs, err := e.DecodeBlock(i, buf)
		if err != nil {
			return err
		}
		if len(recs) > 0 {
			if recs[0].At < last {
				return fmt.Errorf("tracestore: block %d opens at %d, before its predecessor's last record at %d", i, recs[0].At, last)
			}
			last = recs[len(recs)-1].At
		}
		buf = recs
	}
	return nil
}

// DecodeAll decodes every record (tests and tooling; simulations stream
// block-by-block through cursors instead).
func (e *Encoded) DecodeAll() ([]Record, error) {
	out := make([]Record, 0, e.count)
	buf := make([]Record, 0, e.blockLen)
	for i := 0; i < e.Blocks(); i++ {
		recs, err := e.DecodeBlock(i, buf)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}
