package tracestore

import (
	"fmt"
	"path/filepath"

	"repro/internal/runcache"
)

// DefaultMaxBytes caps the trace directory: traces are bulkier than result
// payloads (tens of MB each at -full rates), so they get their own cap,
// well above the result store's 256 MiB default.
const DefaultMaxBytes = 2 << 30

// SubdirName is the directory, under a run-cache root, that holds trace
// entries. Traces live in their own directory — not mixed into the result
// store's — because each runcache handle enforces its eviction cap over
// every entry in its directory: co-located stores with different caps
// would evict each other's entries.
const SubdirName = "traces"

// Store persists encoded traces through a runcache.Store under the
// caller's content-addressed keys (internal/traffic derives them from the
// full workload parameter set; see traffic.TwoLevelTraceKey). The
// fingerprint requirements, atomic-write discipline and corruption
// quarantine are runcache's; this layer adds only encode/decode and the
// decode-failure drop.
type Store struct {
	rc *runcache.Store
}

// Open opens (creating if needed) the trace store under dir — by
// convention DefaultDir(cacheRoot). Like the experiment result cache, it
// refuses to open from a binary without an embedded VCS revision: `go run`
// and `go test` binaries would write entries under a fingerprint that
// never invalidates. Tests wanting persistence inject explicit
// fingerprints via NewStore.
func Open(dir string, maxBytes int64) (*Store, error) {
	if _, _, ok := runcache.VCSInfo(); !ok {
		return nil, fmt.Errorf("tracestore: binary has no embedded VCS revision (go run / go test); entries could never be invalidated — build a stamped binary or inject a store via NewStore")
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	rc, err := runcache.Open(dir, runcache.Options{
		MaxBytes:    maxBytes,
		Fingerprint: runcache.Fingerprint(fmt.Sprintf("repro-trace/v%d", SchemaVersion)),
	})
	if err != nil {
		return nil, err
	}
	return &Store{rc: rc}, nil
}

// NewStore wraps an already-open runcache handle, fingerprint and all.
// Tests use it to persist traces without a VCS-stamped binary.
func NewStore(rc *runcache.Store) *Store { return &Store{rc: rc} }

// DefaultDir is the trace subdirectory of a run-cache root.
func DefaultDir(cacheRoot string) string { return filepath.Join(cacheRoot, SubdirName) }

// Load returns the decoded trace stored under key, if present and valid —
// including the full Validate pass, so a loaded trace is guaranteed to
// replay a schedule some capture actually produced. An entry that passes
// runcache's checksum but fails trace decode or validation (schema skew
// within one fingerprint should make this unreachable) is dropped so the
// next capture overwrites it.
func (s *Store) Load(key string) (*Encoded, bool) {
	payload, ok := s.rc.Get(key)
	if !ok {
		return nil, false
	}
	enc, err := Decode(payload)
	if err == nil {
		err = enc.Validate()
	}
	if err != nil {
		s.rc.Drop(key)
		return nil, false
	}
	return enc, true
}

// Save persists an encoded trace under key. Errors are returned for
// callers that care (the capture path logs and continues: a failed save
// costs a future re-capture, nothing else).
func (s *Store) Save(key string, enc *Encoded) error {
	return s.rc.Put(key, enc.Bytes())
}

// Contains reports whether key is resident, without reading or touching
// the entry. Prefetch dry-runs use it.
func (s *Store) Contains(key string) bool { return s.rc.Contains(key) }

// Stats exposes the underlying cache counters.
func (s *Store) Stats() runcache.Stats { return s.rc.Stats() }
