package traffic

import (
	"math/bits"

	"repro/internal/sim"
	"repro/internal/topology"
)

// This file collects the classic synthetic destination patterns used to
// stress interconnection networks (Dally & Towles). Each returns a pattern
// function for Permutation, except Hotspot, which is its own model.

// BitReverse returns the bit-reversal permutation: node i sends to the node
// whose index is i's bit pattern reversed (over log2(Nodes) bits). The node
// count must be a power of two.
func BitReverse(t *topology.Cube) func(int) int {
	n := t.Nodes()
	if n&(n-1) != 0 {
		panic("traffic: bit-reverse needs a power-of-two node count")
	}
	w := bits.Len(uint(n)) - 1
	return func(src int) int {
		return int(bits.Reverse(uint(src)) >> (bits.UintSize - w))
	}
}

// Shuffle returns the perfect-shuffle permutation: rotate the index bits
// left by one. The node count must be a power of two.
func Shuffle(t *topology.Cube) func(int) int {
	n := t.Nodes()
	if n&(n-1) != 0 {
		panic("traffic: shuffle needs a power-of-two node count")
	}
	w := bits.Len(uint(n)) - 1
	return func(src int) int {
		return ((src << 1) | (src >> (w - 1))) & (n - 1)
	}
}

// Tornado returns the tornado pattern: each node sends halfway around its
// row (dimension 0), the worst case for rings and tori.
func Tornado(t *topology.Cube) func(int) int {
	return func(src int) int {
		x := t.Coord(src, 0)
		nx := (x + (t.K()+1)/2 - 1) % t.K()
		return src + (nx - x) // adjust dimension-0 coordinate only
	}
}

// Hotspot sends a fraction of all traffic to one hot node and spreads the
// rest uniformly — the classic saturation stressor for shared resources.
type Hotspot struct {
	Topo        *topology.Cube
	RatePerNode float64
	CyclePeriod sim.Duration
	Seed        uint64
	// Hot is the hot node; Fraction the share of packets addressed to it.
	Hot      int
	Fraction float64
}

// Name implements Model.
func (h *Hotspot) Name() string { return "hotspot" }

// Launch implements Model.
func (h *Hotspot) Launch(sched *sim.Scheduler, horizon sim.Time, inject Injector) {
	root := sim.NewRNG(h.Seed)
	meanGap := float64(h.CyclePeriod) / h.RatePerNode
	for n := 0; n < h.Topo.Nodes(); n++ {
		n := n
		if n == h.Hot {
			continue
		}
		rng := root.Split()
		var emit func()
		emit = func() {
			dst := h.Hot
			if rng.Float64() >= h.Fraction {
				dst = rng.Intn(h.Topo.Nodes() - 1)
				if dst >= n {
					dst++
				}
			}
			inject(n, dst, sched.Now(), -1)
			next := sched.Now() + sim.Time(rng.Exp(meanGap))
			if next <= horizon {
				sched.At(next, emit)
			}
		}
		first := sim.Time(rng.Exp(meanGap))
		if first <= horizon {
			sched.At(first, emit)
		}
	}
}
