package traffic

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func testTwoLevel(t *testing.T, rate float64, seed uint64) *TwoLevel {
	t.Helper()
	p := NewTwoLevelParams(rate)
	p.Seed = seed
	m, err := NewTwoLevel(p, topology.NewMesh2D(8))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Capturing the same workload twice must record the identical sequence: a
// model's randomness depends only on its own parameters, never on what the
// trace (or network) downstream does with the injections.
func TestCaptureDeterminism(t *testing.T) {
	horizon := 20 * sim.Microsecond
	a := Capture(testTwoLevel(t, 1.0, 7), horizon)
	b := Capture(testTwoLevel(t, 1.0, 7), horizon)
	if a.Len() == 0 {
		t.Fatal("capture recorded no arrivals")
	}
	if a.Len() != b.Len() {
		t.Fatalf("capture lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a.At(i), b.At(i))
		}
	}
}

// Replaying a trace must deliver exactly the recorded sequence — same
// order, same timestamps — through the chained batch-event walk, and the
// replay's scheduler Now must match each arrival's recorded time (the
// injector contract a live network depends on).
func TestReplayMatchesCapture(t *testing.T) {
	horizon := 20 * sim.Microsecond
	tr := Capture(testTwoLevel(t, 1.0, 11), horizon)
	var sched sim.Scheduler
	i := 0
	tr.Launch(&sched, horizon, func(src, dst int, at sim.Time, task int64) {
		if i >= tr.Len() {
			t.Fatalf("replay injected more than the %d recorded arrivals", tr.Len())
		}
		want := tr.At(i)
		got := Arrival{At: at, Task: task, Src: int32(src), Dst: int32(dst)}
		if got != want {
			t.Fatalf("replay arrival %d = %+v, want %+v", i, got, want)
		}
		if sched.Now() != want.At {
			t.Fatalf("replay arrival %d fired at scheduler time %v, recorded %v", i, sched.Now(), want.At)
		}
		i++
	})
	sched.RunUntil(horizon)
	if i != tr.Len() {
		t.Fatalf("replay delivered %d of %d arrivals", i, tr.Len())
	}
}

// The replay chain must keep its next firing visible to PeekTime while
// arrivals remain — quiescent fast-forward bounds its jumps by it.
func TestReplayKeepsNextEventPending(t *testing.T) {
	horizon := 10 * sim.Microsecond
	tr := Capture(testTwoLevel(t, 0.5, 3), horizon)
	if tr.Len() < 2 {
		t.Skip("trace too short to observe chaining")
	}
	var sched sim.Scheduler
	n := 0
	tr.Launch(&sched, horizon, func(int, int, sim.Time, int64) { n++ })
	for sched.Step() {
		if n < tr.Len() && sched.PeekTime() == sim.Infinity {
			t.Fatal("no pending replay event while arrivals remain")
		}
	}
	if n != tr.Len() {
		t.Fatalf("delivered %d of %d arrivals", n, tr.Len())
	}
}

func TestReplayHorizonMismatchPanics(t *testing.T) {
	horizon := 5 * sim.Microsecond
	tr := Capture(testTwoLevel(t, 0.5, 3), horizon)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("replay with a different horizon did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "horizon") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	var sched sim.Scheduler
	tr.Launch(&sched, horizon+1, func(int, int, sim.Time, int64) {})
}

func TestSharedTwoLevelTrace(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	topo := topology.NewMesh2D(8)
	p := NewTwoLevelParams(1.0)
	p.Seed = 9
	horizon := 10 * sim.Microsecond

	a := SharedTwoLevelTrace(p, topo, horizon)
	if a == nil {
		t.Fatal("trace under budget was not captured")
	}
	if b := SharedTwoLevelTrace(p, topo, horizon); b != a {
		t.Error("second request did not share the cached trace")
	}
	p2 := p
	p2.Seed = 10
	if c := SharedTwoLevelTrace(p2, topo, horizon); c == a {
		t.Error("distinct seed shared the same trace")
	}

	// A point whose estimated arrivals exceed the per-trace budget must
	// decline (callers fall back to the live model).
	big := NewTwoLevelParams(4.0)
	if tr := SharedTwoLevelTrace(big, topo, sim.Time(perTraceArrivalBudget)*big.CyclePeriod); tr != nil {
		t.Error("over-budget trace was captured")
	}

	ResetTraceCache()
	if b := SharedTwoLevelTrace(p, topo, horizon); b == a {
		t.Error("ResetTraceCache did not drop the cached trace")
	}
}

// The trace must keep the captured model's name: experiment output embeds
// it, and a point must render identically whether it ran live or replayed.
func TestTraceName(t *testing.T) {
	m := testTwoLevel(t, 0.5, 3)
	if tr := Capture(m, sim.Microsecond); tr.Name() != m.Name() {
		t.Fatalf("trace name %q, want %q", tr.Name(), m.Name())
	}
}
