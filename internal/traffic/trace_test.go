package traffic

import (
	"strings"
	"testing"

	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic/tracestore"
)

func testTwoLevel(t *testing.T, rate float64, seed uint64) *TwoLevel {
	t.Helper()
	p := NewTwoLevelParams(rate)
	p.Seed = seed
	m, err := NewTwoLevel(p, topology.NewMesh2D(8))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Capturing the same workload twice must record the identical sequence: a
// model's randomness depends only on its own parameters, never on what the
// trace (or network) downstream does with the injections.
func TestCaptureDeterminism(t *testing.T) {
	horizon := 20 * sim.Microsecond
	a := Capture(testTwoLevel(t, 1.0, 7), horizon)
	b := Capture(testTwoLevel(t, 1.0, 7), horizon)
	if a.Len() == 0 {
		t.Fatal("capture recorded no arrivals")
	}
	if a.Len() != b.Len() {
		t.Fatalf("capture lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a.At(i), b.At(i))
		}
	}
}

// Replaying a trace must deliver exactly the recorded sequence — same
// order, same timestamps — through the chained batch-event walk, and the
// replay's scheduler Now must match each arrival's recorded time (the
// injector contract a live network depends on).
func TestReplayMatchesCapture(t *testing.T) {
	horizon := 20 * sim.Microsecond
	tr := Capture(testTwoLevel(t, 1.0, 11), horizon)
	var sched sim.Scheduler
	i := 0
	tr.Launch(&sched, horizon, func(src, dst int, at sim.Time, task int64) {
		if i >= tr.Len() {
			t.Fatalf("replay injected more than the %d recorded arrivals", tr.Len())
		}
		want := tr.At(i)
		got := Arrival{At: at, Task: task, Src: int32(src), Dst: int32(dst)}
		if got != want {
			t.Fatalf("replay arrival %d = %+v, want %+v", i, got, want)
		}
		if sched.Now() != want.At {
			t.Fatalf("replay arrival %d fired at scheduler time %v, recorded %v", i, sched.Now(), want.At)
		}
		i++
	})
	sched.RunUntil(horizon)
	if i != tr.Len() {
		t.Fatalf("replay delivered %d of %d arrivals", i, tr.Len())
	}
}

// The replay chain must keep its next firing visible to PeekTime while
// arrivals remain — quiescent fast-forward bounds its jumps by it.
func TestReplayKeepsNextEventPending(t *testing.T) {
	horizon := 10 * sim.Microsecond
	tr := Capture(testTwoLevel(t, 0.5, 3), horizon)
	if tr.Len() < 2 {
		t.Skip("trace too short to observe chaining")
	}
	var sched sim.Scheduler
	n := 0
	tr.Launch(&sched, horizon, func(int, int, sim.Time, int64) { n++ })
	for sched.Step() {
		if n < tr.Len() && sched.PeekTime() == sim.Infinity {
			t.Fatal("no pending replay event while arrivals remain")
		}
	}
	if n != tr.Len() {
		t.Fatalf("delivered %d of %d arrivals", n, tr.Len())
	}
}

func TestReplayHorizonMismatchPanics(t *testing.T) {
	horizon := 5 * sim.Microsecond
	tr := Capture(testTwoLevel(t, 0.5, 3), horizon)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("replay with a different horizon did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "horizon") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	var sched sim.Scheduler
	tr.Launch(&sched, horizon+1, func(int, int, sim.Time, int64) {})
}

func TestSharedTwoLevelTrace(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	topo := topology.NewMesh2D(8)
	p := NewTwoLevelParams(1.0)
	p.Seed = 9
	horizon := 10 * sim.Microsecond

	a, reason := SharedTwoLevelTrace(p, topo, horizon)
	if a == nil {
		t.Fatalf("trace under budget was not captured: %s", reason)
	}
	if b, _ := SharedTwoLevelTrace(p, topo, horizon); b != a {
		t.Error("second request did not share the cached trace")
	}
	p2 := p
	p2.Seed = 10
	if c, _ := SharedTwoLevelTrace(p2, topo, horizon); c == a {
		t.Error("distinct seed shared the same trace")
	}

	// A point whose estimated arrivals exceed the per-trace budget must
	// decline with a reason (callers fall back to the live model and the
	// harness surfaces the reason on stderr).
	big := NewTwoLevelParams(4.0)
	tr, reason := SharedTwoLevelTrace(big, topo, sim.Time(perTraceArrivalBudget)*big.CyclePeriod)
	if tr != nil {
		t.Error("over-budget trace was captured")
	}
	if !strings.Contains(reason, "budget") {
		t.Errorf("over-budget refusal reason %q does not name the budget", reason)
	}

	ResetTraceCache()
	if b, _ := SharedTwoLevelTrace(p, topo, horizon); b == a {
		t.Error("ResetTraceCache did not drop the cached trace")
	}
}

// With a store installed, a workload captured once must reload from disk
// after the in-memory cache is dropped — and replay the identical arrival
// sequence.
func TestSharedTraceStorePersistence(t *testing.T) {
	rc, err := runcache.Open(t.TempDir(), runcache.Options{Fingerprint: "trace-test"})
	if err != nil {
		t.Fatal(err)
	}
	SetTraceStore(tracestore.NewStore(rc))
	defer SetTraceStore(nil)
	ResetTraceCache()
	defer ResetTraceCache()

	topo := topology.NewMesh2D(8)
	p := NewTwoLevelParams(1.0)
	p.Seed = 21
	horizon := 10 * sim.Microsecond

	a, reason := SharedTwoLevelTrace(p, topo, horizon)
	if a == nil {
		t.Fatalf("capture failed: %s", reason)
	}
	key := TwoLevelTraceKey(p, topo, horizon)
	if !InstalledTraceStore().Contains(key) {
		t.Fatal("captured trace not persisted under its key")
	}

	// Drop the memory layer; the next request must come from disk (puts
	// stay flat), not a re-capture.
	ResetTraceCache()
	puts := rc.Stats().Puts
	b, reason := SharedTwoLevelTrace(p, topo, horizon)
	if b == nil {
		t.Fatalf("store-backed reload failed: %s", reason)
	}
	if b == a {
		t.Fatal("ResetTraceCache did not drop the memory layer")
	}
	if rc.Stats().Puts != puts {
		t.Fatal("reload re-captured and re-saved instead of loading")
	}
	if a.Len() != b.Len() || a.Name() != b.Name() || a.Horizon() != b.Horizon() {
		t.Fatalf("reloaded trace header differs: len %d/%d name %q/%q", a.Len(), b.Len(), a.Name(), b.Name())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("arrival %d differs after reload: %+v vs %+v", i, a.At(i), b.At(i))
		}
	}
}

// A decoded trace must replay event-for-event identically to the trace
// that captured it — the byte-identity contract the store rests on —
// across low, moderate, and saturating load.
func TestCaptureVsDecodeReplayIdentity(t *testing.T) {
	for _, rate := range []float64{0.05, 0.3, 4.0} {
		p := NewTwoLevelParams(rate)
		p.Seed = 5
		topo := topology.NewMesh2D(8)
		m, err := NewTwoLevel(p, topo)
		if err != nil {
			t.Fatal(err)
		}
		horizon := 10 * sim.Microsecond
		captured := Capture(m, horizon)

		enc, err := tracestore.Decode(append([]byte(nil), captured.Encoded().Bytes()...))
		if err != nil {
			t.Fatalf("rate %g: decode: %v", rate, err)
		}
		decoded := FromEncoded(enc)

		replaySeq := func(tr *Trace) []Arrival {
			var sched sim.Scheduler
			var got []Arrival
			tr.Launch(&sched, horizon, func(src, dst int, at sim.Time, task int64) {
				if sched.Now() != at {
					t.Fatalf("rate %g: injection at scheduler time %v claims %v", rate, sched.Now(), at)
				}
				got = append(got, Arrival{At: at, Task: task, Src: int32(src), Dst: int32(dst)})
			})
			sched.RunUntil(horizon)
			return got
		}
		a, b := replaySeq(captured), replaySeq(decoded)
		if len(a) == 0 {
			t.Fatalf("rate %g: empty capture", rate)
		}
		if len(a) != len(b) {
			t.Fatalf("rate %g: %d captured vs %d decoded injections", rate, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rate %g: injection %d differs: %+v vs %+v", rate, i, a[i], b[i])
			}
		}
	}
}

// The filtered (per-tile) projection must also match between a captured
// trace and its decoded twin.
func TestCaptureVsDecodeFilteredIdentity(t *testing.T) {
	p := NewTwoLevelParams(0.3)
	p.Seed = 13
	topo := topology.NewMesh2D(8)
	m, err := NewTwoLevel(p, topo)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 10 * sim.Microsecond
	captured := Capture(m, horizon)
	enc, err := tracestore.Decode(captured.Encoded().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	decoded := FromEncoded(enc)
	keep := func(src int) bool { return src%2 == 0 }
	run := func(tr *Trace) []Arrival {
		var sched sim.Scheduler
		var got []Arrival
		tr.LaunchReplayFiltered(&sched, horizon, func(src, dst int, at sim.Time, task int64) {
			got = append(got, Arrival{At: at, Task: task, Src: int32(src), Dst: int32(dst)})
		}, keep)
		sched.RunUntil(horizon)
		return got
	}
	a, b := run(captured), run(decoded)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("filtered projections differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("filtered injection %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// The trace must keep the captured model's name: experiment output embeds
// it, and a point must render identically whether it ran live or replayed.
func TestTraceName(t *testing.T) {
	m := testTwoLevel(t, 0.5, 3)
	if tr := Capture(m, sim.Microsecond); tr.Name() != m.Name() {
		t.Fatalf("trace name %q, want %q", tr.Name(), m.Name())
	}
}

// N replays of one trace must decode each block once between them, not
// once each: replay cursors borrow read-only blocks from the trace's
// shared decoded-block cache, and decoding happens under the cache lock
// so even concurrent misses on one block cost a single decode.
func TestSharedBlockDecodeCount(t *testing.T) {
	const blocks = 3
	n := blocks * tracestore.DefaultBlockLen
	recs := make([]Arrival, n)
	for i := range recs {
		recs[i] = Arrival{At: sim.Time(i + 1), Task: int64(i), Src: int32(i % 64), Dst: int32((i + 7) % 64)}
	}
	horizon := sim.Time(n + 1)
	tr := FromEncoded(tracestore.EncodeRecords("synthetic", horizon, recs))
	if got := tr.Encoded().Blocks(); got != blocks {
		t.Fatalf("trace has %d blocks, want %d", got, blocks)
	}
	// Filtered replays are the shared-cache path (tiled runs stream one
	// trace through N per-tile cursors); each block must decode once no
	// matter how many cursors walk it.
	const replays = 4
	total := 0
	for k := 0; k < replays; k++ {
		var sched sim.Scheduler
		tr.LaunchReplayFiltered(&sched, horizon,
			func(int, int, sim.Time, int64) { total++ },
			func(int) bool { return true })
		sched.RunUntil(horizon)
	}
	if total != replays*n {
		t.Fatalf("replays injected %d arrivals, want %d", total, replays*n)
	}
	if got := tr.Encoded().DecodeCount(); got != blocks {
		t.Fatalf("DecodeCount = %d after %d replays of %d blocks, want %d (one decode per block)", got, replays, blocks, blocks)
	}
}
