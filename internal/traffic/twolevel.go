package traffic

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/topology"
)

// TwoLevelParams configures the paper's two-level workload model.
type TwoLevelParams struct {
	// AvgTasks is the average number of concurrent communication task
	// sessions (the paper evaluates 50 and 100). Task arrivals are Poisson
	// with rate AvgTasks / AvgTaskDuration, which by Little's law sustains
	// this concurrency.
	AvgTasks int
	// AvgTaskDuration is the mean session length (paper: 10 us to 1 ms);
	// actual durations are uniform in [0.5, 1.5] times the mean.
	AvgTaskDuration sim.Duration
	// TotalRate is the target aggregate packet injection rate for the whole
	// network, in packets per router cycle (the x-axis of Figures 10-17).
	TotalRate float64
	// CyclePeriod is the router clock period defining "cycle".
	CyclePeriod sim.Duration

	// SphereRadius and SphereProb parameterize the sphere-of-locality
	// destination rule (Reed & Grunwald): with probability SphereProb the
	// destination is uniform among nodes within SphereRadius hops of the
	// source, otherwise uniform among the rest.
	SphereRadius int
	SphereProb   float64

	// SourcesPerTask is the number of Pareto ON/OFF sources multiplexed
	// inside each session. The paper multiplexes 128; the default is 32,
	// which preserves the long-range-dependent aggregate (any superposition
	// of Pareto ON/OFF sources is LRD) at a quarter of the event cost. Set
	// to 128 for the paper-exact configuration.
	SourcesPerTask int
	// OnShape and OffShape are the Pareto shape parameters (paper: 1.4 and
	// 1.2, from Leland et al.'s Ethernet measurements).
	OnShape, OffShape float64
	// OnLocation and OffLocation are the Pareto location (minimum) values
	// for ON and OFF period lengths.
	OnLocation, OffLocation sim.Duration

	// RateJitter spreads session rates uniformly in
	// [1-RateJitter, 1+RateJitter] times the per-session mean (the paper's
	// "average packet injection rate across different communication task
	// sessions is uniformly distributed within a specified range").
	RateJitter float64

	// Seed selects the deterministic random stream.
	Seed uint64
}

// NewTwoLevelParams returns the paper's Section 4.4.1 configuration for a
// given aggregate injection rate: 100 concurrent tasks of 1 ms average
// duration.
func NewTwoLevelParams(totalRate float64) TwoLevelParams {
	return TwoLevelParams{
		AvgTasks:        100,
		AvgTaskDuration: sim.Millisecond,
		TotalRate:       totalRate,
		CyclePeriod:     sim.Nanosecond,
		SphereRadius:    3,
		SphereProb:      0.75,
		SourcesPerTask:  32,
		OnShape:         1.4,
		OffShape:        1.2,
		OnLocation:      sim.Microsecond,
		OffLocation:     sim.Microsecond,
		RateJitter:      0.5,
		Seed:            1,
	}
}

// Validate reports whether the parameters are usable.
func (p TwoLevelParams) Validate() error {
	switch {
	case p.AvgTasks < 1:
		return fmt.Errorf("traffic: AvgTasks = %d", p.AvgTasks)
	case p.AvgTaskDuration <= 0:
		return fmt.Errorf("traffic: AvgTaskDuration = %v", p.AvgTaskDuration)
	case p.TotalRate <= 0:
		return fmt.Errorf("traffic: TotalRate = %g", p.TotalRate)
	case p.CyclePeriod <= 0:
		return fmt.Errorf("traffic: CyclePeriod = %v", p.CyclePeriod)
	case p.SphereProb < 0 || p.SphereProb > 1:
		return fmt.Errorf("traffic: SphereProb = %g", p.SphereProb)
	case p.SourcesPerTask < 1:
		return fmt.Errorf("traffic: SourcesPerTask = %d", p.SourcesPerTask)
	case p.OnShape <= 1 || p.OffShape <= 1:
		return fmt.Errorf("traffic: Pareto shapes (%g, %g) need > 1 for finite means",
			p.OnShape, p.OffShape)
	case p.OnLocation <= 0 || p.OffLocation <= 0:
		return fmt.Errorf("traffic: Pareto locations must be positive")
	case p.RateJitter < 0 || p.RateJitter > 1:
		return fmt.Errorf("traffic: RateJitter = %g outside [0,1]", p.RateJitter)
	}
	return nil
}

// DutyCycle reports the long-run ON fraction of one Pareto ON/OFF source.
func (p TwoLevelParams) DutyCycle() float64 {
	onMean := float64(p.OnLocation) * p.OnShape / (p.OnShape - 1)
	offMean := float64(p.OffLocation) * p.OffShape / (p.OffShape - 1)
	return onMean / (onMean + offMean)
}

// truncatedParetoMean is E[min(X, T)] for X ~ Pareto(shape, loc):
// loc + loc^shape * (loc^(1-shape) - T^(1-shape)) / (shape-1).
func truncatedParetoMean(shape, loc, t float64) float64 {
	if t <= loc {
		return t
	}
	return loc + math.Pow(loc, shape)*
		(math.Pow(loc, 1-shape)-math.Pow(t, 1-shape))/(shape-1)
}

// dutyCycleOver reports the expected ON fraction of a source whose periods
// are clipped at a session of length dur. Pareto tails are heavy enough
// (shapes 1.2-1.4) that a large share of the analytic period means lives in
// periods longer than a whole session; calibrating the emission gap against
// the clipped duty keeps the aggregate injection rate on target for short
// sessions too.
func (p TwoLevelParams) dutyCycleOver(dur sim.Duration) float64 {
	t := float64(dur)
	onMean := truncatedParetoMean(p.OnShape, float64(p.OnLocation), t)
	offMean := truncatedParetoMean(p.OffShape, float64(p.OffLocation), t)
	return onMean / (onMean + offMean)
}

// TwoLevel is the paper's two-level task/self-similar workload model.
type TwoLevel struct {
	P    TwoLevelParams
	Topo *topology.Cube

	// shells caches NodesAtDistance per source for sphere-of-locality
	// sampling.
	inSphere  map[int][]int
	outSphere map[int][]int

	nextTask int64
	// TasksStarted counts spawned sessions (instrumentation).
	TasksStarted int64
}

// NewTwoLevel validates p and returns the model.
func NewTwoLevel(p TwoLevelParams, topo *topology.Cube) (*TwoLevel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &TwoLevel{
		P:         p,
		Topo:      topo,
		inSphere:  make(map[int][]int),
		outSphere: make(map[int][]int),
	}, nil
}

// Name implements Model.
func (m *TwoLevel) Name() string { return "two-level" }

// sphere returns the (inside, outside) node lists for a source.
func (m *TwoLevel) sphere(src int) (in, out []int) {
	if got, ok := m.inSphere[src]; ok {
		return got, m.outSphere[src]
	}
	for h := 1; h <= m.Topo.MaxDistance(); h++ {
		nodes := m.Topo.NodesAtDistance(src, h)
		if h <= m.P.SphereRadius {
			in = append(in, nodes...)
		} else {
			out = append(out, nodes...)
		}
	}
	m.inSphere[src], m.outSphere[src] = in, out
	return in, out
}

// pickDst applies the sphere-of-locality rule.
func (m *TwoLevel) pickDst(src int, rng *sim.RNG) int {
	in, out := m.sphere(src)
	pool := in
	if len(out) > 0 && (len(in) == 0 || rng.Float64() >= m.P.SphereProb) {
		pool = out
	}
	return pool[rng.Intn(len(pool))]
}

// Launch implements Model: it arms the Poisson task spawner, which in turn
// arms each session's ON/OFF source chains.
func (m *TwoLevel) Launch(sched *sim.Scheduler, horizon sim.Time, inject Injector) {
	rng := sim.NewRNG(m.P.Seed)
	meanGap := float64(m.P.AvgTaskDuration) / float64(m.P.AvgTasks)
	var spawn func()
	spawn = func() {
		m.startTask(sched, horizon, inject, rng.Split(), false)
		next := sched.Now() + sim.Time(rng.Exp(meanGap))
		if next <= horizon {
			sched.At(next, spawn)
		}
	}
	// Pre-populate: at t=0 the steady state already has ~AvgTasks sessions
	// in flight; start them immediately with residual lifetimes so the
	// simulation needs no multi-millisecond warmup to reach Little's-law
	// equilibrium.
	for i := 0; i < m.P.AvgTasks; i++ {
		m.startTask(sched, horizon, inject, rng.Split(), true)
	}
	first := sim.Time(rng.Exp(meanGap))
	if first <= horizon {
		sched.At(first, spawn)
	}
}

// startTask creates one communication session: a source node, a duration,
// a target rate, and SourcesPerTask ON/OFF chains. Destinations are drawn
// per packet from the sphere of locality around the source (Reed &
// Grunwald model a per-message destination distribution), so a session
// spreads its load across its neighborhood rather than hammering one path.
func (m *TwoLevel) startTask(sched *sim.Scheduler, horizon sim.Time, inject Injector, rng *sim.RNG, initial bool) {
	id := m.nextTask
	m.nextTask++
	m.TasksStarted++

	src := rng.Intn(m.Topo.Nodes())
	dur := sim.Time(rng.UniformRange(0.5, 1.5) * float64(m.P.AvgTaskDuration))
	if initial {
		// A session already in flight at t=0 has only its residual
		// lifetime left.
		dur = sim.Time(rng.Float64() * float64(dur))
		if dur < 1 {
			return
		}
	}
	end := sched.Now() + dur
	if end > horizon {
		end = horizon
	}

	// Session rate (packets/cycle), jittered around the per-session mean.
	mean := m.P.TotalRate / float64(m.P.AvgTasks)
	rate := rng.UniformRange(1-m.P.RateJitter, 1+m.P.RateJitter) * mean
	// Per-source emission rate while ON, such that SourcesPerTask sources
	// at the session's clipped duty cycle average out to the session rate.
	perSourceOn := rate / (float64(m.P.SourcesPerTask) * m.P.dutyCycleOver(dur))
	gap := sim.Time(float64(m.P.CyclePeriod) / perSourceOn)
	if gap <= 0 {
		gap = 1
	}

	for s := 0; s < m.P.SourcesPerTask; s++ {
		m.startSource(sched, end, inject, rng.Split(), src, id, gap)
	}
}

// startSource runs one Pareto ON/OFF chain for a session. During an ON
// period packets leave with deterministic spacing `gap`, starting at a
// uniform phase; OFF periods emit nothing. The chain dies at the session
// end.
func (m *TwoLevel) startSource(sched *sim.Scheduler, end sim.Time, inject Injector,
	rng *sim.RNG, src int, task int64, gap sim.Duration) {

	var on, off func()
	on = func() {
		now := sched.Now()
		if now >= end {
			return
		}
		onEnd := now + sim.Time(rng.Pareto(m.P.OnShape, float64(m.P.OnLocation)))
		if onEnd > end {
			onEnd = end
		}
		// Packet train during the ON period.
		first := now + sim.Time(rng.Float64()*float64(gap))
		var emit func()
		emit = func() {
			inject(src, m.pickDst(src, rng), sched.Now(), task)
			next := sched.Now() + gap
			if next < onEnd {
				sched.At(next, emit)
			}
		}
		if first < onEnd {
			sched.At(first, emit)
		}
		offStart := onEnd
		if offStart < end {
			sched.At(offStart, off)
		}
	}
	off = func() {
		now := sched.Now()
		if now >= end {
			return
		}
		next := now + sim.Time(rng.Pareto(m.P.OffShape, float64(m.P.OffLocation)))
		if next < end {
			sched.At(next, on)
		}
	}
	// Start in steady state: ON with probability the clipped duty cycle.
	if rng.Float64() < m.P.dutyCycleOver(end-sched.Now()) {
		on()
	} else {
		off()
	}
}
