// Memoized traffic traces. Generating two-level self-similar traffic is
// the dominant steady-state allocator in a sweep (per-session RNGs, ON/OFF
// chain closures, sphere caches), and every policy-ablation point at one
// (seed, rate, horizon) regenerates the identical arrival sequence — the
// model's randomness is independent of the network it drives. Capture runs
// the model once against a private scheduler and encodes the arrivals
// directly into the tracestore wire form (delta varints, ~5 bytes per
// arrival instead of a 24-byte struct); the resulting Trace is an
// immutable Model that replays them with zero steady-state allocation,
// shared read-only across concurrent sweeps.
//
// Replay streams: each Replay walks the encoded blocks through a private
// cursor holding one decoded block (tracestore.DefaultBlockLen records) at
// a time, so replay memory is independent of trace length. That is what
// lets the per-trace budget sit at tens of millions of arrivals — enough
// for every -full figure point — where the materialized-slice design
// before it capped out at 1.5M.
//
// Traces also persist: when a trace store is installed (SetTraceStore,
// wired to `<run-cache>/traces` by the cmds), SharedTwoLevelTrace consults
// memory, then disk, then captures live — so a cold process pays decode
// (cheap, sequential) instead of model simulation for every workload any
// previous run has seen.
package traffic

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic/tracestore"
)

// Arrival is one recorded packet injection — an alias of the tracestore
// record so captures encode without conversion.
type Arrival = tracestore.Record

// Trace is a recorded injection schedule. It implements Model: Launch
// replays the arrivals through a chained batch-event walk (one scheduler
// event per distinct timestamp), preserving the pre-scheduled-chain
// contract that quiescent fast-forward depends on. A Trace is immutable
// after Capture and safe to share across concurrently running simulations:
// all mutable decode state lives in per-Replay cursors.
type Trace struct {
	enc *tracestore.Encoded

	// atMu guards atCur, the lazily-seeded cursor backing the random-access
	// At. Replays never touch it.
	atMu  sync.Mutex
	atCur cursor
}

// FromEncoded wraps a decoded trace (e.g. loaded from the trace store).
func FromEncoded(enc *tracestore.Encoded) *Trace { return &Trace{enc: enc} }

// Encoded exposes the wire-form trace, for persisting.
func (t *Trace) Encoded() *tracestore.Encoded { return t.enc }

// Name implements Model; it reports the captured model's name so
// experiment output is identical whether a point ran live or from a trace.
func (t *Trace) Name() string { return t.enc.Name() }

// Len reports the number of recorded arrivals.
func (t *Trace) Len() int { return t.enc.Len() }

// Horizon reports the horizon the trace was captured with.
func (t *Trace) Horizon() sim.Time { return t.enc.Horizon() }

// At returns the i-th recorded arrival. Random access costs at most one
// block decode (amortized nothing for sequential i); it exists for
// checkpoint validation and tests — replays stream through their own
// cursors.
func (t *Trace) At(i int) Arrival {
	t.atMu.Lock()
	defer t.atMu.Unlock()
	if t.atCur.enc == nil {
		t.atCur.enc = t.enc
	}
	return t.atCur.at(i)
}

// cursor is a streaming window over an encoded trace: one decoded block,
// re-loaded on demand as the index moves. A private cursor decodes into
// its own reused buffer; a shared cursor borrows read-only blocks from the
// trace's shared decoded-block cache, so N concurrent replays of one trace
// decode each block once between them instead of once each. Sequential
// walks load each block exactly once; a seek (checkpoint resume) costs one
// block load.
type cursor struct {
	enc    *tracestore.Encoded
	shared bool // borrow blocks from the shared cache instead of decoding
	base   int  // index of buf[0]
	buf    []Arrival
}

func (c *cursor) at(i int) Arrival {
	if i < c.base || i >= c.base+len(c.buf) {
		c.load(i / c.enc.BlockLen())
	}
	return c.buf[i-c.base]
}

func (c *cursor) load(block int) {
	var buf []Arrival
	var err error
	if c.shared {
		// The shared slice is read-only and must never be handed back to
		// DecodeBlock as scratch; at() only ever reads it.
		buf, err = c.enc.SharedBlock(block)
	} else {
		buf, err = c.enc.DecodeBlock(block, c.buf)
	}
	if err != nil {
		// Unreachable for store-loaded traces (Decode verified the
		// checksum) and for captures (we encoded them); reaching it means
		// memory corruption, not bad input.
		panic(fmt.Sprintf("traffic: trace block %d undecodable: %v", block, err))
	}
	c.buf = buf
	c.base = block * c.enc.BlockLen()
}

// Capture runs m against a private scheduler and records every injection
// up to horizon, encoding incrementally — the raw arrival slice is never
// materialized. The recorded sequence is exactly the sequence the model
// would deliver to a live network: model event chains consume only their
// own RNG state and their own event times, never network state.
func Capture(m Model, horizon sim.Time) *Trace {
	var sched sim.Scheduler
	e := tracestore.NewEncoder(m.Name(), horizon)
	m.Launch(&sched, horizon, func(src, dst int, now sim.Time, task int64) {
		e.Append(Arrival{At: now, Task: task, Src: int32(src), Dst: int32(dst)})
	})
	sched.RunUntil(horizon)
	return &Trace{enc: e.Finish()}
}

// Replay walks a trace's arrivals as a chained scheduler event: each firing
// injects every arrival sharing the current timestamp, then arms itself for
// the next distinct timestamp. One closure and one block cursor are
// allocated per Launch; the steady state allocates nothing beyond block
// re-decodes into the cursor's reused buffer. The handle exposes the walk's
// progress so a checkpoint can capture it: the chain's full state is the
// next arrival index plus the pending event's dispatch key (the pending
// instant is always the next arrival's timestamp).
type Replay struct {
	tr      *Trace
	sched   *sim.Scheduler
	inject  Injector
	cur     cursor
	i       int
	step    func()
	pendSeq int64
}

// Progress reports the index of the next arrival to inject and, when the
// chain is still live (index < Len), the dispatch key of its pending
// scheduler event.
func (r *Replay) Progress() (index int, pendAt sim.Time, pendSeq int64) {
	if r.i < r.tr.Len() {
		return r.i, r.cur.at(r.i).At, r.pendSeq
	}
	return r.i, 0, 0
}

// Done reports whether every arrival has been injected.
func (r *Replay) Done() bool { return r.i >= r.tr.Len() }

// Trace reports the trace the replay walks.
func (r *Replay) Trace() *Trace { return r.tr }

func (t *Trace) newReplay(sched *sim.Scheduler, inject Injector) *Replay {
	// A plain replay has exactly one cursor streaming the trace, so it keeps
	// the private reused decode buffer (zero steady-state allocations). Only
	// the filtered walk goes through the shared cache: that is the path N
	// tile cursors use to stream one trace concurrently.
	r := &Replay{tr: t, sched: sched, inject: inject, cur: cursor{enc: t.enc}}
	n := t.Len()
	r.step = func() {
		i := r.i
		at := r.cur.at(i).At
		for i < n {
			a := r.cur.at(i)
			if a.At != at {
				break
			}
			r.inject(int(a.Src), int(a.Dst), at, a.Task)
			i++
		}
		r.i = i
		if i < n {
			r.pendSeq = r.sched.At(r.cur.at(i).At, r.step)
		}
	}
	return r
}

// Launch implements Model. The horizon must equal the capture horizon:
// models consult the horizon when arming their chains, so replaying a
// trace against a different horizon would not match a live run.
func (t *Trace) Launch(sched *sim.Scheduler, horizon sim.Time, inject Injector) {
	t.LaunchReplay(sched, horizon, inject)
}

// LaunchReplay is Launch returning the replay handle, so the network can
// checkpoint the walk's progress. The handle is non-nil even for an empty
// trace (the chain is born done).
func (t *Trace) LaunchReplay(sched *sim.Scheduler, horizon sim.Time, inject Injector) *Replay {
	if horizon != t.Horizon() {
		panic(fmt.Sprintf("traffic: trace captured for horizon %v replayed with %v", t.Horizon(), horizon))
	}
	r := t.newReplay(sched, inject)
	if t.Len() > 0 {
		r.pendSeq = sched.At(r.cur.at(0).At, r.step)
	}
	return r
}

// LaunchReplayFiltered replays only the arrivals whose source node
// satisfies keep, as a chained batch-event walk on sched. The chain skips
// timestamps with no kept arrivals entirely, so a tile's scheduler sees
// events only at the instants its own sources inject — the per-tile
// projection of the recorded schedule, in recorded order. Kept arrivals are
// injected with exactly the timestamps and relative order of LaunchReplay;
// the horizon contract is the same.
func (t *Trace) LaunchReplayFiltered(sched *sim.Scheduler, horizon sim.Time, inject Injector, keep func(src int) bool) *Replay {
	if horizon != t.Horizon() {
		panic(fmt.Sprintf("traffic: trace captured for horizon %v replayed with %v", t.Horizon(), horizon))
	}
	r := &Replay{tr: t, sched: sched, inject: inject, cur: cursor{enc: t.enc, shared: true}}
	n := t.Len()
	next := func(i int) int {
		for i < n && !keep(int(r.cur.at(i).Src)) {
			i++
		}
		return i
	}
	r.step = func() {
		i := r.i
		at := r.cur.at(i).At
		for i < n {
			a := r.cur.at(i)
			if a.At != at {
				break
			}
			if keep(int(a.Src)) {
				r.inject(int(a.Src), int(a.Dst), at, a.Task)
			}
			i++
		}
		r.i = next(i)
		if r.i < n {
			r.pendSeq = r.sched.At(r.cur.at(r.i).At, r.step)
		}
	}
	r.i = next(0)
	if r.i < n {
		r.pendSeq = sched.At(r.cur.at(r.i).At, r.step)
	}
	return r
}

// Resume rebuilds a replay chain mid-walk from checkpointed progress:
// arrivals before index are considered injected, and when index < Len the
// chain's event is re-armed under the captured dispatch key pendSeq (via
// sim.Scheduler.AtSeq) at the next arrival's timestamp.
func (t *Trace) Resume(sched *sim.Scheduler, inject Injector, index int, pendSeq int64) (*Replay, error) {
	if index < 0 || index > t.Len() {
		return nil, fmt.Errorf("traffic: resume index %d outside [0,%d]", index, t.Len())
	}
	r := t.newReplay(sched, inject)
	r.i = index
	if index < t.Len() {
		if pendSeq <= 0 {
			return nil, fmt.Errorf("traffic: resume at live index %d without a pending event seq", index)
		}
		r.pendSeq = pendSeq
		sched.AtSeq(r.cur.at(index).At, pendSeq, r.step)
	}
	return r, nil
}

// Trace cache: policy ablations sweep many (policy, threshold) variants
// over the same (seed, rate, pattern, horizon) workload; the cache lets
// them all share one captured trace. Budgets are in arrivals, but an
// arrival now costs ~5 encoded bytes, not a 24-byte struct, and replay
// streams block-by-block — so the budgets sit two orders of magnitude
// above the old materialized-slice limits and cover every -full figure
// point (rate 8.0 at the full measurement horizon is the one production
// workload left out; it falls back to the live model, with a stderr note
// from the harness). The cache evicts oldest-first once completed traces
// together exceed totalTraceArrivalBudget.
const (
	perTraceArrivalBudget   = 64_000_000
	totalTraceArrivalBudget = 192_000_000
)

// traceStore is the installed persistent store (nil without one). It is
// deliberately excluded from result cache keys: a trace-store hit changes
// where bytes come from, never what they are.
var traceStore atomic.Pointer[tracestore.Store]

// SetTraceStore installs (or, with nil, removes) the persistent trace
// store consulted by SharedTwoLevelTrace.
func SetTraceStore(s *tracestore.Store) { traceStore.Store(s) }

// InstalledTraceStore returns the store installed by SetTraceStore, or nil.
func InstalledTraceStore() *tracestore.Store { return traceStore.Load() }

// TwoLevelTraceKey is the persistent-store key for a two-level workload
// trace: every model parameter, the topology shape, and the horizon
// (chains are armed against it), under the versioned trace| prefix so
// trace entries are recognizable next to result and checkpoint entries.
func TwoLevelTraceKey(p TwoLevelParams, topo *topology.Cube, horizon sim.Time) string {
	return fmt.Sprintf("trace|v%d|twolevel|tasks=%d|dur=%d|rate=%g|cyc=%d|sphere=%d/%g|spt=%d|on=%g/%d|off=%g/%d|jit=%g|seed=%d|k=%d|n=%d|torus=%t|h=%d",
		tracestore.SchemaVersion,
		p.AvgTasks, p.AvgTaskDuration, p.TotalRate, p.CyclePeriod,
		p.SphereRadius, p.SphereProb, p.SourcesPerTask,
		p.OnShape, p.OnLocation, p.OffShape, p.OffLocation,
		p.RateJitter, p.Seed,
		topo.K(), topo.N(), topo.Torus(), horizon)
}

// TwoLevelTraceEligible reports whether a workload fits the per-trace
// budget — the same test SharedTwoLevelTrace applies — and, when it does
// not, why. Callers use it to predict trace (and therefore tile)
// eligibility without capturing anything.
func TwoLevelTraceEligible(p TwoLevelParams, horizon sim.Time) (ok bool, reason string) {
	if p.CyclePeriod <= 0 {
		return false, "two-level cycle period is not positive"
	}
	cycles := float64(horizon) / float64(p.CyclePeriod)
	if est := p.TotalRate * cycles; est > perTraceArrivalBudget {
		return false, fmt.Sprintf("estimated %.0f arrivals exceed the %d-arrival per-trace budget", est, perTraceArrivalBudget)
	}
	return true, ""
}

// traceKey identifies one two-level workload: the full parameter set, the
// topology shape, and the horizon.
type traceKey struct {
	p       TwoLevelParams
	k, n    int
	torus   bool
	horizon sim.Time
}

// traceFlight is one singleflight slot: done closes when tr is ready.
// tr stays nil (and reason says why) when no trace could be produced.
type traceFlight struct {
	done   chan struct{}
	tr     *Trace
	reason string
}

var traceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*traceFlight
	order   []traceKey // insertion order, for eviction
	total   int64      // arrivals across completed entries
}

// SharedTwoLevelTrace returns the memoized trace for a two-level workload:
// memory first, then the persistent store (decode, no simulation), then a
// live capture — which is saved back to the store for every future
// process. Concurrent callers asking for the same key share one
// capture-or-load (singleflight). It returns a nil trace — caller should
// run the live model — when the estimated trace size exceeds the per-trace
// budget or the model cannot be built; reason then says why, in terms fit
// for the harness's fallback note.
func SharedTwoLevelTrace(p TwoLevelParams, topo *topology.Cube, horizon sim.Time) (tr *Trace, reason string) {
	if ok, why := TwoLevelTraceEligible(p, horizon); !ok {
		return nil, why
	}
	key := traceKey{p: p, k: topo.K(), n: topo.N(), torus: topo.Torus(), horizon: horizon}

	traceCache.mu.Lock()
	if f, ok := traceCache.entries[key]; ok {
		traceCache.mu.Unlock()
		<-f.done
		return f.tr, f.reason
	}
	if traceCache.entries == nil {
		traceCache.entries = make(map[traceKey]*traceFlight)
	}
	f := &traceFlight{done: make(chan struct{})}
	traceCache.entries[key] = f
	traceCache.order = append(traceCache.order, key)
	traceCache.mu.Unlock()

	store := InstalledTraceStore()
	if store != nil {
		skey := TwoLevelTraceKey(p, topo, horizon)
		if enc, ok := store.Load(skey); ok && enc.Horizon() == horizon {
			f.tr = FromEncoded(enc)
		}
	}
	if f.tr == nil {
		if m, err := NewTwoLevel(p, topo); err == nil {
			f.tr = Capture(m, horizon)
			if store != nil {
				// A failed save costs a future re-capture, nothing else.
				_ = store.Save(TwoLevelTraceKey(p, topo, horizon), f.tr.enc)
			}
		} else {
			f.reason = fmt.Sprintf("two-level model construction failed: %v", err)
		}
	}
	traceCache.mu.Lock()
	if f.tr != nil {
		traceCache.total += int64(f.tr.Len())
	}
	evictTracesLocked(key)
	traceCache.mu.Unlock()
	close(f.done)
	return f.tr, f.reason
}

// evictTracesLocked drops the oldest completed traces (never the one just
// inserted) until the total arrival budget holds. Evicted traces stay valid
// for holders of the pointer; they are simply no longer shared.
func evictTracesLocked(keep traceKey) {
	if traceCache.total <= totalTraceArrivalBudget {
		return
	}
	kept := traceCache.order[:0]
	for i, key := range traceCache.order {
		f, ok := traceCache.entries[key]
		evict := ok && key != keep && traceCache.total > totalTraceArrivalBudget
		if evict {
			select {
			case <-f.done: // completed: safe to drop
			default:
				evict = false // in flight: its size is unknown
			}
		}
		if evict {
			delete(traceCache.entries, key)
			if f.tr != nil {
				traceCache.total -= int64(f.tr.Len())
			}
		} else if ok {
			kept = append(kept, key)
		}
		if traceCache.total <= totalTraceArrivalBudget {
			kept = append(kept, traceCache.order[i+1:]...)
			break
		}
	}
	traceCache.order = kept
}

// ResetTraceCache drops every memoized trace. Tests and benchmarks use it
// to measure real capture work or to force live-model runs. The persistent
// store, if any, stays installed.
func ResetTraceCache() {
	traceCache.mu.Lock()
	traceCache.entries = nil
	traceCache.order = nil
	traceCache.total = 0
	traceCache.mu.Unlock()
}
