// Memoized traffic traces. Generating two-level self-similar traffic is
// the dominant steady-state allocator in a sweep (per-session RNGs, ON/OFF
// chain closures, sphere caches), and every policy-ablation point at one
// (seed, rate, horizon) regenerates the identical arrival sequence — the
// model's randomness is independent of the network it drives. Capture runs
// the model once against a private scheduler and records the arrivals;
// the resulting Trace is an immutable Model that replays them with zero
// steady-state allocation, shared read-only across concurrent sweeps.
package traffic

import (
	"fmt"
	"sync"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Arrival is one recorded packet injection.
type Arrival struct {
	At   sim.Time
	Task int64
	// Src and Dst are int32 to keep traces compact; node counts are far
	// below 2^31.
	Src, Dst int32
}

// Trace is a recorded injection schedule. It implements Model: Launch
// replays the arrivals through a chained batch-event walk (one scheduler
// event per distinct timestamp), preserving the pre-scheduled-chain
// contract that quiescent fast-forward depends on. A Trace is immutable
// after Capture and safe to share across concurrently running simulations.
type Trace struct {
	name     string
	horizon  sim.Time
	arrivals []Arrival
}

// Name implements Model; it reports the captured model's name so
// experiment output is identical whether a point ran live or from a trace.
func (t *Trace) Name() string { return t.name }

// Len reports the number of recorded arrivals.
func (t *Trace) Len() int { return len(t.arrivals) }

// Horizon reports the horizon the trace was captured with.
func (t *Trace) Horizon() sim.Time { return t.horizon }

// At returns the i-th recorded arrival.
func (t *Trace) At(i int) Arrival { return t.arrivals[i] }

// Capture runs m against a private scheduler and records every injection
// up to horizon. The recorded sequence is exactly the sequence the model
// would deliver to a live network: model event chains consume only their
// own RNG state and their own event times, never network state.
func Capture(m Model, horizon sim.Time) *Trace {
	var sched sim.Scheduler
	tr := &Trace{name: m.Name(), horizon: horizon}
	m.Launch(&sched, horizon, func(src, dst int, now sim.Time, task int64) {
		tr.arrivals = append(tr.arrivals, Arrival{At: now, Task: task, Src: int32(src), Dst: int32(dst)})
	})
	sched.RunUntil(horizon)
	return tr
}

// Replay walks a trace's arrivals as a chained scheduler event: each firing
// injects every arrival sharing the current timestamp, then arms itself for
// the next distinct timestamp. One closure is allocated per Launch; the
// steady state allocates nothing. The handle exposes the walk's progress so
// a checkpoint can capture it: the chain's full state is the next arrival
// index plus the pending event's dispatch key (the pending instant is
// always the next arrival's timestamp).
type Replay struct {
	tr      *Trace
	sched   *sim.Scheduler
	inject  Injector
	i       int
	step    func()
	pendSeq int64
}

// Progress reports the index of the next arrival to inject and, when the
// chain is still live (index < Len), the dispatch key of its pending
// scheduler event.
func (r *Replay) Progress() (index int, pendAt sim.Time, pendSeq int64) {
	if r.i < len(r.tr.arrivals) {
		return r.i, r.tr.arrivals[r.i].At, r.pendSeq
	}
	return r.i, 0, 0
}

// Done reports whether every arrival has been injected.
func (r *Replay) Done() bool { return r.i >= len(r.tr.arrivals) }

// Trace reports the trace the replay walks.
func (r *Replay) Trace() *Trace { return r.tr }

func (t *Trace) newReplay(sched *sim.Scheduler, inject Injector) *Replay {
	r := &Replay{tr: t, sched: sched, inject: inject}
	r.step = func() {
		arr := r.tr.arrivals
		i := r.i
		at := arr[i].At
		for i < len(arr) && arr[i].At == at {
			a := arr[i]
			r.inject(int(a.Src), int(a.Dst), at, a.Task)
			i++
		}
		r.i = i
		if i < len(arr) {
			r.pendSeq = r.sched.At(arr[i].At, r.step)
		}
	}
	return r
}

// Launch implements Model. The horizon must equal the capture horizon:
// models consult the horizon when arming their chains, so replaying a
// trace against a different horizon would not match a live run.
func (t *Trace) Launch(sched *sim.Scheduler, horizon sim.Time, inject Injector) {
	t.LaunchReplay(sched, horizon, inject)
}

// LaunchReplay is Launch returning the replay handle, so the network can
// checkpoint the walk's progress. The handle is non-nil even for an empty
// trace (the chain is born done).
func (t *Trace) LaunchReplay(sched *sim.Scheduler, horizon sim.Time, inject Injector) *Replay {
	if horizon != t.horizon {
		panic(fmt.Sprintf("traffic: trace captured for horizon %v replayed with %v", t.horizon, horizon))
	}
	r := t.newReplay(sched, inject)
	if len(t.arrivals) > 0 {
		r.pendSeq = sched.At(t.arrivals[0].At, r.step)
	}
	return r
}

// LaunchReplayFiltered replays only the arrivals whose source node
// satisfies keep, as a chained batch-event walk on sched. The chain skips
// timestamps with no kept arrivals entirely, so a tile's scheduler sees
// events only at the instants its own sources inject — the per-tile
// projection of the recorded schedule, in recorded order. Kept arrivals are
// injected with exactly the timestamps and relative order of LaunchReplay;
// the horizon contract is the same.
func (t *Trace) LaunchReplayFiltered(sched *sim.Scheduler, horizon sim.Time, inject Injector, keep func(src int) bool) *Replay {
	if horizon != t.horizon {
		panic(fmt.Sprintf("traffic: trace captured for horizon %v replayed with %v", t.horizon, horizon))
	}
	r := &Replay{tr: t, sched: sched, inject: inject}
	arr := t.arrivals
	next := func(i int) int {
		for i < len(arr) && !keep(int(arr[i].Src)) {
			i++
		}
		return i
	}
	r.step = func() {
		i := r.i
		at := arr[i].At
		for i < len(arr) && arr[i].At == at {
			if a := arr[i]; keep(int(a.Src)) {
				r.inject(int(a.Src), int(a.Dst), at, a.Task)
			}
			i++
		}
		r.i = next(i)
		if r.i < len(arr) {
			r.pendSeq = r.sched.At(arr[r.i].At, r.step)
		}
	}
	r.i = next(0)
	if r.i < len(arr) {
		r.pendSeq = sched.At(arr[r.i].At, r.step)
	}
	return r
}

// Resume rebuilds a replay chain mid-walk from checkpointed progress:
// arrivals before index are considered injected, and when index < Len the
// chain's event is re-armed under the captured dispatch key pendSeq (via
// sim.Scheduler.AtSeq) at the next arrival's timestamp.
func (t *Trace) Resume(sched *sim.Scheduler, inject Injector, index int, pendSeq int64) (*Replay, error) {
	if index < 0 || index > len(t.arrivals) {
		return nil, fmt.Errorf("traffic: resume index %d outside [0,%d]", index, len(t.arrivals))
	}
	r := t.newReplay(sched, inject)
	r.i = index
	if index < len(t.arrivals) {
		if pendSeq <= 0 {
			return nil, fmt.Errorf("traffic: resume at live index %d without a pending event seq", index)
		}
		r.pendSeq = pendSeq
		sched.AtSeq(t.arrivals[index].At, pendSeq, r.step)
	}
	return r, nil
}

// Trace cache: policy ablations sweep many (policy, threshold) variants
// over the same (seed, rate, pattern, horizon) workload; the cache lets
// them all share one captured trace. Budgets are in arrivals (24 bytes
// each): points whose estimated trace would exceed perTraceArrivalBudget
// are not captured at all (callers fall back to the live model), and the
// cache evicts oldest-first once completed traces together exceed
// totalTraceArrivalBudget.
const (
	perTraceArrivalBudget   = 1_500_000
	totalTraceArrivalBudget = 4_000_000
)

// traceKey identifies one two-level workload: the full parameter set, the
// topology shape, and the horizon (chains are armed against it).
type traceKey struct {
	p       TwoLevelParams
	k, n    int
	torus   bool
	horizon sim.Time
}

// traceFlight is one singleflight slot: done closes when tr is ready.
// tr stays nil when the model could not be built.
type traceFlight struct {
	done chan struct{}
	tr   *Trace
}

var traceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*traceFlight
	order   []traceKey // insertion order, for eviction
	total   int64      // arrivals across completed entries
}

// SharedTwoLevelTrace returns the memoized trace for a two-level workload,
// capturing it on first use. Concurrent callers asking for the same key
// share one capture (singleflight). It returns nil — caller should run the
// live model — when the estimated trace size exceeds the per-trace budget.
func SharedTwoLevelTrace(p TwoLevelParams, topo *topology.Cube, horizon sim.Time) *Trace {
	if p.CyclePeriod <= 0 {
		return nil
	}
	cycles := float64(horizon) / float64(p.CyclePeriod)
	if est := p.TotalRate * cycles; est > perTraceArrivalBudget {
		return nil
	}
	key := traceKey{p: p, k: topo.K(), n: topo.N(), torus: topo.Torus(), horizon: horizon}

	traceCache.mu.Lock()
	if f, ok := traceCache.entries[key]; ok {
		traceCache.mu.Unlock()
		<-f.done
		return f.tr
	}
	if traceCache.entries == nil {
		traceCache.entries = make(map[traceKey]*traceFlight)
	}
	f := &traceFlight{done: make(chan struct{})}
	traceCache.entries[key] = f
	traceCache.order = append(traceCache.order, key)
	traceCache.mu.Unlock()

	if m, err := NewTwoLevel(p, topo); err == nil {
		f.tr = Capture(m, horizon)
	}
	traceCache.mu.Lock()
	if f.tr != nil {
		traceCache.total += int64(f.tr.Len())
	}
	evictTracesLocked(key)
	traceCache.mu.Unlock()
	close(f.done)
	return f.tr
}

// evictTracesLocked drops the oldest completed traces (never the one just
// inserted) until the total arrival budget holds. Evicted traces stay valid
// for holders of the pointer; they are simply no longer shared.
func evictTracesLocked(keep traceKey) {
	if traceCache.total <= totalTraceArrivalBudget {
		return
	}
	kept := traceCache.order[:0]
	for i, key := range traceCache.order {
		f, ok := traceCache.entries[key]
		evict := ok && key != keep && traceCache.total > totalTraceArrivalBudget
		if evict {
			select {
			case <-f.done: // completed: safe to drop
			default:
				evict = false // in flight: its size is unknown
			}
		}
		if evict {
			delete(traceCache.entries, key)
			if f.tr != nil {
				traceCache.total -= int64(f.tr.Len())
			}
		} else if ok {
			kept = append(kept, key)
		}
		if traceCache.total <= totalTraceArrivalBudget {
			kept = append(kept, traceCache.order[i+1:]...)
			break
		}
	}
	traceCache.order = kept
}

// ResetTraceCache drops every memoized trace. Tests and benchmarks use it
// to measure real capture work or to force live-model runs.
func ResetTraceCache() {
	traceCache.mu.Lock()
	traceCache.entries = nil
	traceCache.order = nil
	traceCache.total = 0
	traceCache.mu.Unlock()
}
