package routing

import (
	"testing"

	"repro/internal/topology"
)

// FuzzRoute drives both routing algorithms across random k-ary n-cubes and
// random (src, dst) pairs, walking a full route and asserting the
// properties the simulator's correctness rests on: every candidate is an
// in-bounds physical port with a non-empty in-range VC set, every hop is
// minimal (distance to the destination strictly decreases), and the walk
// reaches the destination in exactly HopDistance hops.
func FuzzRoute(f *testing.F) {
	f.Add(8, 2, false, false, 0, 63, 0) // paper mesh, corner to corner, dor
	f.Add(8, 2, false, true, 7, 56, 1)  // adaptive across both dimensions
	f.Add(4, 2, true, false, 0, 10, 2)  // torus with dateline crossings
	f.Add(5, 3, true, false, 124, 0, 3) // odd-k 3-cube torus
	f.Add(2, 1, false, false, 0, 1, 0)  // smallest ring segment
	f.Fuzz(func(t *testing.T, k, n int, torus, adaptive bool, src, dst, pick int) {
		k = 2 + abs(k)%8 // 2..9
		n = 1 + abs(n)%3 // 1..3
		if adaptive && torus {
			torus = false // MinimalAdaptive rejects tori by design
		}
		topo := topology.New(k, n, torus)
		src = abs(src) % topo.Nodes()
		dst = abs(dst) % topo.Nodes()
		var algo Algorithm = DimensionOrder{}
		if adaptive {
			algo = MinimalAdaptive{}
		}
		const numVCs = 2

		cur, st := src, NewState()
		for hops := 0; cur != dst; hops++ {
			dist := topo.HopDistance(cur, dst)
			if hops >= topo.MaxDistance()*topo.N() {
				t.Fatalf("%s: walk from %d to %d has not terminated after %d hops", algo.Name(), src, dst, hops)
			}
			cands := algo.Route(topo, cur, dst, numVCs, st)
			if len(cands) == 0 {
				t.Fatalf("%s: no candidates at %d for dst %d", algo.Name(), cur, dst)
			}
			for _, c := range cands {
				if c.Port <= topology.LocalPort || c.Port >= topo.Ports() {
					t.Fatalf("%s: out-of-bounds port %d at %d (dst %d)", algo.Name(), c.Port, cur, dst)
				}
				if len(c.VCs) == 0 {
					t.Fatalf("%s: empty VC set on port %d at %d", algo.Name(), c.Port, cur)
				}
				for _, vc := range c.VCs {
					if vc < 0 || vc >= numVCs {
						t.Fatalf("%s: VC %d outside [0,%d) on port %d", algo.Name(), vc, numVCs, c.Port)
					}
				}
				dim, dir := topo.DimDir(c.Port)
				nb, ok := topo.Neighbor(cur, dim, dir)
				if !ok {
					t.Fatalf("%s: candidate port %d leads off the mesh edge at %d", algo.Name(), c.Port, cur)
				}
				if got := topo.HopDistance(nb, dst); got != dist-1 {
					t.Fatalf("%s: non-minimal hop %d -> %d (distance %d -> %d, dst %d)",
						algo.Name(), cur, nb, dist, got, dst)
				}
			}
			// Take one admissible hop, input-steered so the fuzzer explores
			// different adaptive paths, and advance dateline state exactly as
			// the network layer does.
			c := cands[abs(pick+hops)%len(cands)]
			dim, dir := topo.DimDir(c.Port)
			nb, _ := topo.Neighbor(cur, dim, dir)
			cx := topo.Coord(cur, dim)
			wrap := topo.Torus() &&
				((dir == topology.Plus && cx == topo.K()-1) ||
					(dir == topology.Minus && cx == 0))
			st = st.Advance(dim, wrap)
			cur = nb
		}
		// At the destination both algorithms must offer the ejection port.
		cands := algo.Route(topo, dst, dst, numVCs, st)
		if len(cands) != 1 || cands[0].Port != topology.LocalPort {
			t.Fatalf("%s: at destination, candidates = %v, want only the local port", algo.Name(), cands)
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == -x { // math.MinInt
			return 0
		}
		return -x
	}
	return x
}
