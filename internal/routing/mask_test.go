package routing

import (
	"fmt"
	"testing"

	"repro/internal/topology"
)

// maskFromVCs converts a Candidate VC list to the bitmask RouteMask uses.
func maskFromVCs(vcs []int) uint32 {
	var m uint32
	for _, v := range vcs {
		m |= 1 << uint(v)
	}
	return m
}

// TestRouteMaskAgreement is the equivalence test promised by the Algorithm
// interface: for every (topology, source, destination, dateline state) pair
// both algorithms accept, RouteMask must append exactly Route's candidates —
// same ports, same preference order, same VC sets. The router hot path
// trusts RouteMask; the readable Route is the specification.
func TestRouteMaskAgreement(t *testing.T) {
	topos := []struct {
		name string
		topo *topology.Cube
	}{
		{"mesh8x8", topology.NewMesh2D(8)},
		{"mesh4x4", topology.NewMesh2D(4)},
		{"torus4x4", topology.New(4, 2, true)},
		{"torus5x3d", topology.New(5, 3, true)},
	}
	states := []State{NewState(), {LastDim: 0}, {LastDim: 0, Wrapped: true}, {LastDim: 1, Wrapped: true}}
	const numVCs = 2

	for _, tc := range topos {
		for _, algo := range []Algorithm{DimensionOrder{}, MinimalAdaptive{}} {
			if _, ok := algo.(MinimalAdaptive); ok && tc.topo.Torus() {
				continue // adaptive rejects tori
			}
			t.Run(fmt.Sprintf("%s/%s", tc.name, algo.Name()), func(t *testing.T) {
				buf := make([]MaskCandidate, 0, tc.topo.Ports())
				for cur := 0; cur < tc.topo.Nodes(); cur++ {
					for dst := 0; dst < tc.topo.Nodes(); dst++ {
						for _, st := range states {
							want := algo.Route(tc.topo, cur, dst, numVCs, st)
							got := algo.RouteMask(tc.topo, cur, dst, numVCs, st, buf[:0])
							if len(got) != len(want) {
								t.Fatalf("cur=%d dst=%d st=%+v: %d mask candidates, Route has %d",
									cur, dst, st, len(got), len(want))
							}
							for i := range want {
								if got[i].Port != want[i].Port || got[i].VCMask != maskFromVCs(want[i].VCs) {
									t.Fatalf("cur=%d dst=%d st=%+v cand=%d: mask {%d %04b}, Route {%d %04b}",
										cur, dst, st, i, got[i].Port, got[i].VCMask,
										want[i].Port, maskFromVCs(want[i].VCs))
								}
							}
						}
					}
				}
			})
		}
	}
}
