package routing

import "repro/internal/topology"

// MaskCandidate is the allocation-free form of Candidate: an admissible
// output port plus the downstream virtual channels encoded as a bitmask
// (bit v set means VC v is admissible). Preference order within a
// candidate is ascending VC index, which matches every VC set Route
// returns: allVCs enumerates 0..n-1, the dateline classes are the
// singletons {0} and {1}, and the adaptive escape prepend yields
// {0, 1, .., n-1} — all ascending. Routers iterate set bits with
// TrailingZeros, visiting VCs in exactly the slice order of Route.
type MaskCandidate struct {
	Port   int
	VCMask uint32
}

// maskAll is the bitmask of VCs 0..n-1.
func maskAll(n int) uint32 { return uint32(1)<<uint(n) - 1 }

// RouteMask is the allocation-free twin of DimensionOrder.Route: it appends
// the same candidates, in the same order, to buf and returns it. Callers
// pass a buffer with spare capacity to keep the hot path allocation-free.
func (DimensionOrder) RouteMask(t *topology.Cube, cur, dst, numVCs int, st State, buf []MaskCandidate) []MaskCandidate {
	if cur == dst {
		return append(buf, MaskCandidate{Port: topology.LocalPort, VCMask: maskAll(numVCs)})
	}
	for d := 0; d < t.N(); d++ {
		cx, dx := t.Coord(cur, d), t.Coord(dst, d)
		if cx == dx {
			continue
		}
		dir := directionIn(t, cx, dx)
		port := t.PortFor(d, dir)
		if !t.Torus() {
			return append(buf, MaskCandidate{Port: port, VCMask: maskAll(numVCs)})
		}
		wrapped := st.Wrapped && st.LastDim == d
		return append(buf, MaskCandidate{Port: port, VCMask: datelineMask(t, cx, dir, wrapped, numVCs)})
	}
	return append(buf, MaskCandidate{Port: topology.LocalPort, VCMask: maskAll(numVCs)})
}

// datelineMask mirrors datelineVCs over bitmasks: bit 0 for the pre-wrap
// class, bit 1 from the dateline hop onward.
func datelineMask(t *topology.Cube, cx int, dir topology.Direction, wrapped bool, numVCs int) uint32 {
	if numVCs < 2 {
		panic("routing: torus dimension-order routing needs >= 2 VCs")
	}
	if wrapped {
		return 1 << 1
	}
	if (dir == topology.Plus && cx == t.K()-1) || (dir == topology.Minus && cx == 0) {
		return 1 << 1
	}
	return 1 << 0
}

// RouteMask is the allocation-free twin of MinimalAdaptive.Route: the same
// candidates in the same order, with the escape VC (bit 0) admitted only on
// the dimension-order output.
func (MinimalAdaptive) RouteMask(t *topology.Cube, cur, dst, numVCs int, _ State, buf []MaskCandidate) []MaskCandidate {
	if t.Torus() {
		panic("routing: MinimalAdaptive supports meshes only")
	}
	if numVCs < 2 {
		panic("routing: MinimalAdaptive needs >= 2 VCs (one escape + adaptive)")
	}
	if cur == dst {
		return append(buf, MaskCandidate{Port: topology.LocalPort, VCMask: maskAll(numVCs)})
	}
	adaptive := maskAll(numVCs) &^ 1
	start := len(buf)
	escape := -1
	for d := 0; d < t.N(); d++ {
		cx, dx := t.Coord(cur, d), t.Coord(dst, d)
		if cx == dx {
			continue
		}
		port := t.PortFor(d, directionIn(t, cx, dx))
		if escape == -1 {
			escape = port // lowest unresolved dimension = DOR output
		}
		buf = append(buf, MaskCandidate{Port: port, VCMask: adaptive})
	}
	for i := start; i < len(buf); i++ {
		if buf[i].Port == escape {
			buf[i].VCMask |= 1
		}
	}
	return buf
}
