// Package routing implements the routing protocols the paper's simulator
// supports: deterministic dimension-order routing and a minimal-adaptive
// protocol with a deadlock-free escape virtual channel (Duato-style), plus
// dateline virtual-channel assignment for tori.
package routing

import (
	"fmt"

	"repro/internal/topology"
)

// Candidate is one admissible output for a head flit: an output port and
// the set of downstream virtual channels the packet may acquire there.
type Candidate struct {
	Port int
	VCs  []int
}

// State is the per-packet routing state a router must carry between hops
// for dateline virtual-channel assignment on tori. The zero value is not
// the initial state; use NewState.
type State struct {
	// LastDim is the dimension of the packet's previous hop, or -1 before
	// the first hop.
	LastDim int
	// Wrapped reports whether the packet crossed the wraparound (dateline)
	// channel while traveling LastDim.
	Wrapped bool
}

// NewState returns the routing state of a freshly injected packet.
func NewState() State { return State{LastDim: -1} }

// Advance returns the state after a hop along dim, crossing a wrap channel
// if wrap is set. Leaving a dimension clears its dateline history: under
// dimension-order traversal a packet never returns to a finished dimension.
func (s State) Advance(dim int, wrap bool) State {
	if dim != s.LastDim {
		s = State{LastDim: dim}
	}
	if wrap {
		s.Wrapped = true
	}
	return s
}

// Algorithm computes the admissible outputs for a packet at router cur
// heading to dst. Implementations must be deadlock-free for the topologies
// they accept and must return at least one candidate for any cur != dst.
type Algorithm interface {
	// Route returns admissible (port, VC-set) candidates ordered by
	// preference. numVCs is the virtual channels per physical channel.
	// st is the packet's dateline state, maintained by the network layer
	// via State.Advance; it is only meaningful on tori.
	Route(t *topology.Cube, cur, dst, numVCs int, st State) []Candidate
	// RouteMask is the allocation-free form of Route used on the router hot
	// path: it appends the same candidates, in the same preference order,
	// to buf (VC sets as bitmasks) and returns it. Implementations must
	// keep Route and RouteMask in exact agreement; the equivalence test in
	// mask_test.go enforces it.
	RouteMask(t *topology.Cube, cur, dst, numVCs int, st State, buf []MaskCandidate) []MaskCandidate
	// Name identifies the algorithm in experiment output.
	Name() string
}

func allVCs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// DimensionOrder is deterministic e-cube routing: correct dimension 0
// first, then dimension 1, and so on (XY routing on a 2D mesh). On tori it
// applies dateline VC assignment so that wraparound channels cannot close a
// cycle: virtual channel 0 is used before a packet crosses a dimension's
// dateline and virtual channel 1 from the dateline hop onward (this
// requires numVCs >= 2 on tori).
type DimensionOrder struct{}

// Name implements Algorithm.
func (DimensionOrder) Name() string { return "dor" }

// Route implements Algorithm.
func (DimensionOrder) Route(t *topology.Cube, cur, dst, numVCs int, st State) []Candidate {
	if cur == dst {
		return []Candidate{{Port: topology.LocalPort, VCs: allVCs(numVCs)}}
	}
	for d := 0; d < t.N(); d++ {
		cx, dx := t.Coord(cur, d), t.Coord(dst, d)
		if cx == dx {
			continue
		}
		dir := directionIn(t, cx, dx)
		port := t.PortFor(d, dir)
		if !t.Torus() {
			return []Candidate{{Port: port, VCs: allVCs(numVCs)}}
		}
		wrapped := st.Wrapped && st.LastDim == d
		return []Candidate{{Port: port, VCs: datelineVCs(t, cx, dir, wrapped, numVCs)}}
	}
	return []Candidate{{Port: topology.LocalPort, VCs: allVCs(numVCs)}}
}

// directionIn picks the travel direction along one dimension: the only
// productive one on a mesh, the shorter way around on a torus (ties go
// Plus).
func directionIn(t *topology.Cube, cx, dx int) topology.Direction {
	if !t.Torus() {
		if dx > cx {
			return topology.Plus
		}
		return topology.Minus
	}
	fwd := (dx - cx + t.K()) % t.K() // hops going Plus
	bwd := (cx - dx + t.K()) % t.K() // hops going Minus
	if fwd <= bwd {
		return topology.Plus
	}
	return topology.Minus
}

// datelineVCs selects the dateline virtual-channel class for torus travel
// within a dimension. Travelling Plus, the dateline is the k-1 -> 0 wrap
// edge: a packet rides VC 0 until the hop that crosses the dateline; that
// hop and every later hop in the dimension ride VC 1. The Minus direction
// mirrors this around the 0 -> k-1 wrap edge. VC 0 therefore never uses a
// wrap edge and VC 1 only uses the wrap edge plus the (minimal-length)
// post-wrap prefix of the ring, so neither virtual layer can close a cycle.
func datelineVCs(t *topology.Cube, cx int, dir topology.Direction, wrapped bool, numVCs int) []int {
	if numVCs < 2 {
		panic("routing: torus dimension-order routing needs >= 2 VCs")
	}
	if wrapped {
		return []int{1}
	}
	// The hop leaving the last coordinate in the direction of travel is the
	// dateline crossing itself and already belongs to the post-wrap class.
	if (dir == topology.Plus && cx == t.K()-1) || (dir == topology.Minus && cx == 0) {
		return []int{1}
	}
	return []int{0}
}

// MinimalAdaptive is a Duato-protocol minimal-adaptive router for meshes:
// a packet may route along any productive dimension using the adaptive
// virtual channels (1..numVCs-1) and may always fall back to the escape
// virtual channel (0) restricted to the dimension-order output, which keeps
// the protocol deadlock-free. It rejects tori (escape-layer datelines would
// need a third VC, which the paper's 2-VC routers do not have).
type MinimalAdaptive struct{}

// Name implements Algorithm.
func (MinimalAdaptive) Name() string { return "adaptive" }

// Route implements Algorithm.
func (MinimalAdaptive) Route(t *topology.Cube, cur, dst, numVCs int, _ State) []Candidate {
	if t.Torus() {
		panic("routing: MinimalAdaptive supports meshes only")
	}
	if numVCs < 2 {
		panic("routing: MinimalAdaptive needs >= 2 VCs (one escape + adaptive)")
	}
	if cur == dst {
		return []Candidate{{Port: topology.LocalPort, VCs: allVCs(numVCs)}}
	}
	adaptive := allVCs(numVCs)[1:]
	var out []Candidate
	escape := -1
	for d := 0; d < t.N(); d++ {
		cx, dx := t.Coord(cur, d), t.Coord(dst, d)
		if cx == dx {
			continue
		}
		port := t.PortFor(d, directionIn(t, cx, dx))
		if escape == -1 {
			escape = port // lowest unresolved dimension = DOR output
		}
		out = append(out, Candidate{Port: port, VCs: adaptive})
	}
	// The escape VC is only admissible on the dimension-order output.
	for i := range out {
		if out[i].Port == escape {
			out[i].VCs = append([]int{0}, out[i].VCs...)
		}
	}
	return out
}

// ByName returns the named algorithm ("dor" or "adaptive").
func ByName(name string) (Algorithm, error) {
	switch name {
	case "dor", "":
		return DimensionOrder{}, nil
	case "adaptive":
		return MinimalAdaptive{}, nil
	default:
		return nil, fmt.Errorf("routing: unknown algorithm %q", name)
	}
}
