package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// walker steps a packet hop-by-hop under DOR, maintaining the dateline
// wrapped state exactly as the network layer does: set when a hop crosses a
// wrap channel, cleared when travel changes dimension.
type walker struct {
	topo *topology.Cube
	cur  int
	st   State
}

// step advances one hop toward dst and returns the (dim, dir, vcs) used.
func (w *walker) step(dst int) (dim int, dir topology.Direction, vcs []int, ok bool) {
	c := DimensionOrder{}.Route(w.topo, w.cur, dst, 2, w.st)
	if len(c) != 1 || c[0].Port == topology.LocalPort {
		return 0, 0, nil, false
	}
	dim, dir = w.topo.DimDir(c[0].Port)
	next, exists := w.topo.Neighbor(w.cur, dim, dir)
	if !exists {
		return 0, 0, nil, false
	}
	cx := w.topo.Coord(w.cur, dim)
	wrap := w.topo.Torus() &&
		((dir == topology.Plus && cx == w.topo.K()-1) || (dir == topology.Minus && cx == 0))
	w.st = w.st.Advance(dim, wrap)
	w.cur = next
	return dim, dir, c[0].VCs, true
}

func TestDORMeshXYOrder(t *testing.T) {
	m := topology.NewMesh2D(8)
	// From (0,0) to (3,2): must move +x first.
	src, dst := m.NodeAt(0, 0), m.NodeAt(3, 2)
	c := DimensionOrder{}.Route(m, src, dst, 2, NewState())
	if len(c) != 1 {
		t.Fatalf("DOR returned %d candidates, want 1", len(c))
	}
	if want := m.PortFor(0, topology.Plus); c[0].Port != want {
		t.Errorf("first hop port = %d, want +x (%d)", c[0].Port, want)
	}
	// When x is resolved, route +y.
	mid := m.NodeAt(3, 0)
	c = DimensionOrder{}.Route(m, mid, dst, 2, NewState())
	if want := m.PortFor(1, topology.Plus); c[0].Port != want {
		t.Errorf("second phase port = %d, want +y (%d)", c[0].Port, want)
	}
}

func TestDORReachesDestination(t *testing.T) {
	topos := []*topology.Cube{
		topology.NewMesh2D(8),
		topology.New(4, 2, true),
		topology.New(3, 3, false),
		topology.New(5, 2, true),
	}
	for _, topo := range topos {
		f := func(a, b uint16) bool {
			src, dst := int(a)%topo.Nodes(), int(b)%topo.Nodes()
			w := walker{topo: topo, cur: src, st: NewState()}
			for steps := 0; w.cur != dst; steps++ {
				if steps > topo.MaxDistance() {
					return false
				}
				if _, _, _, ok := w.step(dst); !ok {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", topo, err)
		}
	}
}

func TestDORMinimal(t *testing.T) {
	topo := topology.New(6, 2, true)
	f := func(a, b uint16) bool {
		src, dst := int(a)%topo.Nodes(), int(b)%topo.Nodes()
		w := walker{topo: topo, cur: src, st: NewState()}
		hops := 0
		for w.cur != dst {
			if _, _, _, ok := w.step(dst); !ok {
				return false
			}
			hops++
		}
		return hops == topo.HopDistance(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDORAtDestinationEjects(t *testing.T) {
	m := topology.NewMesh2D(4)
	c := DimensionOrder{}.Route(m, 5, 5, 2, NewState())
	if len(c) != 1 || c[0].Port != topology.LocalPort {
		t.Errorf("Route at destination = %+v, want local port", c)
	}
}

// TestTorusDatelineAcyclic verifies the core deadlock-freedom property of
// the dateline scheme: within each unidirectional ring, neither virtual
// channel class uses all k ring edges, so no VC layer can close a wait
// cycle. (With dimension order across dimensions, per-layer acyclicity
// implies global deadlock freedom.)
func TestTorusDatelineAcyclic(t *testing.T) {
	for _, k := range []int{4, 5, 8} {
		topo := topology.New(k, 2, true)
		type hop struct {
			dim  int
			dir  topology.Direction
			from int
			vc   int
		}
		used := map[hop]bool{}
		for src := 0; src < topo.Nodes(); src++ {
			for dst := 0; dst < topo.Nodes(); dst++ {
				w := walker{topo: topo, cur: src, st: NewState()}
				for w.cur != dst {
					from := w.cur
					dim, dir, vcs, ok := w.step(dst)
					if !ok {
						t.Fatalf("walk stuck %d->%d at %d", src, dst, from)
					}
					for _, vc := range vcs {
						used[hop{dim, dir, topo.Coord(from, dim), vc}] = true
					}
				}
			}
		}
		for d := 0; d < 2; d++ {
			for _, dir := range []topology.Direction{topology.Plus, topology.Minus} {
				for vc := 0; vc < 2; vc++ {
					count := 0
					for x := 0; x < k; x++ {
						if used[hop{d, dir, x, vc}] {
							count++
						}
					}
					if count >= k {
						t.Errorf("k=%d dim %d dir %v vc %d uses %d/%d ring edges: cycle possible",
							k, d, dir, vc, count, k)
					}
				}
			}
		}
	}
}

// TestTorusDatelineVC0NeverWraps checks the invariant directly: VC 0 is
// never admissible on a hop that crosses a wraparound edge.
func TestTorusDatelineVC0NeverWraps(t *testing.T) {
	topo := topology.New(5, 2, true)
	for src := 0; src < topo.Nodes(); src++ {
		for dst := 0; dst < topo.Nodes(); dst++ {
			w := walker{topo: topo, cur: src, st: NewState()}
			for w.cur != dst {
				from := w.cur
				dim, dir, vcs, _ := w.step(dst)
				cx := topo.Coord(from, dim)
				isWrap := (dir == topology.Plus && cx == topo.K()-1) ||
					(dir == topology.Minus && cx == 0)
				if isWrap {
					for _, vc := range vcs {
						if vc == 0 {
							t.Fatalf("VC0 admitted on wrap hop %d->%d", from, w.cur)
						}
					}
				}
			}
		}
	}
}

func TestAdaptiveProductiveOnly(t *testing.T) {
	m := topology.NewMesh2D(8)
	f := func(a, b uint16) bool {
		src, dst := int(a)%m.Nodes(), int(b)%m.Nodes()
		if src == dst {
			return true
		}
		cands := MinimalAdaptive{}.Route(m, src, dst, 2, NewState())
		if len(cands) == 0 {
			return false
		}
		for _, c := range cands {
			d, dir := m.DimDir(c.Port)
			next, ok := m.Neighbor(src, d, dir)
			if !ok {
				return false
			}
			// Minimal: every candidate must reduce distance.
			if m.HopDistance(next, dst) != m.HopDistance(src, dst)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdaptiveEscapeVCOnDOROutput(t *testing.T) {
	m := topology.NewMesh2D(8)
	src, dst := m.NodeAt(1, 1), m.NodeAt(4, 5)
	cands := MinimalAdaptive{}.Route(m, src, dst, 2, NewState())
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2", len(cands))
	}
	dorPort := DimensionOrder{}.Route(m, src, dst, 2, NewState())[0].Port
	foundEscape := false
	for _, c := range cands {
		hasVC0 := false
		for _, vc := range c.VCs {
			if vc == 0 {
				hasVC0 = true
			}
		}
		if hasVC0 {
			foundEscape = true
			if c.Port != dorPort {
				t.Errorf("escape VC admissible on port %d, want DOR port %d", c.Port, dorPort)
			}
		}
	}
	if !foundEscape {
		t.Error("no candidate admits the escape VC")
	}
}

func TestAdaptiveOffersBothProductivePorts(t *testing.T) {
	m := topology.NewMesh2D(8)
	src, dst := m.NodeAt(2, 2), m.NodeAt(5, 6)
	cands := MinimalAdaptive{}.Route(m, src, dst, 2, NewState())
	ports := map[int]bool{}
	for _, c := range cands {
		ports[c.Port] = true
	}
	if !ports[m.PortFor(0, topology.Plus)] || !ports[m.PortFor(1, topology.Plus)] {
		t.Errorf("candidates %+v missing a productive port", cands)
	}
}

func TestAdaptiveRejectsTorus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MinimalAdaptive on torus should panic")
		}
	}()
	MinimalAdaptive{}.Route(topology.New(4, 2, true), 0, 5, 2, NewState())
}

func TestByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want string
		err  bool
	}{
		{"dor", "dor", false},
		{"", "dor", false},
		{"adaptive", "adaptive", false},
		{"bogus", "", true},
	} {
		alg, err := ByName(tc.name)
		if tc.err {
			if err == nil {
				t.Errorf("ByName(%q) should fail", tc.name)
			}
			continue
		}
		if err != nil || alg.Name() != tc.want {
			t.Errorf("ByName(%q) = %v, %v", tc.name, alg, err)
		}
	}
}
