package link

import "math"

// NoiseModel captures the Section 2 noise discussion: supply-voltage
// reduction magnifies the link circuitry's noise sensitivity, while
// frequency reduction shrinks the ratio of timing uncertainty to bit time
// and so improves reliability. The paper's design point is that current
// links achieve a 10^-15 bit error rate across the whole 0.9-2.5 V,
// 125 MHz-1 GHz (200-700 MHz in the prototype) operating range, and the
// DVS policy assumes every level stays above the noise margin.
//
// The model treats the sampling instant as Gaussian-jittered and a bit as
// mis-sampled when the jitter exceeds half the bit time:
//
//	BER(level) = erfc( (bitTime/2) / (sqrt(2) * sigma) ) / 2
//
// with sigma the RMS timing uncertainty. It exists to *verify* the
// paper's assumption for a given jitter budget, not to inject errors into
// the simulation (the paper does not).
type NoiseModel struct {
	// JitterRMSPs is the RMS timing uncertainty in picoseconds, aggregating
	// supply noise, crosstalk and clock jitter at the receiver.
	JitterRMSPs float64
}

// BERAt reports the estimated bit error rate at a level of the table.
func (n NoiseModel) BERAt(t *Table, level int) float64 {
	bitTime := 1e12 / t.FreqHz[level] // ps; one bit per link clock
	q := bitTime / 2 / (math.Sqrt2 * n.JitterRMSPs)
	return 0.5 * math.Erfc(q)
}

// WorstLevel reports the level with the highest BER — always the fastest,
// since jitter is a larger fraction of a shorter bit.
func (n NoiseModel) WorstLevel(t *Table) int { return t.Top() }

// MeetsBudget reports whether every level's estimated BER stays at or
// below the target (the paper's 10^-15).
func (n NoiseModel) MeetsBudget(t *Table, target float64) bool {
	return n.BERAt(t, n.WorstLevel(t)) <= target
}

// MaxJitterPsFor reports the largest RMS jitter under which the table's
// fastest level still meets the BER target — the timing budget a link
// designer reads off this model.
func MaxJitterPsFor(t *Table, target float64) float64 {
	// Bisect sigma: BER at the fastest level is monotone in the jitter.
	lo, hi := 0.0, 1e12/t.FreqHz[t.Top()]
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if (NoiseModel{JitterRMSPs: mid}).BERAt(t, t.Top()) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
