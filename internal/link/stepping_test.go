package link

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// transitionSpan is how long a one-level transition takes: the 10 us
// voltage ramp plus 100 cycles of the target clock, in either order
// depending on direction.
func transitionSpan(tab *Table, target int) sim.Time {
	return 10*sim.Microsecond + 100*tab.Period[target]
}

// TestOneLevelPerWindow sweeps every (level, direction) pair and checks the
// per-window stepping contract the DVS policy relies on: a legal request is
// accepted, any further request is refused until the transition completes,
// and completion lands exactly one level away — never two, no matter how
// often the policy asks.
func TestOneLevelPerWindow(t *testing.T) {
	tab := paperTable(t)
	for lvl := 0; lvl <= tab.Top(); lvl++ {
		for _, up := range []bool{true, false} {
			dir := "down"
			if up {
				dir = "up"
			}
			t.Run(fmt.Sprintf("level%d_%s", lvl, dir), func(t *testing.T) {
				var sched sim.Scheduler
				l := NewDVSLink(tab, &sched, lvl)
				legal := (up && lvl < tab.Top()) || (!up && lvl > 0)
				if got := l.RequestStep(0, up); got != legal {
					t.Fatalf("RequestStep(%s) from level %d = %v, want %v", dir, lvl, got, legal)
				}
				if !legal {
					if l.State() != Functional || l.Level() != lvl {
						t.Fatalf("refused request disturbed the link: state=%v level=%d", l.State(), l.Level())
					}
					return
				}
				target := lvl + 1
				if !up {
					target = lvl - 1
				}
				// While the transition is in flight, both directions refuse.
				if l.RequestStep(0, true) || l.RequestStep(0, false) {
					t.Fatal("second step accepted mid-transition")
				}
				sched.RunUntil(transitionSpan(tab, target) + 1)
				if l.State() != Functional {
					t.Fatalf("transition not complete after its span: state=%v", l.State())
				}
				if l.Level() != target {
					t.Fatalf("level = %d after one window, want exactly %d (one step)", l.Level(), target)
				}
				// A fresh window may step again (if still in range).
				now := sched.Now()
				if wantNext := (up && target < tab.Top()) || (!up && target > 0); l.RequestStep(now, up) != wantNext {
					t.Fatalf("post-transition RequestStep(%s) from level %d != %v", dir, target, wantNext)
				}
			})
		}
	}
}

// TestFullRangeWalkIsStepwise climbs from the bottom level to the top and
// back down, one window at a time, asserting the link visits every
// intermediate level in order: n levels of headroom always cost n windows.
func TestFullRangeWalkIsStepwise(t *testing.T) {
	tab := paperTable(t)
	var sched sim.Scheduler
	l := NewDVSLink(tab, &sched, 0)

	for _, up := range []bool{true, false} {
		span := tab.Top() // number of single-level windows to cross the range
		for i := 0; i < span; i++ {
			from := l.Level()
			want := from + 1
			if !up {
				want = from - 1
			}
			if !l.RequestStep(sched.Now(), up) {
				t.Fatalf("step %d (up=%v) refused at level %d", i, up, from)
			}
			sched.RunUntil(sched.Now() + transitionSpan(tab, want) + 1)
			if l.Level() != want || l.State() != Functional {
				t.Fatalf("step %d (up=%v): level=%d state=%v, want functional level %d",
					i, up, l.Level(), l.State(), want)
			}
		}
		edge := tab.Top()
		if !up {
			edge = 0
		}
		if l.Level() != edge {
			t.Fatalf("walk (up=%v) ended at level %d, want %d", up, l.Level(), edge)
		}
		// At the range edge the same direction refuses.
		if l.RequestStep(sched.Now(), up) {
			t.Fatalf("step past the range edge accepted at level %d", l.Level())
		}
	}
}
