package link

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func paperTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable(NewParams())
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestTableEndpointsMatchPaper(t *testing.T) {
	tab := paperTable(t)
	p := tab.Params
	// Corner frequencies and voltages.
	if tab.FreqHz[0] != 125e6 || tab.FreqHz[tab.Top()] != 1e9 {
		t.Errorf("frequency corners = %g, %g", tab.FreqHz[0], tab.FreqHz[tab.Top()])
	}
	if tab.Volt[0] != 0.9 || tab.Volt[tab.Top()] != 2.5 {
		t.Errorf("voltage corners = %g, %g", tab.Volt[0], tab.Volt[tab.Top()])
	}
	// Per-serial-link corner powers must reproduce 23.6 mW and 200 mW.
	perLink0 := tab.PowerW[0] / float64(p.SerialLinks)
	perLinkTop := tab.PowerW[tab.Top()] / float64(p.SerialLinks)
	if math.Abs(perLink0-0.0236) > 1e-9 {
		t.Errorf("bottom per-link power = %g W, want 0.0236", perLink0)
	}
	if math.Abs(perLinkTop-0.200) > 1e-9 {
		t.Errorf("top per-link power = %g W, want 0.200", perLinkTop)
	}
	// Channel at top level: 8 * 200 mW = 1.6 W (paper's 0.2 W * 8 links).
	if math.Abs(tab.PowerW[tab.Top()]-1.6) > 1e-9 {
		t.Errorf("top channel power = %g W, want 1.6", tab.PowerW[tab.Top()])
	}
}

func TestTableMonotone(t *testing.T) {
	tab := paperTable(t)
	for i := 1; i < tab.Params.Levels; i++ {
		if tab.FreqHz[i] <= tab.FreqHz[i-1] {
			t.Errorf("frequency not increasing at level %d", i)
		}
		if tab.Volt[i] <= tab.Volt[i-1] {
			t.Errorf("voltage not increasing at level %d", i)
		}
		if tab.PowerW[i] <= tab.PowerW[i-1] {
			t.Errorf("power not increasing at level %d", i)
		}
		if tab.Period[i] >= tab.Period[i-1] {
			t.Errorf("period not decreasing at level %d", i)
		}
	}
	// The whole point of DVS: top/bottom power ratio is large (paper cites
	// a potential ~10X improvement from 197/21 mW on the prototype; our
	// fitted corners give 200/23.6 = 8.5X).
	ratio := tab.PowerW[tab.Top()] / tab.PowerW[0]
	if ratio < 8 || ratio > 9 {
		t.Errorf("power dynamic range = %.2fX, want ~8.5X", ratio)
	}
}

func TestPeriods(t *testing.T) {
	tab := paperTable(t)
	if tab.Period[tab.Top()] != sim.Nanosecond {
		t.Errorf("top period = %v, want 1ns", tab.Period[tab.Top()])
	}
	if tab.Period[0] != 8*sim.Nanosecond {
		t.Errorf("bottom period = %v, want 8ns", tab.Period[0])
	}
}

func TestTransitionEnergy(t *testing.T) {
	tab := paperTable(t)
	// Full-swing sanity: (1-0.9) * 5uF * (2.5^2 - 0.9^2) = 2.72 uJ.
	got := tab.TransitionEnergyJ(0, tab.Top())
	want := 0.1 * 5e-6 * (2.5*2.5 - 0.9*0.9)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("full-swing transition energy = %g, want %g", got, want)
	}
	// Symmetric in direction.
	if tab.TransitionEnergyJ(3, 4) != tab.TransitionEnergyJ(4, 3) {
		t.Error("transition energy not symmetric")
	}
}

func TestNewTableRejectsBadParams(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.Levels = 1 },
		func(p *Params) { p.MinFreqHz = 0 },
		func(p *Params) { p.MaxFreqHz = p.MinFreqHz },
		func(p *Params) { p.MinVolt = -1 },
		func(p *Params) { p.MaxPowerW = p.MinPowerW / 2 },
		func(p *Params) { p.SerialLinks = 0 },
		func(p *Params) { p.VoltTransition = -1 },
		func(p *Params) { p.RegulatorEff = 1.5 },
	}
	for i, mutate := range bad {
		p := NewParams()
		mutate(&p)
		if _, err := NewTable(p); err == nil {
			t.Errorf("case %d: NewTable accepted invalid params", i)
		}
	}
}

func TestSendSerialization(t *testing.T) {
	var sched sim.Scheduler
	tab := paperTable(t)
	l := NewDVSLink(tab, &sched, 0) // 125 MHz: 8 ns per flit
	if !l.CanSend(0) {
		t.Fatal("idle link refuses send")
	}
	if d := l.Send(0); d != 8*sim.Nanosecond {
		t.Errorf("serialization = %v, want 8ns", d)
	}
	if l.CanSend(7 * sim.Nanosecond) {
		t.Error("link available while flit still serializing")
	}
	if !l.CanSend(8 * sim.Nanosecond) {
		t.Error("link not available after serialization")
	}
}

func TestUtilizationWindow(t *testing.T) {
	var sched sim.Scheduler
	l := NewDVSLink(paperTable(t), &sched, 9) // 1 GHz
	for i := sim.Time(0); i < 10; i++ {
		l.Send(i * sim.Nanosecond)
	}
	if got, dead := l.TakeUtilization(10 * sim.Nanosecond); got != 10*sim.Nanosecond || dead != 0 {
		t.Errorf("window busy = %v dead = %v, want 10ns, 0", got, dead)
	}
	if got, _ := l.TakeUtilization(10 * sim.Nanosecond); got != 0 {
		t.Errorf("window not reset: %v", got)
	}
}

func TestUpTransitionSequence(t *testing.T) {
	var sched sim.Scheduler
	tab := paperTable(t)
	l := NewDVSLink(tab, &sched, 0)
	if !l.RequestStep(0, true) {
		t.Fatal("up step refused")
	}
	// Voltage ramps first: link functional, old frequency, for 10 us.
	if l.State() != VoltRamping {
		t.Fatalf("state = %v, want volt-ramping", l.State())
	}
	if !l.CanSend(0) {
		t.Error("link should function during voltage ramp")
	}
	if l.Level() != 0 {
		t.Error("frequency changed before voltage ramp finished")
	}
	// Run to just past the voltage ramp: frequency lock begins, link dead.
	sched.RunUntil(10*sim.Microsecond + 1)
	if l.State() != FreqLocking {
		t.Fatalf("state after ramp = %v, want freq-locking", l.State())
	}
	if l.CanSend(sched.Now()) {
		t.Error("link should be dead during frequency lock")
	}
	// Lock takes 100 cycles of the target clock (level 1 ~ 222 MHz).
	lockDur := 100 * tab.Period[1]
	sched.RunUntil(10*sim.Microsecond + lockDur + 1)
	if l.State() != Functional || l.Level() != 1 {
		t.Fatalf("after lock: state=%v level=%d, want functional level 1", l.State(), l.Level())
	}
	if !l.CanSend(sched.Now()) {
		t.Error("link dead after completed transition")
	}
}

func TestDownTransitionSequence(t *testing.T) {
	var sched sim.Scheduler
	tab := paperTable(t)
	l := NewDVSLink(tab, &sched, 9)
	if !l.RequestStep(0, false) {
		t.Fatal("down step refused")
	}
	// Frequency drops first: link dead while locking at the new frequency.
	if l.State() != FreqLocking {
		t.Fatalf("state = %v, want freq-locking", l.State())
	}
	lockDur := 100 * tab.Period[8]
	sched.RunUntil(lockDur + 1)
	// Now voltage ramps down; the link functions at the new frequency.
	if l.State() != VoltRamping || l.Level() != 8 {
		t.Fatalf("after lock: state=%v level=%d, want volt-ramping level 8", l.State(), l.Level())
	}
	if !l.CanSend(sched.Now()) {
		t.Error("link should function during downward voltage ramp")
	}
	sched.RunUntil(lockDur + 10*sim.Microsecond + 1)
	if l.State() != Functional || l.Level() != 8 {
		t.Fatalf("final: state=%v level=%d", l.State(), l.Level())
	}
}

func TestTransitionRefusals(t *testing.T) {
	var sched sim.Scheduler
	tab := paperTable(t)
	l := NewDVSLink(tab, &sched, 0)
	if l.RequestStep(0, false) {
		t.Error("down step below bottom level accepted")
	}
	top := NewDVSLink(tab, &sched, tab.Top())
	if top.RequestStep(0, true) {
		t.Error("up step above top level accepted")
	}
	l.RequestStep(0, true)
	if l.RequestStep(1, true) {
		t.Error("second step accepted while transition in flight")
	}
}

func TestEnergyAccrual(t *testing.T) {
	var sched sim.Scheduler
	tab := paperTable(t)
	l := NewDVSLink(tab, &sched, tab.Top())
	// 1 ms at 1.6 W = 1.6 mJ.
	got := l.EnergyJ(sim.Millisecond)
	if math.Abs(got-1.6e-3) > 1e-9 {
		t.Errorf("energy over 1ms at top = %g J, want 1.6e-3", got)
	}
}

func TestEnergyIncludesTransitionOverhead(t *testing.T) {
	var sched sim.Scheduler
	tab := paperTable(t)
	l := NewDVSLink(tab, &sched, 5)
	l.RequestStep(0, true)
	sched.RunUntil(20 * sim.Microsecond) // transition completes
	st := l.StatsAt(sched.Now())
	if st.Transitions != 1 {
		t.Fatalf("transitions = %d, want 1", st.Transitions)
	}
	want := tab.TransitionEnergyJ(5, 6)
	if math.Abs(st.TransitionEnergy-want) > 1e-12 {
		t.Errorf("transition energy = %g, want %g", st.TransitionEnergy, want)
	}
	if st.EnergyJ <= st.TransitionEnergy {
		t.Error("total energy should include operating power on top of overhead")
	}
}

func TestEnergyMonotone(t *testing.T) {
	var sched sim.Scheduler
	tab := paperTable(t)
	l := NewDVSLink(tab, &sched, 3)
	f := func(a, b uint32) bool {
		t1 := sim.Time(a % 1000000)
		t2 := t1 + sim.Time(b%1000000)
		if t2 < sched.Now() || t1 < sched.Now() {
			return true
		}
		e1 := l.EnergyJ(t1)
		e2 := l.EnergyJ(t2)
		return e2 >= e1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerDuringTransitionIsConservative(t *testing.T) {
	var sched sim.Scheduler
	tab := paperTable(t)
	l := NewDVSLink(tab, &sched, 4)
	before := l.PowerW()
	l.RequestStep(0, true) // volt ramps to level-5 voltage immediately
	during := l.PowerW()
	if during <= before {
		t.Errorf("power during upward ramp = %g, want > steady %g", during, before)
	}
	// After completion, power equals the level-5 table entry.
	sched.RunUntil(20 * sim.Microsecond)
	if math.Abs(l.PowerW()-tab.PowerW[5]) > 1e-12 {
		t.Errorf("settled power = %g, want %g", l.PowerW(), tab.PowerW[5])
	}
}

func TestTimeAtLevelAccounting(t *testing.T) {
	var sched sim.Scheduler
	tab := paperTable(t)
	l := NewDVSLink(tab, &sched, 9)
	sched.RunUntil(100 * sim.Microsecond)
	l.RequestStep(sched.Now(), false)
	sched.RunUntil(300 * sim.Microsecond)
	st := l.StatsAt(sched.Now())
	total := sim.Duration(0)
	for _, d := range st.TimeAtLevel {
		total += d
	}
	if total != 300*sim.Microsecond {
		t.Errorf("time-at-level sums to %v, want 300us", total)
	}
	if st.TimeAtLevel[9] < 100*sim.Microsecond {
		t.Errorf("time at level 9 = %v, want >= 100us", st.TimeAtLevel[9])
	}
	if st.TimeAtLevel[8] == 0 {
		t.Error("no time recorded at level 8 after downward step")
	}
}

func TestDownTransitionChargesEnergy(t *testing.T) {
	var sched sim.Scheduler
	tab := paperTable(t)
	l := NewDVSLink(tab, &sched, 5)
	l.RequestStep(0, false)
	sched.RunUntil(20 * sim.Microsecond)
	st := l.StatsAt(sched.Now())
	want := tab.TransitionEnergyJ(5, 4)
	if math.Abs(st.TransitionEnergy-want) > 1e-12 {
		t.Errorf("downward transition energy = %g, want %g", st.TransitionEnergy, want)
	}
}

// TestStateMachineProperty drives a link with random step requests and
// time advances, checking invariants after every event: the level stays in
// range, energy is monotone, time-at-level accounts for all elapsed time,
// and the link always returns to Functional after a bounded wait.
func TestStateMachineProperty(t *testing.T) {
	tab := paperTable(t)
	rng := sim.NewRNG(99)
	var sched sim.Scheduler
	l := NewDVSLink(tab, &sched, 5)
	lastEnergy := 0.0
	for i := 0; i < 2000; i++ {
		switch rng.Intn(3) {
		case 0:
			l.RequestStep(sched.Now(), rng.Intn(2) == 0)
		case 1:
			if l.CanSend(sched.Now()) {
				l.Send(sched.Now())
			}
		case 2:
			sched.RunUntil(sched.Now() + sim.Time(rng.Intn(5000))*sim.Nanosecond)
		}
		if lv := l.Level(); lv < 0 || lv >= tab.Params.Levels {
			t.Fatalf("level %d out of range", lv)
		}
		if e := l.EnergyJ(sched.Now()); e < lastEnergy {
			t.Fatalf("energy decreased: %g -> %g", lastEnergy, e)
		} else {
			lastEnergy = e
		}
	}
	// Any in-flight transition completes within one volt ramp + max lock.
	sched.RunUntil(sched.Now() + 20*sim.Microsecond)
	if l.State() != Functional {
		t.Fatalf("link stuck in %v after settling time", l.State())
	}
	st := l.StatsAt(sched.Now())
	var total sim.Duration
	for _, d := range st.TimeAtLevel {
		total += d
	}
	if total != sched.Now() {
		t.Errorf("time-at-level sums to %v, want %v", total, sched.Now())
	}
}

// TestUtilizationNeverExceedsFunctionalTime: across random traffic and
// transitions, the busy window can never exceed the functional window.
func TestUtilizationNeverExceedsFunctionalTime(t *testing.T) {
	tab := paperTable(t)
	rng := sim.NewRNG(123)
	var sched sim.Scheduler
	l := NewDVSLink(tab, &sched, 9)
	window := 200 * sim.Nanosecond
	for w := 0; w < 200; w++ {
		start := sched.Now()
		for sched.Now() < start+window {
			if rng.Intn(3) == 0 && l.CanSend(sched.Now()) {
				l.Send(sched.Now())
			}
			if rng.Intn(50) == 0 {
				l.RequestStep(sched.Now(), rng.Intn(2) == 0)
			}
			sched.RunUntil(sched.Now() + sim.Time(1+rng.Intn(20))*sim.Nanosecond)
		}
		busy, dead := l.TakeUtilization(sched.Now())
		if dead < 0 || busy < 0 {
			t.Fatalf("negative window accounting: busy=%v dead=%v", busy, dead)
		}
	}
}

func TestNoiseModelShape(t *testing.T) {
	tab := paperTable(t)
	n := NoiseModel{JitterRMSPs: 40}
	// Reliability improves (BER falls) as frequency falls — the paper's
	// "frequency reduction improves communication reliability".
	prev := math.Inf(1)
	for lvl := tab.Top(); lvl >= 0; lvl-- {
		ber := n.BERAt(tab, lvl)
		if ber > prev {
			t.Fatalf("BER rose when slowing to level %d", lvl)
		}
		prev = ber
	}
	if n.WorstLevel(tab) != tab.Top() {
		t.Error("worst level should be the fastest")
	}
}

func TestNoiseBudgetAtPaperDesignPoint(t *testing.T) {
	tab := paperTable(t)
	// With a tight jitter budget the whole range meets the paper's 1e-15.
	tight := NoiseModel{JitterRMSPs: 50}
	if !tight.MeetsBudget(tab, 1e-15) {
		t.Error("50 ps RMS jitter should meet 1e-15 across the range")
	}
	// A sloppy receiver does not.
	sloppy := NoiseModel{JitterRMSPs: 120}
	if sloppy.MeetsBudget(tab, 1e-15) {
		t.Error("120 ps RMS jitter should fail 1e-15 at 1 GHz")
	}
	// The budget inverter is consistent with the forward model.
	budget := MaxJitterPsFor(tab, 1e-15)
	if budget <= 50 || budget >= 120 {
		t.Errorf("max jitter budget = %.1f ps, expected between 50 and 120", budget)
	}
	at := NoiseModel{JitterRMSPs: budget * 0.99}
	if !at.MeetsBudget(tab, 1e-15) {
		t.Error("just inside the budget should pass")
	}
}
