package link

import (
	"fmt"

	"repro/internal/sim"
)

// State is the operating condition of a DVS link.
type State uint8

const (
	// Functional: the link relays flits at the current level.
	Functional State = iota
	// VoltRamping: the regulator is moving the supply voltage; the link
	// keeps relaying flits at its current frequency.
	VoltRamping
	// FreqLocking: the receiver is re-locking to a new clock; the link is
	// dead and relays nothing.
	FreqLocking
)

func (s State) String() string {
	switch s {
	case Functional:
		return "functional"
	case VoltRamping:
		return "volt-ramping"
	case FreqLocking:
		return "freq-locking"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// DVSLink is one directed network channel under dynamic voltage scaling:
// eight serial links moved together by a shared regulator. It tracks its
// own clock domain, transition state machine, utilization window and
// energy ledger.
//
// All methods take the current simulation time; the link accrues energy
// lazily so idle links cost no per-cycle work.
type DVSLink struct {
	table *Table
	sched *sim.Scheduler

	level  int     // operating level (frequency the link currently runs at)
	volt   float64 // present supply voltage (tracks transitions conservatively)
	state  State
	target int // level being transitioned to (== level when Functional)
	from   int // level the in-flight transition started from

	busyUntil sim.Time // serialization: one flit occupies the channel per link clock
	deadUntil sim.Time // end of the current frequency-locking interval

	// Utilization window accounting for the DVS policy (paper Eq. 2): busy
	// and dead (frequency-locking) picoseconds since the window was last
	// taken. The policy divides busy by functional time, because no link
	// clock cycles exist while the receiver is re-locking.
	windowBusy sim.Duration
	windowDead sim.Duration
	deadStart  sim.Time

	// Energy ledger.
	lastAccrued      sim.Time
	energyJ          float64
	transitionEnergy float64
	transitions      int
	timeAtLevel      []sim.Duration
	flitsSent        int64

	// Dispatch key of the in-flight transition's pending completion event.
	// A checkpoint restore re-arms the event under the same key so the
	// forked scheduler dispatches it in the original order.
	pendAt  sim.Time
	pendSeq int64
}

// NewDVSLink returns a link at startLevel. sched drives transition
// completion events.
func NewDVSLink(t *Table, sched *sim.Scheduler, startLevel int) *DVSLink {
	if startLevel < 0 || startLevel >= t.Params.Levels {
		panic(fmt.Sprintf("link: start level %d outside [0,%d)", startLevel, t.Params.Levels))
	}
	return &DVSLink{
		table:       t,
		sched:       sched,
		level:       startLevel,
		volt:        t.Volt[startLevel],
		target:      startLevel,
		lastAccrued: sched.Now(),
		timeAtLevel: make([]sim.Duration, t.Params.Levels),
	}
}

// Table reports the level table the link was built with.
func (l *DVSLink) Table() *Table { return l.table }

// Level reports the current operating level.
func (l *DVSLink) Level() int { return l.level }

// TargetLevel reports the level of an in-flight transition (== Level when
// not transitioning).
func (l *DVSLink) TargetLevel() int { return l.target }

// State reports the link's operating condition.
func (l *DVSLink) State() State { return l.state }

// Volt reports the present supply voltage. During a transition it tracks
// the regulator conservatively (the voltage of whichever endpoint level is
// higher while the frequency change is in flight).
func (l *DVSLink) Volt() float64 { return l.volt }

// TransitionFrom reports the level the in-flight transition started from;
// stale once the link returns to Functional. Exposed for the runtime
// invariant audit (internal/audit).
func (l *DVSLink) TransitionFrom() int { return l.from }

// Transitioning reports whether a level change is in flight. Every
// in-flight transition keeps a completion event pending in the scheduler,
// so the network's quiescent fast-forward can never jump past a
// transition edge: the pending event bounds the jump.
func (l *DVSLink) Transitioning() bool { return l.state != Functional }

// Period reports the current link clock period — also the serialization
// time of one flit, since the channel moves one flit per link clock.
func (l *DVSLink) Period() sim.Duration { return l.table.Period[l.level] }

// CanSend reports whether a flit could start crossing the link at now: the
// link must be functional and the previous flit must have cleared.
func (l *DVSLink) CanSend(now sim.Time) bool {
	return l.state != FreqLocking && now >= l.busyUntil
}

// EarliestSend reports the earliest instant a flit could start crossing
// the link: the previous flit must have cleared the serializer, and a
// frequency-locking interval blocks sends until it ends. A voltage ramp
// does not block, and transitions requested after this call can only delay
// sends further, so the result is a conservative lower bound on the next
// send — the per-edge term of the tile engine's extracted lookahead.
func (l *DVSLink) EarliestSend() sim.Time {
	t := l.busyUntil
	if l.state == FreqLocking && l.deadUntil > t {
		t = l.deadUntil
	}
	return t
}

// Send starts a flit across the link at now and returns the serialization
// delay after which it arrives downstream. The caller must have checked
// CanSend.
func (l *DVSLink) Send(now sim.Time) sim.Duration {
	if !l.CanSend(now) {
		panic("link: Send while busy or dead")
	}
	p := l.Period()
	l.busyUntil = now + p
	l.windowBusy += p
	l.flitsSent++
	return p
}

// TakeUtilization returns the busy serialization time and the dead
// (frequency-locking) time accumulated since the previous call, and resets
// the window. The DVS policy computes the paper's link utilization LU as
// busy over functional time — dead time contributes no link clock cycles
// to Eq. 2's denominator.
func (l *DVSLink) TakeUtilization(now sim.Time) (busy, dead sim.Duration) {
	if l.state == FreqLocking && now > l.deadStart {
		l.windowDead += now - l.deadStart
		l.deadStart = now
	}
	b, d := l.windowBusy, l.windowDead
	l.windowBusy, l.windowDead = 0, 0
	return b, d
}

// RequestStep starts a one-level transition (up = faster) and reports
// whether it was accepted. Requests are refused while another transition is
// in flight or at the range ends. Per the paper's model:
//
//	speeding up: voltage ramps first (link functional), then the frequency
//	             locks (link dead);
//	slowing down: the frequency locks first (link dead), then the voltage
//	             ramps down (link functional at the new, lower frequency).
func (l *DVSLink) RequestStep(now sim.Time, up bool) bool {
	if l.state != Functional {
		return false
	}
	target := l.level - 1
	if up {
		target = l.level + 1
	}
	if target < 0 || target >= l.table.Params.Levels {
		return false
	}
	l.accrue(now)
	l.from = l.level
	l.target = target
	l.transitions++
	if up {
		// Voltage first. Conservatively burn power at the higher voltage
		// for the whole ramp.
		l.state = VoltRamping
		l.volt = l.table.Volt[target]
		l.pendAt = now + l.table.Params.VoltTransition
		l.pendSeq = l.sched.At(l.pendAt, l.voltRampDone)
	} else {
		l.startFreqLock(now)
	}
	return true
}

// startFreqLock begins the receiver re-lock interval at the target
// frequency; the link operates at the target frequency once the lock
// completes, and is dead meanwhile.
func (l *DVSLink) startFreqLock(now sim.Time) {
	l.accrue(now)
	l.state = FreqLocking
	l.deadStart = now
	dead := sim.Duration(l.table.Params.FreqTransitionCycles) * l.table.Period[l.target]
	l.deadUntil = now + dead
	l.pendAt = l.deadUntil
	l.pendSeq = l.sched.At(l.deadUntil, l.freqLockDone)
}

// voltRampDone finishes the voltage phase of an upward transition and
// starts the frequency lock.
func (l *DVSLink) voltRampDone() {
	now := l.sched.Now()
	l.accrue(now)
	l.chargeTransition()
	l.startFreqLock(now)
}

// freqLockDone finishes a frequency lock. Upward transitions are complete;
// downward transitions continue with the voltage ramp.
func (l *DVSLink) freqLockDone() {
	now := l.sched.Now()
	l.accrue(now)
	if now > l.deadStart {
		l.windowDead += now - l.deadStart
		l.deadStart = now
	}
	goingUp := l.target > l.level
	l.level = l.target
	if l.busyUntil < now {
		l.busyUntil = now
	}
	if goingUp {
		l.state = Functional
		return
	}
	// Slowing down: ramp the voltage down now; the link keeps relaying at
	// the new frequency while the regulator discharges.
	l.state = VoltRamping
	l.pendAt = now + l.table.Params.VoltTransition
	l.pendSeq = l.sched.At(l.pendAt, l.voltDownDone)
}

// voltDownDone completes a downward transition.
func (l *DVSLink) voltDownDone() {
	l.accrue(l.sched.Now())
	l.chargeTransition()
	l.volt = l.table.Volt[l.level]
	l.state = Functional
}

// chargeTransition books the Stratakos regulator overhead for the voltage
// swing between the pre- and post-transition levels.
func (l *DVSLink) chargeTransition() {
	e := l.table.TransitionEnergyJ(l.from, l.target)
	l.energyJ += e
	l.transitionEnergy += e
}

// PowerW reports instantaneous channel power: the fitted model evaluated at
// the present (voltage, frequency) operating point. During transitions the
// voltage is held at the higher of the two levels' voltages, which is
// conservative in exactly the way the paper's assumptions are.
func (l *DVSLink) PowerW() float64 {
	return l.table.ChannelPowerAt(l.volt, l.table.FreqHz[l.level])
}

// accrue integrates energy up to now.
func (l *DVSLink) accrue(now sim.Time) {
	if now <= l.lastAccrued {
		return
	}
	dt := now - l.lastAccrued
	l.energyJ += l.PowerW() * dt.Seconds()
	l.timeAtLevel[l.level] += dt
	l.lastAccrued = now
}

// EnergyJ reports total channel energy (operating + transition overhead)
// accrued through now.
func (l *DVSLink) EnergyJ(now sim.Time) float64 {
	l.accrue(now)
	return l.energyJ
}

// Stats is a snapshot of a link's lifetime counters.
type Stats struct {
	Level            int
	State            State
	FlitsSent        int64
	Transitions      int
	EnergyJ          float64
	TransitionEnergy float64
	TimeAtLevel      []sim.Duration
}

// CheckpointState is the complete serializable state of one DVS link:
// level/voltage/state machine, serialization and dead-time clocks, the
// utilization window, the energy ledger, and the dispatch key of the
// pending transition-completion event (zero when Functional). Restoring it
// into a fresh link on a fresh scheduler reproduces the original link's
// behaviour exactly.
type CheckpointState struct {
	Level  int
	Target int
	From   int
	State  State
	Volt   float64

	BusyUntil sim.Time
	DeadUntil sim.Time
	DeadStart sim.Time

	WindowBusy sim.Duration
	WindowDead sim.Duration

	LastAccrued      sim.Time
	EnergyJ          float64
	TransitionEnergy float64
	Transitions      int
	TimeAtLevel      []sim.Duration
	FlitsSent        int64

	PendAt  sim.Time
	PendSeq int64
}

// Checkpoint captures the link's complete state without accruing energy:
// the lazy ledger is part of the state, so capture must not touch it or a
// forked run would accrue a window the straight run accrues later.
func (l *DVSLink) Checkpoint() CheckpointState {
	tl := make([]sim.Duration, len(l.timeAtLevel))
	copy(tl, l.timeAtLevel)
	return CheckpointState{
		Level:            l.level,
		Target:           l.target,
		From:             l.from,
		State:            l.state,
		Volt:             l.volt,
		BusyUntil:        l.busyUntil,
		DeadUntil:        l.deadUntil,
		DeadStart:        l.deadStart,
		WindowBusy:       l.windowBusy,
		WindowDead:       l.windowDead,
		LastAccrued:      l.lastAccrued,
		EnergyJ:          l.energyJ,
		TransitionEnergy: l.transitionEnergy,
		Transitions:      l.transitions,
		TimeAtLevel:      tl,
		FlitsSent:        l.flitsSent,
		PendAt:           l.pendAt,
		PendSeq:          l.pendSeq,
	}
}

// Restore overwrites the link's state with a checkpoint and, when a
// transition is in flight, re-arms the pending completion event under its
// captured dispatch key. Which callback to arm is fully determined by the
// state machine: FreqLocking always waits for freqLockDone; VoltRamping
// waits for voltRampDone while the level still differs from the target
// (upward, voltage phase) and for voltDownDone once they agree (downward,
// final ramp). The scheduler's sequence counter must already cover PendSeq
// (see sim.Scheduler.SetSeqCounter).
func (l *DVSLink) Restore(st CheckpointState) error {
	levels := l.table.Params.Levels
	if st.Level < 0 || st.Level >= levels {
		return fmt.Errorf("link: restore level %d outside [0,%d)", st.Level, levels)
	}
	if st.Target < 0 || st.Target >= levels {
		return fmt.Errorf("link: restore target %d outside [0,%d)", st.Target, levels)
	}
	if st.From < 0 || st.From >= levels {
		return fmt.Errorf("link: restore from-level %d outside [0,%d)", st.From, levels)
	}
	if st.State > FreqLocking {
		return fmt.Errorf("link: restore with unknown state %d", uint8(st.State))
	}
	if len(st.TimeAtLevel) != levels {
		return fmt.Errorf("link: restore with %d per-level durations, want %d", len(st.TimeAtLevel), levels)
	}
	if st.State == Functional != (st.PendSeq == 0) {
		return fmt.Errorf("link: restore state %v inconsistent with pending seq %d", st.State, st.PendSeq)
	}
	l.level = st.Level
	l.target = st.Target
	l.from = st.From
	l.state = st.State
	l.volt = st.Volt
	l.busyUntil = st.BusyUntil
	l.deadUntil = st.DeadUntil
	l.deadStart = st.DeadStart
	l.windowBusy = st.WindowBusy
	l.windowDead = st.WindowDead
	l.lastAccrued = st.LastAccrued
	l.energyJ = st.EnergyJ
	l.transitionEnergy = st.TransitionEnergy
	l.transitions = st.Transitions
	copy(l.timeAtLevel, st.TimeAtLevel)
	l.flitsSent = st.FlitsSent
	l.pendAt = st.PendAt
	l.pendSeq = st.PendSeq
	switch {
	case l.state == Functional:
	case l.state == FreqLocking:
		l.sched.AtSeq(l.pendAt, l.pendSeq, l.freqLockDone)
	case l.target != l.level:
		l.sched.AtSeq(l.pendAt, l.pendSeq, l.voltRampDone)
	default:
		l.sched.AtSeq(l.pendAt, l.pendSeq, l.voltDownDone)
	}
	return nil
}

// StatsAt reports the link's counters accrued through now.
func (l *DVSLink) StatsAt(now sim.Time) Stats {
	l.accrue(now)
	tl := make([]sim.Duration, len(l.timeAtLevel))
	copy(tl, l.timeAtLevel)
	return Stats{
		Level:            l.level,
		State:            l.state,
		FlitsSent:        l.flitsSent,
		Transitions:      l.transitions,
		EnergyJ:          l.energyJ,
		TransitionEnergy: l.transitionEnergy,
		TimeAtLevel:      tl,
	}
}
