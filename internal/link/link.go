// Package link models the paper's DVS communication links (Section 2): a
// network channel of eight serial links fed by one adaptive power-supply
// regulator, supporting ten discrete frequency/voltage levels.
//
// The model captures the four DVS-link characteristics the paper names:
//
//   - transition time: voltage transitions between adjacent levels take
//     VoltTransition (10 us by default); frequency transitions take
//     FreqTransitionCycles link clock cycles (100 by default);
//   - transition energy: the Stratakos first-order estimate
//     (1-eta) * C * |V2^2 - V1^2| per voltage transition;
//   - transition status: the link keeps functioning during voltage
//     transitions but is dead while the receiver re-locks during frequency
//     transitions;
//   - transition step: only adjacent-level steps are supported, and when
//     speeding up the voltage rises before the frequency, while when
//     slowing down the frequency drops before the voltage.
package link

import (
	"fmt"

	"repro/internal/sim"
)

// Params describes a DVS link design. NewParams fills in the paper's
// values; zero values are rejected by Table.
type Params struct {
	// Levels is the number of discrete frequency/voltage operating points.
	Levels int
	// MinFreqHz and MaxFreqHz bound the per-serial-link clock (levels are
	// uniformly spaced in frequency between them).
	MinFreqHz, MaxFreqHz float64
	// MinVolt and MaxVolt bound the supply voltage (uniformly spaced).
	MinVolt, MaxVolt float64
	// MinPowerW and MaxPowerW are per-serial-link power at the two corner
	// operating points; the intermediate levels follow the fitted model
	// P(V,f) = a*V^2*f + b*V that passes through both corners.
	MinPowerW, MaxPowerW float64
	// SerialLinks is the number of serial links sharing the channel and its
	// regulator (the paper's channels have eight).
	SerialLinks int
	// VoltTransition is the wall-clock duration of an adjacent-level
	// voltage transition.
	VoltTransition sim.Duration
	// FreqTransitionCycles is the duration of an adjacent-level frequency
	// transition in cycles of the target link clock; the link is dead
	// (receiver re-locking) throughout.
	FreqTransitionCycles int
	// RegulatorCapF and RegulatorEff parameterize the Stratakos transition
	// energy: (1-RegulatorEff) * RegulatorCapF * |V2^2 - V1^2|.
	RegulatorCapF, RegulatorEff float64
}

// NewParams returns the paper's link design: ten levels, 125 MHz/0.9 V/
// 23.6 mW to 1 GHz/2.5 V/200 mW per serial link, eight serial links per
// channel, 10 us voltage transitions, 100-cycle frequency transitions,
// 5 uF regulator capacitance at 90% efficiency.
func NewParams() Params {
	return Params{
		Levels:               10,
		MinFreqHz:            125e6,
		MaxFreqHz:            1e9,
		MinVolt:              0.9,
		MaxVolt:              2.5,
		MinPowerW:            0.0236,
		MaxPowerW:            0.200,
		SerialLinks:          8,
		VoltTransition:       10 * sim.Microsecond,
		FreqTransitionCycles: 100,
		RegulatorCapF:        5e-6,
		RegulatorEff:         0.9,
	}
}

// Table is the precomputed level table shared by every link in a network:
// frequency, voltage, clock period and channel power per level. Level 0 is
// the slowest and cheapest; level Levels-1 the fastest.
type Table struct {
	Params Params
	FreqHz []float64
	Volt   []float64
	Period []sim.Duration // per-link clock period; also flit serialization time
	PowerW []float64      // whole-channel power (SerialLinks * per-link)
	capA   float64        // fitted effective switched capacitance (F)
	biasB  float64        // fitted static/bias term (W per volt)
}

// NewTable validates p and derives the level table.
func NewTable(p Params) (*Table, error) {
	switch {
	case p.Levels < 2:
		return nil, fmt.Errorf("link: need >= 2 levels, got %d", p.Levels)
	case p.MinFreqHz <= 0 || p.MaxFreqHz <= p.MinFreqHz:
		return nil, fmt.Errorf("link: invalid frequency range [%g, %g]", p.MinFreqHz, p.MaxFreqHz)
	case p.MinVolt <= 0 || p.MaxVolt <= p.MinVolt:
		return nil, fmt.Errorf("link: invalid voltage range [%g, %g]", p.MinVolt, p.MaxVolt)
	case p.MinPowerW <= 0 || p.MaxPowerW <= p.MinPowerW:
		return nil, fmt.Errorf("link: invalid power range [%g, %g]", p.MinPowerW, p.MaxPowerW)
	case p.SerialLinks < 1:
		return nil, fmt.Errorf("link: need >= 1 serial link, got %d", p.SerialLinks)
	case p.VoltTransition < 0 || p.FreqTransitionCycles < 0:
		return nil, fmt.Errorf("link: negative transition latency")
	case p.RegulatorEff < 0 || p.RegulatorEff > 1:
		return nil, fmt.Errorf("link: regulator efficiency %g outside [0,1]", p.RegulatorEff)
	}
	t := &Table{
		Params: p,
		FreqHz: make([]float64, p.Levels),
		Volt:   make([]float64, p.Levels),
		Period: make([]sim.Duration, p.Levels),
		PowerW: make([]float64, p.Levels),
	}
	// Fit P(V,f) = a*V^2*f + b*V through the two published corner points.
	// The b*V term models the bias/static current of the transmitter,
	// receiver and clock-recovery circuits, which dominates at the low
	// corner (23.6 mW at 125 MHz is far above pure CV^2f scaling).
	d := p.MinVolt*p.MinVolt*p.MinFreqHz*p.MaxVolt - p.MaxVolt*p.MaxVolt*p.MaxFreqHz*p.MinVolt
	t.capA = (p.MinPowerW*p.MaxVolt - p.MaxPowerW*p.MinVolt) / d
	t.biasB = (p.MinPowerW - t.capA*p.MinVolt*p.MinVolt*p.MinFreqHz) / p.MinVolt

	steps := float64(p.Levels - 1)
	for i := 0; i < p.Levels; i++ {
		frac := float64(i) / steps
		t.FreqHz[i] = p.MinFreqHz + frac*(p.MaxFreqHz-p.MinFreqHz)
		t.Volt[i] = p.MinVolt + frac*(p.MaxVolt-p.MinVolt)
		t.Period[i] = sim.Time(1e12/t.FreqHz[i] + 0.5)
		t.PowerW[i] = float64(p.SerialLinks) * t.powerAt(t.Volt[i], t.FreqHz[i])
	}
	return t, nil
}

// MustTable is NewTable for known-good parameters; it panics on error.
func MustTable(p Params) *Table {
	t, err := NewTable(p)
	if err != nil {
		panic(err)
	}
	return t
}

// powerAt evaluates the fitted per-serial-link power model.
func (t *Table) powerAt(volt, freqHz float64) float64 {
	return t.capA*volt*volt*freqHz + t.biasB*volt
}

// ChannelPowerAt reports whole-channel power at an arbitrary operating
// point (used during transitions when voltage and frequency belong to
// different levels).
func (t *Table) ChannelPowerAt(volt, freqHz float64) float64 {
	return float64(t.Params.SerialLinks) * t.powerAt(volt, freqHz)
}

// TransitionEnergyJ reports the regulator energy overhead of a voltage
// transition between two levels (Stratakos estimate, paper Eq. 1).
func (t *Table) TransitionEnergyJ(from, to int) float64 {
	v1, v2 := t.Volt[from], t.Volt[to]
	d := v2*v2 - v1*v1
	if d < 0 {
		d = -d
	}
	return (1 - t.Params.RegulatorEff) * t.Params.RegulatorCapF * d
}

// Top reports the fastest level index.
func (t *Table) Top() int { return t.Params.Levels - 1 }
