package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilBufferSafe(t *testing.T) {
	var b *Buffer
	b.Log(Event{Kind: PacketInjected}) // must not panic
	if b.Len() != 0 || b.Total() != 0 || b.Events() != nil {
		t.Error("nil buffer should report empty")
	}
}

func TestRingEviction(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.Log(Event{At: sim.Time(i), Kind: PacketInjected, ID: int64(i)})
	}
	if b.Total() != 5 || b.Len() != 3 {
		t.Fatalf("total=%d len=%d, want 5/3", b.Total(), b.Len())
	}
	got := b.Events()
	for i, e := range got {
		if e.ID != int64(i+2) {
			t.Errorf("event %d has ID %d, want %d (oldest-first)", i, e.ID, i+2)
		}
	}
}

func TestOrderBeforeWrap(t *testing.T) {
	b := NewBuffer(10)
	for i := 0; i < 4; i++ {
		b.Log(Event{ID: int64(i)})
	}
	for i, e := range b.Events() {
		if e.ID != int64(i) {
			t.Fatalf("order broken before wrap: %v", b.Events())
		}
	}
}

func TestDumpFormatsAndFilters(t *testing.T) {
	b := NewBuffer(10)
	b.Log(Event{At: 1000, Kind: PacketInjected, ID: 7, A: 0, B: 5})
	b.Log(Event{At: 2000, Kind: PacketDelivered, ID: 7, A: 0, B: 5, C: 1000})
	b.Log(Event{At: 3000, Kind: LinkTransition, A: 3, B: 1, C: 4})
	b.Log(Event{At: 4000, Kind: PolicyDecision, A: 3, B: 1, C: -1})

	var buf bytes.Buffer
	if err := b.Dump(&buf, -1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"inject", "deliver", "latency=1.000ns... ", "transition", "level 4", "policy", "lower"} {
		want = strings.TrimSuffix(want, "... ")
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// Filtered dump contains only transitions.
	buf.Reset()
	if err := b.Dump(&buf, int(LinkTransition)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "inject") || !strings.Contains(buf.String(), "transition") {
		t.Errorf("filter failed:\n%s", buf.String())
	}
}

func TestNewBufferPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuffer(0)
}

func TestKindStrings(t *testing.T) {
	if PacketInjected.String() != "inject" || Kind(99).String() == "" {
		t.Error("Kind.String broken")
	}
}
