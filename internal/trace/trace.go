// Package trace is a lightweight structured event log for simulator
// debugging: a fixed-capacity ring of typed events (packet lifecycle, link
// transitions, policy decisions) that costs nothing when disabled and never
// allocates per event once warm.
package trace

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Kind classifies a traced event.
type Kind uint8

const (
	// PacketInjected: a packet entered a source queue. A = src, B = dst.
	PacketInjected Kind = iota
	// PacketDelivered: a tail flit ejected. A = src, B = dst, C = latency
	// in picoseconds.
	PacketDelivered
	// LinkTransition: a DVS link started a level step. A = node, B = port,
	// C = target level.
	LinkTransition
	// PolicyDecision: a history window closed with a non-hold decision.
	// A = node, B = port, C = +1 raise / -1 lower.
	PolicyDecision
)

func (k Kind) String() string {
	switch k {
	case PacketInjected:
		return "inject"
	case PacketDelivered:
		return "deliver"
	case LinkTransition:
		return "transition"
	case PolicyDecision:
		return "policy"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one trace record. Fields A, B, C carry kind-specific values so
// events stay fixed-size and allocation-free.
type Event struct {
	At   sim.Time
	Kind Kind
	ID   int64 // packet or task id when applicable
	A, B int
	C    int64
}

// Buffer is a fixed-capacity ring of events. A nil *Buffer is valid and
// records nothing, so call sites need no conditionals.
type Buffer struct {
	events []Event
	next   int
	total  int64
}

// NewBuffer returns a ring holding the most recent capacity events.
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		panic("trace: capacity must be positive")
	}
	return &Buffer{events: make([]Event, 0, capacity)}
}

// Log records one event. Logging to a nil buffer is a no-op.
func (b *Buffer) Log(e Event) {
	if b == nil {
		return
	}
	b.total++
	if len(b.events) < cap(b.events) {
		b.events = append(b.events, e)
		return
	}
	b.events[b.next] = e
	b.next = (b.next + 1) % cap(b.events)
}

// Total reports how many events were ever logged (including evicted ones).
func (b *Buffer) Total() int64 {
	if b == nil {
		return 0
	}
	return b.total
}

// Len reports how many events are retained.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.events)
}

// Events returns the retained events oldest-first.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.next:]...)
	out = append(out, b.events[:b.next]...)
	return out
}

// Dump writes the retained events to w, one line each, optionally filtered
// by kind (pass -1 for all kinds).
func (b *Buffer) Dump(w io.Writer, kind int) error {
	for _, e := range b.Events() {
		if kind >= 0 && Kind(kind) != e.Kind {
			continue
		}
		var err error
		switch e.Kind {
		case PacketInjected:
			_, err = fmt.Fprintf(w, "%12v %-10s pkt=%d %d->%d\n", e.At, e.Kind, e.ID, e.A, e.B)
		case PacketDelivered:
			_, err = fmt.Fprintf(w, "%12v %-10s pkt=%d %d->%d latency=%v\n",
				e.At, e.Kind, e.ID, e.A, e.B, sim.Time(e.C))
		case LinkTransition:
			_, err = fmt.Fprintf(w, "%12v %-10s node=%d port=%d -> level %d\n",
				e.At, e.Kind, e.A, e.B, e.C)
		case PolicyDecision:
			dir := "lower"
			if e.C > 0 {
				dir = "raise"
			}
			_, err = fmt.Fprintf(w, "%12v %-10s node=%d port=%d %s\n", e.At, e.Kind, e.A, e.B, dir)
		default:
			_, err = fmt.Fprintf(w, "%12v %-10s %+v\n", e.At, e.Kind, e)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
