// Package flow defines the units of network transfer — packets, flits and
// credits — shared by routers, links and traffic generators.
//
// Following the paper's setup, packets are fixed-length: one head flit
// leading four body flits (the last body flit doubles as the tail), each
// flit 32 bits wide.
package flow

import (
	"fmt"

	"repro/internal/sim"
)

// FlitsPerPacket is the paper's fixed packet length in flits.
const FlitsPerPacket = 5

// FlitBits is the width of a flit in bits.
const FlitBits = 32

// Kind distinguishes flit roles inside a packet.
type Kind uint8

const (
	// Head flits carry routing information and trigger route computation
	// and VC allocation in the router pipeline.
	Head Kind = iota
	// Body flits follow the head on its allocated VC.
	Body
	// Tail flits release the VC when they depart.
	Tail
)

func (k Kind) String() string {
	switch k {
	case Head:
		return "head"
	case Body:
		return "body"
	case Tail:
		return "tail"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Packet is the unit of end-to-end transfer. Latency spans the creation of
// the first flit to ejection of the last flit at the destination, including
// source queuing (paper §4.2).
type Packet struct {
	ID      int64
	Src     int // source node index
	Dst     int // destination node index
	Created sim.Time
	// Injected is when the head flit left the source queue and entered the
	// router; it is recorded by the network layer for queuing statistics.
	Injected sim.Time
	// Delivered is when the tail flit was ejected at the destination.
	Delivered sim.Time
	// Task identifies which level-1 communication task session produced the
	// packet (-1 for synthetic generators with no session structure).
	Task int64

	// LastDim and Wrapped carry the packet's dateline routing state between
	// hops (see internal/routing.State): the dimension of the previous hop
	// (-1 before the first) and whether the packet crossed that dimension's
	// wraparound channel. Only meaningful on tori.
	LastDim int
	Wrapped bool

	// block is the pool block backing this packet, nil for heap-allocated
	// packets (see Pool).
	block *pblock
}

// NewPacket returns a packet with initialized routing state.
func NewPacket(id int64, src, dst int, created sim.Time, task int64) *Packet {
	return &Packet{ID: id, Src: src, Dst: dst, Created: created, Task: task, LastDim: -1}
}

// Latency reports the packet's full latency; it is only meaningful once
// Delivered has been set.
func (p *Packet) Latency() sim.Duration { return p.Delivered - p.Created }

// Flit is the unit of flow control and link transfer.
type Flit struct {
	Packet *Packet
	Kind   Kind
	Seq    int // position within packet, 0-based

	// VC is the virtual channel the flit currently occupies; it is
	// rewritten at each hop when the head flit wins VC allocation.
	VC int
}

// NewPacketFlits constructs the flit train for a packet: a head, three
// bodies, and a tail. All five flits live in one backing array, so building
// a packet costs two allocations (backing + pointer slice) instead of one
// per flit — routers and links keep *Flit identity across hops as before.
func NewPacketFlits(p *Packet) []*Flit {
	backing := make([]Flit, FlitsPerPacket)
	flits := make([]*Flit, FlitsPerPacket)
	for i := range backing {
		k := Body
		switch i {
		case 0:
			k = Head
		case FlitsPerPacket - 1:
			k = Tail
		}
		backing[i] = Flit{Packet: p, Kind: k, Seq: i}
		flits[i] = &backing[i]
	}
	return flits
}

func (f *Flit) String() string {
	return fmt.Sprintf("%s flit %d/%d of pkt %d (%d->%d)",
		f.Kind, f.Seq+1, FlitsPerPacket, f.Packet.ID, f.Packet.Src, f.Packet.Dst)
}

// Credit is the backpressure token of credit-based flow control: one credit
// returns one flit buffer slot on the given VC of the upstream router's
// output.
type Credit struct {
	VC int
}
