package flow

import "repro/internal/sim"

// pblock is one pooled packet-plus-flit-train block: the packet, its five
// flits, and the pointer slice handed to the injector, all in one
// allocation. Blocks cycle through a free list owned by a Pool.
type pblock struct {
	pkt   Packet
	flits [FlitsPerPacket]Flit
	ptrs  [FlitsPerPacket]*Flit
	next  *pblock
}

// Pool recycles packet/flit blocks so steady-state injection does not
// allocate: a delivered packet's block — returned via Recycle once the
// simulation drops its last reference — backs a future injection. The
// zero value is ready to use; a nil-block packet (from NewPacket) degrades
// gracefully to the heap path. Pools are confined to one network and are
// not safe for concurrent use, matching the one-goroutine-per-simulation
// execution model.
type Pool struct {
	free *pblock
}

// NewPacket returns an initialized packet, reusing a recycled block when
// one is available.
func (pl *Pool) NewPacket(id int64, src, dst int, created sim.Time, task int64) *Packet {
	b := pl.free
	if b == nil {
		b = &pblock{}
		for i := range b.ptrs {
			b.ptrs[i] = &b.flits[i]
		}
	} else {
		pl.free = b.next
		b.next = nil
	}
	b.pkt = Packet{ID: id, Src: src, Dst: dst, Created: created, Task: task, LastDim: -1, block: b}
	return &b.pkt
}

// Flits returns the flit train for a pooled packet, re-initializing the
// block's flits in place; for non-pooled packets it falls back to
// NewPacketFlits.
func (pl *Pool) Flits(p *Packet) []*Flit {
	b := p.block
	if b == nil {
		return NewPacketFlits(p)
	}
	for i := range b.flits {
		k := Body
		switch i {
		case 0:
			k = Head
		case FlitsPerPacket - 1:
			k = Tail
		}
		b.flits[i] = Flit{Packet: p, Kind: k, Seq: i}
	}
	return b.ptrs[:]
}

// Recycle returns a delivered packet's block to the pool. The caller must
// guarantee no live references remain to the packet or its flits —
// recycling while a flit is still buffered or in flight would alias two
// packets onto one block. Non-pooled packets are ignored.
func (pl *Pool) Recycle(p *Packet) {
	b := p.block
	if b == nil {
		return
	}
	b.next = pl.free
	pl.free = b
}
