package flow

import (
	"strings"
	"testing"
	"testing/quick"
	"unsafe"

	"repro/internal/sim"
)

func TestNewPacketFlits(t *testing.T) {
	p := NewPacket(42, 3, 9, 100*sim.Nanosecond, 7)
	flits := NewPacketFlits(p)
	if len(flits) != FlitsPerPacket {
		t.Fatalf("flits = %d, want %d", len(flits), FlitsPerPacket)
	}
	if flits[0].Kind != Head {
		t.Error("first flit not head")
	}
	if flits[len(flits)-1].Kind != Tail {
		t.Error("last flit not tail")
	}
	for i, f := range flits[1 : len(flits)-1] {
		if f.Kind != Body {
			t.Errorf("middle flit %d is %v", i+1, f.Kind)
		}
	}
	for i, f := range flits {
		if f.Seq != i || f.Packet != p {
			t.Errorf("flit %d: seq=%d packet=%p", i, f.Seq, f.Packet)
		}
	}
}

// TestPacketFlitsShareBacking pins the allocation contract: the five flits
// of one packet live contiguously in a single backing array, and mutating
// one flit through its pointer never disturbs its neighbors.
func TestPacketFlitsShareBacking(t *testing.T) {
	p := NewPacket(1, 0, 5, 0, -1)
	flits := NewPacketFlits(p)
	for i := 1; i < len(flits); i++ {
		gap := uintptr(unsafe.Pointer(flits[i])) - uintptr(unsafe.Pointer(flits[i-1]))
		if gap != unsafe.Sizeof(Flit{}) {
			t.Fatalf("flit %d not contiguous with flit %d (gap %d bytes)", i, i-1, gap)
		}
	}
	flits[2].VC = 7
	for i, f := range flits {
		if i != 2 && f.VC != 0 {
			t.Errorf("flit %d VC mutated to %d via neighbor write", i, f.VC)
		}
		if f.Seq != i {
			t.Errorf("flit %d seq corrupted: %d", i, f.Seq)
		}
	}
}

// BenchmarkPacketAlloc measures packet + flit-train construction, the
// allocation hot path of packet injection (2 allocs for the train: backing
// array + pointer slice, down from 5 separate flits).
func BenchmarkPacketAlloc(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := NewPacket(int64(i), 0, 1, 0, -1)
		_ = NewPacketFlits(p)
	}
}

func TestPacketRoutingStateInitialized(t *testing.T) {
	p := NewPacket(1, 0, 5, 0, -1)
	if p.LastDim != -1 || p.Wrapped {
		t.Errorf("fresh packet routing state = (%d, %v), want (-1, false)", p.LastDim, p.Wrapped)
	}
}

func TestLatency(t *testing.T) {
	p := NewPacket(1, 0, 1, 100, -1)
	p.Delivered = 450
	if p.Latency() != 350 {
		t.Errorf("latency = %d, want 350", p.Latency())
	}
}

func TestKindStrings(t *testing.T) {
	if Head.String() != "head" || Body.String() != "body" || Tail.String() != "tail" {
		t.Error("kind strings wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind should include numeric value")
	}
}

func TestFlitString(t *testing.T) {
	p := NewPacket(5, 2, 7, 0, -1)
	f := NewPacketFlits(p)[0]
	s := f.String()
	for _, want := range []string{"head", "pkt 5", "2->7"} {
		if !strings.Contains(s, want) {
			t.Errorf("flit string %q missing %q", s, want)
		}
	}
}

func TestPacketIDsPreserved(t *testing.T) {
	f := func(id int64, src, dst uint8) bool {
		p := NewPacket(id, int(src), int(dst), 0, -1)
		flits := NewPacketFlits(p)
		for _, fl := range flits {
			if fl.Packet.ID != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
