// Package orion is a first-principles, capacitance-based router power
// model in the style of Orion (Wang, Zhu, Peh, Malik — MICRO 2002), the
// power-performance simulator the paper cites as [28] and builds on.
//
// Each router component reduces to an effective switched capacitance;
// energy per event is E = C * Vdd^2 (times an activity factor where bits
// toggle randomly). The package models the paper's router components in
// the paper's 0.25 um technology:
//
//   - input buffers as SRAM register files (word line + bit line + cell
//     access energy per flit read/write);
//   - the crossbar as a matrix crossbar (input and output line charging
//     per flit traversal);
//   - the separable allocators as matrix arbiters (request/grant flag
//     flips per arbitration).
//
// It exists as an independent estimate: internal/power calibrates
// per-event energies top-down from the paper's synthesized Figure 7
// breakdown, while this package computes them bottom-up from geometry and
// technology constants. The two agree to well within an order of
// magnitude (see the cross-check test), which is the accuracy Orion
// itself claims against circuit simulation.
package orion

import "fmt"

// Tech holds process parameters. Capacitances are effective (including
// typical transistor sizing), per the Orion modelling style.
type Tech struct {
	Name string
	// VddV is the supply voltage.
	VddV float64
	// GateFFPerUm and DiffFFPerUm are gate and drain/source capacitance
	// per micron of transistor width.
	GateFFPerUm, DiffFFPerUm float64
	// WireFFPerUm is wire capacitance per micron.
	WireFFPerUm float64
	// CellHeightUm and CellWidthUm size one SRAM cell (sets word/bit line
	// lengths); TrackPitchUm spaces crossbar wires.
	CellHeightUm, CellWidthUm, TrackPitchUm float64
	// AccessWidthUm is the access transistor width of an SRAM cell.
	AccessWidthUm float64
}

// TSMC250 returns 0.25 um constants of the magnitude used by Orion for
// the same node (the paper synthesizes to TSMC 0.25 um SAGE cells at
// 2.5 V).
func TSMC250() Tech {
	return Tech{
		Name:          "tsmc-0.25um",
		VddV:          2.5,
		GateFFPerUm:   2.0,
		DiffFFPerUm:   1.0,
		WireFFPerUm:   0.3,
		CellHeightUm:  4.0,
		CellWidthUm:   3.0,
		TrackPitchUm:  4.0,
		AccessWidthUm: 0.6,
	}
}

// energyJ converts effective femtofarads to joules at Vdd.
func (t Tech) energyJ(cFF float64) float64 {
	return cFF * 1e-15 * t.VddV * t.VddV
}

// Buffer models one input port's flit buffer as an SRAM register file.
type Buffer struct {
	// Entries is the buffer depth in flits; Width the flit width in bits.
	Entries, Width int
}

// wordlineFF is the capacitance charged to select one row: two access
// transistors' gates per cell plus the wire across the row.
func (b Buffer) wordlineFF(t Tech) float64 {
	w := float64(b.Width)
	return w*(2*t.GateFFPerUm*t.AccessWidthUm) + w*t.CellWidthUm*t.WireFFPerUm
}

// bitlineFF is the capacitance of one column: one access transistor drain
// per row plus the wire down the column.
func (b Buffer) bitlineFF(t Tech) float64 {
	e := float64(b.Entries)
	return e*(t.DiffFFPerUm*t.AccessWidthUm) + e*t.CellHeightUm*t.WireFFPerUm
}

// WriteEnergyJ is the energy of buffering one flit: the word line plus,
// for every bit, the differential bit-line pair driven rail to rail.
func (b Buffer) WriteEnergyJ(t Tech) float64 {
	c := b.wordlineFF(t) + float64(b.Width)*2*b.bitlineFF(t)
	return t.energyJ(c)
}

// ReadEnergyJ is the energy of reading one flit: the word line plus one
// precharged bit line per column swinging partially (activity 0.5).
func (b Buffer) ReadEnergyJ(t Tech) float64 {
	c := b.wordlineFF(t) + float64(b.Width)*b.bitlineFF(t)*0.5
	return t.energyJ(c)
}

// Crossbar models a P x P matrix crossbar of the given flit width.
type Crossbar struct {
	Ports, Width int
}

// lineFF is the capacitance of one input or output line: a connector
// drain per crossing point plus the wire spanning them.
func (x Crossbar) lineFF(t Tech) float64 {
	p := float64(x.Ports)
	w := float64(x.Width)
	wireUm := p * w * t.TrackPitchUm
	return p*(t.DiffFFPerUm*4) + wireUm*t.WireFFPerUm
}

// TraversalEnergyJ is the energy of moving one flit through the crossbar:
// per bit, the input and output lines charge with activity 0.5.
func (x Crossbar) TraversalEnergyJ(t Tech) float64 {
	c := float64(x.Width) * 2 * x.lineFF(t) * 0.5
	return t.energyJ(c)
}

// Arbiter models an R-requester matrix arbiter.
type Arbiter struct {
	Requesters int
}

// GrantEnergyJ is the energy of one arbitration: the R^2/2 priority flags
// and R grant lines that may flip, each with its update logic and grant
// driver.
func (a Arbiter) GrantEnergyJ(t Tech) float64 {
	r := float64(a.Requesters)
	// Effective capacitance per flag: the storage cell plus the priority
	// update gates and the grant driver it feeds.
	const flagFF = 40.0
	c := (r*r/2 + r) * flagFF * 0.5
	return t.energyJ(c)
}

// Router composes the component models for the paper's router.
type Router struct {
	Ports, VCs, BufPerPort, FlitBits int
}

// Components returns the constituent models.
func (r Router) Components() (Buffer, Crossbar, Arbiter) {
	return Buffer{Entries: r.BufPerPort, Width: r.FlitBits},
		Crossbar{Ports: r.Ports, Width: r.FlitBits},
		Arbiter{Requesters: r.Ports}
}

// FullTiltCorePowerW estimates router-core power with every port moving
// one flit per cycle at the given clock: per flit one buffer write, one
// buffer read, one crossbar traversal and about two arbitrations.
func (r Router) FullTiltCorePowerW(t Tech, freqHz float64) float64 {
	buf, xbar, arb := r.Components()
	perFlit := buf.WriteEnergyJ(t) + buf.ReadEnergyJ(t) +
		xbar.TraversalEnergyJ(t) + 2*arb.GrantEnergyJ(t)
	return perFlit * float64(r.Ports) * freqHz
}

// String summarizes the per-event energies for documentation output.
func (r Router) String(t Tech) string {
	buf, xbar, arb := r.Components()
	return fmt.Sprintf("write=%.1fpJ read=%.1fpJ xbar=%.1fpJ arb=%.2fpJ",
		buf.WriteEnergyJ(t)*1e12, buf.ReadEnergyJ(t)*1e12,
		xbar.TraversalEnergyJ(t)*1e12, arb.GrantEnergyJ(t)*1e12)
}
