package orion

import (
	"math"
	"strings"
	"testing"

	"repro/internal/link"
	"repro/internal/power"
	"repro/internal/sim"
)

// paperRouter is the paper's router geometry: 5 ports, 2 VCs, 128-flit
// input buffers, 32-bit flits.
func paperRouter() Router {
	return Router{Ports: 5, VCs: 2, BufPerPort: 128, FlitBits: 32}
}

func TestEnergiesPositiveAndOrdered(t *testing.T) {
	tech := TSMC250()
	buf, xbar, arb := paperRouter().Components()
	w, r := buf.WriteEnergyJ(tech), buf.ReadEnergyJ(tech)
	x, a := xbar.TraversalEnergyJ(tech), arb.GrantEnergyJ(tech)
	for name, v := range map[string]float64{"write": w, "read": r, "xbar": x, "arb": a} {
		if v <= 0 {
			t.Errorf("%s energy = %g, want > 0", name, v)
		}
	}
	// A differential full-swing write costs more than a half-swing read.
	if w <= r {
		t.Errorf("write %g should exceed read %g", w, r)
	}
	// Arbitration is by far the cheapest event — the premise behind the
	// paper ignoring router power under DVS.
	if a*10 > x {
		t.Errorf("arbitration %g not << crossbar %g", a, x)
	}
}

func TestEnergyScalesWithGeometry(t *testing.T) {
	tech := TSMC250()
	small := Buffer{Entries: 16, Width: 32}
	big := Buffer{Entries: 128, Width: 32}
	if big.WriteEnergyJ(tech) <= small.WriteEnergyJ(tech) {
		t.Error("deeper buffer should cost more per write (longer bit lines)")
	}
	narrow := Crossbar{Ports: 5, Width: 16}
	wide := Crossbar{Ports: 5, Width: 64}
	if wide.TraversalEnergyJ(tech) <= narrow.TraversalEnergyJ(tech) {
		t.Error("wider crossbar should cost more per traversal")
	}
	few := Arbiter{Requesters: 3}
	many := Arbiter{Requesters: 10}
	if many.GrantEnergyJ(tech) <= few.GrantEnergyJ(tech) {
		t.Error("bigger arbiter should cost more per grant")
	}
}

func TestEnergyScalesWithVoltageSquared(t *testing.T) {
	lo, hi := TSMC250(), TSMC250()
	lo.VddV, hi.VddV = 1.0, 2.0
	buf := Buffer{Entries: 64, Width: 32}
	ratio := buf.WriteEnergyJ(hi) / buf.WriteEnergyJ(lo)
	if math.Abs(ratio-4) > 1e-9 {
		t.Errorf("E(2V)/E(1V) = %g, want 4 (CV^2)", ratio)
	}
}

// TestCrossCheckAgainstFigure7Calibration: the bottom-up Orion-style
// estimates and the top-down Figure 7 calibration (internal/power) are
// independent; Orion claims accuracy within a small factor of circuit
// simulation, so the two must land within 4x of each other for every
// event class, and the full-tilt core totals within 3x.
func TestCrossCheckAgainstFigure7Calibration(t *testing.T) {
	tech := TSMC250()
	r := paperRouter()
	buf, xbar, arb := r.Components()

	table := link.MustTable(link.NewParams())
	calib := power.NewRouterEnergyModel(table, 4, sim.Nanosecond)

	within := func(name string, a, b, factor float64) {
		t.Helper()
		ratio := a / b
		if ratio < 1/factor || ratio > factor {
			t.Errorf("%s: orion %.3gJ vs calibrated %.3gJ (ratio %.2f, want within %gx)",
				name, a, b, ratio, factor)
		}
	}
	within("buffer write", buf.WriteEnergyJ(tech), calib.BufWriteJ, 4)
	within("buffer read", buf.ReadEnergyJ(tech), calib.BufReadJ, 4)
	within("crossbar", xbar.TraversalEnergyJ(tech), calib.CrossbarJ, 4)
	within("arbiter", arb.GrantEnergyJ(tech), calib.ArbGrantJ, 10)

	orionCore := r.FullTiltCorePowerW(tech, 1e9)
	calibCore := calib.FullTiltPowerW(4, sim.Nanosecond) - calib.ClockW // orion has no clock tree
	within("full-tilt core", orionCore, calibCore, 3)
}

func TestStringSummary(t *testing.T) {
	s := paperRouter().String(TSMC250())
	for _, want := range []string{"write=", "read=", "xbar=", "arb="} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}
