package checkpoint

import (
	"fmt"
	"math"
	"reflect"

	"repro/internal/network"
)

// Diff compares two networks' complete logical state field by field and
// reports the first divergence as a path into the state tree — naming the
// router, port, VC slot or link involved, e.g.
// "Routers[12].Buf[7][3].Flit: 140 != 255" — or "" when the states are
// equal. It is the conformance suite's primary instrument: a forked run
// and an uninterrupted run must diff clean at every common cycle.
//
// The comparison walks the checkpoint capture of each network, which is
// the network's state normalized (ring cursors rebased, scratch and
// derived structures excluded), so two runs diff equal exactly when their
// observable behavior is identical from here on. Floats are compared by
// bit pattern: byte-identity, not tolerance.
func Diff(a, b *network.Network) (string, error) {
	as, err := a.CaptureForDiff()
	if err != nil {
		return "", fmt.Errorf("checkpoint: diff capture of first network: %w", err)
	}
	bs, err := b.CaptureForDiff()
	if err != nil {
		return "", fmt.Errorf("checkpoint: diff capture of second network: %w", err)
	}
	return DiffStates(as, bs), nil
}

// DiffStates reports the first divergent field path between two captured
// states, or "" when equal.
func DiffStates(a, b *network.CheckpointState) string {
	return diffValue("", reflect.ValueOf(a).Elem(), reflect.ValueOf(b).Elem())
}

func diffValue(path string, a, b reflect.Value) string {
	if a.Type() != b.Type() {
		return fmt.Sprintf("%s: type %v != %v", path, a.Type(), b.Type())
	}
	switch a.Kind() {
	case reflect.Bool:
		if a.Bool() != b.Bool() {
			return fmt.Sprintf("%s: %t != %t", path, a.Bool(), b.Bool())
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if a.Int() != b.Int() {
			return fmt.Sprintf("%s: %d != %d", path, a.Int(), b.Int())
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if a.Uint() != b.Uint() {
			return fmt.Sprintf("%s: %d != %d", path, a.Uint(), b.Uint())
		}
	case reflect.Float64:
		if math.Float64bits(a.Float()) != math.Float64bits(b.Float()) {
			return fmt.Sprintf("%s: %v != %v", path, a.Float(), b.Float())
		}
	case reflect.String:
		if a.String() != b.String() {
			return fmt.Sprintf("%s: %q != %q", path, a.String(), b.String())
		}
	case reflect.Slice, reflect.Array:
		if a.Kind() == reflect.Slice && a.Len() != b.Len() {
			return fmt.Sprintf("%s: length %d != %d", path, a.Len(), b.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if d := diffValue(fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i)); d != "" {
				return d
			}
		}
	case reflect.Struct:
		t := a.Type()
		for i := 0; i < t.NumField(); i++ {
			p := t.Field(i).Name
			if path != "" {
				p = path + "." + p
			}
			if d := diffValue(p, a.Field(i), b.Field(i)); d != "" {
				return d
			}
		}
	case reflect.Pointer:
		switch {
		case a.IsNil() && b.IsNil():
		case a.IsNil() != b.IsNil():
			return fmt.Sprintf("%s: present %t != %t", path, !a.IsNil(), !b.IsNil())
		default:
			return diffValue(path, a.Elem(), b.Elem())
		}
	default:
		return fmt.Sprintf("%s: uncomparable kind %v", path, a.Kind())
	}
	return ""
}
