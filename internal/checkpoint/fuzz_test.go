package checkpoint_test

import (
	"sync"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/network"
	"repro/internal/traffic"
)

// fuzzSeedSnapshot builds one small but fully populated snapshot (in-flight
// flits, queued packets, pending link transitions are all possible at this
// point) to seed the fuzz corpora with structurally valid bytes, so the
// fuzzer starts at the format's surface instead of random noise.
func fuzzSeedSnapshot(t testing.TB) []byte {
	t.Helper()
	cfg := network.NewConfig()
	cfg.K = 4 // 4x4 mesh keeps the corpus entry small
	tr, horizon := confTrace(t, 0.3, cfg)
	n, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Launch(tr, horizon)
	n.SetDVSHold(true)
	n.Run(300)
	snap, err := checkpoint.Capture(n)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	b, err := checkpoint.Encode(snap)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return b
}

func addSeeds(f *testing.F) {
	b := fuzzSeedSnapshot(f)
	f.Add(b)
	f.Add([]byte{})
	f.Add(b[:10])          // header only
	f.Add(b[:len(b)/2])    // truncated mid-payload
	f.Add(append(b, 0xff)) // trailing garbage
	corrupt := append([]byte(nil), b...)
	for i := 16; i < len(corrupt); i += 97 {
		corrupt[i] ^= 0xa5
	}
	f.Add(corrupt)
}

// fuzzTrace memoizes the restore-target trace: capturing a two-level
// workload per exec would throttle the fuzzer to a handful of execs per
// second.
var fuzzTrace struct {
	once sync.Once
	tr   *traffic.Trace
}

// FuzzCheckpointDecode: arbitrary or corrupted snapshot bytes must never
// panic the decoder — they either decode or error cleanly.
func FuzzCheckpointDecode(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		snap, err := checkpoint.Decode(b)
		if err != nil {
			return
		}
		// A successful decode must also survive a restore attempt — the
		// restore validates, it must not panic — even though almost every
		// fuzz-mutated state is rejected as structurally inconsistent.
		cfg := network.NewConfig()
		cfg.K = 4
		n, nerr := network.New(cfg)
		if nerr != nil {
			t.Fatal(nerr)
		}
		var tr *traffic.Trace
		if snap.State.Traffic.HasTrace {
			fuzzTrace.once.Do(func() { fuzzTrace.tr, _ = confTrace(t, 0.3, cfg) })
			tr = fuzzTrace.tr
		}
		_ = n.RestoreCheckpoint(&snap.State, tr)
	})
}

// FuzzSnapshotRoundTrip: any bytes the decoder accepts must re-encode and
// re-decode to the identical state — the codec has one canonical image per
// state and loses nothing.
func FuzzSnapshotRoundTrip(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		snap, err := checkpoint.Decode(b)
		if err != nil {
			return
		}
		out, err := checkpoint.Encode(snap)
		if err != nil {
			t.Fatalf("decoded snapshot failed to encode: %v", err)
		}
		again, err := checkpoint.Decode(out)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if d := checkpoint.DiffStates(&snap.State, &again.State); d != "" {
			t.Fatalf("round trip diverged: %s", d)
		}
	})
}
