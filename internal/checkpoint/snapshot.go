// Package checkpoint captures a warmed-up simulation and forks it: a
// Snapshot is a versioned, self-describing image of complete network state
// (router SoA arrays, DVS link state machines, scheduler event keys,
// in-flight flit trains, source queues, statistics accumulators) such that
// a run forked from the snapshot is byte-identical to one that ran
// uninterrupted from cycle 0. Experiment sweeps use it to pay for a warmup
// once per (seed, rate) and fork the warmed state per policy variant.
//
// What is deliberately not captured: DVS controller history windows
// (captures are refused once a policy window has closed — experiment
// warmups run under network.SetDVSHold, so the state never exists), live
// traffic-model event chains (only recorded traces, whose replay walk is
// resumable, may be attached), attached observers (Probe, OnDeliver, event
// trace), and the trace's arrival data itself (the forker re-derives the
// trace from its parameters and the restore verifies identity by name,
// length and horizon).
package checkpoint

import (
	"fmt"
	"reflect"

	"repro/internal/network"
	"repro/internal/traffic"
)

// Snapshot is a captured simulation state. It intentionally carries no
// network.Config — the capture's configuration identity is the cache key
// under which a snapshot is stored, and fork-time compatibility is the
// caller's contract, checked with CompatibleConfig on the two configs it
// holds anyway.
type Snapshot struct {
	State network.CheckpointState
}

// Capture freezes a network's complete state. It fails when the network
// holds state a fork could not reproduce (see the package comment) or when
// any internal cross-check — down to the scheduler's pending-event queue
// matching the captured subsystems key for key — does not hold.
func Capture(n *network.Network) (*Snapshot, error) {
	st, err := n.CaptureCheckpoint()
	if err != nil {
		return nil, err
	}
	return &Snapshot{State: *st}, nil
}

// Fork builds a fresh network from cfg and restores the snapshot into it.
// cfg must be capture-compatible with the configuration the snapshot was
// captured under (CompatibleConfig); tr must be the same trace the capture
// ran with, re-derived by the caller, or nil when the capture had no
// traffic attached. The forked network continues exactly where the capture
// stopped: running both to the same horizon yields byte-identical results.
func Fork(s *Snapshot, cfg network.Config, tr *traffic.Trace) (*network.Network, error) {
	n, err := network.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := n.RestoreCheckpoint(&s.State, tr); err != nil {
		return nil, err
	}
	return n, nil
}

// CompatibleConfig reports whether a snapshot captured under base may be
// forked into a network built from fork. Everything that shapes captured
// state must be identical; only what the frozen warmup never consulted may
// differ: the DVS policy selection and its parameters (windows never close
// under hold), and the link transition latencies (no transition ever
// starts under hold, so no captured timer depends on them).
func CompatibleConfig(base, fork network.Config) error {
	a, b := base, fork
	// Neutralize the fields a held warmup is provably independent of.
	a.Policy, b.Policy = 0, 0
	a.DVS, b.DVS = base.DVS, base.DVS
	a.Link.VoltTransition, b.Link.VoltTransition = 0, 0
	a.Link.FreqTransitionCycles, b.Link.FreqTransitionCycles = 0, 0
	// Audit.OnViolation is an observer, not state; func values cannot be
	// compared, and restore separately requires checker presence to match.
	a.Audit.OnViolation, b.Audit.OnViolation = nil, nil
	if !reflect.DeepEqual(a, b) {
		return fmt.Errorf("checkpoint: fork config differs from capture config beyond policy, DVS parameters and link transition latencies")
	}
	return nil
}
