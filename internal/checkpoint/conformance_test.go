package checkpoint_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/flow"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// The conformance suite: a run forked from a warmup checkpoint must be
// byte-identical to a run that never stopped. Each scenario runs both
// ways — straight (hold, warm up, release, measure) and forked (capture
// the held warmed-up state, serialize it through the codec, restore into
// a fresh network, release, measure) — and requires the measurement
// Results to marshal to identical JSON and the complete final simulation
// states to diff clean, field by field.

const (
	confWarm = 1500
	confMeas = 1500
)

// confScenario is one operating point of the conformance matrix.
type confScenario struct {
	rate   float64
	audit  bool
	policy network.PolicyKind
}

func (s confScenario) String() string {
	return fmt.Sprintf("rate=%g/audit=%t/%v", s.rate, s.audit, s.policy)
}

// confMatrix spans light load, moderate load, and deep saturation, each
// with and without the runtime invariant checker.
func confMatrix() []confScenario {
	var out []confScenario
	for _, rate := range []float64{0.05, 0.3, 4.0} {
		for _, audit := range []bool{false, true} {
			out = append(out, confScenario{rate: rate, audit: audit, policy: network.PolicyHistory})
		}
	}
	return out
}

func (s confScenario) config() network.Config {
	cfg := network.NewConfig()
	cfg.Policy = s.policy
	cfg.Audit.Enabled = s.audit
	return cfg
}

// confTrace captures the scenario's workload once; straight run, warmup
// run and fork all replay the same arrivals, exactly as the experiment
// harness shares one memoized trace per operating point.
func confTrace(t testing.TB, rate float64, cfg network.Config) (*traffic.Trace, sim.Time) {
	t.Helper()
	horizon := sim.Time(confWarm+confMeas+1) * cfg.RouterPeriod
	p := traffic.NewTwoLevelParams(rate)
	m, err := traffic.NewTwoLevel(p, topology.New(cfg.K, cfg.N, cfg.Torus))
	if err != nil {
		t.Fatalf("NewTwoLevel: %v", err)
	}
	return traffic.Capture(m, horizon), horizon
}

// runStraight executes warmup + measurement uninterrupted.
func runStraight(t testing.TB, cfg network.Config, tr *traffic.Trace, horizon sim.Time) *network.Network {
	t.Helper()
	n, err := network.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n.Launch(tr, horizon)
	n.SetDVSHold(true)
	n.Run(confWarm)
	n.SetDVSHold(false)
	n.BeginMeasurement()
	n.Run(confMeas)
	return n
}

// warmSnapshot runs the held warmup and captures it, round-tripping the
// snapshot through the binary codec so every conformance scenario also
// proves Encode/Decode exact.
func warmSnapshot(t testing.TB, cfg network.Config, tr *traffic.Trace, horizon sim.Time) *checkpoint.Snapshot {
	t.Helper()
	n, err := network.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n.Launch(tr, horizon)
	n.SetDVSHold(true)
	n.Run(confWarm)
	snap, err := checkpoint.Capture(n)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	b, err := checkpoint.Encode(snap)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	snap2, err := checkpoint.Decode(b)
	if err != nil {
		t.Fatalf("Decode of a fresh capture: %v", err)
	}
	if d := checkpoint.DiffStates(&snap.State, &snap2.State); d != "" {
		t.Fatalf("codec round trip diverged: %s", d)
	}
	return snap2
}

// runForked restores the snapshot and executes the measurement.
func runForked(t testing.TB, snap *checkpoint.Snapshot, cfg network.Config, tr *traffic.Trace) *network.Network {
	t.Helper()
	n, err := checkpoint.Fork(snap, cfg, tr)
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	n.SetDVSHold(false)
	n.BeginMeasurement()
	n.Run(confMeas)
	return n
}

func resultsJSON(t testing.TB, n *network.Network) string {
	t.Helper()
	b, err := json.Marshal(n.Snapshot())
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	return string(b)
}

// TestForkEquivalence is the headline guarantee: at every point of the
// conformance matrix, fork-and-measure is byte-identical to an
// uninterrupted run — same Results JSON, same complete final state.
func TestForkEquivalence(t *testing.T) {
	for _, sc := range confMatrix() {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			t.Parallel()
			cfg := sc.config()
			tr, horizon := confTrace(t, sc.rate, cfg)
			straight := runStraight(t, cfg, tr, horizon)
			snap := warmSnapshot(t, cfg, tr, horizon)
			forked := runForked(t, snap, cfg, tr)

			sj, fj := resultsJSON(t, straight), resultsJSON(t, forked)
			if sj != fj {
				t.Errorf("results diverged:\nstraight: %s\nforked:   %s", sj, fj)
			}
			d, err := checkpoint.Diff(straight, forked)
			if err != nil {
				t.Fatalf("Diff: %v", err)
			}
			if d != "" {
				t.Errorf("final state diverged: %s", d)
			}
		})
	}
}

// TestForkSharedAcrossPolicies pins what makes the warm snapshot shareable:
// a warmup captured under one policy forks into every other variant (the
// held warmup never consults the policy), and each fork still matches its
// own uninterrupted run.
func TestForkSharedAcrossPolicies(t *testing.T) {
	base := confScenario{rate: 0.3, policy: network.PolicyNone}
	baseCfg := base.config()
	tr, horizon := confTrace(t, base.rate, baseCfg)
	snap := warmSnapshot(t, baseCfg, tr, horizon)

	for _, policy := range []network.PolicyKind{
		network.PolicyNone, network.PolicyHistory,
		network.PolicyLinkUtilOnly, network.PolicyAdaptiveThresholds,
	} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			cfg := baseCfg
			cfg.Policy = policy
			if err := checkpoint.CompatibleConfig(baseCfg, cfg); err != nil {
				t.Fatalf("CompatibleConfig: %v", err)
			}
			straight := runStraight(t, cfg, tr, horizon)
			forked := runForked(t, snap, cfg, tr)
			if sj, fj := resultsJSON(t, straight), resultsJSON(t, forked); sj != fj {
				t.Errorf("results diverged:\nstraight: %s\nforked:   %s", sj, fj)
			}
			d, err := checkpoint.Diff(straight, forked)
			if err != nil {
				t.Fatalf("Diff: %v", err)
			}
			if d != "" {
				t.Errorf("final state diverged: %s", d)
			}
		})
	}
}

// TestCompatibleConfigRejectsStructuralDrift: only the policy family and
// transition latencies may differ between capture and fork.
func TestCompatibleConfigRejectsStructuralDrift(t *testing.T) {
	base := network.NewConfig()

	ok := base
	ok.Policy = network.PolicyLinkUtilOnly
	ok.DVS.TLLow = 0.11
	ok.DVS.H = 700
	ok.Link.VoltTransition = 42 * sim.Microsecond
	ok.Link.FreqTransitionCycles = 7
	if err := checkpoint.CompatibleConfig(base, ok); err != nil {
		t.Errorf("policy/threshold/transition drift should be compatible: %v", err)
	}

	for name, mutate := range map[string]func(*network.Config){
		"topology":  func(c *network.Config) { c.K = 4 },
		"vcs":       func(c *network.Config) { c.Router.VCs = 4 },
		"levels":    func(c *network.Config) { c.Link.Levels = 4 },
		"noskip":    func(c *network.Config) { c.NoSkip = true },
		"audit":     func(c *network.Config) { c.Audit.Enabled = true },
		"seed":      func(c *network.Config) { c.Seed = 99 },
		"routing":   func(c *network.Config) { c.Routing = "adaptive" },
		"startlvl":  func(c *network.Config) { c.StartLevel = 0 },
		"refallocs": func(c *network.Config) { c.RefAllocators = true },
	} {
		bad := base
		mutate(&bad)
		if err := checkpoint.CompatibleConfig(base, bad); err == nil {
			t.Errorf("%s drift should be incompatible", name)
		}
	}
}

// TestCaptureRefusals pins the refusal surface: state a fork could not
// reproduce must refuse to capture rather than capture wrongly.
func TestCaptureRefusals(t *testing.T) {
	cfg := network.NewConfig()
	tr, horizon := confTrace(t, 0.3, cfg)

	t.Run("policy-window-closed", func(t *testing.T) {
		n, err := network.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Launch(tr, horizon)
		n.Run(confWarm) // unheld: history windows close
		if _, err := checkpoint.Capture(n); err == nil {
			t.Error("capture after a policy window closed should refuse")
		}
	})

	t.Run("live-model", func(t *testing.T) {
		n, err := network.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := traffic.NewTwoLevel(traffic.NewTwoLevelParams(0.3), n.Topo)
		if err != nil {
			t.Fatal(err)
		}
		n.Launch(m, horizon)
		n.SetDVSHold(true)
		n.Run(confWarm)
		if _, err := checkpoint.Capture(n); err == nil {
			t.Error("capture with a live traffic model should refuse")
		}
	})

	t.Run("observer", func(t *testing.T) {
		n, err := network.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Launch(tr, horizon)
		n.SetDVSHold(true)
		n.OnDeliver = func(*flow.Packet) {}
		if _, err := checkpoint.Capture(n); err == nil {
			t.Error("capture with an OnDeliver observer should refuse")
		}
	})
}

// TestForkRecapture: capturing a freshly forked network reproduces the
// snapshot exactly — restore loses nothing the codec keeps.
func TestForkRecapture(t *testing.T) {
	cfg := network.NewConfig()
	tr, horizon := confTrace(t, 0.3, cfg)
	snap := warmSnapshot(t, cfg, tr, horizon)
	n, err := checkpoint.Fork(snap, cfg, tr)
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	again, err := checkpoint.Capture(n)
	if err != nil {
		t.Fatalf("re-capture of a fork: %v", err)
	}
	if d := checkpoint.DiffStates(&snap.State, &again.State); d != "" {
		t.Errorf("fork re-capture diverged from snapshot: %s", d)
	}
	b1, err1 := checkpoint.Encode(snap)
	b2, err2 := checkpoint.Encode(again)
	if err1 != nil || err2 != nil {
		t.Fatalf("encode: %v / %v", err1, err2)
	}
	if string(b1) != string(b2) {
		t.Error("fork re-capture encodes to different bytes")
	}
}

// TestDiffReportsDivergence: the walker localizes an injected difference
// instead of just failing.
func TestDiffReportsDivergence(t *testing.T) {
	cfg := network.NewConfig()
	tr, horizon := confTrace(t, 0.3, cfg)
	a := warmSnapshot(t, cfg, tr, horizon)
	b := warmSnapshot(t, cfg, tr, horizon)
	if d := checkpoint.DiffStates(&a.State, &b.State); d != "" {
		t.Fatalf("identical warmups diff: %s", d)
	}
	b.State.Routers[12].FlitsSwitched++
	d := checkpoint.DiffStates(&a.State, &b.State)
	if d == "" {
		t.Fatal("walker missed an injected divergence")
	}
	if want := "Routers[12].FlitsSwitched"; !strings.Contains(d, want) {
		t.Errorf("diff %q does not name %q", d, want)
	}
}
