package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
)

// Binary snapshot codec. The format is a fixed header (magic + schema
// version) followed by a reflection-driven walk of the state tree in
// declaration order: fixed-width little-endian scalars (floats as IEEE
// bits, so every value — NaN payloads included — round-trips exactly),
// length-prefixed slices and strings, presence-prefixed pointers. The
// decoder is defensive by construction: every read is bounds-checked,
// slice lengths are validated against the bytes actually remaining, and
// slices grow element by element as input is consumed rather than being
// preallocated from an attacker-controlled count — arbitrary or corrupted
// input can produce an error, never a panic or an outsized allocation.

// SchemaVersion identifies the snapshot wire format. Bump it whenever any
// captured struct changes shape; persisted snapshots from other schemas
// fail to decode and are re-captured.
const SchemaVersion = 1

var magic = [8]byte{'n', 'o', 'c', 'c', 'k', 'p', 't', '1'}

// Encode serializes a snapshot. Encoding is deterministic: equal snapshots
// produce equal bytes.
func Encode(s *Snapshot) ([]byte, error) {
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, SchemaVersion)
	return encodeValue(buf, reflect.ValueOf(&s.State).Elem())
}

// Decode parses a snapshot. It returns an error — never panics — on
// truncated, corrupted or arbitrary input, including trailing garbage.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < len(magic)+2 {
		return nil, fmt.Errorf("checkpoint: snapshot shorter than its header")
	}
	if [8]byte(b[:8]) != magic {
		return nil, fmt.Errorf("checkpoint: bad snapshot magic")
	}
	if v := binary.LittleEndian.Uint16(b[8:10]); v != SchemaVersion {
		return nil, fmt.Errorf("checkpoint: snapshot schema %d, want %d", v, SchemaVersion)
	}
	d := &decoder{buf: b, off: 10}
	s := &Snapshot{}
	if err := d.value(reflect.ValueOf(&s.State).Elem()); err != nil {
		return nil, err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after snapshot", len(d.buf)-d.off)
	}
	return s, nil
}

func encodeValue(buf []byte, v reflect.Value) ([]byte, error) {
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return binary.LittleEndian.AppendUint64(buf, uint64(v.Int())), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return binary.LittleEndian.AppendUint64(buf, v.Uint()), nil
	case reflect.Float64:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float())), nil
	case reflect.String:
		s := v.String()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		return append(buf, s...), nil
	case reflect.Slice:
		n := v.Len()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
		var err error
		for i := 0; i < n; i++ {
			if buf, err = encodeValue(buf, v.Index(i)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case reflect.Array:
		var err error
		for i := 0; i < v.Len(); i++ {
			if buf, err = encodeValue(buf, v.Index(i)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case reflect.Struct:
		t := v.Type()
		var err error
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				return nil, fmt.Errorf("checkpoint: cannot encode unexported field %s.%s", t.Name(), t.Field(i).Name)
			}
			if buf, err = encodeValue(buf, v.Field(i)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case reflect.Pointer:
		if v.IsNil() {
			return append(buf, 0), nil
		}
		return encodeValue(append(buf, 1), v.Elem())
	default:
		return nil, fmt.Errorf("checkpoint: cannot encode kind %v", v.Kind())
	}
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, fmt.Errorf("checkpoint: snapshot truncated at byte %d", d.off)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) u64() (uint64, error) {
	b, err := d.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *decoder) u32() (uint32, error) {
	b, err := d.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) value(v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		b, err := d.bytes(1)
		if err != nil {
			return err
		}
		if b[0] > 1 {
			return fmt.Errorf("checkpoint: bool byte %d at offset %d", b[0], d.off-1)
		}
		v.SetBool(b[0] == 1)
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		u, err := d.u64()
		if err != nil {
			return err
		}
		if v.OverflowInt(int64(u)) {
			return fmt.Errorf("checkpoint: value %d overflows %v", int64(u), v.Type())
		}
		v.SetInt(int64(u))
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u, err := d.u64()
		if err != nil {
			return err
		}
		if v.OverflowUint(u) {
			return fmt.Errorf("checkpoint: value %d overflows %v", u, v.Type())
		}
		v.SetUint(u)
		return nil
	case reflect.Float64:
		u, err := d.u64()
		if err != nil {
			return err
		}
		v.SetFloat(math.Float64frombits(u))
		return nil
	case reflect.String:
		n, err := d.u32()
		if err != nil {
			return err
		}
		b, err := d.bytes(int(n))
		if err != nil {
			return err
		}
		v.SetString(string(b))
		return nil
	case reflect.Slice:
		n, err := d.u32()
		if err != nil {
			return err
		}
		// Every element consumes at least one byte, so a count beyond the
		// remaining input cannot be satisfied; reject it before decoding.
		if int64(n) > int64(d.remaining()) {
			return fmt.Errorf("checkpoint: slice length %d exceeds remaining input", n)
		}
		if n == 0 {
			v.Set(reflect.Zero(v.Type()))
			return nil
		}
		// Grow element by element: allocation tracks input actually
		// consumed instead of trusting the declared count.
		s := reflect.MakeSlice(v.Type(), 0, 0)
		elem := reflect.New(v.Type().Elem()).Elem()
		zero := reflect.Zero(v.Type().Elem())
		for i := uint32(0); i < n; i++ {
			elem.Set(zero)
			if err := d.value(elem); err != nil {
				return err
			}
			s = reflect.Append(s, elem)
		}
		v.Set(s)
		return nil
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if err := d.value(v.Index(i)); err != nil {
				return err
			}
		}
		return nil
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				return fmt.Errorf("checkpoint: cannot decode unexported field %s.%s", t.Name(), t.Field(i).Name)
			}
			if err := d.value(v.Field(i)); err != nil {
				return err
			}
		}
		return nil
	case reflect.Pointer:
		b, err := d.bytes(1)
		if err != nil {
			return err
		}
		switch b[0] {
		case 0:
			v.Set(reflect.Zero(v.Type()))
			return nil
		case 1:
			p := reflect.New(v.Type().Elem())
			if err := d.value(p.Elem()); err != nil {
				return err
			}
			v.Set(p)
			return nil
		default:
			return fmt.Errorf("checkpoint: pointer presence byte %d at offset %d", b[0], d.off-1)
		}
	default:
		return fmt.Errorf("checkpoint: cannot decode kind %v", v.Kind())
	}
}
