package audit

import (
	"fmt"
	"strings"

	"repro/internal/flow"
	"repro/internal/router"
)

// watchdog detects deadlock: if no flit anywhere moves (no buffer write,
// no crossbar traversal) for StallCycles while packets are in flight, the
// network is wedged and a violation fires carrying a wait-for snapshot.
// Livelock (endless movement without delivery) is covered by the
// MaxPacketAge check in scanConservation.
func (c *Checker) watchdog(cycle int64) {
	var progress int64
	for _, r := range c.w.Routers {
		progress += r.FlitsSwitched
		for _, in := range r.Inputs {
			progress += in.Writes
		}
	}
	inFlight := c.w.InFlight()
	if progress != c.lastProgress || inFlight == 0 {
		c.lastProgress = progress
		c.lastProgressCycle = cycle
		c.watchdogOnce = false
		return
	}
	if cycle-c.lastProgressCycle < c.opts.StallCycles || c.watchdogOnce {
		return
	}
	c.watchdogOnce = true // one report per plateau, not one per scan
	c.stats.Checks++
	c.report(Violation{Rule: "deadlock", Cycle: cycle, Node: -1, Port: -1, VC: -1,
		Msg: fmt.Sprintf("no flit moved for %d cycles with %d packets in flight\n%s",
			cycle-c.lastProgressCycle, inFlight, c.waitForDump())})
}

// waitForDump renders every non-idle input VC and what it waits on — the
// wait-for graph a deadlocked configuration forms — plus the state of the
// links those waits cross.
func (c *Checker) waitForDump() string {
	var b strings.Builder
	b.WriteString("wait-for snapshot (blocked input VCs):\n")
	lines := 0
	const maxLines = 64
	for node, r := range c.w.Routers {
		for port, in := range r.Inputs {
			for vc := 0; vc < in.VCs(); vc++ {
				stage, outPort, outVC, candidates := in.VCState(vc)
				occ := in.OccupiedVC(vc)
				if occ == 0 && stage == router.VCIdle {
					continue
				}
				if lines >= maxLines {
					b.WriteString("  ... (truncated)\n")
					return b.String()
				}
				lines++
				var front *flow.Flit
				in.ForEachFlit(vc, func(f *flow.Flit) {
					if front == nil {
						front = f
					}
				})
				fmt.Fprintf(&b, "  router %d port %d vc %d [%v, %d flits", node, port, vc, stage, occ)
				if front != nil {
					fmt.Fprintf(&b, ", front: packet %d flit %d -> node %d", front.Packet.ID, front.Seq, front.Packet.Dst)
				}
				b.WriteString("]")
				switch stage {
				case router.VCWaitingVC:
					fmt.Fprintf(&b, " waits for a VC grant among %d candidates", candidates)
				case router.VCActive:
					out := r.Outputs[outPort]
					fmt.Fprintf(&b, " waits on output port %d vc %d: %d credits, %d queued",
						outPort, outVC, out.Credits(outVC), out.QueuedTx())
					if l := c.w.LinkAt(node, outPort); l != nil {
						fmt.Fprintf(&b, ", link %v level %d", l.State(), l.Level())
					}
				}
				b.WriteString("\n")
			}
		}
	}
	if lines == 0 {
		b.WriteString("  (no blocked VCs — packets are stuck in source queues)\n")
	}
	return b.String()
}
