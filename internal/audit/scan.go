package audit

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/flow"
	"repro/internal/link"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/topology"
)

// scanConservation verifies the two conservation laws at a consistent
// instant (between network steps):
//
// Flits: every active packet (dequeued from its source, not yet
// delivered) accounts for exactly FlitsPerPacket flits across source
// injector, in-transit messages, input buffers, output pipelines and the
// already-ejected tally — and no flit of any other packet exists anywhere.
//
// Credits: for every inter-router channel and VC, upstream credits +
// flits in the upstream output pipeline + flits on the wire + flits in the
// downstream buffer + credits on the return wire == downstream buffer
// depth. Dropping, duplicating or misrouting either a flit or a credit
// anywhere in the protocol breaks this sum.
func (c *Checker) scanConservation(cycle int64) {
	flits := c.flitCount
	tFlit := c.transitFlit
	tCred := c.transitCred
	clear(flits)
	clear(tFlit)
	clear(tCred)

	count := func(node, port, vc int, f *flow.Flit) {
		flits[f.Packet.ID]++
		c.check(f.Seq >= 0 && f.Seq < flow.FlitsPerPacket && f.Packet != nil, func() Violation {
			return Violation{Rule: "flit-conservation", Cycle: cycle, Node: node, Port: port, VC: vc,
				Msg: fmt.Sprintf("malformed flit seq=%d", f.Seq)}
		})
	}

	c.w.WalkTransit(TransitVisitor{
		Flit: func(in *router.InputPort, f *flow.Flit) {
			count(-1, -1, f.VC, f)
			tFlit[inKey{in, f.VC}]++
		},
		Credit: func(out *router.OutputPort, vc int) {
			tCred[outKey{out, vc}]++
		},
		SourceFlit: func(src int, f *flow.Flit) {
			count(src, topology.LocalPort, -1, f)
		},
	})
	for node, r := range c.w.Routers {
		for port, in := range r.Inputs {
			for vc := 0; vc < in.VCs(); vc++ {
				in.ForEachFlit(vc, func(f *flow.Flit) { count(node, port, vc, f) })
			}
		}
		for port, out := range r.Outputs {
			port := port
			out.ForEachTx(func(e router.TxEntry) {
				count(node, port, e.Flit().VC, e.Flit())
			})
		}
	}

	// Ledger cross-checks.
	c.check(int64(len(c.ledger)) == c.w.InFlight(), func() Violation {
		return Violation{Rule: "flit-conservation", Cycle: cycle, Node: -1, Port: -1, VC: -1,
			Msg: fmt.Sprintf("ledger holds %d packets but the network reports %d in flight", len(c.ledger), c.w.InFlight())}
	})
	for id, rec := range c.active {
		found := flits[id]
		c.check(found+int(rec.ejected) == flow.FlitsPerPacket, func() Violation {
			return Violation{Rule: "flit-conservation", Cycle: cycle, Node: -1, Port: -1, VC: -1,
				Msg: fmt.Sprintf("packet %d accounts for %d present + %d ejected flits, want %d", id, found, rec.ejected, flow.FlitsPerPacket)}
		})
		delete(flits, id)
		if c.opts.MaxPacketAge > 0 {
			c.check(cycle-rec.dequeueCycle <= c.opts.MaxPacketAge, func() Violation {
				return Violation{Rule: "livelock", Cycle: cycle, Node: -1, Port: -1, VC: -1,
					Msg: fmt.Sprintf("packet %d has been in the network %d cycles (limit %d)", id, cycle-rec.dequeueCycle, c.opts.MaxPacketAge)}
			})
		}
	}
	// Anything left was found in the network without an active ledger entry.
	for _, id := range sortedKeys(flits) {
		c.report(Violation{Rule: "flit-conservation", Cycle: cycle, Node: -1, Port: -1, VC: -1,
			Msg: fmt.Sprintf("found %d ghost flits of packet %d, which is not in flight", flits[id], id)})
	}

	// Credit conservation per connected channel.
	for i := range c.channels {
		ch := &c.channels[i]
		depth := ch.in.BufPerVC()
		for vc := range c.perVCTx {
			c.perVCTx[vc] = 0
		}
		ch.out.ForEachTx(func(e router.TxEntry) {
			c.perVCTx[e.Flit().VC]++
		})
		for vc := 0; vc < ch.out.VCs(); vc++ {
			vc := vc
			credits := ch.out.Credits(vc)
			c.check(credits >= 0 && credits <= depth, func() Violation {
				return Violation{Rule: "credit-conservation", Cycle: cycle, Node: ch.node, Port: ch.port, VC: vc,
					Msg: fmt.Sprintf("credit counter %d outside [0, %d]", credits, depth)}
			})
			total := credits + c.perVCTx[vc] + tFlit[inKey{ch.in, vc}] + ch.in.OccupiedVC(vc) + tCred[outKey{ch.out, vc}]
			c.check(total == depth, func() Violation {
				return Violation{Rule: "credit-conservation", Cycle: cycle, Node: ch.node, Port: ch.port, VC: vc,
					Msg: fmt.Sprintf("round trip does not balance: %d credits + %d in tx + %d on wire + %d buffered downstream + %d credits returning = %d, want buffer depth %d",
						credits, c.perVCTx[vc], tFlit[inKey{ch.in, vc}], ch.in.OccupiedVC(vc), tCred[outKey{ch.out, vc}], total, depth)}
			})
		}
	}
	// Unconnected mesh-edge ports must stay pristine: minimal routing never
	// sends a flit off the edge, so full credits and an empty pipeline.
	for i := range c.edges {
		e := &c.edges[i]
		c.check(e.out.QueuedTx() == 0, func() Violation {
			return Violation{Rule: "credit-conservation", Cycle: cycle, Node: e.node, Port: e.port, VC: -1,
				Msg: fmt.Sprintf("%d flits queued on an unconnected mesh-edge port", e.out.QueuedTx())}
		})
		for vc := 0; vc < e.out.VCs(); vc++ {
			vc := vc
			c.check(e.out.Credits(vc) == e.out.TotalSlots()/e.out.VCs(), func() Violation {
				return Violation{Rule: "credit-conservation", Cycle: cycle, Node: e.node, Port: e.port, VC: vc,
					Msg: fmt.Sprintf("unconnected mesh-edge port lost credits (%d left)", e.out.Credits(vc))}
			})
		}
	}
}

// scanRouters verifies the VC state machines: buffered flit trains are
// framed head..tail with no interleaving, allocation stages are coherent,
// and input/output VC ownership links agree in both directions (the
// structural form of "no grant without request").
func (c *Checker) scanRouters(cycle int64) {
	for node, r := range c.w.Routers {
		for port, in := range r.Inputs {
			for vc := 0; vc < in.VCs(); vc++ {
				vc := vc
				stage, outPort, outVC, candidates := in.VCState(vc)
				var prev *flow.Flit
				first := true
				in.ForEachFlit(vc, func(f *flow.Flit) {
					c.check(f.VC == vc, func() Violation {
						return Violation{Rule: "vc-legality", Cycle: cycle, Node: node, Port: port, VC: vc,
							Msg: fmt.Sprintf("flit %d of packet %d tagged vc %d sits in vc %d", f.Seq, f.Packet.ID, f.VC, vc)}
					})
					if first && stage != router.VCActive {
						c.check(f.Kind == flow.Head, func() Violation {
							return Violation{Rule: "vc-legality", Cycle: cycle, Node: node, Port: port, VC: vc,
								Msg: fmt.Sprintf("%v stage fronted by %v flit of packet %d (head consumed early?)", stage, f.Kind, f.Packet.ID)}
						})
					}
					if prev != nil {
						if prev.Packet == f.Packet {
							c.check(f.Seq == prev.Seq+1, func() Violation {
								return Violation{Rule: "vc-legality", Cycle: cycle, Node: node, Port: port, VC: vc,
									Msg: fmt.Sprintf("packet %d flits out of order: %d after %d", f.Packet.ID, f.Seq, prev.Seq)}
							})
						} else {
							c.check(prev.Kind == flow.Tail && f.Kind == flow.Head, func() Violation {
								return Violation{Rule: "vc-legality", Cycle: cycle, Node: node, Port: port, VC: vc,
									Msg: fmt.Sprintf("packets %d and %d interleaved (%v followed by %v)", prev.Packet.ID, f.Packet.ID, prev.Kind, f.Kind)}
							})
						}
					}
					prev, first = f, false
				})
				switch stage {
				case router.VCIdle, router.VCWaitingVC:
					if stage == router.VCWaitingVC {
						c.check(candidates > 0, func() Violation {
							return Violation{Rule: "vc-legality", Cycle: cycle, Node: node, Port: port, VC: vc,
								Msg: "waiting for VC allocation with no route candidates"}
						})
					}
				case router.VCActive:
					legalOut := outPort >= 0 && outPort < len(r.Outputs) && outVC >= 0 && outVC < r.Outputs[outPort].VCs()
					c.check(legalOut, func() Violation {
						return Violation{Rule: "vc-legality", Cycle: cycle, Node: node, Port: port, VC: vc,
							Msg: fmt.Sprintf("active VC holds out-of-range output (port %d, vc %d)", outPort, outVC)}
					})
					if legalOut {
						held, hp, hv := r.Outputs[outPort].Held(outVC)
						c.check(held && hp == port && hv == vc, func() Violation {
							return Violation{Rule: "vc-legality", Cycle: cycle, Node: node, Port: port, VC: vc,
								Msg: fmt.Sprintf("active VC claims output (port %d, vc %d) but that VC records held=%v by input (port %d, vc %d) — grant without request", outPort, outVC, held, hp, hv)}
						})
					}
				default:
					c.report(Violation{Rule: "vc-legality", Cycle: cycle, Node: node, Port: port, VC: vc,
						Msg: fmt.Sprintf("unknown VC stage %d", stage)})
				}
			}
		}
		for port, out := range r.Outputs {
			for vc := 0; vc < out.VCs(); vc++ {
				vc := vc
				held, hp, hv := out.Held(vc)
				if !held {
					continue
				}
				legalIn := hp >= 0 && hp < len(r.Inputs) && hv >= 0 && hv < r.Inputs[hp].VCs()
				c.check(legalIn, func() Violation {
					return Violation{Rule: "vc-legality", Cycle: cycle, Node: node, Port: port, VC: vc,
						Msg: fmt.Sprintf("output VC held by out-of-range input (port %d, vc %d)", hp, hv)}
				})
				if legalIn {
					stage, op, ov, _ := r.Inputs[hp].VCState(hv)
					c.check(stage == router.VCActive && op == port && ov == vc, func() Violation {
						return Violation{Rule: "vc-legality", Cycle: cycle, Node: node, Port: port, VC: vc,
							Msg: fmt.Sprintf("output VC held by input (port %d, vc %d) which is %v toward (port %d, vc %d) — stale grant", hp, hv, stage, op, ov)}
					})
				}
			}
			// The output pipeline drains in readiness order.
			var lastReady sim.Time
			for i := 0; i < out.QueuedTx(); i++ {
				i, e := i, out.TxAt(i)
				c.check(i == 0 || e.ReadyAt() >= lastReady, func() Violation {
					return Violation{Rule: "vc-legality", Cycle: cycle, Node: node, Port: port, VC: e.Flit().VC,
						Msg: fmt.Sprintf("output pipeline out of order: entry %d ready at %v before its predecessor at %v", i, e.ReadyAt(), lastReady)}
				})
				lastReady = e.ReadyAt()
			}
		}
	}
}

// scanLinks verifies the DVS protocol's static legality on every link:
// frequency and voltage pinned to table levels, transitions between
// adjacent levels only, state machine in a known state, and the energy
// ledger monotone non-decreasing.
func (c *Checker) scanLinks(cycle int64, now sim.Time) {
	for i, l := range c.links {
		ch := &c.channels[i]
		t := l.Table()
		levels := len(t.Volt)
		lv, tg, fr := l.Level(), l.TargetLevel(), l.TransitionFrom()
		c.check(lv >= 0 && lv < levels && tg >= 0 && tg < levels, func() Violation {
			return Violation{Rule: "dvs-legality", Cycle: cycle, Node: ch.node, Port: ch.port, VC: -1,
				Msg: fmt.Sprintf("level %d or target %d outside the %d-level table", lv, tg, levels)}
		})
		d := tg - lv
		c.check(d >= -1 && d <= 1, func() Violation {
			return Violation{Rule: "dvs-legality", Cycle: cycle, Node: ch.node, Port: ch.port, VC: -1,
				Msg: fmt.Sprintf("transition %d -> %d skips levels (one step per window allowed)", lv, tg)}
		})
		volt := l.Volt()
		switch st := l.State(); st {
		case link.Functional:
			c.check(tg == lv, func() Violation {
				return Violation{Rule: "dvs-legality", Cycle: cycle, Node: ch.node, Port: ch.port, VC: -1,
					Msg: fmt.Sprintf("functional but target %d != level %d", tg, lv)}
			})
			c.check(volt == t.Volt[lv], func() Violation {
				return Violation{Rule: "dvs-legality", Cycle: cycle, Node: ch.node, Port: ch.port, VC: -1,
					Msg: fmt.Sprintf("functional at level %d with off-table voltage %.3f V (want %.3f V)", lv, volt, t.Volt[lv])}
			})
		case link.VoltRamping, link.FreqLocking:
			okVolt := volt == t.Volt[lv] || volt == t.Volt[tg] ||
				(fr >= 0 && fr < levels && volt == t.Volt[fr])
			c.check(okVolt, func() Violation {
				return Violation{Rule: "dvs-legality", Cycle: cycle, Node: ch.node, Port: ch.port, VC: -1,
					Msg: fmt.Sprintf("%v with voltage %.3f V matching no endpoint of the %d -> %d transition", st, volt, fr, tg)}
			})
		default:
			c.report(Violation{Rule: "dvs-legality", Cycle: cycle, Node: ch.node, Port: ch.port, VC: -1,
				Msg: fmt.Sprintf("unknown link state %d", st)})
		}
		e := l.EnergyJ(now)
		last := c.lastEnergy[i]
		c.check(!math.IsNaN(e) && (last < 0 || e >= last), func() Violation {
			return Violation{Rule: "dvs-legality", Cycle: cycle, Node: ch.node, Port: ch.port, VC: -1,
				Msg: fmt.Sprintf("energy ledger went backwards: %.6g J after %.6g J", e, last)}
		})
		c.lastEnergy[i] = e
	}
}

func sortedKeys(m map[int64]int) []int64 {
	ks := make([]int64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
