package audit_test

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/flow"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// buildAudited returns a small audited mesh whose violations land in the
// returned slice instead of panicking.
func buildAudited(t *testing.T, mutate func(*network.Config)) (*network.Network, *[]audit.Violation) {
	t.Helper()
	var got []audit.Violation
	cfg := network.NewConfig()
	cfg.K = 4
	cfg.Audit = audit.Options{
		Enabled:     true,
		ScanEvery:   16,
		OnViolation: func(v audit.Violation) { got = append(got, v) },
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n, &got
}

// launchTwoLevel attaches the paper's workload through the given cycle.
func launchTwoLevel(t *testing.T, n *network.Network, rate float64, cycles int64) {
	t.Helper()
	p := traffic.NewTwoLevelParams(rate)
	p.Seed = 7
	m, err := traffic.NewTwoLevel(p, n.Topo)
	if err != nil {
		t.Fatal(err)
	}
	n.Launch(m, sim.Time(cycles+1)*n.Cfg.RouterPeriod)
}

// rules collects the distinct violation rules seen.
func rules(vs []audit.Violation) map[string]int {
	m := map[string]int{}
	for _, v := range vs {
		m[v.Rule]++
	}
	return m
}

// TestCleanRunNoViolations: a healthy simulation under the paper's DVS
// policy — link transitions, credit round trips, thousands of packets —
// raises no violations while the checker demonstrably works.
func TestCleanRunNoViolations(t *testing.T) {
	n, got := buildAudited(t, nil)
	launchTwoLevel(t, n, 0.5, 20_000)
	n.Run(20_000)
	if len(*got) != 0 {
		t.Fatalf("clean run produced %d violations, first: %v", len(*got), (*got)[0])
	}
	s := n.Auditor().Stats()
	if s.Scans == 0 || s.Checks == 0 {
		t.Fatalf("audit did no work: %+v", s)
	}
	if s.Violations != 0 {
		t.Fatalf("stats count violations the collector never saw: %+v", s)
	}
}

// TestCleanRunAdaptiveRouting exercises the escape-VC adaptive router
// under audit.
func TestCleanRunAdaptiveRouting(t *testing.T) {
	n, got := buildAudited(t, func(c *network.Config) { c.Routing = "adaptive" })
	launchTwoLevel(t, n, 0.5, 15_000)
	n.Run(15_000)
	if len(*got) != 0 {
		t.Fatalf("adaptive clean run produced %d violations, first: %v", len(*got), (*got)[0])
	}
}

// TestCreditDropCaught is the fault-injection acceptance check: silently
// discarding a single credit — the canonical flow-control corruption —
// must be caught by the next conservation scan with a diagnostic naming
// the router, port and VC.
func TestCreditDropCaught(t *testing.T) {
	n, got := buildAudited(t, nil)
	launchTwoLevel(t, n, 0.5, 2_000)
	n.Run(1_000)
	if len(*got) != 0 {
		t.Fatalf("violations before the fault: %v", (*got)[0])
	}

	node := n.Topo.NodeAt(1, 1)
	port := n.Topo.PortFor(0, topology.Plus)
	const vc = 1
	n.Routers[node].Outputs[port].DropCreditForTest(vc)

	n.Run(1_000)
	if len(*got) == 0 {
		t.Fatal("dropped credit went undetected")
	}
	v := (*got)[0]
	if v.Rule != "credit-conservation" {
		t.Fatalf("rule = %q, want credit-conservation (%v)", v.Rule, v)
	}
	if v.Node != node || v.Port != port || v.VC != vc {
		t.Fatalf("diagnostic names (router %d, port %d, vc %d), want (%d, %d, %d): %v",
			v.Node, v.Port, v.VC, node, port, vc, v)
	}
	for _, part := range []string{"router", "port", "vc", "does not balance"} {
		if !strings.Contains(v.String(), part) {
			t.Errorf("diagnostic %q missing %q", v.String(), part)
		}
	}
}

// TestDeadlockWatchdog: wedging a channel (draining all its credits) stalls
// an injected packet forever; the watchdog must fire with a wait-for dump
// naming the blocked VC and what it waits on.
func TestDeadlockWatchdog(t *testing.T) {
	n, got := buildAudited(t, func(c *network.Config) {
		c.Policy = network.PolicyNone
		c.Audit.StallCycles = 1_500
	})

	// Drain every credit of node 0's +x channel, then send a packet that
	// must cross it (DOR corrects dimension 0 first).
	src := n.Topo.NodeAt(0, 0)
	dst := n.Topo.NodeAt(3, 0)
	port := n.Topo.PortFor(0, topology.Plus)
	out := n.Routers[src].Outputs[port]
	for vc := 0; vc < out.VCs(); vc++ {
		for out.Credits(vc) > 0 {
			out.DropCreditForTest(vc)
		}
	}
	n.Inject(src, dst, 0, 0)
	n.Run(4_000)

	r := rules(*got)
	if r["deadlock"] == 0 {
		t.Fatalf("watchdog never fired; rules seen: %v", r)
	}
	var dump string
	for _, v := range *got {
		if v.Rule == "deadlock" {
			dump = v.Msg
			break
		}
	}
	for _, part := range []string{"wait-for", "router 0", "packet 1", "0 credits"} {
		if !strings.Contains(dump, part) {
			t.Errorf("wait-for dump missing %q:\n%s", part, dump)
		}
	}
}

// TestLivelockAgeLimit: MaxPacketAge flags a packet that outstays its
// welcome in the network.
func TestLivelockAgeLimit(t *testing.T) {
	n, got := buildAudited(t, func(c *network.Config) {
		c.Policy = network.PolicyNone
		c.Audit.ScanEvery = 8
		c.Audit.MaxPacketAge = 5
	})
	n.Inject(n.Topo.NodeAt(0, 0), n.Topo.NodeAt(3, 3), 0, 0)
	n.Run(40) // ~6 hops x 13-cycle pipeline: still in flight at age 5
	if rules(*got)["livelock"] == 0 {
		t.Fatalf("age limit never tripped; rules seen: %v", rules(*got))
	}
}

// TestGhostFlitCaught: ejecting a flit the ledger never saw is reported.
func TestGhostFlitCaught(t *testing.T) {
	n, got := buildAudited(t, nil)
	p := flow.NewPacket(999, 0, 5, 0, 0)
	f := flow.NewPacketFlits(p)[0]
	n.Auditor().OnEject(f, 5, 0)
	if len(*got) != 1 || (*got)[0].Rule != "flit-conservation" {
		t.Fatalf("ghost eject not reported: %v", *got)
	}
	if !strings.Contains((*got)[0].Msg, "not in flight") {
		t.Errorf("diagnostic %q does not explain the ghost", (*got)[0].Msg)
	}
}

// TestDuplicateInjectCaught: reusing a packet ID is a ledger violation.
func TestDuplicateInjectCaught(t *testing.T) {
	n, got := buildAudited(t, nil)
	p := flow.NewPacket(42, 0, 5, 0, 0)
	n.Auditor().OnInject(p, 0)
	n.Auditor().OnInject(p, 0)
	if len(*got) != 1 || !strings.Contains((*got)[0].Msg, "twice") {
		t.Fatalf("duplicate inject not reported: %v", *got)
	}
}

// TestViolationString pins the diagnostic format tests and humans grep for.
func TestViolationString(t *testing.T) {
	v := audit.Violation{Rule: "credit-conservation", Cycle: 128, Node: 9, Port: 2, VC: 1, Msg: "imbalance"}
	s := v.String()
	for _, part := range []string{"audit[credit-conservation]", "cycle 128", "router 9", "port 2", "vc 1", "imbalance"} {
		if !strings.Contains(s, part) {
			t.Errorf("String() = %q missing %q", s, part)
		}
	}
	bare := audit.Violation{Rule: "deadlock", Cycle: 5, Node: -1, Port: -1, VC: -1, Msg: "stuck"}
	if s := bare.String(); strings.Contains(s, "router") || strings.Contains(s, "port") {
		t.Errorf("coordinate-free violation leaked coordinates: %q", s)
	}
}

// TestDisabledAuditIsAbsent: without the option the network carries no
// checker at all.
func TestDisabledAuditIsAbsent(t *testing.T) {
	cfg := network.NewConfig()
	cfg.K = 4
	n, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n.Auditor() != nil {
		t.Fatal("audit present despite Enabled=false")
	}
}
