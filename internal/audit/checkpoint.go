package audit

import (
	"fmt"
	"sort"
)

// PacketRecord is one ledger entry in a checkpoint, keyed by packet ID.
// Active (flits exist in the network) is exactly !Queued.
type PacketRecord struct {
	ID           int64
	Queued       bool
	Ejected      int32
	DequeueCycle int64
}

// CheckpointState is the complete serializable state of a Checker: the
// packet ledger, the per-link energy readings of the last structural scan
// (in the checker's channel order, which is a pure function of the
// topology), the watchdog's progress plateau, and the counters.
type CheckpointState struct {
	Ledger            []PacketRecord
	LastEnergy        []float64
	LastProgress      int64
	LastProgressCycle int64
	WatchdogOnce      bool
	Stats             Stats
}

// Checkpoint captures the checker's state. The ledger is emitted sorted by
// packet ID so captures of identical simulations are identical.
func (c *Checker) Checkpoint() *CheckpointState {
	st := &CheckpointState{
		Ledger:            make([]PacketRecord, 0, len(c.ledger)),
		LastEnergy:        append([]float64(nil), c.lastEnergy...),
		LastProgress:      c.lastProgress,
		LastProgressCycle: c.lastProgressCycle,
		WatchdogOnce:      c.watchdogOnce,
		Stats:             c.stats,
	}
	for id, rec := range c.ledger {
		st.Ledger = append(st.Ledger, PacketRecord{
			ID:           id,
			Queued:       rec.queued,
			Ejected:      int32(rec.ejected),
			DequeueCycle: rec.dequeueCycle,
		})
	}
	sort.Slice(st.Ledger, func(i, j int) bool { return st.Ledger[i].ID < st.Ledger[j].ID })
	return st
}

// Restore overwrites a freshly constructed checker (same wiring shape as
// the captured one) with a checkpoint.
func (c *Checker) Restore(st *CheckpointState) error {
	if len(st.LastEnergy) != len(c.lastEnergy) {
		return fmt.Errorf("audit: restore with %d link energy readings, want %d", len(st.LastEnergy), len(c.lastEnergy))
	}
	c.ledger = make(map[int64]*pktRecord, len(st.Ledger))
	c.active = make(map[int64]*pktRecord, len(st.Ledger))
	for _, pr := range st.Ledger {
		if pr.Ejected < 0 || pr.Ejected > 127 {
			return fmt.Errorf("audit: restore packet %d with %d ejected flits", pr.ID, pr.Ejected)
		}
		rec := &pktRecord{queued: pr.Queued, ejected: int8(pr.Ejected), dequeueCycle: pr.DequeueCycle}
		if _, dup := c.ledger[pr.ID]; dup {
			return fmt.Errorf("audit: restore with duplicate packet id %d", pr.ID)
		}
		c.ledger[pr.ID] = rec
		if !pr.Queued {
			c.active[pr.ID] = rec
		}
	}
	copy(c.lastEnergy, st.LastEnergy)
	c.lastProgress = st.LastProgress
	c.lastProgressCycle = st.LastProgressCycle
	c.watchdogOnce = st.WatchdogOnce
	c.stats = st.Stats
	return nil
}
