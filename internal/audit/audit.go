// Package audit is the platform's runtime invariant checker. Wired into
// the network's event loop, it continuously verifies the flit-level
// mechanics the paper's results rest on: conservation of flits and
// credits, legality of the router VC state machines, legality of the DVS
// link protocol (no flit during a frequency transition, voltage and
// frequency always at a table level, energy accounting monotone), and a
// deadlock/livelock watchdog that dumps a readable wait-for snapshot when
// the network stops making progress.
//
// The checker is pluggable: the network threads a nil-checked pointer
// through its hot paths, so a disabled audit costs one pointer compare per
// hook site. Enabled, per-event hooks run O(1) bookkeeping and the
// heavyweight structural scans run every Options.ScanEvery cycles.
package audit

import (
	"fmt"
	"strings"

	"repro/internal/flow"
	"repro/internal/link"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Defaults for Options fields left zero.
const (
	DefaultScanEvery   = 64     // structural scan period, router cycles
	DefaultStallCycles = 25_000 // watchdog threshold, router cycles
)

// Options configure a Checker.
type Options struct {
	// Enabled turns the whole subsystem on. When false the network keeps a
	// nil checker and every hook site reduces to one pointer compare.
	Enabled bool
	// ScanEvery is the period, in router cycles, of the structural scans
	// (conservation, state-machine and DVS-legality sweeps). Zero means
	// DefaultScanEvery.
	ScanEvery int64
	// StallCycles is the deadlock-watchdog threshold: a violation fires
	// when no flit anywhere moves for this many cycles while packets are
	// in flight. Zero means DefaultStallCycles.
	StallCycles int64
	// MaxPacketAge, when positive, flags any packet still in the network
	// this many cycles after leaving its source queue (livelock check).
	// Zero disables it: under saturation a packet may legally spend an
	// unbounded time queued and a long time buffered.
	MaxPacketAge int64
	// OnViolation observes every violation. Nil panics on the first one,
	// which is the right default for simulations: a broken invariant means
	// every number produced afterwards is suspect.
	OnViolation func(Violation)
}

func (o Options) withDefaults() Options {
	if o.ScanEvery <= 0 {
		o.ScanEvery = DefaultScanEvery
	}
	if o.StallCycles <= 0 {
		o.StallCycles = DefaultStallCycles
	}
	return o
}

// Violation is one detected invariant breach. Node, Port and VC are -1
// when the rule is not tied to that coordinate.
type Violation struct {
	Rule  string // e.g. "credit-conservation", "dvs-legality", "deadlock"
	Cycle int64
	Node  int
	Port  int
	VC    int
	Msg   string
}

func (v Violation) String() string {
	var loc strings.Builder
	if v.Node >= 0 {
		fmt.Fprintf(&loc, " router %d", v.Node)
	}
	if v.Port >= 0 {
		fmt.Fprintf(&loc, " port %d", v.Port)
	}
	if v.VC >= 0 {
		fmt.Fprintf(&loc, " vc %d", v.VC)
	}
	return fmt.Sprintf("audit[%s] cycle %d%s: %s", v.Rule, v.Cycle, loc.String(), v.Msg)
}

// Stats summarizes a checker's work.
type Stats struct {
	Scans      int64 // structural scans executed
	Checks     int64 // individual invariant evaluations
	Violations int64
}

// TransitVisitor receives everything in flight outside router state during
// a conservation scan: messages in the network's delivery ring (and its
// scheduler-fallback list) plus partially injected packets at sources.
type TransitVisitor struct {
	// Flit observes a flit in transit toward a downstream input port.
	Flit func(in *router.InputPort, f *flow.Flit)
	// Credit observes a credit in transit toward an upstream output port.
	Credit func(out *router.OutputPort, vc int)
	// SourceFlit observes a flit of a partially injected packet still held
	// by the source injector at node src.
	SourceFlit func(src int, f *flow.Flit)
}

// Wiring connects a Checker to the platform it audits. The network layer
// fills it in; the checker only reads through it.
type Wiring struct {
	Topo    *topology.Cube
	Routers []*router.Router
	// LinkAt reports the DVS link leaving node through port, or nil for
	// the local port and unconnected mesh-edge ports.
	LinkAt func(node, port int) *link.DVSLink
	// InFlight reports packets injected but not yet delivered.
	InFlight func() int64
	// WalkTransit enumerates in-flight messages for conservation scans.
	WalkTransit func(TransitVisitor)
}

// pktRecord is the lifetime ledger entry of one in-flight packet.
type pktRecord struct {
	queued       bool // still whole in its source queue, no flits exist yet
	ejected      int8 // flits ejected at the destination so far
	dequeueCycle int64
}

// channel is one audited inter-router connection: the upstream output port
// and the downstream input port its credits account for.
type channel struct {
	node, port int // upstream coordinates (for diagnostics)
	out        *router.OutputPort
	in         *router.InputPort
	link       *link.DVSLink
}

// inKey / outKey key the per-scan transit tallies.
type inKey struct {
	in *router.InputPort
	vc int
}
type outKey struct {
	out *router.OutputPort
	vc  int
}

// Checker is the runtime invariant audit. All methods run on the
// simulation goroutine; a Checker is not safe for concurrent use.
type Checker struct {
	opts Options
	w    Wiring

	channels []channel
	edges    []channel // unconnected mesh-edge ports (link == nil), must stay pristine

	// ledger holds every in-flight packet; active the subset whose flits
	// exist in the network (dequeued from the source queue). Scans walk
	// only active so congestion-era source queues don't inflate scan cost.
	ledger map[int64]*pktRecord
	active map[int64]*pktRecord

	// lastEnergy is the per-link energy reading of the previous scan, for
	// the monotonicity check.
	lastEnergy []float64
	links      []*link.DVSLink

	// Watchdog progress state.
	lastProgress      int64
	lastProgressCycle int64

	stats Stats

	// Scan scratch, reused to bound per-scan allocation.
	flitCount    map[int64]int
	transitFlit  map[inKey]int
	transitCred  map[outKey]int
	perVCTx      []int
	watchdogOnce bool // a stall was already reported for the current plateau
}

// New builds a checker over a fully constructed platform and arms the
// routers' in-pipeline assertions.
func New(o Options, w Wiring) *Checker {
	c := &Checker{
		opts:        o.withDefaults(),
		w:           w,
		ledger:      make(map[int64]*pktRecord),
		active:      make(map[int64]*pktRecord),
		flitCount:   make(map[int64]int),
		transitFlit: make(map[inKey]int),
		transitCred: make(map[outKey]int),
	}
	for node, r := range w.Routers {
		r.Asserts = true
		c.perVCTx = make([]int, r.Cfg.VCs)
		for port := 1; port < r.Cfg.Ports; port++ {
			l := w.LinkAt(node, port)
			if l == nil {
				c.edges = append(c.edges, channel{node: node, port: port, out: r.Outputs[port]})
				continue
			}
			dim, dir := w.Topo.DimDir(port)
			dst, ok := w.Topo.Neighbor(node, dim, dir)
			if !ok {
				panic(fmt.Sprintf("audit: link on node %d port %d leads off the topology", node, port))
			}
			in := w.Routers[dst].Inputs[w.Topo.PortFor(dim, 1-dir)]
			c.channels = append(c.channels, channel{node: node, port: port, out: r.Outputs[port], in: in, link: l})
			c.links = append(c.links, l)
		}
	}
	c.lastEnergy = make([]float64, len(c.links))
	for i := range c.lastEnergy {
		c.lastEnergy[i] = -1 // unseen
	}
	return c
}

// Stats reports the checker's counters.
func (c *Checker) Stats() Stats { return c.stats }

func (c *Checker) report(v Violation) {
	c.stats.Violations++
	if c.opts.OnViolation != nil {
		c.opts.OnViolation(v)
		return
	}
	panic(v.String())
}

func (c *Checker) check(ok bool, v func() Violation) {
	c.stats.Checks++
	if !ok {
		c.report(v())
	}
}

// OnInject records a packet accepted into a source queue.
func (c *Checker) OnInject(p *flow.Packet, cycle int64) {
	nodes := c.w.Topo.Nodes()
	c.check(p.Src >= 0 && p.Src < nodes && p.Dst >= 0 && p.Dst < nodes && p.Src != p.Dst, func() Violation {
		return Violation{Rule: "flit-conservation", Cycle: cycle, Node: p.Src, Port: -1, VC: -1,
			Msg: fmt.Sprintf("packet %d injected with illegal endpoints src=%d dst=%d", p.ID, p.Src, p.Dst)}
	})
	_, dup := c.ledger[p.ID]
	c.check(!dup, func() Violation {
		return Violation{Rule: "flit-conservation", Cycle: cycle, Node: p.Src, Port: -1, VC: -1,
			Msg: fmt.Sprintf("packet id %d injected twice", p.ID)}
	})
	c.ledger[p.ID] = &pktRecord{queued: true}
}

// OnSourceDequeue records a packet leaving its source queue: its flit
// train now exists and enters conservation scans.
func (c *Checker) OnSourceDequeue(p *flow.Packet, cycle int64) {
	rec := c.ledger[p.ID]
	c.check(rec != nil && rec.queued, func() Violation {
		return Violation{Rule: "flit-conservation", Cycle: cycle, Node: p.Src, Port: -1, VC: -1,
			Msg: fmt.Sprintf("packet %d dequeued for injection but not ledgered as queued", p.ID)}
	})
	if rec == nil {
		return
	}
	rec.queued = false
	rec.dequeueCycle = cycle
	c.active[p.ID] = rec
}

// OnEject records one flit leaving the network through node's local port.
func (c *Checker) OnEject(f *flow.Flit, node int, cycle int64) {
	rec := c.active[f.Packet.ID]
	c.check(rec != nil, func() Violation {
		return Violation{Rule: "flit-conservation", Cycle: cycle, Node: node, Port: topology.LocalPort, VC: f.VC,
			Msg: fmt.Sprintf("ejected flit %d of packet %d which is not in flight", f.Seq, f.Packet.ID)}
	})
	if rec == nil {
		return
	}
	c.check(f.Packet.Dst == node, func() Violation {
		return Violation{Rule: "flit-conservation", Cycle: cycle, Node: node, Port: topology.LocalPort, VC: f.VC,
			Msg: fmt.Sprintf("packet %d ejected at node %d but addressed to %d", f.Packet.ID, node, f.Packet.Dst)}
	})
	c.check(int(rec.ejected) == f.Seq, func() Violation {
		return Violation{Rule: "flit-conservation", Cycle: cycle, Node: node, Port: topology.LocalPort, VC: f.VC,
			Msg: fmt.Sprintf("packet %d ejected flit %d after %d earlier flits — out of order or interleaved", f.Packet.ID, f.Seq, rec.ejected)}
	})
	rec.ejected++
}

// OnDeliver records a completed packet (its tail just ejected).
func (c *Checker) OnDeliver(p *flow.Packet, cycle int64) {
	rec := c.active[p.ID]
	c.check(rec != nil && int(rec.ejected) == flow.FlitsPerPacket, func() Violation {
		got := int8(-1)
		if rec != nil {
			got = rec.ejected
		}
		return Violation{Rule: "flit-conservation", Cycle: cycle, Node: p.Dst, Port: -1, VC: -1,
			Msg: fmt.Sprintf("packet %d delivered with %d/%d flits ejected", p.ID, got, flow.FlitsPerPacket)}
	})
	c.check(p.Delivered >= p.Created, func() Violation {
		return Violation{Rule: "flit-conservation", Cycle: cycle, Node: p.Dst, Port: -1, VC: -1,
			Msg: fmt.Sprintf("packet %d delivered at %v before its creation at %v", p.ID, p.Delivered, p.Created)}
	})
	delete(c.active, p.ID)
	delete(c.ledger, p.ID)
}

// OnLinkSend checks a flit about to enter the channel leaving
// (node, port): the DVS protocol forbids transmission while the receiver
// re-locks to a new frequency, and the serializer must be clear.
func (c *Checker) OnLinkSend(node, port int, l *link.DVSLink, f *flow.Flit, now sim.Time, cycle int64) {
	c.check(l.State() != link.FreqLocking, func() Violation {
		return Violation{Rule: "dvs-legality", Cycle: cycle, Node: node, Port: port, VC: f.VC,
			Msg: fmt.Sprintf("flit %d of packet %d sent while the link is frequency-locking (dead)", f.Seq, f.Packet.ID)}
	})
	c.check(l.CanSend(now), func() Violation {
		return Violation{Rule: "dvs-legality", Cycle: cycle, Node: node, Port: port, VC: f.VC,
			Msg: fmt.Sprintf("flit %d of packet %d sent at %v while the previous flit still occupies the serializer", f.Seq, f.Packet.ID, now)}
	})
}

// ScanEvery reports the structural scan period in router cycles. The
// network's quiescent fast-forward uses it to land on every scan cycle
// exactly, so auditing sees the same cycle numbers either way.
func (c *Checker) ScanEvery() int64 { return c.opts.ScanEvery }

// EndCycle runs once per router cycle after the network finishes its step;
// the structural scans run every ScanEvery cycles.
func (c *Checker) EndCycle(cycle int64, now sim.Time) {
	if cycle%c.opts.ScanEvery != 0 {
		return
	}
	c.stats.Scans++
	c.scanConservation(cycle)
	c.scanRouters(cycle)
	c.scanLinks(cycle, now)
	c.watchdog(cycle)
}
