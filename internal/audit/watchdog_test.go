package audit_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/checkpoint"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TestWatchdogNamesStallCycle: the deadlock report must carry the cycle it
// fired on and how long the progress plateau lasted. Wedge node 0's +x
// channel by draining every credit, strand a packet behind it, and check
// the arithmetic in the violation.
func TestWatchdogNamesStallCycle(t *testing.T) {
	const stall = 1_200
	n, got := buildAudited(t, func(c *network.Config) {
		c.Policy = network.PolicyNone
		c.Audit.StallCycles = stall
	})

	src := n.Topo.NodeAt(0, 0)
	port := n.Topo.PortFor(0, topology.Plus)
	out := n.Routers[src].Outputs[port]
	for vc := 0; vc < out.VCs(); vc++ {
		for out.Credits(vc) > 0 {
			out.DropCreditForTest(vc)
		}
	}
	n.Inject(src, n.Topo.NodeAt(3, 0), 0, 0)
	n.Run(4_000)

	var v audit.Violation
	found := false
	for _, w := range *got {
		if w.Rule == "deadlock" {
			v, found = w, true
			break
		}
	}
	if !found {
		t.Fatalf("watchdog never fired; rules seen: %v", rules(*got))
	}
	if v.Cycle < stall {
		t.Errorf("deadlock reported at cycle %d, before the %d-cycle stall window could elapse", v.Cycle, stall)
	}
	if want := fmt.Sprintf("cycle %d", v.Cycle); !strings.Contains(v.String(), want) {
		t.Errorf("diagnostic %q does not name %q", v.String(), want)
	}
	var plateau, inFlight int64
	if _, err := fmt.Sscanf(v.Msg, "no flit moved for %d cycles with %d packets in flight", &plateau, &inFlight); err != nil {
		t.Fatalf("stall message %q does not carry the plateau arithmetic: %v", v.Msg, err)
	}
	if plateau < stall {
		t.Errorf("reported plateau of %d cycles is shorter than the %d-cycle window", plateau, stall)
	}
	if inFlight == 0 {
		t.Error("deadlock reported with no packets in flight")
	}
	if plateau > v.Cycle {
		t.Errorf("plateau of %d cycles exceeds the %d cycles simulated", plateau, v.Cycle)
	}
}

// TestWatchdogSilentAcrossFork: restoring a checkpoint must not look like
// a stall to the watchdog. The progress detector baselines itself against
// counters the restore rebuilds, so a healthy forked run — audited from
// warmup capture through a full measurement — stays violation-free.
func TestWatchdogSilentAcrossFork(t *testing.T) {
	const warm, meas = 1_500, 3_000
	var got []audit.Violation
	cfg := network.NewConfig()
	cfg.K = 4
	cfg.Audit = audit.Options{
		Enabled:     true,
		ScanEvery:   16,
		StallCycles: 700,
		OnViolation: func(v audit.Violation) { got = append(got, v) },
	}

	horizon := sim.Time(warm+meas+1) * cfg.RouterPeriod
	p := traffic.NewTwoLevelParams(0.3)
	p.Seed = 7
	m, err := traffic.NewTwoLevel(p, topology.New(cfg.K, cfg.N, cfg.Torus))
	if err != nil {
		t.Fatal(err)
	}
	tr := traffic.Capture(m, horizon)

	warmed, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warmed.Launch(tr, horizon)
	warmed.SetDVSHold(true)
	warmed.Run(warm)
	snap, err := checkpoint.Capture(warmed)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("violations before the fork: %v", got[0])
	}

	forked, err := checkpoint.Fork(snap, cfg, tr)
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	forked.SetDVSHold(false)
	forked.BeginMeasurement()
	forked.Run(meas)

	if len(got) != 0 {
		t.Fatalf("audit fired across the fork boundary: %v", got[0])
	}
	s := forked.Auditor().Stats()
	if s.Scans == 0 || s.Checks == 0 {
		t.Fatalf("forked run was not actually audited: %+v", s)
	}
}
