package bench

import "testing"

// TestAllocRegressed pins the baseline-diff classification cmd/benchjson
// applies to allocs/op — in particular that a benchmark at 0 allocs in
// both the baseline and the current run reports as unchanged, not as
// allocs-from-zero noise.
func TestAllocRegressed(t *testing.T) {
	const threshold = 0.10
	cases := []struct {
		name      string
		base, now int64
		want      bool
	}{
		{"zero-to-zero-unchanged", 0, 0, false},
		{"zero-to-one-regressed", 0, 1, true},
		{"zero-to-many-regressed", 0, 64, true},
		{"nonzero-unchanged", 12, 12, false},
		{"within-threshold", 100, 110, false},
		{"beyond-threshold", 100, 111, true},
		{"improvement", 100, 3, false},
		{"to-zero-improvement", 7, 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := AllocRegressed(c.base, c.now, threshold); got != c.want {
				t.Errorf("AllocRegressed(%d, %d, %g) = %t, want %t",
					c.base, c.now, threshold, got, c.want)
			}
		})
	}
}
