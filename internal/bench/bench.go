// Package bench exports the end-to-end simulation benchmarks shared by the
// `go test -bench` wrappers at the repo root and cmd/benchjson, which runs
// them programmatically (via testing.Benchmark) to write the committed
// BENCH_pr4.json trajectory. Benchmarks defined in _test files cannot be
// imported, so the bodies live here.
package bench

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/exp"
	"repro/internal/flow"
	"repro/internal/network"
	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// The end-to-end Step benchmarks run the paper's 8x8 platform at two
// operating points of its load sweep: near-idle, where the activity-driven
// core should elide almost every router tick, and past saturation, where
// every router is busy and the active list must cost (almost) nothing.
const (
	LowLoadRate    = 0.05
	SaturationRate = 4.0
)

// Step measures b.N router cycles of the paper's full 8x8 platform under a
// two-level workload at the given aggregate rate. The workload is captured
// as an arrival trace before the timer starts and replayed during the timed
// region, so the benchmark measures the network datapath — the saturation
// sweep's steady state, where experiment runs share memoized traces — not
// workload generation. It reports two extra metrics: cycles/sec
// (router-cycle throughput) and elision-ratio (the fraction of baseline
// router ticks the activity-driven core skipped during the timed region;
// zero when noskip pins the always-tick path).
func Step(b *testing.B, rate float64, noskip bool) {
	cfg := network.NewConfig()
	cfg.NoSkip = noskip
	n, err := network.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := traffic.NewTwoLevelParams(rate)
	m, err := traffic.NewTwoLevel(p, n.Topo)
	if err != nil {
		b.Fatal(err)
	}
	const prime = 5000 // cycles to fill the pipelines before timing
	horizon := sim.Time(prime+int64(b.N)+2) * n.Cfg.RouterPeriod
	n.Launch(traffic.Capture(m, horizon), horizon)
	n.Run(prime)
	before := n.SkipStats()
	b.ReportAllocs()
	b.ResetTimer()
	n.Run(int64(b.N))
	b.StopTimer()
	after := n.SkipStats()
	ticks := after.RouterTicks - before.RouterTicks
	elided := after.RouterTicksElided - before.RouterTicksElided
	if total := ticks + elided; total > 0 {
		b.ReportMetric(float64(elided)/float64(total), "elision-ratio")
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "cycles/sec")
	}
}

// FiguresRunAll measures a full experiment-harness regeneration (the fig10
// latency/power sweep) against the persistent run cache, on the tiny test
// budget so iterations stay sub-second. With warmCache the store is
// pre-populated and every iteration replays disk entries; without it each
// iteration runs under a fresh cache generation so every point misses and
// simulates. The in-memory memo is reset outside the timed region either
// way, so the pair isolates disk-replay versus simulate cost — the
// cold-to-warm ratio is the headline number of the result cache.
func FiguresRunAll(b *testing.B, warmCache bool) {
	dir, err := os.MkdirTemp("", "runcache-bench-")
	if err != nil {
		b.Fatal(err)
	}
	exp.SetTinyBudget(true)
	exp.ResetCaches()
	defer func() {
		exp.SetDiskCache(nil)
		exp.SetTinyBudget(false)
		exp.ResetCaches()
		os.RemoveAll(dir)
	}()
	ids := []string{"fig10"}
	o := exp.Options{Quick: true}
	open := func(fingerprint string) {
		s, err := runcache.Open(dir, runcache.Options{Fingerprint: fingerprint})
		if err != nil {
			b.Fatal(err)
		}
		exp.SetDiskCache(s)
	}
	if warmCache {
		open("bench-warm")
		if _, err := exp.RunAll(ids, o); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		exp.ResetCaches()
		if !warmCache {
			// A fresh fingerprint generation guarantees cold misses without
			// clearing the directory inside the timed region.
			open(fmt.Sprintf("bench-gen-%d", i))
		}
		b.StartTimer()
		if _, err := exp.RunAll(ids, o); err != nil {
			b.Fatal(err)
		}
	}
}

// SchedulerPushPop measures the steady-state cost of one schedule+dispatch
// pair with ~1k events pending — the simulation kernel's hot path. Mirrors
// the benchmark in internal/sim.
func SchedulerPushPop(b *testing.B) {
	var s sim.Scheduler
	fn := func() {}
	for i := 0; i < 1024; i++ {
		s.At(sim.Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+sim.Time(i%64)+1, fn)
		s.Step()
	}
}

// PacketAlloc measures packet + flit-train construction, the allocation hot
// path of packet injection. Mirrors the benchmark in internal/flow.
func PacketAlloc(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := flow.NewPacket(int64(i), 0, 1, 0, -1)
		_ = flow.NewPacketFlits(p)
	}
}
