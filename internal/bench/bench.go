// Package bench exports the end-to-end simulation benchmarks shared by the
// `go test -bench` wrappers at the repo root and cmd/benchjson, which runs
// them programmatically (via testing.Benchmark) to write the committed
// BENCH_pr4.json trajectory. Benchmarks defined in _test files cannot be
// imported, so the bodies live here.
package bench

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/exp"
	"repro/internal/flow"
	"repro/internal/network"
	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/traffic/tracestore"
)

// The end-to-end Step benchmarks run the paper's 8x8 platform at two
// operating points of its load sweep: near-idle, where the activity-driven
// core should elide almost every router tick, and past saturation, where
// every router is busy and the active list must cost (almost) nothing.
const (
	LowLoadRate    = 0.05
	SaturationRate = 4.0
)

// Step measures b.N router cycles of the paper's full 8x8 platform under a
// two-level workload at the given aggregate rate. The workload is captured
// as an arrival trace before the timer starts and replayed during the timed
// region, so the benchmark measures the network datapath — the saturation
// sweep's steady state, where experiment runs share memoized traces — not
// workload generation. It reports two extra metrics: cycles/sec
// (router-cycle throughput) and elision-ratio (the fraction of baseline
// router ticks the activity-driven core skipped during the timed region;
// zero when noskip pins the always-tick path).
func Step(b *testing.B, rate float64, noskip bool) {
	step(b, rate, noskip, 0)
}

// StepTiled is Step on the tile-parallel core: the same saturated platform
// partitioned into the given number of tiles, each advancing through
// extracted-lookahead windows with merge elision. tiles=1 measures the
// tiled engine's bookkeeping overhead over the single-scheduler core (the
// acceptance bound); higher counts meter window-planning and merge cost —
// on a single-CPU host they cannot win wall clock, the committed numbers
// document that the machinery stays cheap.
func StepTiled(b *testing.B, tiles int) {
	step(b, SaturationRate, false, tiles)
}

// StepTiledRate is StepTiled at an arbitrary operating point; the low-load
// row documents barrier elision, which only pays off when cross-tile
// traffic is sparse.
func StepTiledRate(b *testing.B, rate float64, tiles int) {
	step(b, rate, false, tiles)
}

func step(b *testing.B, rate float64, noskip bool, tiles int) {
	cfg := network.NewConfig()
	cfg.NoSkip = noskip
	cfg.Tiles = tiles
	n, err := network.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := traffic.NewTwoLevelParams(rate)
	m, err := traffic.NewTwoLevel(p, n.Topo)
	if err != nil {
		b.Fatal(err)
	}
	const prime = 5000 // cycles to fill the pipelines before timing
	horizon := sim.Time(prime+int64(b.N)+2) * n.Cfg.RouterPeriod
	n.Launch(traffic.Capture(m, horizon), horizon)
	n.Run(prime)
	before := n.SkipStats()
	b.ReportAllocs()
	b.ResetTimer()
	n.Run(int64(b.N))
	b.StopTimer()
	after := n.SkipStats()
	ticks := after.RouterTicks - before.RouterTicks
	elided := after.RouterTicksElided - before.RouterTicksElided
	if total := ticks + elided; total > 0 {
		b.ReportMetric(float64(elided)/float64(total), "elision-ratio")
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "cycles/sec")
	}
	if tiles > 1 {
		// Barrier accounting over the timed region: merges per simulated
		// cycle (1.0 was the pre-extraction engine's fixed cadence) and the
		// fraction of planned windows whose merge was elided outright.
		barriers := after.TileBarriers - before.TileBarriers
		windows := after.TileWindows - before.TileWindows
		elidedW := after.TileBarriersElided - before.TileBarriersElided
		b.ReportMetric(float64(barriers)/float64(b.N), "barriers/cycle")
		if windows > 0 {
			b.ReportMetric(float64(elidedW)/float64(windows), "barrier-elision-frac")
		}
	}
}

// FiguresRunAll measures a full experiment-harness regeneration (the fig10
// latency/power sweep) against the persistent run cache, on the tiny test
// budget so iterations stay sub-second. With warmCache the store is
// pre-populated and every iteration replays disk entries; without it each
// iteration runs under a fresh cache generation so every point misses and
// simulates. The in-memory memo is reset outside the timed region either
// way, so the pair isolates disk-replay versus simulate cost — the
// cold-to-warm ratio is the headline number of the result cache.
func FiguresRunAll(b *testing.B, warmCache bool) {
	dir, err := os.MkdirTemp("", "runcache-bench-")
	if err != nil {
		b.Fatal(err)
	}
	exp.SetTinyBudget(true)
	exp.ResetCaches()
	defer func() {
		exp.SetDiskCache(nil)
		exp.SetTinyBudget(false)
		exp.ResetCaches()
		os.RemoveAll(dir)
	}()
	ids := []string{"fig10"}
	o := exp.Options{Quick: true}
	open := func(fingerprint string) {
		s, err := runcache.Open(dir, runcache.Options{Fingerprint: fingerprint})
		if err != nil {
			b.Fatal(err)
		}
		exp.SetDiskCache(s)
	}
	if warmCache {
		open("bench-warm")
		if _, err := exp.RunAll(ids, o); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		exp.ResetCaches()
		if !warmCache {
			// A fresh fingerprint generation guarantees cold misses without
			// clearing the directory inside the timed region.
			open(fmt.Sprintf("bench-gen-%d", i))
		}
		b.StartTimer()
		if _, err := exp.RunAll(ids, o); err != nil {
			b.Fatal(err)
		}
	}
}

// Sweep measures one multi-policy threshold sweep — the fig13 grid, 3
// rates x 6 Table 2 settings on the tiny budget — with warmup
// checkpointing on or off. Checkpointed, the six settings at each rate
// fork one shared policy-frozen warmup; straight, every point pays for
// its own. The pair's ratio is the headline number of the checkpoint
// subsystem; warmup-cycles/op meters the work actually avoided.
func Sweep(b *testing.B, noCheckpoint bool) {
	exp.SetTinyBudget(true)
	defer func() {
		exp.SetTinyBudget(false)
		exp.ResetCaches()
	}()
	o := exp.Options{Quick: true, NoCheckpoint: noCheckpoint}
	b.ReportAllocs()
	b.ResetTimer()
	warmBefore := exp.WarmupCyclesExecuted()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		exp.ResetCaches() // every iteration re-simulates the whole grid
		b.StartTimer()
		if _, err := exp.RunAll([]string{"fig13"}, o); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(exp.WarmupCyclesExecuted()-warmBefore)/float64(b.N), "warmup-cycles/op")
}

// traceBenchHorizon is the capture window of the trace codec benchmarks:
// long enough for a few tens of thousands of arrivals at the default 8x8
// two-level workload, short enough that one capture stays well under a
// second.
const traceBenchHorizon = 20 * sim.Microsecond

// TraceCaptureCold measures what a point pays without the trace store:
// constructing the two-level workload model and capturing its arrival
// sequence by running it through a scheduler. The captured trace is
// encoded incrementally as it records, so the cost includes the codec's
// write side.
func TraceCaptureCold(b *testing.B) {
	topo := topology.NewMesh2D(8)
	p := traffic.NewTwoLevelParams(1.0)
	b.ReportAllocs()
	n := 0
	for i := 0; i < b.N; i++ {
		m, err := traffic.NewTwoLevel(p, topo)
		if err != nil {
			b.Fatal(err)
		}
		n = traffic.Capture(m, traceBenchHorizon).Len()
	}
	if n == 0 {
		b.Fatal("capture recorded no arrivals")
	}
	b.ReportMetric(float64(n), "arrivals")
}

// TraceDecodeWarm measures the replacement: decoding the same workload's
// stored encoding (checksum, structural validation, cross-block time-order
// check — the full path Store.Load takes) and replaying every arrival
// through a scheduler. The ratio against TraceCaptureCold is the headline
// number of the trace store (trace_store_speedup_x in BENCH_pr9.json).
func TraceDecodeWarm(b *testing.B) {
	topo := topology.NewMesh2D(8)
	m, err := traffic.NewTwoLevel(traffic.NewTwoLevelParams(1.0), topo)
	if err != nil {
		b.Fatal(err)
	}
	tr := traffic.Capture(m, traceBenchHorizon)
	raw := tr.Encoded().Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := tracestore.Decode(raw)
		if err != nil {
			b.Fatal(err)
		}
		if err := enc.Validate(); err != nil {
			b.Fatal(err)
		}
		var sched sim.Scheduler
		got := 0
		traffic.FromEncoded(enc).Launch(&sched, traceBenchHorizon, func(int, int, sim.Time, int64) { got++ })
		sched.RunUntil(traceBenchHorizon)
		if got != tr.Len() {
			b.Fatalf("replayed %d of %d arrivals", got, tr.Len())
		}
	}
	b.ReportMetric(float64(tr.Len()), "arrivals")
}

// StoreOpenIndexed measures runcache.Open against a directory of entries
// whose index sidecar is valid: the open reads one sidecar file regardless
// of entry count — zero per-entry stats — where the pre-index scan walked
// every entry. The committed row runs at 1000 entries; the benchmark fails
// rather than silently measuring the fallback scan.
func StoreOpenIndexed(b *testing.B, entries int) {
	dir, err := os.MkdirTemp("", "runcache-open-bench-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	opts := runcache.Options{Fingerprint: "open-bench"}
	s, err := runcache.Open(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	for i := 0; i < entries; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := runcache.Open(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !h.IndexLoaded() {
			b.Fatal("index sidecar not trusted; this would measure the directory scan")
		}
	}
}

// AllocRegressed classifies an allocs/op change against a baseline: a
// benchmark regresses when it allocates at all from a zero baseline (the
// zero is load-bearing and the ratio is undefined) or grows beyond the
// fractional threshold from a nonzero one. An unchanged count — including
// 0 -> 0, which is steady-state for the zero-alloc datapath benchmarks —
// is never a regression.
func AllocRegressed(base, now int64, threshold float64) bool {
	if now == base {
		return false
	}
	if base == 0 {
		return now > 0
	}
	return float64(now-base)/float64(base) > threshold
}

// SchedulerPushPop measures the steady-state cost of one schedule+dispatch
// pair with ~1k events pending — the simulation kernel's hot path. Mirrors
// the benchmark in internal/sim.
func SchedulerPushPop(b *testing.B) {
	var s sim.Scheduler
	fn := func() {}
	for i := 0; i < 1024; i++ {
		s.At(sim.Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+sim.Time(i%64)+1, fn)
		s.Step()
	}
}

// PacketAlloc measures packet + flit-train construction, the allocation hot
// path of packet injection. Mirrors the benchmark in internal/flow.
func PacketAlloc(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := flow.NewPacket(int64(i), 0, 1, 0, -1)
		_ = flow.NewPacketFlits(p)
	}
}
