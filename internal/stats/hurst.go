package stats

import "math"

// This file estimates the Hurst exponent H of a count series. Self-similar
// (long-range-dependent) traffic has 0.5 < H < 1, and the paper's Eq. 6
// autocorrelation decay r(k) ~ k^-beta corresponds to H = 1 - beta/2. The
// estimators validate that the two-level workload model really produces LRD
// injection processes while Poisson traffic does not.

// HurstAggVar estimates H by the aggregated-variance method: for block size
// m, the variance of the m-block means of an LRD series scales as
// m^(2H-2); the slope of log Var(m) against log m gives 2H-2. The series
// should hold at least ~1000 samples for a stable estimate.
func HurstAggVar(xs []float64) float64 {
	n := len(xs)
	if n < 16 {
		return math.NaN()
	}
	var logm, logv []float64
	for m := 1; m <= n/8; m *= 2 {
		blocks := n / m
		var st Stream
		for b := 0; b < blocks; b++ {
			sum := 0.0
			for i := b * m; i < (b+1)*m; i++ {
				sum += xs[i]
			}
			st.Add(sum / float64(m))
		}
		v := st.Var()
		if v <= 0 {
			continue
		}
		logm = append(logm, math.Log(float64(m)))
		logv = append(logv, math.Log(v))
	}
	slope, ok := linregress(logm, logv)
	if !ok {
		return math.NaN()
	}
	h := 1 + slope/2
	return h
}

// HurstRS estimates H by the classic rescaled-range method: E[R/S](n)
// scales as n^H.
func HurstRS(xs []float64) float64 {
	n := len(xs)
	if n < 32 {
		return math.NaN()
	}
	var logn, logrs []float64
	for m := 8; m <= n/4; m *= 2 {
		blocks := n / m
		var acc Stream
		for b := 0; b < blocks; b++ {
			rs := rescaledRange(xs[b*m : (b+1)*m])
			if !math.IsNaN(rs) && rs > 0 {
				acc.Add(rs)
			}
		}
		if acc.N() == 0 {
			continue
		}
		logn = append(logn, math.Log(float64(m)))
		logrs = append(logrs, math.Log(acc.Mean()))
	}
	slope, ok := linregress(logn, logrs)
	if !ok {
		return math.NaN()
	}
	return slope
}

// rescaledRange computes R/S of one block.
func rescaledRange(xs []float64) float64 {
	var st Stream
	for _, x := range xs {
		st.Add(x)
	}
	mean, std := st.Mean(), st.Std()
	if std == 0 {
		return math.NaN()
	}
	cum, lo, hi := 0.0, 0.0, 0.0
	for _, x := range xs {
		cum += x - mean
		if cum < lo {
			lo = cum
		}
		if cum > hi {
			hi = cum
		}
	}
	return (hi - lo) / std
}

// linregress fits y = a + b*x by least squares and returns b.
func linregress(xs, ys []float64) (slope float64, ok bool) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, false
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, false
	}
	return (n*sxy - sx*sy) / den, true
}
