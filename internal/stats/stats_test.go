package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestStreamMoments(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", s.Mean())
	}
	// Sample variance of that classic set is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("var = %g, want %g", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g", s.Min(), s.Max())
	}
}

func TestStreamMatchesDirectComputation(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var s Stream
		sum := 0.0
		for _, x := range xs {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		v := ss / float64(len(xs)-1)
		return math.Abs(s.Mean()-mean) < 1e-6 && math.Abs(s.Var()-v) < 1e-4*(1+v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 100) // 10 per bin
	}
	for i := 0; i < 10; i++ {
		if h.Count(i) != 10 {
			t.Errorf("bin %d = %d, want 10", i, h.Count(i))
		}
		if math.Abs(h.Fraction(i)-0.1) > 1e-12 {
			t.Errorf("fraction %d = %g", i, h.Fraction(i))
		}
	}
	// Clamping.
	h.Add(-5)
	h.Add(17)
	if h.Count(0) != 11 || h.Count(9) != 11 {
		t.Error("out-of-range values not clamped into end bins")
	}
	if h.Total() != 102 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(0, 1, 100)
	for i := 0; i < 1000; i++ {
		h.Add(0.25)
	}
	if math.Abs(h.Mean()-0.255) > 1e-9 { // center of the 0.25 bin
		t.Errorf("mean = %g", h.Mean())
	}
}

func TestSeriesMoments(t *testing.T) {
	var s Series
	for i := 1; i <= 5; i++ {
		s.Append(float64(i))
	}
	mean, v := s.Moments()
	if mean != 3 || math.Abs(v-2.5) > 1e-12 {
		t.Errorf("moments = %g, %g; want 3, 2.5", mean, v)
	}
}

// TestHurstWhiteNoise: i.i.d. noise has H ~ 0.5.
func TestHurstWhiteNoise(t *testing.T) {
	rng := sim.NewRNG(42)
	xs := make([]float64, 8192)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	h := HurstAggVar(xs)
	if math.IsNaN(h) || h < 0.4 || h > 0.62 {
		t.Errorf("white-noise Hurst (agg var) = %g, want ~0.5", h)
	}
	h2 := HurstRS(xs)
	if math.IsNaN(h2) || h2 < 0.4 || h2 > 0.68 {
		t.Errorf("white-noise Hurst (R/S) = %g, want ~0.5-0.6", h2)
	}
}

// TestHurstLRD: counts from multiplexed Pareto ON/OFF sources (the paper's
// level-2 generator) must show H clearly above 0.5 — the defining LRD
// property.
func TestHurstLRD(t *testing.T) {
	rng := sim.NewRNG(7)
	const sources = 32
	const bins = 8192
	const binW = 100.0
	counts := make([]float64, bins)
	for s := 0; s < sources; s++ {
		t0 := 0.0
		on := s%2 == 0
		for t0 < bins*binW {
			var dur float64
			if on {
				dur = rng.Pareto(1.4, 30)
				// Emit one count per 10 time units while ON.
				for x := t0; x < t0+dur && x < bins*binW; x += 10 {
					counts[int(x/binW)]++
				}
			} else {
				dur = rng.Pareto(1.2, 30)
			}
			t0 += dur
			on = !on
		}
	}
	h := HurstAggVar(counts)
	if math.IsNaN(h) || h < 0.6 {
		t.Errorf("ON/OFF aggregate Hurst = %g, want > 0.6 (LRD)", h)
	}
}

func TestHurstShortSeries(t *testing.T) {
	if !math.IsNaN(HurstAggVar(make([]float64, 4))) {
		t.Error("short series should give NaN")
	}
	if !math.IsNaN(HurstRS(make([]float64, 8))) {
		t.Error("short series should give NaN (R/S)")
	}
}

func TestLatencyCollector(t *testing.T) {
	l := NewLatency(sim.Nanosecond)
	l.Add(100 * sim.Nanosecond)
	l.Add(300 * sim.Nanosecond)
	if l.N() != 2 || l.MeanCycles() != 200 {
		t.Errorf("mean = %g over %d", l.MeanCycles(), l.N())
	}
	if l.MaxCycles() != 300 {
		t.Errorf("max = %g", l.MaxCycles())
	}
	if l.Saturated(150) {
		t.Error("mean 200 vs zero-load 150: not saturated (2x rule)")
	}
	if !l.Saturated(99) {
		t.Error("mean 200 vs zero-load 99: saturated")
	}
}

func TestSaturationPoint(t *testing.T) {
	rates := []float64{0.2, 0.4, 0.6, 0.8}
	lats := []float64{100, 120, 190, 450}
	r, ok := SaturationPoint(rates, lats, 100)
	if !ok || r != 0.8 {
		t.Errorf("saturation = %g,%v; want 0.8,true", r, ok)
	}
	if _, ok := SaturationPoint(rates, []float64{100, 110, 120, 130}, 100); ok {
		t.Error("no saturation expected")
	}
}

func TestHistogramPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(1, 0, 10)
}

func TestLatencyQuantiles(t *testing.T) {
	l := NewLatency(sim.Nanosecond)
	// 1000 samples: 900 at ~100 cycles, 100 at ~1000 cycles.
	for i := 0; i < 900; i++ {
		l.Add(100 * sim.Nanosecond)
	}
	for i := 0; i < 100; i++ {
		l.Add(1000 * sim.Nanosecond)
	}
	if p50 := l.Quantile(0.5); math.Abs(p50-100) > 5 {
		t.Errorf("P50 = %g, want ~100", p50)
	}
	if p95 := l.Quantile(0.95); math.Abs(p95-1000) > 50 {
		t.Errorf("P95 = %g, want ~1000", p95)
	}
	if q := NewLatency(sim.Nanosecond).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
}

func TestLatencyQuantileMonotone(t *testing.T) {
	l := NewLatency(sim.Nanosecond)
	rng := sim.NewRNG(5)
	for i := 0; i < 10000; i++ {
		l.Add(sim.Duration(10+rng.Intn(100000)) * sim.Nanosecond)
	}
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		v := l.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at %g: %g < %g", q, v, prev)
		}
		prev = v
	}
}
