// Package stats provides the measurement machinery behind the paper's
// evaluation: streaming moments, the utilization histograms of Figures 3-5,
// binned time series for the temporal-variance plots, Hurst-exponent
// estimators to validate the self-similar workload, and the saturation
// detector implementing the paper's throughput definition.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// Stream accumulates streaming mean and variance (Welford's algorithm).
// The zero value is ready to use.
type Stream struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N reports the observation count.
func (s *Stream) N() int64 { return s.n }

// Mean reports the running mean (0 when empty).
func (s *Stream) Mean() float64 { return s.mean }

// Var reports the running sample variance (0 for fewer than 2 points).
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std reports the sample standard deviation.
func (s *Stream) Std() float64 { return math.Sqrt(s.Var()) }

// Min and Max report the observed extremes (0 when empty).
func (s *Stream) Min() float64 { return s.min }
func (s *Stream) Max() float64 { return s.max }

// StreamState is the complete serializable state of a Stream, exposed so a
// simulation checkpoint can capture in-progress accumulators exactly. The
// moments are raw float64 values; restoring them bit-for-bit reproduces the
// stream's future outputs bit-for-bit.
type StreamState struct {
	N    int64
	Mean float64
	M2   float64
	Min  float64
	Max  float64
}

// Checkpoint captures the stream's state.
func (s *Stream) Checkpoint() StreamState {
	return StreamState{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max}
}

// Restore overwrites the stream with a checkpoint.
func (s *Stream) Restore(st StreamState) error {
	if st.N < 0 {
		return fmt.Errorf("stats: stream with negative count %d", st.N)
	}
	s.n, s.mean, s.m2, s.min, s.max = st.N, st.Mean, st.M2, st.Min, st.Max
	return nil
}

// Histogram bins observations over a fixed range; out-of-range values clamp
// into the end bins, so counts are never lost.
type Histogram struct {
	lo, hi float64
	counts []int64
	total  int64
}

// NewHistogram covers [lo, hi) with bins equal-width buckets.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g)/%d", lo, hi, bins))
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int64, bins)}
}

// Add incorporates one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// Bins reports the bin count.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count reports one bin's tally.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// Total reports all observations.
func (h *Histogram) Total() int64 { return h.total }

// Fraction reports one bin's share of all observations.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// BinCenter reports the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.counts))
	return h.lo + (float64(i)+0.5)*w
}

// Mean reports the histogram's mean using bin centers.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0.0
	for i, c := range h.counts {
		sum += float64(c) * h.BinCenter(i)
	}
	return sum / float64(h.total)
}

// histogramJSON is the serialized form of a Histogram: the persistent run
// cache stores characterization histograms across processes, so the
// unexported state needs an explicit wire shape.
type histogramJSON struct {
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Counts []int64 `json:"counts"`
	Total  int64   `json:"total"`
}

// MarshalJSON implements json.Marshaler. Bounds and counts are exact
// (float64 round-trips losslessly through JSON), so a decoded histogram
// renders byte-identically to the one that was stored.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Lo: h.lo, Hi: h.hi, Counts: h.counts, Total: h.total})
}

// UnmarshalJSON implements json.Unmarshaler, validating the invariants
// NewHistogram enforces plus count consistency.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Counts) < 1 || w.Hi <= w.Lo {
		return fmt.Errorf("stats: invalid histogram [%g,%g)/%d", w.Lo, w.Hi, len(w.Counts))
	}
	var sum int64
	for _, c := range w.Counts {
		if c < 0 {
			return fmt.Errorf("stats: negative histogram count %d", c)
		}
		sum += c
	}
	if sum != w.Total {
		return fmt.Errorf("stats: histogram total %d != count sum %d", w.Total, sum)
	}
	h.lo, h.hi, h.counts, h.total = w.Lo, w.Hi, w.Counts, w.Total
	return nil
}

// Series is a fixed-capacity append-only series of float64 samples, the
// input to the Hurst estimators and variance profiles.
type Series struct {
	xs []float64
}

// Append adds one sample.
func (s *Series) Append(x float64) { s.xs = append(s.xs, x) }

// Len reports the sample count.
func (s *Series) Len() int { return len(s.xs) }

// At reports sample i.
func (s *Series) At(i int) float64 { return s.xs[i] }

// Values returns the backing slice (not a copy; callers must not modify).
func (s *Series) Values() []float64 { return s.xs }

// Moments reports the series mean and sample variance.
func (s *Series) Moments() (mean, variance float64) {
	var st Stream
	for _, x := range s.xs {
		st.Add(x)
	}
	return st.Mean(), st.Var()
}
