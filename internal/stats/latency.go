package stats

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Latency accumulates packet latencies in router cycles and implements the
// paper's saturation criterion: "the saturation throughput of the network
// is where average packet latency worsens to more than twice the zero-load
// latency". Percentiles come from a log-spaced histogram (1% resolution per
// decade across 1..10^7 cycles), sufficient for tail reporting without
// retaining samples.
type Latency struct {
	Period sim.Duration // router clock period defining "cycle"
	s      Stream
	bins   [quantBins]int64
}

// quantBins spans 7 decades at 100 bins per decade.
const quantBins = 700

// NewLatency returns a collector for the given router clock.
func NewLatency(period sim.Duration) *Latency { return &Latency{Period: period} }

// binOf maps latency-in-cycles to a log-spaced bin.
func binOf(cycles float64) int {
	if cycles < 1 {
		return 0
	}
	b := int(100 * math.Log10(cycles))
	if b >= quantBins {
		b = quantBins - 1
	}
	return b
}

// Add records one packet latency.
func (l *Latency) Add(d sim.Duration) {
	c := float64(d) / float64(l.Period)
	l.s.Add(c)
	l.bins[binOf(c)]++
}

// Quantile reports the approximate q-quantile (q in [0,1]) of the recorded
// latencies, in router cycles, with ~2.3% relative resolution.
func (l *Latency) Quantile(q float64) float64 {
	if l.s.N() == 0 {
		return 0
	}
	target := int64(q * float64(l.s.N()))
	if target >= l.s.N() {
		target = l.s.N() - 1
	}
	var cum int64
	for b, c := range l.bins {
		cum += c
		if cum > target {
			// Geometric center of the bin.
			return math.Pow(10, (float64(b)+0.5)/100)
		}
	}
	return l.s.Max()
}

// LatencyState is the complete serializable state of a Latency collector.
type LatencyState struct {
	Period sim.Duration
	Stream StreamState
	Bins   []int64
}

// Checkpoint captures the collector's state.
func (l *Latency) Checkpoint() LatencyState {
	bins := make([]int64, quantBins)
	copy(bins, l.bins[:])
	return LatencyState{Period: l.Period, Stream: l.s.Checkpoint(), Bins: bins}
}

// Restore overwrites the collector with a checkpoint.
func (l *Latency) Restore(st LatencyState) error {
	if st.Period <= 0 {
		return fmt.Errorf("stats: latency with non-positive period %d", st.Period)
	}
	if len(st.Bins) != quantBins {
		return fmt.Errorf("stats: latency with %d bins, want %d", len(st.Bins), quantBins)
	}
	if err := l.s.Restore(st.Stream); err != nil {
		return err
	}
	l.Period = st.Period
	copy(l.bins[:], st.Bins)
	return nil
}

// N reports the packet count.
func (l *Latency) N() int64 { return l.s.N() }

// MeanCycles reports the average latency in router cycles.
func (l *Latency) MeanCycles() float64 { return l.s.Mean() }

// MaxCycles reports the worst latency in router cycles.
func (l *Latency) MaxCycles() float64 { return l.s.Max() }

// Saturated reports whether mean latency exceeds twice the given zero-load
// latency (both in cycles).
func (l *Latency) Saturated(zeroLoadCycles float64) bool {
	return l.s.Mean() > 2*zeroLoadCycles
}

// SaturationPoint scans (rate, meanLatency) pairs ordered by rate and
// returns the first rate whose latency exceeds twice the zero-load latency,
// with ok=false when no rate saturates.
func SaturationPoint(rates, latencies []float64, zeroLoad float64) (rate float64, ok bool) {
	for i := range rates {
		if latencies[i] > 2*zeroLoad {
			return rates[i], true
		}
	}
	return 0, false
}
