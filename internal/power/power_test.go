package power

import (
	"math"
	"testing"

	"repro/internal/link"
	"repro/internal/router"
	"repro/internal/sim"
)

func table(t *testing.T) *link.Table {
	t.Helper()
	tab, err := link.NewTable(link.NewParams())
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestRouterBreakdownMatchesFig7(t *testing.T) {
	tab := table(t)
	b := RouterBreakdown(tab, 4)
	// Links: 4 ports * 1.6 W = 6.4 W, and exactly 82.4% of the total.
	if f := Fraction(b, "links"); math.Abs(f-0.824) > 1e-9 {
		t.Errorf("link fraction = %g, want 0.824", f)
	}
	if w := b[0].Watts; math.Abs(w-6.4) > 1e-9 {
		t.Errorf("link power = %g W, want 6.4", w)
	}
	// Allocators: the paper's 81 mW, about 1% of the router.
	if f := Fraction(b, "allocators"); f > 0.02 {
		t.Errorf("allocator fraction = %g, want ~0.01", f)
	}
	// Everything accounted for.
	total := Total(b)
	if math.Abs(total-6.4/0.824) > 1e-9 {
		t.Errorf("total = %g, want %g", total, 6.4/0.824)
	}
	sum := 0.0
	for _, e := range b {
		if e.Watts < 0 {
			t.Errorf("%s negative: %g", e.Component, e.Watts)
		}
		sum += e.Watts
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Error("entries do not sum to total")
	}
}

func TestPaperNetworkBaseline(t *testing.T) {
	// The paper's round number: 64 routers * 4 ports * 8 links * 0.2 W =
	// 409.6 W. With 256 channels at 1.6 W each the meter must agree.
	tab := table(t)
	var sched sim.Scheduler
	links := make([]*link.DVSLink, 256)
	for i := range links {
		links[i] = link.NewDVSLink(tab, &sched, tab.Top())
	}
	m := NewMeter(tab, links, 0)
	if got := m.BaselinePowerW(); math.Abs(got-409.6) > 1e-9 {
		t.Errorf("baseline = %g W, want 409.6", got)
	}
}

func TestMeterTracksEnergyAndSavings(t *testing.T) {
	tab := table(t)
	var sched sim.Scheduler
	fast := link.NewDVSLink(tab, &sched, tab.Top())
	slow := link.NewDVSLink(tab, &sched, 0)
	m := NewMeter(tab, []*link.DVSLink{fast, slow}, 0)

	now := sim.Millisecond
	// fast: 1.6 mJ; slow: 8*23.6mW*1ms = 0.1888 mJ.
	wantE := 1.6e-3 + 0.1888e-3
	if got := m.EnergyJ(now); math.Abs(got-wantE) > 1e-9 {
		t.Errorf("energy = %g, want %g", got, wantE)
	}
	wantP := wantE / 1e-3
	if got := m.AvgPowerW(now); math.Abs(got-wantP) > 1e-9 {
		t.Errorf("avg power = %g, want %g", got, wantP)
	}
	wantNorm := wantP / 3.2
	if got := m.Normalized(now); math.Abs(got-wantNorm) > 1e-9 {
		t.Errorf("normalized = %g, want %g", got, wantNorm)
	}
	if got := m.Savings(now); math.Abs(got-1/wantNorm) > 1e-9 {
		t.Errorf("savings = %g, want %g", got, 1/wantNorm)
	}
}

func TestMeterEpochExcludesPriorEnergy(t *testing.T) {
	tab := table(t)
	var sched sim.Scheduler
	l := link.NewDVSLink(tab, &sched, tab.Top())
	// Burn 1 ms before the measurement epoch.
	epoch := sim.Millisecond
	m := NewMeter(tab, []*link.DVSLink{l}, epoch)
	got := m.EnergyJ(2 * sim.Millisecond)
	if math.Abs(got-1.6e-3) > 1e-9 {
		t.Errorf("post-epoch energy = %g, want 1.6e-3", got)
	}
}

func TestMaxSavingsBound(t *testing.T) {
	// All links at the bottom level: savings equal the table's dynamic
	// range (~8.5X), the ceiling for any DVS policy under this link model.
	tab := table(t)
	var sched sim.Scheduler
	links := []*link.DVSLink{link.NewDVSLink(tab, &sched, 0)}
	m := NewMeter(tab, links, 0)
	got := m.Savings(sim.Millisecond)
	want := tab.PowerW[tab.Top()] / tab.PowerW[0]
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("floor-level savings = %g, want %g", got, want)
	}
}

func TestInstantPower(t *testing.T) {
	tab := table(t)
	var sched sim.Scheduler
	links := []*link.DVSLink{
		link.NewDVSLink(tab, &sched, 0),
		link.NewDVSLink(tab, &sched, tab.Top()),
	}
	m := NewMeter(tab, links, 0)
	want := tab.PowerW[0] + tab.PowerW[tab.Top()]
	if got := m.InstantPowerW(); math.Abs(got-want) > 1e-9 {
		t.Errorf("instant power = %g, want %g", got, want)
	}
}

func TestRouterEnergyModelCalibration(t *testing.T) {
	tab := table(t)
	m := NewRouterEnergyModel(tab, 4, sim.Nanosecond)
	// At full tilt the model reproduces the Figure 7 core power (total
	// minus links).
	b := RouterBreakdown(tab, 4)
	core := Total(b) - b[0].Watts
	if got := m.FullTiltPowerW(4, sim.Nanosecond); math.Abs(got-core) > 1e-9 {
		t.Errorf("full-tilt core power = %g, want %g", got, core)
	}
	// All per-event energies positive, clock static positive.
	if m.BufWriteJ <= 0 || m.BufReadJ <= 0 || m.CrossbarJ <= 0 || m.ArbGrantJ <= 0 || m.ClockW <= 0 {
		t.Errorf("non-positive energy components: %+v", m)
	}
	// The paper's argument: arbitration is the cheapest event by far.
	if m.ArbGrantJ*10 > m.BufWriteJ {
		t.Errorf("arbitration energy %g not << buffer write %g", m.ArbGrantJ, m.BufWriteJ)
	}
}

func TestRouterEnergyAccumulation(t *testing.T) {
	tab := table(t)
	m := NewRouterEnergyModel(tab, 4, sim.Nanosecond)
	a := router.Activity{BufWrites: 1000, BufReads: 1000, Crossbar: 1000, ArbGrants: 2000}
	e := m.EnergyJ(a, sim.Microsecond)
	want := 1000*(m.BufWriteJ+m.BufReadJ+m.CrossbarJ) + 2000*m.ArbGrantJ + m.ClockW*1e-6
	if math.Abs(e-want) > 1e-15 {
		t.Errorf("energy = %g, want %g", e, want)
	}
	// Idle router burns only clock power.
	idle := m.EnergyJ(router.Activity{}, sim.Millisecond)
	if math.Abs(idle-m.ClockW*1e-3) > 1e-15 {
		t.Errorf("idle energy = %g, want clock only", idle)
	}
}
