// Package power carries the power accounting of the evaluation: the static
// router power breakdown behind the paper's Figure 7, and the network-level
// aggregation used to normalize DVS power against the non-DVS baseline.
//
// The paper characterizes its router by synthesizing a Verilog description
// to a TSMC 0.25 um netlist and measuring with Synopsys Power Compiler; the
// published result is a breakdown in which the channel's link circuitry
// consumes 82.4% of router power and the allocators a negligible 81 mW. The
// paper then *ignores router-core power* in the DVS experiments because it
// barely varies with link speed. We encode the same breakdown as data.
package power

import (
	"fmt"

	"repro/internal/link"
	"repro/internal/sim"
)

// BreakdownEntry is one slice of the router power distribution.
type BreakdownEntry struct {
	Component string
	Watts     float64
}

// RouterBreakdown reconstructs Figure 7 for a router with the given number
// of network ports, each driving a channel at full speed.
//
// The link share is exact from the link model (ports x SerialLinks x
// MaxPowerW). The paper pins the allocators at 81 mW and the link share at
// 82.4%; the remaining core power is split across buffers, crossbar and
// clock in proportions consistent with the paper's 128-flit-deep input
// buffers dominating the core.
func RouterBreakdown(t *link.Table, ports int) []BreakdownEntry {
	linksW := float64(ports) * t.PowerW[t.Top()]
	totalW := linksW / 0.824
	coreW := totalW - linksW
	const allocW = 0.081
	rest := coreW - allocW
	return []BreakdownEntry{
		{"links", linksW},
		{"input buffers", rest * 0.68},
		{"crossbar", rest * 0.25},
		{"clock", rest * 0.07},
		{"allocators", allocW},
	}
}

// Total sums a breakdown.
func Total(entries []BreakdownEntry) float64 {
	s := 0.0
	for _, e := range entries {
		s += e.Watts
	}
	return s
}

// Fraction reports a component's share of the breakdown total.
func Fraction(entries []BreakdownEntry, component string) float64 {
	t := Total(entries)
	if t == 0 {
		return 0
	}
	for _, e := range entries {
		if e.Component == component {
			return e.Watts / t
		}
	}
	return 0
}

// Meter aggregates the energy of a set of DVS links into network power
// metrics and the normalized figures the paper plots.
type Meter struct {
	links []*link.DVSLink
	table *link.Table

	epoch sim.Time  // measurement start
	base  []float64 // per-link energy at the epoch
}

// NewMeter begins measuring the given links at time epoch.
func NewMeter(t *link.Table, links []*link.DVSLink, epoch sim.Time) *Meter {
	m := &Meter{links: links, table: t, epoch: epoch, base: make([]float64, len(links))}
	for i, l := range links {
		m.base[i] = l.EnergyJ(epoch)
	}
	return m
}

// MeterState is the complete serializable state of a Meter: the measurement
// epoch and the per-link energy baselines, in the meter's link order. The
// links themselves checkpoint separately.
type MeterState struct {
	Epoch sim.Time
	Base  []float64
}

// Checkpoint captures the meter's state.
func (m *Meter) Checkpoint() MeterState {
	base := make([]float64, len(m.base))
	copy(base, m.base)
	return MeterState{Epoch: m.epoch, Base: base}
}

// Restore overwrites the meter's epoch and baselines with a checkpoint. The
// meter must already aggregate the same number of links in the same order.
func (m *Meter) Restore(st MeterState) error {
	if len(st.Base) != len(m.base) {
		return fmt.Errorf("power: meter restore with %d baselines, want %d", len(st.Base), len(m.base))
	}
	m.epoch = st.Epoch
	copy(m.base, st.Base)
	return nil
}

// EnergyJ reports total link energy consumed since the epoch, through now.
func (m *Meter) EnergyJ(now sim.Time) float64 {
	e := 0.0
	for i, l := range m.links {
		e += l.EnergyJ(now) - m.base[i]
	}
	return e
}

// AvgPowerW reports mean network link power over [epoch, now].
func (m *Meter) AvgPowerW(now sim.Time) float64 {
	dt := (now - m.epoch).Seconds()
	if dt <= 0 {
		return 0
	}
	return m.EnergyJ(now) / dt
}

// BaselinePowerW reports the non-DVS network power: every channel at the
// top level continuously (the paper's 64 routers * 4 ports * 8 links *
// 0.2 W = 409.6 W for the full-bandwidth 8x8 mesh estimate; this uses the
// actual channel count of the constructed topology).
func (m *Meter) BaselinePowerW() float64 {
	return float64(len(m.links)) * m.table.PowerW[m.table.Top()]
}

// Normalized reports DVS power as a fraction of the non-DVS baseline — the
// y-axis of Figures 10(b), 11(b) and 14.
func (m *Meter) Normalized(now sim.Time) float64 {
	b := m.BaselinePowerW()
	if b == 0 {
		return 0
	}
	return m.AvgPowerW(now) / b
}

// Savings reports the power saving factor ("X") the paper headlines:
// baseline power over measured power.
func (m *Meter) Savings(now sim.Time) float64 {
	p := m.AvgPowerW(now)
	if p == 0 {
		return 0
	}
	return m.BaselinePowerW() / p
}

// InstantPowerW reports the sum of instantaneous link powers.
func (m *Meter) InstantPowerW() float64 {
	p := 0.0
	for _, l := range m.links {
		p += l.PowerW()
	}
	return p
}

// String summarizes the meter at time now.
func (m *Meter) Summary(now sim.Time) string {
	return fmt.Sprintf("links=%d avg=%.1fW baseline=%.1fW normalized=%.3f savings=%.2fX",
		len(m.links), m.AvgPowerW(now), m.BaselinePowerW(), m.Normalized(now), m.Savings(now))
}
