package power

import (
	"repro/internal/link"
	"repro/internal/router"
	"repro/internal/sim"
)

// RouterEnergyModel assigns per-event energies to the router core — input
// buffer accesses, crossbar traversals, arbiter grants — plus a static
// clock-tree power, calibrated so that a router at full tilt (every port
// moving one flit per cycle) dissipates exactly the Figure 7 core
// breakdown.
//
// The paper argues (Section 4.2) that router-core power barely changes
// with DVS links: a flit that lingers longer triggers more arbitrations,
// but arbitration is the cheapest event (the allocators take 81 mW of a
// 7.8 W router), while buffer read/write and crossbar energy depend only
// on the flits moved, not on how fast the links run. This model lets the
// reproduction check that claim quantitatively instead of assuming it.
type RouterEnergyModel struct {
	// BufWriteJ and BufReadJ are per-flit buffer access energies.
	BufWriteJ, BufReadJ float64
	// CrossbarJ is the per-flit crossbar traversal energy.
	CrossbarJ float64
	// ArbGrantJ is the per-grant separable-allocator energy.
	ArbGrantJ float64
	// ClockW is the static clock-tree power, burned regardless of traffic.
	ClockW float64
}

// NewRouterEnergyModel calibrates against the Figure 7 breakdown for a
// router with the given port count and router clock.
func NewRouterEnergyModel(t *link.Table, ports int, period sim.Duration) RouterEnergyModel {
	b := RouterBreakdown(t, ports)
	find := func(name string) float64 {
		for _, e := range b {
			if e.Component == name {
				return e.Watts
			}
		}
		return 0
	}
	cyclesPerSec := 1e12 / float64(period)
	// Full tilt: every port writes one flit, reads one flit and crosses the
	// crossbar every cycle; the allocators grant on each of the separable
	// stages (about two grants per moved flit). Buffer energy splits 3:1
	// between writes and reads — a differential full-swing SRAM write
	// charges both bit lines rail to rail while a read only partially
	// swings one precharged line (see internal/orion for the bottom-up
	// version of this ratio).
	flitsPerSec := float64(ports) * cyclesPerSec
	bufW := find("input buffers")
	return RouterEnergyModel{
		BufWriteJ: bufW * 0.75 / flitsPerSec,
		BufReadJ:  bufW * 0.25 / flitsPerSec,
		CrossbarJ: find("crossbar") / flitsPerSec,
		ArbGrantJ: find("allocators") / (2 * flitsPerSec),
		ClockW:    find("clock"),
	}
}

// EnergyJ reports the core energy of one router given its activity tally
// and elapsed time.
func (m RouterEnergyModel) EnergyJ(a router.Activity, elapsed sim.Duration) float64 {
	return float64(a.BufWrites)*m.BufWriteJ +
		float64(a.BufReads)*m.BufReadJ +
		float64(a.Crossbar)*m.CrossbarJ +
		float64(a.ArbGrants)*m.ArbGrantJ +
		m.ClockW*elapsed.Seconds()
}

// FullTiltPowerW reports the model's power at maximum activity — by
// construction the Figure 7 core total (everything but the links).
func (m RouterEnergyModel) FullTiltPowerW(ports int, period sim.Duration) float64 {
	cyclesPerSec := 1e12 / float64(period)
	flitsPerSec := float64(ports) * cyclesPerSec
	return flitsPerSec*(m.BufWriteJ+m.BufReadJ+m.CrossbarJ+2*m.ArbGrantJ) + m.ClockW
}
