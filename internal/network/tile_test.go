package network

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// captureWorkload records the two-level workload the skip-equivalence suite
// uses (seed 7) so tiled and sequential runs replay the identical schedule.
func captureWorkload(t *testing.T, rate float64, horizon sim.Time) *traffic.Trace {
	t.Helper()
	cfg := NewConfig()
	p := traffic.NewTwoLevelParams(rate)
	p.Seed = 7
	m, err := traffic.NewTwoLevel(p, topology.New(cfg.K, cfg.N, cfg.Torus))
	if err != nil {
		t.Fatal(err)
	}
	return traffic.Capture(m, horizon)
}

// runTiledForEquivalence executes one warmup+measurement run at the given
// tile count and returns the same observables runForEquivalence does.
func runTiledForEquivalence(t *testing.T, tr *traffic.Trace, tiles int, audited bool, cycles int64) (snapshot string, state string) {
	t.Helper()
	cfg := NewConfig()
	cfg.Policy = PolicyHistory
	cfg.Tiles = tiles
	cfg.Audit.Enabled = audited
	n := mustNew(t, cfg)
	n.Launch(tr, tr.Horizon())
	n.Run(cycles)
	n.BeginMeasurement()
	n.Run(cycles)
	if audited {
		if v := n.Auditor().Stats().Violations; v != 0 {
			t.Fatalf("tiles=%d: %d audit violations", tiles, v)
		}
	}
	snapshot = fmt.Sprintf("%+v", n.Snapshot())
	levels := ""
	var energy float64
	for _, l := range n.Links() {
		levels += fmt.Sprintf("%d,", l.Level())
		energy += l.EnergyJ(n.Now())
	}
	state = fmt.Sprintf("cycle=%d now=%d inflight=%d injected=%d energy=%.18g levels=%s",
		n.Cycle(), n.Now(), n.InFlight, n.injected, energy, levels)
	return snapshot, state
}

// TestTileEquivalence proves the tile-parallel engine is byte-identical to
// the single-scheduler core across the load range the paper sweeps, at
// every tile count. Tiles=1 takes the sequential path by construction, so
// it doubles as the reference; 2 and 4 exercise cross-tile outboxes, the
// barrier drain and the ordered delivery replay.
func TestTileEquivalence(t *testing.T) {
	cycles := int64(20_000)
	if testing.Short() {
		cycles = 4_000
	}
	cfg := NewConfig()
	horizon := sim.Time(2*cycles+1) * cfg.RouterPeriod
	for _, rate := range []float64{0.05, 0.3, 4.0} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%.2f", rate), func(t *testing.T) {
			tr := captureWorkload(t, rate, horizon)
			refSnap, refState := runTiledForEquivalence(t, tr, 1, false, cycles)
			for _, tiles := range []int{2, 4} {
				snap, state := runTiledForEquivalence(t, tr, tiles, false, cycles)
				if snap != refSnap {
					t.Errorf("tiles=%d Results diverge:\n tiled: %s\n ref:   %s", tiles, snap, refSnap)
				}
				if state != refState {
					t.Errorf("tiles=%d accounting diverges:\n tiled: %s\n ref:   %s", tiles, state, refState)
				}
			}
		})
	}
}

// TestTileEquivalenceAudited reruns the matrix under the runtime invariant
// checker: audited tiled runs execute tiles inline (the checker is
// single-threaded), and the audit's conservation scans at barriers must see
// exactly the sequential run's state. Shorter than the unaudited matrix —
// the audit's per-event ledgers dominate runtime at saturation.
func TestTileEquivalenceAudited(t *testing.T) {
	cycles := int64(8_000)
	if testing.Short() {
		cycles = 2_000
	}
	cfg := NewConfig()
	horizon := sim.Time(2*cycles+1) * cfg.RouterPeriod
	for _, rate := range []float64{0.05, 0.3, 4.0} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%.2f", rate), func(t *testing.T) {
			tr := captureWorkload(t, rate, horizon)
			refSnap, refState := runTiledForEquivalence(t, tr, 1, true, cycles)
			for _, tiles := range []int{2, 4} {
				snap, state := runTiledForEquivalence(t, tr, tiles, true, cycles)
				if snap != refSnap {
					t.Errorf("tiles=%d audited Results diverge:\n tiled: %s\n ref:   %s", tiles, snap, refSnap)
				}
				if state != refState {
					t.Errorf("tiles=%d audited accounting diverges:\n tiled: %s\n ref:   %s", tiles, state, refState)
				}
			}
		})
	}
}

// TestTileFastForward checks the tiled engine's quiescent fast-forward: an
// idle tiled network must jump straight between policy boundaries, landing
// exactly on the requested cycle count with consistent skip accounting.
func TestTileFastForward(t *testing.T) {
	cfg := NewConfig()
	cfg.Policy = PolicyHistory
	cfg.Tiles = 4
	n := mustNew(t, cfg)
	n.Run(100_000)
	if got := n.Cycle(); got != 100_000 {
		t.Fatalf("Cycle() = %d after Run(100000)", got)
	}
	s := n.SkipStats()
	if s.FastForwards == 0 || s.CyclesFastForwarded == 0 {
		t.Errorf("idle tiled network never fast-forwarded: %+v", s)
	}
	if s.CyclesExecuted+s.CyclesFastForwarded != 100_000 {
		t.Errorf("executed %d + fast-forwarded %d != 100000",
			s.CyclesExecuted, s.CyclesFastForwarded)
	}
	if total := s.RouterTicks + s.RouterTicksElided; total != 100_000*int64(len(n.Routers)) {
		t.Errorf("ticks %d + elided %d != cycles * nodes", s.RouterTicks, s.RouterTicksElided)
	}
}

// TestTileGates checks every guard around the tiled engine: config
// validation, the trace-only workload requirement, the Step/Inject
// redirects, and the checkpoint refusals.
func TestTileGates(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config validated")
	}
	cfg := NewConfig()
	cfg.Tiles = -1
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "negative tile count") {
		t.Errorf("Tiles=-1 Validate() = %v", err)
	}
	cfg.Tiles = 65
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "tiles over") {
		t.Errorf("Tiles=65 Validate() = %v", err)
	}

	cfg = NewConfig()
	cfg.Tiles = 1
	if n := mustNew(t, cfg); n.Tiled() {
		t.Error("Tiles=1 built the tiled engine; it must share the single-scheduler path")
	}

	cfg.Tiles = 2
	n := mustNew(t, cfg)
	if !n.Tiled() {
		t.Fatal("Tiles=2 network not tiled")
	}
	if _, err := n.CaptureCheckpoint(); err == nil || !strings.Contains(err.Error(), "tiled") {
		t.Errorf("CaptureCheckpoint on tiled network: %v", err)
	}
	if _, err := n.CaptureForDiff(); err == nil || !strings.Contains(err.Error(), "tiled") {
		t.Errorf("CaptureForDiff on tiled network: %v", err)
	}

	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a tiled network did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Step", func() { n.Step() })
	mustPanic("Inject", func() { n.Inject(0, 1, 0, 0) })
	p := traffic.NewTwoLevelParams(0.05)
	p.Seed = 7
	m, err := traffic.NewTwoLevel(p, n.Topo)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic("Launch(live model)", func() { n.Launch(m, sim.Time(1000)*cfg.RouterPeriod) })

	// Restoring into a tiled network must refuse before touching state.
	seq := mustNew(t, NewConfig())
	horizon := sim.Time(101) * cfg.RouterPeriod
	tr := traffic.Capture(m, horizon)
	seq.Launch(tr, horizon)
	seq.Run(100)
	st, err := seq.CaptureCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	fresh := mustNew(t, cfg)
	if err := fresh.RestoreCheckpoint(st, tr); err == nil || !strings.Contains(err.Error(), "tiled") {
		t.Errorf("RestoreCheckpoint into tiled network: %v", err)
	}
}

// TestTilePartition checks the partition shape: contiguous ascending
// blocks covering every node, and a lookahead of at least one cycle.
func TestTilePartition(t *testing.T) {
	for _, tiles := range []int{2, 3, 4, 7, 64} {
		cfg := NewConfig()
		cfg.Tiles = tiles
		n := mustNew(t, cfg)
		if len(n.tiles) != tiles {
			t.Fatalf("tiles=%d built %d tiles", tiles, len(n.tiles))
		}
		covered := 0
		for i, tl := range n.tiles {
			if tl.lo > tl.hi {
				t.Fatalf("tile %d has lo %d > hi %d", i, tl.lo, tl.hi)
			}
			if i > 0 && tl.lo != n.tiles[i-1].hi {
				t.Fatalf("tile %d starts at %d, previous ends at %d", i, tl.lo, n.tiles[i-1].hi)
			}
			for node := tl.lo; node < tl.hi; node++ {
				if n.tileOf[node] != i {
					t.Fatalf("tileOf[%d] = %d, want %d", node, n.tileOf[node], i)
				}
				covered++
			}
		}
		if covered != n.Topo.Nodes() {
			t.Fatalf("tiles=%d cover %d of %d nodes", tiles, covered, n.Topo.Nodes())
		}
		if n.lookahead < 1 {
			t.Fatalf("lookahead %d < 1", n.lookahead)
		}
	}
}
