// Intra-run tile parallelism: the mesh is partitioned into contiguous
// blocks of routers ("tiles"), each advanced by its own scheduler, in
// conservative lookahead windows that meet at merge points. The window
// length is extracted per window from live occupancy — the directed hop
// distance from the nearest buffered or injector-pending flit to a tile
// boundary, the ready/serializer state of queued link transmissions, and
// the horizons of pending ring and scheduler messages (see bound) — and
// never falls below the constant floor W = ceil(topLinkPeriod/routerPeriod)
// the engine used before PR 10 (1 with the paper's table, which forced a
// barrier every router cycle). A window end that finds every cross-tile
// outbox empty elides the merge entirely: deliveries, counters and tick
// logs keep accumulating until the next real merge (bounded by
// maxTileWindow), while policy windows, probes and audit scans still run
// at their exact cycles.
//
// Why the output is byte-identical to the sequential core:
//
//   - Isolation inside a window. Every cross-tile interaction is a flit
//     arrival or a credit return. The planner ends a window at e no later
//     than every tile's promised bound — a conservative earliest possible
//     cross-tile effect computed from the tile's own state at the window
//     start — or at the intrinsically safe single-cycle window w0+1 (any
//     cross-tile message is delayed by at least one top-level link period,
//     i.e. at least one router cycle). A message generated inside [w0, e)
//     is therefore due at or after e, so no event inside a window can
//     observe another tile's activity in the same window. Every merge
//     re-checks the hard invariant due >= e, and under Config.VerifyLookahead
//     or an audit each merged message is also checked against the bound its
//     source tile promised when the window was planned (LookaheadViolations).
//   - Canonical cross-tile delivery. Outboxed messages drain at the merge
//     in (source tile, generation order) into the destination tile's delay
//     ring, bucketed by due cycle. Merges happen no later than any
//     outboxed message's due cycle (a window end with a non-empty outbox
//     always merges), so messages land in the ring before the cycle that
//     delivers them. Within one ring bucket the sequential core's order is
//     immaterial: a link serializer spaces consecutive sends at least one
//     period apart, so at most one flit lands per input port per cycle
//     (arrivals to distinct ports commute), and credit returns are counter
//     increments that commute per (port, VC); drainRing applies all
//     arrivals before all credits in both engines.
//   - Deterministic accumulator merge. The only order-sensitive global
//     accumulator is the latency stream (Welford moments). Tiles buffer
//     deliveries and the merge replays them in (cycle, tile) order —
//     which equals the sequential engine's (cycle, ascending node) order,
//     because tiles own ascending contiguous node ranges and each tile's
//     eject phase walks its routers in ascending order. Elision only defers
//     the replay; the buffered (cycle, tile) keys are unchanged. Integer
//     counters (injected, delivered, InFlight) merge additively.
//   - Synchronized global machinery. DVS policy windows, probes and audit
//     scans run at window ends on the single coordinating goroutine:
//     windows are clamped so an end lands exactly on every policy/probe/
//     scan boundary, with the same cycle number and simulation instant as
//     the sequential Step. Policy edges do not force a merge — runPolicies
//     reads only per-link and per-port state, all tile-owned and settled at
//     the window end. Probe ticks and audit scans do force one: probes read
//     the global accumulators and scans walk every ledger.
//   - Packet identity. Each tile draws packet IDs from a disjoint space
//     (tile index in the high bits). IDs differ from the sequential run's
//     but are semantically inert: allocation arbiters are positional, and
//     no result, statistic or golden artifact carries an ID.
//
// The skip statistics are the one place the tiled engine's internal
// accounting diverges from the sequential core's: a tile that is locally
// idle inside a window jumps straight to its next scheduler event,
// recording zero-tick executed cycles where the sequential engine would
// have fast-forwarded globally. The totals still balance (executed +
// fast-forwarded cycles, ticks + elided ticks), and no golden artifact or
// equivalence check reads the split.
//
// Unaudited windows run on one persistent worker goroutine per tile when
// more than one CPU is available (or when forceTileWorkers pins the
// concurrent path for the race detector); on a single-CPU host the tiles
// run inline on the coordinator, where worker channel hops would be pure
// overhead. Audited runs always execute tiles sequentially on the
// coordinating goroutine (the audit checker's ledgers are single-threaded
// maps); results are identical either way, so the audit still proves the
// tiled datapath. Checkpoint capture refuses tiled networks (see
// CaptureCheckpoint): the experiment harness runs tiled points on the
// straight warmup path, which PR 7's conformance suite proved
// byte-identical to the forked one.
package network

import (
	"fmt"
	"math/bits"
	"runtime"

	"repro/internal/audit"
	"repro/internal/flow"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

const (
	// maxTileWindow caps both the planned window length and the merge
	// deferral span, bounding the deliveries/tick-log buffers a tile can
	// accumulate before a merge is forced.
	maxTileWindow = 4096
	// farDist marks a router with no directed intra-tile path to a
	// boundary router; its flits can never cross on their own.
	farDist = 1 << 20
	// farFuture is an effectively infinite hazard horizon.
	farFuture = int64(1) << 62
)

// tileMsg is one cross-tile message parked in an outbox until the next
// merge: a flit arrival when in is non-nil, otherwise a credit return.
type tileMsg struct {
	at   sim.Time
	node int // arrival destination router; -1 for credits
	in   *router.InputPort
	flit *flow.Flit
	out  *router.OutputPort
	vc   int
}

// tileDelivery is one delivered packet buffered for the merge's ordered
// replay into the global latency/throughput accumulators.
type tileDelivery struct {
	cycle int64
	p     *flow.Packet
}

// borderPort names one tile-owned input port fed by a cross-tile channel:
// a flit departing it owes a credit to another tile one link period later.
type borderPort struct {
	node, port int
}

// tileState is one tile: a contiguous block of routers [lo, hi) with its
// own scheduler, delay ring, packet pool and activity masks — the per-tile
// mirror of the Network fields the sequential engine uses. Masks are
// full-length word slices (only bits in [lo, hi) are ever set) so the
// tick/transmit/eject loops keep the sequential engine's shape.
type tileState struct {
	n      *Network
	id     int
	lo, hi int
	idBase int64 // packet IDs are idBase + per-tile sequence

	sched sim.Scheduler
	cycle int64

	ring      [ringSize]ringBucket
	ringCount int
	slow      []*slowEntry
	pool      flow.Pool
	nextPkt   int64
	replay    *traffic.Replay

	activeMask  []uint64
	activeCount int
	injMask     []uint64
	injCount    int

	// Boundary geometry, fixed at construction (one BFS per tile).
	// distB[nd] is the directed hop distance from router nd to the nearest
	// router with a cross-tile output channel (farDist when no path);
	// nbrD[nd*ports+p] is that distance for the neighbor behind intra-tile
	// port p of nd, -1 for a cross-tile (or unconnected) port; borderIn
	// lists the tile's input ports fed by other tiles; noBorder marks a
	// tile with no cross-tile channel in either direction; pipeC is the
	// minimum router pipeline traversal in cycles.
	distB    []int32
	nbrD     []int32
	borderIn []borderPort
	noBorder bool
	pipeC    int64

	// Extracted-lookahead state. ringMin/crossRingMin are conservative
	// hazard horizons of the intra-tile and merged cross-tile messages
	// sitting in the delay ring (monotone non-increasing until the ring
	// empties; stale-low values only shorten windows). promised is the
	// bound computed at the end of the last window (covering the next
	// one); pledge is the promise that covered the window just run — the
	// bound its outboxed messages are verified against.
	ringMin      int64
	crossRingMin int64
	promised     int64
	pledge       int64

	// outbox[d] holds messages bound for tile d, in generation order.
	outbox [][]tileMsg
	// deliveries buffers delivered packets (nondecreasing cycle order) for
	// the merge replay; delIdx is the replay cursor.
	deliveries []tileDelivery
	delIdx     int
	// ticked[i] is the number of routers ticked in the i-th cycle past the
	// merge frontier, merged into the global skip stats at the next merge.
	ticked []int

	injected      int64
	inFlightDelta int64
}

// initTiles builds the tile partition: count contiguous blocks of
// ceil(nodes/count) routers, the lookahead floor from the minimum link
// latency, and the per-tile boundary geometry the window planner reads.
func (n *Network) initTiles(count int) {
	nodes := n.Topo.Nodes()
	words := (nodes + 63) / 64
	block := (nodes + count - 1) / count
	n.tileOf = make([]int, nodes)
	for i := 0; i < count; i++ {
		lo := i * block
		hi := lo + block
		if lo > nodes {
			lo = nodes
		}
		if hi > nodes {
			hi = nodes
		}
		t := &tileState{
			n: n, id: i, lo: lo, hi: hi,
			idBase:     int64(i) << 48,
			activeMask: make([]uint64, words),
			injMask:    make([]uint64, words),
			outbox:     make([][]tileMsg, count),
		}
		for nd := lo; nd < hi; nd++ {
			n.tileOf[nd] = i
		}
		if n.Cfg.NoSkip {
			for nd := lo; nd < hi; nd++ {
				t.markActive(nd)
				t.markInject(nd)
			}
		}
		n.tiles = append(n.tiles, t)
	}
	// The minimum cross-tile delay is one top-level link period (the
	// fastest serialization and the fastest credit return); the window
	// floor is its span in router cycles, at least one.
	p := n.Cfg.RouterPeriod
	n.lookahead = int64((n.Table.Period[n.Table.Top()] + p - 1) / p)
	if n.lookahead < 1 {
		n.lookahead = 1
	}
	n.initTileGeometry(count)
}

// initTileGeometry precomputes the boundary-distance data behind the
// extracted lookahead: one reverse BFS per tile from its boundary-source
// routers over the intra-tile channels (so distB is the directed flit
// distance *to* a boundary), the per-port neighbor distances, and the
// border-fed input port lists. Runs before links exist — only the
// topology is needed.
func (n *Network) initTileGeometry(count int) {
	nodes := n.Topo.Nodes()
	ports := n.Cfg.Router.Ports
	pipeC := int64(n.Cfg.Router.PipelineDepth - 3) // traverse latency; depth >= 4 validated
	for _, t := range n.tiles {
		t.pipeC = pipeC
		t.ringMin, t.crossRingMin = farFuture, farFuture
		t.distB = make([]int32, nodes)
		for i := range t.distB {
			t.distB[i] = farDist
		}
		t.nbrD = make([]int32, nodes*ports)
		for i := range t.nbrD {
			t.nbrD[i] = -1
		}
	}
	// Reverse intra-tile adjacency (channel predecessors), and the
	// cross-channel endpoints: sources seed the BFS at distance zero,
	// destinations contribute border-fed input ports.
	radj := make([][]int32, nodes)
	hasCross := make([]bool, count)
	for _, ch := range n.Topo.Channels() {
		st, dt := n.tileOf[ch.Src], n.tileOf[ch.Dst]
		if st == dt {
			radj[ch.Dst] = append(radj[ch.Dst], int32(ch.Src))
			continue
		}
		hasCross[st] = true
		n.tiles[st].distB[ch.Src] = 0
		n.tiles[dt].borderIn = append(n.tiles[dt].borderIn,
			borderPort{node: ch.Dst, port: n.Topo.PortFor(ch.Dim, 1-ch.Dir)})
	}
	var queue []int32
	for _, t := range n.tiles {
		t.noBorder = !hasCross[t.id] && len(t.borderIn) == 0
		queue = queue[:0]
		for nd := t.lo; nd < t.hi; nd++ {
			if t.distB[nd] == 0 {
				queue = append(queue, int32(nd))
			}
		}
		for len(queue) > 0 {
			nd := queue[0]
			queue = queue[1:]
			d := t.distB[nd] + 1
			for _, pr := range radj[nd] {
				if t.distB[pr] > d {
					t.distB[pr] = d
					queue = append(queue, pr)
				}
			}
		}
	}
	for _, ch := range n.Topo.Channels() {
		if st := n.tileOf[ch.Src]; st == n.tileOf[ch.Dst] {
			t := n.tiles[st]
			t.nbrD[ch.Src*ports+n.Topo.PortFor(ch.Dim, ch.Dir)] = t.distB[ch.Dst]
		}
	}
}

// schedFor reports the scheduler a channel leaving node must use: the
// owning tile's when tiled, the global one otherwise.
func (n *Network) schedFor(node int) *sim.Scheduler {
	if n.tiles != nil {
		return &n.tiles[n.tileOf[node]].sched
	}
	return n.Sched
}

// Tiled reports whether this network runs the tile-parallel engine.
func (n *Network) Tiled() bool { return n.tiles != nil }

// owns reports whether the tile owns a node (the trace-filter predicate).
func (t *tileState) owns(node int) bool { return node >= t.lo && node < t.hi }

func (t *tileState) markActive(node int) {
	w, b := node>>6, uint64(1)<<(node&63)
	if t.activeMask[w]&b == 0 {
		t.activeMask[w] |= b
		t.activeCount++
	}
}

func (t *tileState) markInject(node int) {
	w, b := node>>6, uint64(1)<<(node&63)
	if t.injMask[w]&b == 0 {
		t.injMask[w] |= b
		t.injCount++
	}
}

// inject is the tile's traffic.Injector: Network.Inject restricted to the
// tile's sources, drawing IDs from the tile's disjoint space and deferring
// the global counters to the merge.
func (t *tileState) inject(src, dst int, now sim.Time, task int64) {
	if src == dst {
		return
	}
	n := t.n
	t.nextPkt++
	p := t.pool.NewPacket(t.idBase+t.nextPkt, src, dst, now, task)
	n.injectors[src].push(p)
	t.markInject(src)
	t.injected++
	t.inFlightDelta++
	if n.aud != nil {
		n.aud.OnInject(p, t.cycle)
	}
}

// slowDrop removes one tracked scheduler-fallback message by identity.
func (t *tileState) slowDrop(e *slowEntry) {
	for i := range t.slow {
		if t.slow[i] == e {
			t.slow = append(t.slow[:i], t.slow[i+1:]...)
			return
		}
	}
}

// enqueueArrival mirrors Network.enqueueArrival on the tile's ring and
// scheduler, folding the arrival's boundary hazard into ringMin. Only
// intra-tile messages come here; cross-tile ones go through the outbox.
func (t *tileState) enqueueArrival(node int, in *router.InputPort, f *flow.Flit, at sim.Time) {
	due := t.n.dueCycle(at)
	if due-t.cycle >= ringSize {
		e := &slowEntry{at: at, node: node, in: in, flit: f}
		t.slow = append(t.slow, e)
		e.seq = t.sched.At(at, func() {
			t.slowDrop(e)
			t.markActive(e.node)
			e.in.Arrive(e.flit, t.sched.Now())
		})
		return
	}
	b := &t.ring[due%ringSize]
	b.arrivals = append(b.arrivals, arrivalMsg{in: in, flit: f, node: node})
	t.ringCount++
	if d := t.distB[node]; d < farDist {
		if h := due + (t.pipeC+t.n.lookahead)*int64(d+1); h < t.ringMin {
			t.ringMin = h
		}
	}
}

// enqueueCredit mirrors Network.enqueueCredit on the tile's ring. Credits
// carry no boundary hazard of their own: they only unblock buffered flits,
// which the bound already counts at their positions.
func (t *tileState) enqueueCredit(out *router.OutputPort, vc int, at sim.Time) {
	due := t.n.dueCycle(at)
	if due-t.cycle >= ringSize {
		e := &slowEntry{at: at, node: -1, out: out, vc: vc}
		t.slow = append(t.slow, e)
		e.seq = t.sched.At(at, func() {
			t.slowDrop(e)
			e.out.ReturnCredit(e.vc, t.sched.Now())
		})
		return
	}
	b := &t.ring[due%ringSize]
	b.credits = append(b.credits, creditMsg{out: out, vc: vc})
	t.ringCount++
}

// bound computes a conservative earliest cycle at which the tile's state
// at window start w0 could produce a cross-tile effect — a flit arrival in
// another tile or a credit return to one. Hazard sources, each a provable
// lower bound on its earliest boundary crossing:
//
//   - An occupied border-fed input port: a flit may depart it this cycle,
//     owing the upstream tile a credit one link period later (>= the
//     top-level period, i.e. >= lookahead cycles). This is the only hazard
//     that can reach the floor w0+lookahead, so it short-circuits.
//   - A queued link transmission: the front entry cannot send before its
//     pipeline ready instant and the serializer's earliest next send
//     (DVSLink.EarliestSend; voltage/frequency transitions only delay).
//     On a cross-tile port the arrival lands one link period later; on an
//     intra-tile port the flit still has nbrD+1 hops to a boundary, each
//     at least one pipeline traversal plus one top-period link crossing.
//   - A buffered or injector-pending flit at distance d: it cannot cross
//     before d+1 full hops, pipeC+lookahead cycles each.
//   - A pending scheduler event (replay injection, slow-path message, DVS
//     completion): nothing lands at a router before the event's due cycle,
//     and a boundary crossing needs at least one traversal plus one link
//     period after that.
//   - Ring messages: ringMin (intra arrivals, folded in by enqueueArrival)
//     and crossRingMin (merged cross arrivals, folded in by mergeTiles).
//
// Credits never create hazards directly: link transmission needs no
// credits, and a credit only unblocks buffered flits that the positional
// term already counts as immediately movable. The result is clamped to
// [w0+lookahead, w0+maxTileWindow] — never below the constant floor the
// pre-extraction engine used.
func (t *tileState) bound(w0 int64) int64 {
	n := t.n
	la := n.lookahead
	floor := w0 + la
	best := w0 + maxTileWindow
	if t.noBorder {
		return best
	}
	for _, bp := range t.borderIn {
		if n.Routers[bp.node].Inputs[bp.port].Occupied() > 0 {
			return floor
		}
	}
	if t.ringCount == 0 {
		t.ringMin, t.crossRingMin = farFuture, farFuture
	} else {
		if t.ringMin < best {
			best = t.ringMin
		}
		if t.crossRingMin < best {
			best = t.crossRingMin
		}
	}
	if t.sched.Pending() > 0 {
		if h := n.dueCycle(t.sched.PeekTime()) + t.pipeC + la; h < best {
			best = h
		}
	}
	hop := t.pipeC + la
	ports := n.Cfg.Router.Ports
	minD := int32(farDist)
	for w, word := range t.activeMask {
		base := w << 6
		for word != 0 {
			node := base + bits.TrailingZeros64(word)
			word &= word - 1
			r := n.Routers[node]
			if r.BufferedFlits() > 0 && t.distB[node] < minD {
				minD = t.distB[node]
			}
			if r.LinkTxQueued() == 0 {
				continue
			}
			for m := r.TxPortMask() &^ 1; m != 0; m &= m - 1 {
				port := bits.TrailingZeros32(m)
				out := r.Outputs[port]
				l := out.Link
				if l == nil {
					continue
				}
				s := n.dueCycle(out.TxFront().ReadyAt())
				if c := n.dueCycle(l.EarliestSend()); c > s {
					s = c
				}
				if s < w0 {
					s = w0
				}
				h := s + la
				if d := t.nbrD[node*ports+port]; d >= 0 {
					if d >= farDist {
						continue // neighbor cannot reach a boundary
					}
					h += hop * int64(d+1)
				}
				if h < best {
					best = h
					if best <= floor {
						return floor
					}
				}
			}
		}
	}
	for w, word := range t.injMask {
		base := w << 6
		for word != 0 {
			node := base + bits.TrailingZeros64(word)
			word &= word - 1
			if t.distB[node] < minD {
				minD = t.distB[node]
			}
		}
	}
	if minD < farDist {
		if h := w0 + hop*int64(minD+1); h < best {
			best = h
		}
	}
	if best < floor {
		best = floor
	}
	return best
}

// runTo advances the tile to cycle e, one step per cycle, jumping over
// locally idle stretches (no active routers, no injector work, no ring
// messages) straight to the tile's next scheduler event. This is the loop
// each tile worker runs between merges; it touches only tile-owned state
// (its routers, links, injectors, ring, pool) plus immutable shared data.
// On return, promised holds the bound covering the next window.
func (t *tileState) runTo(e int64) {
	for t.cycle < e {
		if !t.n.noskip && t.activeCount == 0 && t.injCount == 0 && t.ringCount == 0 {
			c := e
			if t.sched.Pending() > 0 {
				if d := t.n.dueCycle(t.sched.PeekTime()); d < c {
					c = d
				}
			}
			if c > t.cycle {
				if ran := t.sched.RunUntil(sim.Time(c-1) * t.n.Cfg.RouterPeriod); ran != 0 {
					panic(fmt.Sprintf("network: tile fast-forward to cycle %d ran %d events — jump bound broken", c, ran))
				}
				for i := t.cycle; i < c; i++ {
					t.ticked = append(t.ticked, 0)
				}
				t.cycle = c
				continue
			}
		}
		t.step()
	}
	t.promised = t.bound(e)
}

// step is Network.Step restricted to one tile: deliver the tile's pending
// events, inject at the tile's sources, tick its active routers, transmit
// and eject — identical phase order, identical instants. Policy windows,
// probes and audit scans are window-end work and deliberately absent here.
func (t *tileState) step() {
	n := t.n
	now := sim.Time(t.cycle) * n.Cfg.RouterPeriod
	t.sched.RunUntil(now)
	t.drainRing(now)
	t.injectFlits(now)
	ticked := 0
	for w, word := range t.activeMask {
		base := w << 6
		for word != 0 {
			r := n.Routers[base+bits.TrailingZeros64(word)]
			word &= word - 1
			r.Tick(now, n.Cfg.RouterPeriod)
			ticked++
		}
	}
	t.transmit(now)
	t.eject(now)
	if !n.noskip {
		for w, word := range t.activeMask {
			base := w << 6
			for word != 0 {
				i := base + bits.TrailingZeros64(word)
				word &= word - 1
				if !n.Routers[i].Busy() {
					t.activeMask[w] &^= 1 << (i & 63)
					t.activeCount--
				}
			}
		}
	}
	t.ticked = append(t.ticked, ticked)
	t.cycle++
}

// drainRing delivers the tile's messages due this cycle.
func (t *tileState) drainRing(now sim.Time) {
	b := &t.ring[t.cycle%ringSize]
	t.ringCount -= len(b.arrivals) + len(b.credits)
	for i, a := range b.arrivals {
		t.markActive(a.node)
		a.in.Arrive(a.flit, now)
		b.arrivals[i] = arrivalMsg{}
	}
	b.arrivals = b.arrivals[:0]
	for i, c := range b.credits {
		c.out.ReturnCredit(c.vc, now)
		b.credits[i] = creditMsg{}
	}
	b.credits = b.credits[:0]
}

// injectFlits mirrors Network.injectFlits over the tile's injector mask.
func (t *tileState) injectFlits(now sim.Time) {
	n := t.n
	for w, word := range t.injMask {
		base := w << 6
		for word != 0 {
			node := base + bits.TrailingZeros64(word)
			word &= word - 1
			inj := n.injectors[node]
			t.injectOne(node, inj, now)
			if !n.noskip && len(inj.current) == 0 && inj.qLen == 0 {
				t.injMask[w] &^= 1 << (node & 63)
				t.injCount--
			}
		}
	}
}

// injectOne mirrors Network.injectOne with the tile's pool and cycle.
func (t *tileState) injectOne(node int, inj *injector, now sim.Time) {
	n := t.n
	in := n.Routers[node].Inputs[topology.LocalPort]
	if len(inj.current) == 0 {
		if inj.qLen == 0 {
			return
		}
		best, bestFree := -1, 0
		for vc := 0; vc < n.Cfg.Router.VCs; vc++ {
			if f := in.Free(vc); f > bestFree {
				best, bestFree = vc, f
			}
		}
		if best < 0 || bestFree < 1 {
			return
		}
		p := inj.pop()
		p.Injected = now
		inj.current = t.pool.Flits(p)
		inj.vc = best
		if n.aud != nil {
			n.aud.OnSourceDequeue(p, t.cycle)
		}
	}
	if in.Free(inj.vc) < 1 {
		return
	}
	f := inj.current[0]
	inj.current = inj.current[1:]
	f.VC = inj.vc
	t.markActive(node)
	in.Arrive(f, now)
}

// transmit mirrors Network.transmit over the tile's active mask.
func (t *tileState) transmit(now sim.Time) {
	for w, word := range t.activeMask {
		base := w << 6
		for word != 0 {
			node := base + bits.TrailingZeros64(word)
			word &= word - 1
			t.transmitNode(node, now)
		}
	}
}

// transmitNode mirrors Network.transmitNode; arrivals bound for another
// tile are parked in the outbox until the merge.
func (t *tileState) transmitNode(node int, now sim.Time) {
	n := t.n
	r := n.Routers[node]
	for mask := r.TxPortMask() &^ 1; mask != 0; mask &= mask - 1 {
		port := bits.TrailingZeros32(mask)
		out := r.Outputs[port]
		l := out.Link
		if l == nil {
			continue
		}
		front := out.TxFront()
		if front.ReadyAt() > now || !l.CanSend(now) {
			continue
		}
		out.PopTx()
		f := front.Flit()
		if n.aud != nil {
			n.aud.OnLinkSend(node, port, l, f, now, t.cycle)
		}
		d := l.Send(now)

		dim, dir := n.Topo.DimDir(port)
		dst, ok := n.Topo.Neighbor(node, dim, dir)
		if !ok {
			panic("network: flit routed off the mesh edge")
		}
		if f.Kind == flow.Head {
			cx := n.Topo.Coord(node, dim)
			wrap := n.Topo.Torus() &&
				((dir == topology.Plus && cx == n.Topo.K()-1) ||
					(dir == topology.Minus && cx == 0))
			st := routing.State{LastDim: f.Packet.LastDim, Wrapped: f.Packet.Wrapped}
			st = st.Advance(dim, wrap)
			f.Packet.LastDim, f.Packet.Wrapped = st.LastDim, st.Wrapped
		}
		inPort := n.Topo.PortFor(dim, 1-dir)
		in := n.Routers[dst].Inputs[inPort]
		if dt := n.tileOf[dst]; dt != t.id {
			t.outbox[dt] = append(t.outbox[dt], tileMsg{at: now + d, node: dst, in: in, flit: f})
		} else {
			t.enqueueArrival(dst, in, f, now+d)
		}
	}
}

// eject mirrors Network.eject over the tile's active mask; tails are
// buffered for the merge's ordered replay instead of touching the global
// accumulators.
func (t *tileState) eject(now sim.Time) {
	n := t.n
	for w, word := range t.activeMask {
		base := w << 6
		for word != 0 {
			node := base + bits.TrailingZeros64(word)
			word &= word - 1
			r := n.Routers[node]
			if r.LocalTxQueued() == 0 {
				continue
			}
			out := r.Outputs[topology.LocalPort]
			for out.QueuedTx() > 0 && out.TxFront().ReadyAt() <= now {
				e := out.PopTx()
				f := e.Flit()
				if n.aud != nil {
					n.aud.OnEject(f, r.ID, t.cycle)
				}
				if f.Kind != flow.Tail {
					continue
				}
				p := f.Packet
				p.Delivered = now
				if n.aud != nil {
					n.aud.OnDeliver(p, t.cycle)
				}
				t.deliveries = append(t.deliveries, tileDelivery{cycle: t.cycle, p: p})
			}
		}
	}
}

// walkTransit shows the audit the tile's in-flight messages.
func (t *tileState) walkTransit(v audit.TransitVisitor) {
	for i := range t.ring {
		b := &t.ring[i]
		for _, a := range b.arrivals {
			v.Flit(a.in, a.flit)
		}
		for _, cm := range b.credits {
			v.Credit(cm.out, cm.vc)
		}
	}
	for _, s := range t.slow {
		if s.in != nil {
			v.Flit(s.in, s.flit)
		} else {
			v.Credit(s.out, s.vc)
		}
	}
	for _, box := range t.outbox {
		for _, m := range box {
			if m.in != nil {
				v.Flit(m.in, m.flit)
			} else {
				v.Credit(m.out, m.vc)
			}
		}
	}
}

// runTiled is Run for the tiled engine: advance in extracted-lookahead
// windows, merging cross-tile state only when a window produced cross-tile
// messages (or a probe/audit edge or the deferral cap forces it), and
// fast-forwarding fully quiescent stretches exactly like the sequential
// core. Unaudited windows run on one persistent worker goroutine per tile
// when the host has more than one CPU (or forceTileWorkers is set);
// otherwise tiles run inline on the coordinator.
func (n *Network) runTiled(cycles int64) {
	if n.Trace != nil {
		// Tile steps do not log packet events (the buffer is unsynchronized
		// and event order would depend on tile interleaving); refuse rather
		// than silently drop them.
		panic("network: event tracing requires an untiled network")
	}
	target := n.cycle + cycles
	for _, t := range n.tiles {
		t.promised = t.bound(n.cycle)
	}
	useWorkers := n.aud == nil && (n.forceTileWorkers || runtime.GOMAXPROCS(0) > 1)
	var work []chan int64
	var done chan struct{}
	if useWorkers {
		done = make(chan struct{}, len(n.tiles))
		for _, t := range n.tiles {
			ch := make(chan int64)
			work = append(work, ch)
			go func(t *tileState, ch chan int64) {
				for e := range ch {
					t.runTo(e)
					done <- struct{}{}
				}
			}(t, ch)
		}
		defer func() {
			for _, ch := range work {
				close(ch)
			}
		}()
	}
	for n.cycle < target {
		if !n.noskip && n.tilesQuiescent() {
			if c := n.nextInterestingCycleTiled(target); c > n.cycle {
				if n.tileMerged < n.cycle {
					n.mergeTiles(n.cycle)
				}
				n.fastForwardTiled(c)
				for _, t := range n.tiles {
					t.promised = t.bound(n.cycle)
				}
				continue
			}
		}
		e := n.tilePlanWindow(target)
		if work == nil {
			for _, t := range n.tiles {
				t.runTo(e)
			}
		} else {
			for _, ch := range work {
				ch <- e
			}
			for range work {
				<-done
			}
		}
		n.tileWindowEnd(e)
	}
	// Run boundaries expose the global accumulators (Snapshot,
	// BeginMeasurement, checkpointing): settle every deferred merge.
	if n.tileMerged < n.cycle {
		n.mergeTiles(n.cycle)
	}
}

// tilesQuiescent reports whether no tile holds live work: mirrors the
// sequential quiescence test per tile. Outboxes are empty whenever this is
// consulted (a window end with a non-empty outbox merges), but deliveries
// and tick logs may still be deferred — runTiled settles them before
// fast-forwarding.
func (n *Network) tilesQuiescent() bool {
	for _, t := range n.tiles {
		if t.activeCount != 0 || t.injCount != 0 || t.ringCount != 0 {
			return false
		}
	}
	return true
}

// nextInterestingCycleTiled is nextInterestingCycle with the earliest
// pending event taken across the per-tile schedulers.
func (n *Network) nextInterestingCycleTiled(target int64) int64 {
	next := target
	for _, t := range n.tiles {
		if t.sched.Pending() > 0 {
			if c := n.dueCycle(t.sched.PeekTime()); c < next {
				next = c
			}
		}
	}
	if n.Cfg.Policy != PolicyNone && !n.dvsHold {
		if c := boundaryFrom(n.cycle, int64(n.Cfg.DVS.H)); c < next {
			next = c
		}
	}
	if n.Probe != nil && n.ProbeEvery > 0 {
		if c := boundaryFrom(n.cycle, n.ProbeEvery); c < next {
			next = c
		}
	}
	if n.aud != nil {
		if c := boundaryFrom(n.cycle, n.aud.ScanEvery()); c < next {
			next = c
		}
	}
	if next < n.cycle {
		next = n.cycle
	}
	return next
}

// fastForwardTiled jumps every tile (and the global clock) to cycle c; no
// tile scheduler may hold an event inside the jumped span, and every
// deferred merge must have been settled (tileMerged == cycle).
func (n *Network) fastForwardTiled(c int64) {
	skipped := c - n.cycle
	n.skips.CyclesFastForwarded += skipped
	n.skips.FastForwards++
	n.skips.RouterTicksElided += skipped * int64(len(n.Routers))
	n.cycle = c
	n.tileMerged = c
	edge := sim.Time(c-1) * n.Cfg.RouterPeriod
	for _, t := range n.tiles {
		t.cycle = c
		if ran := t.sched.RunUntil(edge); ran != 0 {
			panic(fmt.Sprintf("network: tiled fast-forward to cycle %d ran %d events — jump bound broken", c, ran))
		}
	}
	if ran := n.Sched.RunUntil(edge); ran != 0 {
		panic("network: events on the global scheduler of a tiled run")
	}
}

// tilePlanWindow reports the next window end: the minimum over tiles of
// each tile's promised bound — lowered by the hazard horizon of cross-tile
// arrivals merged after that promise was computed — capped at the merge
// deferral limit, clamped so every policy-window close, probe tick and
// audit scan lands on a window end (mirroring the boundary set
// nextInterestingCycle respects), and floored at one cycle: a single-cycle
// window is intrinsically safe because every cross-tile message is delayed
// by at least one top-level link period. Each tile's pledge — the bound
// its outboxed messages are verified against — is fixed here.
func (n *Network) tilePlanWindow(target int64) int64 {
	e := target
	if capAt := n.tileMerged + maxTileWindow; e > capAt {
		e = capAt
	}
	for _, t := range n.tiles {
		b := t.promised
		if t.ringCount > 0 && t.crossRingMin < b {
			b = t.crossRingMin
		}
		t.pledge = b
		if b < e {
			e = b
		}
	}
	clamp := func(every int64) {
		if b := boundaryFrom(n.cycle, every) + 1; b < e {
			e = b
		}
	}
	if n.Cfg.Policy != PolicyNone && !n.dvsHold {
		clamp(int64(n.Cfg.DVS.H))
	}
	if n.Probe != nil && n.ProbeEvery > 0 {
		clamp(n.ProbeEvery)
	}
	if n.aud != nil {
		clamp(n.aud.ScanEvery())
	}
	if e <= n.cycle {
		e = n.cycle + 1
	}
	return e
}

// tileWindowEnd closes the window ending at cycle e: advance the global
// clock, merge the tiles — or elide the merge when every cross-tile outbox
// is empty and no probe tick, audit scan or deferral cap forces one — then
// run the cycle-aligned global machinery (policy windows, probes, audit
// scans) at exactly the instants the sequential Step would.
func (n *Network) tileWindowEnd(e int64) {
	n.cycle = e
	edge := sim.Time(e-1) * n.Cfg.RouterPeriod
	if ran := n.Sched.RunUntil(edge); ran != 0 {
		panic("network: events on the global scheduler of a tiled run")
	}
	n.skips.TileWindows++
	merge := n.noTileElide || e-n.tileMerged >= maxTileWindow
	if !merge {
	outboxes:
		for _, t := range n.tiles {
			for _, box := range t.outbox {
				if len(box) != 0 {
					merge = true
					break outboxes
				}
			}
		}
	}
	if !merge && n.Probe != nil && n.ProbeEvery > 0 && e%n.ProbeEvery == 0 {
		merge = true // probes read the global accumulators
	}
	if !merge && n.aud != nil && e%n.aud.ScanEvery() == 0 {
		merge = true // scans walk every ledger, including deferred state
	}
	if merge {
		n.mergeTiles(e)
	} else {
		n.skips.TileBarriersElided++
	}
	if !n.dvsHold && e%int64(n.Cfg.DVS.H) == 0 {
		n.runPolicies(edge)
	}
	if n.Probe != nil && n.ProbeEvery > 0 && e%n.ProbeEvery == 0 {
		n.Probe(edge)
	}
	if n.aud != nil && e%n.aud.ScanEvery() == 0 {
		n.aud.EndCycle(e, edge)
	}
}

// mergeTiles drains the cross-tile outboxes in canonical order and replays
// the deferred per-tile accumulators into the global ones, advancing the
// merge frontier to cycle e: buffered deliveries replay in (cycle, tile)
// order, integer counters merge additively, and per-cycle tick logs fold
// into the skip statistics. Under Config.VerifyLookahead or an audit,
// every outboxed message is checked against the bound its source tile
// pledged for the window that generated it.
func (n *Network) mergeTiles(e int64) {
	w0 := n.tileMerged
	n.skips.TileBarriers++
	verify := n.Cfg.VerifyLookahead || n.aud != nil

	// Cross-tile messages, in (source tile, generation order), bucketed
	// into the destination tile's ring by due cycle. Every message was
	// generated in the window just ended (earlier windows with non-empty
	// outboxes merged at their own ends), so the lookahead bound guarantees
	// due >= e and the ring span bounds it above (cross-tile delays are at
	// most one bottom-level link period). Merged flit arrivals are new
	// hazards the destination's promise has not seen; fold them into its
	// crossRingMin (the arrival's own onward journey and the credit it will
	// owe are both at least one link period past its due cycle).
	for _, src := range n.tiles {
		for dt, box := range src.outbox {
			if len(box) == 0 {
				continue
			}
			dest := n.tiles[dt]
			for i, m := range box {
				due := n.dueCycle(m.at)
				if verify && due < src.pledge {
					n.laViolations++
				}
				if due < e || due-e >= ringSize {
					panic(fmt.Sprintf("network: cross-tile message due cycle %d outside window end %d", due, e))
				}
				b := &dest.ring[due%ringSize]
				if m.node >= 0 {
					b.arrivals = append(b.arrivals, arrivalMsg{in: m.in, flit: m.flit, node: m.node})
					if h := due + n.lookahead; h < dest.crossRingMin {
						dest.crossRingMin = h
					}
				} else {
					b.credits = append(b.credits, creditMsg{out: m.out, vc: m.vc})
				}
				dest.ringCount++
				box[i] = tileMsg{}
			}
			src.outbox[dt] = box[:0]
		}
	}

	// Delivery replay: (cycle, tile) order equals the sequential engine's
	// (cycle, ascending node) eject order, so the order-sensitive latency
	// stream accumulates bit-identically.
	for c := w0; c < e; c++ {
		for _, t := range n.tiles {
			for t.delIdx < len(t.deliveries) && t.deliveries[t.delIdx].cycle == c {
				p := t.deliveries[t.delIdx].p
				t.delIdx++
				n.InFlight--
				if p.Created >= n.measStart {
					n.Lat.Add(p.Latency())
					n.delivered++
				}
				if n.OnDeliver != nil {
					n.OnDeliver(p)
				} else {
					t.pool.Recycle(p)
				}
			}
		}
	}
	span := int(e - w0)
	nodes := len(n.Routers)
	for _, t := range n.tiles {
		if t.delIdx != len(t.deliveries) {
			panic("network: tiled delivery recorded outside its window")
		}
		if len(t.ticked) != span {
			panic("network: tiled tick log out of step with the merge frontier")
		}
		for i := range t.deliveries {
			t.deliveries[i] = tileDelivery{}
		}
		t.deliveries, t.delIdx = t.deliveries[:0], 0
		n.injected += t.injected
		n.InFlight += t.inFlightDelta
		t.injected, t.inFlightDelta = 0, 0
	}
	for i := 0; i < span; i++ {
		total := 0
		for _, t := range n.tiles {
			total += t.ticked[i]
		}
		n.skips.CyclesExecuted++
		n.skips.RouterTicks += int64(total)
		n.skips.RouterTicksElided += int64(nodes - total)
		n.skips.ActiveHist[total]++
	}
	for _, t := range n.tiles {
		t.ticked = t.ticked[:0]
	}
	n.tileMerged = e
}
