// Intra-run tile parallelism: the mesh is partitioned into contiguous
// blocks of routers ("tiles"), each advanced by its own scheduler, with a
// conservative lookahead barrier every W cycles, where W is the minimum
// link latency in router cycles (ceil of the top-level link period over the
// router period — 1 with the paper's table, so barriers are per cycle).
//
// Why the output is byte-identical to the sequential core:
//
//   - Isolation inside a window. Every cross-tile interaction is a flit
//     arrival or a credit return, and both are delayed by at least one link
//     serialization period, i.e. at least W router cycles. A message
//     generated at cycle t >= w0 is therefore due at cycle t+W >= w0+W — at
//     or after the barrier — so no event inside a window [w0, w0+W) can
//     observe another tile's activity in the same window. Tiles advance
//     their cycles independently and meet only at barriers.
//   - Canonical cross-tile delivery. Outboxed messages drain at the
//     barrier in (source tile, generation order) into the destination
//     tile's delay ring, bucketed by due cycle. Within one ring bucket the
//     sequential core's order is immaterial: a link serializer spaces
//     consecutive sends at least one period apart, so at most one flit
//     lands per input port per cycle (arrivals to distinct ports commute),
//     and credit returns are counter increments that commute per (port,
//     VC); drainRing applies all arrivals before all credits in both
//     engines.
//   - Deterministic accumulator merge. The only order-sensitive global
//     accumulator is the latency stream (Welford moments). Tiles buffer
//     deliveries and the barrier replays them in (cycle, tile) order —
//     which equals the sequential engine's (cycle, ascending node) order,
//     because tiles own ascending contiguous node ranges and each tile's
//     eject phase walks its routers in ascending order. Integer counters
//     (injected, delivered, InFlight, skip stats) merge additively.
//   - Synchronized global machinery. DVS policy windows, probes and audit
//     scans run at barriers on the single coordinating goroutine: windows
//     are clamped so a barrier lands exactly on every policy/probe/scan
//     boundary, with the same cycle number and simulation instant as the
//     sequential Step. Links schedule their transition events on their
//     owning tile's scheduler, so completions fire at identical instants.
//   - Packet identity. Each tile draws packet IDs from a disjoint space
//     (tile index in the high bits). IDs differ from the sequential run's
//     but are semantically inert: allocation arbiters are positional, and
//     no result, statistic or golden artifact carries an ID.
//
// Audited runs execute tiles sequentially on the coordinating goroutine
// (the audit checker's ledgers are single-threaded maps); results are
// identical either way, so the audit still proves the tiled datapath.
// Checkpoint capture refuses tiled networks (see CaptureCheckpoint): the
// experiment harness runs tiled points on the straight warmup path, which
// PR 7's conformance suite proved byte-identical to the forked one.
package network

import (
	"fmt"
	"math/bits"

	"repro/internal/audit"
	"repro/internal/flow"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// tileMsg is one cross-tile message parked in an outbox until the next
// barrier: a flit arrival when in is non-nil, otherwise a credit return.
type tileMsg struct {
	at   sim.Time
	node int // arrival destination router; -1 for credits
	in   *router.InputPort
	flit *flow.Flit
	out  *router.OutputPort
	vc   int
}

// tileDelivery is one delivered packet buffered for the barrier's ordered
// replay into the global latency/throughput accumulators.
type tileDelivery struct {
	cycle int64
	p     *flow.Packet
}

// tileState is one tile: a contiguous block of routers [lo, hi) with its
// own scheduler, delay ring, packet pool and activity masks — the per-tile
// mirror of the Network fields the sequential engine uses. Masks are
// full-length word slices (only bits in [lo, hi) are ever set) so the
// tick/transmit/eject loops keep the sequential engine's shape.
type tileState struct {
	n      *Network
	id     int
	lo, hi int
	idBase int64 // packet IDs are idBase + per-tile sequence

	sched sim.Scheduler
	cycle int64

	ring      [ringSize]ringBucket
	ringCount int
	slow      []*slowEntry
	pool      flow.Pool
	nextPkt   int64
	replay    *traffic.Replay

	activeMask  []uint64
	activeCount int
	injMask     []uint64
	injCount    int

	// outbox[d] holds messages bound for tile d, in generation order.
	outbox [][]tileMsg
	// deliveries buffers delivered packets (nondecreasing cycle order) for
	// the barrier replay; delIdx is the replay cursor.
	deliveries []tileDelivery
	delIdx     int
	// ticked[i] is the number of routers ticked in the window's i-th
	// cycle, merged into the global skip stats at the barrier.
	ticked []int

	injected      int64
	inFlightDelta int64
}

// initTiles builds the tile partition: count contiguous blocks of
// ceil(nodes/count) routers, and the lookahead window from the minimum
// link latency.
func (n *Network) initTiles(count int) {
	nodes := n.Topo.Nodes()
	words := (nodes + 63) / 64
	block := (nodes + count - 1) / count
	n.tileOf = make([]int, nodes)
	for i := 0; i < count; i++ {
		lo := i * block
		hi := lo + block
		if lo > nodes {
			lo = nodes
		}
		if hi > nodes {
			hi = nodes
		}
		t := &tileState{
			n: n, id: i, lo: lo, hi: hi,
			idBase:     int64(i) << 48,
			activeMask: make([]uint64, words),
			injMask:    make([]uint64, words),
			outbox:     make([][]tileMsg, count),
		}
		for nd := lo; nd < hi; nd++ {
			n.tileOf[nd] = i
		}
		if n.Cfg.NoSkip {
			for nd := lo; nd < hi; nd++ {
				t.markActive(nd)
				t.markInject(nd)
			}
		}
		n.tiles = append(n.tiles, t)
	}
	// The minimum cross-tile delay is one top-level link period (the
	// fastest serialization and the fastest credit return); the window is
	// its span in router cycles, at least one.
	p := n.Cfg.RouterPeriod
	n.lookahead = int64((n.Table.Period[n.Table.Top()] + p - 1) / p)
	if n.lookahead < 1 {
		n.lookahead = 1
	}
}

// schedFor reports the scheduler a channel leaving node must use: the
// owning tile's when tiled, the global one otherwise.
func (n *Network) schedFor(node int) *sim.Scheduler {
	if n.tiles != nil {
		return &n.tiles[n.tileOf[node]].sched
	}
	return n.Sched
}

// Tiled reports whether this network runs the tile-parallel engine.
func (n *Network) Tiled() bool { return n.tiles != nil }

// owns reports whether the tile owns a node (the trace-filter predicate).
func (t *tileState) owns(node int) bool { return node >= t.lo && node < t.hi }

func (t *tileState) markActive(node int) {
	w, b := node>>6, uint64(1)<<(node&63)
	if t.activeMask[w]&b == 0 {
		t.activeMask[w] |= b
		t.activeCount++
	}
}

func (t *tileState) markInject(node int) {
	w, b := node>>6, uint64(1)<<(node&63)
	if t.injMask[w]&b == 0 {
		t.injMask[w] |= b
		t.injCount++
	}
}

// inject is the tile's traffic.Injector: Network.Inject restricted to the
// tile's sources, drawing IDs from the tile's disjoint space and deferring
// the global counters to the barrier merge.
func (t *tileState) inject(src, dst int, now sim.Time, task int64) {
	if src == dst {
		return
	}
	n := t.n
	t.nextPkt++
	p := t.pool.NewPacket(t.idBase+t.nextPkt, src, dst, now, task)
	n.injectors[src].push(p)
	t.markInject(src)
	t.injected++
	t.inFlightDelta++
	if n.aud != nil {
		n.aud.OnInject(p, t.cycle)
	}
}

// slowDrop removes one tracked scheduler-fallback message by identity.
func (t *tileState) slowDrop(e *slowEntry) {
	for i := range t.slow {
		if t.slow[i] == e {
			t.slow = append(t.slow[:i], t.slow[i+1:]...)
			return
		}
	}
}

// enqueueArrival mirrors Network.enqueueArrival on the tile's ring and
// scheduler. Only intra-tile messages come here; cross-tile ones go
// through the outbox.
func (t *tileState) enqueueArrival(node int, in *router.InputPort, f *flow.Flit, at sim.Time) {
	due := t.n.dueCycle(at)
	if due-t.cycle >= ringSize {
		e := &slowEntry{at: at, node: node, in: in, flit: f}
		t.slow = append(t.slow, e)
		e.seq = t.sched.At(at, func() {
			t.slowDrop(e)
			t.markActive(e.node)
			e.in.Arrive(e.flit, t.sched.Now())
		})
		return
	}
	b := &t.ring[due%ringSize]
	b.arrivals = append(b.arrivals, arrivalMsg{in: in, flit: f, node: node})
	t.ringCount++
}

// enqueueCredit mirrors Network.enqueueCredit on the tile's ring.
func (t *tileState) enqueueCredit(out *router.OutputPort, vc int, at sim.Time) {
	due := t.n.dueCycle(at)
	if due-t.cycle >= ringSize {
		e := &slowEntry{at: at, node: -1, out: out, vc: vc}
		t.slow = append(t.slow, e)
		e.seq = t.sched.At(at, func() {
			t.slowDrop(e)
			e.out.ReturnCredit(e.vc, t.sched.Now())
		})
		return
	}
	b := &t.ring[due%ringSize]
	b.credits = append(b.credits, creditMsg{out: out, vc: vc})
	t.ringCount++
}

// runTo advances the tile to cycle e, one step per cycle. This is the loop
// each tile worker runs between barriers; it touches only tile-owned state
// (its routers, links, injectors, ring, pool) plus immutable shared data.
func (t *tileState) runTo(e int64) {
	for t.cycle < e {
		t.step()
	}
}

// step is Network.Step restricted to one tile: deliver the tile's pending
// events, inject at the tile's sources, tick its active routers, transmit
// and eject — identical phase order, identical instants. Policy windows,
// probes and audit scans are barrier work and deliberately absent here.
func (t *tileState) step() {
	n := t.n
	now := sim.Time(t.cycle) * n.Cfg.RouterPeriod
	t.sched.RunUntil(now)
	t.drainRing(now)
	t.injectFlits(now)
	ticked := 0
	for w, word := range t.activeMask {
		base := w << 6
		for word != 0 {
			r := n.Routers[base+bits.TrailingZeros64(word)]
			word &= word - 1
			r.Tick(now, n.Cfg.RouterPeriod)
			ticked++
		}
	}
	t.transmit(now)
	t.eject(now)
	if !n.noskip {
		for w, word := range t.activeMask {
			base := w << 6
			for word != 0 {
				i := base + bits.TrailingZeros64(word)
				word &= word - 1
				if !n.Routers[i].Busy() {
					t.activeMask[w] &^= 1 << (i & 63)
					t.activeCount--
				}
			}
		}
	}
	t.ticked = append(t.ticked, ticked)
	t.cycle++
}

// drainRing delivers the tile's messages due this cycle.
func (t *tileState) drainRing(now sim.Time) {
	b := &t.ring[t.cycle%ringSize]
	t.ringCount -= len(b.arrivals) + len(b.credits)
	for i, a := range b.arrivals {
		t.markActive(a.node)
		a.in.Arrive(a.flit, now)
		b.arrivals[i] = arrivalMsg{}
	}
	b.arrivals = b.arrivals[:0]
	for i, c := range b.credits {
		c.out.ReturnCredit(c.vc, now)
		b.credits[i] = creditMsg{}
	}
	b.credits = b.credits[:0]
}

// injectFlits mirrors Network.injectFlits over the tile's injector mask.
func (t *tileState) injectFlits(now sim.Time) {
	n := t.n
	for w, word := range t.injMask {
		base := w << 6
		for word != 0 {
			node := base + bits.TrailingZeros64(word)
			word &= word - 1
			inj := n.injectors[node]
			t.injectOne(node, inj, now)
			if !n.noskip && len(inj.current) == 0 && inj.qLen == 0 {
				t.injMask[w] &^= 1 << (node & 63)
				t.injCount--
			}
		}
	}
}

// injectOne mirrors Network.injectOne with the tile's pool and cycle.
func (t *tileState) injectOne(node int, inj *injector, now sim.Time) {
	n := t.n
	in := n.Routers[node].Inputs[topology.LocalPort]
	if len(inj.current) == 0 {
		if inj.qLen == 0 {
			return
		}
		best, bestFree := -1, 0
		for vc := 0; vc < n.Cfg.Router.VCs; vc++ {
			if f := in.Free(vc); f > bestFree {
				best, bestFree = vc, f
			}
		}
		if best < 0 || bestFree < 1 {
			return
		}
		p := inj.pop()
		p.Injected = now
		inj.current = t.pool.Flits(p)
		inj.vc = best
		if n.aud != nil {
			n.aud.OnSourceDequeue(p, t.cycle)
		}
	}
	if in.Free(inj.vc) < 1 {
		return
	}
	f := inj.current[0]
	inj.current = inj.current[1:]
	f.VC = inj.vc
	t.markActive(node)
	in.Arrive(f, now)
}

// transmit mirrors Network.transmit over the tile's active mask.
func (t *tileState) transmit(now sim.Time) {
	for w, word := range t.activeMask {
		base := w << 6
		for word != 0 {
			node := base + bits.TrailingZeros64(word)
			word &= word - 1
			t.transmitNode(node, now)
		}
	}
}

// transmitNode mirrors Network.transmitNode; arrivals bound for another
// tile are parked in the outbox until the barrier.
func (t *tileState) transmitNode(node int, now sim.Time) {
	n := t.n
	r := n.Routers[node]
	for mask := r.TxPortMask() &^ 1; mask != 0; mask &= mask - 1 {
		port := bits.TrailingZeros32(mask)
		out := r.Outputs[port]
		l := out.Link
		if l == nil {
			continue
		}
		front := out.TxFront()
		if front.ReadyAt() > now || !l.CanSend(now) {
			continue
		}
		out.PopTx()
		f := front.Flit()
		if n.aud != nil {
			n.aud.OnLinkSend(node, port, l, f, now, t.cycle)
		}
		d := l.Send(now)

		dim, dir := n.Topo.DimDir(port)
		dst, ok := n.Topo.Neighbor(node, dim, dir)
		if !ok {
			panic("network: flit routed off the mesh edge")
		}
		if f.Kind == flow.Head {
			cx := n.Topo.Coord(node, dim)
			wrap := n.Topo.Torus() &&
				((dir == topology.Plus && cx == n.Topo.K()-1) ||
					(dir == topology.Minus && cx == 0))
			st := routing.State{LastDim: f.Packet.LastDim, Wrapped: f.Packet.Wrapped}
			st = st.Advance(dim, wrap)
			f.Packet.LastDim, f.Packet.Wrapped = st.LastDim, st.Wrapped
		}
		inPort := n.Topo.PortFor(dim, 1-dir)
		in := n.Routers[dst].Inputs[inPort]
		if dt := n.tileOf[dst]; dt != t.id {
			t.outbox[dt] = append(t.outbox[dt], tileMsg{at: now + d, node: dst, in: in, flit: f})
		} else {
			t.enqueueArrival(dst, in, f, now+d)
		}
	}
}

// eject mirrors Network.eject over the tile's active mask; tails are
// buffered for the barrier's ordered replay instead of touching the global
// accumulators.
func (t *tileState) eject(now sim.Time) {
	n := t.n
	for w, word := range t.activeMask {
		base := w << 6
		for word != 0 {
			node := base + bits.TrailingZeros64(word)
			word &= word - 1
			r := n.Routers[node]
			if r.LocalTxQueued() == 0 {
				continue
			}
			out := r.Outputs[topology.LocalPort]
			for out.QueuedTx() > 0 && out.TxFront().ReadyAt() <= now {
				e := out.PopTx()
				f := e.Flit()
				if n.aud != nil {
					n.aud.OnEject(f, r.ID, t.cycle)
				}
				if f.Kind != flow.Tail {
					continue
				}
				p := f.Packet
				p.Delivered = now
				if n.aud != nil {
					n.aud.OnDeliver(p, t.cycle)
				}
				t.deliveries = append(t.deliveries, tileDelivery{cycle: t.cycle, p: p})
			}
		}
	}
}

// walkTransit shows the audit the tile's in-flight messages.
func (t *tileState) walkTransit(v audit.TransitVisitor) {
	for i := range t.ring {
		b := &t.ring[i]
		for _, a := range b.arrivals {
			v.Flit(a.in, a.flit)
		}
		for _, cm := range b.credits {
			v.Credit(cm.out, cm.vc)
		}
	}
	for _, s := range t.slow {
		if s.in != nil {
			v.Flit(s.in, s.flit)
		} else {
			v.Credit(s.out, s.vc)
		}
	}
	for _, box := range t.outbox {
		for _, m := range box {
			if m.in != nil {
				v.Flit(m.in, m.flit)
			} else {
				v.Credit(m.out, m.vc)
			}
		}
	}
}

// runTiled is Run for the tiled engine: advance in lookahead windows
// separated by barriers, fast-forwarding fully quiescent stretches exactly
// like the sequential core. Unaudited windows run on one persistent worker
// goroutine per tile (spawned per Run, joined at its end); audited windows
// run inline, sequentially, because the audit checker is single-threaded.
func (n *Network) runTiled(cycles int64) {
	if n.Trace != nil {
		// Tile steps do not log packet events (the buffer is unsynchronized
		// and event order would depend on tile interleaving); refuse rather
		// than silently drop them.
		panic("network: event tracing requires an untiled network")
	}
	target := n.cycle + cycles
	var work []chan int64
	var done chan struct{}
	if n.aud == nil {
		done = make(chan struct{}, len(n.tiles))
		for _, t := range n.tiles {
			ch := make(chan int64)
			work = append(work, ch)
			go func(t *tileState, ch chan int64) {
				for e := range ch {
					t.runTo(e)
					done <- struct{}{}
				}
			}(t, ch)
		}
		defer func() {
			for _, ch := range work {
				close(ch)
			}
		}()
	}
	for n.cycle < target {
		if !n.noskip && n.tilesQuiescent() {
			if c := n.nextInterestingCycleTiled(target); c > n.cycle {
				n.fastForwardTiled(c)
				continue
			}
		}
		e := n.tileWindowEnd(target)
		if work == nil {
			for _, t := range n.tiles {
				t.runTo(e)
			}
		} else {
			for _, ch := range work {
				ch <- e
			}
			for range work {
				<-done
			}
		}
		n.tileBarrier(e)
	}
}

// tilesQuiescent reports whether no tile holds work: mirrors the
// sequential quiescence test per tile (outboxes and delivery buffers are
// empty between barriers by construction).
func (n *Network) tilesQuiescent() bool {
	for _, t := range n.tiles {
		if t.activeCount != 0 || t.injCount != 0 || t.ringCount != 0 {
			return false
		}
	}
	return true
}

// nextInterestingCycleTiled is nextInterestingCycle with the earliest
// pending event taken across the per-tile schedulers.
func (n *Network) nextInterestingCycleTiled(target int64) int64 {
	next := target
	for _, t := range n.tiles {
		if t.sched.Pending() > 0 {
			if c := n.dueCycle(t.sched.PeekTime()); c < next {
				next = c
			}
		}
	}
	if n.Cfg.Policy != PolicyNone && !n.dvsHold {
		if c := boundaryFrom(n.cycle, int64(n.Cfg.DVS.H)); c < next {
			next = c
		}
	}
	if n.Probe != nil && n.ProbeEvery > 0 {
		if c := boundaryFrom(n.cycle, n.ProbeEvery); c < next {
			next = c
		}
	}
	if n.aud != nil {
		if c := boundaryFrom(n.cycle, n.aud.ScanEvery()); c < next {
			next = c
		}
	}
	if next < n.cycle {
		next = n.cycle
	}
	return next
}

// fastForwardTiled jumps every tile (and the global clock) to cycle c; no
// tile scheduler may hold an event inside the jumped span.
func (n *Network) fastForwardTiled(c int64) {
	skipped := c - n.cycle
	n.skips.CyclesFastForwarded += skipped
	n.skips.FastForwards++
	n.skips.RouterTicksElided += skipped * int64(len(n.Routers))
	n.cycle = c
	edge := sim.Time(c-1) * n.Cfg.RouterPeriod
	for _, t := range n.tiles {
		t.cycle = c
		if ran := t.sched.RunUntil(edge); ran != 0 {
			panic(fmt.Sprintf("network: tiled fast-forward to cycle %d ran %d events — jump bound broken", c, ran))
		}
	}
	if ran := n.Sched.RunUntil(edge); ran != 0 {
		panic("network: events on the global scheduler of a tiled run")
	}
}

// tileWindowEnd reports the next barrier cycle: at most lookahead ahead,
// clamped so every policy-window close, probe tick and audit scan falls on
// a barrier (mirroring the boundary set nextInterestingCycle respects).
func (n *Network) tileWindowEnd(target int64) int64 {
	e := n.cycle + n.lookahead
	if e > target {
		e = target
	}
	clamp := func(every int64) {
		if b := boundaryFrom(n.cycle, every) + 1; b < e {
			e = b
		}
	}
	if n.Cfg.Policy != PolicyNone && !n.dvsHold {
		clamp(int64(n.Cfg.DVS.H))
	}
	if n.Probe != nil && n.ProbeEvery > 0 {
		clamp(n.ProbeEvery)
	}
	if n.aud != nil {
		clamp(n.aud.ScanEvery())
	}
	return e
}

// tileBarrier closes the window ending at cycle e: drain cross-tile
// outboxes in canonical order, replay buffered deliveries into the global
// accumulators in (cycle, tile) order, merge counters, then run the
// cycle-aligned global machinery (policy windows, probes, audit scans) at
// exactly the instants the sequential Step would.
func (n *Network) tileBarrier(e int64) {
	w0 := n.cycle
	n.cycle = e
	edge := sim.Time(e-1) * n.Cfg.RouterPeriod
	if ran := n.Sched.RunUntil(edge); ran != 0 {
		panic("network: events on the global scheduler of a tiled run")
	}

	// Cross-tile messages, in (source tile, generation order), bucketed
	// into the destination tile's ring by due cycle. The lookahead bound
	// guarantees due >= e; the ring span bounds it above (cross-tile
	// delays are at most one bottom-level link period).
	for _, src := range n.tiles {
		for dt, box := range src.outbox {
			if len(box) == 0 {
				continue
			}
			dest := n.tiles[dt]
			for i, m := range box {
				due := n.dueCycle(m.at)
				if due < e || due-e >= ringSize {
					panic(fmt.Sprintf("network: cross-tile message due cycle %d outside window end %d", due, e))
				}
				b := &dest.ring[due%ringSize]
				if m.node >= 0 {
					b.arrivals = append(b.arrivals, arrivalMsg{in: m.in, flit: m.flit, node: m.node})
				} else {
					b.credits = append(b.credits, creditMsg{out: m.out, vc: m.vc})
				}
				dest.ringCount++
				box[i] = tileMsg{}
			}
			src.outbox[dt] = box[:0]
		}
	}

	// Delivery replay: (cycle, tile) order equals the sequential engine's
	// (cycle, ascending node) eject order, so the order-sensitive latency
	// stream accumulates bit-identically.
	for c := w0; c < e; c++ {
		for _, t := range n.tiles {
			for t.delIdx < len(t.deliveries) && t.deliveries[t.delIdx].cycle == c {
				p := t.deliveries[t.delIdx].p
				t.delIdx++
				n.InFlight--
				if p.Created >= n.measStart {
					n.Lat.Add(p.Latency())
					n.delivered++
				}
				if n.OnDeliver != nil {
					n.OnDeliver(p)
				} else {
					t.pool.Recycle(p)
				}
			}
		}
	}
	nodes := len(n.Routers)
	for _, t := range n.tiles {
		if t.delIdx != len(t.deliveries) {
			panic("network: tiled delivery recorded outside its window")
		}
		for i := range t.deliveries {
			t.deliveries[i] = tileDelivery{}
		}
		t.deliveries, t.delIdx = t.deliveries[:0], 0
		n.injected += t.injected
		n.InFlight += t.inFlightDelta
		t.injected, t.inFlightDelta = 0, 0
	}
	for i := 0; i < int(e-w0); i++ {
		total := 0
		for _, t := range n.tiles {
			total += t.ticked[i]
		}
		n.skips.CyclesExecuted++
		n.skips.RouterTicks += int64(total)
		n.skips.RouterTicksElided += int64(nodes - total)
		n.skips.ActiveHist[total]++
	}
	for _, t := range n.tiles {
		t.ticked = t.ticked[:0]
	}

	if !n.dvsHold && e%int64(n.Cfg.DVS.H) == 0 {
		n.runPolicies(edge)
	}
	if n.Probe != nil && n.ProbeEvery > 0 && e%n.ProbeEvery == 0 {
		n.Probe(edge)
	}
	if n.aud != nil && e%n.aud.ScanEvery() == 0 {
		n.aud.EndCycle(e, edge)
	}
}
