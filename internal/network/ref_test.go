package network

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/traffic"
)

// runForRefEquivalence mirrors runForEquivalence (skip_test.go) but toggles
// the allocator path: work-list (the default) versus the retained
// full-scan reference.
func runForRefEquivalence(t *testing.T, rate float64, ref, audit bool, cycles int64) (snapshot string, state string) {
	t.Helper()
	cfg := NewConfig()
	cfg.Policy = PolicyHistory
	cfg.RefAllocators = ref
	cfg.Audit.Enabled = audit
	n := mustNew(t, cfg)

	p := traffic.NewTwoLevelParams(rate)
	p.Seed = 7
	m, err := traffic.NewTwoLevel(p, n.Topo)
	if err != nil {
		t.Fatal(err)
	}
	horizon := sim.Time(2*cycles+1) * cfg.RouterPeriod
	n.Launch(m, horizon)
	n.Run(cycles)
	n.BeginMeasurement()
	n.Run(cycles)
	if audit {
		if st := n.Auditor().Stats(); st.Violations != 0 {
			t.Fatalf("ref=%v: %d audit violations", ref, st.Violations)
		}
	}

	snapshot = fmt.Sprintf("%+v", n.Snapshot())
	levels := ""
	var energy float64
	for _, l := range n.Links() {
		levels += fmt.Sprintf("%d,", l.Level())
		energy += l.EnergyJ(n.Now())
	}
	state = fmt.Sprintf("cycle=%d now=%d inflight=%d injected=%d energy=%.18g levels=%s",
		n.Cycle(), n.Now(), n.InFlight, n.injected, energy, levels)
	return snapshot, state
}

// TestRefAllocatorEquivalence proves the incremental work-list allocators
// are byte-identical to the retained full-scan reference across the load
// range the paper sweeps: near-idle, moderate and saturated. Every
// observable — the Results snapshot, the cycle counter, the simulation
// clock, per-link energy and final DVS levels — must match exactly.
func TestRefAllocatorEquivalence(t *testing.T) {
	cycles := int64(20_000)
	if testing.Short() {
		cycles = 4_000
	}
	for _, rate := range []float64{0.05, 0.3, 4.0} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%.2f", rate), func(t *testing.T) {
			wlSnap, wlState := runForRefEquivalence(t, rate, false, false, cycles)
			refSnap, refState := runForRefEquivalence(t, rate, true, false, cycles)
			if wlSnap != refSnap {
				t.Errorf("Results diverge:\n worklist: %s\n ref:      %s", wlSnap, refSnap)
			}
			if wlState != refState {
				t.Errorf("accounting diverges:\n worklist: %s\n ref:      %s", wlState, refState)
			}
		})
	}
}

// TestRefAllocatorEquivalenceAudited reruns the saturated point under the
// runtime invariant checker on both allocator paths: structural scans must
// pass and see identical state whether arbitration requests come from the
// work-lists or from full scans.
func TestRefAllocatorEquivalenceAudited(t *testing.T) {
	cycles := int64(6_000)
	if testing.Short() {
		cycles = 1_500
	}
	wlSnap, wlState := runForRefEquivalence(t, 4.0, false, true, cycles)
	refSnap, refState := runForRefEquivalence(t, 4.0, true, true, cycles)
	if wlSnap != refSnap || wlState != refState {
		t.Errorf("audited runs diverge:\n worklist: %s %s\n ref:      %s %s",
			wlSnap, wlState, refSnap, refState)
	}
}
