package network

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/traffic"
)

// runVerifiedEquivalence is runTiledForEquivalence with the PR 10 knobs:
// lookahead verification, forced worker goroutines (so the race detector
// sees the concurrent path even on a single-CPU host), and optional
// barrier-elision disable. It returns the same observables plus the
// network, so callers can inspect counters.
func runVerifiedEquivalence(t *testing.T, tr *traffic.Trace, tiles int, noElide bool, cycles int64) (snapshot, state string, n *Network) {
	t.Helper()
	cfg := NewConfig()
	cfg.Policy = PolicyHistory
	cfg.Tiles = tiles
	cfg.VerifyLookahead = true
	n = mustNew(t, cfg)
	n.forceTileWorkers = true
	n.noTileElide = noElide
	n.Launch(tr, tr.Horizon())
	n.Run(cycles)
	n.BeginMeasurement()
	n.Run(cycles)
	snapshot = fmt.Sprintf("%+v", n.Snapshot())
	levels := ""
	var energy float64
	for _, l := range n.Links() {
		levels += fmt.Sprintf("%d,", l.Level())
		energy += l.EnergyJ(n.Now())
	}
	state = fmt.Sprintf("cycle=%d now=%d inflight=%d injected=%d energy=%.18g levels=%s",
		n.Cycle(), n.Now(), n.InFlight, n.injected, energy, levels)
	return snapshot, state, n
}

// TestLookaheadBoundSafety runs the load range the paper sweeps at every
// tile count with Config.VerifyLookahead on: every cross-tile message is
// checked at merge time against the bound its source tile promised when
// the window was planned. Zero violations and byte-identical results
// against the sequential reference prove the extracted lookahead never
// promises a window it cannot keep.
func TestLookaheadBoundSafety(t *testing.T) {
	cycles := int64(10_000)
	if testing.Short() {
		cycles = 2_500
	}
	cfg := NewConfig()
	horizon := sim.Time(2*cycles+1) * cfg.RouterPeriod
	for _, rate := range []float64{0.05, 0.3, 4.0} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%.2f", rate), func(t *testing.T) {
			tr := captureWorkload(t, rate, horizon)
			refSnap, refState := runTiledForEquivalence(t, tr, 1, false, cycles)
			for _, tiles := range []int{2, 4} {
				snap, state, n := runVerifiedEquivalence(t, tr, tiles, false, cycles)
				if v := n.LookaheadViolations(); v != 0 {
					t.Errorf("tiles=%d: %d lookahead bound violations", tiles, v)
				}
				if snap != refSnap {
					t.Errorf("tiles=%d Results diverge:\n tiled: %s\n ref:   %s", tiles, snap, refSnap)
				}
				if state != refState {
					t.Errorf("tiles=%d accounting diverges:\n tiled: %s\n ref:   %s", tiles, state, refState)
				}
			}
		})
	}
}

// TestBarrierElisionEquivalence proves barrier cadence is invisible in the
// output: a run with merge elision produces byte-identical results to one
// merging at every window end (noTileElide), and the elision-enabled run
// at low load must actually elide — with strictly fewer merges than
// simulated cycles, the assertion the CI warm-cache job repeats.
func TestBarrierElisionEquivalence(t *testing.T) {
	cycles := int64(10_000)
	if testing.Short() {
		cycles = 2_500
	}
	cfg := NewConfig()
	horizon := sim.Time(2*cycles+1) * cfg.RouterPeriod
	for _, rate := range []float64{0.05, 4.0} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%.2f", rate), func(t *testing.T) {
			tr := captureWorkload(t, rate, horizon)
			for _, tiles := range []int{2, 4} {
				elSnap, elState, eln := runVerifiedEquivalence(t, tr, tiles, false, cycles)
				noSnap, noState, non := runVerifiedEquivalence(t, tr, tiles, true, cycles)
				if elSnap != noSnap {
					t.Errorf("tiles=%d elision changes Results:\n elide: %s\n merge: %s", tiles, elSnap, noSnap)
				}
				if elState != noState {
					t.Errorf("tiles=%d elision changes accounting:\n elide: %s\n merge: %s", tiles, elState, noState)
				}
				es, ns := eln.SkipStats(), non.SkipStats()
				if ns.TileBarriersElided != 0 {
					t.Errorf("tiles=%d: noTileElide run elided %d merges", tiles, ns.TileBarriersElided)
				}
				if es.TileWindows == 0 {
					t.Errorf("tiles=%d: no windows recorded", tiles)
				}
				if rate == 0.05 {
					if es.TileBarriersElided == 0 {
						t.Errorf("tiles=%d: low-load run elided no merges (windows=%d barriers=%d)",
							tiles, es.TileWindows, es.TileBarriers)
					}
					if total := es.CyclesExecuted + es.CyclesFastForwarded; es.TileBarriers >= total {
						t.Errorf("tiles=%d: %d barriers for %d simulated cycles at low load",
							tiles, es.TileBarriers, total)
					}
				}
			}
		})
	}
}

// TestLookaheadNeverBelowConstant proves the extracted per-window bound
// dominates the constant lookahead the engine used before extraction: at
// every checkpointed instant of a live mid-load run, each tile's bound is
// at least the old W = ceil(topLinkPeriod/routerPeriod) ahead of its
// cycle. The clamp sits structurally in bound (the floor), so this pins
// the invariant the §14 proof sketch leans on.
func TestLookaheadNeverBelowConstant(t *testing.T) {
	cfg := NewConfig()
	cfg.Policy = PolicyHistory
	cfg.Tiles = 4
	cycles := int64(4_000)
	horizon := sim.Time(cycles+1) * cfg.RouterPeriod
	tr := captureWorkload(t, 0.3, horizon)
	n := mustNew(t, cfg)
	n.Launch(tr, tr.Horizon())
	for done := int64(0); done < cycles; done += 100 {
		n.Run(100)
		for i, tl := range n.tiles {
			if b := tl.bound(tl.cycle); b < tl.cycle+n.lookahead {
				t.Fatalf("cycle %d tile %d: bound %d below constant floor %d",
					n.Cycle(), i, b, tl.cycle+n.lookahead)
			}
		}
	}
}
