package network

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/traffic"
)

// runForEquivalence executes one warmup+measurement run of the paper's
// platform and returns everything an equivalence check should compare:
// the formatted Results snapshot, the cycle counter, the simulation clock,
// per-link energy, and the final DVS level of every link.
func runForEquivalence(t *testing.T, rate float64, noskip bool, cycles int64) (snapshot string, state string) {
	t.Helper()
	cfg := NewConfig()
	cfg.Policy = PolicyHistory
	cfg.NoSkip = noskip
	n := mustNew(t, cfg)

	p := traffic.NewTwoLevelParams(rate)
	p.Seed = 7
	m, err := traffic.NewTwoLevel(p, n.Topo)
	if err != nil {
		t.Fatal(err)
	}
	horizon := sim.Time(2*cycles+1) * cfg.RouterPeriod
	n.Launch(m, horizon)
	n.Run(cycles)
	n.BeginMeasurement()
	n.Run(cycles)

	snapshot = fmt.Sprintf("%+v", n.Snapshot())
	levels := ""
	var energy float64
	for _, l := range n.Links() {
		levels += fmt.Sprintf("%d,", l.Level())
		energy += l.EnergyJ(n.Now())
	}
	state = fmt.Sprintf("cycle=%d now=%d inflight=%d injected=%d energy=%.18g levels=%s",
		n.Cycle(), n.Now(), n.InFlight, n.injected, energy, levels)
	return snapshot, state
}

// TestSkipEquivalence proves the activity-driven core (idle-router skipping
// plus quiescent fast-forward) is byte-identical to the always-tick
// baseline across the load range the paper sweeps: near-idle, moderate and
// saturated. Every observable — the Results snapshot, the cycle counter,
// the simulation clock, per-link energy and final DVS levels — must match
// exactly, not approximately.
func TestSkipEquivalence(t *testing.T) {
	cycles := int64(20_000)
	if testing.Short() {
		cycles = 4_000
	}
	for _, rate := range []float64{0.05, 0.3, 4.0} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%.2f", rate), func(t *testing.T) {
			skipSnap, skipState := runForEquivalence(t, rate, false, cycles)
			baseSnap, baseState := runForEquivalence(t, rate, true, cycles)
			if skipSnap != baseSnap {
				t.Errorf("Results diverge:\n skip:   %s\n noskip: %s", skipSnap, baseSnap)
			}
			if skipState != baseState {
				t.Errorf("accounting diverges:\n skip:   %s\n noskip: %s", skipState, baseState)
			}
		})
	}
}

// TestSkipEquivalenceAudited reruns the low-load point under the runtime
// invariant checker: the audit's structural scans must see identical cycle
// numbers whether quiescent stretches are fast-forwarded or stepped.
func TestSkipEquivalenceAudited(t *testing.T) {
	cycles := int64(8_000)
	if testing.Short() {
		cycles = 2_000
	}
	run := func(noskip bool) string {
		cfg := NewConfig()
		cfg.Policy = PolicyHistory
		cfg.NoSkip = noskip
		cfg.Audit.Enabled = true
		n := mustNew(t, cfg)
		p := traffic.NewTwoLevelParams(0.05)
		p.Seed = 7
		m, err := traffic.NewTwoLevel(p, n.Topo)
		if err != nil {
			t.Fatal(err)
		}
		n.Launch(m, sim.Time(cycles+1)*cfg.RouterPeriod)
		n.BeginMeasurement()
		n.Run(cycles)
		st := n.Auditor().Stats()
		if st.Violations != 0 {
			t.Fatalf("noskip=%v: %d audit violations", noskip, st.Violations)
		}
		return fmt.Sprintf("scans=%d snapshot=%+v", st.Scans, n.Snapshot())
	}
	if skip, base := run(false), run(true); skip != base {
		t.Errorf("audited runs diverge:\n skip:   %s\n noskip: %s", skip, base)
	}
}

// TestFastForwardIdleNetwork checks that a network with no traffic at all
// jumps over quiescent stretches instead of stepping them, and that the
// jump lands exactly on the requested cycle count.
func TestFastForwardIdleNetwork(t *testing.T) {
	cfg := NewConfig()
	cfg.Policy = PolicyHistory
	n := mustNew(t, cfg)
	n.Run(100_000)
	if got := n.Cycle(); got != 100_000 {
		t.Fatalf("Cycle() = %d after Run(100000)", got)
	}
	s := n.SkipStats()
	if s.FastForwards == 0 || s.CyclesFastForwarded == 0 {
		t.Errorf("idle network never fast-forwarded: %+v", s)
	}
	if s.CyclesExecuted+s.CyclesFastForwarded != 100_000 {
		t.Errorf("executed %d + fast-forwarded %d != 100000",
			s.CyclesExecuted, s.CyclesFastForwarded)
	}
	// Policy windows close every H cycles and each closing cycle must
	// execute; an idle PolicyHistory network can therefore skip at most
	// H-1 cycles per jump.
	if s.CyclesExecuted < 100_000/int64(cfg.DVS.H) {
		t.Errorf("only %d cycles executed; policy windows were jumped over", s.CyclesExecuted)
	}
}

// TestNoSkipDisablesFastForward checks the escape hatch: with NoSkip the
// network steps every cycle and ticks every router.
func TestNoSkipDisablesFastForward(t *testing.T) {
	cfg := NewConfig()
	cfg.NoSkip = true
	n := mustNew(t, cfg)
	n.Run(5_000)
	s := n.SkipStats()
	if s.FastForwards != 0 || s.CyclesFastForwarded != 0 {
		t.Errorf("NoSkip fast-forwarded: %+v", s)
	}
	if s.CyclesExecuted != 5_000 {
		t.Errorf("executed %d cycles, want 5000", s.CyclesExecuted)
	}
	if s.RouterTicksElided != 0 {
		t.Errorf("NoSkip elided %d router ticks", s.RouterTicksElided)
	}
	if want := 5_000 * int64(len(n.Routers)); s.RouterTicks != want {
		t.Errorf("RouterTicks = %d, want %d", s.RouterTicks, want)
	}
}

// TestSkipStatsAccounting checks the skip counters' internal consistency on
// a loaded run: executed + fast-forwarded cycles equals the cycle counter,
// and ticks + elided equals nodes * baseline cycles.
func TestSkipStatsAccounting(t *testing.T) {
	cfg := NewConfig()
	cfg.Policy = PolicyHistory
	n := mustNew(t, cfg)
	p := traffic.NewTwoLevelParams(0.1)
	p.Seed = 3
	m, err := traffic.NewTwoLevel(p, n.Topo)
	if err != nil {
		t.Fatal(err)
	}
	n.Launch(m, sim.Time(10_000)*cfg.RouterPeriod)
	n.Run(10_000)
	s := n.SkipStats()
	if s.CyclesExecuted+s.CyclesFastForwarded != n.Cycle() {
		t.Errorf("executed %d + fast-forwarded %d != cycle %d",
			s.CyclesExecuted, s.CyclesFastForwarded, n.Cycle())
	}
	if total := s.RouterTicks + s.RouterTicksElided; total != n.Cycle()*int64(len(n.Routers)) {
		t.Errorf("ticks %d + elided %d != cycles %d * nodes %d",
			s.RouterTicks, s.RouterTicksElided, n.Cycle(), len(n.Routers))
	}
	var histSum int64
	for _, c := range s.ActiveHist {
		histSum += c
	}
	if histSum != s.CyclesExecuted {
		t.Errorf("ActiveHist sums to %d, want %d executed cycles", histSum, s.CyclesExecuted)
	}
}
