package network

import (
	"fmt"
	"sort"

	"repro/internal/audit"
	"repro/internal/flow"
	"repro/internal/link"
	"repro/internal/power"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// Network-level checkpointing: CaptureCheckpoint freezes the complete
// simulation state between steps; RestoreCheckpoint rebuilds it into a
// freshly constructed Network so the forked run is byte-identical to an
// uninterrupted one. The serialization wrapper (versioning, codec, config
// compatibility) lives in internal/checkpoint; this file owns the walk
// over live state.
//
// Capture refuses configurations it cannot make exact: attached observers
// (Probe, OnDeliver, event trace), live traffic models (only recorded
// traces carry resumable progress), and networks whose DVS policies have
// already consumed history windows (controller-internal state is not
// captured; experiment warmups run under SetDVSHold so it never exists).
// As a final gate, it cross-checks every pending scheduler event against
// the subsystems that claim one — a snapshot that cannot account for each
// queued event byte-for-byte is refused rather than silently wrong.

// PacketState is one in-flight packet. FlitVC holds the VC field of each
// live flit (zero for flits that no longer exist anywhere); Queued marks a
// packet still whole in its source queue, whose flit train has not been
// materialized yet.
type PacketState struct {
	ID       int64
	Src      int32
	Dst      int32
	Created  sim.Time
	Injected sim.Time
	Task     int64
	LastDim  int32
	Wrapped  bool
	Queued   bool
	FlitVC   [flow.FlitsPerPacket]int32
}

// InjectorState is one node's source queue: whole queued packets
// (front-to-back, as packet-table indices) and the partially injected
// packet's progress.
type InjectorState struct {
	Queue      []int32
	CurrentPkt int32 // packet-table index, -1 when no packet is mid-injection
	CurrentOff int32 // flits already injected from the current packet
	VC         int32
}

// RingArrival is one ring-buffered flit delivery. Slot is the ring bucket
// index; the due cycle is recoverable from it because every live due cycle
// lies within one ring span of the captured cycle.
type RingArrival struct {
	Slot int32
	Node int32
	Port int32
	Flit int32
}

// RingCredit is one ring-buffered credit return.
type RingCredit struct {
	Slot int32
	Node int32
	Port int32
	VC   int32
}

// SlowState is one scheduler-fallback message with its pending event's
// dispatch key. Arrival is true for flit deliveries, false for credits.
type SlowState struct {
	At      sim.Time
	Seq     int64
	Arrival bool
	Node    int32
	Port    int32
	VC      int32
	Flit    int32
}

// TrafficState is the attached trace replay's progress. Identity fields
// (Name, Horizon, Len) let the restorer verify the caller re-derived the
// same trace; the trace's arrivals themselves are never serialized.
type TrafficState struct {
	HasTrace bool
	Name     string
	Horizon  sim.Time
	Len      int64
	Index    int64
	PendSeq  int64
}

// SkipStatsState mirrors SkipStats for serialization.
type SkipStatsState struct {
	CyclesExecuted      int64
	CyclesFastForwarded int64
	FastForwards        int64
	RouterTicks         int64
	RouterTicksElided   int64
	ActiveHist          []int64
}

// CheckpointState is the complete logical state of a Network between
// steps. Routers are in node order, links in Links() order, injectors in
// node order; every derived structure (activity masks, ring counts,
// allocator work-lists) is rebuilt on restore.
type CheckpointState struct {
	Cycle     int64
	Now       sim.Time
	Seq       int64
	NextPkt   int64
	Injected  int64
	Delivered int64
	InFlight  int64
	MeasStart sim.Time
	// DVSHold records whether the capture was taken under SetDVSHold.
	// Restoring it lets a fork release the hold itself — draining the
	// policy history windows at the same instant the uninterrupted run
	// drains them.
	DVSHold bool

	Packets      []PacketState
	Routers      []router.CheckpointState
	Links        []link.CheckpointState
	Injectors    []InjectorState
	RingArrivals []RingArrival
	RingCredits  []RingCredit
	Slow         []SlowState

	Lat   stats.LatencyState
	Meter power.MeterState
	Skips SkipStatsState

	Audit   *audit.CheckpointState
	Traffic TrafficState
}

// pktTable assigns dense indices to in-flight packets in capture walk
// order, which is deterministic, so identical simulations capture
// identical tables.
type pktTable struct {
	idx   map[*flow.Packet]int32
	state []PacketState
}

func (t *pktTable) add(p *flow.Packet, queued bool) int32 {
	i := int32(len(t.state))
	t.idx[p] = i
	t.state = append(t.state, PacketState{
		ID:       p.ID,
		Src:      int32(p.Src),
		Dst:      int32(p.Dst),
		Created:  p.Created,
		Injected: p.Injected,
		Task:     p.Task,
		LastDim:  int32(p.LastDim),
		Wrapped:  p.Wrapped,
		Queued:   queued,
	})
	return i
}

// encode registers a live flit: its packet joins the table on first sight
// and its current VC is recorded in the packet's per-flit VC array.
func (t *pktTable) encode(f *flow.Flit) int32 {
	i, ok := t.idx[f.Packet]
	if !ok {
		i = t.add(f.Packet, false)
	}
	t.state[i].FlitVC[f.Seq] = int32(f.VC)
	return i*flow.FlitsPerPacket + int32(f.Seq)
}

// CaptureCheckpoint freezes the network's complete state. The network must
// be between steps (Run/Step not executing).
func (n *Network) CaptureCheckpoint() (*CheckpointState, error) {
	switch {
	case n.tiles != nil:
		// Tiled state (per-tile schedulers, rings, pools, ID spaces) has no
		// capture encoding; the experiment harness runs tiled points on the
		// straight warmup path instead, which is byte-identical to the
		// forked one (PR 7 conformance suite).
		return nil, fmt.Errorf("network: cannot checkpoint a tiled network (Tiles=%d)", n.Cfg.Tiles)
	case n.Probe != nil:
		return nil, fmt.Errorf("network: cannot checkpoint with a Probe attached")
	case n.OnDeliver != nil:
		return nil, fmt.Errorf("network: cannot checkpoint with an OnDeliver observer attached")
	case n.Trace != nil:
		return nil, fmt.Errorf("network: cannot checkpoint with an event trace attached")
	case n.policiesTouched:
		return nil, fmt.Errorf("network: cannot checkpoint after a DVS policy window closed (controller state is not captured; warm up under SetDVSHold)")
	case n.model != nil && n.replay == nil:
		return nil, fmt.Errorf("network: cannot checkpoint a live %q traffic model (only recorded traces resume)", n.model.Name())
	}
	st, err := n.captureState()
	if err != nil {
		return nil, err
	}
	if err := n.verifyPendingEvents(st); err != nil {
		return nil, err
	}
	return st, nil
}

// CaptureForDiff captures logical state for equality comparison only,
// skipping the forkability gates (observers, consumed policy history, live
// models) and the pending-event completeness check. The result is not
// restorable in general — policy-internal and live-model state is absent —
// but two equal simulations produce equal captures, which is exactly what
// the conformance walker needs.
func (n *Network) CaptureForDiff() (*CheckpointState, error) {
	if n.tiles != nil {
		// captureState walks the global ring and slow list; a tiled
		// network's in-flight messages live in per-tile structures it does
		// not encode, so the capture would be silently incomplete.
		return nil, fmt.Errorf("network: cannot capture a tiled network for diff (Tiles=%d)", n.Cfg.Tiles)
	}
	return n.captureState()
}

func (n *Network) captureState() (*CheckpointState, error) {
	st := &CheckpointState{
		Cycle:     n.cycle,
		Now:       n.Sched.Now(),
		Seq:       n.Sched.SeqCounter(),
		NextPkt:   n.nextPkt,
		Injected:  n.injected,
		Delivered: n.delivered,
		InFlight:  n.InFlight,
		MeasStart: n.measStart,
		DVSHold:   n.dvsHold,
		Lat:       n.Lat.Checkpoint(),
		Meter:     n.Meter.Checkpoint(),
		Skips: SkipStatsState{
			CyclesExecuted:      n.skips.CyclesExecuted,
			CyclesFastForwarded: n.skips.CyclesFastForwarded,
			FastForwards:        n.skips.FastForwards,
			RouterTicks:         n.skips.RouterTicks,
			RouterTicksElided:   n.skips.RouterTicksElided,
			ActiveHist:          append([]int64(nil), n.skips.ActiveHist...),
		},
	}

	tbl := &pktTable{idx: make(map[*flow.Packet]int32)}

	// Routers, in node order.
	st.Routers = make([]router.CheckpointState, len(n.Routers))
	for id, r := range n.Routers {
		rs, err := r.CaptureCheckpoint(tbl.encode)
		if err != nil {
			return nil, err
		}
		st.Routers[id] = *rs
	}

	// Ring buckets, in due-cycle order (each live due cycle is within one
	// ring span of the captured cycle), preserving intra-bucket order.
	outCoord := n.outputCoords()
	for off := int64(0); off < ringSize; off++ {
		slot := (n.cycle + off) % ringSize
		b := &n.ring[slot]
		for _, a := range b.arrivals {
			port, err := inputPortIndex(n.Routers[a.node], a.in)
			if err != nil {
				return nil, err
			}
			st.RingArrivals = append(st.RingArrivals, RingArrival{
				Slot: int32(slot), Node: int32(a.node), Port: port, Flit: tbl.encode(a.flit),
			})
		}
		for _, cm := range b.credits {
			co, ok := outCoord[cm.out]
			if !ok {
				return nil, fmt.Errorf("network: ring credit on an unknown output port")
			}
			st.RingCredits = append(st.RingCredits, RingCredit{
				Slot: int32(slot), Node: co[0], Port: co[1], VC: int32(cm.vc),
			})
		}
	}

	// Scheduler-fallback messages, in list order.
	for _, s := range n.slow {
		if s.in != nil {
			port, err := inputPortIndex(n.Routers[s.node], s.in)
			if err != nil {
				return nil, err
			}
			st.Slow = append(st.Slow, SlowState{
				At: s.at, Seq: s.seq, Arrival: true,
				Node: int32(s.node), Port: port, Flit: tbl.encode(s.flit),
			})
		} else {
			co, ok := outCoord[s.out]
			if !ok {
				return nil, fmt.Errorf("network: slow credit on an unknown output port")
			}
			st.Slow = append(st.Slow, SlowState{
				At: s.at, Seq: s.seq, Arrival: false,
				Node: co[0], Port: co[1], VC: int32(s.vc),
			})
		}
	}

	// Injectors, in node order: in-progress flit trains first (their flits
	// are live), then whole queued packets.
	st.Injectors = make([]InjectorState, len(n.injectors))
	for node, inj := range n.injectors {
		is := InjectorState{CurrentPkt: -1, VC: int32(inj.vc)}
		if len(inj.current) > 0 {
			for _, f := range inj.current {
				tbl.encode(f)
			}
			is.CurrentPkt = tbl.idx[inj.current[0].Packet]
			is.CurrentOff = int32(flow.FlitsPerPacket - len(inj.current))
		}
		for i := 0; i < inj.qLen; i++ {
			p := inj.queue[(inj.qHead+i)&(len(inj.queue)-1)]
			if _, seen := tbl.idx[p]; seen {
				return nil, fmt.Errorf("network: queued packet %d already has live flits", p.ID)
			}
			is.Queue = append(is.Queue, tbl.add(p, true))
		}
		st.Injectors[node] = is
	}
	st.Packets = tbl.state

	// Links, in Links() order.
	for _, l := range n.Links() {
		st.Links = append(st.Links, l.Checkpoint())
	}

	if n.aud != nil {
		st.Audit = n.aud.Checkpoint()
	}

	if n.replay != nil {
		tr := n.replay.Trace()
		idx, _, pendSeq := n.replay.Progress()
		st.Traffic = TrafficState{
			HasTrace: true,
			Name:     tr.Name(),
			Horizon:  n.horizon,
			Len:      int64(tr.Len()),
			Index:    int64(idx),
			PendSeq:  pendSeq,
		}
	}
	return st, nil
}

// verifyPendingEvents cross-checks the scheduler queue against the
// subsystems that claim pending events: every queued event must be a slow
// message, a link transition completion, or the trace replay's next step —
// with matching (instant, sequence) keys — and vice versa.
func (n *Network) verifyPendingEvents(st *CheckpointState) error {
	var want []sim.PendingEvent
	for _, s := range st.Slow {
		want = append(want, sim.PendingEvent{At: s.At, Seq: s.Seq})
	}
	for _, ls := range st.Links {
		if ls.PendSeq != 0 {
			want = append(want, sim.PendingEvent{At: ls.PendAt, Seq: ls.PendSeq})
		}
	}
	if n.replay != nil && !n.replay.Done() {
		_, at, seq := n.replay.Progress()
		want = append(want, sim.PendingEvent{At: at, Seq: seq})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].At != want[j].At {
			return want[i].At < want[j].At
		}
		return want[i].Seq < want[j].Seq
	})
	got := n.Sched.PendingEvents()
	if len(got) != len(want) {
		return fmt.Errorf("network: checkpoint accounts for %d pending events but the scheduler holds %d", len(want), len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("network: pending event %d is (%v, seq %d) in the scheduler but (%v, seq %d) in the checkpoint",
				i, got[i].At, got[i].Seq, want[i].At, want[i].Seq)
		}
	}
	return nil
}

// outputCoords maps every output port to its (node, port) coordinates.
func (n *Network) outputCoords() map[*router.OutputPort][2]int32 {
	m := make(map[*router.OutputPort][2]int32)
	for node, r := range n.Routers {
		for port, out := range r.Outputs {
			m[out] = [2]int32{int32(node), int32(port)}
		}
	}
	return m
}

// inputPortIndex finds the port index of an input port on its router.
func inputPortIndex(r *router.Router, in *router.InputPort) (int32, error) {
	for port, p := range r.Inputs {
		if p == in {
			return int32(port), nil
		}
	}
	return 0, fmt.Errorf("network: input port not found on router %d", r.ID)
}

// RestoreCheckpoint rebuilds a captured state into this freshly
// constructed network. tr must be the same trace the capture ran under
// (verified by name/length/horizon) when the capture had one, nil
// otherwise; the caller re-derives it — snapshots never carry arrival
// data. The network's configuration must be capture-compatible (see
// internal/checkpoint.CompatibleConfig): topology, router and link tables
// identical; policy and thresholds free to differ.
func (n *Network) RestoreCheckpoint(st *CheckpointState, tr *traffic.Trace) error {
	if n.cycle != 0 || n.Sched.Pending() != 0 || n.Sched.Now() != 0 || n.model != nil || n.nextPkt != 0 {
		return fmt.Errorf("network: restore target is not freshly constructed")
	}
	if n.tiles != nil {
		return fmt.Errorf("network: cannot restore into a tiled network (Tiles=%d)", n.Cfg.Tiles)
	}
	if len(st.Routers) != len(n.Routers) {
		return fmt.Errorf("network: restore with %d routers, want %d", len(st.Routers), len(n.Routers))
	}
	if len(st.Injectors) != len(n.injectors) {
		return fmt.Errorf("network: restore with %d injectors, want %d", len(st.Injectors), len(n.injectors))
	}
	links := n.Links()
	if len(st.Links) != len(links) {
		return fmt.Errorf("network: restore with %d links, want %d", len(st.Links), len(links))
	}
	if len(st.Skips.ActiveHist) != len(n.skips.ActiveHist) {
		return fmt.Errorf("network: restore with %d active-hist bins, want %d", len(st.Skips.ActiveHist), len(n.skips.ActiveHist))
	}
	if (st.Audit != nil) != (n.aud != nil) {
		return fmt.Errorf("network: restore audit state present=%t but checker present=%t", st.Audit != nil, n.aud != nil)
	}
	if st.Cycle < 0 || st.Now < 0 || st.Now > sim.Time(st.Cycle)*n.Cfg.RouterPeriod {
		return fmt.Errorf("network: restore cycle %d inconsistent with instant %v", st.Cycle, st.Now)
	}
	if st.Seq < 0 {
		return fmt.Errorf("network: restore with negative event sequence counter %d", st.Seq)
	}
	// Every pending event re-armed below must carry a dispatch key the
	// captured run could have issued; the scheduler enforces this with
	// panics, so reject malformed keys here, as errors.
	for _, s := range st.Slow {
		if s.Seq <= 0 || s.Seq > st.Seq || s.At < st.Now {
			return fmt.Errorf("network: restore slow message with dispatch key (%v, seq %d) outside the captured run", s.At, s.Seq)
		}
	}
	for i, ls := range st.Links {
		if ls.PendSeq != 0 && (ls.PendSeq < 0 || ls.PendSeq > st.Seq || ls.PendAt < st.Now) {
			return fmt.Errorf("network: restore link %d with dispatch key (%v, seq %d) outside the captured run", i, ls.PendAt, ls.PendSeq)
		}
	}
	if st.Traffic.HasTrace {
		if tr == nil {
			return fmt.Errorf("network: capture ran trace %q but no trace was supplied", st.Traffic.Name)
		}
		if tr.Name() != st.Traffic.Name || int64(tr.Len()) != st.Traffic.Len || tr.Horizon() != st.Traffic.Horizon {
			return fmt.Errorf("network: supplied trace %q (len %d, horizon %v) does not match captured %q (len %d, horizon %v)",
				tr.Name(), tr.Len(), tr.Horizon(), st.Traffic.Name, st.Traffic.Len, st.Traffic.Horizon)
		}
		if st.Traffic.Index < 0 || st.Traffic.Index > st.Traffic.Len {
			return fmt.Errorf("network: restore trace index %d outside [0,%d]", st.Traffic.Index, st.Traffic.Len)
		}
		if st.Traffic.Index < st.Traffic.Len &&
			(st.Traffic.PendSeq <= 0 || st.Traffic.PendSeq > st.Seq || tr.At(int(st.Traffic.Index)).At < st.Now) {
			return fmt.Errorf("network: restore trace replay with dispatch key (seq %d) outside the captured run", st.Traffic.PendSeq)
		}
	} else if tr != nil {
		return fmt.Errorf("network: capture had no traffic model but a trace was supplied")
	}

	// Clock and sequence counter first: every AtSeq below validates
	// against them.
	n.Sched.SetNow(st.Now)
	n.Sched.SetSeqCounter(st.Seq)

	// Materialize packets and flit trains through the pool.
	nodes := n.Topo.Nodes()
	pkts := make([]*flow.Packet, len(st.Packets))
	flits := make([][]*flow.Flit, len(st.Packets))
	for i, ps := range st.Packets {
		if ps.Src < 0 || int(ps.Src) >= nodes || ps.Dst < 0 || int(ps.Dst) >= nodes {
			return fmt.Errorf("network: restore packet %d with endpoints %d->%d outside the %d-node topology", ps.ID, ps.Src, ps.Dst, nodes)
		}
		p := n.pool.NewPacket(ps.ID, int(ps.Src), int(ps.Dst), ps.Created, ps.Task)
		p.Injected = ps.Injected
		p.LastDim = int(ps.LastDim)
		p.Wrapped = ps.Wrapped
		pkts[i] = p
		if !ps.Queued {
			fl := n.pool.Flits(p)
			for j := range fl {
				fl[j].VC = int(ps.FlitVC[j])
			}
			flits[i] = fl
		}
	}
	decode := func(ref int32) (*flow.Flit, error) {
		i, j := ref/flow.FlitsPerPacket, ref%flow.FlitsPerPacket
		if ref < 0 || int(i) >= len(flits) {
			return nil, fmt.Errorf("flit reference %d outside the packet table", ref)
		}
		if flits[i] == nil {
			return nil, fmt.Errorf("flit reference %d points into queued packet %d", ref, st.Packets[i].ID)
		}
		return flits[i][j], nil
	}

	for id, r := range n.Routers {
		if err := r.RestoreCheckpoint(&st.Routers[id], decode); err != nil {
			return err
		}
	}
	for i, l := range links {
		if err := l.Restore(st.Links[i]); err != nil {
			return fmt.Errorf("link %d: %w", i, err)
		}
	}

	// Ring messages, preserving bucket order.
	for _, a := range st.RingArrivals {
		if a.Slot < 0 || a.Slot >= ringSize || a.Node < 0 || int(a.Node) >= nodes {
			return fmt.Errorf("network: restore ring arrival with slot %d node %d", a.Slot, a.Node)
		}
		r := n.Routers[a.Node]
		if a.Port < 0 || int(a.Port) >= len(r.Inputs) {
			return fmt.Errorf("network: restore ring arrival with port %d", a.Port)
		}
		f, err := decode(a.Flit)
		if err != nil {
			return fmt.Errorf("network: restore ring arrival: %w", err)
		}
		b := &n.ring[a.Slot]
		b.arrivals = append(b.arrivals, arrivalMsg{in: r.Inputs[a.Port], flit: f, node: int(a.Node)})
		n.ringCount++
	}
	for _, c := range st.RingCredits {
		if c.Slot < 0 || c.Slot >= ringSize || c.Node < 0 || int(c.Node) >= nodes {
			return fmt.Errorf("network: restore ring credit with slot %d node %d", c.Slot, c.Node)
		}
		r := n.Routers[c.Node]
		if c.Port < 0 || int(c.Port) >= len(r.Outputs) || c.VC < 0 || int(c.VC) >= n.Cfg.Router.VCs {
			return fmt.Errorf("network: restore ring credit with port %d vc %d", c.Port, c.VC)
		}
		b := &n.ring[c.Slot]
		b.credits = append(b.credits, creditMsg{out: r.Outputs[c.Port], vc: int(c.VC)})
		n.ringCount++
	}

	// Scheduler-fallback messages, re-armed under their captured keys.
	for _, s := range st.Slow {
		if s.Node < 0 || int(s.Node) >= nodes {
			return fmt.Errorf("network: restore slow message at node %d", s.Node)
		}
		r := n.Routers[s.Node]
		if s.Arrival {
			if s.Port < 0 || int(s.Port) >= len(r.Inputs) {
				return fmt.Errorf("network: restore slow arrival with port %d", s.Port)
			}
			f, err := decode(s.Flit)
			if err != nil {
				return fmt.Errorf("network: restore slow arrival: %w", err)
			}
			e := &slowEntry{at: s.At, seq: s.Seq, node: int(s.Node), in: r.Inputs[s.Port], flit: f}
			n.slow = append(n.slow, e)
			n.Sched.AtSeq(e.at, e.seq, func() {
				n.slowDrop(e)
				n.markActive(e.node)
				e.in.Arrive(e.flit, n.Sched.Now())
			})
		} else {
			if s.Port < 0 || int(s.Port) >= len(r.Outputs) || s.VC < 0 || int(s.VC) >= n.Cfg.Router.VCs {
				return fmt.Errorf("network: restore slow credit with port %d vc %d", s.Port, s.VC)
			}
			e := &slowEntry{at: s.At, seq: s.Seq, node: -1, out: r.Outputs[s.Port], vc: int(s.VC)}
			n.slow = append(n.slow, e)
			n.Sched.AtSeq(e.at, e.seq, func() {
				n.slowDrop(e)
				e.out.ReturnCredit(e.vc, n.Sched.Now())
			})
		}
	}

	// Injectors.
	for node, is := range st.Injectors {
		inj := n.injectors[node]
		if is.VC < 0 || int(is.VC) >= n.Cfg.Router.VCs {
			return fmt.Errorf("network: restore injector %d with vc %d", node, is.VC)
		}
		inj.vc = int(is.VC)
		if is.CurrentPkt >= 0 {
			if int(is.CurrentPkt) >= len(flits) || flits[is.CurrentPkt] == nil {
				return fmt.Errorf("network: restore injector %d with unmaterialized current packet %d", node, is.CurrentPkt)
			}
			if is.CurrentOff < 0 || is.CurrentOff >= flow.FlitsPerPacket {
				return fmt.Errorf("network: restore injector %d with current offset %d", node, is.CurrentOff)
			}
			inj.current = flits[is.CurrentPkt][is.CurrentOff:]
		}
		for _, qi := range is.Queue {
			if qi < 0 || int(qi) >= len(pkts) || !st.Packets[qi].Queued {
				return fmt.Errorf("network: restore injector %d queue references packet index %d", node, qi)
			}
			inj.push(pkts[qi])
		}
	}

	// Scalars, statistics, meters.
	n.cycle = st.Cycle
	n.nextPkt = st.NextPkt
	n.injected = st.Injected
	n.delivered = st.Delivered
	n.InFlight = st.InFlight
	n.measStart = st.MeasStart
	n.dvsHold = st.DVSHold
	if err := n.Lat.Restore(st.Lat); err != nil {
		return err
	}
	if err := n.Meter.Restore(st.Meter); err != nil {
		return err
	}
	n.skips.CyclesExecuted = st.Skips.CyclesExecuted
	n.skips.CyclesFastForwarded = st.Skips.CyclesFastForwarded
	n.skips.FastForwards = st.Skips.FastForwards
	n.skips.RouterTicks = st.Skips.RouterTicks
	n.skips.RouterTicksElided = st.Skips.RouterTicksElided
	copy(n.skips.ActiveHist, st.Skips.ActiveHist)

	if st.Audit != nil {
		if err := n.aud.Restore(st.Audit); err != nil {
			return err
		}
	}

	// Traffic replay, resumed mid-walk under its captured dispatch key.
	if st.Traffic.HasTrace {
		rp, err := tr.Resume(n.Sched, n.Inject, int(st.Traffic.Index), st.Traffic.PendSeq)
		if err != nil {
			return err
		}
		n.model, n.horizon, n.replay = tr, st.Traffic.Horizon, rp
	}

	// Activity masks: at a step boundary the active set is exactly the
	// busy routers and the injector set exactly the nodes with source
	// work. With NoSkip every bit is already permanently set.
	if !n.noskip {
		for id, r := range n.Routers {
			if r.Busy() {
				n.markActive(id)
			}
		}
		for node, inj := range n.injectors {
			if len(inj.current) > 0 || inj.qLen > 0 {
				n.markInject(node)
			}
		}
	}
	return nil
}
