package network

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// smallConfig is a 4x4 mesh with paper-style routers, sized for fast tests.
func smallConfig(policy PolicyKind) Config {
	cfg := NewConfig()
	cfg.K = 4
	cfg.Policy = policy
	return cfg
}

func mustNew(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigValidation(t *testing.T) {
	if err := NewConfig().Validate(); err != nil {
		t.Errorf("paper config invalid: %v", err)
	}
	bad := NewConfig()
	bad.Router.Ports = 7 // 2D mesh needs 5
	if bad.Validate() == nil {
		t.Error("port/topology mismatch accepted")
	}
	bad2 := NewConfig()
	bad2.Routing = "bogus"
	if bad2.Validate() == nil {
		t.Error("unknown routing accepted")
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	n := mustNew(t, smallConfig(PolicyNone))
	n.BeginMeasurement()
	// (0,0) -> (3,0): 3 hops.
	n.Inject(0, 3, 0, -1)
	n.Run(200)
	r := n.Snapshot()
	if r.DeliveredPkts != 1 {
		t.Fatalf("delivered %d packets, want 1", r.DeliveredPkts)
	}
	if n.InFlight != 0 {
		t.Errorf("InFlight = %d after drain", n.InFlight)
	}
	// Zero-load latency: ~13 cycles per hop (router pipeline + link) for 4
	// traversals (3 inter-router + ejection pipeline) plus 4 cycles of tail
	// serialization and injection overhead.
	if r.MeanLatency < 40 || r.MeanLatency > 80 {
		t.Errorf("zero-load latency = %.1f cycles, want ~56", r.MeanLatency)
	}
}

func TestLatencyScalesWithDistance(t *testing.T) {
	lat := func(dst int) float64 {
		n := mustNew(t, smallConfig(PolicyNone))
		n.BeginMeasurement()
		n.Inject(0, dst, 0, -1)
		n.Run(300)
		r := n.Snapshot()
		if r.DeliveredPkts != 1 {
			t.Fatalf("packet to %d not delivered", dst)
		}
		return r.MeanLatency
	}
	near := lat(1)                                 // 1 hop
	far := lat(15)                                 // (3,3): 6 hops
	if far <= near+4*13-10 || far > near+5*13+10 { // 5 extra traversals
		t.Errorf("latency near=%.0f far=%.0f: distance scaling off", near, far)
	}
}

func TestAllPacketsDeliveredUniform(t *testing.T) {
	n := mustNew(t, smallConfig(PolicyNone))
	u := &traffic.Uniform{
		Topo: n.Topo, RatePerNode: 0.02,
		CyclePeriod: n.Cfg.RouterPeriod, Seed: 5,
	}
	n.Launch(u, 20*sim.Microsecond)
	n.BeginMeasurement()
	n.Run(20000)
	// Drain.
	n.Run(3000)
	if n.InFlight != 0 {
		t.Fatalf("%d packets stuck after drain (deadlock or loss)", n.InFlight)
	}
	r := n.Snapshot()
	if r.DeliveredPkts < 5000 {
		t.Errorf("delivered only %d packets", r.DeliveredPkts)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Results {
		n := mustNew(t, smallConfig(PolicyHistory))
		u := &traffic.Uniform{
			Topo: n.Topo, RatePerNode: 0.05,
			CyclePeriod: n.Cfg.RouterPeriod, Seed: 9,
		}
		n.Launch(u, 10*sim.Microsecond)
		n.BeginMeasurement()
		n.Run(12000)
		return n.Snapshot()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestDVSIdleNetworkDropsToBottom(t *testing.T) {
	if testing.Short() {
		t.Skip("1.2 ms simulated idle time: skipped in -short")
	}
	n := mustNew(t, smallConfig(PolicyHistory))
	// No traffic at all: every link should walk down to level 0. Each
	// downward step takes a freq lock + 10 us voltage ramp, and decisions
	// land every 200 cycles, so give it plenty of simulated time.
	n.Run(1_200_000) // 1.2 ms
	for i, l := range n.Links() {
		if l.Level() != 0 {
			t.Fatalf("idle link %d still at level %d", i, l.Level())
		}
	}
	// Power savings approach the table's 8.5X dynamic range.
	n.BeginMeasurement()
	n.Run(50_000)
	r := n.Snapshot()
	if r.SavingsX < 8 {
		t.Errorf("idle savings = %.2fX, want ~8.5X", r.SavingsX)
	}
}

func TestDVSHeavyLoadKeepsLinksFast(t *testing.T) {
	if testing.Short() {
		t.Skip("400k-cycle saturation run: skipped in -short")
	}
	n := mustNew(t, smallConfig(PolicyHistory))
	// Saturating uniform traffic: hot links must stay at high levels.
	u := &traffic.Uniform{
		Topo: n.Topo, RatePerNode: 0.12,
		CyclePeriod: n.Cfg.RouterPeriod, Seed: 11,
	}
	n.Launch(u, sim.Millisecond)
	n.Run(400_000)
	// Average level across links should be well above the floor.
	sum := 0
	for _, l := range n.Links() {
		sum += l.Level()
	}
	avg := float64(sum) / float64(len(n.Links()))
	if avg < 4 {
		t.Errorf("average level under heavy load = %.1f, want >= 4", avg)
	}
}

func TestDVSTradesLatencyForPower(t *testing.T) {
	if testing.Short() {
		t.Skip("two 250k-cycle measured runs: skipped in -short")
	}
	// The paper's core result in miniature: under the two-level bursty
	// workload at a moderate load, history-based DVS saves several-fold
	// power while throughput stays essentially intact and latency pays a
	// bounded penalty (our conservative link model — links dead during
	// frequency locks, 10 us voltage ramps — costs more latency than the
	// paper's +15% but the qualitative trade-off is the paper's).
	run := func(policy PolicyKind) Results {
		n := mustNew(t, smallConfig(policy))
		p := traffic.NewTwoLevelParams(0.3)
		p.AvgTasks = 25
		p.AvgTaskDuration = 200 * sim.Microsecond
		m, err := traffic.NewTwoLevel(p, n.Topo)
		if err != nil {
			t.Fatal(err)
		}
		n.Launch(m, sim.Millisecond)
		n.Run(100_000) // warm up; let DVS settle
		n.BeginMeasurement()
		n.Run(150_000)
		return n.Snapshot()
	}
	base := run(PolicyNone)
	dvs := run(PolicyHistory)
	if base.SavingsX < 0.99 || base.SavingsX > 1.01 {
		t.Errorf("no-DVS savings = %.3f, want 1.0", base.SavingsX)
	}
	if dvs.SavingsX < 2 {
		t.Errorf("history-DVS savings = %.2fX, want > 2X", dvs.SavingsX)
	}
	if dvs.MeanLatency > 5*base.MeanLatency {
		t.Errorf("DVS latency %.0f vs baseline %.0f: degradation too large",
			dvs.MeanLatency, base.MeanLatency)
	}
	if dvs.ThroughputPkts < 0.95*base.ThroughputPkts {
		t.Errorf("DVS throughput %.3f vs baseline %.3f", dvs.ThroughputPkts, base.ThroughputPkts)
	}
}

func TestTorusDelivery(t *testing.T) {
	cfg := smallConfig(PolicyNone)
	cfg.Torus = true
	n := mustNew(t, cfg)
	n.BeginMeasurement()
	// Wraparound route: (0,0) -> (3,3) is 2 hops on a 4x4 torus.
	n.Inject(0, 15, 0, -1)
	// And a longer route exercising the dateline.
	n.Inject(5, 15, 0, -1)
	n.Run(300)
	if got := n.Snapshot().DeliveredPkts; got != 2 {
		t.Fatalf("delivered %d, want 2", got)
	}
}

func TestTorusUnderLoadNoDeadlock(t *testing.T) {
	cfg := smallConfig(PolicyNone)
	cfg.Torus = true
	n := mustNew(t, cfg)
	u := &traffic.Uniform{
		Topo: n.Topo, RatePerNode: 0.05,
		CyclePeriod: n.Cfg.RouterPeriod, Seed: 17,
	}
	n.Launch(u, 15*sim.Microsecond)
	n.Run(15000)
	n.Run(5000) // drain
	if n.InFlight != 0 {
		t.Fatalf("%d packets stuck on torus (dateline broken?)", n.InFlight)
	}
}

func TestAdaptiveRoutingDelivers(t *testing.T) {
	cfg := smallConfig(PolicyNone)
	cfg.Routing = "adaptive"
	n := mustNew(t, cfg)
	u := &traffic.Uniform{
		Topo: n.Topo, RatePerNode: 0.06,
		CyclePeriod: n.Cfg.RouterPeriod, Seed: 19,
	}
	n.Launch(u, 15*sim.Microsecond)
	n.Run(15000)
	n.Run(5000)
	if n.InFlight != 0 {
		t.Fatalf("%d packets stuck under adaptive routing", n.InFlight)
	}
	if got := n.Snapshot().DeliveredPkts; got == 0 {
		t.Error("nothing delivered")
	}
}

func TestTwoLevelTrafficEndToEnd(t *testing.T) {
	n := mustNew(t, smallConfig(PolicyHistory))
	p := traffic.NewTwoLevelParams(0.3)
	p.AvgTasks = 20
	p.AvgTaskDuration = 30 * sim.Microsecond
	m, err := traffic.NewTwoLevel(p, n.Topo)
	if err != nil {
		t.Fatal(err)
	}
	n.Launch(m, 60*sim.Microsecond)
	n.BeginMeasurement()
	n.Run(60_000)
	r := n.Snapshot()
	if r.DeliveredPkts < 10_000 {
		t.Errorf("delivered %d packets, want >> 10k at 0.3 pkts/cycle", r.DeliveredPkts)
	}
	if r.SavingsX <= 1.0 {
		t.Errorf("savings = %.2f, want > 1 under bursty load", r.SavingsX)
	}
}

func TestProbeRuns(t *testing.T) {
	n := mustNew(t, smallConfig(PolicyNone))
	count := 0
	n.ProbeEvery = 50
	n.Probe = func(sim.Time) { count++ }
	n.Run(1000)
	if count != 20 {
		t.Errorf("probe ran %d times, want 20", count)
	}
}

func TestLinkAtAccessor(t *testing.T) {
	n := mustNew(t, smallConfig(PolicyNone))
	// Interior node: all four directions exist.
	center := n.Topo.NodeAt(1, 1)
	for d := 0; d < 2; d++ {
		for _, dir := range []topology.Direction{topology.Plus, topology.Minus} {
			if n.LinkAt(center, d, dir) == nil {
				t.Errorf("missing link at center (%d,%v)", d, dir)
			}
		}
	}
	// Corner: -x and -y links must not exist.
	if n.LinkAt(0, 0, topology.Minus) != nil {
		t.Error("corner has a -x link")
	}
	// Link count matches topology channels: 4x4 mesh = 2*2*3*4 = 48.
	if got := len(n.Links()); got != 48 {
		t.Errorf("links = %d, want 48", got)
	}
}

func TestRouterConfigMatchesPaper(t *testing.T) {
	cfg := NewConfig()
	want := router.Config{Ports: 5, VCs: 2, BufPerPort: 128, PipelineDepth: 13}
	if cfg.Router != want {
		t.Errorf("router config = %+v, want %+v", cfg.Router, want)
	}
}

// TestFlitConservationProperty: for random seeds and rates, every injected
// packet is eventually delivered exactly once after a drain period — no
// loss, no duplication, no deadlock.
func TestFlitConservationProperty(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for _, policy := range []PolicyKind{PolicyNone, PolicyHistory} {
			n := mustNew(t, smallConfig(policy))
			delivered := map[int64]int{}
			n.OnDeliver = func(p *flow.Packet) { delivered[p.ID]++ }
			u := &traffic.Uniform{
				Topo: n.Topo, RatePerNode: 0.03,
				CyclePeriod: n.Cfg.RouterPeriod, Seed: seed,
			}
			n.Launch(u, 10*sim.Microsecond)
			n.Run(10_000)
			n.Run(30_000) // generous drain (links may be slow/transitioning)
			if n.InFlight != 0 {
				t.Fatalf("seed %d policy %v: %d packets lost or stuck", seed, policy, n.InFlight)
			}
			for id, count := range delivered {
				if count != 1 {
					t.Fatalf("seed %d: packet %d delivered %d times", seed, id, count)
				}
			}
		}
	}
}

// TestPacketFlitOrderProperty: flits of each packet eject in sequence
// order (wormhole ordering survives DVS link churn).
func TestPacketFlitOrderProperty(t *testing.T) {
	n := mustNew(t, smallConfig(PolicyHistory))
	lastSeq := map[int64]int{}
	// Observe ejections by wrapping the sink: OnDeliver sees tails only, so
	// instead verify per-packet latency sanity and count.
	n.OnDeliver = func(p *flow.Packet) {
		if p.Delivered < p.Created {
			t.Errorf("packet %d delivered before creation", p.ID)
		}
		if _, dup := lastSeq[p.ID]; dup {
			t.Errorf("packet %d delivered twice", p.ID)
		}
		lastSeq[p.ID] = 1
	}
	u := &traffic.Uniform{
		Topo: n.Topo, RatePerNode: 0.05,
		CyclePeriod: n.Cfg.RouterPeriod, Seed: 77,
	}
	n.Launch(u, 10*sim.Microsecond)
	n.Run(40_000)
	if len(lastSeq) == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestTraceHooks: the network logs injections, deliveries and transitions.
func TestTraceHooks(t *testing.T) {
	n := mustNew(t, smallConfig(PolicyHistory))
	n.Trace = trace.NewBuffer(100000)
	u := &traffic.Uniform{
		Topo: n.Topo, RatePerNode: 0.02,
		CyclePeriod: n.Cfg.RouterPeriod, Seed: 5,
	}
	n.Launch(u, 20*sim.Microsecond)
	n.Run(30_000)
	kinds := map[trace.Kind]int{}
	for _, e := range n.Trace.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []trace.Kind{trace.PacketInjected, trace.PacketDelivered,
		trace.PolicyDecision, trace.LinkTransition} {
		if kinds[k] == 0 {
			t.Errorf("no %v events traced", k)
		}
	}
}

// TestMeasurementExcludesWarmupPackets: packets created before
// BeginMeasurement never count toward latency or throughput.
func TestMeasurementExcludesWarmupPackets(t *testing.T) {
	n := mustNew(t, smallConfig(PolicyNone))
	n.Inject(0, 15, 0, -1) // pre-measurement packet
	n.Run(200)             // delivered during warmup
	n.BeginMeasurement()
	n.Run(500)
	r := n.Snapshot()
	if r.DeliveredPkts != 0 || r.InjectedPkts != 0 {
		t.Errorf("warmup packet leaked into measurement: %+v", r)
	}
	// A packet injected after the epoch counts.
	n.Inject(0, 15, n.Now(), -1)
	n.Run(200)
	if got := n.Snapshot().DeliveredPkts; got != 1 {
		t.Errorf("measured delivered = %d, want 1", got)
	}
}

// TestInjectionBandwidthOneFlitPerCycle: a node's source queue drains at
// most one flit per router cycle into the local input port.
func TestInjectionBandwidthOneFlitPerCycle(t *testing.T) {
	n := mustNew(t, smallConfig(PolicyNone))
	// Queue 4 packets (20 flits) at node 0 simultaneously.
	for i := 0; i < 4; i++ {
		n.Inject(0, 15, 0, -1)
	}
	// After c cycles, at most c flits can have entered the router; the
	// local input port buffered + forwarded count is bounded by the cycle
	// count.
	n.Run(10)
	in := n.Routers[0].Inputs[topology.LocalPort]
	entered := in.Occupied() + int(n.Routers[0].FlitsSwitched)
	if entered > 10 {
		t.Errorf("%d flits entered in 10 cycles (injection bandwidth violated)", entered)
	}
	if entered == 0 {
		t.Error("nothing injected at all")
	}
}
