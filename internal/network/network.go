// Package network assembles topology, routers, DVS links, the history-based
// DVS policy and a traffic model into the paper's simulation platform: a
// k-ary n-cube of 1 GHz pipelined virtual-channel routers whose inter-router
// channels are DVS links in their own clock domains, exchanging flits by
// message passing (scheduled arrival events), with credit-based flow
// control whose credit-return latency tracks the reverse channel's speed.
package network

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/link"
	"repro/internal/power"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// PolicyKind selects the DVS controller attached to each output port.
type PolicyKind int

const (
	// PolicyNone pins every link at the top level (the non-DVS baseline).
	PolicyNone PolicyKind = iota
	// PolicyHistory is the paper's history-based DVS (Algorithm 1).
	PolicyHistory
	// PolicyLinkUtilOnly is the Section 3.1 ablation without the
	// buffer-utilization congestion litmus.
	PolicyLinkUtilOnly
	// PolicyAdaptiveThresholds is the Section 4.4.2 extension that walks
	// the Table 2 threshold settings online.
	PolicyAdaptiveThresholds
)

func (k PolicyKind) String() string {
	switch k {
	case PolicyNone:
		return "none"
	case PolicyHistory:
		return "history"
	case PolicyLinkUtilOnly:
		return "link-util-only"
	case PolicyAdaptiveThresholds:
		return "adaptive-thresholds"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// Config assembles a complete simulation platform. NewConfig returns the
// paper's Section 4.2 experimental setup.
type Config struct {
	// K, N, Torus shape the k-ary n-cube (paper: 8-ary 2-cube mesh).
	K, N  int
	Torus bool

	// Router is the per-node router microarchitecture.
	Router router.Config
	// Link is the DVS link design.
	Link link.Params
	// Policy selects the per-port DVS controller and its parameters.
	Policy PolicyKind
	// DVS holds the history-based policy parameters (Table 1).
	DVS core.Params
	// Routing names the routing algorithm ("dor" or "adaptive").
	Routing string

	// RouterPeriod is the router clock (paper: 1 GHz).
	RouterPeriod sim.Duration
	// StartLevel is the initial link level (-1 means the top level).
	StartLevel int

	// Seed feeds the traffic model when one is attached via Run.
	Seed uint64

	// Audit configures the runtime invariant checker (internal/audit).
	// Disabled by default; when Audit.Enabled, the platform verifies flit
	// and credit conservation, VC state-machine legality, DVS link
	// legality and deadlock freedom as it runs.
	Audit audit.Options
}

// NewConfig returns the paper's experimental platform: 8x8 mesh, 1 GHz
// 13-stage routers with 2 VCs and 128 flit buffers per port, ten-level DVS
// links, Table 1 policy parameters.
func NewConfig() Config {
	return Config{
		K:            8,
		N:            2,
		Torus:        false,
		Router:       router.NewConfig(5),
		Link:         link.NewParams(),
		Policy:       PolicyHistory,
		DVS:          core.DefaultParams(),
		Routing:      "dor",
		RouterPeriod: sim.Nanosecond,
		StartLevel:   -1,
		Seed:         1,
	}
}

// Validate reports whether the configuration is coherent.
func (c Config) Validate() error {
	if c.K < 2 || c.N < 1 {
		return fmt.Errorf("network: invalid cube %d-ary %d", c.K, c.N)
	}
	if want := 1 + 2*c.N; c.Router.Ports != want {
		return fmt.Errorf("network: router has %d ports, topology needs %d", c.Router.Ports, want)
	}
	if err := c.Router.Validate(); err != nil {
		return err
	}
	if err := c.DVS.Validate(); err != nil {
		return err
	}
	if c.RouterPeriod <= 0 {
		return fmt.Errorf("network: router period %v", c.RouterPeriod)
	}
	if _, err := routing.ByName(c.Routing); err != nil {
		return err
	}
	if _, err := link.NewTable(c.Link); err != nil {
		return err
	}
	return nil
}

// portCtl is the per-output-port DVS machinery: the policy instance and the
// channel it drives.
type portCtl struct {
	policy     core.Policy
	out        *router.OutputPort
	link       *link.DVSLink
	node, port int
}

// injector streams packets from a node's source queue into the local input
// port, one flit per router cycle, keeping each packet's flits contiguous
// on one VC.
type injector struct {
	queue   []*flow.Packet
	current []*flow.Flit // remaining flits of the packet being injected
	vc      int
}

// ringSize is the span, in router cycles, of the short-delay message ring.
// Flit serialization and credit return delays are at most one bottom-level
// link period (8 cycles at 1 GHz), far below it.
const ringSize = 64

// arrivalMsg is a flit landing at a router input port.
type arrivalMsg struct {
	in   *router.InputPort
	flit *flow.Flit
}

// creditMsg returns one buffer slot to an upstream output port.
type creditMsg struct {
	out *router.OutputPort
	vc  int
}

// ringBucket holds the messages due in one future router cycle.
type ringBucket struct {
	arrivals []arrivalMsg
	credits  []creditMsg
}

// Network is a runnable simulation instance.
type Network struct {
	Cfg   Config
	Topo  *topology.Cube
	Sched *sim.Scheduler
	Table *link.Table

	Routers []*router.Router
	// Links maps (src node, output port) to the channel's DVS link.
	linkAt [][]*link.DVSLink
	ctls   []*portCtl
	algo   routing.Algorithm

	injectors []*injector
	nextPkt   int64
	cycle     int64

	// Measurement state (reset by BeginMeasurement).
	Lat       *stats.Latency
	Meter     *power.Meter
	measStart sim.Time
	injected  int64
	delivered int64

	// InFlight tracks packets injected but not yet delivered (for drain
	// checks and deadlock detection in tests).
	InFlight int64

	// Probe, when set, runs every ProbeEvery cycles before the DVS policy
	// (used by the figure harnesses to sample utilizations).
	Probe      func(now sim.Time)
	ProbeEvery int64

	// OnDeliver, when set, observes every delivered packet.
	OnDeliver func(p *flow.Packet)

	// Trace, when non-nil, records packet and DVS events.
	Trace *trace.Buffer

	// ring buffers short-delay flit arrivals and credit returns per due
	// cycle, replacing per-message scheduler events on the hot path.
	ring [ringSize]ringBucket

	// aud, when non-nil, is the runtime invariant checker; every hook site
	// nil-checks it so the disabled cost is one pointer compare.
	aud *audit.Checker
	// audSlow mirrors messages that fell back to the scheduler (due beyond
	// the ring span) so conservation scans can still see them. Always
	// empty when auditing is off.
	audSlow []slowMsg
}

// slowMsg is one scheduler-fallback message tracked for the audit: a flit
// arrival when in != nil, otherwise a credit return.
type slowMsg struct {
	in   *router.InputPort
	flit *flow.Flit
	out  *router.OutputPort
	vc   int
}

// New builds the platform.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo := topology.New(cfg.K, cfg.N, cfg.Torus)
	table := link.MustTable(cfg.Link)
	algo, err := routing.ByName(cfg.Routing)
	if err != nil {
		return nil, err
	}
	n := &Network{
		Cfg:   cfg,
		Topo:  topo,
		Sched: &sim.Scheduler{},
		Table: table,
		algo:  algo,
	}
	start := cfg.StartLevel
	if start < 0 {
		start = table.Top()
	}

	// Routers.
	for id := 0; id < topo.Nodes(); id++ {
		r, err := router.New(id, cfg.Router)
		if err != nil {
			return nil, err
		}
		id := id
		r.RouteFn = func(p *flow.Packet) []routing.Candidate {
			st := routing.State{LastDim: p.LastDim, Wrapped: p.Wrapped}
			return n.algo.Route(topo, id, p.Dst, cfg.Router.VCs, st)
		}
		n.Routers = append(n.Routers, r)
		n.injectors = append(n.injectors, &injector{})
	}

	// Channels: one DVS link per directed channel, plus the policy
	// controller at its source output port.
	n.linkAt = make([][]*link.DVSLink, topo.Nodes())
	for i := range n.linkAt {
		n.linkAt[i] = make([]*link.DVSLink, cfg.Router.Ports)
	}
	var all []*link.DVSLink
	for _, ch := range topo.Channels() {
		port := topo.PortFor(ch.Dim, ch.Dir)
		l := link.NewDVSLink(table, n.Sched, start)
		n.linkAt[ch.Src][port] = l
		all = append(all, l)
		out := n.Routers[ch.Src].Outputs[port]
		out.Link = l
		n.ctls = append(n.ctls, &portCtl{
			policy: n.newPolicy(), out: out, link: l, node: ch.Src, port: port,
		})
	}

	// Credit return paths: the input port of ch.Dst facing ch reaches back
	// to ch.Src's output port; the credit travels on the reverse channel,
	// so its latency is the reverse link's current serialization period.
	for _, ch := range topo.Channels() {
		ch := ch
		outPort := topo.PortFor(ch.Dim, ch.Dir)
		inPort := topo.PortFor(ch.Dim, 1-ch.Dir) // arriving from the opposite direction
		upstream := n.Routers[ch.Src].Outputs[outPort]
		revPort := topo.PortFor(ch.Dim, 1-ch.Dir)
		rev := n.linkAt[ch.Dst][revPort] // channel ch.Dst -> ch.Src
		n.Routers[ch.Dst].SetCreditReturn(inPort, func(vc int, now sim.Time) {
			delay := n.Cfg.RouterPeriod
			if rev != nil {
				delay = rev.Period()
			}
			n.enqueueCredit(upstream, vc, now+delay)
		})
	}

	n.Lat = stats.NewLatency(cfg.RouterPeriod)
	n.Meter = power.NewMeter(table, all, 0)

	if cfg.Audit.Enabled {
		n.aud = audit.New(cfg.Audit, audit.Wiring{
			Topo:        topo,
			Routers:     n.Routers,
			LinkAt:      func(node, port int) *link.DVSLink { return n.linkAt[node][port] },
			InFlight:    func() int64 { return n.InFlight },
			WalkTransit: n.walkTransit,
		})
	}
	return n, nil
}

// Auditor reports the runtime invariant checker, or nil when disabled.
func (n *Network) Auditor() *audit.Checker { return n.aud }

// walkTransit shows the audit everything in flight outside router state:
// ring-buffered arrivals and credits, scheduler-fallback messages, and
// partially injected packets at sources. Queued whole packets have no
// flits yet and are tracked by the audit's own ledger.
func (n *Network) walkTransit(v audit.TransitVisitor) {
	for i := range n.ring {
		b := &n.ring[i]
		for _, a := range b.arrivals {
			v.Flit(a.in, a.flit)
		}
		for _, cm := range b.credits {
			v.Credit(cm.out, cm.vc)
		}
	}
	for _, s := range n.audSlow {
		if s.in != nil {
			v.Flit(s.in, s.flit)
		} else {
			v.Credit(s.out, s.vc)
		}
	}
	for node, inj := range n.injectors {
		for _, f := range inj.current {
			v.SourceFlit(node, f)
		}
	}
}

// audSlowDrop removes one tracked scheduler-fallback message.
func (n *Network) audSlowDrop(m slowMsg) {
	for i := range n.audSlow {
		if n.audSlow[i] == m {
			n.audSlow = append(n.audSlow[:i], n.audSlow[i+1:]...)
			return
		}
	}
}

// newPolicy builds one per-port policy instance.
func (n *Network) newPolicy() core.Policy {
	switch n.Cfg.Policy {
	case PolicyHistory:
		p, err := core.NewHistoryDVS(n.Cfg.DVS)
		if err != nil {
			panic(err)
		}
		return p
	case PolicyLinkUtilOnly:
		return &core.LinkUtilOnly{P: n.Cfg.DVS}
	case PolicyAdaptiveThresholds:
		p, err := core.NewAdaptiveThresholds(n.Cfg.DVS)
		if err != nil {
			panic(err)
		}
		return p
	default:
		return core.NoDVS{}
	}
}

// Links returns all DVS links (for instrumentation).
func (n *Network) Links() []*link.DVSLink {
	var out []*link.DVSLink
	for _, row := range n.linkAt {
		for _, l := range row {
			if l != nil {
				out = append(out, l)
			}
		}
	}
	return out
}

// LinkAt returns the channel leaving node via (dim, dir), or nil.
func (n *Network) LinkAt(node, dim int, dir topology.Direction) *link.DVSLink {
	return n.linkAt[node][n.Topo.PortFor(dim, dir)]
}

// Inject enqueues one packet at a source node. It is the traffic.Injector
// for this network.
func (n *Network) Inject(src, dst int, now sim.Time, task int64) {
	if src == dst {
		return
	}
	n.nextPkt++
	p := flow.NewPacket(n.nextPkt, src, dst, now, task)
	n.injectors[src].queue = append(n.injectors[src].queue, p)
	n.injected++
	n.InFlight++
	if n.aud != nil {
		n.aud.OnInject(p, n.cycle)
	}
	n.Trace.Log(trace.Event{At: now, Kind: trace.PacketInjected, ID: p.ID, A: src, B: dst})
}

// Cycle reports the number of router cycles executed.
func (n *Network) Cycle() int64 { return n.cycle }

// Now reports the current simulation time.
func (n *Network) Now() sim.Time { return n.Sched.Now() }

// Step advances the platform one router cycle: deliver pending events,
// inject, tick routers, transmit onto links, eject, and run the DVS policy
// when a history window closes.
func (n *Network) Step() {
	now := sim.Time(n.cycle) * n.Cfg.RouterPeriod
	n.Sched.RunUntil(now)
	n.drainRing(now)
	n.injectFlits(now)
	for _, r := range n.Routers {
		r.Tick(now, n.Cfg.RouterPeriod)
	}
	n.transmit(now)
	n.eject(now)
	n.cycle++
	if n.cycle%int64(n.Cfg.DVS.H) == 0 {
		n.runPolicies(now)
	}
	if n.Probe != nil && n.ProbeEvery > 0 && n.cycle%n.ProbeEvery == 0 {
		n.Probe(now)
	}
	if n.aud != nil {
		n.aud.EndCycle(n.cycle, now)
	}
}

// Run advances the given number of router cycles.
func (n *Network) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// dueCycle converts an absolute due instant to the router cycle whose Step
// will deliver it: the first cycle edge at or after the instant.
func (n *Network) dueCycle(at sim.Time) int64 {
	p := n.Cfg.RouterPeriod
	return int64((at + p - 1) / p)
}

// enqueueArrival buffers a flit delivery due at the given instant. Delays
// beyond the ring span (impossible for link serialization) fall back to the
// scheduler.
func (n *Network) enqueueArrival(in *router.InputPort, f *flow.Flit, at sim.Time) {
	due := n.dueCycle(at)
	if due-n.cycle >= ringSize {
		if n.aud == nil {
			n.Sched.At(at, func() { in.Arrive(f, n.Sched.Now()) })
		} else {
			m := slowMsg{in: in, flit: f}
			n.audSlow = append(n.audSlow, m)
			n.Sched.At(at, func() {
				n.audSlowDrop(m)
				in.Arrive(f, n.Sched.Now())
			})
		}
		return
	}
	b := &n.ring[due%ringSize]
	b.arrivals = append(b.arrivals, arrivalMsg{in: in, flit: f})
}

// enqueueCredit buffers a credit return due at the given instant.
func (n *Network) enqueueCredit(out *router.OutputPort, vc int, at sim.Time) {
	due := n.dueCycle(at)
	if due-n.cycle >= ringSize {
		if n.aud == nil {
			n.Sched.At(at, func() { out.ReturnCredit(vc, n.Sched.Now()) })
		} else {
			m := slowMsg{out: out, vc: vc}
			n.audSlow = append(n.audSlow, m)
			n.Sched.At(at, func() {
				n.audSlowDrop(m)
				out.ReturnCredit(vc, n.Sched.Now())
			})
		}
		return
	}
	b := &n.ring[due%ringSize]
	b.credits = append(b.credits, creditMsg{out: out, vc: vc})
}

// drainRing delivers the messages due this cycle.
func (n *Network) drainRing(now sim.Time) {
	b := &n.ring[n.cycle%ringSize]
	for i, a := range b.arrivals {
		a.in.Arrive(a.flit, now)
		b.arrivals[i] = arrivalMsg{}
	}
	b.arrivals = b.arrivals[:0]
	for i, c := range b.credits {
		c.out.ReturnCredit(c.vc, now)
		b.credits[i] = creditMsg{}
	}
	b.credits = b.credits[:0]
}

// injectFlits moves source-queue flits into local input buffers: one flit
// per node per cycle, packets contiguous per VC.
func (n *Network) injectFlits(now sim.Time) {
	for node, inj := range n.injectors {
		in := n.Routers[node].Inputs[topology.LocalPort]
		if len(inj.current) == 0 {
			if len(inj.queue) == 0 {
				continue
			}
			// Pick the VC with the most free space for the next packet.
			best, bestFree := -1, 0
			for vc := 0; vc < n.Cfg.Router.VCs; vc++ {
				if f := in.Free(vc); f > bestFree {
					best, bestFree = vc, f
				}
			}
			if best < 0 || bestFree < 1 {
				continue
			}
			p := inj.queue[0]
			inj.queue = inj.queue[1:]
			p.Injected = now
			inj.current = flow.NewPacketFlits(p)
			inj.vc = best
			if n.aud != nil {
				n.aud.OnSourceDequeue(p, n.cycle)
			}
		}
		if in.Free(inj.vc) < 1 {
			continue
		}
		f := inj.current[0]
		inj.current = inj.current[1:]
		f.VC = inj.vc
		in.Arrive(f, now)
	}
}

// transmit drains output pipelines onto functional, idle links, scheduling
// flit arrival at the downstream router after serialization.
func (n *Network) transmit(now sim.Time) {
	for node, r := range n.Routers {
		for port := 1; port < n.Cfg.Router.Ports; port++ {
			out := r.Outputs[port]
			l := out.Link
			if l == nil || len(out.Tx()) == 0 {
				continue
			}
			front := out.Tx()[0]
			if front.ReadyAt() > now || !l.CanSend(now) {
				continue
			}
			out.PopTx()
			f := front.Flit()
			if n.aud != nil {
				n.aud.OnLinkSend(node, port, l, f, now, n.cycle)
			}
			d := l.Send(now)

			dim, dir := n.Topo.DimDir(port)
			dst, ok := n.Topo.Neighbor(node, dim, dir)
			if !ok {
				panic("network: flit routed off the mesh edge")
			}
			if f.Kind == flow.Head {
				// Advance dateline state as the head crosses the channel.
				cx := n.Topo.Coord(node, dim)
				wrap := n.Topo.Torus() &&
					((dir == topology.Plus && cx == n.Topo.K()-1) ||
						(dir == topology.Minus && cx == 0))
				st := routing.State{LastDim: f.Packet.LastDim, Wrapped: f.Packet.Wrapped}
				st = st.Advance(dim, wrap)
				f.Packet.LastDim, f.Packet.Wrapped = st.LastDim, st.Wrapped
			}
			inPort := n.Topo.PortFor(dim, 1-dir)
			n.enqueueArrival(n.Routers[dst].Inputs[inPort], f, now+d)
		}
	}
}

// eject drains local output pipelines: every ready flit leaves immediately
// (the paper assumes immediate ejection), and tails complete packets.
func (n *Network) eject(now sim.Time) {
	for _, r := range n.Routers {
		out := r.Outputs[topology.LocalPort]
		for len(out.Tx()) > 0 && out.Tx()[0].ReadyAt() <= now {
			e := out.PopTx()
			f := e.Flit()
			if n.aud != nil {
				n.aud.OnEject(f, r.ID, n.cycle)
			}
			if f.Kind != flow.Tail {
				continue
			}
			p := f.Packet
			p.Delivered = now
			n.InFlight--
			n.Trace.Log(trace.Event{At: now, Kind: trace.PacketDelivered,
				ID: p.ID, A: p.Src, B: p.Dst, C: int64(p.Latency())})
			if p.Created >= n.measStart {
				n.Lat.Add(p.Latency())
				n.delivered++
			}
			if n.aud != nil {
				n.aud.OnDeliver(p, n.cycle)
			}
			if n.OnDeliver != nil {
				n.OnDeliver(p)
			}
		}
	}
}

// runPolicies closes one history window on every controlled port.
func (n *Network) runPolicies(now sim.Time) {
	window := sim.Duration(n.Cfg.DVS.H) * n.Cfg.RouterPeriod
	for _, c := range n.ctls {
		if _, fixed := c.policy.(core.NoDVS); fixed {
			// The baseline never moves; leave the utilization and occupancy
			// windows to instrumentation probes.
			continue
		}
		busy, dead := c.link.TakeUtilization(now)
		lu := core.LinkUtilization(busy, window-dead)
		bu := core.BufferUtilization(c.out.TakeOccupancyIntegral(now), c.out.TotalSlots(), window)
		switch c.policy.Decide(core.Measures{LinkUtil: lu, BufUtil: bu}) {
		case core.Raise:
			n.Trace.Log(trace.Event{At: now, Kind: trace.PolicyDecision, A: c.node, B: c.port, C: 1})
			if c.link.RequestStep(now, true) {
				n.Trace.Log(trace.Event{At: now, Kind: trace.LinkTransition,
					A: c.node, B: c.port, C: int64(c.link.TargetLevel())})
			}
		case core.Lower:
			n.Trace.Log(trace.Event{At: now, Kind: trace.PolicyDecision, A: c.node, B: c.port, C: -1})
			if c.link.RequestStep(now, false) {
				n.Trace.Log(trace.Event{At: now, Kind: trace.LinkTransition,
					A: c.node, B: c.port, C: int64(c.link.TargetLevel())})
			}
		}
	}
}

// BeginMeasurement resets latency/power/throughput accounting at the
// current instant; packets created earlier are excluded from latency and
// throughput statistics.
func (n *Network) BeginMeasurement() {
	now := n.Now()
	n.measStart = now
	n.Lat = stats.NewLatency(n.Cfg.RouterPeriod)
	n.Meter = power.NewMeter(n.Table, n.Links(), now)
	n.delivered = 0
	n.injected = 0
}

// Results summarizes a measurement interval.
type Results struct {
	Cycles         int64
	InjectedPkts   int64
	DeliveredPkts  int64
	MeanLatency    float64 // router cycles
	P50Latency     float64 // median latency, router cycles
	P99Latency     float64 // tail latency, router cycles
	ThroughputPkts float64 // packets per cycle, network-wide
	AvgPowerW      float64
	NormalizedPwr  float64
	SavingsX       float64
}

// Snapshot reports results accumulated since BeginMeasurement.
func (n *Network) Snapshot() Results {
	now := n.Now()
	cycles := int64((now - n.measStart) / n.Cfg.RouterPeriod)
	var thr float64
	if cycles > 0 {
		thr = float64(n.delivered) / float64(cycles)
	}
	return Results{
		Cycles:         cycles,
		InjectedPkts:   n.injected,
		DeliveredPkts:  n.delivered,
		MeanLatency:    n.Lat.MeanCycles(),
		P50Latency:     n.Lat.Quantile(0.5),
		P99Latency:     n.Lat.Quantile(0.99),
		ThroughputPkts: thr,
		AvgPowerW:      n.Meter.AvgPowerW(now),
		NormalizedPwr:  n.Meter.Normalized(now),
		SavingsX:       n.Meter.Savings(now),
	}
}

// Launch attaches a traffic model from now until horizon.
func (n *Network) Launch(m traffic.Model, horizon sim.Time) {
	m.Launch(n.Sched, horizon, n.Inject)
}
