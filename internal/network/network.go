// Package network assembles topology, routers, DVS links, the history-based
// DVS policy and a traffic model into the paper's simulation platform: a
// k-ary n-cube of 1 GHz pipelined virtual-channel routers whose inter-router
// channels are DVS links in their own clock domains, exchanging flits by
// message passing (scheduled arrival events), with credit-based flow
// control whose credit-return latency tracks the reverse channel's speed.
package network

import (
	"fmt"
	"math/bits"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/link"
	"repro/internal/power"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// PolicyKind selects the DVS controller attached to each output port.
type PolicyKind int

const (
	// PolicyNone pins every link at the top level (the non-DVS baseline).
	PolicyNone PolicyKind = iota
	// PolicyHistory is the paper's history-based DVS (Algorithm 1).
	PolicyHistory
	// PolicyLinkUtilOnly is the Section 3.1 ablation without the
	// buffer-utilization congestion litmus.
	PolicyLinkUtilOnly
	// PolicyAdaptiveThresholds is the Section 4.4.2 extension that walks
	// the Table 2 threshold settings online.
	PolicyAdaptiveThresholds
)

func (k PolicyKind) String() string {
	switch k {
	case PolicyNone:
		return "none"
	case PolicyHistory:
		return "history"
	case PolicyLinkUtilOnly:
		return "link-util-only"
	case PolicyAdaptiveThresholds:
		return "adaptive-thresholds"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// Config assembles a complete simulation platform. NewConfig returns the
// paper's Section 4.2 experimental setup.
type Config struct {
	// K, N, Torus shape the k-ary n-cube (paper: 8-ary 2-cube mesh).
	K, N  int
	Torus bool

	// Router is the per-node router microarchitecture.
	Router router.Config
	// Link is the DVS link design.
	Link link.Params
	// Policy selects the per-port DVS controller and its parameters.
	Policy PolicyKind
	// DVS holds the history-based policy parameters (Table 1).
	DVS core.Params
	// Routing names the routing algorithm ("dor" or "adaptive").
	Routing string

	// RouterPeriod is the router clock (paper: 1 GHz).
	RouterPeriod sim.Duration
	// StartLevel is the initial link level (-1 means the top level).
	StartLevel int

	// Seed feeds the traffic model when one is attached via Run.
	Seed uint64

	// NoSkip disables the activity-driven core: every router ticks every
	// cycle and quiescent intervals execute cycle by cycle, exactly as the
	// pre-activity-tracking simulator did. A debugging escape hatch — the
	// skipping path is proven byte-identical to this one by the equivalence
	// tests, so the only observable difference is speed.
	NoSkip bool

	// RefAllocators selects the routers' retained full-scan reference
	// allocator stages instead of the incremental work-list path. Another
	// debugging escape hatch: the two paths are proven byte-identical by
	// the equivalence tests, so the only observable difference is speed.
	RefAllocators bool

	// Tiles partitions the mesh into that many contiguous blocks of
	// routers, each advanced by its own scheduler between conservative
	// lookahead barriers, so one simulation can use several cores. Output
	// is byte-identical at every tile count (see tile.go for the
	// argument); 0 or 1 selects the single-scheduler path unchanged. A
	// tiled network requires a recorded trace workload (see Launch) and
	// refuses checkpoint capture. Trace availability is therefore the
	// tile-eligibility gate: the streaming replay's arrival budgets
	// (internal/traffic) are sized so even -full experiment points record
	// traces, and a point that still exceeds them falls back to the live
	// model — losing tile eligibility — with a one-time stderr note from
	// the harness naming the point and reason.
	Tiles int

	// VerifyLookahead cross-checks the tile engine's extracted lookahead: at
	// every barrier merge, each cross-tile message's due cycle is compared
	// against the bound its source tile promised when the window was
	// planned, and violations are counted (LookaheadViolations). The same
	// check runs under Audit. A test knob — verification never changes
	// output bytes, only adds the per-message comparison.
	VerifyLookahead bool

	// Audit configures the runtime invariant checker (internal/audit).
	// Disabled by default; when Audit.Enabled, the platform verifies flit
	// and credit conservation, VC state-machine legality, DVS link
	// legality and deadlock freedom as it runs.
	Audit audit.Options
}

// NewConfig returns the paper's experimental platform: 8x8 mesh, 1 GHz
// 13-stage routers with 2 VCs and 128 flit buffers per port, ten-level DVS
// links, Table 1 policy parameters.
func NewConfig() Config {
	return Config{
		K:            8,
		N:            2,
		Torus:        false,
		Router:       router.NewConfig(5),
		Link:         link.NewParams(),
		Policy:       PolicyHistory,
		DVS:          core.DefaultParams(),
		Routing:      "dor",
		RouterPeriod: sim.Nanosecond,
		StartLevel:   -1,
		Seed:         1,
	}
}

// Validate reports whether the configuration is coherent.
func (c Config) Validate() error {
	if c.K < 2 || c.N < 1 {
		return fmt.Errorf("network: invalid cube %d-ary %d", c.K, c.N)
	}
	if want := 1 + 2*c.N; c.Router.Ports != want {
		return fmt.Errorf("network: router has %d ports, topology needs %d", c.Router.Ports, want)
	}
	if err := c.Router.Validate(); err != nil {
		return err
	}
	if err := c.DVS.Validate(); err != nil {
		return err
	}
	if c.RouterPeriod <= 0 {
		return fmt.Errorf("network: router period %v", c.RouterPeriod)
	}
	if _, err := routing.ByName(c.Routing); err != nil {
		return err
	}
	if _, err := link.NewTable(c.Link); err != nil {
		return err
	}
	if c.Tiles < 0 {
		return fmt.Errorf("network: negative tile count %d", c.Tiles)
	}
	if nodes := c.nodes(); c.Tiles > nodes {
		return fmt.Errorf("network: %d tiles over %d routers", c.Tiles, nodes)
	}
	return nil
}

// nodes reports the cube's node count without building the topology.
func (c Config) nodes() int {
	nodes := 1
	for i := 0; i < c.N; i++ {
		nodes *= c.K
	}
	return nodes
}

// portCtl is the per-output-port DVS machinery: the policy instance and the
// channel it drives.
type portCtl struct {
	policy     core.Policy
	out        *router.OutputPort
	link       *link.DVSLink
	node, port int
}

// injector streams packets from a node's source queue into the local input
// port, one flit per router cycle, keeping each packet's flits contiguous
// on one VC. The queue is a power-of-two ring (head/count over a reused
// backing array) so saturated sources — whose queues never drain — do not
// churn slice backing arrays.
type injector struct {
	queue   []*flow.Packet
	qHead   int
	qLen    int
	current []*flow.Flit // remaining flits of the packet being injected
	vc      int
}

// push appends one packet to the source queue ring.
func (inj *injector) push(p *flow.Packet) {
	if inj.qLen == len(inj.queue) {
		size := 2 * len(inj.queue)
		if size == 0 {
			size = 16
		}
		grown := make([]*flow.Packet, size)
		for i := 0; i < inj.qLen; i++ {
			grown[i] = inj.queue[(inj.qHead+i)&(len(inj.queue)-1)]
		}
		inj.queue = grown
		inj.qHead = 0
	}
	inj.queue[(inj.qHead+inj.qLen)&(len(inj.queue)-1)] = p
	inj.qLen++
}

// pop removes and returns the front packet; the queue must be non-empty.
func (inj *injector) pop() *flow.Packet {
	p := inj.queue[inj.qHead]
	inj.queue[inj.qHead] = nil
	inj.qHead = (inj.qHead + 1) & (len(inj.queue) - 1)
	inj.qLen--
	return p
}

// ringSize is the span, in router cycles, of the short-delay message ring.
// Flit serialization and credit return delays are at most one bottom-level
// link period (8 cycles at 1 GHz), far below it.
const ringSize = 64

// arrivalMsg is a flit landing at a router input port. node is the
// destination router, kept so delivery can re-arm it on the active list.
type arrivalMsg struct {
	in   *router.InputPort
	flit *flow.Flit
	node int
}

// creditMsg returns one buffer slot to an upstream output port.
type creditMsg struct {
	out *router.OutputPort
	vc  int
}

// ringBucket holds the messages due in one future router cycle.
type ringBucket struct {
	arrivals []arrivalMsg
	credits  []creditMsg
}

// Network is a runnable simulation instance.
type Network struct {
	Cfg   Config
	Topo  *topology.Cube
	Sched *sim.Scheduler
	Table *link.Table

	Routers []*router.Router
	// Links maps (src node, output port) to the channel's DVS link.
	linkAt [][]*link.DVSLink
	ctls   []*portCtl
	algo   routing.Algorithm

	injectors []*injector
	nextPkt   int64
	cycle     int64

	// pool recycles packet/flit blocks: a delivered packet's storage backs
	// a future injection, so steady-state traffic allocates nothing.
	// Recycling is skipped while an OnDeliver observer is attached, since
	// the observer may legitimately retain delivered packets.
	pool flow.Pool

	// Measurement state (reset by BeginMeasurement).
	Lat       *stats.Latency
	Meter     *power.Meter
	measStart sim.Time
	injected  int64
	delivered int64

	// InFlight tracks packets injected but not yet delivered (for drain
	// checks and deadlock detection in tests).
	InFlight int64

	// Probe, when set, runs every ProbeEvery cycles before the DVS policy
	// (used by the figure harnesses to sample utilizations).
	Probe      func(now sim.Time)
	ProbeEvery int64

	// OnDeliver, when set, observes every delivered packet.
	OnDeliver func(p *flow.Packet)

	// Trace, when non-nil, records packet and DVS events.
	Trace *trace.Buffer

	// ring buffers short-delay flit arrivals and credit returns per due
	// cycle, replacing per-message scheduler events on the hot path.
	ring [ringSize]ringBucket

	// Activity tracking: the simulation core is activity-driven. activeMask
	// marks routers whose state a Tick could change (occupied input VCs or
	// draining output pipelines); Step iterates only set bits, in ascending
	// node order so the event sequence matches the tick-everything baseline
	// exactly. injMask marks nodes whose source injector holds work. Flit
	// arrivals (ring, slow path, injection) re-arm a router; the end-of-step
	// sweep retires routers whose Busy predicate went false. With Cfg.NoSkip
	// every bit stays permanently set and both masks degenerate to the
	// original tick-everything loops.
	activeMask  []uint64
	activeCount int
	injMask     []uint64
	injCount    int
	// ringCount totals messages buffered across ring buckets, so the
	// quiescence test is one compare instead of a bucket scan.
	ringCount int
	noskip    bool
	skips     SkipStats

	// aud, when non-nil, is the runtime invariant checker; every hook site
	// nil-checks it so the disabled cost is one pointer compare.
	aud *audit.Checker
	// slow mirrors messages that fell back to the scheduler (due beyond the
	// ring span) so audit conservation scans and checkpoints can enumerate
	// them. The slow path is cold by construction — link serialization and
	// credit return delays never approach the ring span — so the tracking
	// costs nothing in steady state.
	slow []*slowEntry

	// dvsHold freezes the DVS policies: while held, history windows never
	// close and no link transition can start, so the simulation is
	// policy-independent. Experiment warmups run held, which is what lets a
	// warmed-up state be checkpointed once and forked per policy variant.
	dvsHold bool
	// policiesTouched flips when a policy window closes on any real (non
	// NoDVS) controller — from then on the controllers carry history state a
	// checkpoint does not capture, so capture refuses.
	policiesTouched bool

	// Attached traffic model (Launch). replay is non-nil when the model is
	// a recorded trace, whose resumable walk makes the network
	// checkpointable.
	model   traffic.Model
	horizon sim.Time
	replay  *traffic.Replay

	// Tile-parallel state (tile.go). tiles is non-nil when Cfg.Tiles > 1:
	// each tile owns a contiguous block of routers and advances on its own
	// scheduler between extracted-lookahead barriers. tileOf maps a node to
	// its owning tile; lookahead is the constant floor of the per-window
	// extracted bound in router cycles (the minimum link latency).
	tiles     []*tileState
	tileOf    []int
	lookahead int64
	// tileMerged is the merge frontier: every cycle before it has been
	// drained into the global accumulators. Barrier elision lets the tiles'
	// cycle run ahead of it; mergeTiles closes the gap.
	tileMerged int64
	// forceTileWorkers pins the per-tile worker-goroutine path even on a
	// single-CPU host (where runTiled otherwise runs tiles inline, barriers
	// being pure overhead without a second core). Test hook: the race
	// detector must exercise the concurrent path regardless of GOMAXPROCS.
	forceTileWorkers bool
	// noTileElide disables barrier elision (every window ends in a merge);
	// test hook for the elision-equivalence suite.
	noTileElide bool
	// laViolations counts cross-tile messages that arrived before their
	// source tile's promised lookahead bound — always zero unless the bound
	// extraction is wrong. Counted under Cfg.VerifyLookahead or Audit.
	laViolations int64
}

// LookaheadViolations reports cross-tile messages observed before their
// source tile's promised bound. Populated only under Config.VerifyLookahead
// or a running audit; any nonzero value is a lookahead-extraction bug.
func (n *Network) LookaheadViolations() int64 { return n.laViolations }

// slowEntry is one scheduler-fallback message: a flit arrival when in is
// non-nil, otherwise a credit return. at/seq are the pending event's
// dispatch key, recorded so a checkpoint can re-arm it exactly.
type slowEntry struct {
	at   sim.Time
	seq  int64
	node int // arrival destination router; -1 for credits
	in   *router.InputPort
	flit *flow.Flit
	out  *router.OutputPort
	vc   int
}

// SkipStats measures how much work the activity-driven core avoided. All
// counters cover the network's lifetime.
type SkipStats struct {
	// CyclesExecuted counts router cycles that ran through Step;
	// CyclesFastForwarded counts cycles jumped over while the network was
	// quiescent, in FastForwards distinct jumps. Executed + fast-forwarded
	// equals Cycle().
	CyclesExecuted      int64
	CyclesFastForwarded int64
	FastForwards        int64
	// RouterTicks counts Router.Tick calls performed; RouterTicksElided
	// counts the tick calls the always-tick baseline would have made but
	// the active list or a fast-forward skipped.
	RouterTicks       int64
	RouterTicksElided int64
	// ActiveHist[k] counts executed cycles that ticked exactly k routers.
	ActiveHist []int64
	// Tile-parallel barrier accounting (zero on untiled networks).
	// TileWindows counts planned lookahead windows; TileBarriers counts the
	// windows that ended in a real merge (outbox drain + accumulator
	// replay); TileBarriersElided counts the merges skipped because every
	// cross-tile outbox was empty and no probe or audit scan forced one.
	TileWindows        int64
	TileBarriers       int64
	TileBarriersElided int64
}

// ElisionRatio reports the fraction of baseline router ticks skipped.
func (s SkipStats) ElisionRatio() float64 {
	total := s.RouterTicks + s.RouterTicksElided
	if total == 0 {
		return 0
	}
	return float64(s.RouterTicksElided) / float64(total)
}

// SkipStats reports the activity-driven core's lifetime skip counters.
func (n *Network) SkipStats() SkipStats {
	s := n.skips
	s.ActiveHist = append([]int64(nil), n.skips.ActiveHist...)
	return s
}

// TransitionsInFlight counts DVS links currently mid-transition. Every
// in-flight transition has a completion event pending in the scheduler,
// which is what bounds quiescent fast-forward; this accessor exists for
// observability and the skip-safety assertion in Run.
func (n *Network) TransitionsInFlight() int {
	c := 0
	for _, ctl := range n.ctls {
		if ctl.link.Transitioning() {
			c++
		}
	}
	return c
}

// markActive arms one router on the active list.
func (n *Network) markActive(node int) {
	w, b := node>>6, uint64(1)<<(node&63)
	if n.activeMask[w]&b == 0 {
		n.activeMask[w] |= b
		n.activeCount++
	}
}

// markInject arms one node's source injector.
func (n *Network) markInject(node int) {
	w, b := node>>6, uint64(1)<<(node&63)
	if n.injMask[w]&b == 0 {
		n.injMask[w] |= b
		n.injCount++
	}
}

// New builds the platform.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo := topology.New(cfg.K, cfg.N, cfg.Torus)
	table := link.MustTable(cfg.Link)
	algo, err := routing.ByName(cfg.Routing)
	if err != nil {
		return nil, err
	}
	n := &Network{
		Cfg:   cfg,
		Topo:  topo,
		Sched: &sim.Scheduler{},
		Table: table,
		algo:  algo,
	}
	start := cfg.StartLevel
	if start < 0 {
		start = table.Top()
	}

	// Routers.
	for id := 0; id < topo.Nodes(); id++ {
		r, err := router.New(id, cfg.Router)
		if err != nil {
			return nil, err
		}
		id := id
		r.Ref = cfg.RefAllocators
		r.RouteFn = func(p *flow.Packet, buf []routing.MaskCandidate) []routing.MaskCandidate {
			st := routing.State{LastDim: p.LastDim, Wrapped: p.Wrapped}
			return n.algo.RouteMask(topo, id, p.Dst, cfg.Router.VCs, st, buf)
		}
		n.Routers = append(n.Routers, r)
		n.injectors = append(n.injectors, &injector{})
	}

	// Tile partitioning must precede link construction: a tiled channel's
	// link schedules its transition and serialization events on the
	// scheduler of the tile owning its source router.
	if cfg.Tiles > 1 {
		n.initTiles(cfg.Tiles)
	}

	// Channels: one DVS link per directed channel, plus the policy
	// controller at its source output port.
	n.linkAt = make([][]*link.DVSLink, topo.Nodes())
	for i := range n.linkAt {
		n.linkAt[i] = make([]*link.DVSLink, cfg.Router.Ports)
	}
	for _, ch := range topo.Channels() {
		port := topo.PortFor(ch.Dim, ch.Dir)
		l := link.NewDVSLink(table, n.schedFor(ch.Src), start)
		n.linkAt[ch.Src][port] = l
		out := n.Routers[ch.Src].Outputs[port]
		out.Link = l
		n.ctls = append(n.ctls, &portCtl{
			policy: n.newPolicy(), out: out, link: l, node: ch.Src, port: port,
		})
	}

	// Credit return paths: the input port of ch.Dst facing ch reaches back
	// to ch.Src's output port; the credit travels on the reverse channel,
	// so its latency is the reverse link's current serialization period.
	for _, ch := range topo.Channels() {
		ch := ch
		outPort := topo.PortFor(ch.Dim, ch.Dir)
		inPort := topo.PortFor(ch.Dim, 1-ch.Dir) // arriving from the opposite direction
		upstream := n.Routers[ch.Src].Outputs[outPort]
		revPort := topo.PortFor(ch.Dim, 1-ch.Dir)
		rev := n.linkAt[ch.Dst][revPort] // channel ch.Dst -> ch.Src
		if n.tiles != nil {
			// The closure always runs on the tile owning ch.Dst (credit
			// returns fire while that router's input port frees a slot);
			// the credited output port belongs to the tile owning ch.Src.
			gen, rcv := n.tiles[n.tileOf[ch.Dst]], n.tileOf[ch.Src]
			n.Routers[ch.Dst].SetCreditReturn(inPort, func(vc int, now sim.Time) {
				delay := n.Cfg.RouterPeriod
				if rev != nil {
					delay = rev.Period()
				}
				if rcv == gen.id {
					gen.enqueueCredit(upstream, vc, now+delay)
				} else {
					gen.outbox[rcv] = append(gen.outbox[rcv],
						tileMsg{at: now + delay, node: -1, out: upstream, vc: vc})
				}
			})
			continue
		}
		n.Routers[ch.Dst].SetCreditReturn(inPort, func(vc int, now sim.Time) {
			delay := n.Cfg.RouterPeriod
			if rev != nil {
				delay = rev.Period()
			}
			n.enqueueCredit(upstream, vc, now+delay)
		})
	}

	n.Lat = stats.NewLatency(cfg.RouterPeriod)
	// Meter links in Links() order — the same order BeginMeasurement uses —
	// so the meter's float summation order never depends on which
	// constructor built it (checkpoint restore relies on the alignment).
	n.Meter = power.NewMeter(table, n.Links(), 0)

	nodes := topo.Nodes()
	words := (nodes + 63) / 64
	n.activeMask = make([]uint64, words)
	n.injMask = make([]uint64, words)
	n.skips.ActiveHist = make([]int64, nodes+1)
	n.noskip = cfg.NoSkip
	if n.noskip && n.tiles == nil {
		// Degenerate masks: every router ticks and every injector is
		// scanned each cycle, exactly the pre-activity-tracking loops.
		// (Tiled networks keep per-tile masks; initTiles degenerates them.)
		for i := 0; i < nodes; i++ {
			n.markActive(i)
			n.markInject(i)
		}
	}

	if cfg.Audit.Enabled {
		n.aud = audit.New(cfg.Audit, audit.Wiring{
			Topo:        topo,
			Routers:     n.Routers,
			LinkAt:      func(node, port int) *link.DVSLink { return n.linkAt[node][port] },
			InFlight:    func() int64 { return n.InFlight },
			WalkTransit: n.walkTransit,
		})
	}
	return n, nil
}

// Auditor reports the runtime invariant checker, or nil when disabled.
func (n *Network) Auditor() *audit.Checker { return n.aud }

// walkTransit shows the audit everything in flight outside router state:
// ring-buffered arrivals and credits, scheduler-fallback messages, and
// partially injected packets at sources. Queued whole packets have no
// flits yet and are tracked by the audit's own ledger. Tiled networks walk
// the per-tile rings, slow lists and outboxes instead of the global ones
// (audit scans run at barriers, where outboxes have just drained, but the
// walk covers them anyway so the conservation argument has no gaps).
func (n *Network) walkTransit(v audit.TransitVisitor) {
	if n.tiles != nil {
		for _, t := range n.tiles {
			t.walkTransit(v)
		}
	} else {
		for i := range n.ring {
			b := &n.ring[i]
			for _, a := range b.arrivals {
				v.Flit(a.in, a.flit)
			}
			for _, cm := range b.credits {
				v.Credit(cm.out, cm.vc)
			}
		}
		for _, s := range n.slow {
			if s.in != nil {
				v.Flit(s.in, s.flit)
			} else {
				v.Credit(s.out, s.vc)
			}
		}
	}
	for node, inj := range n.injectors {
		for _, f := range inj.current {
			v.SourceFlit(node, f)
		}
	}
}

// slowDrop removes one tracked scheduler-fallback message by identity.
func (n *Network) slowDrop(e *slowEntry) {
	for i := range n.slow {
		if n.slow[i] == e {
			n.slow = append(n.slow[:i], n.slow[i+1:]...)
			return
		}
	}
}

// newPolicy builds one per-port policy instance.
func (n *Network) newPolicy() core.Policy {
	switch n.Cfg.Policy {
	case PolicyHistory:
		p, err := core.NewHistoryDVS(n.Cfg.DVS)
		if err != nil {
			panic(err)
		}
		return p
	case PolicyLinkUtilOnly:
		return &core.LinkUtilOnly{P: n.Cfg.DVS}
	case PolicyAdaptiveThresholds:
		p, err := core.NewAdaptiveThresholds(n.Cfg.DVS)
		if err != nil {
			panic(err)
		}
		return p
	default:
		return core.NoDVS{}
	}
}

// Links returns all DVS links (for instrumentation).
func (n *Network) Links() []*link.DVSLink {
	var out []*link.DVSLink
	for _, row := range n.linkAt {
		for _, l := range row {
			if l != nil {
				out = append(out, l)
			}
		}
	}
	return out
}

// LinkAt returns the channel leaving node via (dim, dir), or nil.
func (n *Network) LinkAt(node, dim int, dir topology.Direction) *link.DVSLink {
	return n.linkAt[node][n.Topo.PortFor(dim, dir)]
}

// Inject enqueues one packet at a source node. It is the traffic.Injector
// for this network.
func (n *Network) Inject(src, dst int, now sim.Time, task int64) {
	if n.tiles != nil {
		panic("network: Inject on a tiled network — attach a recorded trace via Launch")
	}
	if src == dst {
		return
	}
	n.nextPkt++
	p := n.pool.NewPacket(n.nextPkt, src, dst, now, task)
	n.injectors[src].push(p)
	n.markInject(src)
	n.injected++
	n.InFlight++
	if n.aud != nil {
		n.aud.OnInject(p, n.cycle)
	}
	n.Trace.Log(trace.Event{At: now, Kind: trace.PacketInjected, ID: p.ID, A: src, B: dst})
}

// Cycle reports the number of router cycles executed.
func (n *Network) Cycle() int64 { return n.cycle }

// Now reports the current simulation time.
func (n *Network) Now() sim.Time { return n.Sched.Now() }

// Step advances the platform one router cycle: deliver pending events,
// inject, tick the active routers, transmit onto links, eject, and run the
// DVS policy when a history window closes. Routers not on the active list
// are skipped; skipping them is exact, because an idle router's Tick,
// transmit and eject phases are provable no-ops (see Router.Busy).
func (n *Network) Step() {
	if n.tiles != nil {
		panic("network: Step on a tiled network — use Run")
	}
	now := sim.Time(n.cycle) * n.Cfg.RouterPeriod
	n.Sched.RunUntil(now)
	n.drainRing(now)
	n.injectFlits(now)
	ticked := 0
	for w, word := range n.activeMask {
		base := w << 6
		for word != 0 {
			r := n.Routers[base+bits.TrailingZeros64(word)]
			word &= word - 1
			r.Tick(now, n.Cfg.RouterPeriod)
			ticked++
		}
	}
	n.transmit(now)
	n.eject(now)
	if !n.noskip {
		// Retire routers that went idle this cycle. Their bits re-arm on
		// the next flit arrival (ring delivery, injection, or slow path).
		for w, word := range n.activeMask {
			base := w << 6
			for word != 0 {
				i := base + bits.TrailingZeros64(word)
				word &= word - 1
				if !n.Routers[i].Busy() {
					n.activeMask[w] &^= 1 << (i & 63)
					n.activeCount--
				}
			}
		}
	}
	n.skips.CyclesExecuted++
	n.skips.RouterTicks += int64(ticked)
	n.skips.RouterTicksElided += int64(len(n.Routers) - ticked)
	n.skips.ActiveHist[ticked]++
	n.cycle++
	if !n.dvsHold && n.cycle%int64(n.Cfg.DVS.H) == 0 {
		n.runPolicies(now)
	}
	if n.Probe != nil && n.ProbeEvery > 0 && n.cycle%n.ProbeEvery == 0 {
		n.Probe(now)
	}
	if n.aud != nil {
		n.aud.EndCycle(n.cycle, now)
	}
}

// Run advances the given number of router cycles. When the platform is
// quiescent — no active routers, no pending injector work, no ring-buffered
// messages — it fast-forwards the cycle counter straight to the next
// interesting edge instead of stepping empty cycles. The jump is exact, not
// approximate: every cycle that could observe or change state (the first
// cycle delivering a scheduler event, each policy-window close, each probe
// tick, each audit scan) still executes with the same cycle number and the
// same simulation instant as in the cycle-by-cycle baseline.
func (n *Network) Run(cycles int64) {
	if n.tiles != nil {
		n.runTiled(cycles)
		return
	}
	target := n.cycle + cycles
	for n.cycle < target {
		if !n.noskip && n.activeCount == 0 && n.injCount == 0 && n.ringCount == 0 {
			if c := n.nextInterestingCycle(target); c > n.cycle {
				n.fastForward(c)
				continue
			}
		}
		n.Step()
	}
}

// boundaryFrom reports the smallest cycle c >= from whose Step closes a
// period-`every` window, i.e. (c+1) % every == 0: Step increments the cycle
// counter before testing it against the window length.
func boundaryFrom(from, every int64) int64 {
	return (from+every)/every*every - 1
}

// nextInterestingCycle reports the first cycle at or after the current one
// that must execute while the network is quiescent: the cycle whose
// RunUntil delivers the earliest pending scheduler event (traffic
// injections, DVS transition completions and slow-path messages all live
// there), the next DVS policy-window close, the next probe tick, and the
// next audit scan. Everything in between is provably empty: no router
// state, link window, energy ledger or occupancy integral changes on those
// cycles (the lazily accrued quantities integrate over the jump exactly).
// The result is clamped to target, the end of the current Run.
func (n *Network) nextInterestingCycle(target int64) int64 {
	next := target
	if n.Sched.Pending() > 0 {
		if c := n.dueCycle(n.Sched.PeekTime()); c < next {
			next = c
		}
	}
	if n.Cfg.Policy != PolicyNone && !n.dvsHold {
		// With PolicyNone every controller is core.NoDVS and runPolicies is
		// a no-op, so window closes need not execute; the same holds while
		// the policies are frozen by a DVS hold.
		if c := boundaryFrom(n.cycle, int64(n.Cfg.DVS.H)); c < next {
			next = c
		}
	}
	if n.Probe != nil && n.ProbeEvery > 0 {
		if c := boundaryFrom(n.cycle, n.ProbeEvery); c < next {
			next = c
		}
	}
	if n.aud != nil {
		if c := boundaryFrom(n.cycle, n.aud.ScanEvery()); c < next {
			next = c
		}
	}
	if next < n.cycle {
		next = n.cycle
	}
	return next
}

// fastForward jumps the cycle counter to c and advances the scheduler clock
// to the last skipped cycle edge, exactly where cycle-by-cycle stepping
// would have left it. No scheduler event can fire in the jumped span: c is
// bounded by the due cycle of the earliest pending event.
func (n *Network) fastForward(c int64) {
	skipped := c - n.cycle
	n.skips.CyclesFastForwarded += skipped
	n.skips.FastForwards++
	n.skips.RouterTicksElided += skipped * int64(len(n.Routers))
	n.cycle = c
	if ran := n.Sched.RunUntil(sim.Time(c-1) * n.Cfg.RouterPeriod); ran != 0 {
		panic(fmt.Sprintf("network: fast-forward to cycle %d ran %d events — jump bound broken", c, ran))
	}
}

// dueCycle converts an absolute due instant to the router cycle whose Step
// will deliver it: the first cycle edge at or after the instant.
func (n *Network) dueCycle(at sim.Time) int64 {
	p := n.Cfg.RouterPeriod
	return int64((at + p - 1) / p)
}

// enqueueArrival buffers a flit delivery at node's input port due at the
// given instant. Delays beyond the ring span (impossible for link
// serialization) fall back to the scheduler. Either path re-arms the
// destination router when the flit lands.
func (n *Network) enqueueArrival(node int, in *router.InputPort, f *flow.Flit, at sim.Time) {
	due := n.dueCycle(at)
	if due-n.cycle >= ringSize {
		e := &slowEntry{at: at, node: node, in: in, flit: f}
		n.slow = append(n.slow, e)
		e.seq = n.Sched.At(at, func() {
			n.slowDrop(e)
			n.markActive(e.node)
			e.in.Arrive(e.flit, n.Sched.Now())
		})
		return
	}
	b := &n.ring[due%ringSize]
	b.arrivals = append(b.arrivals, arrivalMsg{in: in, flit: f, node: node})
	n.ringCount++
}

// enqueueCredit buffers a credit return due at the given instant. Credits
// need no active-list re-arm: a credit only unblocks a router that already
// holds flits waiting to traverse, and such a router is busy by definition.
func (n *Network) enqueueCredit(out *router.OutputPort, vc int, at sim.Time) {
	due := n.dueCycle(at)
	if due-n.cycle >= ringSize {
		e := &slowEntry{at: at, node: -1, out: out, vc: vc}
		n.slow = append(n.slow, e)
		e.seq = n.Sched.At(at, func() {
			n.slowDrop(e)
			e.out.ReturnCredit(e.vc, n.Sched.Now())
		})
		return
	}
	b := &n.ring[due%ringSize]
	b.credits = append(b.credits, creditMsg{out: out, vc: vc})
	n.ringCount++
}

// drainRing delivers the messages due this cycle and re-arms the routers
// that received flits.
func (n *Network) drainRing(now sim.Time) {
	b := &n.ring[n.cycle%ringSize]
	n.ringCount -= len(b.arrivals) + len(b.credits)
	for i, a := range b.arrivals {
		n.markActive(a.node)
		a.in.Arrive(a.flit, now)
		b.arrivals[i] = arrivalMsg{}
	}
	b.arrivals = b.arrivals[:0]
	for i, c := range b.credits {
		c.out.ReturnCredit(c.vc, now)
		b.credits[i] = creditMsg{}
	}
	b.credits = b.credits[:0]
}

// injectFlits moves source-queue flits into local input buffers: one flit
// per node per cycle, packets contiguous per VC. Only nodes on the
// injector mask are visited; a node leaves the mask when both its queue
// and its in-progress flit train are empty.
func (n *Network) injectFlits(now sim.Time) {
	for w, word := range n.injMask {
		base := w << 6
		for word != 0 {
			node := base + bits.TrailingZeros64(word)
			word &= word - 1
			inj := n.injectors[node]
			n.injectOne(node, inj, now)
			if !n.noskip && len(inj.current) == 0 && inj.qLen == 0 {
				n.injMask[w] &^= 1 << (node & 63)
				n.injCount--
			}
		}
	}
}

// injectOne advances one node's injector by at most one flit.
func (n *Network) injectOne(node int, inj *injector, now sim.Time) {
	in := n.Routers[node].Inputs[topology.LocalPort]
	if len(inj.current) == 0 {
		if inj.qLen == 0 {
			return
		}
		// Pick the VC with the most free space for the next packet.
		best, bestFree := -1, 0
		for vc := 0; vc < n.Cfg.Router.VCs; vc++ {
			if f := in.Free(vc); f > bestFree {
				best, bestFree = vc, f
			}
		}
		if best < 0 || bestFree < 1 {
			return
		}
		p := inj.pop()
		p.Injected = now
		inj.current = n.pool.Flits(p)
		inj.vc = best
		if n.aud != nil {
			n.aud.OnSourceDequeue(p, n.cycle)
		}
	}
	if in.Free(inj.vc) < 1 {
		return
	}
	f := inj.current[0]
	inj.current = inj.current[1:]
	f.VC = inj.vc
	n.markActive(node)
	in.Arrive(f, now)
}

// transmit drains output pipelines onto functional, idle links, scheduling
// flit arrival at the downstream router after serialization. Only active
// routers are visited: a router with queued tx entries is busy by
// definition, and the deactivation sweep runs after this phase.
func (n *Network) transmit(now sim.Time) {
	for w, word := range n.activeMask {
		base := w << 6
		for word != 0 {
			node := base + bits.TrailingZeros64(word)
			word &= word - 1
			n.transmitNode(node, now)
		}
	}
}

// transmitNode drains one router's output pipelines onto its links. The
// router's tx port mask names exactly the ports with queued entries, in
// ascending port order, so empty ports cost nothing.
func (n *Network) transmitNode(node int, now sim.Time) {
	r := n.Routers[node]
	for mask := r.TxPortMask() &^ 1; mask != 0; mask &= mask - 1 {
		port := bits.TrailingZeros32(mask)
		out := r.Outputs[port]
		l := out.Link
		if l == nil {
			continue
		}
		front := out.TxFront()
		if front.ReadyAt() > now || !l.CanSend(now) {
			continue
		}
		out.PopTx()
		f := front.Flit()
		if n.aud != nil {
			n.aud.OnLinkSend(node, port, l, f, now, n.cycle)
		}
		d := l.Send(now)

		dim, dir := n.Topo.DimDir(port)
		dst, ok := n.Topo.Neighbor(node, dim, dir)
		if !ok {
			panic("network: flit routed off the mesh edge")
		}
		if f.Kind == flow.Head {
			// Advance dateline state as the head crosses the channel.
			cx := n.Topo.Coord(node, dim)
			wrap := n.Topo.Torus() &&
				((dir == topology.Plus && cx == n.Topo.K()-1) ||
					(dir == topology.Minus && cx == 0))
			st := routing.State{LastDim: f.Packet.LastDim, Wrapped: f.Packet.Wrapped}
			st = st.Advance(dim, wrap)
			f.Packet.LastDim, f.Packet.Wrapped = st.LastDim, st.Wrapped
		}
		inPort := n.Topo.PortFor(dim, 1-dir)
		n.enqueueArrival(dst, n.Routers[dst].Inputs[inPort], f, now+d)
	}
}

// eject drains local output pipelines: every ready flit leaves immediately
// (the paper assumes immediate ejection), and tails complete packets. Like
// transmit, it only visits active routers: queued ejection flits keep a
// router busy until this phase drains them.
func (n *Network) eject(now sim.Time) {
	for w, word := range n.activeMask {
		base := w << 6
		for word != 0 {
			node := base + bits.TrailingZeros64(word)
			word &= word - 1
			n.ejectNode(n.Routers[node], now)
		}
	}
}

// ejectNode drains one router's local output pipeline.
func (n *Network) ejectNode(r *router.Router, now sim.Time) {
	if r.LocalTxQueued() == 0 {
		return
	}
	out := r.Outputs[topology.LocalPort]
	for out.QueuedTx() > 0 && out.TxFront().ReadyAt() <= now {
		e := out.PopTx()
		f := e.Flit()
		if n.aud != nil {
			n.aud.OnEject(f, r.ID, n.cycle)
		}
		if f.Kind != flow.Tail {
			continue
		}
		p := f.Packet
		p.Delivered = now
		n.InFlight--
		n.Trace.Log(trace.Event{At: now, Kind: trace.PacketDelivered,
			ID: p.ID, A: p.Src, B: p.Dst, C: int64(p.Latency())})
		if p.Created >= n.measStart {
			n.Lat.Add(p.Latency())
			n.delivered++
		}
		if n.aud != nil {
			n.aud.OnDeliver(p, n.cycle)
		}
		if n.OnDeliver != nil {
			n.OnDeliver(p)
		} else {
			// The last reference to the packet and its flits just died (the
			// audit ledgers key by ID and dropped theirs in OnDeliver, and
			// trace/latency records copy values), so the block can back a
			// future injection.
			n.pool.Recycle(p)
		}
	}
}

// SetDVSHold freezes (true) or releases (false) the DVS policies. While
// held, no history window closes and no link transition can start, so the
// run is independent of the configured policy and thresholds. Releasing
// the hold drains every policy-visible window (link utilization, output
// occupancy integrals, input buffer-age windows) so the first live window
// covers only post-release activity, deterministically — an uninterrupted
// held warmup and a checkpoint-forked one release into identical state.
func (n *Network) SetDVSHold(hold bool) {
	if n.dvsHold == hold {
		return
	}
	n.dvsHold = hold
	if hold {
		return
	}
	now := n.Now()
	for _, c := range n.ctls {
		c.link.TakeUtilization(now)
		c.out.TakeOccupancyIntegral(now)
	}
	for _, r := range n.Routers {
		for _, in := range r.Inputs {
			in.TakeAgeWindow()
		}
	}
}

// DVSHold reports whether the DVS policies are frozen.
func (n *Network) DVSHold() bool { return n.dvsHold }

// runPolicies closes one history window on every controlled port.
func (n *Network) runPolicies(now sim.Time) {
	window := sim.Duration(n.Cfg.DVS.H) * n.Cfg.RouterPeriod
	for _, c := range n.ctls {
		if _, fixed := c.policy.(core.NoDVS); fixed {
			// The baseline never moves; leave the utilization and occupancy
			// windows to instrumentation probes.
			continue
		}
		n.policiesTouched = true
		busy, dead := c.link.TakeUtilization(now)
		lu := core.LinkUtilization(busy, window-dead)
		bu := core.BufferUtilization(c.out.TakeOccupancyIntegral(now), c.out.TotalSlots(), window)
		switch c.policy.Decide(core.Measures{LinkUtil: lu, BufUtil: bu}) {
		case core.Raise:
			n.Trace.Log(trace.Event{At: now, Kind: trace.PolicyDecision, A: c.node, B: c.port, C: 1})
			if c.link.RequestStep(now, true) {
				n.Trace.Log(trace.Event{At: now, Kind: trace.LinkTransition,
					A: c.node, B: c.port, C: int64(c.link.TargetLevel())})
			}
		case core.Lower:
			n.Trace.Log(trace.Event{At: now, Kind: trace.PolicyDecision, A: c.node, B: c.port, C: -1})
			if c.link.RequestStep(now, false) {
				n.Trace.Log(trace.Event{At: now, Kind: trace.LinkTransition,
					A: c.node, B: c.port, C: int64(c.link.TargetLevel())})
			}
		}
	}
}

// BeginMeasurement resets latency/power/throughput accounting at the
// current instant; packets created earlier are excluded from latency and
// throughput statistics.
func (n *Network) BeginMeasurement() {
	now := n.Now()
	n.measStart = now
	n.Lat = stats.NewLatency(n.Cfg.RouterPeriod)
	n.Meter = power.NewMeter(n.Table, n.Links(), now)
	n.delivered = 0
	n.injected = 0
}

// Results summarizes a measurement interval.
type Results struct {
	Cycles         int64
	InjectedPkts   int64
	DeliveredPkts  int64
	MeanLatency    float64 // router cycles
	P50Latency     float64 // median latency, router cycles
	P99Latency     float64 // tail latency, router cycles
	ThroughputPkts float64 // packets per cycle, network-wide
	AvgPowerW      float64
	NormalizedPwr  float64
	SavingsX       float64
}

// Snapshot reports results accumulated since BeginMeasurement.
func (n *Network) Snapshot() Results {
	now := n.Now()
	cycles := int64((now - n.measStart) / n.Cfg.RouterPeriod)
	var thr float64
	if cycles > 0 {
		thr = float64(n.delivered) / float64(cycles)
	}
	return Results{
		Cycles:         cycles,
		InjectedPkts:   n.injected,
		DeliveredPkts:  n.delivered,
		MeanLatency:    n.Lat.MeanCycles(),
		P50Latency:     n.Lat.Quantile(0.5),
		P99Latency:     n.Lat.Quantile(0.99),
		ThroughputPkts: thr,
		AvgPowerW:      n.Meter.AvgPowerW(now),
		NormalizedPwr:  n.Meter.Normalized(now),
		SavingsX:       n.Meter.Savings(now),
	}
}

// Launch attaches a traffic model from now until horizon. A recorded trace
// (*traffic.Trace) attaches through its resumable replay handle, which is
// what makes the network checkpointable; live models drive the scheduler
// directly through opaque event chains and cannot be captured.
func (n *Network) Launch(m traffic.Model, horizon sim.Time) {
	n.model, n.horizon = m, horizon
	if tr, ok := m.(*traffic.Trace); ok {
		if n.tiles != nil {
			// Each tile replays its own source-filtered projection of the
			// trace on its own scheduler; order and timestamps per source
			// are exactly the sequential replay's.
			for _, t := range n.tiles {
				t.replay = tr.LaunchReplayFiltered(&t.sched, horizon, t.inject, t.owns)
			}
			return
		}
		n.replay = tr.LaunchReplay(n.Sched, horizon, n.Inject)
		return
	}
	if n.tiles != nil {
		panic("network: tiled simulation requires a recorded trace workload (traffic.Capture)")
	}
	m.Launch(n.Sched, horizon, n.Inject)
}
