package sim

import "math"

// RNG is a small, fast, seedable pseudo-random generator
// (xoshiro256** seeded via splitmix64). Every stochastic component of the
// simulator draws from its own RNG stream so that runs are reproducible and
// component behaviour is independent of evaluation order.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed, per Blackman & Vigna's
	// recommendation for initializing xoshiro state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent child stream. The child is seeded from the
// parent's output so sub-components get decorrelated streams without the
// caller inventing seed arithmetic.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// State reports the generator's internal state word-for-word, and SetState
// restores it: together they let a checkpoint resume a stream mid-sequence
// without replaying draws.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state.
func (r *RNG) SetState(s [4]uint64) { r.s = s }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponential variate with the given mean (> 0). Used for
// Poisson task-session inter-arrival times.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a Pareto variate with shape beta and location a
// (CDF 1-(a/x)^beta, x >= a), the paper's Eq. 7. Used for ON/OFF period
// lengths in the self-similar traffic generator.
func (r *RNG) Pareto(beta, a float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return a / math.Pow(u, 1/beta)
}

// UniformRange returns a uniform value in [lo, hi).
func (r *RNG) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}
