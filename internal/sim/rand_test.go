package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(5.0)
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.1 {
		t.Errorf("exponential mean = %g, want ~5.0", mean)
	}
}

func TestParetoProperties(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	const beta, a = 1.4, 2.0
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Pareto(beta, a)
		if v < a {
			t.Fatalf("Pareto variate %g below location %g", v, a)
		}
		sum += v
	}
	mean := sum / n
	want := a * beta / (beta - 1) // 7.0
	// Pareto with shape 1.4 has infinite variance, so the sample mean
	// converges slowly; accept a generous band.
	if mean < want*0.8 || mean > want*1.6 {
		t.Errorf("Pareto mean = %g, want near %g", mean, want)
	}
}

func TestParetoTailHeavy(t *testing.T) {
	// The defining LRD property: P[X > x] = (a/x)^beta decays polynomially.
	// Check the empirical survival function at a few points.
	r := NewRNG(17)
	const n = 500000
	const beta, a = 1.2, 1.0
	exceed10, exceed100 := 0, 0
	for i := 0; i < n; i++ {
		v := r.Pareto(beta, a)
		if v > 10 {
			exceed10++
		}
		if v > 100 {
			exceed100++
		}
	}
	p10 := float64(exceed10) / n
	p100 := float64(exceed100) / n
	want10 := math.Pow(1.0/10, beta)
	want100 := math.Pow(1.0/100, beta)
	if math.Abs(p10-want10) > 0.2*want10 {
		t.Errorf("P[X>10] = %g, want ~%g", p10, want10)
	}
	if math.Abs(p100-want100) > 0.4*want100 {
		t.Errorf("P[X>100] = %g, want ~%g", p100, want100)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(19)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("value %d never drawn in 1000 tries", v)
		}
	}
}

func TestSplitIndependent(t *testing.T) {
	parent := NewRNG(23)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split children produced %d identical draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(29)
	for i := 0; i < 1000; i++ {
		v := r.UniformRange(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("UniformRange(2,5) = %g out of range", v)
		}
	}
}
