package sim

import "sort"

// Event is a closure scheduled to run at a fixed instant. Events scheduled
// for the same instant run in the order they were scheduled (FIFO within a
// timestamp), which keeps runs deterministic regardless of heap internals.
type Event struct {
	At  Time
	Run func()

	seq int64 // tie-breaker for same-instant events
}

// Scheduler is a discrete-event executive. The zero value is ready to use.
//
// The network advances mostly cycle-by-cycle (the routers are synchronous),
// but link arrivals, DVS transitions and task-session boundaries land at
// arbitrary picosecond instants; those are what the event queue carries.
//
// The queue is a 4-ary min-heap ordered by (At, seq) with events stored
// inline in the slice: steady-state push/pop moves Event values only — no
// per-event heap allocation, no pointer boxing (the slice grows amortized
// when the pending count reaches a new high-water mark).
type Scheduler struct {
	now    Time
	queue  []Event
	nextID int64
}

// eventLess orders events by (At, seq): time order, FIFO within an instant.
func eventLess(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

// heapArity balances sift depth against per-level comparisons. A 4-ary heap
// halves the tree depth of a binary heap, and discrete-event queues pop far
// more than they reorder, so fewer levels win.
const heapArity = 4

// push appends e and restores the heap invariant bottom-up.
func (s *Scheduler) push(e Event) {
	s.queue = append(s.queue, e)
	i := len(s.queue) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !eventLess(&s.queue[i], &s.queue[p]) {
			break
		}
		s.queue[i], s.queue[p] = s.queue[p], s.queue[i]
		i = p
	}
}

// pop removes and returns the minimum event.
func (s *Scheduler) pop() Event {
	top := s.queue[0]
	n := len(s.queue) - 1
	s.queue[0] = s.queue[n]
	s.queue[n] = Event{} // release the closure for the collector
	s.queue = s.queue[:n]
	i := 0
	for {
		min := i
		first := heapArity*i + 1
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if eventLess(&s.queue[c], &s.queue[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		s.queue[i], s.queue[min] = s.queue[min], s.queue[i]
		i = min
	}
	return top
}

// Now reports the current simulation instant.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at instant t and returns the event's sequence
// number (the FIFO tie-breaker within an instant). Subsystems that need to
// re-create their pending events after a checkpoint restore record the
// returned value; everyone else ignores it. Scheduling in the past is a
// programming error and panics, because silently reordering causality makes
// simulation bugs unfindable.
func (s *Scheduler) At(t Time, fn func()) int64 {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	s.nextID++
	s.push(Event{At: t, Run: fn, seq: s.nextID})
	return s.nextID
}

// AtSeq schedules fn at instant t under an explicit, previously issued
// sequence number. It exists solely for checkpoint restore: re-arming a
// captured pending event with its original (At, seq) key reproduces the
// exact dispatch order of the uninterrupted run. The sequence counter must
// already cover seq (see SetSeqCounter); handing out a fresh number here
// would desynchronize future At calls from the captured run.
func (s *Scheduler) AtSeq(t Time, seq int64, fn func()) {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	if seq <= 0 || seq > s.nextID {
		panic("sim: AtSeq with a sequence number the counter never issued")
	}
	s.push(Event{At: t, Run: fn, seq: seq})
}

// After schedules fn to run d picoseconds from now and returns the event's
// sequence number.
func (s *Scheduler) After(d Duration, fn func()) int64 { return s.At(s.now+d, fn) }

// SeqCounter reports the last sequence number issued by At/After.
func (s *Scheduler) SeqCounter() int64 { return s.nextID }

// SetSeqCounter restores the sequence counter on a fresh scheduler so a
// forked run issues the same sequence numbers the uninterrupted run would.
func (s *Scheduler) SetSeqCounter(v int64) {
	if v < s.nextID {
		panic("sim: sequence counter may not move backward")
	}
	s.nextID = v
}

// SetNow moves the clock of an idle scheduler (no queued events) to t, so a
// checkpoint restore can place a fresh scheduler at the capture instant
// before re-arming pending events via AtSeq.
func (s *Scheduler) SetNow(t Time) {
	if len(s.queue) != 0 {
		panic("sim: SetNow with events pending")
	}
	if t < s.now {
		panic("sim: clock may not move backward")
	}
	s.now = t
}

// PendingEvent identifies one queued event by its dispatch key. The closure
// itself is deliberately absent: checkpointing re-creates closures from
// their owning subsystem's state and uses these keys only to verify that
// every queued event is accounted for.
type PendingEvent struct {
	At  Time
	Seq int64
}

// PendingEvents reports the dispatch keys of all queued events in dispatch
// order.
func (s *Scheduler) PendingEvents() []PendingEvent {
	out := make([]PendingEvent, len(s.queue))
	for i, e := range s.queue {
		out[i] = PendingEvent{At: e.At, Seq: e.seq}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// PeekTime reports the instant of the earliest queued event, or Infinity if
// the queue is empty.
func (s *Scheduler) PeekTime() Time {
	if len(s.queue) == 0 {
		return Infinity
	}
	return s.queue[0].At
}

// RunUntil executes events in timestamp order until the queue is empty or
// the next event lies strictly beyond deadline. It returns the number of
// events executed and leaves Now at max(Now, deadline).
func (s *Scheduler) RunUntil(deadline Time) int {
	n := 0
	for len(s.queue) > 0 && s.queue[0].At <= deadline {
		ev := s.pop()
		s.now = ev.At
		ev.Run()
		n++
	}
	if s.now < deadline {
		s.now = deadline
	}
	return n
}

// Step executes the single earliest event, if any, and reports whether one
// ran.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := s.pop()
	s.now = ev.At
	ev.Run()
	return true
}
