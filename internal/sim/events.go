package sim

// Event is a closure scheduled to run at a fixed instant. Events scheduled
// for the same instant run in the order they were scheduled (FIFO within a
// timestamp), which keeps runs deterministic regardless of heap internals.
type Event struct {
	At  Time
	Run func()

	seq int64 // tie-breaker for same-instant events
}

// Scheduler is a discrete-event executive. The zero value is ready to use.
//
// The network advances mostly cycle-by-cycle (the routers are synchronous),
// but link arrivals, DVS transitions and task-session boundaries land at
// arbitrary picosecond instants; those are what the event queue carries.
//
// The queue is a 4-ary min-heap ordered by (At, seq) with events stored
// inline in the slice: steady-state push/pop moves Event values only — no
// per-event heap allocation, no pointer boxing (the slice grows amortized
// when the pending count reaches a new high-water mark).
type Scheduler struct {
	now    Time
	queue  []Event
	nextID int64
}

// eventLess orders events by (At, seq): time order, FIFO within an instant.
func eventLess(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

// heapArity balances sift depth against per-level comparisons. A 4-ary heap
// halves the tree depth of a binary heap, and discrete-event queues pop far
// more than they reorder, so fewer levels win.
const heapArity = 4

// push appends e and restores the heap invariant bottom-up.
func (s *Scheduler) push(e Event) {
	s.queue = append(s.queue, e)
	i := len(s.queue) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !eventLess(&s.queue[i], &s.queue[p]) {
			break
		}
		s.queue[i], s.queue[p] = s.queue[p], s.queue[i]
		i = p
	}
}

// pop removes and returns the minimum event.
func (s *Scheduler) pop() Event {
	top := s.queue[0]
	n := len(s.queue) - 1
	s.queue[0] = s.queue[n]
	s.queue[n] = Event{} // release the closure for the collector
	s.queue = s.queue[:n]
	i := 0
	for {
		min := i
		first := heapArity*i + 1
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if eventLess(&s.queue[c], &s.queue[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		s.queue[i], s.queue[min] = s.queue[min], s.queue[i]
		i = min
	}
	return top
}

// Now reports the current simulation instant.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at instant t. Scheduling in the past is a
// programming error and panics, because silently reordering causality makes
// simulation bugs unfindable.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	s.nextID++
	s.push(Event{At: t, Run: fn, seq: s.nextID})
}

// After schedules fn to run d picoseconds from now.
func (s *Scheduler) After(d Duration, fn func()) { s.At(s.now+d, fn) }

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// PeekTime reports the instant of the earliest queued event, or Infinity if
// the queue is empty.
func (s *Scheduler) PeekTime() Time {
	if len(s.queue) == 0 {
		return Infinity
	}
	return s.queue[0].At
}

// RunUntil executes events in timestamp order until the queue is empty or
// the next event lies strictly beyond deadline. It returns the number of
// events executed and leaves Now at max(Now, deadline).
func (s *Scheduler) RunUntil(deadline Time) int {
	n := 0
	for len(s.queue) > 0 && s.queue[0].At <= deadline {
		ev := s.pop()
		s.now = ev.At
		ev.Run()
		n++
	}
	if s.now < deadline {
		s.now = deadline
	}
	return n
}

// Step executes the single earliest event, if any, and reports whether one
// ran.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := s.pop()
	s.now = ev.At
	ev.Run()
	return true
}
