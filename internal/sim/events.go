package sim

import "container/heap"

// Event is a closure scheduled to run at a fixed instant. Events scheduled
// for the same instant run in the order they were scheduled (FIFO within a
// timestamp), which keeps runs deterministic regardless of heap internals.
type Event struct {
	At  Time
	Run func()

	seq int64 // tie-breaker for same-instant events
}

// eventHeap orders events by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Scheduler is a discrete-event executive. The zero value is ready to use.
//
// The network advances mostly cycle-by-cycle (the routers are synchronous),
// but link arrivals, DVS transitions and task-session boundaries land at
// arbitrary picosecond instants; those are what the event heap carries.
type Scheduler struct {
	now    Time
	heap   eventHeap
	nextID int64
}

// Now reports the current simulation instant.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at instant t. Scheduling in the past is a
// programming error and panics, because silently reordering causality makes
// simulation bugs unfindable.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	s.nextID++
	heap.Push(&s.heap, &Event{At: t, Run: fn, seq: s.nextID})
}

// After schedules fn to run d picoseconds from now.
func (s *Scheduler) After(d Duration, fn func()) { s.At(s.now+d, fn) }

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.heap) }

// PeekTime reports the instant of the earliest queued event, or Infinity if
// the queue is empty.
func (s *Scheduler) PeekTime() Time {
	if len(s.heap) == 0 {
		return Infinity
	}
	return s.heap[0].At
}

// RunUntil executes events in timestamp order until the queue is empty or
// the next event lies strictly beyond deadline. It returns the number of
// events executed and leaves Now at max(Now, deadline).
func (s *Scheduler) RunUntil(deadline Time) int {
	n := 0
	for len(s.heap) > 0 && s.heap[0].At <= deadline {
		ev := heap.Pop(&s.heap).(*Event)
		s.now = ev.At
		ev.Run()
		n++
	}
	if s.now < deadline {
		s.now = deadline
	}
	return n
}

// Step executes the single earliest event, if any, and reports whether one
// ran.
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	ev := heap.Pop(&s.heap).(*Event)
	s.now = ev.At
	ev.Run()
	return true
}
