package sim

import "testing"

func TestClockCycleMath(t *testing.T) {
	c := NewClock(1000, 0) // 1 GHz
	tests := []struct {
		at    Time
		cycle int64
	}{
		{0, 0}, {1, 0}, {999, 0}, {1000, 1}, {1001, 1}, {123456, 123},
	}
	for _, tt := range tests {
		if got := c.CycleAt(tt.at); got != tt.cycle {
			t.Errorf("CycleAt(%d) = %d, want %d", tt.at, got, tt.cycle)
		}
	}
	if got := c.TimeOf(42); got != 42000 {
		t.Errorf("TimeOf(42) = %d, want 42000", got)
	}
}

func TestClockEdges(t *testing.T) {
	c := NewClock(8000, 500) // 125 MHz starting at 500 ps
	if got := c.NextEdge(500); got != 8500 {
		t.Errorf("NextEdge(500) = %d, want 8500", got)
	}
	if got := c.NextEdge(0); got != 500 {
		t.Errorf("NextEdge(0) = %d, want 500", got)
	}
	if got := c.AlignUp(500); got != 500 {
		t.Errorf("AlignUp(500) = %d, want 500", got)
	}
	if got := c.AlignUp(501); got != 8500 {
		t.Errorf("AlignUp(501) = %d, want 8500", got)
	}
	if got := c.AlignUp(8500); got != 8500 {
		t.Errorf("AlignUp(8500) = %d, want 8500", got)
	}
}

func TestClockFreq(t *testing.T) {
	c := NewClock(Nanosecond, 0)
	if f := c.FreqHz(); f != 1e9 {
		t.Errorf("FreqHz = %g, want 1e9", f)
	}
}

func TestNewClockPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero period")
		}
	}()
	NewClock(0, 0)
}

func TestTimeString(t *testing.T) {
	tests := []struct {
		t    Time
		want string
	}{
		{500, "500ps"},
		{1500, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int64(tt.t), got, tt.want)
		}
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	orig := 123456789 * Picosecond
	if got := FromSeconds(orig.Seconds()); got != orig {
		t.Errorf("round trip = %d, want %d", got, orig)
	}
}
