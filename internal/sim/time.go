// Package sim provides the deterministic discrete-event simulation kernel
// shared by every subsystem of the reproduction: a picosecond time base,
// per-domain clocks, a binary-heap event queue, and a seeded random number
// generator so that every experiment is exactly reproducible.
package sim

import "fmt"

// Time is an absolute simulation instant in integer picoseconds.
//
// A picosecond base lets a 1 GHz router clock (1000 ps) and link clocks at
// arbitrary DVS frequencies (for example 8000 ps at 125 MHz) coexist without
// rounding drift over the multi-million-cycle runs the paper performs.
type Time int64

// Handy time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// Infinity is a sentinel far beyond any reachable simulation instant.
const Infinity Time = 1<<63 - 1

// Duration is a span of simulation time in picoseconds.
type Duration = Time

func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) * 1e-12 }

// FromSeconds converts floating-point seconds to a Time, rounding to the
// nearest picosecond.
func FromSeconds(s float64) Time { return Time(s*1e12 + 0.5) }

// Clock converts between an abstract cycle count and absolute time for one
// clock domain. The router core and every DVS link each own a Clock; link
// clocks are re-created when the link changes frequency level.
type Clock struct {
	period Time // picoseconds per cycle
	origin Time // absolute time of cycle 0
}

// NewClock returns a clock with the given period whose cycle 0 begins at
// origin. It panics if period is not positive: a zero-period clock would
// collapse all of simulated time onto one instant.
func NewClock(period, origin Time) Clock {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive clock period %d", period))
	}
	return Clock{period: period, origin: origin}
}

// Period reports the clock period in picoseconds.
func (c Clock) Period() Time { return c.period }

// FreqHz reports the clock frequency in hertz.
func (c Clock) FreqHz() float64 { return 1e12 / float64(c.period) }

// CycleAt reports the index of the cycle containing instant t. Instants
// before the clock origin belong to cycle 0.
func (c Clock) CycleAt(t Time) int64 {
	if t < c.origin {
		return 0
	}
	return int64((t - c.origin) / c.period)
}

// TimeOf reports the absolute start time of the given cycle.
func (c Clock) TimeOf(cycle int64) Time {
	return c.origin + Time(cycle)*c.period
}

// NextEdge reports the first clock edge strictly after t.
func (c Clock) NextEdge(t Time) Time {
	if t < c.origin {
		return c.origin
	}
	n := (t-c.origin)/c.period + 1
	return c.origin + n*c.period
}

// AlignUp reports the first clock edge at or after t.
func (c Clock) AlignUp(t Time) Time {
	if t <= c.origin {
		return c.origin
	}
	n := (t - c.origin + c.period - 1) / c.period
	return c.origin + n*c.period
}
