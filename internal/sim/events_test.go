package sim

import "testing"

func TestSchedulerOrdersByTime(t *testing.T) {
	var s Scheduler
	var got []int
	s.At(300, func() { got = append(got, 3) })
	s.At(100, func() { got = append(got, 1) })
	s.At(200, func() { got = append(got, 2) })
	s.RunUntil(1000)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 1000 {
		t.Errorf("Now = %d, want 1000", s.Now())
	}
}

func TestSchedulerFIFOWithinInstant(t *testing.T) {
	var s Scheduler
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(500, func() { got = append(got, i) })
	}
	s.RunUntil(500)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant order not FIFO: %v", got)
		}
	}
}

func TestSchedulerRunUntilStopsAtDeadline(t *testing.T) {
	var s Scheduler
	ran := false
	s.At(1000, func() { ran = true })
	n := s.RunUntil(999)
	if n != 0 || ran {
		t.Fatalf("event beyond deadline ran (n=%d, ran=%v)", n, ran)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.RunUntil(1000)
	if !ran {
		t.Error("event at deadline did not run")
	}
}

func TestSchedulerEventsCanScheduleEvents(t *testing.T) {
	var s Scheduler
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			s.After(10, chain)
		}
	}
	s.At(0, chain)
	s.RunUntil(100)
	if count != 5 {
		t.Errorf("chain ran %d times, want 5", count)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	var s Scheduler
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(50, func() {})
	})
	s.RunUntil(200)
}

func TestSchedulerPeekAndStep(t *testing.T) {
	var s Scheduler
	if s.PeekTime() != Infinity {
		t.Error("empty PeekTime should be Infinity")
	}
	s.At(42, func() {})
	if s.PeekTime() != 42 {
		t.Errorf("PeekTime = %d, want 42", s.PeekTime())
	}
	if !s.Step() {
		t.Error("Step should run the event")
	}
	if s.Step() {
		t.Error("Step on empty queue should report false")
	}
}

// TestSchedulerHeapStress drives the 4-ary heap through adversarial
// push/pop interleavings — duplicate timestamps, descending inserts, bulk
// drains — and checks the dequeue order is the fully sorted (At, seq)
// order.
func TestSchedulerHeapStress(t *testing.T) {
	rng := NewRNG(7)
	var s Scheduler
	type rec struct {
		at  Time
		seq int
	}
	var got []rec
	pending := 0
	seq := 0
	for round := 0; round < 200; round++ {
		// A burst of inserts, many sharing instants.
		burst := 1 + rng.Intn(8)
		for b := 0; b < burst; b++ {
			at := s.Now() + Time(rng.Intn(5)) // heavy timestamp collisions
			seq++
			mySeq := seq
			s.At(at, func() { got = append(got, rec{at, mySeq}) })
			pending++
		}
		// Drain a random prefix one Step at a time.
		drain := rng.Intn(pending + 1)
		for d := 0; d < drain; d++ {
			if !s.Step() {
				t.Fatal("Step reported empty with events pending")
			}
			pending--
		}
	}
	s.RunUntil(s.Now() + Infinity/2)
	if len(got) != seq {
		t.Fatalf("executed %d events, scheduled %d", len(got), seq)
	}
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at ||
			(got[i].at == got[i-1].at && got[i].seq < got[i-1].seq) {
			t.Fatalf("order violated at %d: %v after %v", i, got[i], got[i-1])
		}
	}
}

// BenchmarkSchedulerPushPop measures the steady-state cost of one
// schedule+dispatch pair with ~1k events pending: this is the simulation
// kernel's hot path. The inline 4-ary heap must not allocate per event.
func BenchmarkSchedulerPushPop(b *testing.B) {
	var s Scheduler
	fn := func() {}
	for i := 0; i < 1024; i++ {
		s.At(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+Time(i%64)+1, fn)
		s.Step()
	}
}

// TestSchedulerOrderProperty: random interleaved schedules always execute
// in nondecreasing time order, FIFO within an instant.
func TestSchedulerOrderProperty(t *testing.T) {
	rng := NewRNG(31)
	var s Scheduler
	type rec struct {
		at  Time
		seq int
	}
	var got []rec
	seq := 0
	for i := 0; i < 500; i++ {
		at := s.Now() + Time(rng.Intn(100))
		seq++
		mySeq := seq
		s.At(at, func() { got = append(got, rec{at, mySeq}) })
		if rng.Intn(3) == 0 {
			s.RunUntil(s.Now() + Time(rng.Intn(50)))
		}
	}
	s.RunUntil(s.Now() + 1000)
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("time order violated at %d: %v after %v", i, got[i], got[i-1])
		}
		if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
			t.Fatalf("FIFO violated at %d", i)
		}
	}
	if len(got) != 500 {
		t.Errorf("executed %d events, want 500", len(got))
	}
}
