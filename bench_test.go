// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact, on the quick cycle budget), the ablation
// studies from DESIGN.md, and micro-benchmarks of each substrate.
//
// Macro benchmarks use a fresh seed per iteration so the experiment
// harness's memoization cannot shortcut repeated iterations; flagship
// benchmarks attach the reproduced headline metrics via b.ReportMetric.
package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/flow"
	"repro/internal/link"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// benchExp runs one experiment per iteration with per-iteration seeds.
func benchExp(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(id, exp.Options{Quick: true, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper artifact -----------------------------------

func BenchmarkFig03LinkUtilization(b *testing.B)     { benchExp(b, "fig3") }
func BenchmarkFig04BufferUtilization(b *testing.B)   { benchExp(b, "fig4") }
func BenchmarkFig05BufferAge(b *testing.B)           { benchExp(b, "fig5") }
func BenchmarkFig07PowerBreakdown(b *testing.B)      { benchExp(b, "fig7") }
func BenchmarkFig08SpatialVariance(b *testing.B)     { benchExp(b, "fig8") }
func BenchmarkFig09TemporalVariance(b *testing.B)    { benchExp(b, "fig9") }
func BenchmarkFig12Congestion(b *testing.B)          { benchExp(b, "fig12") }
func BenchmarkFig13ThresholdLatency(b *testing.B)    { benchExp(b, "fig13") }
func BenchmarkFig14ThresholdPower(b *testing.B)      { benchExp(b, "fig14") }
func BenchmarkFig15ParetoCurve(b *testing.B)         { benchExp(b, "fig15") }
func BenchmarkFig16VoltageTransition(b *testing.B)   { benchExp(b, "fig16") }
func BenchmarkFig17FrequencyTransition(b *testing.B) { benchExp(b, "fig17") }
func BenchmarkTable1Parameters(b *testing.B)         { benchExp(b, "tab1") }
func BenchmarkTable2Thresholds(b *testing.B)         { benchExp(b, "tab2") }

// BenchmarkFig10DVS100Tasks regenerates the headline figure and reports
// the reproduced metrics of its central operating point.
func BenchmarkFig10DVS100Tasks(b *testing.B) {
	var last network.Results
	for i := 0; i < b.N; i++ {
		o := exp.Options{Quick: true, Seed: uint64(i + 1)}
		if _, err := exp.Run("fig10", o); err != nil {
			b.Fatal(err)
		}
		last = exp.Point(2.0, network.PolicyHistory, o)
	}
	b.ReportMetric(last.SavingsX, "savingsX")
	b.ReportMetric(last.MeanLatency, "latency-cycles")
}

func BenchmarkFig11DVS50Tasks(b *testing.B) { benchExp(b, "fig11") }

// BenchmarkHeadlineSavings reproduces the abstract's comparison table.
func BenchmarkHeadlineSavings(b *testing.B) {
	var maxSav float64
	for i := 0; i < b.N; i++ {
		o := exp.Options{Quick: true, Seed: uint64(i + 1)}
		if _, err := exp.Run("headline", o); err != nil {
			b.Fatal(err)
		}
		if s := exp.Point(0.5, network.PolicyHistory, o).SavingsX; s > maxSav {
			maxSav = s
		}
	}
	b.ReportMetric(maxSav, "max-savingsX")
}

// --- Ablation benches (design choices DESIGN.md calls out) --------------

func BenchmarkAblationNoBufferLitmus(b *testing.B)     { benchExp(b, "abl-litmus") }
func BenchmarkAblationWindowSize(b *testing.B)         { benchExp(b, "abl-window") }
func BenchmarkAblationWeight(b *testing.B)             { benchExp(b, "abl-weight") }
func BenchmarkAblationAdaptiveThresholds(b *testing.B) { benchExp(b, "abl-adaptive") }
func BenchmarkAblationRouting(b *testing.B)            { benchExp(b, "abl-routing") }
func BenchmarkAblationLevels(b *testing.B)             { benchExp(b, "abl-levels") }
func BenchmarkAblationTopology(b *testing.B)           { benchExp(b, "abl-topology") }
func BenchmarkAblationRouterPower(b *testing.B)        { benchExp(b, "abl-routerpower") }
func BenchmarkSaturationThroughput(b *testing.B)       { benchExp(b, "saturation") }
func BenchmarkOrionCrossCheck(b *testing.B)            { benchExp(b, "orion") }
func BenchmarkNoiseMargin(b *testing.B)                { benchExp(b, "noise") }

// --- Parallel harness benchmarks -----------------------------------------

// benchFigures regenerates a representative artifact pair (the headline
// DVS sweep and a threshold grid — 30 distinct simulation points) from a
// cold cache at a fixed parallelism level.
func benchFigures(b *testing.B, jobs int) {
	b.Helper()
	exp.SetParallelism(jobs)
	defer exp.SetParallelism(0)
	for i := 0; i < b.N; i++ {
		exp.ResetCaches()
		o := exp.Options{Quick: true, Seed: uint64(i + 1)}
		for _, id := range []string{"fig10", "fig13"} {
			if _, err := exp.Run(id, o); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFiguresSequential pins the experiment executor to one worker:
// the pre-parallelism baseline.
func BenchmarkFiguresSequential(b *testing.B) { benchFigures(b, 1) }

// BenchmarkFiguresParallel lets the executor use every core; compare
// against BenchmarkFiguresSequential to see the worker-pool speedup (on a
// multi-core machine it approaches min(GOMAXPROCS, points) before memory
// bandwidth intervenes).
func BenchmarkFiguresParallel(b *testing.B) { benchFigures(b, 0) }

// BenchmarkRunAllColdCache measures a fig10 regeneration on the tiny test
// budget with every point missing the persistent run cache (a fresh cache
// generation per iteration), i.e. the simulate-and-store path.
func BenchmarkRunAllColdCache(b *testing.B) { bench.FiguresRunAll(b, false) }

// BenchmarkRunAllWarmCache is the same regeneration replayed entirely from
// disk; the cold/warm ratio is the headline number of the result cache.
func BenchmarkRunAllWarmCache(b *testing.B) { bench.FiguresRunAll(b, true) }

// BenchmarkSweepStraight runs the fig13 threshold sweep with every point
// paying for its own warmup — the pre-checkpoint baseline.
func BenchmarkSweepStraight(b *testing.B) { bench.Sweep(b, true) }

// BenchmarkSweepCheckpointed is the same sweep with the six settings at
// each rate forking one shared policy-frozen warmup; the ratio against
// BenchmarkSweepStraight is the headline number of the checkpoint
// subsystem (cmd/benchjson records both in BENCH_pr7.json).
func BenchmarkSweepCheckpointed(b *testing.B) { bench.Sweep(b, false) }

// --- Trace store benchmarks ----------------------------------------------

// BenchmarkTraceCaptureCold measures the live path a point pays without
// the trace store: build the two-level model and capture its arrivals.
func BenchmarkTraceCaptureCold(b *testing.B) { bench.TraceCaptureCold(b) }

// BenchmarkTraceDecodeWarm measures the store-backed replacement — decode,
// validate and replay the same workload's compressed encoding; the ratio
// against BenchmarkTraceCaptureCold is the headline number of the trace
// store (cmd/benchjson records it in BENCH_pr9.json).
func BenchmarkTraceDecodeWarm(b *testing.B) { bench.TraceDecodeWarm(b) }

// BenchmarkStoreOpenIndexed opens a 1000-entry cache directory through its
// index sidecar: one sidecar read, zero per-entry stats.
func BenchmarkStoreOpenIndexed(b *testing.B) { bench.StoreOpenIndexed(b, 1000) }

// --- Activity-driven core benchmarks -------------------------------------

// BenchmarkStepLowLoad measures router-cycle throughput at a near-idle
// operating point (rate 0.05), where the activity-driven core elides almost
// every router tick. Compare against BenchmarkStepLowLoadNoSkip for the
// speedup; cmd/benchjson records both in BENCH_pr4.json.
func BenchmarkStepLowLoad(b *testing.B) { bench.Step(b, bench.LowLoadRate, false) }

// BenchmarkStepLowLoadNoSkip is the same point on the always-tick path.
func BenchmarkStepLowLoadNoSkip(b *testing.B) { bench.Step(b, bench.LowLoadRate, true) }

// BenchmarkStepSaturation measures the saturated platform (rate 4.0), where
// the active list is dense and its bookkeeping must cost (almost) nothing.
func BenchmarkStepSaturation(b *testing.B) { bench.Step(b, bench.SaturationRate, false) }

// BenchmarkStepSaturationNoSkip is the saturated always-tick baseline.
func BenchmarkStepSaturationNoSkip(b *testing.B) { bench.Step(b, bench.SaturationRate, true) }

// --- Tile-parallel core benchmarks ---------------------------------------

// BenchmarkStepTiled1 runs the saturated platform on the tiled engine
// degenerated to a single tile: its delta against BenchmarkStepSaturation
// is the pure bookkeeping overhead of the tile machinery (bounded at 5% by
// the acceptance criteria; cmd/benchjson records it in BENCH_pr8.json).
func BenchmarkStepTiled1(b *testing.B) { bench.StepTiled(b, 1) }

// BenchmarkStepTiled2 adds cross-tile message queues between two tiles,
// advanced through extracted-lookahead windows with merge elision; output
// stays byte-identical. Reports barriers/cycle and barrier-elision-frac.
func BenchmarkStepTiled2(b *testing.B) { bench.StepTiled(b, 2) }

// BenchmarkStepTiled4 is the four-tile point: maximum cross-tile traffic
// on the 8x8 platform's row blocks.
func BenchmarkStepTiled4(b *testing.B) { bench.StepTiled(b, 4) }

// BenchmarkStepTiled2LowLoad is the two-tile near-idle point, where sparse
// cross-tile traffic lets elision skip most window merges.
func BenchmarkStepTiled2LowLoad(b *testing.B) { bench.StepTiledRate(b, bench.LowLoadRate, 2) }

// --- Substrate micro-benchmarks ------------------------------------------

// BenchmarkNetworkStep8x8 measures the cost of one router cycle of the
// paper's full 8x8 platform under load.
func BenchmarkNetworkStep8x8(b *testing.B) {
	cfg := network.NewConfig()
	n, err := network.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := traffic.NewTwoLevelParams(1.5)
	m, err := traffic.NewTwoLevel(p, n.Topo)
	if err != nil {
		b.Fatal(err)
	}
	n.Launch(m, sim.Time(1e12))
	n.Run(5000) // prime the pipelines
	b.ResetTimer()
	n.Run(int64(b.N))
}

// BenchmarkRouterTick measures one allocation cycle of a loaded router.
func BenchmarkRouterTick(b *testing.B) {
	cfg := router.NewConfig(5)
	r, err := router.New(0, cfg)
	if err != nil {
		b.Fatal(err)
	}
	r.RouteFn = func(_ *flow.Packet, buf []routing.MaskCandidate) []routing.MaskCandidate {
		return append(buf, routing.MaskCandidate{Port: 2, VCMask: 0b11})
	}
	pkt := flow.NewPacket(1, 0, 1, 0, -1)
	refill := func(now sim.Time) {
		for _, f := range flow.NewPacketFlits(pkt) {
			f.VC = 0
			r.Inputs[1].Arrive(f, now)
		}
	}
	refill(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := sim.Time(i) * sim.Nanosecond
		r.Tick(now, sim.Nanosecond)
		if r.Inputs[1].Occupied() == 0 {
			b.StopTimer()
			for _, ov := range []int{0, 1} {
				for r.Outputs[2].OccupiedSlots() > 0 {
					r.Outputs[2].ReturnCredit(ov, now)
				}
			}
			refill(now)
			b.StartTimer()
		}
	}
}

// BenchmarkLinkSend measures flit serialization bookkeeping.
func BenchmarkLinkSend(b *testing.B) {
	table := link.MustTable(link.NewParams())
	var sched sim.Scheduler
	l := link.NewDVSLink(table, &sched, table.Top())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Send(sim.Time(i) * sim.Nanosecond)
	}
}

// BenchmarkLinkTransition measures a full down-and-up DVS transition pair.
func BenchmarkLinkTransition(b *testing.B) {
	table := link.MustTable(link.NewParams())
	var sched sim.Scheduler
	l := link.NewDVSLink(table, &sched, table.Top())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Walk down the table and bounce back up, one completed
		// transition per iteration.
		l.RequestStep(sched.Now(), l.Level() == 0)
		sched.RunUntil(sched.Now() + 15*sim.Microsecond)
	}
}

// BenchmarkPolicyDecide measures one history window of Algorithm 1.
func BenchmarkPolicyDecide(b *testing.B) {
	h, err := core.NewHistoryDVS(core.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Decide(core.Measures{LinkUtil: float64(i%100) / 100, BufUtil: float64(i%50) / 100})
	}
}

// BenchmarkPolicyDecideHW measures the fixed-point hardware model.
func BenchmarkPolicyDecideHW(b *testing.B) {
	h := &core.HWHistoryDVS{P: core.DefaultParams()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Decide(core.Measures{LinkUtil: float64(i%100) / 100, BufUtil: float64(i%50) / 100})
	}
}

// BenchmarkTwoLevelGeneration measures workload generation alone.
func BenchmarkTwoLevelGeneration(b *testing.B) {
	topo := topology.NewMesh2D(8)
	p := traffic.NewTwoLevelParams(1.0)
	m, err := traffic.NewTwoLevel(p, topo)
	if err != nil {
		b.Fatal(err)
	}
	var sched sim.Scheduler
	count := 0
	m.Launch(&sched, sim.Time(1e12), func(int, int, sim.Time, int64) { count++ })
	b.ResetTimer()
	start := sched.Now()
	sched.RunUntil(start + sim.Time(b.N)*sim.Nanosecond)
	if count == 0 {
		b.Fatal("no injections generated")
	}
}

// BenchmarkDORRoute measures one dimension-order route computation.
func BenchmarkDORRoute(b *testing.B) {
	topo := topology.NewMesh2D(8)
	alg := routing.DimensionOrder{}
	st := routing.NewState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Route(topo, i%64, (i+37)%64, 2, st)
	}
}

// BenchmarkAdaptiveRoute measures one minimal-adaptive route computation.
func BenchmarkAdaptiveRoute(b *testing.B) {
	topo := topology.NewMesh2D(8)
	alg := routing.MinimalAdaptive{}
	st := routing.NewState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Route(topo, i%64, (i+37)%64, 2, st)
	}
}
