// Command figures regenerates the paper's tables and figures as text
// tables: one experiment per artifact of the evaluation section.
//
//	figures -list                 # what can be regenerated
//	figures -exp fig10            # latency & power vs rate, 100 tasks
//	figures -exp all -quick       # smoke-run everything
//	figures -exp fig10 -full      # the paper's 10M-cycle budget
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/noc"
)

func main() {
	var (
		expID = flag.String("exp", "", "experiment id (see -list), comma-separated ids, or 'all'")
		list  = flag.Bool("list", false, "list experiment ids")
		quick = flag.Bool("quick", false, "shrink cycle budgets for a fast smoke run")
		full  = flag.Bool("full", false, "use the paper's 10M-cycle budget")
		seed  = flag.Uint64("seed", 1, "random seed family")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("experiments:")
		for _, line := range noc.Experiments() {
			fmt.Println("  " + line)
		}
		if *expID == "" && !*list {
			os.Exit(2)
		}
		return
	}

	o := noc.ExperimentOptions{Quick: *quick, Full: *full, Seed: *seed}
	var ids []string
	switch {
	case *expID == "all":
		for _, line := range noc.Experiments() {
			ids = append(ids, strings.Fields(line)[0])
		}
	default:
		ids = strings.Split(*expID, ",")
	}
	for _, id := range ids {
		if len(ids) > 1 {
			fmt.Printf("### %s\n\n", id)
		}
		runFn := noc.RunExperiment
		if *csv {
			runFn = noc.RunExperimentCSV
		}
		if err := runFn(id, o, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
}
