// Command figures regenerates the paper's tables and figures as text
// tables: one experiment per artifact of the evaluation section.
//
//	figures -list                 # what can be regenerated
//	figures -exp fig10            # latency & power vs rate, 100 tasks
//	figures -exp all -quick       # smoke-run everything
//	figures -exp all -quick -j 8  # same, 8 simulations in parallel
//	figures -exp fig10 -full      # the paper's 10M-cycle budget
//
// Simulation points fan out across -j worker goroutines (default
// GOMAXPROCS). Output is bit-for-bit identical at every -j: each point is
// independently seeded and tables assemble in fixed order.
//
// Finished results persist in a content-addressed run cache (default: the
// user cache directory), so an unchanged rerun replays stored results
// byte-identically instead of re-simulating; entries invalidate on code
// revision or parameter change. Caching therefore requires a VCS-stamped
// binary (`go build ./cmd/figures`): under `go run` no revision is
// embedded and the cache disables itself with a note on stderr.
// -no-cache recomputes everything; -cachestats reports hit/miss counters
// on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/noc"
)

func main() {
	var (
		expID      = flag.String("exp", "", "experiment id (see -list), comma-separated ids, or 'all'")
		list       = flag.Bool("list", false, "list experiment ids")
		quick      = flag.Bool("quick", false, "shrink cycle budgets for a fast smoke run")
		full       = flag.Bool("full", false, "use the paper's 10M-cycle budget")
		seed       = flag.Uint64("seed", 1, "random seed family")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		auditFlag  = flag.Bool("audit", false, "run every simulation under the runtime invariant checker (slower, same output)")
		noskip     = flag.Bool("noskip", false, "disable the activity-driven simulation core (slower, same output)")
		ckpt       = flag.Bool("checkpoint", true, "share one policy-frozen warmup per (seed, rate) across policy variants via checkpoint/fork (same output)")
		noCkpt     = flag.Bool("no-checkpoint", false, "every simulation point pays for its own warmup (slower, same output)")
		jobs       = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		tiles      = flag.Int("tiles", 0, "tile-parallel blocks per simulation (0/1 = single scheduler; output is byte-identical at every tile count)")
		prefetch   = flag.Bool("prefetch", false, "report which run-cache keys the selected experiments would hit or miss; no simulations run")
		cacheDir   = flag.String("cache-dir", "", "persistent run cache directory (default: user cache dir)")
		noCache    = flag.Bool("no-cache", false, "disable the persistent run cache; recompute everything")
		noTraceStr = flag.Bool("no-trace-store", false, "disable the persistent arrival-trace store; re-capture workloads live (same output)")
		cacheStats = flag.Bool("cachestats", false, "print run-cache counters to stderr on exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("experiments:")
		for _, line := range noc.Experiments() {
			fmt.Println("  " + line)
		}
		if *expID == "" && !*list {
			os.Exit(2)
		}
		return
	}

	noc.SetExperimentParallelism(*jobs)

	if !*noCache {
		if err := noc.EnableRunCache(*cacheDir, 0); err != nil {
			// A cache that won't open costs speed, not correctness.
			fmt.Fprintln(os.Stderr, "figures: run cache disabled:", err)
		}
	}
	// The trace store is independent of -no-cache: traces decode to the
	// exact captured arrival sequence, so results are byte-identical with
	// the store on or off — a -no-cache recompute still replays warm
	// traces instead of re-simulating every workload.
	if !*noTraceStr {
		if err := noc.EnableTraceStore(*cacheDir, 0); err != nil {
			fmt.Fprintln(os.Stderr, "figures: trace store disabled:", err)
		}
	}
	if *cacheStats {
		defer printCacheStats()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	o := noc.ExperimentOptions{
		Quick: *quick, Full: *full, Seed: *seed, Audit: *auditFlag, NoSkip: *noskip,
		NoCheckpoint: *noCkpt || !*ckpt, Tiles: *tiles,
	}
	var ids []string
	switch {
	case *expID == "all":
		for _, line := range noc.Experiments() {
			ids = append(ids, strings.Fields(line)[0])
		}
	default:
		ids = strings.Split(*expID, ",")
	}

	if *prefetch {
		entries, err := noc.PrefetchExperiments(ids, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		// One section per store: result keys (the run cache), then trace
		// keys (the arrival-trace store). Entries arrive sorted by kind
		// then key, so each section prints contiguously with its own
		// summary line — CI asserts on both.
		section := func(kind, label string) {
			n, hits := 0, 0
			for _, e := range entries {
				if e.Kind != kind {
					continue
				}
				n++
				status := "MISS"
				if e.Hit {
					status = "HIT "
					hits++
				}
				fmt.Printf("%s %s\n", status, e.Key)
			}
			fmt.Printf("%s: %d keys, %d hit, %d miss\n", label, n, hits, n-hits)
		}
		section("result", "prefetch")
		section("trace", "prefetch traces")
		return
	}

	rendered, err := noc.RunExperiments(ids, o, *csv)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
	for i, id := range ids {
		if len(ids) > 1 {
			fmt.Printf("### %s\n\n", id)
		}
		fmt.Print(rendered[i])
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
		}
		f.Close()
	}
}

// printCacheStats emits the run-cache counters in a stable, greppable
// one-line format (CI asserts on hits/misses after a warm rerun).
func printCacheStats() {
	s := noc.RunCacheStats()
	fmt.Fprintf(os.Stderr,
		"runcache: hits=%d misses=%d puts=%d corrupt=%d evictions=%d read=%dB written=%dB hit-rate=%.2f\n",
		s.Hits, s.Misses, s.Puts, s.CorruptDropped, s.Evictions,
		s.BytesRead, s.BytesWritten, s.HitRate())
	t := noc.TraceStoreStats()
	fmt.Fprintf(os.Stderr,
		"tracestore: hits=%d misses=%d puts=%d corrupt=%d evictions=%d read=%dB written=%dB hit-rate=%.2f\n",
		t.Hits, t.Misses, t.Puts, t.CorruptDropped, t.Evictions,
		t.BytesRead, t.BytesWritten, t.HitRate())
	// Only tiled recomputes plan windows, so this line appears exactly when
	// -tiles > 1 did real simulation work (cache hits contribute nothing).
	if tb := noc.ExperimentTileBarrierStats(); tb.Windows > 0 {
		fmt.Fprintf(os.Stderr,
			"tilebarriers: windows=%d merges=%d elided=%d elision-frac=%.2f\n",
			tb.Windows, tb.Barriers, tb.Elided, float64(tb.Elided)/float64(tb.Windows))
	}
}
