// Command benchjson runs the repository's benchmark trajectory — the
// end-to-end Step benchmarks at low load and saturation (with the
// activity-driven core on and off) plus the scheduler and packet-alloc
// micro-benchmarks — and writes the results as machine-readable JSON.
//
//	benchjson -out BENCH_pr3.json
//
// The committed BENCH_pr3.json pins this PR's measured curve so future
// changes can diff against it; `make bench-json` regenerates it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/bench"
)

// result is one benchmark's measurements.
type result struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	// ElisionRatio is the fraction of baseline router ticks the
	// activity-driven core skipped (the "skip ratio"); only the end-to-end
	// Step benchmarks report it.
	ElisionRatio float64 `json:"elision_ratio,omitempty"`
}

// report is the file schema.
type report struct {
	Schema  string   `json:"schema"`
	GOOS    string   `json:"goos"`
	GOARCH  string   `json:"goarch"`
	CPUs    int      `json:"cpus"`
	Results []result `json:"results"`
	Summary summary  `json:"summary"`
}

// summary distills the acceptance numbers: how much faster the
// activity-driven core runs the low-load point versus the always-tick
// baseline, and how much it costs at saturation.
type summary struct {
	LowLoadSpeedupX        float64 `json:"low_load_speedup_x"`
	SaturationOverheadFrac float64 `json:"saturation_overhead_frac"`
	Note                   string  `json:"note,omitempty"`
}

// summaryNote qualifies the speedup figure: the -noskip baseline in this
// binary already carries the PR's router micro-optimizations, so the
// comparison understates the end-to-end win over the pre-change tree.
const summaryNote = "low_load_speedup_x compares against -noskip in the same binary, which " +
	"already includes this PR's router micro-optimizations; measured against the " +
	"pre-change commit the end-to-end low-load improvement is larger (6.8us/op -> " +
	"~1.4us/op, ~4.5-5x, on the reference host)."

func measure(name string, fn func(b *testing.B)) result {
	r := testing.Benchmark(fn)
	fmt.Fprintf(os.Stderr, "%-24s %s %s\n", name, r.String(), r.MemString())
	return result{
		Name:         name,
		Iterations:   r.N,
		NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		CyclesPerSec: r.Extra["cycles/sec"],
		ElisionRatio: r.Extra["elision-ratio"],
	}
}

func main() {
	out := flag.String("out", "BENCH_pr3.json", "output file (- for stdout)")
	flag.Parse()

	results := []result{
		measure("StepLowLoad", func(b *testing.B) { bench.Step(b, bench.LowLoadRate, false) }),
		measure("StepLowLoadNoSkip", func(b *testing.B) { bench.Step(b, bench.LowLoadRate, true) }),
		measure("StepSaturation", func(b *testing.B) { bench.Step(b, bench.SaturationRate, false) }),
		measure("StepSaturationNoSkip", func(b *testing.B) { bench.Step(b, bench.SaturationRate, true) }),
		measure("SchedulerPushPop", bench.SchedulerPushPop),
		measure("PacketAlloc", bench.PacketAlloc),
	}

	byName := map[string]result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	rep := report{
		Schema:  "repro-bench/v1",
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Results: results,
	}
	if low, base := byName["StepLowLoad"], byName["StepLowLoadNoSkip"]; low.NsPerOp > 0 {
		rep.Summary.LowLoadSpeedupX = base.NsPerOp / low.NsPerOp
	}
	if sat, base := byName["StepSaturation"], byName["StepSaturationNoSkip"]; base.NsPerOp > 0 {
		rep.Summary.SaturationOverheadFrac = sat.NsPerOp/base.NsPerOp - 1
	}
	rep.Summary.Note = summaryNote
	fmt.Fprintf(os.Stderr, "low-load speedup %.2fx, saturation overhead %+.1f%%\n",
		rep.Summary.LowLoadSpeedupX, 100*rep.Summary.SaturationOverheadFrac)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
