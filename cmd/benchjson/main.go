// Command benchjson runs the repository's benchmark trajectory — the
// end-to-end Step benchmarks at low load and saturation (with the
// activity-driven core on and off), the tiled-core Step points, the cold-
// and warm-cache experiment regenerations, the checkpointed and straight
// threshold sweeps, the trace-store capture/decode pair and indexed cache
// open, plus the scheduler and packet-alloc micro-benchmarks — and writes
// the results as machine-readable JSON.
//
//	benchjson -out BENCH_pr10.json
//	benchjson -baseline BENCH_pr9.json                      # run, then diff
//	benchjson -in BENCH_pr10.json -baseline BENCH_pr9.json  # diff two files
//
// The committed BENCH_pr10.json pins this PR's measured curve so future
// changes can diff against it; `make bench-json` regenerates it.
//
// With -baseline, a per-benchmark delta table (ns/op and allocs/op) is
// printed and the exit status is 1 when any benchmark regressed by more
// than 10% — informational on CI (continue-on-error), a hard gate for
// local use. Benchmarks absent from the baseline are listed as "new",
// baseline benchmarks absent from the current run as "gone"; neither
// counts toward the regression exit status.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/bench"
)

// result is one benchmark's measurements.
type result struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	// ElisionRatio is the fraction of baseline router ticks the
	// activity-driven core skipped (the "skip ratio"); only the end-to-end
	// Step benchmarks report it.
	ElisionRatio float64 `json:"elision_ratio,omitempty"`
	// WarmupCyclesPerOp is the warmup work one sweep iteration simulated;
	// only the Sweep benchmarks report it.
	WarmupCyclesPerOp float64 `json:"warmup_cycles_per_op,omitempty"`
	// BarriersPerCycle and BarrierElisionFrac are the tiled engine's merge
	// cadence over the timed region (1.0 was the pre-extraction fixed
	// cadence) and the fraction of planned windows whose merge was elided;
	// only the multi-tile Step benchmarks report them.
	BarriersPerCycle   float64 `json:"barriers_per_cycle,omitempty"`
	BarrierElisionFrac float64 `json:"barrier_elision_frac,omitempty"`
}

// report is the file schema.
type report struct {
	Schema  string   `json:"schema"`
	GOOS    string   `json:"goos"`
	GOARCH  string   `json:"goarch"`
	CPUs    int      `json:"cpus"`
	Results []result `json:"results"`
	Summary summary  `json:"summary"`
}

// summary distills the acceptance numbers: how much faster the
// activity-driven core runs the low-load point versus the always-tick
// baseline, and how much it costs at saturation.
type summary struct {
	LowLoadSpeedupX        float64 `json:"low_load_speedup_x"`
	SaturationOverheadFrac float64 `json:"saturation_overhead_frac"`
	// WarmCacheSpeedupX is how much faster a fig10 regeneration replays
	// from the persistent run cache than it simulates cold.
	WarmCacheSpeedupX float64 `json:"warm_cache_speedup_x,omitempty"`
	// CheckpointSpeedupX is how much faster the fig13 threshold sweep runs
	// when policy variants fork one shared warmup instead of each paying
	// for its own.
	CheckpointSpeedupX float64 `json:"checkpoint_speedup_x,omitempty"`
	// TileOverheadFrac is the fractional cost of the tile-parallel engine
	// degenerated to a single tile over the single-scheduler saturation
	// point — the acceptance bound for the tiled bookkeeping (<= 5%).
	TileOverheadFrac float64 `json:"tile_overhead_frac,omitempty"`
	// SatBarriersPerCycle is the two-tile merge cadence at saturation
	// (StepTiled2Extracted); BarrierElisionFrac is the fraction of planned
	// windows elided at low load (StepTiled2LowLoad). Together they pin
	// what extracted lookahead bought over the barrier-every-cycle engine.
	SatBarriersPerCycle float64 `json:"sat_barriers_per_cycle,omitempty"`
	BarrierElisionFrac  float64 `json:"barrier_elision_frac,omitempty"`
	// TraceStoreSpeedupX is how much faster a workload's arrival sequence
	// decodes and replays from its trace-store encoding than the live
	// model re-captures it.
	TraceStoreSpeedupX float64 `json:"trace_store_speedup_x,omitempty"`
	Note               string  `json:"note,omitempty"`
}

// summaryNote qualifies the speedup figures: the -noskip baseline in this
// binary already carries the datapath optimizations, so the comparison
// understates the end-to-end win over the pre-change tree, and the
// warm-cache ratio is measured on the tiny benchmark budget (real budgets
// widen it, since disk replay cost is budget-independent).
const summaryNote = "low_load_speedup_x compares against -noskip in the same binary; " +
	"warm_cache_speedup_x compares a fig10 regeneration replayed from the persistent " +
	"run cache against a cold simulate on the tiny benchmark budget; " +
	"checkpoint_speedup_x compares the fig13 threshold sweep forking one shared warmup " +
	"against every point warming up itself, also on the tiny budget (real budgets widen " +
	"it, since the shared warmup amortizes over the same six settings at any length); " +
	"tile_overhead_frac compares the tiled engine at one tile against the " +
	"single-scheduler saturation point (StepTiled2/4Extracted meter window-planning and " +
	"merge cost under extracted lookahead — on a single-CPU host they cannot win wall " +
	"clock); sat_barriers_per_cycle and barrier_elision_frac pin the merge cadence the " +
	"extraction achieves at saturation and the window fraction elision skips at low load " +
	"(the pre-extraction engine merged every cycle at every load); " +
	"trace_store_speedup_x compares decoding and replaying a stored arrival trace " +
	"against re-capturing the same workload from the live two-level model; " +
	"diff against the committed BENCH_pr9.json (benchjson -baseline BENCH_pr9.json) for " +
	"the cross-PR trajectory."

// regressionThreshold is the fractional slowdown (ns/op) or allocation
// growth (allocs/op) above which a benchmark counts as regressed.
const regressionThreshold = 0.10

func measure(name string, fn func(b *testing.B)) result {
	r := testing.Benchmark(fn)
	fmt.Fprintf(os.Stderr, "%-24s %s %s\n", name, r.String(), r.MemString())
	return result{
		Name:               name,
		Iterations:         r.N,
		NsPerOp:            float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp:        r.AllocsPerOp(),
		BytesPerOp:         r.AllocedBytesPerOp(),
		CyclesPerSec:       r.Extra["cycles/sec"],
		ElisionRatio:       r.Extra["elision-ratio"],
		WarmupCyclesPerOp:  r.Extra["warmup-cycles/op"],
		BarriersPerCycle:   r.Extra["barriers/cycle"],
		BarrierElisionFrac: r.Extra["barrier-elision-frac"],
	}
}

func runAll() []result {
	return []result{
		measure("StepLowLoad", func(b *testing.B) { bench.Step(b, bench.LowLoadRate, false) }),
		measure("StepLowLoadNoSkip", func(b *testing.B) { bench.Step(b, bench.LowLoadRate, true) }),
		measure("StepSaturation", func(b *testing.B) { bench.Step(b, bench.SaturationRate, false) }),
		measure("StepSaturationNoSkip", func(b *testing.B) { bench.Step(b, bench.SaturationRate, true) }),
		measure("StepTiled1", func(b *testing.B) { bench.StepTiled(b, 1) }),
		measure("StepTiled2Extracted", func(b *testing.B) { bench.StepTiled(b, 2) }),
		measure("StepTiled4Extracted", func(b *testing.B) { bench.StepTiled(b, 4) }),
		measure("StepTiled2LowLoad", func(b *testing.B) { bench.StepTiledRate(b, bench.LowLoadRate, 2) }),
		measure("RunAllColdCache", func(b *testing.B) { bench.FiguresRunAll(b, false) }),
		measure("RunAllWarmCache", func(b *testing.B) { bench.FiguresRunAll(b, true) }),
		measure("SweepStraight", func(b *testing.B) { bench.Sweep(b, true) }),
		measure("SweepCheckpointed", func(b *testing.B) { bench.Sweep(b, false) }),
		measure("TraceCaptureCold", bench.TraceCaptureCold),
		measure("TraceDecodeWarm", bench.TraceDecodeWarm),
		measure("StoreOpenIndexed", func(b *testing.B) { bench.StoreOpenIndexed(b, 1000) }),
		measure("SchedulerPushPop", bench.SchedulerPushPop),
		measure("PacketAlloc", bench.PacketAlloc),
	}
}

func readReport(path string) (report, error) {
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// diff prints per-benchmark deltas against a baseline report and reports
// whether any benchmark regressed beyond the threshold. Benchmarks absent
// from the baseline are listed as "new", baseline benchmarks missing from
// the current run as "gone"; neither counts as a regression — only a
// benchmark present on both sides can regress.
func diff(base report, cur []result) (regressed bool) {
	byName := map[string]result{}
	for _, r := range base.Results {
		byName[r.Name] = r
	}
	curNames := map[string]bool{}
	for _, r := range cur {
		curNames[r.Name] = true
	}
	added, gone := 0, 0
	fmt.Printf("%-24s %14s %14s %8s %16s %6s\n",
		"benchmark", "base ns/op", "now ns/op", "delta", "allocs/op", "flag")
	for _, now := range cur {
		b, ok := byName[now.Name]
		if !ok {
			added++
			fmt.Printf("%-24s %14s %14.1f %8s %16s %6s\n",
				now.Name, "-", now.NsPerOp, "-", fmt.Sprintf("- -> %d", now.AllocsPerOp), "new")
			continue
		}
		nsPct := 0.0
		if b.NsPerOp > 0 {
			nsPct = (now.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		// Allocation regressions: classified by bench.AllocRegressed —
		// unchanged counts (including 0 -> 0) never regress, any allocation
		// from a zero baseline does, nonzero baselines use the same
		// fractional threshold as time.
		allocRegressed := bench.AllocRegressed(b.AllocsPerOp, now.AllocsPerOp, regressionThreshold)
		mark := ""
		if nsPct > regressionThreshold || allocRegressed {
			mark = "REGR"
			regressed = true
		} else if nsPct < -regressionThreshold {
			mark = "ok+"
		}
		fmt.Printf("%-24s %14.1f %14.1f %+7.1f%% %16s %6s\n",
			now.Name, b.NsPerOp, now.NsPerOp, 100*nsPct,
			fmt.Sprintf("%d -> %d", b.AllocsPerOp, now.AllocsPerOp), mark)
	}
	// Baseline benchmarks the current run no longer has: renames and
	// removals surface here instead of silently vanishing from the table.
	for _, b := range base.Results {
		if !curNames[b.Name] {
			gone++
			fmt.Printf("%-24s %14.1f %14s %8s %16s %6s\n",
				b.Name, b.NsPerOp, "-", "-", fmt.Sprintf("%d -> -", b.AllocsPerOp), "gone")
		}
	}
	if added > 0 || gone > 0 {
		fmt.Printf("benchmarks: %d new, %d gone (informational, never regressions)\n", added, gone)
	}
	return regressed
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(2)
}

func main() {
	out := flag.String("out", "BENCH_pr10.json", "output file (- for stdout)")
	in := flag.String("in", "", "read results from this report instead of running benchmarks")
	baseline := flag.String("baseline", "", "diff results against this report; exit 1 on >10% regression")
	flag.Parse()

	var results []result
	if *in != "" {
		rep, err := readReport(*in)
		if err != nil {
			fatal(err)
		}
		results = rep.Results
	} else {
		results = runAll()
	}

	byName := map[string]result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	rep := report{
		Schema:  "repro-bench/v1",
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Results: results,
	}
	if low, base := byName["StepLowLoad"], byName["StepLowLoadNoSkip"]; low.NsPerOp > 0 {
		rep.Summary.LowLoadSpeedupX = base.NsPerOp / low.NsPerOp
	}
	if sat, base := byName["StepSaturation"], byName["StepSaturationNoSkip"]; base.NsPerOp > 0 {
		rep.Summary.SaturationOverheadFrac = sat.NsPerOp/base.NsPerOp - 1
	}
	if warm, cold := byName["RunAllWarmCache"], byName["RunAllColdCache"]; warm.NsPerOp > 0 {
		rep.Summary.WarmCacheSpeedupX = cold.NsPerOp / warm.NsPerOp
	}
	if ckpt, straight := byName["SweepCheckpointed"], byName["SweepStraight"]; ckpt.NsPerOp > 0 {
		rep.Summary.CheckpointSpeedupX = straight.NsPerOp / ckpt.NsPerOp
	}
	if tiled, flat := byName["StepTiled1"], byName["StepSaturation"]; flat.NsPerOp > 0 && tiled.NsPerOp > 0 {
		rep.Summary.TileOverheadFrac = tiled.NsPerOp/flat.NsPerOp - 1
	}
	rep.Summary.SatBarriersPerCycle = byName["StepTiled2Extracted"].BarriersPerCycle
	rep.Summary.BarrierElisionFrac = byName["StepTiled2LowLoad"].BarrierElisionFrac
	if warm, cold := byName["TraceDecodeWarm"], byName["TraceCaptureCold"]; warm.NsPerOp > 0 {
		rep.Summary.TraceStoreSpeedupX = cold.NsPerOp / warm.NsPerOp
	}
	rep.Summary.Note = summaryNote
	fmt.Fprintf(os.Stderr, "low-load speedup %.2fx, saturation overhead %+.1f%%, warm-cache speedup %.2fx, checkpoint speedup %.2fx, tile overhead %+.1f%%, sat barriers/cycle %.4f, low-load elision %.0f%%, trace-store speedup %.2fx\n",
		rep.Summary.LowLoadSpeedupX, 100*rep.Summary.SaturationOverheadFrac,
		rep.Summary.WarmCacheSpeedupX, rep.Summary.CheckpointSpeedupX,
		100*rep.Summary.TileOverheadFrac, rep.Summary.SatBarriersPerCycle,
		100*rep.Summary.BarrierElisionFrac, rep.Summary.TraceStoreSpeedupX)

	if *in == "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *out == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
	}

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fatal(err)
		}
		if diff(base, results) {
			fmt.Fprintf(os.Stderr, "benchjson: regression beyond %.0f%% against %s\n",
				100*regressionThreshold, *baseline)
			os.Exit(1)
		}
	}
}
