// Command netsim runs one simulation of the link-DVS network platform from
// flags and prints a result summary: the direct way to explore one
// operating point of the paper's system.
//
// Example — the paper's setup at 1.0 packets/cycle, with and without DVS:
//
//	netsim -rate 1.0 -policy history
//	netsim -rate 1.0 -policy none
//
// Under the two-level workload the warmup runs policy-frozen (DVS decision
// windows open only once measurement starts), which makes the warmed-up
// state policy-independent: with a run cache enabled, invocations that
// differ only in -policy, thresholds or transition latencies share one
// persisted warmup snapshot instead of each re-simulating it. A forked
// warmup is byte-identical to a simulated one; -no-checkpoint disables the
// reuse without changing any result.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/noc"
)

func main() {
	var (
		cfgPath  = flag.String("config", "", "JSON config file (see noc.SaveConfig); flags override")
		mesh     = flag.Int("mesh", 8, "mesh size k (k-ary 2-cube)")
		torus    = flag.Bool("torus", false, "wraparound (torus) channels")
		policy   = flag.String("policy", "history", "DVS policy: history | none | link-util-only | adaptive-thresholds")
		routing  = flag.String("routing", "dor", "routing algorithm: dor | adaptive")
		traffic  = flag.String("traffic", "twolevel", "workload: twolevel | uniform | transpose | bitreverse | shuffle | tornado | hotspot")
		rate     = flag.Float64("rate", 1.0, "aggregate packets/cycle (twolevel) or per-node rate (others)")
		tasks    = flag.Int("tasks", 100, "average concurrent task sessions (twolevel)")
		taskDur  = flag.Duration("taskdur", time.Millisecond, "average task duration (twolevel)")
		voltTran = flag.Duration("volttran", 10*time.Microsecond, "voltage transition latency")
		freqTran = flag.Int("freqtran", 100, "frequency transition latency (link cycles)")
		warmup   = flag.Int64("warmup", 60_000, "warmup cycles before measurement")
		measure  = flag.Int64("cycles", 150_000, "measured cycles")
		seed     = flag.Uint64("seed", 1, "random seed")
		audit    = flag.Bool("audit", false, "verify runtime invariants (conservation, VC and DVS legality) during the run")
		noskip   = flag.Bool("noskip", false, "disable the activity-driven core (tick every router every cycle); identical results, slower")
		tiles    = flag.Int("tiles", 0, "tile-parallel blocks with conservative lookahead (0/1 = single scheduler); identical results at every count")
		ckpt     = flag.Bool("checkpoint", true, "reuse a persisted policy-frozen warmup snapshot across runs (twolevel traffic, cache enabled); identical results")
		noCkpt   = flag.Bool("no-checkpoint", false, "always simulate the warmup; identical results, slower across policy sweeps")
		skipst   = flag.Bool("skipstats", false, "print activity-driven core statistics (fast-forwards, elided ticks, active-router histogram)")
		levels   = flag.Bool("levels", false, "print the final DVS level histogram")
		traceN   = flag.Int("trace", 0, "dump the last N trace events after the run")
		traceK   = flag.String("tracekind", "", "trace filter: inject | deliver | transition | policy")

		jobs       = flag.Int("j", 0, "max OS threads for this process (0 = GOMAXPROCS); one simulation is single-threaded, this bounds GC/runtime helpers when profiling")
		cacheDir   = flag.String("cache-dir", "", "persistent run cache directory (default: user cache dir)")
		noCache    = flag.Bool("no-cache", false, "disable the persistent run cache; always simulate")
		noTraceStr = flag.Bool("no-trace-store", false, "disable the persistent arrival-trace store; re-capture the workload live (same output)")
		cacheStats = flag.Bool("cachestats", false, "print run-cache counters to stderr on exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file after the run")
	)
	flag.Parse()

	if *jobs > 0 {
		runtime.GOMAXPROCS(*jobs)
	}

	cfg := noc.DefaultConfig()
	if *cfgPath != "" {
		loaded, err := noc.LoadConfig(*cfgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
		cfg = loaded
	}
	// Flags override the config file only when given explicitly.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["mesh"] || *cfgPath == "" {
		cfg.MeshSize = *mesh
	}
	if set["torus"] || *cfgPath == "" {
		cfg.Torus = *torus
	}
	if set["policy"] || *cfgPath == "" {
		cfg.Policy = *policy
	}
	if set["routing"] || *cfgPath == "" {
		cfg.Routing = *routing
	}
	if set["volttran"] || *cfgPath == "" {
		cfg.VoltTransition = *voltTran
	}
	if set["freqtran"] || *cfgPath == "" {
		cfg.FreqTransitionCycles = *freqTran
	}
	if set["seed"] || *cfgPath == "" {
		cfg.Seed = *seed
	}
	if set["audit"] || *cfgPath == "" {
		cfg.Audit = *audit
	}
	if set["noskip"] || *cfgPath == "" {
		cfg.NoSkip = *noskip
	}
	if set["tiles"] || *cfgPath == "" {
		cfg.Tiles = *tiles
	}
	// The tiled engine replays recorded traces only; live traffic models and
	// event tracing need the single-scheduler core. Results are identical at
	// every tile count, so degrading costs nothing but speed.
	if cfg.Tiles > 1 && (*traffic != "twolevel" || *traceN > 0) {
		fmt.Fprintln(os.Stderr, "netsim: -tiles requires the recorded two-level workload without -trace; running single-scheduler (identical results)")
		cfg.Tiles = 0
	}

	if !*noCache {
		if err := noc.EnableRunCache(*cacheDir, 0); err != nil {
			// A cache that won't open costs speed, not correctness.
			fmt.Fprintln(os.Stderr, "netsim: run cache disabled:", err)
		}
	}
	// Independent of -no-cache: a warm trace decodes to the exact captured
	// arrival sequence, so the summary is byte-identical either way.
	if !*noTraceStr {
		if err := noc.EnableTraceStore(*cacheDir, 0); err != nil {
			fmt.Fprintln(os.Stderr, "netsim: trace store disabled:", err)
		}
	}
	if *cacheStats {
		defer printCacheStats()
	}
	// A summary is cacheable only when nothing live-only was requested:
	// profiles, traces, level histograms, skip statistics and audit counters
	// exist only on a real run. Warmup checkpointing needs no key suffix:
	// a forked warmup is byte-identical to a simulated one, so both modes
	// produce — and may share — the same entry.
	cacheable := !*noCache && !cfg.Audit && !*skipst && !*levels && *traceN == 0 &&
		*cpuprofile == "" && *memprofile == ""
	var cacheKey string
	if cacheable {
		// Tile count never changes output bytes, so it is deliberately
		// neutralized in the key: -tiles variants share one cache entry.
		// VerifyLookahead is a speed-only debug check, neutralized for the
		// same reason.
		keyCfg := cfg
		keyCfg.Tiles = 0
		keyCfg.VerifyLookahead = false
		cfgJSON, err := json.Marshal(keyCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
		cacheKey = fmt.Sprintf("netsim|cfg=%s|traffic=%s|rate=%g|tasks=%d|taskdur=%d|warmup=%d|cycles=%d|seed=%d",
			cfgJSON, *traffic, *rate, *tasks, int64(*taskDur), *warmup, *measure, *seed)
		var cs cachedSummary
		if noc.RunCacheLookup(cacheKey, &cs) {
			printSummary(cs.Results, cs.InFlight, *mesh, *torus, *policy, *routing,
				*traffic, *rate, *tasks, *taskDur, *warmup)
			return
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
	}

	var n *noc.Network
	var err error
	if *traffic == "twolevel" {
		// The warmup runs policy-frozen on a captured trace; with the run
		// cache enabled and -checkpoint (the default), it forks a persisted
		// snapshot when a compatible invocation already simulated it.
		n, err = noc.NewWarmedTwoLevel(cfg, noc.TwoLevelWorkload{
			Rate: *rate, Tasks: *tasks, TaskDuration: *taskDur, Seed: *seed,
		}, *warmup, *measure, *ckpt && !*noCkpt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
		if *traceN > 0 {
			n.EnableTrace(*traceN) // measurement events only; warmup is pre-trace
		}
	} else {
		n, err = noc.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
		if *traceN > 0 {
			n.EnableTrace(*traceN)
		}
		switch *traffic {
		case "uniform":
			n.AttachUniform(*rate)
		case "transpose":
			n.AttachTranspose(*rate)
		case "bitreverse":
			n.AttachBitReverse(*rate)
		case "shuffle":
			n.AttachShuffle(*rate)
		case "tornado":
			n.AttachTornado(*rate)
		case "hotspot":
			n.AttachHotspot(*rate, 0, 0.2)
		default:
			fmt.Fprintf(os.Stderr, "netsim: unknown traffic %q\n", *traffic)
			os.Exit(1)
		}
		n.Warmup(*warmup)
	}
	r := n.Measure(*measure)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if cacheable {
		noc.RunCacheStore(cacheKey, cachedSummary{Results: r, InFlight: n.InFlight()})
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
		}
		f.Close()
	}

	printSummary(r, n.InFlight(), *mesh, *torus, *policy, *routing,
		*traffic, *rate, *tasks, *taskDur, *warmup)
	if s, ok := n.AuditStats(); ok {
		fmt.Printf("audit      : %d scans, %d checks, %d violations\n",
			s.Scans, s.Checks, s.Violations)
	}
	if *skipst {
		printSkipStats(n.SkipStats())
	}
	if *levels {
		fmt.Printf("levels     :")
		for lvl, count := range n.LevelHistogram() {
			fmt.Printf(" L%d:%d", lvl, count)
		}
		fmt.Println()
	}
	if *traceN > 0 {
		fmt.Println("trace      :")
		if err := n.DumpTrace(os.Stdout, *traceK); err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
		}
	}
}

// cachedSummary is the persistent form of one run's summary: everything the
// default output needs, so a cache hit prints without simulating.
type cachedSummary struct {
	Results  noc.Results
	InFlight int64
}

// printSummary renders the standard result block for a live or cached run.
func printSummary(r noc.Results, inFlight int64, mesh int, torus bool, policy, routing,
	traffic string, rate float64, tasks int, taskDur time.Duration, warmup int64) {
	fmt.Printf("platform   : %dx%d mesh(torus=%v), policy=%s, routing=%s\n",
		mesh, mesh, torus, policy, routing)
	fmt.Printf("workload   : %s rate=%.2f (tasks=%d, dur=%v)\n", traffic, rate, tasks, taskDur)
	fmt.Printf("cycles     : %d measured after %d warmup\n", r.Cycles, warmup)
	fmt.Printf("packets    : %d injected, %d delivered, %d in flight\n",
		r.InjectedPackets, r.DeliveredPackets, inFlight)
	fmt.Printf("latency    : %.1f cycles mean (P50 %.0f, P99 %.0f)\n",
		r.MeanLatencyCycles, r.P50LatencyCycles, r.P99LatencyCycles)
	fmt.Printf("throughput : %.3f packets/cycle\n", r.ThroughputPkts)
	fmt.Printf("power      : %.1f W avg (%.3f of non-DVS baseline, %.2fX savings)\n",
		r.AvgPowerW, r.NormalizedPower, r.PowerSavingsX)
}

// printCacheStats emits the run-cache counters in a stable, greppable
// one-line format.
func printCacheStats() {
	s := noc.RunCacheStats()
	fmt.Fprintf(os.Stderr,
		"runcache: hits=%d misses=%d puts=%d corrupt=%d evictions=%d read=%dB written=%dB hit-rate=%.2f\n",
		s.Hits, s.Misses, s.Puts, s.CorruptDropped, s.Evictions,
		s.BytesRead, s.BytesWritten, s.HitRate())
	t := noc.TraceStoreStats()
	fmt.Fprintf(os.Stderr,
		"tracestore: hits=%d misses=%d puts=%d corrupt=%d evictions=%d read=%dB written=%dB hit-rate=%.2f\n",
		t.Hits, t.Misses, t.Puts, t.CorruptDropped, t.Evictions,
		t.BytesRead, t.BytesWritten, t.HitRate())
}

// printSkipStats summarizes the activity-driven core's work avoidance.
func printSkipStats(s noc.SkipStats) {
	fmt.Printf("skipping   : %d cycles stepped, %d fast-forwarded in %d jumps, %.1f%% router ticks elided\n",
		s.CyclesExecuted, s.CyclesFastForwarded, s.FastForwards, 100*s.ElisionRatio)
	if s.CyclesExecuted == 0 {
		return
	}
	fmt.Printf("active     : %d/%d/%d routers per stepped cycle (p50/p90/max)\n",
		histQuantile(s.ActiveHist, 0.50), histQuantile(s.ActiveHist, 0.90), histMax(s.ActiveHist))
	if s.TileWindows > 0 {
		cycles := s.CyclesExecuted + s.CyclesFastForwarded
		var perCycle, elided float64
		if cycles > 0 {
			perCycle = float64(s.TileBarriers) / float64(cycles)
		}
		if s.TileWindows > 0 {
			elided = float64(s.TileBarriersElided) / float64(s.TileWindows)
		}
		fmt.Printf("barriers   : %d windows, %d merges (%.4f/cycle), %d elided (%.1f%%)\n",
			s.TileWindows, s.TileBarriers, perCycle, s.TileBarriersElided, 100*elided)
	}
}

// histQuantile reports the smallest active-router count whose cumulative
// cycle share reaches q.
func histQuantile(hist []int64, q float64) int {
	var total int64
	for _, c := range hist {
		total += c
	}
	want := int64(q * float64(total))
	var cum int64
	for k, c := range hist {
		cum += c
		if cum > want {
			return k
		}
	}
	return len(hist) - 1
}

// histMax reports the largest active-router count observed.
func histMax(hist []int64) int {
	max := 0
	for k, c := range hist {
		if c > 0 {
			max = k
		}
	}
	return max
}
