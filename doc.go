// Package repro is a from-scratch Go reproduction of "Dynamic Voltage
// Scaling with Links for Power Optimization of Interconnection Networks"
// (Li Shang, Li-Shiuan Peh, Niraj K. Jha — HPCA 2003).
//
// The public API lives in package repro/noc; the command-line tools in
// cmd/netsim and cmd/figures; the substrates in internal/... (simulation
// kernel, k-ary n-cube topology, routing, pipelined VC routers, DVS link
// model, the history-based DVS policy, the two-level self-similar traffic
// model, power accounting, statistics, and the per-figure experiment
// harness).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results for every table and figure.
package repro
