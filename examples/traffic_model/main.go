// Traffic model: regenerate the paper's workload-characterization
// artifacts through the public experiment API — the spatial variance of
// the two-level task model (Figure 8), its temporal burstiness at one
// router (Figure 9), and the per-link measure profiles that motivated the
// policy design (Figures 3-5).
package main

import (
	"log"
	"os"

	"repro/noc"
)

func main() {
	opts := noc.ExperimentOptions{Quick: true}
	for _, id := range []string{"fig8", "fig9", "fig3", "fig4"} {
		if err := noc.RunExperiment(id, opts, os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
