// Threshold trade-off: sweep the paper's Table 2 threshold settings I-VI
// at a fixed load and trace the latency-vs-power Pareto frontier of the
// history-based DVS policy (Figures 13-15).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/noc"
)

// settings are Table 2 of the paper: the light-load threshold band from
// conservative (I) to aggressive (VI).
var settings = []struct {
	name          string
	tlLow, tlHigh float64
}{
	{"I", 0.2, 0.3},
	{"II", 0.25, 0.35},
	{"III", 0.3, 0.4},
	{"IV", 0.35, 0.45},
	{"V", 0.4, 0.5},
	{"VI", 0.5, 0.6},
}

func main() {
	const rate = 4.0 // ~80% of this platform's saturation, like the paper's 1.7

	fmt.Printf("Pareto sweep at %.1f packets/cycle (paper Figure 15)\n\n", rate)
	fmt.Printf("%-8s %-16s %-12s %-10s\n", "setting", "latency (cycles)", "norm power", "savings")
	for _, s := range settings {
		cfg := noc.DefaultConfig()
		cfg.TLLow, cfg.TLHigh = s.tlLow, s.tlHigh
		net, err := noc.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := net.AttachTwoLevel(noc.TwoLevelWorkload{
			Rate: rate, Tasks: 100, TaskDuration: time.Millisecond,
		}); err != nil {
			log.Fatal(err)
		}
		net.Warmup(40_000)
		r := net.Measure(80_000)
		fmt.Printf("%-8s %-16.0f %-12.3f %.2fX\n",
			s.name, r.MeanLatencyCycles, r.NormalizedPower, r.PowerSavingsX)
	}
	fmt.Println("\nMore aggressive settings save more power at higher latency:")
	fmt.Println("an improvement in one metric costs the other (the paper's Pareto curve).")
}
