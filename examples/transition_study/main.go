// Transition study: how DVS link transition speed shapes network
// performance (paper Section 4.4.3, Figures 16-17). Faster voltage ramps
// and clock re-locks let the policy track bursty traffic with a smaller
// latency/throughput penalty — the paper's argument that better link
// technology directly improves DVS networks.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/noc"
)

func main() {
	const rate = 3.0

	fmt.Printf("history-based DVS at %.1f packets/cycle, varying link transition speed\n\n", rate)
	fmt.Printf("%-12s %-12s %-18s %-12s %-10s\n",
		"volt ramp", "freq lock", "latency (cycles)", "throughput", "savings")
	for _, tc := range []struct {
		volt time.Duration
		freq int
	}{
		{10 * time.Microsecond, 100}, // the paper's conservative assumption
		{10 * time.Microsecond, 10},
		{1 * time.Microsecond, 100},
		{1 * time.Microsecond, 10}, // an aggressive future link
	} {
		cfg := noc.DefaultConfig()
		cfg.VoltTransition = tc.volt
		cfg.FreqTransitionCycles = tc.freq
		net, err := noc.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := net.AttachTwoLevel(noc.TwoLevelWorkload{
			Rate: rate, Tasks: 100, TaskDuration: 100 * time.Microsecond,
		}); err != nil {
			log.Fatal(err)
		}
		net.Warmup(40_000)
		r := net.Measure(80_000)
		fmt.Printf("%-12v %-12s %-18.0f %-12.3f %.2fX\n",
			tc.volt, fmt.Sprintf("%d cycles", tc.freq),
			r.MeanLatencyCycles, r.ThroughputPkts, r.PowerSavingsX)
	}
	fmt.Println("\nFaster transitions track the bursty workload more closely,")
	fmt.Println("cutting the performance cost of the same DVS policy.")
}
