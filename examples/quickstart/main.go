// Quickstart: simulate the paper's 8x8 mesh under the two-level bursty
// workload, once with every link pinned at full speed and once under
// history-based DVS, and compare latency, throughput and power.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/noc"
)

func main() {
	const (
		rate    = 2.0 // aggregate packets per cycle
		warmup  = 40_000
		measure = 80_000
	)

	runOnce := func(policy string) noc.Results {
		cfg := noc.DefaultConfig() // the paper's Section 4.2 platform
		cfg.Policy = policy
		net, err := noc.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		err = net.AttachTwoLevel(noc.TwoLevelWorkload{
			Rate:         rate,
			Tasks:        100,
			TaskDuration: time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		net.Warmup(warmup)
		return net.Measure(measure)
	}

	base := runOnce(noc.PolicyNone)
	dvs := runOnce(noc.PolicyHistory)

	fmt.Printf("8x8 mesh, two-level workload at %.1f packets/cycle\n\n", rate)
	fmt.Printf("%-22s %12s %12s\n", "", "no DVS", "history DVS")
	fmt.Printf("%-22s %12.1f %12.1f\n", "mean latency (cycles)", base.MeanLatencyCycles, dvs.MeanLatencyCycles)
	fmt.Printf("%-22s %12.3f %12.3f\n", "throughput (pkts/cyc)", base.ThroughputPkts, dvs.ThroughputPkts)
	fmt.Printf("%-22s %12.1f %12.1f\n", "link power (W)", base.AvgPowerW, dvs.AvgPowerW)
	fmt.Printf("%-22s %12s %12.2fX\n", "power savings", "1.00X", dvs.PowerSavingsX)
	fmt.Println("\nThe DVS policy trades a latency premium for multi-X power savings")
	fmt.Println("while leaving throughput essentially intact (HPCA 2003, Figure 10).")
}
