// Package noc is the public API of the link-DVS interconnection-network
// library: a flit-level simulator of k-ary n-cube networks built from
// pipelined virtual-channel routers and dynamically voltage-scaled links,
// with the history-based DVS policy of Shang, Peh & Jha (HPCA 2003), the
// paper's two-level self-similar workload model, and the experiment
// harness that regenerates the paper's tables and figures.
//
// Quickstart:
//
//	cfg := noc.DefaultConfig()
//	net, err := noc.New(cfg)
//	if err != nil { ... }
//	net.AttachTwoLevel(noc.TwoLevelWorkload{Rate: 1.0, Tasks: 100, TaskDuration: time.Millisecond})
//	net.Warmup(60_000)
//	res := net.Measure(150_000)
//	fmt.Printf("latency %.0f cycles, %.1fX power savings\n", res.MeanLatencyCycles, res.PowerSavingsX)
package noc

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Policy names accepted by Config.Policy.
const (
	PolicyHistory            = "history"             // the paper's Algorithm 1
	PolicyNone               = "none"                // non-DVS baseline, links at full speed
	PolicyLinkUtilOnly       = "link-util-only"      // Sec 3.1 ablation without the BU litmus
	PolicyAdaptiveThresholds = "adaptive-thresholds" // Sec 4.4.2 extension
)

// Config selects the network platform. The zero value is not usable; start
// from DefaultConfig, which is the paper's Section 4.2 setup.
type Config struct {
	// MeshSize is k of the k-ary n-cube; Dims is n; Torus adds wraparound.
	MeshSize, Dims int
	Torus          bool

	// VCs, BufPerPort and PipelineDepth size each router.
	VCs, BufPerPort, PipelineDepth int

	// Policy is one of the Policy* constants; Routing is "dor" or
	// "adaptive".
	Policy, Routing string

	// W, H, BCongested, TLLow, TLHigh, THLow, THHigh are the history-based
	// policy parameters (paper Table 1).
	W, H                         int
	BCongested                   float64
	TLLow, TLHigh, THLow, THHigh float64

	// VoltTransition and FreqTransitionCycles set the DVS link transition
	// latencies (paper Section 2: 10 us and 100 link cycles).
	VoltTransition       time.Duration
	FreqTransitionCycles int

	// Seed selects the deterministic random stream family.
	Seed uint64

	// Audit enables the runtime invariant checker: flit and credit
	// conservation, VC state-machine legality, DVS link legality and a
	// deadlock watchdog, verified continuously as the simulation runs.
	// The first violation panics. Results are identical with or without
	// it; only speed differs.
	Audit bool

	// NoSkip disables the activity-driven simulation core: idle routers
	// tick every cycle and quiescent stretches execute cycle by cycle, as
	// the pre-optimization simulator did. A debugging escape hatch —
	// results are identical with or without it; only speed differs.
	NoSkip bool

	// Tiles partitions the simulation into that many tile-parallel blocks
	// of routers, each advanced by its own scheduler between conservative
	// lookahead barriers, so one run can use several cores. Results are
	// byte-identical at every tile count; only speed differs. A tiled
	// network replays recorded workload traces only: NewWarmedTwoLevel
	// supports it transparently, while the live Attach* workloads,
	// hand-driven Inject and EnableTrace refuse (AttachTwoLevel returns an
	// error; the others panic on use). 0 or 1 selects the single-scheduler
	// engine unchanged.
	Tiles int

	// VerifyLookahead makes the tile-parallel engine re-check, at every
	// merge, that each cross-tile message lands no earlier than the bound
	// its source tile promised when the window was planned. Violations are
	// counted rather than fatal (the engine's own due>=windowEnd panic
	// still guards correctness). A debugging/test knob: results are
	// identical with or without it; only speed differs. Ignored when
	// Tiles <= 1.
	VerifyLookahead bool
}

// DefaultConfig returns the paper's experimental platform: an 8x8 mesh of
// 1 GHz routers (2 VCs, 128 flit buffers/port, 13-stage pipeline),
// ten-level DVS links from 125 MHz/0.9 V to 1 GHz/2.5 V, and Table 1
// policy parameters.
func DefaultConfig() Config {
	p := core.DefaultParams()
	return Config{
		MeshSize:             8,
		Dims:                 2,
		VCs:                  2,
		BufPerPort:           128,
		PipelineDepth:        13,
		Policy:               PolicyHistory,
		Routing:              "dor",
		W:                    p.W,
		H:                    p.H,
		BCongested:           p.BCongested,
		TLLow:                p.TLLow,
		TLHigh:               p.TLHigh,
		THLow:                p.THLow,
		THHigh:               p.THHigh,
		VoltTransition:       10 * time.Microsecond,
		FreqTransitionCycles: 100,
		Seed:                 1,
	}
}

// lower maps the public config onto the internal platform config.
func (c Config) lower() (network.Config, error) {
	cfg := network.NewConfig()
	cfg.K = c.MeshSize
	cfg.N = c.Dims
	cfg.Torus = c.Torus
	cfg.Router.Ports = 1 + 2*c.Dims
	cfg.Router.VCs = c.VCs
	cfg.Router.BufPerPort = c.BufPerPort
	cfg.Router.PipelineDepth = c.PipelineDepth
	cfg.Routing = c.Routing
	cfg.DVS = core.Params{
		W: c.W, H: c.H, BCongested: c.BCongested,
		TLLow: c.TLLow, TLHigh: c.TLHigh, THLow: c.THLow, THHigh: c.THHigh,
	}
	cfg.Link.VoltTransition = sim.Time(c.VoltTransition.Nanoseconds()) * sim.Nanosecond
	cfg.Link.FreqTransitionCycles = c.FreqTransitionCycles
	cfg.Seed = c.Seed
	cfg.Audit.Enabled = c.Audit
	cfg.NoSkip = c.NoSkip
	cfg.Tiles = c.Tiles
	cfg.VerifyLookahead = c.VerifyLookahead
	switch c.Policy {
	case PolicyHistory, "":
		cfg.Policy = network.PolicyHistory
	case PolicyNone:
		cfg.Policy = network.PolicyNone
	case PolicyLinkUtilOnly:
		cfg.Policy = network.PolicyLinkUtilOnly
	case PolicyAdaptiveThresholds:
		cfg.Policy = network.PolicyAdaptiveThresholds
	default:
		return cfg, fmt.Errorf("noc: unknown policy %q", c.Policy)
	}
	return cfg, cfg.Validate()
}

// Network is a runnable simulation instance.
type Network struct {
	inner *network.Network
}

// New builds a network from a config.
func New(c Config) (*Network, error) {
	lowered, err := c.lower()
	if err != nil {
		return nil, err
	}
	n, err := network.New(lowered)
	if err != nil {
		return nil, err
	}
	return &Network{inner: n}, nil
}

// Nodes reports the node count.
func (n *Network) Nodes() int { return n.inner.Topo.Nodes() }

// TwoLevelWorkload parameterizes the paper's two-level self-similar
// traffic model.
type TwoLevelWorkload struct {
	// Rate is the aggregate packet injection target in packets per router
	// cycle across the whole network.
	Rate float64
	// Tasks is the average number of concurrent task sessions (paper: 50 or
	// 100); TaskDuration their mean length (paper: 10 us to 1 ms).
	Tasks        int
	TaskDuration time.Duration
	// Seed overrides the config seed when nonzero.
	Seed uint64
}

// AttachTwoLevel arms the two-level workload for the rest of the
// simulation (one full second of simulated time, effectively unbounded).
func (n *Network) AttachTwoLevel(w TwoLevelWorkload) error {
	if n.inner.Tiled() {
		return errors.New("noc: a tiled network replays recorded traces only; use NewWarmedTwoLevel (or Config.Tiles <= 1)")
	}
	p := traffic.NewTwoLevelParams(w.Rate)
	if w.Tasks > 0 {
		p.AvgTasks = w.Tasks
	}
	if w.TaskDuration > 0 {
		p.AvgTaskDuration = sim.Time(w.TaskDuration.Nanoseconds()) * sim.Nanosecond
	}
	p.Seed = w.Seed
	if p.Seed == 0 {
		p.Seed = n.inner.Cfg.Seed
	}
	m, err := traffic.NewTwoLevel(p, n.inner.Topo)
	if err != nil {
		return err
	}
	n.inner.Launch(m, sim.Time(1e12)) // one simulated second
	return nil
}

// AttachUniform arms uniform-random Poisson traffic at ratePerNode packets
// per cycle per node.
func (n *Network) AttachUniform(ratePerNode float64) {
	u := &traffic.Uniform{
		Topo:        n.inner.Topo,
		RatePerNode: ratePerNode,
		CyclePeriod: n.inner.Cfg.RouterPeriod,
		Seed:        n.inner.Cfg.Seed,
	}
	n.inner.Launch(u, sim.Time(1e12))
}

// AttachTranspose arms matrix-transpose permutation traffic.
func (n *Network) AttachTranspose(ratePerNode float64) {
	n.attachPermutation(ratePerNode, traffic.Transpose(n.inner.Topo))
}

// AttachBitReverse arms bit-reversal permutation traffic (power-of-two
// node counts only).
func (n *Network) AttachBitReverse(ratePerNode float64) {
	n.attachPermutation(ratePerNode, traffic.BitReverse(n.inner.Topo))
}

// AttachShuffle arms perfect-shuffle permutation traffic (power-of-two
// node counts only).
func (n *Network) AttachShuffle(ratePerNode float64) {
	n.attachPermutation(ratePerNode, traffic.Shuffle(n.inner.Topo))
}

// AttachTornado arms tornado traffic: each node sends halfway around its
// row, the worst case for rings and tori.
func (n *Network) AttachTornado(ratePerNode float64) {
	n.attachPermutation(ratePerNode, traffic.Tornado(n.inner.Topo))
}

func (n *Network) attachPermutation(ratePerNode float64, pattern func(int) int) {
	p := &traffic.Permutation{
		Topo:        n.inner.Topo,
		RatePerNode: ratePerNode,
		CyclePeriod: n.inner.Cfg.RouterPeriod,
		Seed:        n.inner.Cfg.Seed,
		Pattern:     pattern,
	}
	n.inner.Launch(p, sim.Time(1e12))
}

// AttachHotspot arms uniform traffic in which `fraction` of all packets
// target the hot node.
func (n *Network) AttachHotspot(ratePerNode float64, hot int, fraction float64) {
	h := &traffic.Hotspot{
		Topo:        n.inner.Topo,
		RatePerNode: ratePerNode,
		CyclePeriod: n.inner.Cfg.RouterPeriod,
		Seed:        n.inner.Cfg.Seed,
		Hot:         hot,
		Fraction:    fraction,
	}
	n.inner.Launch(h, sim.Time(1e12))
}

// Inject enqueues a single packet (for hand-driven simulations).
func (n *Network) Inject(src, dst int) {
	n.inner.Inject(src, dst, n.inner.Now(), -1)
}

// Warmup advances the network without measuring.
func (n *Network) Warmup(cycles int64) { n.inner.Run(cycles) }

// Results summarizes one measurement interval.
type Results struct {
	Cycles            int64
	InjectedPackets   int64
	DeliveredPackets  int64
	MeanLatencyCycles float64
	// P50LatencyCycles and P99LatencyCycles are the median and tail
	// latencies (log-histogram approximation).
	P50LatencyCycles, P99LatencyCycles float64
	// ThroughputPkts is delivered packets per router cycle network-wide.
	ThroughputPkts float64
	// AvgPowerW is mean link power; NormalizedPower divides by the non-DVS
	// baseline (all channels at full speed); PowerSavingsX is its inverse.
	AvgPowerW       float64
	NormalizedPower float64
	PowerSavingsX   float64
}

// Measure runs the given cycles with fresh statistics and reports results.
func (n *Network) Measure(cycles int64) Results {
	n.inner.BeginMeasurement()
	n.inner.Run(cycles)
	r := n.inner.Snapshot()
	return Results{
		Cycles:            r.Cycles,
		InjectedPackets:   r.InjectedPkts,
		DeliveredPackets:  r.DeliveredPkts,
		MeanLatencyCycles: r.MeanLatency,
		P50LatencyCycles:  r.P50Latency,
		P99LatencyCycles:  r.P99Latency,
		ThroughputPkts:    r.ThroughputPkts,
		AvgPowerW:         r.AvgPowerW,
		NormalizedPower:   r.NormalizedPwr,
		PowerSavingsX:     r.SavingsX,
	}
}

// InFlight reports packets injected but not yet delivered.
func (n *Network) InFlight() int64 { return n.inner.InFlight }

// AuditStats summarizes the runtime invariant checker's work so far.
type AuditStats struct {
	Scans      int64 // structural scans (conservation, state machines, DVS)
	Checks     int64 // individual invariant evaluations
	Violations int64
}

// AuditStats reports the invariant checker's counters; ok is false when
// the network was built without Config.Audit.
func (n *Network) AuditStats() (s AuditStats, ok bool) {
	a := n.inner.Auditor()
	if a == nil {
		return AuditStats{}, false
	}
	st := a.Stats()
	return AuditStats{Scans: st.Scans, Checks: st.Checks, Violations: st.Violations}, true
}

// SkipStats summarizes the activity-driven core's work avoidance over the
// network's lifetime.
type SkipStats struct {
	// CyclesExecuted ran through the full per-cycle step; CyclesFastForwarded
	// were jumped over while the network was quiescent, in FastForwards
	// distinct jumps.
	CyclesExecuted      int64
	CyclesFastForwarded int64
	FastForwards        int64
	// RouterTicks were performed; RouterTicksElided are the ticks the
	// always-tick baseline would have made but the active list or a
	// fast-forward skipped. ElisionRatio is elided / (ticks + elided).
	RouterTicks       int64
	RouterTicksElided int64
	ElisionRatio      float64
	// ActiveHist[k] counts executed cycles that ticked exactly k routers.
	ActiveHist []int64
	// Tile-parallel barrier accounting (zero unless Config.Tiles > 1).
	// TileWindows counts planned lookahead windows; TileBarriers counts
	// actual cross-tile merges (including forced flushes at run
	// boundaries); TileBarriersElided counts window ends whose merge was
	// skipped because no cross-tile traffic was pending.
	TileWindows        int64
	TileBarriers       int64
	TileBarriersElided int64
}

// SkipStats reports the activity-driven core's skip counters. With
// Config.NoSkip the elision counters stay zero.
func (n *Network) SkipStats() SkipStats {
	s := n.inner.SkipStats()
	return SkipStats{
		CyclesExecuted:      s.CyclesExecuted,
		CyclesFastForwarded: s.CyclesFastForwarded,
		FastForwards:        s.FastForwards,
		RouterTicks:         s.RouterTicks,
		RouterTicksElided:   s.RouterTicksElided,
		ElisionRatio:        s.ElisionRatio(),
		ActiveHist:          s.ActiveHist,
		TileWindows:         s.TileWindows,
		TileBarriers:        s.TileBarriers,
		TileBarriersElided:  s.TileBarriersElided,
	}
}

// LevelHistogram reports, for each DVS level, how many links currently
// operate there — a snapshot of where the policy has parked the network.
func (n *Network) LevelHistogram() []int {
	table := link.MustTable(link.NewParams())
	hist := make([]int, table.Params.Levels)
	for _, l := range n.inner.Links() {
		hist[l.Level()]++
	}
	return hist
}

// EnableTrace starts recording packet and DVS events into a ring holding
// the most recent `capacity` events.
func (n *Network) EnableTrace(capacity int) {
	n.inner.Trace = trace.NewBuffer(capacity)
}

// DumpTrace writes retained trace events to w. kind filters to one event
// kind ("inject", "deliver", "transition", "policy"); empty means all.
func (n *Network) DumpTrace(w io.Writer, kind string) error {
	if n.inner.Trace == nil {
		return errors.New("noc: tracing not enabled")
	}
	k := -1
	switch kind {
	case "":
	case "inject":
		k = int(trace.PacketInjected)
	case "deliver":
		k = int(trace.PacketDelivered)
	case "transition":
		k = int(trace.LinkTransition)
	case "policy":
		k = int(trace.PolicyDecision)
	default:
		return fmt.Errorf("noc: unknown trace kind %q", kind)
	}
	return n.inner.Trace.Dump(w, k)
}
