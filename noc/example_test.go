package noc_test

import (
	"fmt"
	"time"

	"repro/noc"
)

// ExampleDefaultConfig shows the paper's experimental platform parameters.
func ExampleDefaultConfig() {
	cfg := noc.DefaultConfig()
	fmt.Printf("%dx%d mesh, %d VCs, %d flit buffers/port, %d-stage pipeline\n",
		cfg.MeshSize, cfg.MeshSize, cfg.VCs, cfg.BufPerPort, cfg.PipelineDepth)
	fmt.Printf("policy %s: W=%d H=%d bands (%.1f,%.1f)/(%.1f,%.1f)\n",
		cfg.Policy, cfg.W, cfg.H, cfg.TLLow, cfg.TLHigh, cfg.THLow, cfg.THHigh)
	// Output:
	// 8x8 mesh, 2 VCs, 128 flit buffers/port, 13-stage pipeline
	// policy history: W=3 H=200 bands (0.3,0.4)/(0.6,0.7)
}

// ExampleNew runs a tiny deterministic simulation end to end.
func ExampleNew() {
	cfg := noc.DefaultConfig()
	cfg.MeshSize = 4
	cfg.Policy = noc.PolicyNone
	net, err := noc.New(cfg)
	if err != nil {
		panic(err)
	}
	net.Inject(0, 15) // corner to corner: 6 hops
	r := net.Measure(200)
	fmt.Printf("delivered %d packet(s)\n", r.DeliveredPackets)
	// Output:
	// delivered 1 packet(s)
}

// ExampleNetwork_AttachTwoLevel demonstrates the paper's workload model.
func ExampleNetwork_AttachTwoLevel() {
	cfg := noc.DefaultConfig()
	cfg.MeshSize = 4
	net, err := noc.New(cfg)
	if err != nil {
		panic(err)
	}
	err = net.AttachTwoLevel(noc.TwoLevelWorkload{
		Rate:         0.25,
		Tasks:        10,
		TaskDuration: 20 * time.Microsecond,
	})
	if err != nil {
		panic(err)
	}
	net.Warmup(5_000)
	r := net.Measure(10_000)
	fmt.Printf("power savings above 1.0: %v\n", r.PowerSavingsX > 1.0)
	// Output:
	// power savings above 1.0: true
}
