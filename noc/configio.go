package noc

import (
	"encoding/json"
	"fmt"
	"os"
)

// SaveConfig writes a config as indented JSON, suitable for versioning
// experiment setups alongside their results.
func SaveConfig(path string, c Config) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("noc: encoding config: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadConfig reads a JSON config written by SaveConfig. Fields absent from
// the file keep their DefaultConfig values, so partial configs work.
func LoadConfig(path string) (Config, error) {
	c := DefaultConfig()
	data, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	if err := json.Unmarshal(data, &c); err != nil {
		return c, fmt.Errorf("noc: decoding %s: %w", path, err)
	}
	if _, err := c.lower(); err != nil {
		return c, fmt.Errorf("noc: %s: %w", path, err)
	}
	return c, nil
}
