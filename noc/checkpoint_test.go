package noc

import (
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/runcache"
)

// TestNewWarmedTwoLevelSharesWarmup pins netsim's warmup-reuse surface:
// a simulated warmup, a captured-and-persisted warmup and a forked warmup
// must all measure identically, and invocations differing only in policy
// must fork the snapshot a different policy paid for.
func TestNewWarmedTwoLevelSharesWarmup(t *testing.T) {
	s, err := runcache.Open(t.TempDir(), runcache.Options{Fingerprint: "noc-warmed-test"})
	if err != nil {
		t.Fatal(err)
	}
	exp.SetDiskCache(s)
	defer exp.SetDiskCache(nil)

	cfg := DefaultConfig()
	cfg.MeshSize = 4
	w := TwoLevelWorkload{Rate: 0.3, Tasks: 100, TaskDuration: time.Millisecond}
	const warm, meas = 2000, 2000

	measureWarmed := func(c Config, reuse bool) Results {
		t.Helper()
		n, err := NewWarmedTwoLevel(c, w, warm, meas, reuse)
		if err != nil {
			t.Fatalf("NewWarmedTwoLevel: %v", err)
		}
		return n.Measure(meas)
	}

	straight := measureWarmed(cfg, false) // always simulates
	cold := measureWarmed(cfg, true)      // simulates, captures, persists
	afterCold := s.Stats()
	if afterCold.Puts == 0 {
		t.Fatal("cold reuse run persisted no snapshot")
	}
	forked := measureWarmed(cfg, true) // forks the persisted snapshot
	if hits := s.Stats().Hits - afterCold.Hits; hits == 0 {
		t.Fatal("second reuse run did not hit the persisted snapshot")
	}
	if straight != cold || cold != forked {
		t.Errorf("warmup modes diverged:\nstraight: %+v\ncold:     %+v\nforked:   %+v",
			straight, cold, forked)
	}

	// A different policy must share the same warmup snapshot and still
	// match its own straight run.
	alt := cfg
	alt.Policy = PolicyNone
	beforeAlt := s.Stats()
	altForked := measureWarmed(alt, true)
	if hits := s.Stats().Hits - beforeAlt.Hits; hits == 0 {
		t.Error("policy variant did not fork the shared snapshot")
	}
	if altStraight := measureWarmed(alt, false); altForked != altStraight {
		t.Errorf("policy variant fork diverged from its straight run:\nforked:   %+v\nstraight: %+v",
			altForked, altStraight)
	}
}
