package noc

import (
	"io"
	"strings"

	"repro/internal/exp"
)

// ExperimentOptions scale a paper-experiment run.
type ExperimentOptions struct {
	// Quick shrinks cycle budgets to smoke-run scale; Full raises them to
	// the paper's 10M-cycle setting. Default is a minutes-scale middle
	// ground.
	Quick, Full bool
	// Seed selects the deterministic random stream family (0 means 1).
	Seed uint64
	// Audit runs every simulation under the runtime invariant checker;
	// the first violation panics. Output is identical either way.
	Audit bool
	// NoSkip disables the activity-driven simulation core (idle-router
	// skipping and quiescent fast-forward). Output is identical either
	// way; only speed differs.
	NoSkip bool
	// NoCheckpoint disables warmup checkpointing: every simulation point
	// pays for its own warmup instead of forking a shared warmed-up
	// snapshot. Output is identical either way; only speed differs.
	NoCheckpoint bool
	// Tiles runs each simulation on that many tile-parallel blocks with
	// conservative lookahead barriers. Output is byte-identical at every
	// tile count; only speed differs, so it is absent from result cache
	// keys.
	Tiles int
}

// lower maps the public options onto the experiment harness's options.
func (o ExperimentOptions) lower() exp.Options {
	return exp.Options{
		Quick: o.Quick, Full: o.Full, Seed: o.Seed,
		Audit: o.Audit, NoSkip: o.NoSkip, NoCheckpoint: o.NoCheckpoint,
		Tiles: o.Tiles,
	}
}

// Experiments lists the regenerable paper artifacts ("fig3" .. "fig17",
// "tab1", "tab2", "headline", "abl-*") with one-line descriptions.
func Experiments() []string { return exp.List() }

// RunExperiment regenerates one paper table or figure and prints its text
// tables to w.
func RunExperiment(id string, o ExperimentOptions, w io.Writer) error {
	tabs, err := exp.Run(id, o.lower())
	if err != nil {
		return err
	}
	for _, t := range tabs {
		t.Fprint(w)
	}
	return nil
}

// RunExperimentCSV is RunExperiment with CSV output for plotting tools.
func RunExperimentCSV(id string, o ExperimentOptions, w io.Writer) error {
	tabs, err := exp.Run(id, o.lower())
	if err != nil {
		return err
	}
	for _, t := range tabs {
		t.FprintCSV(w)
	}
	return nil
}

// CachePrefetchEntry reports one persistent cache key a dry-run walk
// consulted and whether it is present in the installed store. Kind is
// "result" for run-cache keys and "trace" for arrival-trace-store keys
// (the traces a cold-result-cache run would replay instead of
// re-capturing).
type CachePrefetchEntry struct {
	Key  string
	Hit  bool
	Kind string
}

// PrefetchExperiments dry-runs the given experiments and reports every
// persistent-cache key they would consult, in sorted key order, without
// running any simulation — a cheap cache-health check: keys reported as
// misses are exactly what a real run would recompute.
func PrefetchExperiments(ids []string, o ExperimentOptions) ([]CachePrefetchEntry, error) {
	entries, err := exp.Prefetch(ids, o.lower())
	if err != nil {
		return nil, err
	}
	out := make([]CachePrefetchEntry, len(entries))
	for i, e := range entries {
		out[i] = CachePrefetchEntry{Key: e.Key, Hit: e.Hit, Kind: e.Kind}
	}
	return out, nil
}

// SetExperimentParallelism bounds how many simulations the experiment
// harness executes concurrently; j <= 0 restores the default, GOMAXPROCS.
// Parallel runs are bit-for-bit identical to sequential runs: every
// simulation point is independently seeded, so execution order cannot leak
// into results.
func SetExperimentParallelism(j int) { exp.SetParallelism(j) }

// TileBarrierCounters summarizes the tile-parallel runs the experiment
// harness executed in this process: planned lookahead windows, actual
// cross-tile merges, and merges elided because no cross-tile traffic was
// pending. All zero when no tiled point simulated (including when every
// point was a cache hit).
type TileBarrierCounters struct {
	Windows, Barriers, Elided int64
}

// ExperimentTileBarrierStats reports the process-wide tiled barrier
// counters accumulated across experiment runs.
func ExperimentTileBarrierStats() TileBarrierCounters {
	s := exp.TileBarrierStats()
	return TileBarrierCounters{Windows: s.Windows, Barriers: s.Barriers, Elided: s.Elided}
}

// RunExperiments regenerates several experiments concurrently (bounded by
// SetExperimentParallelism) and returns each one's rendered output in
// input order. Points shared between experiments simulate once.
func RunExperiments(ids []string, o ExperimentOptions, csv bool) ([]string, error) {
	all, err := exp.RunAll(ids, o.lower())
	if err != nil {
		return nil, err
	}
	out := make([]string, len(all))
	for i, tabs := range all {
		var sb strings.Builder
		for _, t := range tabs {
			if csv {
				t.FprintCSV(&sb)
			} else {
				t.Fprint(&sb)
			}
		}
		out[i] = sb.String()
	}
	return out, nil
}
