package noc

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

func smallCfg(policy string) Config {
	c := DefaultConfig()
	c.MeshSize = 4
	c.Policy = policy
	return c
}

func TestDefaultConfigValid(t *testing.T) {
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("paper config rejected: %v", err)
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	c := DefaultConfig()
	c.Policy = "bogus"
	if _, err := New(c); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestQuickstartFlow(t *testing.T) {
	n, err := New(smallCfg(PolicyHistory))
	if err != nil {
		t.Fatal(err)
	}
	if n.Nodes() != 16 {
		t.Fatalf("nodes = %d, want 16", n.Nodes())
	}
	err = n.AttachTwoLevel(TwoLevelWorkload{
		Rate: 0.3, Tasks: 20, TaskDuration: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Warmup(30_000)
	r := n.Measure(60_000)
	if r.DeliveredPackets == 0 {
		t.Fatal("nothing delivered")
	}
	if r.MeanLatencyCycles <= 0 {
		t.Error("no latency recorded")
	}
	if r.PowerSavingsX <= 1 {
		t.Errorf("savings = %.2f, want > 1 under DVS", r.PowerSavingsX)
	}
	if r.ThroughputPkts <= 0 {
		t.Error("no throughput")
	}
}

func TestUniformAndPermutationAttach(t *testing.T) {
	n, _ := New(smallCfg(PolicyNone))
	n.AttachUniform(0.01)
	r := n.Measure(10_000)
	if r.DeliveredPackets == 0 {
		t.Error("uniform: nothing delivered")
	}
	m, _ := New(smallCfg(PolicyNone))
	m.AttachTranspose(0.01)
	r2 := m.Measure(10_000)
	if r2.DeliveredPackets == 0 {
		t.Error("transpose: nothing delivered")
	}
}

func TestManualInjection(t *testing.T) {
	n, _ := New(smallCfg(PolicyNone))
	n.Inject(0, 15)
	r := n.Measure(300)
	if r.DeliveredPackets != 1 {
		t.Fatalf("delivered %d, want 1", r.DeliveredPackets)
	}
	if n.InFlight() != 0 {
		t.Error("packet still in flight")
	}
}

func TestLevelHistogram(t *testing.T) {
	n, _ := New(smallCfg(PolicyNone))
	h := n.LevelHistogram()
	if len(h) != 10 {
		t.Fatalf("levels = %d, want 10", len(h))
	}
	// Without DVS all 48 links sit at the top level.
	if h[9] != 48 {
		t.Errorf("top-level links = %d, want 48", h[9])
	}
}

func TestExperimentsRegistry(t *testing.T) {
	list := Experiments()
	if len(list) < 15 {
		t.Fatalf("only %d experiments registered", len(list))
	}
	joined := strings.Join(list, "\n")
	for _, id := range []string{"fig3", "fig10", "fig15", "fig16", "tab1", "headline", "abl-litmus"} {
		if !strings.Contains(joined, id) {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestRunExperimentTab1(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("tab1", ExperimentOptions{Quick: true}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "0.3", "0.7", "200"} {
		if !strings.Contains(out, want) {
			t.Errorf("tab1 output missing %q:\n%s", want, out)
		}
	}
	if err := RunExperiment("nope", ExperimentOptions{}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunExperimentsParallelFacade: the concurrent multi-experiment entry
// returns per-id output identical to one-at-a-time RunExperiment calls, in
// input order, at an explicit parallelism bound.
func TestRunExperimentsParallelFacade(t *testing.T) {
	SetExperimentParallelism(4)
	defer SetExperimentParallelism(0)
	ids := []string{"tab1", "fig7", "tab2"}
	o := ExperimentOptions{Quick: true}
	got, err := RunExperiments(ids, o, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("got %d outputs for %d ids", len(got), len(ids))
	}
	for i, id := range ids {
		var buf bytes.Buffer
		if err := RunExperiment(id, o, &buf); err != nil {
			t.Fatal(err)
		}
		if got[i] != buf.String() {
			t.Errorf("RunExperiments[%d] (%s) differs from RunExperiment", i, id)
		}
	}
	if _, err := RunExperiments([]string{"nope"}, o, false); err == nil {
		t.Error("unknown experiment accepted")
	}
	// CSV mode renders CSV.
	csv, err := RunExperiments([]string{"tab1"}, o, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv[0], "# Table 1") {
		t.Errorf("CSV output missing comment title:\n%s", csv[0])
	}
}

func TestTracing(t *testing.T) {
	n, _ := New(smallCfg(PolicyNone))
	if err := n.DumpTrace(nil, ""); err == nil {
		t.Error("DumpTrace without EnableTrace should fail")
	}
	n.EnableTrace(100)
	n.Inject(0, 15)
	n.Measure(300)
	var buf bytes.Buffer
	if err := n.DumpTrace(&buf, "deliver"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "deliver") {
		t.Errorf("trace missing delivery:\n%s", buf.String())
	}
	if err := n.DumpTrace(&buf, "bogus"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestConfigSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/cfg.json"
	orig := DefaultConfig()
	orig.MeshSize = 4
	orig.TLLow, orig.TLHigh = 0.25, 0.35
	orig.Policy = PolicyAdaptiveThresholds
	if err := SaveConfig(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Errorf("round trip changed config:\n%+v\n%+v", orig, got)
	}
}

func TestLoadConfigPartialUsesDefaults(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/partial.json"
	if err := os.WriteFile(path, []byte(`{"MeshSize": 4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.MeshSize != 4 {
		t.Errorf("MeshSize = %d, want 4", got.MeshSize)
	}
	def := DefaultConfig()
	if got.H != def.H || got.Policy != def.Policy {
		t.Error("unset fields did not keep defaults")
	}
}

func TestLoadConfigRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte(`{"Policy": "bogus"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Error("invalid policy accepted")
	}
	garbled := dir + "/garbled.json"
	os.WriteFile(garbled, []byte(`{not json`), 0o644)
	if _, err := LoadConfig(garbled); err == nil {
		t.Error("garbled JSON accepted")
	}
	if _, err := LoadConfig(dir + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPatternAttachments(t *testing.T) {
	for _, attach := range []struct {
		name string
		do   func(n *Network)
	}{
		{"bitreverse", func(n *Network) { n.AttachBitReverse(0.01) }},
		{"shuffle", func(n *Network) { n.AttachShuffle(0.01) }},
		{"tornado", func(n *Network) { n.AttachTornado(0.01) }},
		{"hotspot", func(n *Network) { n.AttachHotspot(0.01, 5, 0.25) }},
	} {
		n, err := New(smallCfg(PolicyNone))
		if err != nil {
			t.Fatal(err)
		}
		attach.do(n)
		r := n.Measure(10_000)
		if r.DeliveredPackets == 0 {
			t.Errorf("%s: nothing delivered", attach.name)
		}
	}
}
