package noc

import (
	"encoding/json"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Checkpointed warmups for one-shot runs (cmd/netsim): the warmup runs
// policy-frozen — DVS decision windows never close, links never change
// level — so the warmed-up state depends on the platform and workload but
// not on the policy under study. That state is captured once and persisted
// in the run cache; later invocations that differ only in policy,
// thresholds or transition latencies fork it instead of re-simulating the
// warmup. A fork is byte-identical to an uninterrupted run (pinned by
// internal/checkpoint's conformance suite), so snapshot reuse changes
// speed, never a result.

// warmedKey identifies everything a frozen warmup depends on: the platform
// with the policy family neutralized (the held warmup never consults the
// policy selection, its thresholds or the transition latencies — that is
// exactly what makes the snapshot shareable), the workload, and both cycle
// budgets (the captured trace spans warmup and measurement, so the horizon
// shapes the snapshot's replay state).
func warmedKey(c Config, w TwoLevelWorkload, warmup, measure int64) (string, error) {
	neutral := c
	neutral.Policy = ""
	neutral.W, neutral.H, neutral.BCongested = 0, 0, 0
	neutral.TLLow, neutral.TLHigh, neutral.THLow, neutral.THHigh = 0, 0, 0, 0
	neutral.VoltTransition, neutral.FreqTransitionCycles = 0, 0
	// The tile count is an execution strategy, not platform state: warmups
	// are captured untiled and results are tile-independent, so the key
	// neutralizes it too.
	neutral.Tiles = 0
	b, err := json.Marshal(neutral)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("ckpt-netsim|v%d|cfg=%s|rate=%g|tasks=%d|taskdur=%d|wseed=%d|warmup=%d|measure=%d",
		exp.SchemaVersion, b, w.Rate, w.Tasks, int64(w.TaskDuration), w.Seed, warmup, measure), nil
}

// twoLevelTrace captures the workload as a finite trace spanning the run.
// Budget-eligible workloads go through the shared trace cache — memory,
// then the persistent trace store when one is installed (EnableTraceStore),
// then a live capture saved back for future processes. Oversized workloads
// capture directly: a one-shot netsim run always replays a trace, budget
// or not, so nothing changes semantically — only where the bytes come from.
func twoLevelTrace(lowered network.Config, w TwoLevelWorkload, warmup, measure int64) (*traffic.Trace, sim.Time, error) {
	p := traffic.NewTwoLevelParams(w.Rate)
	if w.Tasks > 0 {
		p.AvgTasks = w.Tasks
	}
	if w.TaskDuration > 0 {
		p.AvgTaskDuration = sim.Time(w.TaskDuration.Nanoseconds()) * sim.Nanosecond
	}
	p.Seed = w.Seed
	if p.Seed == 0 {
		p.Seed = lowered.Seed
	}
	topo := topology.New(lowered.K, lowered.N, lowered.Torus)
	horizon := sim.Time(warmup+measure+1) * lowered.RouterPeriod
	if tr, _ := traffic.SharedTwoLevelTrace(p, topo, horizon); tr != nil {
		return tr, horizon, nil
	}
	m, err := traffic.NewTwoLevel(p, topo)
	if err != nil {
		return nil, 0, err
	}
	return traffic.Capture(m, horizon), horizon, nil
}

// NewWarmedTwoLevel builds a network under the two-level workload and
// brings it to the end of a policy-frozen warmup, ready for Measure. With
// reuse enabled and a run cache installed, the warmed-up state forks from
// a persisted snapshot when a compatible earlier invocation already paid
// for this warmup, and is captured and persisted otherwise; with reuse
// disabled (or no cache) the warmup always simulates. Both paths release
// the policy freeze at the same instant, so measurement results are
// identical either way.
func NewWarmedTwoLevel(c Config, w TwoLevelWorkload, warmup, measure int64, reuse bool) (*Network, error) {
	lowered, err := c.lower()
	if err != nil {
		return nil, err
	}
	tr, horizon, err := twoLevelTrace(lowered, w, warmup, measure)
	if err != nil {
		return nil, err
	}
	key, err := warmedKey(c, w, warmup, measure)
	if err != nil {
		return nil, err
	}
	// A tiled network refuses checkpoint fork and capture, so tiled runs
	// always simulate their warmup straight (byte-identical to a fork;
	// pinned by the conformance suite). Skipping reuse entirely also keeps
	// a tiled miss from quarantining a snapshot untiled runs still want.
	reuse = reuse && lowered.Tiles <= 1

	if reuse {
		if b, ok := exp.CacheLookupRaw(key); ok {
			snap, derr := checkpoint.Decode(b)
			if derr == nil {
				if n, ferr := checkpoint.Fork(snap, lowered, tr); ferr == nil {
					n.SetDVSHold(false)
					return &Network{inner: n}, nil
				}
			}
			// Decodes-but-does-not-restore (or fails to decode at all):
			// quarantine the entry and pay for the warmup below.
			exp.CacheDropRaw(key)
		}
	}

	n, err := network.New(lowered)
	if err != nil {
		return nil, err
	}
	n.Launch(tr, horizon)
	n.SetDVSHold(true)
	n.Run(warmup)
	if reuse {
		if snap, cerr := checkpoint.Capture(n); cerr == nil {
			if b, eerr := checkpoint.Encode(snap); eerr == nil {
				exp.CacheStoreRaw(key, b)
			}
		}
	}
	n.SetDVSHold(false)
	return &Network{inner: n}, nil
}
