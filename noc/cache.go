package noc

import (
	"os"
	"path/filepath"

	"repro/internal/exp"
	"repro/internal/traffic"
	"repro/internal/traffic/tracestore"
)

// The persistent run cache stores finished simulation results on disk,
// content-addressed by the full run specification and the binary's code
// revision. With a cache enabled, rerunning an experiment with unchanged
// parameters replays stored results byte-identically instead of
// re-simulating; editing one experiment's parameters re-simulates exactly
// the points that changed.

// DefaultRunCacheDir reports the conventional cache location: the user
// cache directory (e.g. ~/.cache/linkdvs/runcache), falling back to the
// system temporary directory when no user cache dir is defined.
func DefaultRunCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	return filepath.Join(base, "linkdvs", "runcache")
}

// EnableRunCache opens (creating if necessary) the persistent result cache
// at dir and installs it under the experiment harness. An empty dir selects
// DefaultRunCacheDir; maxBytes <= 0 selects the default size cap (256 MiB).
// Entries invalidate automatically when the binary's VCS revision or the
// harness schema changes. That invalidation lever requires a VCS-stamped
// binary: under `go run`, `go test`, or an out-of-repo build no revision
// is embedded, and EnableRunCache returns an error (installing nothing)
// rather than replay results that would survive code changes.
func EnableRunCache(dir string, maxBytes int64) error {
	if dir == "" {
		dir = DefaultRunCacheDir()
	}
	return exp.OpenDiskCache(dir, maxBytes)
}

// DisableRunCache removes the persistent cache; results then live only in
// the in-process memo, exactly the pre-cache behavior.
func DisableRunCache() { exp.SetDiskCache(nil) }

// CacheStats snapshots the persistent cache's counters.
type CacheStats struct {
	Hits, Misses   int64 // lookups served from disk vs not found
	Puts           int64 // entries written
	CorruptDropped int64 // entries quarantined (checksum or decode failure)
	Evictions      int64 // entries removed by the size cap
	BytesRead      int64 // payload bytes served from disk
	BytesWritten   int64 // payload bytes written to disk
}

// HitRate reports hits / (hits + misses), or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// RunCacheStats reports the persistent cache's counters since
// EnableRunCache (all zero when no cache is enabled).
func RunCacheStats() CacheStats {
	st := exp.DiskCacheStats()
	return CacheStats{
		Hits: st.Hits, Misses: st.Misses, Puts: st.Puts,
		CorruptDropped: st.CorruptDropped, Evictions: st.Evictions,
		BytesRead: st.BytesRead, BytesWritten: st.BytesWritten,
	}
}

// EnableTraceStore opens (creating if necessary) the persistent arrival-
// trace store under cacheRoot's traces/ subdirectory and installs it: the
// shared two-level trace lookup then goes memory -> disk -> live capture,
// so a cold process decodes previously captured workloads instead of
// re-simulating them. An empty cacheRoot selects DefaultRunCacheDir;
// maxBytes <= 0 selects the trace default (2 GiB — traces are bulkier than
// results, and the subdirectory keeps the two stores' eviction caps from
// fighting over one directory). Like EnableRunCache, it requires a
// VCS-stamped binary and returns an error (installing nothing) otherwise.
//
// The store is deliberately independent of the result cache: results are
// byte-identical with the store on or off (traces decode to exactly the
// captured sequence), so trace-store state appears in no result cache key
// and -no-cache runs still benefit from warm traces.
func EnableTraceStore(cacheRoot string, maxBytes int64) error {
	if cacheRoot == "" {
		cacheRoot = DefaultRunCacheDir()
	}
	s, err := tracestore.Open(tracestore.DefaultDir(cacheRoot), maxBytes)
	if err != nil {
		return err
	}
	traffic.SetTraceStore(s)
	return nil
}

// DisableTraceStore removes the persistent trace store; traces then live
// only in the in-process memo, exactly the pre-store behavior.
func DisableTraceStore() { traffic.SetTraceStore(nil) }

// TraceStoreStats reports the trace store's counters since EnableTraceStore
// (all zero when no store is enabled).
func TraceStoreStats() CacheStats {
	s := traffic.InstalledTraceStore()
	if s == nil {
		return CacheStats{}
	}
	st := s.Stats()
	return CacheStats{
		Hits: st.Hits, Misses: st.Misses, Puts: st.Puts,
		CorruptDropped: st.CorruptDropped, Evictions: st.Evictions,
		BytesRead: st.BytesRead, BytesWritten: st.BytesWritten,
	}
}

// RunCacheLookup and RunCacheStore expose the persistent layer to
// downstream tooling that caches its own derived artifacts (cmd/netsim's
// one-shot summaries). Keys are namespaced by the caller; payloads are
// JSON. Both are no-ops (lookup always misses) without an enabled cache.
func RunCacheLookup(key string, v any) bool { return exp.CacheLookupJSON(key, v) }

// RunCacheStore serializes v as JSON and stores it under key.
func RunCacheStore(key string, v any) { exp.CacheStoreJSON(key, v) }
