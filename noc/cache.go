package noc

import (
	"os"
	"path/filepath"

	"repro/internal/exp"
)

// The persistent run cache stores finished simulation results on disk,
// content-addressed by the full run specification and the binary's code
// revision. With a cache enabled, rerunning an experiment with unchanged
// parameters replays stored results byte-identically instead of
// re-simulating; editing one experiment's parameters re-simulates exactly
// the points that changed.

// DefaultRunCacheDir reports the conventional cache location: the user
// cache directory (e.g. ~/.cache/linkdvs/runcache), falling back to the
// system temporary directory when no user cache dir is defined.
func DefaultRunCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	return filepath.Join(base, "linkdvs", "runcache")
}

// EnableRunCache opens (creating if necessary) the persistent result cache
// at dir and installs it under the experiment harness. An empty dir selects
// DefaultRunCacheDir; maxBytes <= 0 selects the default size cap (256 MiB).
// Entries invalidate automatically when the binary's VCS revision or the
// harness schema changes. That invalidation lever requires a VCS-stamped
// binary: under `go run`, `go test`, or an out-of-repo build no revision
// is embedded, and EnableRunCache returns an error (installing nothing)
// rather than replay results that would survive code changes.
func EnableRunCache(dir string, maxBytes int64) error {
	if dir == "" {
		dir = DefaultRunCacheDir()
	}
	return exp.OpenDiskCache(dir, maxBytes)
}

// DisableRunCache removes the persistent cache; results then live only in
// the in-process memo, exactly the pre-cache behavior.
func DisableRunCache() { exp.SetDiskCache(nil) }

// CacheStats snapshots the persistent cache's counters.
type CacheStats struct {
	Hits, Misses   int64 // lookups served from disk vs not found
	Puts           int64 // entries written
	CorruptDropped int64 // entries quarantined (checksum or decode failure)
	Evictions      int64 // entries removed by the size cap
	BytesRead      int64 // payload bytes served from disk
	BytesWritten   int64 // payload bytes written to disk
}

// HitRate reports hits / (hits + misses), or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// RunCacheStats reports the persistent cache's counters since
// EnableRunCache (all zero when no cache is enabled).
func RunCacheStats() CacheStats {
	st := exp.DiskCacheStats()
	return CacheStats{
		Hits: st.Hits, Misses: st.Misses, Puts: st.Puts,
		CorruptDropped: st.CorruptDropped, Evictions: st.Evictions,
		BytesRead: st.BytesRead, BytesWritten: st.BytesWritten,
	}
}

// RunCacheLookup and RunCacheStore expose the persistent layer to
// downstream tooling that caches its own derived artifacts (cmd/netsim's
// one-shot summaries). Keys are namespaced by the caller; payloads are
// JSON. Both are no-ops (lookup always misses) without an enabled cache.
func RunCacheLookup(key string, v any) bool { return exp.CacheLookupJSON(key, v) }

// RunCacheStore serializes v as JSON and stores it under key.
func RunCacheStore(key string, v any) { exp.CacheStoreJSON(key, v) }
